file(REMOVE_RECURSE
  "libmermaid.a"
)
