# Empty compiler generated dependencies file for mermaid.
# This may be replaced when dependencies are built.
