
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mermaid/apps/matmul.cc" "src/CMakeFiles/mermaid.dir/mermaid/apps/matmul.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/apps/matmul.cc.o.d"
  "/root/repo/src/mermaid/apps/matmul_mp.cc" "src/CMakeFiles/mermaid.dir/mermaid/apps/matmul_mp.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/apps/matmul_mp.cc.o.d"
  "/root/repo/src/mermaid/apps/pcb.cc" "src/CMakeFiles/mermaid.dir/mermaid/apps/pcb.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/apps/pcb.cc.o.d"
  "/root/repo/src/mermaid/arch/profiles.cc" "src/CMakeFiles/mermaid.dir/mermaid/arch/profiles.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/arch/profiles.cc.o.d"
  "/root/repo/src/mermaid/arch/type_registry.cc" "src/CMakeFiles/mermaid.dir/mermaid/arch/type_registry.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/arch/type_registry.cc.o.d"
  "/root/repo/src/mermaid/arch/vaxfloat.cc" "src/CMakeFiles/mermaid.dir/mermaid/arch/vaxfloat.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/arch/vaxfloat.cc.o.d"
  "/root/repo/src/mermaid/base/rng.cc" "src/CMakeFiles/mermaid.dir/mermaid/base/rng.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/base/rng.cc.o.d"
  "/root/repo/src/mermaid/base/stats.cc" "src/CMakeFiles/mermaid.dir/mermaid/base/stats.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/base/stats.cc.o.d"
  "/root/repo/src/mermaid/base/wire.cc" "src/CMakeFiles/mermaid.dir/mermaid/base/wire.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/base/wire.cc.o.d"
  "/root/repo/src/mermaid/dsm/allocator.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/allocator.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/allocator.cc.o.d"
  "/root/repo/src/mermaid/dsm/central.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/central.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/central.cc.o.d"
  "/root/repo/src/mermaid/dsm/host.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/host.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/host.cc.o.d"
  "/root/repo/src/mermaid/dsm/page_table.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/page_table.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/page_table.cc.o.d"
  "/root/repo/src/mermaid/dsm/referee.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/referee.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/referee.cc.o.d"
  "/root/repo/src/mermaid/dsm/system.cc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/system.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/dsm/system.cc.o.d"
  "/root/repo/src/mermaid/net/fragment.cc" "src/CMakeFiles/mermaid.dir/mermaid/net/fragment.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/net/fragment.cc.o.d"
  "/root/repo/src/mermaid/net/network.cc" "src/CMakeFiles/mermaid.dir/mermaid/net/network.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/net/network.cc.o.d"
  "/root/repo/src/mermaid/net/reqrep.cc" "src/CMakeFiles/mermaid.dir/mermaid/net/reqrep.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/net/reqrep.cc.o.d"
  "/root/repo/src/mermaid/sim/engine.cc" "src/CMakeFiles/mermaid.dir/mermaid/sim/engine.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/sim/engine.cc.o.d"
  "/root/repo/src/mermaid/sim/realtime.cc" "src/CMakeFiles/mermaid.dir/mermaid/sim/realtime.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/sim/realtime.cc.o.d"
  "/root/repo/src/mermaid/sync/sync.cc" "src/CMakeFiles/mermaid.dir/mermaid/sync/sync.cc.o" "gcc" "src/CMakeFiles/mermaid.dir/mermaid/sync/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
