# Empty compiler generated dependencies file for mermaid_tests.
# This may be replaced when dependencies are built.
