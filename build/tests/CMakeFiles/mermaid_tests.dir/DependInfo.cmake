
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_mp_test.cc" "tests/CMakeFiles/mermaid_tests.dir/apps_mp_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/apps_mp_test.cc.o.d"
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/mermaid_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/arch_convert_test.cc" "tests/CMakeFiles/mermaid_tests.dir/arch_convert_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/arch_convert_test.cc.o.d"
  "/root/repo/tests/arch_describe_test.cc" "tests/CMakeFiles/mermaid_tests.dir/arch_describe_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/arch_describe_test.cc.o.d"
  "/root/repo/tests/arch_vaxfloat_test.cc" "tests/CMakeFiles/mermaid_tests.dir/arch_vaxfloat_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/arch_vaxfloat_test.cc.o.d"
  "/root/repo/tests/base_wire_test.cc" "tests/CMakeFiles/mermaid_tests.dir/base_wire_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/base_wire_test.cc.o.d"
  "/root/repo/tests/dsm_allocator_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_allocator_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_allocator_test.cc.o.d"
  "/root/repo/tests/dsm_central_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_central_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_central_test.cc.o.d"
  "/root/repo/tests/dsm_internals_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_internals_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_internals_test.cc.o.d"
  "/root/repo/tests/dsm_litmus_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_litmus_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_litmus_test.cc.o.d"
  "/root/repo/tests/dsm_realtime_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_realtime_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_realtime_test.cc.o.d"
  "/root/repo/tests/dsm_sourcepref_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_sourcepref_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_sourcepref_test.cc.o.d"
  "/root/repo/tests/dsm_stress_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_stress_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_stress_test.cc.o.d"
  "/root/repo/tests/dsm_system_test.cc" "tests/CMakeFiles/mermaid_tests.dir/dsm_system_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/dsm_system_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/mermaid_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/pcb_rules_test.cc" "tests/CMakeFiles/mermaid_tests.dir/pcb_rules_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/pcb_rules_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mermaid_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sim_edge_test.cc" "tests/CMakeFiles/mermaid_tests.dir/sim_edge_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/sim_edge_test.cc.o.d"
  "/root/repo/tests/sim_engine_test.cc" "tests/CMakeFiles/mermaid_tests.dir/sim_engine_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/sim_engine_test.cc.o.d"
  "/root/repo/tests/sync_test.cc" "tests/CMakeFiles/mermaid_tests.dir/sync_test.cc.o" "gcc" "tests/CMakeFiles/mermaid_tests.dir/sync_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mermaid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
