# Empty dependencies file for bench_thrash_mm2_large.
# This may be replaced when dependencies are built.
