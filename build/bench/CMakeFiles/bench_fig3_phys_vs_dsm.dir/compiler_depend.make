# Empty compiler generated dependencies file for bench_fig3_phys_vs_dsm.
# This may be replaced when dependencies are built.
