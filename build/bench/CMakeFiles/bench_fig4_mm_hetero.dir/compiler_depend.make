# Empty compiler generated dependencies file for bench_fig4_mm_hetero.
# This may be replaced when dependencies are built.
