file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mm_hetero.dir/bench_fig4_mm_hetero.cc.o"
  "CMakeFiles/bench_fig4_mm_hetero.dir/bench_fig4_mm_hetero.cc.o.d"
  "bench_fig4_mm_hetero"
  "bench_fig4_mm_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mm_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
