file(REMOVE_RECURSE
  "CMakeFiles/bench_algo_crossover.dir/bench_algo_crossover.cc.o"
  "CMakeFiles/bench_algo_crossover.dir/bench_algo_crossover.cc.o.d"
  "bench_algo_crossover"
  "bench_algo_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algo_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
