# Empty compiler generated dependencies file for bench_algo_crossover.
# This may be replaced when dependencies are built.
