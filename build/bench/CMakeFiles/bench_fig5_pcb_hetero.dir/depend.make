# Empty dependencies file for bench_fig5_pcb_hetero.
# This may be replaced when dependencies are built.
