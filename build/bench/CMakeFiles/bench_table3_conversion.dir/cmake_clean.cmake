file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_conversion.dir/bench_table3_conversion.cc.o"
  "CMakeFiles/bench_table3_conversion.dir/bench_table3_conversion.cc.o.d"
  "bench_table3_conversion"
  "bench_table3_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
