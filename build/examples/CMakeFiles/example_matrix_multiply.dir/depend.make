# Empty dependencies file for example_matrix_multiply.
# This may be replaced when dependencies are built.
