file(REMOVE_RECURSE
  "CMakeFiles/example_matrix_multiply.dir/matrix_multiply.cpp.o"
  "CMakeFiles/example_matrix_multiply.dir/matrix_multiply.cpp.o.d"
  "example_matrix_multiply"
  "example_matrix_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matrix_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
