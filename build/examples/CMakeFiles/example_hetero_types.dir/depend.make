# Empty dependencies file for example_hetero_types.
# This may be replaced when dependencies are built.
