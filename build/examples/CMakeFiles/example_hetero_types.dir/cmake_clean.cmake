file(REMOVE_RECURSE
  "CMakeFiles/example_hetero_types.dir/hetero_types.cpp.o"
  "CMakeFiles/example_hetero_types.dir/hetero_types.cpp.o.d"
  "example_hetero_types"
  "example_hetero_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hetero_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
