# Empty compiler generated dependencies file for example_pcb_inspect.
# This may be replaced when dependencies are built.
