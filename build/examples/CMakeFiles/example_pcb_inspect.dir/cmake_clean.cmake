file(REMOVE_RECURSE
  "CMakeFiles/example_pcb_inspect.dir/pcb_inspect.cpp.o"
  "CMakeFiles/example_pcb_inspect.dir/pcb_inspect.cpp.o.d"
  "example_pcb_inspect"
  "example_pcb_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pcb_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
