// §3.3 "Thrashing" — MM2 with the large page-size algorithm.
//
// An 8 KB result page holds 8 rows; MM2 deals rows round-robin, so up to 8
// threads on different Fireflies write-share every result page. The paper
// observed wild run-to-run fluctuation, rare speedup over sequential, and
// execution times up to 10x sequential, with page-transfer counts
// exploding. We run several seeds with latency jitter enabled and report
// the spread plus the transfer explosion relative to the well-behaved MM1.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Sun;
  benchutil::JsonReport report("thrash_mm2_large");
  benchutil::PrintHeader(
      "Thrashing: MM2 under the large page size algorithm (256x256)");

  // The paper's size: a 1 KB result row per thread, so every 8 KB result
  // page is written by up to 8 round-robin threads at once.
  apps::MatMulConfig mm;
  mm.n = 256;
  mm.master_host = 0;
  mm.verify = false;
  mm.element_writes = true;  // the original element-interleaved stores

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  cfg.page_policy = dsm::PageSizePolicy::kLargest;

  // Sequential baseline (one thread, one Firefly).
  mm.num_threads = 1;
  mm.worker_hosts = {1};
  auto seq = benchutil::RunMatMulOnce(
      cfg, benchutil::MasterPlusFireflies(Sun(), 1), mm);
  std::printf("sequential baseline: %.1f s, %lld page transfers\n\n",
              seq.seconds, static_cast<long long>(seq.pages_transferred));
  report.Add("sequential_s", seq.seconds);

  std::printf("%-22s %6s %12s %12s %14s\n", "configuration", "seed",
              "time (s)", "vs seq", "transfers");
  for (int fireflies : {2, 3}) {
    const int threads = 8;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      cfg.net.jitter = 0.1;  // the paper's runs fluctuated between repeats
      cfg.net.seed = seed;
      mm.num_threads = threads;
      mm.worker_hosts = benchutil::WorkerIds(fireflies);
      mm.round_robin_rows = true;
      auto run = benchutil::RunMatMulOnce(
          cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);
      std::printf("MM2 %2d thr / %d Ffly   %6llu %12.1f %11.2fx %14lld\n",
                  threads, fireflies, static_cast<unsigned long long>(seed),
                  run.seconds, run.seconds / seq.seconds,
                  static_cast<long long>(run.pages_transferred));
      const std::string k = "mm2.ffly" + std::to_string(fireflies) +
                            ".seed" + std::to_string(seed);
      report.Add(k + "_s", run.seconds);
      report.Add(k + "_transfers", run.pages_transferred);
    }
  }

  // MM1 at the same sizes, for the transfer-count contrast.
  cfg.net.jitter = 0;
  mm.round_robin_rows = false;
  mm.num_threads = 8;
  mm.worker_hosts = benchutil::WorkerIds(3);
  auto mm1 = benchutil::RunMatMulOnce(
      cfg, benchutil::MasterPlusFireflies(Sun(), 3), mm);
  std::printf("\nMM1  8 thr / 3 Ffly          %12.1f %11.2fx %14lld\n",
              mm1.seconds, mm1.seconds / seq.seconds,
              static_cast<long long>(mm1.pages_transferred));
  std::printf("(paper: MM2+large fluctuates wildly, up to 10x sequential, "
              "with very large page-transfer counts)\n");
  report.Add("mm1.ffly3_s", mm1.seconds);
  report.Add("mm1.ffly3_transfers", mm1.pages_transferred);
  report.Write();
  return 0;
}
