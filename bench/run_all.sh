#!/usr/bin/env sh
# Runs every benchmark binary in a build tree and collects the
# BENCH_<name>.json results.
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build
#   output-dir  defaults to <build-dir>/bench-results
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-results}"
BENCH_DIR=$(cd "$BUILD_DIR/bench" 2>/dev/null && pwd) || {
    echo "no bench binaries under $BUILD_DIR/bench — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
}

mkdir -p "$OUT_DIR"
cd "$OUT_DIR"

status=0
for bin in "$BENCH_DIR"/bench_*; do
    [ -x "$bin" ] || continue
    name=$(basename "$bin")
    echo "==> $name"
    if ! "$bin" > "$name.log" 2>&1; then
        echo "FAILED: $name (see $OUT_DIR/$name.log)" >&2
        status=1
    fi
done

echo
echo "results in $OUT_DIR:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (no JSON emitted)"
exit $status
