#!/usr/bin/env sh
# Runs every benchmark binary in a build tree and collects the
# BENCH_<name>.json (and, with MERMAID_TRACE=1, TRACE_<name>*.json) results.
#
# Each bench runs in its own scratch directory; its JSON artifacts are moved
# to the output directory only when the bench exits 0, so a failing bench can
# never leave half-written or stale results behind, and the script's exit
# status reflects any failure.
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build
#   output-dir  defaults to <build-dir>/bench-results
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-results}"
BENCH_DIR=$(cd "$BUILD_DIR/bench" 2>/dev/null && pwd) || {
    echo "no bench binaries under $BUILD_DIR/bench — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
}

mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

status=0
for bin in "$BENCH_DIR"/bench_*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    echo "==> $name"
    workdir=$(mktemp -d "${TMPDIR:-/tmp}/mermaid-bench.XXXXXX")
    if (cd "$workdir" && "$bin" > "$OUT_DIR/$name.log" 2>&1); then
        for f in "$workdir"/BENCH_*.json "$workdir"/TRACE_*.json; do
            [ -f "$f" ] && mv "$f" "$OUT_DIR/"
        done
    else
        echo "FAILED: $name (see $OUT_DIR/$name.log)" >&2
        status=1
    fi
    rm -rf "$workdir"
done

echo
echo "results in $OUT_DIR:"
found=0
for f in "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/TRACE_*.json; do
    [ -f "$f" ] || continue
    echo "$f"
    found=1
done
[ "$found" = 1 ] || echo "  (no JSON emitted)"
exit $status
