#!/usr/bin/env sh
# Runs every benchmark binary in a build tree and collects the
# BENCH_<name>.json (and, with MERMAID_TRACE=1, TRACE_<name>*.json) results.
#
# Each bench runs in its own scratch directory; its JSON artifacts are moved
# to the output directory only when the bench exits 0, so a failing bench can
# never leave half-written or stale results behind, and the script's exit
# status reflects any failure.
#
# After the run every per-bench BENCH_*.json is merged into one
# BENCH_summary.json (a {"benches": [...]} array) so CI uploads a single
# machine-readable artifact covering the whole sweep.
#
# Usage: bench/run_all.sh [--merge-only] [build-dir] [output-dir]
#   --merge-only  skip running benches; just rebuild BENCH_summary.json
#                 from the JSON already present in output-dir
#   build-dir     defaults to ./build
#   output-dir    defaults to <build-dir>/bench-results
set -eu

MERGE_ONLY=0
if [ "${1:-}" = "--merge-only" ]; then
    MERGE_ONLY=1
    shift
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-results}"

mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

# Concatenates every per-bench JSON object (each file is one complete
# object) into BENCH_summary.json. Plain shell: no jq in the CI image.
merge_summary() {
    summary="$OUT_DIR/BENCH_summary.json"
    tmp="$summary.tmp"
    {
        printf '{\n"benches": [\n'
        first=1
        for f in "$OUT_DIR"/BENCH_*.json; do
            [ -f "$f" ] || continue
            case "$f" in *BENCH_summary.json) continue ;; esac
            [ "$first" = 1 ] || printf ',\n'
            first=0
            cat "$f"
        done
        printf ']\n}\n'
    } > "$tmp"
    mv "$tmp" "$summary"
    echo "merged summary: $summary"
}

if [ "$MERGE_ONLY" = 1 ]; then
    merge_summary
    exit 0
fi

BENCH_DIR=$(cd "$BUILD_DIR/bench" 2>/dev/null && pwd) || {
    echo "no bench binaries under $BUILD_DIR/bench — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
}

status=0
for bin in "$BENCH_DIR"/bench_*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    echo "==> $name"
    workdir=$(mktemp -d "${TMPDIR:-/tmp}/mermaid-bench.XXXXXX")
    if (cd "$workdir" && "$bin" > "$OUT_DIR/$name.log" 2>&1); then
        for f in "$workdir"/BENCH_*.json "$workdir"/TRACE_*.json; do
            [ -f "$f" ] && mv "$f" "$OUT_DIR/"
        done
    else
        echo "FAILED: $name (see $OUT_DIR/$name.log)" >&2
        status=1
    fi
    rm -rf "$workdir"
done

merge_summary

echo
echo "results in $OUT_DIR:"
found=0
for f in "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/TRACE_*.json; do
    [ -f "$f" ] || continue
    echo "$f"
    found=1
done
[ "$found" = 1 ] || echo "  (no JSON emitted)"
exit $status
