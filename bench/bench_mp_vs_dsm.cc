// DSM vs explicit message passing (§1's comparison).
//
// "Several implementations of DSM algorithms have demonstrated that DSM can
// be competitive to message passing in terms of performance… [DSM] moves
// data on demand as it is being accessed, eliminating the data exchange
// phase, spreading the communication load over a longer period of time, and
// allowing for a greater degree of concurrency."
//
// Both versions run the same 256x256 multiplication on the same Sun master
// + Firefly worker hosts: the DSM version demand-pages A/B and writes C in
// place; the message-passing version ships B to every host and A blocks to
// every thread up front (serialized at the master), computes on private
// memory, and ships C rows back, with RPC (un)marshaling charged at the
// page-conversion rate.
#include <cstdio>

#include "bench_util.h"
#include "mermaid/apps/matmul_mp.h"

int main() {
  using namespace mermaid;
  using benchutil::Sun;
  benchutil::JsonReport report("mp_vs_dsm");
  benchutil::PrintHeader(
      "DSM vs message passing: MM 256x256, master on Sun + 4 Fireflies");
  std::printf("%-8s %12s %20s %10s\n", "threads", "DSM (s)",
              "message passing (s)", "DSM/MP");

  for (int threads : {1, 2, 4, 8, 12, 16}) {
    const int fireflies = std::min(4, threads);

    dsm::SystemConfig cfg;
    cfg.region_bytes = 4u << 20;
    apps::MatMulConfig mm;
    mm.n = 256;
    mm.num_threads = threads;
    mm.worker_hosts = benchutil::WorkerIds(fireflies);
    mm.verify = false;
    auto dsm_run = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);

    sim::Engine eng;
    dsm::System sys(eng, cfg,
                    benchutil::MasterPlusFireflies(Sun(), fireflies));
    apps::MpMatMul mp(sys);
    sys.Start();
    apps::MpMatMulConfig mpc;
    mpc.n = 256;
    mpc.num_threads = threads;
    mpc.worker_hosts = benchutil::WorkerIds(fireflies);
    mpc.verify = threads <= 2;
    apps::MpMatMulResult mp_result;
    mp.Setup(mpc, &mp_result);
    eng.Run();
    if (!mp_result.done || !mp_result.correct) {
      std::printf("MP run FAILED at %d threads\n", threads);
      continue;
    }

    const double mp_s = ToSeconds(mp_result.elapsed);
    std::printf("%-8d %12.1f %20.1f %9.2fx\n", threads, dsm_run.seconds,
                mp_s, dsm_run.seconds / mp_s);
    const std::string k = "threads" + std::to_string(threads);
    report.Add(k + ".dsm_s", dsm_run.seconds);
    report.Add(k + ".mp_s", mp_s);
  }
  std::printf("(paper: DSM is competitive with message passing and can win "
              "when demand paging overlaps the exchange phase with "
              "computation)\n");
  report.Write();
  return 0;
}
