// Remote-fault hop and round-trip reduction from the protocol fast paths.
//
// Scenario A (probable-owner hints, 3x Sun): a reader repeatedly faults on
// a page whose manager and owner are two different remote hosts. Without
// hints every fault walks requester -> manager -> owner (3 hops); with
// hints every repeat fault goes straight to the hinted owner (2 hops).
// Expected: >= 30% cut in mean hops per fault once the hint is warm.
//
// Scenario B (batched group fetch, Sun + Firefly, smallest-page policy):
// one Sun VM fault covers eight 1 KB DSM pages. Without group fetch the
// fault issues eight sequential per-page calls (8 RTTs); with it, one
// batched call (1 RTT). Expected: >= 5x round-trip reduction.
//
// The bench exits non-zero if either threshold is missed, so run_all.sh
// and CI treat a fast-path regression as a failure, not a silent number.
#include <cstdio>
#include <string>

#include "bench_util.h"

namespace mermaid {
namespace {

using benchutil::Ffly;
using benchutil::Sun;

// Sum of all per-opcode transmit counters ("reqrep.tx_bytes.*" or
// "reqrep.tx_msgs.*") across every host: total protocol wire traffic.
std::int64_t SumTxCounters(dsm::System& sys, const std::string& prefix) {
  std::int64_t total = 0;
  for (const auto& [key, value] : sys.GatherStats().Counters()) {
    if (key.rfind(prefix, 0) == 0) total += value;
  }
  return total;
}

struct HintRun {
  double mean_hops = 0;
  double p50 = 0;
  double p99 = 0;
  std::int64_t faults = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t wire_msgs = 0;
};

// Page 1 is managed by host 1; host 2 owns it (writes each round), host 0
// read-faults each round after the write invalidates its copy.
HintRun RunHintScenario(bool hints_on, int rounds) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.probable_owner = hints_on;
  benchutil::ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, {&Sun(), &Sun(), &Sun()});
  sys.Start();
  const dsm::GlobalAddr a = sys.page_bytes();  // page 1, managed by host 1
  sys.SpawnThread(2, "writer", [&, rounds](dsm::Host& h) {
    sys.Alloc(2, arch::TypeRegistry::kInt, 3 * sys.page_bytes() / 4);
    for (int r = 0; r < rounds; ++r) {
      h.Write<std::int32_t>(a, r);  // (re)takes ownership, invalidates reader
      sys.sync(2).EventSet(2 * r + 1);
      sys.sync(2).EventWait(2 * r + 2);
    }
    // Keep the engine alive until the reader's last confirm lands.
    sys.sync(2).EventWait(9001);
    sys.sync(2).EventSet(9002);
  });
  sys.SpawnThread(0, "reader", [&, rounds](dsm::Host& h) {
    for (int r = 0; r < rounds; ++r) {
      sys.sync(0).EventWait(2 * r + 1);
      if (h.Read<std::int32_t>(a) != r) std::abort();
      sys.sync(0).EventSet(2 * r + 2);
    }
    sys.sync(0).EventSet(9001);
    sys.sync(0).EventWait(9002);
  });
  eng.Run();
  HintRun run;
  const auto hops = sys.host(0).stats().HistCopy("dsm.vm_fault_hops");
  run.mean_hops = hops.mean();
  run.p50 = hops.Percentile(50);
  run.p99 = hops.Percentile(99);
  run.faults = static_cast<std::int64_t>(hops.count());
  run.wire_bytes = SumTxCounters(sys, "reqrep.tx_bytes.");
  run.wire_msgs = SumTxCounters(sys, "reqrep.tx_msgs.");
  return run;
}

struct GroupRun {
  double rtts_per_fault = 0;
  std::int64_t vm_faults = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t wire_msgs = 0;
};

// The Firefly owner fills 8 KB; the Sun reader takes one VM fault spanning
// eight smallest-policy DSM pages and the bench counts how many protocol
// round trips that single fault needed.
GroupRun RunGroupScenario(bool group_on) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.group_fetch = group_on;
  cfg.page_policy = dsm::PageSizePolicy::kSmallest;
  benchutil::ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, {&Sun(), &Ffly()});
  sys.Start();
  constexpr int kInts = 2048;  // 8 KB: one Sun VM fault, eight DSM pages
  sys.SpawnThread(1, "ffly-writer", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(1, arch::TypeRegistry::kInt, kInts);
    for (int i = 0; i < kInts; ++i) {
      h.Write<std::int32_t>(a + 4 * i, 3 * i + 1);
    }
    sys.sync(1).EventSet(1);
    sys.sync(1).EventWait(2);
    sys.sync(1).EventSet(3);
  });
  sys.SpawnThread(0, "sun-reader", [&](dsm::Host& h) {
    sys.sync(0).EventWait(1);
    for (int i = 0; i < kInts; ++i) {
      if (h.Read<std::int32_t>(4 * i) != 3 * i + 1) std::abort();
    }
    sys.sync(0).EventSet(2);
    sys.sync(0).EventWait(3);
  });
  eng.Run();
  GroupRun run;
  const auto rtts = sys.host(0).stats().HistCopy("dsm.vm_fault_rtts");
  run.rtts_per_fault = rtts.mean();
  run.vm_faults = sys.host(0).stats().Count("dsm.vm_faults");
  run.wire_bytes = SumTxCounters(sys, "reqrep.tx_bytes.");
  run.wire_msgs = SumTxCounters(sys, "reqrep.tx_msgs.");
  return run;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::JsonReport report("fault_hops");
  constexpr int kRounds = 32;

  benchutil::PrintHeader("Fast path A: probable-owner hints (3x Sun)");
  HintRun off = RunHintScenario(false, kRounds);
  HintRun on = RunHintScenario(true, kRounds);
  const double hop_cut_pct =
      off.mean_hops > 0 ? 100.0 * (1.0 - on.mean_hops / off.mean_hops) : 0;
  std::printf("%-22s %12s %12s\n", "", "hints off", "hints on");
  std::printf("%-22s %12.3f %12.3f\n", "mean hops/fault", off.mean_hops,
              on.mean_hops);
  std::printf("%-22s %12.1f %12.1f\n", "fault hops p50", off.p50, on.p50);
  std::printf("%-22s %12.1f %12.1f\n", "fault hops p99", off.p99, on.p99);
  std::printf("%-22s %12lld %12lld\n", "wire bytes",
              static_cast<long long>(off.wire_bytes),
              static_cast<long long>(on.wire_bytes));
  std::printf("%-22s %12lld %12lld\n", "wire messages",
              static_cast<long long>(off.wire_msgs),
              static_cast<long long>(on.wire_msgs));
  std::printf("mean-hop reduction: %.1f%% (target >= 30%%)\n", hop_cut_pct);
  report.Add("hint.rounds", kRounds);
  report.Add("hint.faults", on.faults);
  report.Add("hint.mean_hops_off", off.mean_hops);
  report.Add("hint.mean_hops_on", on.mean_hops);
  report.Add("hint.hops_p50_on", on.p50);
  report.Add("hint.hops_p99_on", on.p99);
  report.Add("hint.hop_reduction_pct", hop_cut_pct);
  report.Add("hint.wire_bytes_off", off.wire_bytes);
  report.Add("hint.wire_bytes_on", on.wire_bytes);
  report.Add("hint.wire_msgs_off", off.wire_msgs);
  report.Add("hint.wire_msgs_on", on.wire_msgs);

  benchutil::PrintHeader(
      "Fast path B: batched group fetch (Sun + Firefly, smallest pages)");
  GroupRun goff = RunGroupScenario(false);
  GroupRun gon = RunGroupScenario(true);
  const double rtt_reduction =
      gon.rtts_per_fault > 0 ? goff.rtts_per_fault / gon.rtts_per_fault : 0;
  std::printf("%-22s %12s %12s\n", "", "group off", "group on");
  std::printf("%-22s %12.1f %12.1f\n", "RTTs per VM fault",
              goff.rtts_per_fault, gon.rtts_per_fault);
  std::printf("%-22s %12lld %12lld\n", "wire bytes",
              static_cast<long long>(goff.wire_bytes),
              static_cast<long long>(gon.wire_bytes));
  std::printf("%-22s %12lld %12lld\n", "wire messages",
              static_cast<long long>(goff.wire_msgs),
              static_cast<long long>(gon.wire_msgs));
  std::printf("round-trip reduction: %.1fx (target >= 5x)\n", rtt_reduction);
  report.Add("group.vm_faults", gon.vm_faults);
  report.Add("group.rtts_per_fault_off", goff.rtts_per_fault);
  report.Add("group.rtts_per_fault_on", gon.rtts_per_fault);
  report.Add("group.rtt_reduction_x", rtt_reduction);
  report.Add("group.wire_bytes_off", goff.wire_bytes);
  report.Add("group.wire_bytes_on", gon.wire_bytes);
  report.Add("group.wire_msgs_off", goff.wire_msgs);
  report.Add("group.wire_msgs_on", gon.wire_msgs);

  report.Write();

  bool ok = true;
  if (hop_cut_pct < 30.0) {
    std::fprintf(stderr, "FAIL: hint hop reduction %.1f%% < 30%%\n",
                 hop_cut_pct);
    ok = false;
  }
  if (rtt_reduction < 5.0) {
    std::fprintf(stderr, "FAIL: group RTT reduction %.1fx < 5x\n",
                 rtt_reduction);
    ok = false;
  }
  return ok ? 0 : 1;
}
