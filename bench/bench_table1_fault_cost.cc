// Table 1 — Costs of page fault handling (ms).
//
//              Sun    Firefly
//   Read       1.98   6.80
//   Write      2.04   6.70
//
// Measures the requester-side handler cost (user-level handler invocation +
// DSM page-table processing + request transmission setup) observed through
// the virtual-time engine. These costs are the Table-1 calibration inputs of
// the model, so agreement is a consistency check of the fault path, not an
// independent prediction.
#include <cstdio>

#include "bench_util.h"

namespace mermaid {
namespace {

using benchutil::Ffly;
using benchutil::Sun;

struct Cell {
  double read_ms = 0;
  double write_ms = 0;
};

Cell MeasureFaultHandling(const arch::ArchProfile& requester) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  dsm::System sys(eng, cfg, {&Sun(), &requester});
  sys.Start();
  sys.SpawnThread(0, "owner", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(0, arch::TypeRegistry::kInt, 8192);
    std::vector<std::int32_t> fill(8192, 7);
    h.WriteBlock<std::int32_t>(a, fill.data(), fill.size());
    sys.sync(0).EventSet(1);
    sys.sync(0).EventWait(2);
    // Take the pages back so the requester write-faults cleanly.
    h.WriteBlock<std::int32_t>(a, fill.data(), fill.size());
    sys.sync(0).EventSet(3);
  });
  sys.SpawnThread(1, "requester", [&](dsm::Host& h) {
    sys.sync(1).EventWait(1);
    for (int p = 0; p < 4; ++p) {
      h.Touch(static_cast<dsm::GlobalAddr>(p) * sys.page_bytes(),
              dsm::Access::kRead);
    }
    sys.sync(1).EventSet(2);
    sys.sync(1).EventWait(3);
    for (int p = 0; p < 4; ++p) {
      h.Touch(static_cast<dsm::GlobalAddr>(p) * sys.page_bytes(),
              dsm::Access::kWrite);
    }
  });
  eng.Run();
  Cell cell;
  cell.read_ms = sys.host(1).stats().DistCopy("dsm.fault_handling_r_ms").mean();
  cell.write_ms =
      sys.host(1).stats().DistCopy("dsm.fault_handling_w_ms").mean();
  return cell;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::JsonReport report("table1_fault_cost");
  benchutil::PrintHeader("Table 1: costs of page fault handling (ms)");
  auto sun = MeasureFaultHandling(benchutil::Sun());
  auto ffly = MeasureFaultHandling(benchutil::Ffly());
  report.Add("sun.read_ms", sun.read_ms);
  report.Add("sun.write_ms", sun.write_ms);
  report.Add("ffly.read_ms", ffly.read_ms);
  report.Add("ffly.write_ms", ffly.write_ms);
  std::printf("%-8s %10s %10s %14s %14s\n", "", "Sun", "Firefly",
              "paper(Sun)", "paper(Ffly)");
  std::printf("%-8s %10.2f %10.2f %14.2f %14.2f\n", "Read", sun.read_ms,
              ffly.read_ms, 1.98, 6.80);
  std::printf("%-8s %10.2f %10.2f %14.2f %14.2f\n", "Write", sun.write_ms,
              ffly.write_ms, 2.04, 6.70);
  std::printf("(values are calibration inputs exercised through the fault "
              "path; see EXPERIMENTS.md)\n");
  report.Write();
  return 0;
}
