// Figure 5 — PCB inspection with the master on a Sun and slaves on one or
// more Fireflies (response time vs number of threads).
//
// A 2 cm x 16 cm board area (the paper's measurement case). Speedup is
// limited by stripe imbalance (feature density grows along the board) and
// by the overlap recomputation, but reaches ~7 at 10 threads; the checking
// that takes minutes sequentially on the Sun finishes in well under a
// minute on a few Fireflies.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Sun;
  benchutil::JsonReport report("fig5_pcb_hetero");
  benchutil::PrintHeader(
      "Figure 5: PCB 2x16 cm, master on Sun, slaves on 1-4 Fireflies");

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;

  // Sequential reference on the Sun itself (the paper's "six minutes").
  apps::PcbConfig pcb;
  pcb.height = 200;
  pcb.width = 1600;
  pcb.num_threads = 1;
  pcb.master_host = 0;
  pcb.worker_hosts = {0};
  pcb.verify = false;
  auto seq = benchutil::RunPcbOnce(cfg, {&Sun()}, pcb);
  std::printf("sequential on the Sun: %.0f s (paper: ~5-6 minutes)\n\n",
              seq.seconds);
  report.Add("sequential_s", seq.seconds);

  std::printf("%-8s %10s %14s %12s\n", "threads", "fireflies", "time (s)",
              "speedup");
  double base = 0;
  for (int threads : {1, 2, 3, 4, 6, 8, 10, 12}) {
    const int fireflies = std::min(4, threads);
    pcb.num_threads = threads;
    pcb.worker_hosts = benchutil::WorkerIds(fireflies);
    pcb.verify = threads <= 2;  // verified in tests; spot-check here
    auto run = benchutil::RunPcbOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), pcb);
    if (threads == 1) base = run.seconds;
    std::printf("%-8d %10d %14.1f %11.2fx%s\n", threads, fireflies,
                run.seconds, base / run.seconds,
                run.correct ? "" : "  (INCORRECT)");
    report.Add("threads" + std::to_string(threads) + "_s", run.seconds);
  }
  std::printf("(paper: speedup ~7 at 10 threads; limits are stripe "
              "imbalance and overlap work)\n");
  report.Write();
  return 0;
}
