// Sender-side conversion cache: repeat read faults on read-shared pages.
//
// The paper's conversion model charges every cross-representation page
// transfer the full Table-3 conversion delay. When one Sun owner feeds the
// same read-only pages to many Fireflies, that work is identical for every
// reader; the version-keyed sender-side cache converts once and serves the
// cached image to every later same-representation reader. This bench
// measures the total modeled conversion time and the read-phase response
// time with the cache on vs off.
#include <cstdio>

#include "bench_util.h"

namespace mermaid {
namespace {

using Reg = arch::TypeRegistry;

constexpr int kReaders = 6;           // Firefly hosts 1..kReaders
constexpr int kPages = 8;             // 8 KB pages of doubles
constexpr int kDoublesPerPage = 1024;

struct Run {
  double read_phase_s = 0;
  double convert_ms = 0;        // summed modeled conversion time, all hosts
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t conversions = 0;
};

Run Measure(bool cache_on) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  cfg.convert_cache = cache_on;
  std::vector<const arch::ArchProfile*> hosts{&benchutil::Sun()};
  for (int i = 0; i < kReaders; ++i) hosts.push_back(&benchutil::Ffly());
  dsm::System sys(eng, cfg, hosts);
  sys.Start();

  constexpr int kDoubles = kPages * kDoublesPerPage;
  SimTime start = 0, end = 0;
  sys.SpawnThread(0, "owner", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(0, Reg::kDouble, kDoubles);
    std::vector<double> fill(kDoubles, 2.5);
    h.WriteBlock<double>(a, fill.data(), fill.size());
    sys.sync(0).SemInit(1, 0);
    start = h.runtime().Now();
    // Readers run strictly one after another: every fault after the first
    // reader's is a repeat read fault on an unmodified page.
    for (int r = 1; r <= kReaders; ++r) {
      sys.SpawnThread(r, "reader" + std::to_string(r),
                      [&, a](dsm::Host& hh) {
                        std::vector<double> buf(kDoubles);
                        hh.ReadBlock<double>(a, kDoubles, buf.data());
                        sys.sync(hh.id()).V(1);
                      });
      sys.sync(0).P(1);
    }
    end = h.runtime().Now();
  });
  eng.Run();

  Run run;
  run.read_phase_s = ToSeconds(end - start);
  for (int i = 0; i <= kReaders; ++i) {
    auto& s = sys.host(i).stats();
    run.convert_ms += s.DistCopy("dsm.convert_ms").sum();
    run.cache_hits += s.Count("dsm.convert_cache_hits");
    run.cache_misses += s.Count("dsm.convert_cache_misses");
    run.conversions += s.Count("dsm.conversions");
  }
  return run;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::JsonReport report("convert_cache");
  benchutil::PrintHeader(
      "Conversion cache: 1 Sun owner feeding 6 Firefly readers "
      "(8 pages of doubles, repeat read faults)");

  Run off = Measure(false);
  Run on = Measure(true);
  std::printf("%-12s %14s %16s %8s %8s\n", "cache", "read phase (s)",
              "convert time (ms)", "hits", "misses");
  std::printf("%-12s %14.2f %16.1f %8lld %8lld\n", "off", off.read_phase_s,
              off.convert_ms, static_cast<long long>(off.cache_hits),
              static_cast<long long>(off.cache_misses));
  std::printf("%-12s %14.2f %16.1f %8lld %8lld\n", "on", on.read_phase_s,
              on.convert_ms, static_cast<long long>(on.cache_hits),
              static_cast<long long>(on.cache_misses));
  const double reduction =
      off.convert_ms > 0 ? 100.0 * (off.convert_ms - on.convert_ms) /
                               off.convert_ms
                         : 0;
  std::printf("conversion time reduced by %.0f%% (expect ~%d/%d: one miss "
              "per page, hits for every later reader)\n",
              reduction, kReaders - 1, kReaders);

  report.Add("off.read_phase_s", off.read_phase_s);
  report.Add("off.convert_ms", off.convert_ms);
  report.Add("on.read_phase_s", on.read_phase_s);
  report.Add("on.convert_ms", on.convert_ms);
  report.Add("on.cache_hits", on.cache_hits);
  report.Add("on.cache_misses", on.cache_misses);
  report.Add("convert_time_reduction_pct", reduction);
  report.Write();
  return 0;
}
