// Ablations of the heterogeneity machinery (beyond the paper's tables).
//
//   A. Conversion cost on/off — quantifies §2.3's claim that "the cost of
//      data conversion does not substantially increase the overall cost of
//      paging across the network" on the whole-application level.
//      (With conversion disabled the modeled cost vanishes; results would
//      be wrong on a real system, which is the point of the mechanism.)
//   B. Partial-page transfer on/off — the paper's allocated-extent
//      optimization; measured in bytes moved for a sparse working set.
//   C. Same-type source preference on/off — §2.3: "transferring a page from
//      a host of the same type whenever possible"; measured in conversions
//      avoided for read-shared data in a mixed Sun/Firefly cluster.
#include <cstdio>

#include "bench_util.h"

namespace mermaid {
namespace {

using Reg = arch::TypeRegistry;

void AblationConversion(benchutil::JsonReport& report) {
  benchutil::PrintHeader("Ablation A: data conversion cost on/off "
                         "(MM 256x256, master Sun + 4 Fireflies, 8 threads)");
  apps::MatMulConfig mm;
  mm.n = 256;
  mm.num_threads = 8;
  mm.worker_hosts = benchutil::WorkerIds(4);
  mm.verify = false;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;

  cfg.convert_enabled = true;
  auto with = benchutil::RunMatMulOnce(
      cfg, benchutil::MasterPlusFireflies(benchutil::Sun(), 4), mm);
  cfg.convert_enabled = false;
  auto without = benchutil::RunMatMulOnce(
      cfg, benchutil::MasterPlusFireflies(benchutil::Sun(), 4), mm);
  std::printf("with conversion:    %7.1f s  (%lld page conversions)\n",
              with.seconds, static_cast<long long>(with.conversions));
  std::printf("without conversion: %7.1f s\n", without.seconds);
  std::printf("conversion adds %.1f%% to the response time\n",
              100.0 * (with.seconds - without.seconds) / without.seconds);
  report.Add("conversion.with_s", with.seconds);
  report.Add("conversion.without_s", without.seconds);
  report.Add("conversion.count", with.conversions);
}

void AblationPartialTransfer(benchutil::JsonReport& report) {
  benchutil::PrintHeader(
      "Ablation B: partial-page transfer (page holding only 64 allocated "
      "ints of its 8 KB)");
  for (bool partial : {true, false}) {
    sim::Engine eng;
    dsm::SystemConfig cfg;
    cfg.region_bytes = 1u << 20;
    cfg.partial_page_transfer = partial;
    dsm::System sys(eng, cfg, {&benchutil::Sun(), &benchutil::Ffly()});
    sys.Start();
    sys.SpawnThread(0, "writer", [&](dsm::Host& h) {
      dsm::GlobalAddr a = sys.Alloc(0, Reg::kInt, 64);
      for (int i = 0; i < 64; ++i) h.Write<std::int32_t>(a + 4 * i, i);
      sys.sync(0).EventSet(1);
    });
    sys.SpawnThread(1, "reader", [&](dsm::Host& h) {
      sys.sync(1).EventWait(1);
      std::int64_t sum = 0;
      for (int i = 0; i < 64; ++i) sum += h.Read<std::int32_t>(4 * i);
      if (sum != 64 * 63 / 2) std::printf("BAD SUM\n");
    });
    eng.Run();
    std::printf(
        "partial=%-5s bytes moved: %-6lld conversion delay on the "
        "receiving Firefly scales with the same extent\n",
        partial ? "on" : "off",
        static_cast<long long>(sys.host(1).stats().Count("dsm.bytes_in")));
    report.Add(std::string("partial.") + (partial ? "on" : "off") +
                   ".bytes_in",
               sys.host(1).stats().Count("dsm.bytes_in"));
  }
}

void AblationSameTypeSource(benchutil::JsonReport& report) {
  benchutil::PrintHeader(
      "Ablation C: same-type source preference for read-shared pages "
      "(1 Sun owner, 3 Sun + 3 Ffly readers)");
  for (bool pref : {false, true}) {
    sim::Engine eng;
    dsm::SystemConfig cfg;
    cfg.region_bytes = 1u << 20;
    cfg.prefer_same_type_source = pref;
    std::vector<const arch::ArchProfile*> hosts{&benchutil::Sun()};
    for (int i = 0; i < 3; ++i) hosts.push_back(&benchutil::Sun());
    for (int i = 0; i < 3; ++i) hosts.push_back(&benchutil::Ffly());
    dsm::System sys(eng, cfg, hosts);
    sys.Start();
    sys.SpawnThread(0, "owner", [&](dsm::Host& h) {
      dsm::GlobalAddr a = sys.Alloc(0, Reg::kInt, 16 * 2048);
      std::vector<std::int32_t> fill(16 * 2048, 1);
      h.WriteBlock<std::int32_t>(a, fill.data(), fill.size());
      sys.sync(0).SemInit(1, 0);
      sys.sync(0).EventSet(2);
      // Readers replicate the data; Firefly readers last, so same-type
      // copies exist when the preference can apply.
      for (int r = 1; r <= 6; ++r) sys.sync(0).P(1);
    });
    for (int r = 1; r <= 6; ++r) {
      sys.SpawnThread(r, "reader" + std::to_string(r), [&, r](dsm::Host& h) {
        sys.sync(r).EventWait(2);
        // Stagger: Suns first, then Fireflies.
        h.Compute(r >= 4 ? 200000.0 : 1000.0);
        std::vector<std::int32_t> buf(16 * 2048);
        h.ReadBlock<std::int32_t>(0, buf.size(), buf.data());
        sys.sync(r).V(1);
      });
    }
    eng.Run();
    std::int64_t conversions = 0, same_type = 0;
    for (int i = 0; i < 7; ++i) {
      conversions += sys.host(i).stats().Count("dsm.conversions");
      same_type += sys.host(i).stats().Count("dsm.same_type_source");
    }
    std::printf(
        "preference=%-5s conversions=%-4lld same-type grants=%lld\n",
        pref ? "on" : "off", static_cast<long long>(conversions),
        static_cast<long long>(same_type));
    report.Add(std::string("sourcepref.") + (pref ? "on" : "off") +
                   ".conversions",
               conversions);
  }
  std::printf("(reads served from same-representation replicas skip "
              "conversion entirely)\n");
}

}  // namespace
}  // namespace mermaid

int main() {
  mermaid::benchutil::JsonReport report("ablation_hetero");
  mermaid::AblationConversion(report);
  mermaid::AblationPartialTransfer(report);
  mermaid::AblationSameTypeSource(report);
  report.Write();
  return 0;
}
