// Figure 4 — Matrix multiplication with the master on a Sun and slaves on
// one or more Fireflies (response time vs number of threads).
//
// The paper's representative heterogeneous configuration: a workstation
// front-end driving compute servers. Performance improves up to ~14
// threads, beyond which communication overhead dominates. The homogeneous
// column (master on a Firefly) shows §3.2's "heterogeneous vs homogeneous"
// comparison: very little degradation despite every page crossing
// representations (integer conversion on each transfer).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Ffly;
  using benchutil::Sun;
  benchutil::JsonReport report("fig4_mm_hetero");
  benchutil::PrintHeader(
      "Figure 4: MM 256x256, master on Sun, slaves on 1-4 Fireflies");
  std::printf("%-8s %10s %14s %12s %14s %12s\n", "threads", "fireflies",
              "hetero (s)", "speedup", "homo (s)", "conversions");

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  // Keep 8 KB DSM pages for the all-Firefly (homogeneous) comparison runs,
  // matching the paper's Sun-containing network configuration.
  cfg.page_bytes_override = 8192;
  double hetero_base = 0;
  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const int fireflies = std::min(4, threads);
    apps::MatMulConfig mm;
    mm.n = 256;
    mm.num_threads = threads;
    mm.master_host = 0;
    mm.worker_hosts = benchutil::WorkerIds(fireflies);
    mm.verify = false;

    auto hetero = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);
    auto homo = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Ffly(), fireflies), mm);
    if (threads == 1) hetero_base = hetero.seconds;

    std::printf("%-8d %10d %14.1f %11.2fx %14.1f %12lld\n", threads,
                fireflies, hetero.seconds, hetero_base / hetero.seconds,
                homo.seconds, static_cast<long long>(hetero.conversions));
    const std::string k = "threads" + std::to_string(threads);
    report.Add(k + ".hetero_s", hetero.seconds);
    report.Add(k + ".homo_s", homo.seconds);
    report.Add(k + ".conversions", hetero.conversions);
  }
  std::printf("(paper: speedup up to 14 threads, then communication "
              "overhead; hetero ~= homo)\n");
  report.Write();
  return 0;
}
