// Table 3 — Costs of data conversions (ms).
//
//              8 KB page   1 KB page        (on a Firefly)
//   int          10.9        1.3
//   short        11.0        1.3
//   float        21.6        2.7
//   double       28.9        3.6
//   + user record (3 int, 3 float, 4 short): 19.6 ms / 8 KB on a Sun3/60.
//
// Two parts:
//   1. the modeled virtual-time costs (what the DSM engine charges when a
//      page crosses representations), checked against the paper, and
//   2. google-benchmark timings of the *real* conversion routines on the
//      build machine — the codecs actually execute on every transfer.
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mermaid/arch/scalar.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/base/rng.h"

namespace mermaid {
namespace {

using Reg = arch::TypeRegistry;

arch::ConvertContext SunToFfly() {
  arch::ConvertContext ctx;
  ctx.src = &benchutil::Sun();
  ctx.dst = &benchutil::Ffly();
  return ctx;
}

template <arch::TypeId kType>
void BM_ConvertPage(benchmark::State& state) {
  Reg reg;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / reg.SizeOf(kType);
  std::vector<std::uint8_t> page(bytes);
  base::Rng rng(1);
  for (auto& b : page) b = static_cast<std::uint8_t>(rng.NextU64());
  auto ctx = SunToFfly();
  for (auto _ : state) {
    reg.ConvertBuffer(kType, page, count, ctx);
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
}

BENCHMARK_TEMPLATE(BM_ConvertPage, Reg::kInt)->Arg(8192)->Arg(1024);
BENCHMARK_TEMPLATE(BM_ConvertPage, Reg::kShort)->Arg(8192)->Arg(1024);
BENCHMARK_TEMPLATE(BM_ConvertPage, Reg::kFloat)->Arg(8192)->Arg(1024);
BENCHMARK_TEMPLATE(BM_ConvertPage, Reg::kDouble)->Arg(8192)->Arg(1024);

void PrintModeledTable(benchutil::JsonReport& report) {
  Reg reg;
  const arch::ArchProfile& ffly = benchutil::Ffly();
  const arch::ArchProfile& sun = benchutil::Sun();
  struct Row {
    const char* name;
    arch::TypeId type;
    double paper8, paper1;
  };
  const Row rows[] = {
      {"int", Reg::kInt, 10.9, 1.3},
      {"short", Reg::kShort, 11.0, 1.3},
      {"float", Reg::kFloat, 21.6, 2.7},
      {"double", Reg::kDouble, 28.9, 3.6},
  };
  benchutil::PrintHeader(
      "Table 3: modeled data conversion costs on a Firefly (ms)");
  std::printf("%-8s %14s %14s %12s %12s\n", "", "8KB(model)", "1KB(model)",
              "8KB(paper)", "1KB(paper)");
  for (const Row& r : rows) {
    const double per = ToMillis(reg.ModeledElementCost(ffly, r.type));
    const double e8 = 8192.0 / reg.SizeOf(r.type);
    const double e1 = 1024.0 / reg.SizeOf(r.type);
    std::printf("%-8s %14.1f %14.2f %12.1f %12.2f\n", r.name, per * e8,
                per * e1, r.paper8, r.paper1);
    report.Add(std::string(r.name) + ".8KB_ms", per * e8);
    report.Add(std::string(r.name) + ".1KB_ms", per * e1);
  }
  arch::TypeId rec = reg.RegisterRecord(
      "paper_record", {{Reg::kInt, 3}, {Reg::kFloat, 3}, {Reg::kShort, 4}});
  const double rec_ms =
      ToMillis(reg.ModeledElementCost(sun, rec)) * (8192.0 / reg.SizeOf(rec));
  std::printf("%-8s %14.1f %14s %12.1f %12s   (on Sun3/60)\n", "record",
              rec_ms, "-", 19.6, "-");
  report.Add("record.8KB_sun_ms", rec_ms);
}

}  // namespace
}  // namespace mermaid

int main(int argc, char** argv) {
  mermaid::benchutil::JsonReport report("table3_conversion");
  mermaid::PrintModeledTable(report);
  std::printf("\nReal conversion-routine timings on this machine:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.Write();
  return 0;
}
