// Table 4 — End-to-end page fault delays for 8 KB pages (ms).
//
// Scenarios (R = requester, M = fixed page manager, O = owner):
//   R/M -> O      requester is the manager (one control hop, data back)
//   R -> M/O      manager is the owner (request hop, served directly)
//   R -> M -> O   all distinct (request forwarded through the manager)
// Columns are requester->owner host-type pairs; integer conversion is
// included whenever requester and owner types differ. The paper reports the
// lowest observed values; we report the minimum over repeated faults.
#include <cstdio>

#include "bench_util.h"

namespace mermaid {
namespace {

enum class Scenario { kRequesterIsManager, kManagerIsOwner, kSeparate };

double MeasureMs(Scenario sc, const arch::ArchProfile& requester,
                 const arch::ArchProfile& owner, bool write_fault) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  benchutil::ApplyTraceEnv(cfg);
  cfg.region_bytes = 1u << 20;
  // The paper's testbed always included a Sun, so Table 4 is for 8 KB DSM
  // pages even in the Firefly-to-Firefly column.
  cfg.page_bytes_override = 8192;
  std::vector<const arch::ArchProfile*> hosts;
  net::HostId owner_id = 0;
  dsm::PageNum target = 0;
  switch (sc) {
    case Scenario::kRequesterIsManager:
      hosts = {&requester, &owner};
      owner_id = 1;
      target = 0;  // managed by host 0 == requester
      break;
    case Scenario::kManagerIsOwner:
      hosts = {&requester, &owner};
      owner_id = 1;
      target = 1;  // managed by host 1 == owner
      break;
    case Scenario::kSeparate:
      // The middle manager host gets the requester's type (the paper does
      // not pin the manager's type; see EXPERIMENTS.md).
      hosts = {&requester, &requester, &owner};
      owner_id = 2;
      target = 1;  // managed by host 1, owned by host 2
      break;
  }
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  constexpr int kIters = 4;
  const dsm::GlobalAddr page_b = 8192;

  sys.SpawnThread(owner_id, "owner", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(h.id(), arch::TypeRegistry::kInt, 4096);
    std::vector<std::int32_t> fill(2048, 3);
    for (int it = 0; it < kIters; ++it) {
      // Take (back) exclusive ownership of the target page.
      h.WriteBlock<std::int32_t>(a + target * page_b, fill.data(),
                                 fill.size());
      sys.sync(h.id()).V(1);
      sys.sync(h.id()).P(2);
    }
  });
  sys.SpawnThread(0, "requester", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    for (int it = 0; it < kIters; ++it) {
      sys.sync(0).P(1);
      h.Touch(target * page_b,
              write_fault ? dsm::Access::kWrite : dsm::Access::kRead);
      sys.sync(0).V(2);
    }
  });
  eng.Run();
  // Overwritten per cell; the surviving artifact is the last cell's trace,
  // which is all CI needs as a format sample.
  benchutil::WriteTraceArtifacts(sys, "table4_end_to_end");
  return sys.host(0).stats().DistCopy("dsm.fault_delay_ms").min();
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  using benchutil::Ffly;
  using benchutil::Sun;
  struct Pair {
    const char* name;
    const arch::ArchProfile* r;
    const arch::ArchProfile* o;
  };
  const Pair pairs[] = {
      {"Sun->Sun", &Sun(), &Sun()},
      {"Ffly->Sun", &Ffly(), &Sun()},
      {"Sun->Ffly", &Sun(), &Ffly()},
      {"Ffly->Ffly", &Ffly(), &Ffly()},
  };
  struct Row {
    const char* name;
    Scenario sc;
    // Paper values: {pair}{R,W}
    double paper[4][2];
  };
  const Row rows[] = {
      {"R/M->O", Scenario::kRequesterIsManager,
       {{26.4, 26.7}, {47.7, 48.3}, {56.3, 47.8}, {46.5, 46.4}}},
      {"R->M/O", Scenario::kManagerIsOwner,
       {{29.6, 27.9}, {50.9, 51.6}, {58.6, 59.4}, {49.6, 49.1}}},
      {"R->M->O", Scenario::kSeparate,
       {{31.7, 31.3}, {54.7, 55.5}, {61.9, 61.3}, {54.4, 53.6}}},
  };

  benchutil::JsonReport report("table4_end_to_end");
  benchutil::PrintHeader(
      "Table 4: end-to-end page fault delays for 8 KB pages (ms), "
      "measured | paper");
  std::printf("%-9s", "");
  for (const Pair& p : pairs) std::printf(" %21s", p.name);
  std::printf("\n%-9s", "");
  for (int i = 0; i < 4; ++i) std::printf(" %10s %10s", "R", "W");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-9s", row.name);
    for (int p = 0; p < 4; ++p) {
      for (int w = 0; w < 2; ++w) {
        const double ms =
            MeasureMs(row.sc, *pairs[p].r, *pairs[p].o, w == 1);
        std::printf(" %4.1f|%4.1f", ms, row.paper[p][w]);
        report.Add(std::string(row.name) + "." + pairs[p].name +
                       (w == 1 ? ".W_ms" : ".R_ms"),
                   ms);
      }
    }
    std::printf("\n");
  }
  std::printf("(requester->owner pairs; integer conversion included when "
              "types differ)\n");
  report.Write();
  return 0;
}
