// §3.3 "Thrashing", fixed — sequential consistency vs. release consistency
// on the write-sharing workloads.
//
// MM2 with the large page-size algorithm is the paper's pathological case:
// an 8 KB result page holds 8 rows, rows are dealt round-robin, and every
// element store under write-invalidate ping-pongs the whole page between
// Fireflies. With SystemConfig::release_consistency on, each writer twins
// the page and keeps writing locally; the done-semaphore V (a release)
// ships only the byte-range diffs to the page's home, and the master's P
// (an acquire) pulls the write notices. Same program, same synchronization,
// a fraction of the wire traffic.
//
// This bench runs the identical workload under both modes and FAILS (exit
// 1) unless RC cuts write-sharing wire bytes by at least 2x AND completes
// faster — it is the CI gate for the RC mode, not just a report.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace mermaid;

struct WireRun {
  double seconds = 0;
  bool correct = false;
  std::int64_t wire_bytes = 0;
  std::int64_t packets = 0;
  std::int64_t pages_transferred = 0;
  std::int64_t rc_flushes = 0;
  std::int64_t rc_flush_bytes = 0;
};

// Like benchutil::RunMatMulOnce, but captures total wire bytes (every
// packet the network carried, invalidations and sync included — the
// number the thrash fix is supposed to shrink).
WireRun RunMm(const dsm::SystemConfig& sys_cfg,
              const std::vector<const arch::ArchProfile*>& hosts,
              const apps::MatMulConfig& mm_cfg) {
  base::BulkCopyReset();
  sim::Engine eng;
  dsm::SystemConfig cfg = sys_cfg;
  benchutil::ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  apps::MatMulResult result;
  apps::SetupMatMul(sys, mm_cfg, &result);
  eng.Run();
  auto& st = sys.GatherStats();
  WireRun run;
  run.seconds = ToSeconds(result.elapsed);
  run.correct = result.done && result.correct;
  run.wire_bytes = st.Count("net.bytes_sent");
  run.packets = st.Count("net.packets_sent");
  run.pages_transferred = st.Count("dsm.pages_in");
  run.rc_flushes = st.Count("dsm.rc_flushes");
  run.rc_flush_bytes = st.Count("dsm.rc_flush_bytes");
  benchutil::WriteTraceArtifacts(sys, cfg.release_consistency ? "rc_mm"
                                                              : "sc_mm");
  return run;
}

WireRun RunPcb(const dsm::SystemConfig& sys_cfg,
               const std::vector<const arch::ArchProfile*>& hosts,
               const apps::PcbConfig& pcb_cfg) {
  base::BulkCopyReset();
  sim::Engine eng;
  dsm::SystemConfig cfg = sys_cfg;
  benchutil::ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, hosts);
  arch::TypeId stats_type = apps::RegisterPcbTypes(sys.registry());
  sys.Start();
  apps::PcbResult result;
  apps::SetupPcb(sys, stats_type, pcb_cfg, &result);
  eng.Run();
  auto& st = sys.GatherStats();
  WireRun run;
  run.seconds = ToSeconds(result.elapsed);
  run.correct = result.done && result.correct;
  run.wire_bytes = st.Count("net.bytes_sent");
  run.packets = st.Count("net.packets_sent");
  run.pages_transferred = st.Count("dsm.pages_in");
  run.rc_flushes = st.Count("dsm.rc_flushes");
  run.rc_flush_bytes = st.Count("dsm.rc_flush_bytes");
  return run;
}

void PrintPair(const char* what, const WireRun& sc, const WireRun& rc) {
  std::printf("%-28s %10s %14s %12s %10s\n", what, "time (s)", "wire bytes",
              "transfers", "correct");
  std::printf("%-28s %10.2f %14lld %12lld %10s\n", "  sequential consistency",
              sc.seconds, static_cast<long long>(sc.wire_bytes),
              static_cast<long long>(sc.pages_transferred),
              sc.correct ? "yes" : "NO");
  std::printf("%-28s %10.2f %14lld %12lld %10s\n", "  release consistency",
              rc.seconds, static_cast<long long>(rc.wire_bytes),
              static_cast<long long>(rc.pages_transferred),
              rc.correct ? "yes" : "NO");
  std::printf("  -> %.2fx fewer wire bytes, %.2fx time (%lld diffs, "
              "%lld diff bytes)\n\n",
              static_cast<double>(sc.wire_bytes) /
                  static_cast<double>(rc.wire_bytes > 0 ? rc.wire_bytes : 1),
              rc.seconds / (sc.seconds > 0 ? sc.seconds : 1),
              static_cast<long long>(rc.rc_flushes),
              static_cast<long long>(rc.rc_flush_bytes));
}

}  // namespace

int main() {
  using benchutil::Sun;
  benchutil::JsonReport report("rc");
  benchutil::PrintHeader(
      "Write-sharing thrash: SC (write-invalidate) vs RC (twin/diff)");

  // MM2, the paper's thrash case: 8 threads on 3 Fireflies, rows dealt
  // round-robin so every 8 KB result page is write-shared, each element
  // stored as it is computed.
  apps::MatMulConfig mm;
  mm.n = 256;
  mm.master_host = 0;
  mm.verify = true;  // the master's acquire must see every diffed element
  mm.element_writes = true;
  mm.round_robin_rows = true;
  mm.num_threads = 8;
  mm.worker_hosts = benchutil::WorkerIds(3);

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  cfg.page_policy = dsm::PageSizePolicy::kLargest;
  cfg.net.seed = 1990;

  const auto hosts = benchutil::MasterPlusFireflies(Sun(), 3);
  cfg.release_consistency = false;
  const WireRun mm_sc = RunMm(cfg, hosts, mm);
  cfg.release_consistency = true;
  const WireRun mm_rc = RunMm(cfg, hosts, mm);
  PrintPair("MM2 256x256, 8 thr / 3 Ffly", mm_sc, mm_rc);
  report.Add("mm2.sc_s", mm_sc.seconds);
  report.Add("mm2.rc_s", mm_rc.seconds);
  report.Add("mm2.sc_wire_bytes", mm_sc.wire_bytes);
  report.Add("mm2.rc_wire_bytes", mm_rc.wire_bytes);
  report.Add("mm2.sc_transfers", mm_sc.pages_transferred);
  report.Add("mm2.rc_transfers", mm_rc.pages_transferred);
  report.Add("mm2.rc_flushes", mm_rc.rc_flushes);
  report.Add("mm2.rc_flush_bytes", mm_rc.rc_flush_bytes);

  // PCB inspection at the paper's sizes: stripes overlap, so neighbouring
  // workers write-share the boundary pages and the per-worker stats page.
  apps::PcbConfig pcb;
  pcb.num_threads = 6;
  pcb.master_host = 0;
  pcb.worker_hosts = benchutil::WorkerIds(3);
  cfg.release_consistency = false;
  const WireRun pcb_sc = RunPcb(cfg, hosts, pcb);
  cfg.release_consistency = true;
  const WireRun pcb_rc = RunPcb(cfg, hosts, pcb);
  PrintPair("PCB 200x1600, 6 thr / 3 Ffly", pcb_sc, pcb_rc);
  report.Add("pcb.sc_s", pcb_sc.seconds);
  report.Add("pcb.rc_s", pcb_rc.seconds);
  report.Add("pcb.sc_wire_bytes", pcb_sc.wire_bytes);
  report.Add("pcb.rc_wire_bytes", pcb_rc.wire_bytes);
  report.Write();

  // CI gate: on the write-sharing workload RC must at least halve the wire
  // bytes AND finish sooner — and both modes must compute the right answer.
  int status = 0;
  if (!mm_sc.correct || !mm_rc.correct || !pcb_sc.correct ||
      !pcb_rc.correct) {
    std::fprintf(stderr, "FAIL: a run produced incorrect results\n");
    status = 1;
  }
  if (mm_rc.wire_bytes * 2 > mm_sc.wire_bytes) {
    std::fprintf(stderr,
                 "FAIL: RC wire bytes %lld not at least 2x below SC %lld\n",
                 static_cast<long long>(mm_rc.wire_bytes),
                 static_cast<long long>(mm_sc.wire_bytes));
    status = 1;
  }
  if (mm_rc.seconds >= mm_sc.seconds) {
    std::fprintf(stderr, "FAIL: RC time %.2fs not below SC %.2fs\n",
                 mm_rc.seconds, mm_sc.seconds);
    status = 1;
  }
  if (status == 0) {
    std::printf("gate passed: RC cut MM2 wire bytes %.2fx and time %.2fx\n",
                static_cast<double>(mm_sc.wire_bytes) /
                    static_cast<double>(mm_rc.wire_bytes),
                mm_sc.seconds / mm_rc.seconds);
  }
  return status;
}
