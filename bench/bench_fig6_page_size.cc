// Figure 6 — Response times of MM1 using the large vs small page-size
// algorithms (§2.4, §3.3).
//
// Large: DSM pages are 8 KB (the Sun's VM page size); Fireflies group eight
// of their 1 KB VM pages per DSM page. Small: DSM pages are 1 KB; the Sun
// fills its 8 KB VM page with eight DSM pages per fault. With MM1's good
// locality the paper sees a definite degradation under the small algorithm,
// from the extra (expensive) fault handling on the Fireflies.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Sun;
  benchutil::JsonReport report("fig6_page_size");
  benchutil::PrintHeader(
      "Figure 6: MM1 256x256, large vs small page size algorithm");
  std::printf("%-8s %14s %14s %12s %16s %16s\n", "threads", "large (s)",
              "small (s)", "small/large", "transfers(L)", "transfers(S)");

  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const int fireflies = std::min(4, threads);
    apps::MatMulConfig mm;
    mm.n = 256;
    mm.num_threads = threads;
    mm.worker_hosts = benchutil::WorkerIds(fireflies);
    mm.verify = false;

    dsm::SystemConfig cfg;
    cfg.region_bytes = 4u << 20;
    cfg.page_policy = dsm::PageSizePolicy::kLargest;
    auto large = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);
    cfg.page_policy = dsm::PageSizePolicy::kSmallest;
    auto small = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);

    std::printf("%-8d %14.1f %14.1f %11.2fx %16lld %16lld\n", threads,
                large.seconds, small.seconds, small.seconds / large.seconds,
                static_cast<long long>(large.pages_transferred),
                static_cast<long long>(small.pages_transferred));
    const std::string k = "threads" + std::to_string(threads);
    report.Add(k + ".large_s", large.seconds);
    report.Add(k + ".small_s", small.seconds);
    report.Add(k + ".large_transfers", large.pages_transferred);
    report.Add(k + ".small_transfers", small.pages_transferred);
  }
  std::printf("(paper: definite degradation with the small algorithm "
              "throughout the processor range)\n");
  report.Write();
  return 0;
}
