// Table 2 — Cost of transferring a page (ms).
//
//    from \ to     Sun   Firefly  |   Sun   Firefly
//    Sun            18     27     |   5.1    7.6
//    Firefly        25     33     |   7.3    6.7
//    page size        8 KB        |      1 KB
//
// Sends one page-sized message through the full user-level stack
// (fragmentation -> datagram network -> reassembly) for every ordered host
// pair and reports the end-to-end delivery time in virtual milliseconds.
#include <cstdio>

#include "bench_util.h"
#include "mermaid/base/rng.h"
#include "mermaid/net/fragment.h"

namespace mermaid {
namespace {

double MeasureTransferMs(std::size_t bytes, const arch::ArchProfile& from,
                         const arch::ArchProfile& to) {
  sim::Engine eng;
  net::Network net(eng, {});
  auto rx = net.Attach(1, &to);
  net.Attach(0, &from);
  std::vector<std::uint8_t> payload(bytes, 0x5A);
  double ms = -1;
  eng.Spawn("sender", [&] {
    net::Fragmenter frag(eng, net, 0);
    net::Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = net::MsgKind::kData;
    m.payload = payload;
    frag.Send(std::move(m));
  });
  eng.Spawn("receiver", [&] {
    net::Reassembler re(eng);
    while (auto pkt = rx.Recv()) {
      if (auto msg = re.OnPacket(*pkt)) {
        ms = ToMillis(eng.Now());
        return;
      }
    }
  });
  eng.Run();
  return ms;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  using benchutil::Ffly;
  using benchutil::Sun;
  const double paper8[2][2] = {{18, 27}, {25, 33}};
  const double paper1[2][2] = {{5.1, 7.6}, {7.3, 6.7}};
  const arch::ArchProfile* profs[2] = {&Sun(), &Ffly()};
  const char* names[2] = {"Sun", "Firefly"};

  benchutil::JsonReport report("table2_transfer");
  benchutil::PrintHeader("Table 2: cost of transferring a page (ms)");
  for (std::size_t size : {std::size_t{8192}, std::size_t{1024}}) {
    std::printf("\npage size %zu KB  (measured | paper)\n", size / 1024);
    std::printf("%-10s %20s %20s\n", "from\\to", "Sun", "Firefly");
    for (int f = 0; f < 2; ++f) {
      std::printf("%-10s", names[f]);
      for (int t = 0; t < 2; ++t) {
        const double ms = MeasureTransferMs(size, *profs[f], *profs[t]);
        const double paper =
            size == 8192 ? paper8[f][t] : paper1[f][t];
        std::printf("     %8.1f | %5.1f", ms, paper);
        report.Add(std::to_string(size) + "B." + names[f] + "_to_" +
                       names[t] + "_ms",
                   ms);
      }
      std::printf("\n");
    }
  }
  report.Write();
  return 0;
}
