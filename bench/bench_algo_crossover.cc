// Algorithm crossover: page-based MRSW DSM vs the central-server algorithm.
//
// §2.1's motivation for supporting several DSM packages on one system:
// "the correct choice of algorithm was often dictated by the memory access
// behavior of the application [16]". This bench sweeps access locality:
// each of 4 worker hosts performs 400 reads/writes of 4-byte items; with
// probability `locality` the access falls in the host's private hot block,
// otherwise it goes to a uniformly random shared item (contended across
// hosts).
//
// Expected shape (and found): page-based wins decisively under high
// locality (pages amortize; hits are free), while scattered fine-grained
// *write* sharing thrashes 8 KB pages and the flat ~1-round-trip-per-access
// cost of the central server wins.
#include <cstdio>

#include "bench_util.h"
#include "mermaid/base/rng.h"

namespace mermaid {
namespace {

using Reg = arch::TypeRegistry;

constexpr int kHosts = 4;          // worker hosts 1..4 (+ server host 0)
constexpr int kOpsPerHost = 400;
constexpr int kHotInts = 2048;     // one 8 KB page per host
constexpr int kSharedInts = 4096;  // two shared pages

struct Workload {
  // op = (host, is_write, index into the global int array)
  std::vector<std::vector<std::pair<bool, int>>> ops;
};

Workload MakeWorkload(double locality, std::uint64_t seed) {
  Workload w;
  w.ops.resize(kHosts);
  base::Rng rng(seed);
  for (int h = 0; h < kHosts; ++h) {
    for (int i = 0; i < kOpsPerHost; ++i) {
      const bool is_write = rng.NextBool(0.5);
      int index;
      if (rng.NextBool(locality)) {
        index = h * kHotInts + static_cast<int>(rng.NextBelow(kHotInts));
      } else {
        index = kHosts * kHotInts +
                static_cast<int>(rng.NextBelow(kSharedInts));
      }
      w.ops[h].emplace_back(is_write, index);
    }
  }
  return w;
}

double RunPageBased(const Workload& w) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  std::vector<const arch::ArchProfile*> hosts{&benchutil::Sun()};
  for (int i = 0; i < kHosts; ++i) hosts.push_back(&benchutil::Ffly());
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  SimTime start = 0, end = 0;
  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    (void)sys.Alloc(0, Reg::kInt, kHosts * kHotInts + kSharedInts);
    sys.sync(0).SemInit(1, 0);
    start = h.runtime().Now();
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i + 1, "w" + std::to_string(i), [&, i](dsm::Host& hh) {
        for (const auto& [is_write, index] : w.ops[i]) {
          const dsm::GlobalAddr a = 4ull * index;
          if (is_write) {
            hh.Write<std::int32_t>(a, index);
          } else {
            (void)hh.Read<std::int32_t>(a);
          }
          hh.Compute(20);  // a little work per access
        }
        sys.sync(hh.id()).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);
    end = h.runtime().Now();
  });
  eng.Run();
  return ToSeconds(end - start);
}

double RunCentral(const Workload& w) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  std::vector<const arch::ArchProfile*> hosts{&benchutil::Sun()};
  for (int i = 0; i < kHosts; ++i) hosts.push_back(&benchutil::Ffly());
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  SimTime start = 0, end = 0;
  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 0);
    start = h.runtime().Now();
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i + 1, "w" + std::to_string(i), [&, i](dsm::Host& hh) {
        dsm::CentralClient& cc = sys.central(hh.id());
        for (const auto& [is_write, index] : w.ops[i]) {
          const dsm::GlobalAddr a = 4ull * index;
          if (is_write) {
            cc.Write<std::int32_t>(a, index);
          } else {
            (void)cc.Read<std::int32_t>(a);
          }
          hh.Compute(20);
        }
        sys.sync(hh.id()).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);
    end = h.runtime().Now();
  });
  eng.Run();
  return ToSeconds(end - start);
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::JsonReport report("algo_crossover");
  benchutil::PrintHeader(
      "Algorithm crossover: page-based MRSW vs central server "
      "(4 Firefly workers, 400 mixed ops each)");
  std::printf("%-10s %16s %16s %12s\n", "locality", "page-based (s)",
              "central (s)", "winner");
  for (double locality : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    Workload w = MakeWorkload(locality, 1990);
    const double pb = RunPageBased(w);
    const double cs = RunCentral(w);
    std::printf("%-10.2f %16.2f %16.2f %12s\n", locality, pb, cs,
                pb < cs ? "page-based" : "central");
    char key[32];
    std::snprintf(key, sizeof(key), "locality%.2f", locality);
    report.Add(std::string(key) + ".page_based_s", pb);
    report.Add(std::string(key) + ".central_s", cs);
  }
  std::printf("(§2.1: the right DSM algorithm depends on the application's "
              "memory access behavior)\n");
  report.Write();
  return 0;
}
