// Engine scale-out benchmark: a 256-host request/reply fleet under packet
// chaos, run once on the legacy O(N)-scan scheduler and once with every
// scale-out knob on (sub-queues + timer wheel + slabs + fiber handoff).
//
// The metric is scheduler throughput — simulated events (context switches)
// per wall-clock second — because the workload is pure scheduling: ~770
// processes (an rx daemon and a fragment sweeper per endpoint, one client
// per host, the chaos daemon), dense RecvUntil deadline churn from call
// timeouts and retransmissions, and high channel traffic. Protocol results
// are engine-independent, so the run doubles as a determinism check: both
// modes must produce the same final virtual time, the same per-call outcome
// hash, and the same switch count.
//
//   usage: bench_engine [calls-per-client]
//
// Exits non-zero if the optimized engine is less than kMinSpeedup times
// faster or if the two modes disagree on any modeled result, so CI can gate
// on the JSON it writes (BENCH_engine.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/base/time.h"
#include "mermaid/net/network.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/engine.h"

#include "bench_util.h"

namespace mermaid {
namespace {

constexpr int kHosts = 256;
constexpr std::uint8_t kOpEcho = 1;
// CI threshold, deliberately below the >=5x seen on dev machines so a noisy
// shared runner doesn't flake the gate.
constexpr double kMinSpeedup = 4.0;

struct FleetResult {
  double wall_s = 0;
  SimTime end = 0;
  std::uint64_t events = 0;        // engine context switches
  std::uint64_t os_handoffs = 0;   // OS-level thread handoffs
  std::uint64_t fast_resumes = 0;
  std::int64_t ok_calls = 0;
  std::int64_t timeouts = 0;
  std::uint64_t outcome_hash = 0;  // order-sensitive digest of every call
};

// Per-client accumulator; clients only ever touch their own slot and the
// engine runs one process at a time, so no synchronization is needed.
struct ClientTally {
  std::int64_t ok = 0;
  std::int64_t timeouts = 0;
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis

  void Mix(std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  }
};

FleetResult RunFleet(const sim::EngineOptions& opts, int calls_per_client) {
  sim::Engine eng(opts);

  net::Network::Config net_cfg;
  net_cfg.seed = 2026;
  net_cfg.loss_probability = 0.05;
  net::Network net(eng, net_cfg);

  // Chaos on top of the base loss: duplicates and reordering stress the
  // dedup window, and a brief partition around a dozen hosts forces real
  // retransmission backoff (timer wheel arm/cancel churn) before healing
  // well inside the call budget.
  net::FaultPlan plan;
  plan.duplicate_probability = 0.02;
  plan.reorder_probability = 0.05;
  plan.reorder_delay_max = Microseconds(500);
  net::FaultPlan::Partition part;
  for (net::HostId h = 0; h < 12; ++h) part.group.push_back(h * 20 + 3);
  part.from = Milliseconds(5);
  part.until = Milliseconds(60);
  plan.partitions.push_back(part);
  net.SetFaultPlan(std::move(plan));

  std::vector<std::unique_ptr<net::Endpoint>> eps;
  eps.reserve(kHosts);
  for (int h = 0; h < kHosts; ++h) {
    auto ep = std::make_unique<net::Endpoint>(
        eng, net, static_cast<net::HostId>(h), &benchutil::Ffly());
    ep->SetHandler(kOpEcho, [&eng](net::RequestContext ctx) {
      eng.Delay(Microseconds(20));  // modeled service time
      std::vector<std::uint8_t> reply(ctx.body().begin(), ctx.body().end());
      ctx.Reply(net::Body{std::move(reply)});
    });
    ep->Start();
    eps.push_back(std::move(ep));
  }

  auto tallies = std::make_unique<ClientTally[]>(kHosts);
  for (int h = 0; h < kHosts; ++h) {
    eng.SpawnOn(
        static_cast<std::uint32_t>(h), "client-" + std::to_string(h),
        [&eng, &eps, &tallies, h, calls_per_client] {
          ClientTally& t = tallies[h];
          for (int k = 0; k < calls_per_client; ++k) {
            // Deterministic pseudo-random peer, never self.
            const std::uint32_t mix =
                (static_cast<std::uint32_t>(h) * 2654435761u) ^
                (static_cast<std::uint32_t>(k) * 40503u + 0x9e37u);
            int peer = static_cast<int>(mix % (kHosts - 1));
            if (peer >= h) ++peer;
            std::vector<std::uint8_t> body(12);
            for (int b = 0; b < 12; ++b) {
              body[static_cast<std::size_t>(b)] =
                  static_cast<std::uint8_t>(h + k * 7 + b);
            }
            const auto res = eps[static_cast<std::size_t>(h)]->CallWithStatus(
                static_cast<net::HostId>(peer), kOpEcho,
                net::Body{std::move(body)});
            if (res.status == net::CallStatus::kShutdown) return;
            if (res.ok()) {
              ++t.ok;
              t.Mix(0xA11CE5ull);
              for (std::uint8_t byte : res.body.ToVector()) t.Mix(byte);
            } else {
              ++t.timeouts;
              t.Mix(0xDEADull);
            }
            t.Mix(static_cast<std::uint64_t>(eng.Now()));
            // Local compute between calls, as DSM workers interleave with
            // communication: short waits whose cost is pure scheduling.
            for (int d = 0; d < 8; ++d) {
              eng.Delay(Microseconds(3 + static_cast<int>(mix % 7) + d));
            }
          }
        });
  }

  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = eng.Run();
  const auto t1 = std::chrono::steady_clock::now();

  FleetResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.end = end;
  r.events = eng.switch_count();
  r.os_handoffs = eng.os_handoff_count();
  r.fast_resumes = eng.fast_resume_count();
  r.outcome_hash = 1469598103934665603ull;
  for (int h = 0; h < kHosts; ++h) {
    r.ok_calls += tallies[h].ok;
    r.timeouts += tallies[h].timeouts;
    r.outcome_hash ^= tallies[h].hash + 0x9e3779b97f4a7c15ull +
                      (r.outcome_hash << 6) + (r.outcome_hash >> 2);
  }
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  int calls = 24;
  if (argc > 1) calls = std::atoi(argv[1]);
  if (calls <= 0) calls = 24;

  benchutil::JsonReport report("engine");
  benchutil::PrintHeader("Engine scale-out: 256-host req/rep fleet under "
                         "loss, duplication, reordering, and a partition");
  std::printf("%d hosts x %d calls each\n\n", kHosts, calls);

  // Two runs per mode: the min wall time damps scheduler noise on shared
  // runners, and the pairs double as a run-to-run determinism check.
  FleetResult legacy = RunFleet(sim::EngineOptions{}, calls);
  const FleetResult legacy2 = RunFleet(sim::EngineOptions{}, calls);
  FleetResult opt = RunFleet(sim::EngineOptions::AllOn(), calls);
  const FleetResult opt2 = RunFleet(sim::EngineOptions::AllOn(), calls);

  bool rerun_ok = true;
  if (legacy.outcome_hash != legacy2.outcome_hash ||
      legacy.end != legacy2.end || opt.outcome_hash != opt2.outcome_hash ||
      opt.end != opt2.end) {
    std::fprintf(stderr, "FAIL: a mode diverged from its own rerun\n");
    rerun_ok = false;
  }
  legacy.wall_s = std::min(legacy.wall_s, legacy2.wall_s);
  opt.wall_s = std::min(opt.wall_s, opt2.wall_s);

  const double legacy_eps =
      static_cast<double>(legacy.events) / (legacy.wall_s > 0 ? legacy.wall_s : 1e-9);
  const double opt_eps =
      static_cast<double>(opt.events) / (opt.wall_s > 0 ? opt.wall_s : 1e-9);
  const double speedup = opt_eps > 0 ? opt_eps / (legacy_eps > 0 ? legacy_eps : 1e-9) : 0;

  std::printf("%-28s %14s %14s\n", "", "legacy", "optimized");
  std::printf("%-28s %14.3f %14.3f\n", "wall clock (s)", legacy.wall_s,
              opt.wall_s);
  std::printf("%-28s %14llu %14llu\n", "events (switches)",
              static_cast<unsigned long long>(legacy.events),
              static_cast<unsigned long long>(opt.events));
  std::printf("%-28s %14.0f %14.0f\n", "events/sec", legacy_eps, opt_eps);
  std::printf("%-28s %14llu %14llu\n", "OS handoffs",
              static_cast<unsigned long long>(legacy.os_handoffs),
              static_cast<unsigned long long>(opt.os_handoffs));
  std::printf("%-28s %14llu %14llu\n", "fast resumes",
              static_cast<unsigned long long>(legacy.fast_resumes),
              static_cast<unsigned long long>(opt.fast_resumes));
  std::printf("%-28s %14lld %14lld\n", "ok calls",
              static_cast<long long>(legacy.ok_calls),
              static_cast<long long>(opt.ok_calls));
  std::printf("%-28s %14lld %14lld\n", "timeouts",
              static_cast<long long>(legacy.timeouts),
              static_cast<long long>(opt.timeouts));
  std::printf("\nspeedup: %.2fx (threshold %.1fx)\n", speedup, kMinSpeedup);

  bool ok = rerun_ok;
  if (legacy.end != opt.end || legacy.events != opt.events ||
      legacy.ok_calls != opt.ok_calls || legacy.timeouts != opt.timeouts ||
      legacy.outcome_hash != opt.outcome_hash) {
    std::fprintf(stderr,
                 "FAIL: modes diverged (end %lld vs %lld, events %llu vs "
                 "%llu, hash %llx vs %llx)\n",
                 static_cast<long long>(legacy.end),
                 static_cast<long long>(opt.end),
                 static_cast<unsigned long long>(legacy.events),
                 static_cast<unsigned long long>(opt.events),
                 static_cast<unsigned long long>(legacy.outcome_hash),
                 static_cast<unsigned long long>(opt.outcome_hash));
    ok = false;
  }
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.1fx threshold\n",
                 speedup, kMinSpeedup);
    ok = false;
  }

  report.Add("hosts", kHosts);
  report.Add("calls_per_client", calls);
  report.Add("events", static_cast<std::int64_t>(opt.events));
  report.Add("legacy_wall_s", legacy.wall_s);
  report.Add("opt_wall_s", opt.wall_s);
  report.Add("legacy_events_per_s", legacy_eps);
  report.Add("opt_events_per_s", opt_eps);
  report.Add("speedup", speedup);
  report.Add("legacy_os_handoffs", static_cast<std::int64_t>(legacy.os_handoffs));
  report.Add("opt_os_handoffs", static_cast<std::int64_t>(opt.os_handoffs));
  report.Add("opt_fast_resumes", static_cast<std::int64_t>(opt.fast_resumes));
  report.Add("ok_calls", legacy.ok_calls);
  report.Add("timeouts", legacy.timeouts);
  report.Add("deterministic",
             legacy.outcome_hash == opt.outcome_hash ? 1 : 0);
  report.Write();

  return ok ? 0 : 1;
}

}  // namespace mermaid

int main(int argc, char** argv) { return mermaid::Main(argc, argv); }
