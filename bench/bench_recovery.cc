// Crash-recovery latency vs fleet size.
//
// A fleet of one Sun master plus Firefly workers shares an 8-page strip
// managed (and initially owned) by host 1. Every host takes read copies of
// the whole strip, host 0 takes ownership of the first strip page, and then
// host 1 — manager of every strip page — crashes with amnesia and restarts
// after a fixed 500 ms outage. Host 2 immediately faults against a page
// whose manager is down; the time from the crash to that fault completing
// is the headline number: it covers the outage, the restarted manager's
// claim-gathering rebuild (which scales with fleet size — every live host
// answers the recovery query), and the re-served fault itself.
//
// Writes BENCH_recovery.json via bench/run_all.sh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace mermaid {
namespace {

constexpr int kStripPages = 8;
constexpr dsm::GlobalAddr kPageB = 1024;
constexpr SimDuration kDowntime = Milliseconds(500);

struct FleetResult {
  double first_fault_ms = 0;  // crash -> first post-crash fault served
  double rebuild_ms = 0;      // manager restart -> state reconstructed
  std::int64_t claims = 0;    // per-page claims gathered during the rebuild
  std::int64_t pages_lost = 0;
  bool correct = false;
};

FleetResult MeasureFleet(int n_hosts) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  benchutil::ApplyTraceEnv(cfg);
  cfg.region_bytes = 256 * 1024;
  // Fixed 1 KB pages so the strip (pages 1, 1+N, ..., 1+7N) is exactly the
  // set of allocated pages managed by host 1, for every fleet size.
  cfg.page_bytes_override = 1024;
  cfg.crash_recovery = true;
  cfg.net.seed = 77000 + static_cast<std::uint64_t>(n_hosts);
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 30;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);

  std::vector<const arch::ArchProfile*> hosts{&benchutil::Sun()};
  for (int i = 1; i < n_hosts; ++i) hosts.push_back(&benchutil::Ffly());
  dsm::System sys(eng, cfg, hosts);
  sys.Start();

  SimTime t_crash = 0, t_served = 0;
  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    const int last_page = 1 + (kStripPages - 1) * n_hosts;
    const dsm::GlobalAddr base = sys.Alloc(
        0, arch::TypeRegistry::kLong,
        static_cast<std::uint64_t>(last_page + 1) * 128);
    auto strip = [&, base](int k) {
      return base + kPageB * static_cast<dsm::GlobalAddr>(1 + k * n_hosts);
    };
    sys.sync(0).SemInit(1, 0);

    sys.SpawnThread(1, "writer", [&, strip](dsm::Host& hh) {
      for (int k = 0; k < kStripPages; ++k) {
        hh.Write<std::int64_t>(strip(k), 100 + k);
      }
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);

    // Every survivor-to-be takes read copies of the whole strip, so the
    // rebuild has one claim per live host per page.
    for (int i = 2; i < n_hosts; ++i) {
      sys.SpawnThread(i, "copier" + std::to_string(i),
                      [&, strip, i](dsm::Host& hh) {
        for (int k = 0; k < kStripPages; ++k) {
          (void)hh.Read<std::int64_t>(strip(k));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 2; i < n_hosts; ++i) sys.sync(0).P(1);
    for (int k = 0; k < kStripPages; ++k) {
      (void)h.Read<std::int64_t>(strip(k));
    }
    // Host 0 takes ownership of the first strip page: the measured fault
    // has a live owner and only the dead manager stands in its way.
    h.Write<std::int64_t>(strip(0), 7);

    t_crash = h.runtime().Now();
    sys.CrashAndRestartHost(1, kDowntime);
    sys.SpawnThread(2, "fault", [&, strip](dsm::Host& hh) {
      seen = hh.Read<std::int64_t>(strip(0));
      t_served = hh.runtime().Now();
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // confirm/probe drain
  });
  eng.Run();

  benchutil::WriteTraceArtifacts(sys, "recovery");
  auto& st = sys.GatherStats();
  FleetResult r;
  r.first_fault_ms = ToMillis(t_served - t_crash);
  r.rebuild_ms = st.HistCopy("dsm.recovery_ms").mean();
  r.claims = st.Count("dsm.recovery_claims");
  r.pages_lost = st.Count("dsm.recovery_pages_lost");
  r.correct = (seen == 7) && st.Count("dsm.crashes") == 1;
  return r;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::PrintHeader(
      "Recovery: time to first served fault after a manager crash (500 ms "
      "outage)");
  std::printf("%6s %18s %14s %8s %8s %6s\n", "hosts", "first_fault_ms",
              "rebuild_ms", "claims", "lost", "ok");
  benchutil::JsonReport report("recovery");
  report.Add("downtime_ms", ToMillis(kDowntime));
  bool all_ok = true;
  for (int n : {3, 4, 6, 8}) {
    const auto r = MeasureFleet(n);
    std::printf("%6d %18.2f %14.2f %8lld %8lld %6s\n", n, r.first_fault_ms,
                r.rebuild_ms, static_cast<long long>(r.claims),
                static_cast<long long>(r.pages_lost),
                r.correct ? "yes" : "NO");
    const std::string p = "n" + std::to_string(n) + "_";
    report.Add(p + "first_fault_ms", r.first_fault_ms);
    report.Add(p + "rebuild_ms", r.rebuild_ms);
    report.Add(p + "claims", r.claims);
    report.Add(p + "pages_lost", r.pages_lost);
    all_ok = all_ok && r.correct;
  }
  report.Write();
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a recovery scenario returned wrong data\n");
    return 1;
  }
  return 0;
}
