// Figure 3 — Response times of matrix multiplication when executed on one
// or multiple Fireflies.
//
// Physical shared memory: all slave threads on a single multiprocessor
// Firefly. Distributed shared memory: the same number of threads, one per
// Firefly. The master runs on yet another Firefly in both cases. The paper
// finds the multi-Firefly times only slightly higher (page transfer costs),
// with the penalty shrinking for large matrices.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Ffly;
  benchutil::JsonReport report("fig3_phys_vs_dsm");
  benchutil::PrintHeader(
      "Figure 3: MM 256x256, physical vs distributed shared memory "
      "(response time, s)");
  std::printf("%-8s %18s %18s %10s\n", "threads", "one Firefly (s)",
              "N Fireflies (s)", "ratio");

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  // Mermaid's network included a Sun, so the largest-page-size algorithm
  // used 8 KB DSM pages even for runs placed entirely on Fireflies.
  cfg.page_bytes_override = 8192;
  for (int threads = 1; threads <= 5; ++threads) {
    apps::MatMulConfig mm;
    mm.n = 256;
    mm.num_threads = threads;
    mm.master_host = 0;
    mm.verify = false;

    // Physical: master on Firefly 0, all slaves on Firefly 1.
    mm.worker_hosts = {1};
    auto physical = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Ffly(), 1), mm);

    // Distributed: one slave per Firefly (hosts 1..threads).
    mm.worker_hosts = benchutil::WorkerIds(threads);
    auto distributed = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Ffly(), threads), mm);

    std::printf("%-8d %18.1f %18.1f %9.2fx\n", threads, physical.seconds,
                distributed.seconds,
                distributed.seconds / physical.seconds);
    const std::string k = "threads" + std::to_string(threads);
    report.Add(k + ".physical_s", physical.seconds);
    report.Add(k + ".distributed_s", distributed.seconds);
  }
  std::printf("(paper: DSM slightly slower than physical shared memory; the "
              "penalty is the page transfer cost)\n");
  report.Write();
  return 0;
}
