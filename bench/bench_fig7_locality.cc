// Figure 7 — Response times of MM1 and MM2 using the small page-size
// algorithm.
//
// MM2 deals result rows round-robin. With 1 KB DSM pages a 256-int result
// row is exactly one page, so MM2's interleaving causes little extra
// contention — the paper expected and found the degradation over MM1 to be
// small. (Contrast with MM2 under the large algorithm: bench_thrash.)
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace mermaid;
  using benchutil::Sun;
  benchutil::JsonReport report("fig7_locality");
  benchutil::PrintHeader(
      "Figure 7: MM1 vs MM2, small page size algorithm");
  std::printf("%-8s %14s %14s %12s\n", "threads", "MM1 (s)", "MM2 (s)",
              "MM2/MM1");

  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  cfg.page_policy = dsm::PageSizePolicy::kSmallest;
  for (int threads : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    const int fireflies = std::min(4, threads);
    apps::MatMulConfig mm;
    mm.n = 256;
    mm.num_threads = threads;
    mm.worker_hosts = benchutil::WorkerIds(fireflies);
    mm.verify = false;

    mm.round_robin_rows = false;
    auto mm1 = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);
    mm.round_robin_rows = true;
    auto mm2 = benchutil::RunMatMulOnce(
        cfg, benchutil::MasterPlusFireflies(Sun(), fireflies), mm);

    std::printf("%-8d %14.1f %14.1f %11.2fx\n", threads, mm1.seconds,
                mm2.seconds, mm2.seconds / mm1.seconds);
    const std::string k = "threads" + std::to_string(threads);
    report.Add(k + ".mm1_s", mm1.seconds);
    report.Add(k + ".mm2_s", mm2.seconds);
  }
  std::printf("(paper: MM2's degradation over MM1 is small under the small "
              "page size algorithm)\n");
  report.Write();
  return 0;
}
