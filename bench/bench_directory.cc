// Directory scale-out: manager-load balance and fault latency at fleet
// sizes the paper never reached (64-256 hosts).
//
// The workload is built to exercise the fixed p % N manager map's worst
// case: every hot page lives at a residue below N/8, so the paper's scheme
// funnels all manager traffic through one eighth of the fleet while the
// consistent-hash ring (kSharded) and Li-style dynamic managers (kDynamic)
// spread it. Each of the 2N hot pages has one dedicated writer; every
// worker alternates stamping its own pages with zipf-skewed reads of the
// others' (rank ~ u^2 over the hot set), so managers also serve a skewed
// read mix. Two headline numbers per mode:
//
//   gini  — Gini coefficient of per-host lifetime manager grants
//           (Host::ManagerGrantsTotal), 0 = perfectly even.
//   p99   — 99th percentile of per-operation latency in modeled ms; the
//           rx loop serializes request handling per host, so a melted
//           manager shows up as queueing delay, not just hop counts.
//
// The run is a regression gate: it exits non-zero unless, at every fleet
// size, sharded AND dynamic cut the manager-load Gini at least 2x below
// fixed and beat fixed's p99 fault latency. Writes BENCH_directory.json.
//
// All hosts share one Firefly-derived profile with 128-byte VM pages so a
// 64N-page region fits in memory at N=256 while keeping the 1:1 VM:DSM
// page mapping of an all-Firefly cluster.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mermaid/base/rng.h"

namespace mermaid {
namespace {

constexpr int kRounds = 6;
constexpr int kReadsPerRound = 2;
constexpr std::uint32_t kPageB = 128;
constexpr int kPagesPerResidue = 64;  // hot pages = kPagesPerResidue * N/8

// Firefly cost model on a small VM page: region_bytes = 64N pages stays
// ~2 MB/host at N=256, and every DSM page maps to exactly one VM page.
const arch::ArchProfile& BenchProfile() {
  static const arch::ArchProfile kProfile = [] {
    arch::ArchProfile p = arch::FireflyProfile();
    p.name = "FFLY256";
    p.vm_page_size = kPageB;
    return p;
  }();
  return kProfile;
}

struct ModeSpec {
  const char* name;
  dsm::SystemConfig::DirectoryMode mode;
  bool hot;    // hot-page vote instead of pure last-writer migration
  bool gated;  // participates in the vs-fixed regression gate
};

constexpr ModeSpec kModes[] = {
    {"fixed", dsm::SystemConfig::DirectoryMode::kFixed, false, false},
    {"sharded", dsm::SystemConfig::DirectoryMode::kSharded, false, true},
    {"dynamic", dsm::SystemConfig::DirectoryMode::kDynamic, false, true},
    {"dynamic_hot", dsm::SystemConfig::DirectoryMode::kDynamic, true, false},
};

struct ModeResult {
  double gini = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  std::int64_t ops = 0;
  std::int64_t migrations = 0;
  std::int64_t forwards = 0;
  bool correct = false;
};

double Gini(std::vector<double> x) {
  std::sort(x.begin(), x.end());
  double total = 0;
  for (double v : x) total += v;
  if (total <= 0) return 0;
  const double n = static_cast<double>(x.size());
  double weighted = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    weighted += static_cast<double>(i + 1) * x[i];
  }
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  const auto k = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[static_cast<std::ptrdiff_t>(k)];
}

ModeResult RunMode(int n_hosts, const ModeSpec& mode, int mode_idx) {
  const int residues = n_hosts / 8;
  const int hot_pages = residues * kPagesPerResidue;
  // Hot page j sits at residue j % residues, so under kFixed all of them
  // are managed by hosts 0..residues-1.
  auto page_of = [&](int j) {
    return j % residues + n_hosts * (j / residues);
  };

  sim::Engine eng;
  dsm::SystemConfig cfg;
  benchutil::ApplyTraceEnv(cfg);
  cfg.region_bytes =
      static_cast<std::uint64_t>(kPagesPerResidue * n_hosts) * kPageB;
  cfg.page_bytes_override = kPageB;
  cfg.directory_mode = mode.mode;
  cfg.directory_shards_per_host = 32;  // tighter ring balance at scale
  cfg.hot_page_migration = mode.hot;
  cfg.hot_page_threshold = 3;  // reached by round 3 of a dominant writer
  cfg.net.seed = 52000 + static_cast<std::uint64_t>(n_hosts) * 10 +
                 static_cast<std::uint64_t>(mode_idx);

  std::vector<const arch::ArchProfile*> hosts(
      static_cast<std::size_t>(n_hosts), &BenchProfile());
  dsm::System sys(eng, cfg, hosts);
  sys.Start();

  std::vector<std::vector<double>> lat(static_cast<std::size_t>(n_hosts));
  std::vector<bool> worker_ok(static_cast<std::size_t>(n_hosts), false);

  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    const dsm::GlobalAddr base =
        sys.Alloc(0, arch::TypeRegistry::kInt, cfg.region_bytes / 4);
    sys.sync(0).SemInit(1, 0);
    for (int w = 1; w < n_hosts; ++w) {
      sys.SpawnThread(w, "w" + std::to_string(w), [&, base, w](dsm::Host& hh) {
        base::Rng rng(cfg.net.seed * 977 + static_cast<std::uint64_t>(w));
        auto timed = [&](auto&& op) {
          const SimTime t0 = hh.runtime().Now();
          op();
          lat[static_cast<std::size_t>(w)].push_back(
              ToMillis(hh.runtime().Now() - t0));
        };
        auto addr = [&](int j) {
          return base + static_cast<dsm::GlobalAddr>(page_of(j)) * kPageB;
        };
        // Zipf working set with temporal locality: each worker re-reads
        // the same skew-sampled pages every round (rank ~ u^2), the access
        // pattern that lets dynamic mode's learned manager locations and
        // the hot-page vote actually pay off after the first touch.
        int read_set[kReadsPerRound];
        for (int k = 0; k < kReadsPerRound; ++k) {
          const double u = rng.NextDouble();
          read_set[k] = static_cast<int>(u * std::sqrt(u) * hot_pages);
        }
        for (int r = 0; r < kRounds; ++r) {
          for (int j = w - 1; j < hot_pages; j += n_hosts - 1) {
            const auto stamp =
                static_cast<std::int32_t>(r * 1'000'000 + j);
            timed([&] { hh.Write<std::int32_t>(addr(j), stamp); });
          }
          for (int k = 0; k < kReadsPerRound; ++k) {
            const int j = read_set[k];
            timed([&] { (void)hh.Read<std::int32_t>(addr(j)); });
          }
        }
        bool ok = true;
        for (int j = w - 1; j < hot_pages; j += n_hosts - 1) {
          const auto want =
              static_cast<std::int32_t>((kRounds - 1) * 1'000'000 + j);
          ok = ok && hh.Read<std::int32_t>(addr(j)) == want;
        }
        worker_ok[static_cast<std::size_t>(w)] = ok;
        sys.sync(w).V(1);
      });
    }
    for (int w = 1; w < n_hosts; ++w) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // confirm/janitor drain
  });
  eng.Run();
  benchutil::WriteTraceArtifacts(sys, std::string("directory_") + mode.name);

  std::vector<double> grants;
  grants.reserve(static_cast<std::size_t>(n_hosts));
  for (int i = 0; i < n_hosts; ++i) {
    grants.push_back(static_cast<double>(sys.host(i).ManagerGrantsTotal()));
  }
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  double sum = 0;
  for (double v : all) sum += v;

  auto& st = sys.GatherStats();
  ModeResult r;
  r.gini = Gini(grants);
  r.p99_ms = Percentile(all, 0.99);
  r.mean_ms = all.empty() ? 0 : sum / static_cast<double>(all.size());
  r.ops = static_cast<std::int64_t>(all.size());
  r.migrations = st.Count("dsm.mgr_migrations");
  r.forwards = st.Count("dsm.mgr_forwards");
  r.correct = true;
  for (int w = 1; w < n_hosts; ++w) {
    r.correct = r.correct && worker_ok[static_cast<std::size_t>(w)];
  }
  if (mode.mode == dsm::SystemConfig::DirectoryMode::kDynamic) {
    r.correct = r.correct && r.migrations > 0;  // the knob demonstrably acted
  }
  return r;
}

}  // namespace
}  // namespace mermaid

int main() {
  using namespace mermaid;
  benchutil::PrintHeader(
      "Directory scale-out: manager-load Gini and per-op p99 under zipf "
      "skew (hot pages aliased to residues < N/8)");
  benchutil::JsonReport report("directory");
  bool all_ok = true;
  for (int n : {64, 128, 256}) {
    std::printf("\n-- %d hosts --\n", n);
    std::printf("%12s %8s %10s %10s %7s %7s %7s %4s\n", "mode", "gini",
                "p99_ms", "mean_ms", "ops", "migr", "fwd", "ok");
    ModeResult fixed;
    for (int m = 0; m < 4; ++m) {
      const auto& spec = kModes[m];
      const ModeResult r = RunMode(n, spec, m);
      std::printf("%12s %8.3f %10.2f %10.2f %7lld %7lld %7lld %4s\n",
                  spec.name, r.gini, r.p99_ms, r.mean_ms,
                  static_cast<long long>(r.ops),
                  static_cast<long long>(r.migrations),
                  static_cast<long long>(r.forwards),
                  r.correct ? "yes" : "NO");
      const std::string p =
          "n" + std::to_string(n) + "_" + spec.name + "_";
      report.Add(p + "gini", r.gini);
      report.Add(p + "p99_ms", r.p99_ms);
      report.Add(p + "mean_ms", r.mean_ms);
      report.Add(p + "migrations", r.migrations);
      all_ok = all_ok && r.correct;
      if (m == 0) {
        fixed = r;
        continue;
      }
      if (!spec.gated) continue;
      // The regression gate: sharded and dynamic must each cut the
      // manager-load Gini >= 2x below fixed and beat fixed's p99.
      if (r.gini * 2.0 > fixed.gini) {
        std::fprintf(stderr,
                     "FAIL: n=%d %s gini %.3f is not a 2x cut vs fixed "
                     "%.3f\n",
                     n, spec.name, r.gini, fixed.gini);
        all_ok = false;
      }
      if (r.p99_ms >= fixed.p99_ms) {
        std::fprintf(stderr,
                     "FAIL: n=%d %s p99 %.2f ms did not beat fixed %.2f "
                     "ms\n",
                     n, spec.name, r.p99_ms, fixed.p99_ms);
        all_ok = false;
      }
    }
  }
  report.Write();
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: directory scale-out gate not met\n");
    return 1;
  }
  return 0;
}
