// Shared helpers for the benchmark binaries. Each bench regenerates one
// table or figure of the paper; runs happen in deterministic virtual time,
// so "measured" numbers are reproducible modeled results (see
// EXPERIMENTS.md for the calibration story).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mermaid/apps/matmul.h"
#include "mermaid/apps/pcb.h"
#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::benchutil {

inline const arch::ArchProfile& Sun() { return arch::Sun3Profile(); }
inline const arch::ArchProfile& Ffly() { return arch::FireflyProfile(); }

// Host set: one master profile + `fireflies` worker Fireflies.
inline std::vector<const arch::ArchProfile*> MasterPlusFireflies(
    const arch::ArchProfile& master, int fireflies) {
  std::vector<const arch::ArchProfile*> v{&master};
  for (int i = 0; i < fireflies; ++i) v.push_back(&Ffly());
  return v;
}

inline std::vector<net::HostId> WorkerIds(int fireflies) {
  std::vector<net::HostId> v;
  for (int i = 1; i <= fireflies; ++i) {
    v.push_back(static_cast<net::HostId>(i));
  }
  return v;
}

struct MmRun {
  double seconds = 0;
  bool correct = false;
  std::int64_t pages_transferred = 0;
  std::int64_t bytes_in = 0;
  std::int64_t conversions = 0;
};

// One complete matrix-multiplication run on a fresh system.
inline MmRun RunMatMulOnce(const dsm::SystemConfig& sys_cfg,
                           const std::vector<const arch::ArchProfile*>& hosts,
                           const apps::MatMulConfig& mm_cfg) {
  sim::Engine eng;
  dsm::System sys(eng, sys_cfg, hosts);
  sys.Start();
  apps::MatMulResult result;
  apps::SetupMatMul(sys, mm_cfg, &result);
  eng.Run();
  MmRun run;
  run.seconds = ToSeconds(result.elapsed);
  run.correct = result.done && result.correct;
  auto& stats = sys.GatherStats();
  run.pages_transferred = stats.Count("dsm.pages_in");
  run.bytes_in = stats.Count("dsm.bytes_in");
  run.conversions = stats.Count("dsm.conversions");
  return run;
}

struct PcbRun {
  double seconds = 0;
  bool correct = false;
};

inline PcbRun RunPcbOnce(const dsm::SystemConfig& sys_cfg,
                         const std::vector<const arch::ArchProfile*>& hosts,
                         apps::PcbConfig pcb_cfg) {
  sim::Engine eng;
  dsm::System sys(eng, sys_cfg, hosts);
  arch::TypeId stats_type = apps::RegisterPcbTypes(sys.registry());
  sys.Start();
  apps::PcbResult result;
  apps::SetupPcb(sys, stats_type, pcb_cfg, &result);
  eng.Run();
  return PcbRun{ToSeconds(result.elapsed), result.done && result.correct};
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace mermaid::benchutil
