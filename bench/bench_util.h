// Shared helpers for the benchmark binaries. Each bench regenerates one
// table or figure of the paper; runs happen in deterministic virtual time,
// so "measured" numbers are reproducible modeled results (see
// EXPERIMENTS.md for the calibration story).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "mermaid/apps/matmul.h"
#include "mermaid/apps/pcb.h"
#include "mermaid/arch/arch.h"
#include "mermaid/base/buffer.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"
#include "mermaid/trace/export.h"

namespace mermaid::benchutil {

// Benches opt into protocol tracing via the environment (MERMAID_TRACE=1):
// the default run stays overhead-free while CI can collect trace artifacts
// from the same binaries.
inline bool TraceEnvEnabled() {
  const char* v = std::getenv("MERMAID_TRACE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void ApplyTraceEnv(dsm::SystemConfig& cfg) {
  if (TraceEnvEnabled()) cfg.trace = true;
}

// Writes TRACE_<name>.json (Chrome/Perfetto trace-event format) and
// TRACE_<name>_pages.json (per-page protocol timeline) next to the binary.
// No-op when the system's tracer is disabled.
inline void WriteTraceArtifacts(dsm::System& sys, const std::string& name) {
  if (!sys.tracer().enabled()) return;
  const auto events = sys.tracer().Snapshot();
  const std::string chrome = "TRACE_" + name + ".json";
  const std::string pages = "TRACE_" + name + "_pages.json";
  if (trace::WriteChromeTrace(events, chrome) &&
      trace::WritePageTimeline(events, pages)) {
    std::printf("wrote %s and %s (%zu events, %llu dropped)\n",
                chrome.c_str(), pages.c_str(), events.size(),
                static_cast<unsigned long long>(sys.tracer().dropped()));
  } else {
    std::fprintf(stderr, "cannot write trace artifacts for %s\n",
                 name.c_str());
  }
}

inline const arch::ArchProfile& Sun() { return arch::Sun3Profile(); }
inline const arch::ArchProfile& Ffly() { return arch::FireflyProfile(); }

// Host set: one master profile + `fireflies` worker Fireflies.
inline std::vector<const arch::ArchProfile*> MasterPlusFireflies(
    const arch::ArchProfile& master, int fireflies) {
  std::vector<const arch::ArchProfile*> v{&master};
  for (int i = 0; i < fireflies; ++i) v.push_back(&Ffly());
  return v;
}

inline std::vector<net::HostId> WorkerIds(int fireflies) {
  std::vector<net::HostId> v;
  for (int i = 1; i <= fireflies; ++i) {
    v.push_back(static_cast<net::HostId>(i));
  }
  return v;
}

struct MmRun {
  double seconds = 0;
  bool correct = false;
  std::int64_t pages_transferred = 0;
  std::int64_t bytes_in = 0;
  std::int64_t conversions = 0;
};

// One complete matrix-multiplication run on a fresh system.
inline MmRun RunMatMulOnce(const dsm::SystemConfig& sys_cfg,
                           const std::vector<const arch::ArchProfile*>& hosts,
                           const apps::MatMulConfig& mm_cfg) {
  base::BulkCopyReset();  // report run-local copy counts, not process totals
  sim::Engine eng;
  dsm::SystemConfig cfg = sys_cfg;
  ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  apps::MatMulResult result;
  apps::SetupMatMul(sys, mm_cfg, &result);
  eng.Run();
  MmRun run;
  run.seconds = ToSeconds(result.elapsed);
  run.correct = result.done && result.correct;
  auto& stats = sys.GatherStats();
  run.pages_transferred = stats.Count("dsm.pages_in");
  run.bytes_in = stats.Count("dsm.bytes_in");
  run.conversions = stats.Count("dsm.conversions");
  WriteTraceArtifacts(sys, "matmul");
  return run;
}

struct PcbRun {
  double seconds = 0;
  bool correct = false;
};

inline PcbRun RunPcbOnce(const dsm::SystemConfig& sys_cfg,
                         const std::vector<const arch::ArchProfile*>& hosts,
                         apps::PcbConfig pcb_cfg) {
  base::BulkCopyReset();  // report run-local copy counts, not process totals
  sim::Engine eng;
  dsm::SystemConfig cfg = sys_cfg;
  ApplyTraceEnv(cfg);
  dsm::System sys(eng, cfg, hosts);
  arch::TypeId stats_type = apps::RegisterPcbTypes(sys.registry());
  sys.Start();
  apps::PcbResult result;
  apps::SetupPcb(sys, stats_type, pcb_cfg, &result);
  eng.Run();
  WriteTraceArtifacts(sys, "pcb");
  return PcbRun{ToSeconds(result.elapsed), result.done && result.correct};
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Machine-readable results: every bench writes BENCH_<name>.json next to the
// binary with its key modeled totals/counters plus the real wall-clock time
// of the run, so sweeps and CI can diff results without parsing tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metrics_.emplace_back(key, buf);
  }
  void Add(const std::string& key, std::int64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<std::int64_t>(value));
  }

  // Writes BENCH_<name>.json in the current directory.
  void Write() const {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"wall_clock_s\": %.3f,\n",
                 name_.c_str(), wall);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second.c_str());
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace mermaid::benchutil
