// IEEE 754 <-> VAX floating-point codecs.
//
// The Firefly's CVAX stores F_floating (32-bit) and D_floating (64-bit)
// values: sign, 8-bit excess-128 exponent, hidden-bit 0.1m mantissa, laid
// out as little-endian 16-bit words with the sign/exponent word first. IEEE
// specials (NaN, infinity, denormals) have no VAX representation — the paper
// notes they are "detected with two additional comparison operations" — so
// the codec reports what it had to do (clamp / flush to zero) and the
// conversion layer counts those events. VAX D has 55 mantissa bits to IEEE
// double's 52, so D→IEEE rounds — the paper's "floating point numbers can
// lose precision when they are converted".
#pragma once

#include <cstdint>

namespace mermaid::arch {

enum class VaxConvertResult : std::uint8_t {
  kExact,             // value representable exactly (module rounding for D)
  kUnderflowedToZero, // magnitude below the target's smallest normal
  kClampedOverflow,   // magnitude above the target's largest finite
  kClampedSpecial,    // IEEE NaN/Inf mapped to the largest finite VAX value
  kReservedOperand,   // VAX reserved operand (s=1,e=0) mapped to IEEE NaN
};

// 32-bit F_floating. `out`/`in` are the 4-byte VAX memory image.
VaxConvertResult IeeeToVaxF(float v, std::uint8_t out[4]);
VaxConvertResult VaxFToIeee(const std::uint8_t in[4], float* out);

// 64-bit D_floating. `out`/`in` are the 8-byte VAX memory image.
VaxConvertResult IeeeToVaxD(double v, std::uint8_t out[8]);
VaxConvertResult VaxDToIeee(const std::uint8_t in[8], double* out);

// Largest finite magnitudes representable (handy for tests and clamping).
float VaxFMaxAsIeee();
double VaxDMaxAsIeee();

}  // namespace mermaid::arch
