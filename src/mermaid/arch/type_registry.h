// Type registry: the "table specifying the mapping of data types to
// conversion routines" of §2.3.
//
// Mermaid requires every DSM page to hold data of one type only. The typed
// allocator records the page's TypeId; when a page migrates between
// incompatible hosts, the DSM system looks the type up here and converts the
// page in place. Built-in types (char/short/int/long/float/double/pointer)
// come pre-registered; user-defined record types are composed from fields —
// mirroring the paper's "in the case of compound data structures, the
// conversion routine calls the appropriate conversion routine for each
// field" — and fully custom per-element converters can be registered for
// anything else.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/vaxfloat.h"
#include "mermaid/base/stats.h"
#include "mermaid/base/time.h"

namespace mermaid::arch {

using TypeId = std::uint16_t;

enum class BasicKind : std::uint8_t {
  kChar,     // 1 byte, never converted
  kShort,    // 2 bytes, byte swap
  kInt,      // 4 bytes, byte swap
  kLong,     // 8 bytes, byte swap
  kFloat,    // 4 bytes, IEEE single <-> VAX F
  kDouble,   // 8 bytes, IEEE double <-> VAX D
  kPointer,  // 8-byte DSM global address: byte swap + relocation delta
};

// One field of a record: `count` consecutive elements of `type`. Fields are
// laid out sequentially with no padding; the paper's requirement that "the
// size of each data type must be the same on each host, and the order of
// the fields within compound structures must be the same" is enforced by
// construction.
struct Field {
  TypeId type;
  std::uint32_t count = 1;
};

// Counters for lossy conversion events (NaN/Inf clamps, underflows, ...).
struct ConvertStats {
  std::int64_t underflowed_to_zero = 0;
  std::int64_t clamped_overflow = 0;
  std::int64_t clamped_special = 0;
  std::int64_t reserved_operand = 0;

  std::int64_t total_lossy() const {
    return underflowed_to_zero + clamped_overflow + clamped_special +
           reserved_operand;
  }
  void Record(VaxConvertResult r);
};

// Everything a conversion routine needs to know about the transfer, matching
// the paper's converter argument list (direction + pointer offset).
struct ConvertContext {
  const ArchProfile* src = nullptr;
  const ArchProfile* dst = nullptr;
  // Added to every kPointer value: (dst DSM base) - (src DSM base). Zero in
  // the shipped system since all hosts map DSM at the same base (§2.3), but
  // implemented and tested per the paper's mechanism.
  std::int64_t pointer_delta = 0;
  ConvertStats* stats = nullptr;  // optional lossy-event counters
};

// Converts one element in place; `bytes` spans exactly the element.
using CustomConverter =
    std::function<void(std::span<std::uint8_t> bytes, const ConvertContext&)>;

class TypeRegistry {
 public:
  // Pre-registered basic types.
  static constexpr TypeId kChar = 0;
  static constexpr TypeId kShort = 1;
  static constexpr TypeId kInt = 2;
  static constexpr TypeId kLong = 3;
  static constexpr TypeId kFloat = 4;
  static constexpr TypeId kDouble = 5;
  static constexpr TypeId kPointer = 6;

  TypeRegistry();

  // Registers a record type laid out as the given field sequence.
  TypeId RegisterRecord(std::string name, std::vector<Field> fields);

  // Registers an opaque type with a user-supplied per-element converter.
  TypeId RegisterCustom(std::string name, std::size_t size,
                        CustomConverter converter);

  std::size_t SizeOf(TypeId t) const;
  const std::string& NameOf(TypeId t) const;
  bool IsValid(TypeId t) const { return t < types_.size(); }

  // Modeled conversion cost of one element of `t` on `host` (Table 3 rates).
  SimDuration ModeledElementCost(const ArchProfile& host, TypeId t) const;

  // Converts `count` consecutive elements of `t` in place from the source
  // host's representation to the destination host's (ctx.src -> ctx.dst).
  // `data` must span at least count * SizeOf(t) bytes.
  void ConvertBuffer(TypeId t, std::span<std::uint8_t> data,
                     std::size_t count, const ConvertContext& ctx) const;

  // Converts `count` elements of `t` placed `stride` bytes apart (stride >=
  // SizeOf(t); the gap bytes are untouched). This is the bulk entry point
  // for page layouts that round elements up to a slot size — one call
  // converts the whole page instead of one ConvertBuffer call per element.
  void ConvertStrided(TypeId t, std::span<std::uint8_t> data,
                      std::size_t count, std::size_t stride,
                      const ConvertContext& ctx) const;

 private:
  struct TypeInfo {
    std::string name;
    std::size_t size = 0;
    bool is_basic = false;
    BasicKind basic = BasicKind::kChar;
    std::vector<Field> fields;        // for records
    CustomConverter custom;           // for custom types
  };

  void ConvertElement(const TypeInfo& info, std::uint8_t* p,
                      const ConvertContext& ctx) const;

  std::vector<TypeInfo> types_;
};

}  // namespace mermaid::arch
