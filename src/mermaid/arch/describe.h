// Compile-time generation of conversion descriptors.
//
// §5: "We are currently working on automatic generation of the conversion
// routines at compile time, which appears to be feasible." This header is
// that facility, in C++20 terms: a record's field layout is expressed as a
// type, the registry descriptor is generated from it, and the layout is
// checked against the actual C++ struct at compile time — no hand-written
// conversion routine and no hand-maintained field table.
//
//   struct Sample {           // must be packed / padding-free
//     std::int32_t id;
//     float xy[2];
//     std::int16_t flags[4];
//   };
//   using SampleDesc = arch::Record<arch::FieldOf<std::int32_t>,
//                                   arch::FieldOf<float, 2>,
//                                   arch::FieldOf<std::int16_t, 4>>;
//   static_assert(SampleDesc::kByteSize == sizeof(Sample));
//   arch::TypeId id = SampleDesc::Register(registry, "sample");
//
// Nested records compose: arch::FieldOfRecord<InnerDesc, N> embeds N
// consecutive inner records. Pointers use arch::DsmPtrField.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "mermaid/arch/type_registry.h"

namespace mermaid::arch {

namespace detail {

template <typename T>
constexpr TypeId BasicTypeIdFor() {
  if constexpr (std::is_same_v<T, char> || std::is_same_v<T, std::int8_t> ||
                std::is_same_v<T, std::uint8_t>) {
    return TypeRegistry::kChar;
  } else if constexpr (std::is_same_v<T, std::int16_t> ||
                       std::is_same_v<T, std::uint16_t>) {
    return TypeRegistry::kShort;
  } else if constexpr (std::is_same_v<T, std::int32_t> ||
                       std::is_same_v<T, std::uint32_t>) {
    return TypeRegistry::kInt;
  } else if constexpr (std::is_same_v<T, std::int64_t> ||
                       std::is_same_v<T, std::uint64_t>) {
    return TypeRegistry::kLong;
  } else if constexpr (std::is_same_v<T, float>) {
    return TypeRegistry::kFloat;
  } else if constexpr (std::is_same_v<T, double>) {
    return TypeRegistry::kDouble;
  } else {
    static_assert(!sizeof(T), "type has no DSM basic-type mapping");
  }
}

}  // namespace detail

// `count` consecutive elements of a scalar C++ type.
template <typename T, std::uint32_t kCount = 1>
struct FieldOf {
  static constexpr std::size_t kByteSize = sizeof(T) * kCount;
  static Field Describe(TypeRegistry& /*reg*/) {
    return Field{detail::BasicTypeIdFor<T>(), kCount};
  }
};

// A DSM pointer (8-byte global address, relocated on conversion).
template <std::uint32_t kCount = 1>
struct DsmPtrField {
  static constexpr std::size_t kByteSize = 8 * kCount;
  static Field Describe(TypeRegistry& /*reg*/) {
    return Field{TypeRegistry::kPointer, kCount};
  }
};

// `count` consecutive embedded records described by `Desc`.
template <typename Desc, std::uint32_t kCount = 1>
struct FieldOfRecord {
  static constexpr std::size_t kByteSize = Desc::kByteSize * kCount;
  static Field Describe(TypeRegistry& reg) {
    return Field{Desc::Register(reg, Desc::GeneratedName()), kCount};
  }
};

// A record laid out as the concatenation of its field descriptors.
template <typename... Fields>
struct Record {
  static constexpr std::size_t kByteSize = (Fields::kByteSize + ... + 0);
  static_assert(sizeof...(Fields) > 0, "a record needs at least one field");

  // Registers (idempotently per registry instance is the caller's concern;
  // repeated registration simply creates an equivalent type id).
  static TypeId Register(TypeRegistry& reg, const std::string& name) {
    return reg.RegisterRecord(name, {Fields::Describe(reg)...});
  }

  static std::string GeneratedName() {
    return "record<" + std::to_string(kByteSize) + "B>";
  }
};

// Convenience: registers `Desc` and statically checks it matches the C++
// struct `T` byte-for-byte (size only — C++ cannot introspect field offsets
// without reflection, so a mismatched field order still needs the size to
// coincide to slip through; keep structs packed and ordered).
template <typename T, typename Desc>
TypeId RegisterMirrored(TypeRegistry& reg, const std::string& name) {
  static_assert(Desc::kByteSize == sizeof(T),
                "descriptor layout does not match the struct");
  static_assert(std::is_trivially_copyable_v<T>);
  return Desc::Register(reg, name);
}

}  // namespace mermaid::arch
