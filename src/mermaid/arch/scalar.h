// Single-scalar access to a host's representation-faithful memory.
//
// Application threads in the simulation run on the build machine but operate
// on memory images laid out for their simulated host: a SUN3 image stores
// big-endian integers and big-endian IEEE floats; a FIREFLY image stores
// little-endian integers and VAX F/D floats. These helpers are the "machine
// instructions" of a simulated host — every typed DSM accessor bottoms out
// here. Lossy cases (storing an IEEE NaN into VAX memory) follow the same
// clamping policy as the page converters.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/vaxfloat.h"
#include "mermaid/base/bytes.h"

namespace mermaid::arch {

template <typename T>
T LoadScalar(const ArchProfile& host, const void* p) {
  if constexpr (std::is_same_v<T, float>) {
    if (host.float_format == FloatFormat::kVax) {
      float out = 0;
      VaxFToIeee(static_cast<const std::uint8_t*>(p), &out);
      return out;
    }
    auto bits = base::LoadAs<std::uint32_t>(p, host.byte_order);
    return std::bit_cast<float>(bits);
  } else if constexpr (std::is_same_v<T, double>) {
    if (host.float_format == FloatFormat::kVax) {
      double out = 0;
      VaxDToIeee(static_cast<const std::uint8_t*>(p), &out);
      return out;
    }
    auto bits = base::LoadAs<std::uint64_t>(p, host.byte_order);
    return std::bit_cast<double>(bits);
  } else {
    static_assert(std::is_integral_v<T>);
    return base::LoadAs<T>(p, host.byte_order);
  }
}

template <typename T>
void StoreScalar(const ArchProfile& host, void* p, T v) {
  if constexpr (std::is_same_v<T, float>) {
    if (host.float_format == FloatFormat::kVax) {
      IeeeToVaxF(v, static_cast<std::uint8_t*>(p));
      return;
    }
    base::StoreAs(p, std::bit_cast<std::uint32_t>(v), host.byte_order);
  } else if constexpr (std::is_same_v<T, double>) {
    if (host.float_format == FloatFormat::kVax) {
      IeeeToVaxD(v, static_cast<std::uint8_t*>(p));
      return;
    }
    base::StoreAs(p, std::bit_cast<std::uint64_t>(v), host.byte_order);
  } else {
    static_assert(std::is_integral_v<T>);
    base::StoreAs(p, v, host.byte_order);
  }
}

}  // namespace mermaid::arch
