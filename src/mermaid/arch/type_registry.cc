#include "mermaid/arch/type_registry.h"

#include <bit>
#include <cstring>

#include "mermaid/base/bytes.h"
#include "mermaid/base/check.h"

namespace mermaid::arch {

namespace {

std::size_t BasicSize(BasicKind k) {
  switch (k) {
    case BasicKind::kChar:
      return 1;
    case BasicKind::kShort:
      return 2;
    case BasicKind::kInt:
    case BasicKind::kFloat:
      return 4;
    case BasicKind::kLong:
    case BasicKind::kDouble:
    case BasicKind::kPointer:
      return 8;
  }
  return 0;
}

template <typename U>
void SwapInPlace(std::uint8_t* p) {
  U v;
  std::memcpy(&v, p, sizeof(U));
  v = base::ByteSwap(v);
  std::memcpy(p, &v, sizeof(U));
}

}  // namespace

void ConvertStats::Record(VaxConvertResult r) {
  switch (r) {
    case VaxConvertResult::kExact:
      break;
    case VaxConvertResult::kUnderflowedToZero:
      ++underflowed_to_zero;
      break;
    case VaxConvertResult::kClampedOverflow:
      ++clamped_overflow;
      break;
    case VaxConvertResult::kClampedSpecial:
      ++clamped_special;
      break;
    case VaxConvertResult::kReservedOperand:
      ++reserved_operand;
      break;
  }
}

TypeRegistry::TypeRegistry() {
  auto add_basic = [this](const char* name, BasicKind k) {
    TypeInfo info;
    info.name = name;
    info.size = BasicSize(k);
    info.is_basic = true;
    info.basic = k;
    types_.push_back(std::move(info));
  };
  add_basic("char", BasicKind::kChar);      // kChar = 0
  add_basic("short", BasicKind::kShort);    // kShort = 1
  add_basic("int", BasicKind::kInt);        // kInt = 2
  add_basic("long", BasicKind::kLong);      // kLong = 3
  add_basic("float", BasicKind::kFloat);    // kFloat = 4
  add_basic("double", BasicKind::kDouble);  // kDouble = 5
  add_basic("ptr", BasicKind::kPointer);    // kPointer = 6
}

TypeId TypeRegistry::RegisterRecord(std::string name,
                                    std::vector<Field> fields) {
  MERMAID_CHECK(!fields.empty());
  TypeInfo info;
  info.name = std::move(name);
  for (const Field& f : fields) {
    MERMAID_CHECK(IsValid(f.type));
    MERMAID_CHECK(f.count > 0);
    info.size += SizeOf(f.type) * f.count;
  }
  info.fields = std::move(fields);
  types_.push_back(std::move(info));
  return static_cast<TypeId>(types_.size() - 1);
}

TypeId TypeRegistry::RegisterCustom(std::string name, std::size_t size,
                                    CustomConverter converter) {
  MERMAID_CHECK(size > 0);
  TypeInfo info;
  info.name = std::move(name);
  info.size = size;
  info.custom = std::move(converter);
  types_.push_back(std::move(info));
  return static_cast<TypeId>(types_.size() - 1);
}

std::size_t TypeRegistry::SizeOf(TypeId t) const {
  MERMAID_CHECK(IsValid(t));
  return types_[t].size;
}

const std::string& TypeRegistry::NameOf(TypeId t) const {
  MERMAID_CHECK(IsValid(t));
  return types_[t].name;
}

SimDuration TypeRegistry::ModeledElementCost(const ArchProfile& host,
                                             TypeId t) const {
  MERMAID_CHECK(IsValid(t));
  const TypeInfo& info = types_[t];
  if (info.is_basic) {
    switch (info.basic) {
      case BasicKind::kChar:
        return static_cast<SimDuration>(host.convert.per_char_ns);
      case BasicKind::kShort:
        return static_cast<SimDuration>(host.convert.per_short_ns);
      case BasicKind::kInt:
        return static_cast<SimDuration>(host.convert.per_int_ns);
      case BasicKind::kLong:
      case BasicKind::kPointer:
        // Modeled as two 4-byte swaps.
        return static_cast<SimDuration>(2 * host.convert.per_int_ns);
      case BasicKind::kFloat:
        return static_cast<SimDuration>(host.convert.per_float_ns);
      case BasicKind::kDouble:
        return static_cast<SimDuration>(host.convert.per_double_ns);
    }
  }
  if (!info.fields.empty()) {
    SimDuration total = 0;
    for (const Field& f : info.fields) {
      total += ModeledElementCost(host, f.type) * f.count;
    }
    return total;
  }
  // Custom converter: modeled at the int rate per 4 bytes, matching the
  // paper's observation that user-defined conversions are "comparable".
  return static_cast<SimDuration>(host.convert.per_int_ns *
                                  (static_cast<double>(info.size) / 4.0));
}

void TypeRegistry::ConvertElement(const TypeInfo& info, std::uint8_t* p,
                                  const ConvertContext& ctx) const {
  const ArchProfile& src = *ctx.src;
  const ArchProfile& dst = *ctx.dst;
  const bool swap = src.byte_order != dst.byte_order;

  if (info.custom) {
    info.custom(std::span<std::uint8_t>(p, info.size), ctx);
    return;
  }
  if (!info.is_basic) {
    std::uint8_t* q = p;
    for (const Field& f : info.fields) {
      const TypeInfo& ft = types_[f.type];
      for (std::uint32_t i = 0; i < f.count; ++i) {
        ConvertElement(ft, q, ctx);
        q += ft.size;
      }
    }
    return;
  }
  switch (info.basic) {
    case BasicKind::kChar:
      break;  // character data needs no conversion (Fig. 2)
    case BasicKind::kShort:
      if (swap) SwapInPlace<std::uint16_t>(p);
      break;
    case BasicKind::kInt:
      if (swap) SwapInPlace<std::uint32_t>(p);
      break;
    case BasicKind::kLong:
      if (swap) SwapInPlace<std::uint64_t>(p);
      break;
    case BasicKind::kPointer: {
      std::uint64_t v = 0;
      std::memcpy(&v, p, 8);
      if (src.byte_order != base::NativeOrder()) v = base::ByteSwap(v);
      v = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) +
                                     ctx.pointer_delta);
      if (dst.byte_order != base::NativeOrder()) v = base::ByteSwap(v);
      std::memcpy(p, &v, 8);
      break;
    }
    case BasicKind::kFloat: {
      if (src.float_format == dst.float_format) {
        // Same format; VAX images are byte-defined, IEEE follows byte order.
        if (src.float_format == FloatFormat::kIeee754 && swap) {
          SwapInPlace<std::uint32_t>(p);
        }
        break;
      }
      if (src.float_format == FloatFormat::kVax) {
        float f = 0;
        VaxConvertResult r = VaxFToIeee(p, &f);
        if (ctx.stats != nullptr) ctx.stats->Record(r);
        base::StoreAs(p, std::bit_cast<std::uint32_t>(f), dst.byte_order);
      } else {
        auto bits = base::LoadAs<std::uint32_t>(p, src.byte_order);
        VaxConvertResult r = IeeeToVaxF(std::bit_cast<float>(bits), p);
        if (ctx.stats != nullptr) ctx.stats->Record(r);
      }
      break;
    }
    case BasicKind::kDouble: {
      if (src.float_format == dst.float_format) {
        if (src.float_format == FloatFormat::kIeee754 && swap) {
          SwapInPlace<std::uint64_t>(p);
        }
        break;
      }
      if (src.float_format == FloatFormat::kVax) {
        double d = 0;
        VaxConvertResult r = VaxDToIeee(p, &d);
        if (ctx.stats != nullptr) ctx.stats->Record(r);
        base::StoreAs(p, std::bit_cast<std::uint64_t>(d), dst.byte_order);
      } else {
        auto bits = base::LoadAs<std::uint64_t>(p, src.byte_order);
        VaxConvertResult r = IeeeToVaxD(std::bit_cast<double>(bits), p);
        if (ctx.stats != nullptr) ctx.stats->Record(r);
      }
      break;
    }
  }
}

void TypeRegistry::ConvertBuffer(TypeId t, std::span<std::uint8_t> data,
                                 std::size_t count,
                                 const ConvertContext& ctx) const {
  ConvertStrided(t, data, count, SizeOf(t), ctx);
}

void TypeRegistry::ConvertStrided(TypeId t, std::span<std::uint8_t> data,
                                  std::size_t count, std::size_t stride,
                                  const ConvertContext& ctx) const {
  MERMAID_CHECK(IsValid(t));
  MERMAID_CHECK(ctx.src != nullptr && ctx.dst != nullptr);
  const TypeInfo& info = types_[t];
  MERMAID_CHECK(stride >= info.size);
  if (count == 0) return;
  MERMAID_CHECK(data.size() >= (count - 1) * stride + info.size);
  std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < count; ++i, p += stride) {
    ConvertElement(info, p, ctx);
  }
}

}  // namespace mermaid::arch
