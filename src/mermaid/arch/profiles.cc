#include "mermaid/arch/arch.h"

namespace mermaid::arch {

// Calibration sources (see EXPERIMENTS.md for the full derivation):
//   Table 1 — fault handling: Sun 1.98/2.04 ms, Firefly 6.80/6.70 ms.
//   Table 2 — page transfer (ms):            8 KB   1 KB
//       Sun→Sun 18 / 5.1, Sun→Ffly 27 / 7.6, Ffly→Sun 25 / 7.3,
//       Ffly→Ffly 33 / 6.7.
//     Fitting latency = data_fixed + per_packet·ceil(bytes/1472) +
//     wire·bytes with wire = 0.8 us/byte (10 Mb/s Ethernet) gives the
//     constants below.
//   Table 3 — conversion on a Firefly (ms, 8 KB page): int 10.9 (2048
//     elements → 5.32 us each), short 11.0 (4096 → 2.69 us), float 21.6
//     (2048 → 10.5 us), double 28.9 (1024 → 28.2 us). The user-record datum
//     (19.6 ms per 8 KB on a Sun3/60 vs a modeled 14.9 ms on a Firefly)
//     puts Sun conversion at ~1.3x the Firefly per-element cost.
//   Table 4 residuals — owner/manager request processing and page install.

const ArchProfile& Sun3Profile() {
  static const ArchProfile kSun3 = [] {
    ArchProfile p;
    p.name = "SUN3";
    p.kind = ArchKind::kSun3;
    p.byte_order = base::ByteOrder::kBig;   // M68020
    p.float_format = FloatFormat::kIeee754;
    p.vm_page_size = 8192;
    p.fault_cost_read = MillisecondsF(1.98);
    p.fault_cost_write = MillisecondsF(2.04);
    // Residuals of Table 4's Sun->Sun column after Tables 1-2 are accounted
    // for: request processing ~2.4 ms, page install ~2.5 ms.
    p.server_op_cost = MillisecondsF(2.4);
    p.page_install_cost = MillisecondsF(2.5);
    p.int_work_cost = MicrosecondsF(3.5);    // ~3 MIPS, ~10 insns per unit
    p.float_work_cost = MicrosecondsF(7.0);  // software-assisted FP
    // Sun conversion rate: between the user-record datum (1.3x Firefly) and
    // the Table-4 Sun->Ffly residual (~1.8x); 1.5x splits the difference.
    p.convert.per_short_ns = 2.69e3 * 1.5;
    p.convert.per_int_ns = 5.32e3 * 1.5;
    p.convert.per_float_ns = 10.5e3 * 1.5;
    p.convert.per_double_ns = 28.2e3 * 1.5;
    return p;
  }();
  return kSun3;
}

const ArchProfile& FireflyProfile() {
  static const ArchProfile kFirefly = [] {
    ArchProfile p;
    p.name = "FIREFLY";
    p.kind = ArchKind::kFirefly;
    p.byte_order = base::ByteOrder::kLittle;  // CVAX
    p.float_format = FloatFormat::kVax;
    p.vm_page_size = 1024;
    p.cpu_count = 5;  // "up to 7 processors"; ~5 usable for applications
    p.fault_cost_read = MillisecondsF(6.80);
    p.fault_cost_write = MillisecondsF(6.70);
    // Firefly server ops are costlier: user-level message processing plus
    // multiprocessor data-structure locking (paper §3.1).
    p.server_op_cost = MillisecondsF(3.2);
    p.page_install_cost = MillisecondsF(1.8);
    p.int_work_cost = MicrosecondsF(3.3);
    p.float_work_cost = MicrosecondsF(5.0);  // CVAX has hardware FP
    p.convert.per_short_ns = 2.69e3;
    p.convert.per_int_ns = 5.32e3;
    p.convert.per_float_ns = 10.5e3;
    p.convert.per_double_ns = 28.2e3;
    return p;
  }();
  return kFirefly;
}

LinkCost LinkCostFor(const ArchProfile& src, const ArchProfile& dst) {
  constexpr double kWire = 800.0;  // ns/byte: 10 Mb/s Ethernet
  LinkCost c;
  c.wire_ns_per_byte = kWire;
  const bool src_sun = src.kind == ArchKind::kSun3;
  const bool dst_sun = dst.kind == ArchKind::kSun3;
  // Fits of Table 2 (1 packet for 1 KB, 6 packets for 8 KB at MTU 1472):
  if (src_sun && dst_sun) {
    c.data_fixed = MillisecondsF(2.85);
    c.per_packet = MillisecondsF(1.43);
    c.control_fixed = MillisecondsF(2.1);
  } else if (src_sun && !dst_sun) {
    c.data_fixed = MillisecondsF(4.05);
    c.per_packet = MillisecondsF(2.73);
    c.control_fixed = MillisecondsF(2.8);
  } else if (!src_sun && dst_sun) {
    c.data_fixed = MillisecondsF(4.09);
    c.per_packet = MillisecondsF(2.39);
    c.control_fixed = MillisecondsF(2.8);
  } else {
    c.data_fixed = MillisecondsF(1.77);
    c.per_packet = MillisecondsF(4.11);
    c.control_fixed = MillisecondsF(3.4);
  }
  return c;
}

}  // namespace mermaid::arch
