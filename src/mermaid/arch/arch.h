// Architecture profiles.
//
// A profile captures everything about a host type that the paper's
// heterogeneity handling depends on: byte order, floating-point format,
// native VM page size, and the calibrated cost model (CPU work rates,
// fault-handling costs from Table 1, conversion rates from Table 3). The two
// shipped profiles, SUN3 (M68020: big-endian, IEEE, 8 KB pages) and FIREFLY
// (CVAX: little-endian, VAX F/D floats, 1 KB pages), are calibrated from the
// paper's own microbenchmarks; tests also use synthetic profiles.
#pragma once

#include <cstdint>
#include <string>

#include "mermaid/base/bytes.h"
#include "mermaid/base/time.h"

namespace mermaid::arch {

enum class FloatFormat : std::uint8_t {
  kIeee754,  // IEEE 754 single/double
  kVax,      // VAX F_floating (32-bit) / D_floating (64-bit)
};

enum class ArchKind : std::uint8_t { kSun3, kFirefly, kGeneric };

// Per-element modeled conversion costs (ns), calibrated from Table 3.
struct ConvertCosts {
  double per_char_ns = 0;  // character data is never converted
  double per_short_ns = 0;
  double per_int_ns = 0;
  double per_float_ns = 0;
  double per_double_ns = 0;
};

struct ArchProfile {
  std::string name;
  ArchKind kind = ArchKind::kGeneric;
  base::ByteOrder byte_order = base::ByteOrder::kLittle;
  FloatFormat float_format = FloatFormat::kIeee754;
  std::uint32_t vm_page_size = 4096;
  // Processors usable for application threads (the Firefly is a small-scale
  // multiprocessor; threads beyond this count time-share).
  std::uint16_t cpu_count = 1;

  // --- cost model -------------------------------------------------------
  // Handling a DSM page fault up to and including sending the request
  // (user-level handler invocation + page table processing + send), Table 1.
  SimDuration fault_cost_read = 0;
  SimDuration fault_cost_write = 0;
  // Processing one protocol request at a manager/owner/server.
  SimDuration server_op_cost = 0;
  // Installing a received page (map + permission change).
  SimDuration page_install_cost = 0;
  // One abstract unit of application work: an integer multiply-accumulate
  // including loop/index overhead (≈10 instructions on a ~3 MIPS CPU).
  SimDuration int_work_cost = 0;
  // Same for a floating-point element of work.
  SimDuration float_work_cost = 0;

  ConvertCosts convert;

  bool SameRepresentation(const ArchProfile& other) const {
    return byte_order == other.byte_order &&
           float_format == other.float_format;
  }
};

// Compact wire encoding of a profile's representation class (byte order +
// float format). Two profiles share a class iff SameRepresentation; the DSM
// layer uses the byte to key converted-page caches and to tag FetchReply
// payloads with the representation they are encoded in.
inline std::uint8_t RepClassByte(const ArchProfile& p) {
  return static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(p.byte_order) << 1) |
      static_cast<std::uint8_t>(p.float_format));
}

// Per-link (ordered host-type pair) message cost parameters, calibrated from
// Table 2 by fitting fixed + per-packet + wire terms (see EXPERIMENTS.md):
//   data message latency  = data_fixed + per_packet * n_packets + wire * bytes
//   control message latency = control_fixed + wire * bytes
struct LinkCost {
  SimDuration control_fixed = 0;
  SimDuration data_fixed = 0;
  SimDuration per_packet = 0;
  double wire_ns_per_byte = 0;
};

// Built-in calibrated profiles.
const ArchProfile& Sun3Profile();
const ArchProfile& FireflyProfile();

// Link parameters for an ordered (src, dst) host-type pair.
LinkCost LinkCostFor(const ArchProfile& src, const ArchProfile& dst);

}  // namespace mermaid::arch
