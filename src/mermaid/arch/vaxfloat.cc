#include "mermaid/arch/vaxfloat.h"

#include <bit>
#include <limits>

namespace mermaid::arch {

namespace {

// Packs logical VAX-F fields into the 4-byte memory image: two little-endian
// 16-bit words, word0 = s<<15 | e<<7 | f<22:16>, word1 = f<15:0>.
void PackVaxF(std::uint32_t s, std::uint32_t e, std::uint32_t f,
              std::uint8_t out[4]) {
  const std::uint16_t w0 =
      static_cast<std::uint16_t>((s << 15) | (e << 7) | (f >> 16));
  const std::uint16_t w1 = static_cast<std::uint16_t>(f & 0xFFFF);
  out[0] = static_cast<std::uint8_t>(w0 & 0xFF);
  out[1] = static_cast<std::uint8_t>(w0 >> 8);
  out[2] = static_cast<std::uint8_t>(w1 & 0xFF);
  out[3] = static_cast<std::uint8_t>(w1 >> 8);
}

void UnpackVaxF(const std::uint8_t in[4], std::uint32_t* s, std::uint32_t* e,
                std::uint32_t* f) {
  const std::uint16_t w0 = static_cast<std::uint16_t>(in[0] | (in[1] << 8));
  const std::uint16_t w1 = static_cast<std::uint16_t>(in[2] | (in[3] << 8));
  *s = w0 >> 15;
  *e = (w0 >> 7) & 0xFF;
  *f = (static_cast<std::uint32_t>(w0 & 0x7F) << 16) | w1;
}

// VAX-D image: four little-endian 16-bit words, word0 = s<<15|e<<7|f<54:48>,
// then f<47:32>, f<31:16>, f<15:0>.
void PackVaxD(std::uint32_t s, std::uint32_t e, std::uint64_t f,
              std::uint8_t out[8]) {
  const std::uint16_t w0 = static_cast<std::uint16_t>(
      (s << 15) | (e << 7) | static_cast<std::uint32_t>(f >> 48));
  const std::uint16_t w1 = static_cast<std::uint16_t>((f >> 32) & 0xFFFF);
  const std::uint16_t w2 = static_cast<std::uint16_t>((f >> 16) & 0xFFFF);
  const std::uint16_t w3 = static_cast<std::uint16_t>(f & 0xFFFF);
  out[0] = static_cast<std::uint8_t>(w0 & 0xFF);
  out[1] = static_cast<std::uint8_t>(w0 >> 8);
  out[2] = static_cast<std::uint8_t>(w1 & 0xFF);
  out[3] = static_cast<std::uint8_t>(w1 >> 8);
  out[4] = static_cast<std::uint8_t>(w2 & 0xFF);
  out[5] = static_cast<std::uint8_t>(w2 >> 8);
  out[6] = static_cast<std::uint8_t>(w3 & 0xFF);
  out[7] = static_cast<std::uint8_t>(w3 >> 8);
}

void UnpackVaxD(const std::uint8_t in[8], std::uint32_t* s, std::uint32_t* e,
                std::uint64_t* f) {
  const std::uint16_t w0 = static_cast<std::uint16_t>(in[0] | (in[1] << 8));
  const std::uint16_t w1 = static_cast<std::uint16_t>(in[2] | (in[3] << 8));
  const std::uint16_t w2 = static_cast<std::uint16_t>(in[4] | (in[5] << 8));
  const std::uint16_t w3 = static_cast<std::uint16_t>(in[6] | (in[7] << 8));
  *s = w0 >> 15;
  *e = (w0 >> 7) & 0xFF;
  *f = (static_cast<std::uint64_t>(w0 & 0x7F) << 48) |
       (static_cast<std::uint64_t>(w1) << 32) |
       (static_cast<std::uint64_t>(w2) << 16) | w3;
}

}  // namespace

VaxConvertResult IeeeToVaxF(float v, std::uint8_t out[4]) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t s = bits >> 31;
  const std::uint32_t ieee_e = (bits >> 23) & 0xFF;
  const std::uint32_t frac = bits & 0x7FFFFF;

  if (ieee_e == 0xFF) {
    // NaN or infinity: clamp to the largest finite VAX magnitude, keeping
    // the sign for infinities.
    PackVaxF(s, 255, 0x7FFFFF, out);
    return VaxConvertResult::kClampedSpecial;
  }
  if (ieee_e == 0) {
    // Zero or IEEE denormal. The smallest VAX-F normal is 2^-128 while IEEE
    // single denormals are < 2^-126; a denormal with value >= 2^-128 could
    // in principle be represented, but like the original VAX conversion
    // libraries we flush all denormals to (true) zero.
    PackVaxF(0, 0, 0, out);
    return frac == 0 ? VaxConvertResult::kExact
                     : VaxConvertResult::kUnderflowedToZero;
  }
  const std::uint32_t e = ieee_e + 2;  // rebias 127 -> 129 (hidden-bit shift)
  if (e > 255) {
    PackVaxF(s, 255, 0x7FFFFF, out);
    return VaxConvertResult::kClampedOverflow;
  }
  PackVaxF(s, e, frac, out);
  return VaxConvertResult::kExact;
}

VaxConvertResult VaxFToIeee(const std::uint8_t in[4], float* out) {
  std::uint32_t s = 0, e = 0, f = 0;
  UnpackVaxF(in, &s, &e, &f);
  if (e == 0) {
    if (s == 0) {
      *out = 0.0f;  // VAX treats e=0,s=0 as zero regardless of fraction
      return VaxConvertResult::kExact;
    }
    *out = std::numeric_limits<float>::quiet_NaN();
    return VaxConvertResult::kReservedOperand;
  }
  const std::int32_t ieee_e = static_cast<std::int32_t>(e) - 2;
  std::uint32_t bits;
  if (ieee_e <= 0) {
    // e in {1, 2}: below the smallest IEEE single normal; emit a denormal.
    const std::uint32_t mant24 = 0x800000u | f;
    const std::uint32_t shift = static_cast<std::uint32_t>(1 - ieee_e);
    bits = (s << 31) | (mant24 >> shift);
  } else {
    bits = (s << 31) | (static_cast<std::uint32_t>(ieee_e) << 23) | f;
  }
  *out = std::bit_cast<float>(bits);
  return VaxConvertResult::kExact;
}

VaxConvertResult IeeeToVaxD(double v, std::uint8_t out[8]) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const std::uint32_t s = static_cast<std::uint32_t>(bits >> 63);
  const std::uint32_t ieee_e = static_cast<std::uint32_t>((bits >> 52) & 0x7FF);
  const std::uint64_t frac = bits & 0xFFFFFFFFFFFFFull;

  if (ieee_e == 0x7FF) {
    PackVaxD(s, 255, 0x7FFFFFFFFFFFF8ull, out);
    return VaxConvertResult::kClampedSpecial;
  }
  if (ieee_e == 0) {
    PackVaxD(0, 0, 0, out);
    return frac == 0 ? VaxConvertResult::kExact
                     : VaxConvertResult::kUnderflowedToZero;
  }
  // VAX-D exponent: value = 1.f * 2^(e-129); IEEE: 1.F * 2^(E-1023).
  const std::int32_t e = static_cast<std::int32_t>(ieee_e) - 1023 + 129;
  if (e > 255) {
    PackVaxD(s, 255, 0x7FFFFFFFFFFFF8ull, out);
    return VaxConvertResult::kClampedOverflow;
  }
  if (e < 1) {
    PackVaxD(0, 0, 0, out);
    return VaxConvertResult::kUnderflowedToZero;
  }
  // Widen the 52-bit IEEE fraction to the 55-bit VAX-D fraction.
  PackVaxD(s, static_cast<std::uint32_t>(e), frac << 3, out);
  return VaxConvertResult::kExact;
}

VaxConvertResult VaxDToIeee(const std::uint8_t in[8], double* out) {
  std::uint32_t s = 0, e = 0;
  std::uint64_t f = 0;
  UnpackVaxD(in, &s, &e, &f);
  if (e == 0) {
    if (s == 0) {
      *out = 0.0;
      return VaxConvertResult::kExact;
    }
    *out = std::numeric_limits<double>::quiet_NaN();
    return VaxConvertResult::kReservedOperand;
  }
  std::uint64_t ieee_e = static_cast<std::uint64_t>(e) + 894;  // e-129+1023
  // Round the 55-bit fraction to 52 bits, half away from zero. A carry out
  // of the fraction bumps the exponent (staying far below the IEEE max).
  std::uint64_t rounded = f + 4;
  if (rounded >> 55 != 0) {
    rounded = 0;
    ++ieee_e;
  }
  const std::uint64_t frac52 = (rounded >> 3) & 0xFFFFFFFFFFFFFull;
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(s) << 63) | (ieee_e << 52) | frac52;
  *out = std::bit_cast<double>(bits);
  return VaxConvertResult::kExact;
}

float VaxFMaxAsIeee() {
  // e=255, f=all ones: (2 - 2^-23) * 2^126.
  return std::bit_cast<float>((253u << 23) | 0x7FFFFFu);
}

double VaxDMaxAsIeee() {
  // The VAX-D max is (2 - 2^-55) * 2^126; the largest IEEE double not
  // exceeding it truncates the fraction to 52 bits: (2 - 2^-52) * 2^126,
  // i.e. exponent field 1149 (126 + 1023) with an all-ones fraction.
  return std::bit_cast<double>((1149ull << 52) | 0xFFFFFFFFFFFFFull);
}

}  // namespace mermaid::arch
