#include "mermaid/sim/realtime.h"

#include <algorithm>
#include <queue>

#include "mermaid/base/check.h"

namespace mermaid::sim {

namespace {
constexpr SimTime kNoDeadline = -1;
}

class RealTimeRuntime::RtChan final
    : public ChanCore,
      public std::enable_shared_from_this<RtChan> {
 public:
  RtChan(RealTimeRuntime* rt, std::function<void(void*)> deleter)
      : rt_(rt), deleter_(std::move(deleter)) {}

  ~RtChan() override {
    while (!items_.empty()) {
      deleter_(items_.top().item);
      items_.pop();
    }
  }

  void Push(void* item, SimTime deliver_time) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (shut_) {
        deleter_(item);
        return;
      }
      items_.push(Item{deliver_time, ++seq_, item});
    }
    cv_.notify_all();
  }

  void* Pop(SimTime deadline, bool* timed_out) override {
    if (timed_out != nullptr) *timed_out = false;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (shut_) return nullptr;
      SimTime now = rt_->Now();
      if (!items_.empty() && items_.top().deliver <= now) {
        void* item = items_.top().item;
        items_.pop();
        return item;
      }
      if (deadline != kNoDeadline && now >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return nullptr;
      }
      SimTime wake = deadline;
      if (!items_.empty() &&
          (wake == kNoDeadline || items_.top().deliver < wake)) {
        wake = items_.top().deliver;
      }
      if (wake == kNoDeadline) {
        cv_.wait(lk);
      } else {
        cv_.wait_until(lk, rt_->ToWall(wake));
      }
    }
  }

  void* TryPop() override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!items_.empty() && items_.top().deliver <= rt_->Now()) {
      void* item = items_.top().item;
      items_.pop();
      return item;
    }
    return nullptr;
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shut_ = true;
    }
    cv_.notify_all();
  }

 private:
  struct Item {
    SimTime deliver;
    std::uint64_t seq;
    void* item;
    bool operator>(const Item& o) const {
      return deliver != o.deliver ? deliver > o.deliver : seq > o.seq;
    }
  };

  RealTimeRuntime* rt_;
  std::function<void(void*)> deleter_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> items_;
  std::uint64_t seq_ = 0;
  bool shut_ = false;

  friend class RealTimeRuntime;
};

RealTimeRuntime::RealTimeRuntime(double time_scale)
    : time_scale_(time_scale),
      start_(std::chrono::steady_clock::now()),
      shared_(std::make_shared<Shared>()) {
  MERMAID_CHECK(time_scale_ > 0);
}

RealTimeRuntime::~RealTimeRuntime() {
  if (!run_done_) Run();
}

SimTime RealTimeRuntime::Now() {
  auto wall = std::chrono::steady_clock::now() - start_;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count();
  return static_cast<SimTime>(static_cast<double>(ns) * time_scale_);
}

void RealTimeRuntime::Delay(SimDuration d) {
  MERMAID_CHECK(d >= 0);
  auto wall_ns =
      static_cast<std::int64_t>(static_cast<double>(d) / time_scale_);
  std::this_thread::sleep_for(std::chrono::nanoseconds(wall_ns));
}

void RealTimeRuntime::Spawn(std::string /*name*/, std::function<void()> fn,
                            bool daemon) {
  if (!daemon) {
    std::lock_guard<std::mutex> lk(shared_->mu);
    ++shared_->live_nondaemon;
  }
  auto shared = shared_;
  std::thread th([shared, fn = std::move(fn), daemon]() {
    fn();
    if (!daemon) {
      std::lock_guard<std::mutex> lk(shared->mu);
      if (--shared->live_nondaemon == 0) shared->cv.notify_all();
    }
  });
  std::lock_guard<std::mutex> lk(threads_mu_);
  threads_.push_back(std::move(th));
}

std::shared_ptr<ChanCore> RealTimeRuntime::MakeChan(
    std::function<void(void*)> deleter) {
  auto ch = std::make_shared<RtChan>(this, std::move(deleter));
  std::lock_guard<std::mutex> lk(shared_->mu);
  if (shared_->chans.size() >= shared_->chan_prune_at) {
    std::erase_if(shared_->chans,
                  [](const std::weak_ptr<RtChan>& w) { return w.expired(); });
    shared_->chan_prune_at =
        std::max<std::size_t>(64, 2 * shared_->chans.size());
  }
  shared_->chans.push_back(ch);
  return ch;
}

SimTime RealTimeRuntime::Run() {
  {
    std::unique_lock<std::mutex> lk(shared_->mu);
    while (shared_->live_nondaemon > 0) shared_->cv.wait(lk);
    shared_->shutting_down = true;
    for (auto& wc : shared_->chans) {
      if (auto ch = wc.lock()) ch->Shutdown();
    }
  }
  std::lock_guard<std::mutex> lk(threads_mu_);
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
  run_done_ = true;
  return Now();
}

}  // namespace mermaid::sim
