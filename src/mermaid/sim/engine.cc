#include "mermaid/sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "mermaid/base/check.h"
#include "mermaid/trace/trace.h"

namespace mermaid::sim {

namespace {
// Identifies the process the current OS thread is running, to catch misuse
// of process-only calls from the wrong thread.
thread_local void* tls_proc = nullptr;
}  // namespace

struct Engine::Proc {
  std::string name;
  std::thread thread;
  std::condition_variable cv;
  bool daemon = false;
  bool done = false;
  // Earliest virtual time at which this process may resume; kNever while it
  // is blocked with nothing to wait for.
  SimTime wake_time = 0;
  std::uint64_t seq = 0;
  bool running = false;
};

class Engine::SimChan final : public ChanCore {
 public:
  SimChan(Engine* eng, std::function<void(void*)> deleter)
      : eng_(eng), deleter_(std::move(deleter)) {}

  ~SimChan() override {
    while (!items_.empty()) {
      deleter_(items_.top().item);
      items_.pop();
    }
  }

  void Push(void* item, SimTime deliver_time) override {
    std::unique_lock<std::mutex> lk(eng_->mu_);
    if (eng_->shutting_down_) {
      deleter_(item);
      return;
    }
    deliver_time = std::max(deliver_time, eng_->now_);
    items_.push(Item{deliver_time, ++eng_->push_seq_, item});
    for (Proc* w : waiters_) eng_->MakeReadyLocked(w, deliver_time);
  }

  void* Pop(SimTime deadline, bool* timed_out) override {
    if (timed_out != nullptr) *timed_out = false;
    std::unique_lock<std::mutex> lk(eng_->mu_);
    Proc* self = eng_->current_;
    MERMAID_CHECK_MSG(self != nullptr && tls_proc == self,
                      "Chan::Recv called outside a simulated process");
    for (;;) {
      if (eng_->shutting_down_) return nullptr;
      if (!items_.empty() && items_.top().deliver <= eng_->now_) {
        void* item = items_.top().item;
        items_.pop();
        return item;
      }
      if (deadline >= 0 && eng_->now_ >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return nullptr;
      }
      SimTime wake = kNever;
      if (!items_.empty()) wake = items_.top().deliver;
      if (deadline >= 0) wake = std::min(wake, deadline);
      self->wake_time = wake;
      self->seq = ++eng_->ready_seq_;
      waiters_.push_back(self);
      eng_->SwitchOutLocked(lk, self);
      waiters_.erase(std::find(waiters_.begin(), waiters_.end(), self));
    }
  }

  void* TryPop() override {
    std::unique_lock<std::mutex> lk(eng_->mu_);
    if (!items_.empty() && items_.top().deliver <= eng_->now_) {
      void* item = items_.top().item;
      items_.pop();
      return item;
    }
    return nullptr;
  }

 private:
  struct Item {
    SimTime deliver;
    std::uint64_t seq;  // FIFO order among equal delivery times
    void* item;
    bool operator>(const Item& o) const {
      return deliver != o.deliver ? deliver > o.deliver : seq > o.seq;
    }
  };

  Engine* eng_;
  std::function<void(void*)> deleter_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> items_;
  std::vector<Proc*> waiters_;
};

Engine::Engine() = default;

Engine::~Engine() {
  if (!run_called_ && live_total_ > 0) {
    // Processes were spawned but never driven; run them to completion so
    // their threads can be joined.
    Run();
  }
  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
}

SimTime Engine::Now() {
  std::unique_lock<std::mutex> lk(mu_);
  return now_;
}

void Engine::Delay(SimDuration d) {
  MERMAID_CHECK(d >= 0);
  std::unique_lock<std::mutex> lk(mu_);
  Proc* self = current_;
  MERMAID_CHECK_MSG(self != nullptr && tls_proc == self,
                    "Delay called outside a simulated process");
  self->wake_time = now_ + d;
  self->seq = ++ready_seq_;
  SwitchOutLocked(lk, self);
}

void Engine::Spawn(std::string name, std::function<void()> fn, bool daemon) {
  std::unique_lock<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(!run_done_, "Spawn after Run completed");
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Record(trace::EventKind::kProcSpawn, trace::kNoHost, now_,
                    trace::kNoPage, static_cast<std::uint64_t>(procs_.size()),
                    0, daemon ? 1 : 0);
  }
  auto proc = std::make_unique<Proc>();
  Proc* p = proc.get();
  p->name = std::move(name);
  p->daemon = daemon;
  p->wake_time = now_;
  p->seq = ++ready_seq_;
  ++live_total_;
  if (!daemon) ++live_nondaemon_;
  procs_.push_back(std::move(proc));
  p->thread = std::thread([this, p, fn = std::move(fn)]() {
    {
      std::unique_lock<std::mutex> lk2(mu_);
      while (!p->running) p->cv.wait(lk2);
      tls_proc = p;
    }
    fn();
    std::unique_lock<std::mutex> lk2(mu_);
    p->done = true;
    p->running = false;
    p->wake_time = kNever;
    --live_total_;
    if (!p->daemon && --live_nondaemon_ == 0) InitiateShutdownLocked();
    current_ = nullptr;
    ScheduleLocked();
  });
}

std::shared_ptr<ChanCore> Engine::MakeChan(
    std::function<void(void*)> deleter) {
  auto ch = std::make_shared<SimChan>(this, std::move(deleter));
  std::unique_lock<std::mutex> lk(mu_);
  chans_.push_back(ch);
  return ch;
}

SimTime Engine::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(!run_called_, "Engine::Run called twice");
  run_called_ = true;
  if (live_total_ == 0) {
    run_done_ = true;
    return now_;
  }
  ScheduleLocked();
  while (!run_done_) run_cv_.wait(lk);
  return now_;
}

void Engine::MakeReadyLocked(Proc* p, SimTime t) {
  if (t < p->wake_time) {
    p->wake_time = t;
    p->seq = ++ready_seq_;
  }
}

void Engine::ScheduleLocked() {
  MERMAID_CHECK(current_ == nullptr);
  for (;;) {
    Proc* best = nullptr;
    for (auto& up : procs_) {
      Proc* p = up.get();
      if (p->done || p->running) continue;
      if (p->wake_time == kNever) continue;
      if (best == nullptr || p->wake_time < best->wake_time ||
          (p->wake_time == best->wake_time && p->seq < best->seq)) {
        best = p;
      }
    }
    if (best != nullptr) {
      now_ = std::max(now_, best->wake_time);
      current_ = best;
      best->running = true;
      ++switch_count_;
      best->cv.notify_one();
      return;
    }
    if (live_total_ == 0) {
      run_done_ = true;
      run_cv_.notify_all();
      return;
    }
    if (!shutting_down_ && live_nondaemon_ == 0) {
      InitiateShutdownLocked();
      continue;  // daemons are now schedulable
    }
    DeadlockLocked();
  }
}

void Engine::SwitchOutLocked(std::unique_lock<std::mutex>& lk, Proc* self) {
  MERMAID_CHECK(current_ == self);
  // Fast path: if this process is still the best candidate, resume it
  // immediately without a thread handoff.
  self->running = false;
  current_ = nullptr;
  ScheduleLocked();
  while (!self->running) self->cv.wait(lk);
}

void Engine::InitiateShutdownLocked() {
  shutting_down_ = true;
  // Wake every blocked process so channel receives observe shutdown.
  for (auto& up : procs_) {
    Proc* p = up.get();
    if (p->done || p->running) continue;
    if (p->wake_time > now_) {
      p->wake_time = now_;
      p->seq = ++ready_seq_;
    }
  }
}

void Engine::DeadlockLocked() {
  std::fprintf(stderr,
               "sim::Engine deadlock at t=%lld ns: all %d live processes "
               "blocked with no pending event\n",
               static_cast<long long>(now_), live_total_);
  for (auto& up : procs_) {
    if (!up->done) {
      std::fprintf(stderr, "  blocked: %s\n", up->name.c_str());
    }
  }
  std::abort();
}

}  // namespace mermaid::sim
