#include "mermaid/sim/engine.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>

#include "mermaid/base/check.h"
#include "mermaid/trace/trace.h"

#if defined(__SANITIZE_ADDRESS__)
#define MERMAID_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MERMAID_HAS_ASAN 1
#endif
#endif

#ifdef MERMAID_HAS_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

namespace mermaid::sim {

namespace {
// Identifies the process the current OS thread is running, to catch misuse
// of process-only calls from the wrong thread. In fiber mode every process
// runs on the Run() thread, so the scheduler sets/clears this around each
// fiber swap instead of each process thread setting it once.
thread_local void* tls_proc = nullptr;

// Ungrouped Spawn calls are spread round-robin over this many sub-queues.
constexpr std::uint32_t kDefaultGroups = 16;

EngineOptions Normalize(EngineOptions o) {
  // The timer wheel feeds the sub-queue pick path; it cannot run under the
  // legacy scan (which reads proc fields, not queues).
  if (o.timer_wheel) o.subqueues = true;
  return o;
}

// ASan must be told about every stack switch or it poisons/unpoisons the
// wrong frames and reports false stack-use-after-return. No-ops elsewhere.
inline void AsanStartSwitch(void** fake_save, const void* stack_lo,
                            std::size_t stack_sz) {
#ifdef MERMAID_HAS_ASAN
  __sanitizer_start_switch_fiber(fake_save, stack_lo, stack_sz);
#else
  (void)fake_save;
  (void)stack_lo;
  (void)stack_sz;
#endif
}

inline void AsanFinishSwitch(void* fake_restore, const void** old_lo,
                             std::size_t* old_sz) {
#ifdef MERMAID_HAS_ASAN
  __sanitizer_finish_switch_fiber(fake_restore, old_lo, old_sz);
#else
  (void)fake_restore;
  (void)old_lo;
  (void)old_sz;
#endif
}
}  // namespace

EngineOptions EngineOptions::FromEnv() {
  const char* v = std::getenv("MERMAID_ENGINE");
  if (v == nullptr) return {};
  const std::string s(v);
  if (s == "opt" || s == "all" || s == "fast") return AllOn();
  return {};
}

struct Engine::Proc {
  Engine* eng = nullptr;
  std::string name;
  std::thread thread;
  std::condition_variable cv;
  std::function<void()> fn;  // fiber mode only; threads capture it instead
  bool daemon = false;
  bool done = false;
  // Earliest virtual time at which this process may resume; kNever while it
  // is blocked with nothing to wait for.
  SimTime wake_time = 0;
  std::uint64_t seq = 0;
  bool running = false;
  // Scheduler affinity group (sub-queue index); unused in legacy mode.
  std::uint32_t group = 0;
  // True when the current (wake_time, seq) is a receive deadline rather
  // than a pending delivery/delay: deadline waits park on the timer wheel.
  bool wake_is_deadline = false;
  TimerWheel::Timer* timer = nullptr;  // wheel node while parked there
  // Fiber mode: context plus an mmapped stack with a guard page at the low
  // end. asan_fake is ASan's fake-stack handle for this fiber.
  ucontext_t uctx = {};
  void* stack_base = nullptr;
  std::size_t stack_total = 0;
  void* stack_lo = nullptr;
  std::size_t stack_usable = 0;
  void* asan_fake = nullptr;
};

struct Engine::FiberState {
  ucontext_t sched_ctx = {};
  void* sched_fake = nullptr;  // ASan handle for the Run() thread's stack
  const void* sched_lo = nullptr;
  std::size_t sched_sz = 0;
};

class Engine::SimChan final : public ChanCore {
 public:
  SimChan(Engine* eng, std::function<void(void*)> deleter)
      : eng_(eng), deleter_(std::move(deleter)) {}

  ~SimChan() override {
    while (!items_.empty()) {
      deleter_(items_.top().item);
      items_.pop();
    }
  }

  void Push(void* item, SimTime deliver_time) override {
    std::unique_lock<std::mutex> lk(eng_->mu_);
    if (eng_->shutting_down_) {
      deleter_(item);
      return;
    }
    deliver_time = std::max(deliver_time, eng_->now_rel());
    items_.push(Item{deliver_time, ++eng_->push_seq_, item});
    for (Proc* w : waiters_) eng_->MakeReadyLocked(w, deliver_time);
  }

  void* Pop(SimTime deadline, bool* timed_out) override {
    if (timed_out != nullptr) *timed_out = false;
    std::unique_lock<std::mutex> lk(eng_->mu_);
    Proc* self = eng_->current_;
    MERMAID_CHECK_MSG(self != nullptr && tls_proc == self,
                      "Chan::Recv called outside a simulated process");
    for (;;) {
      if (eng_->shutting_down_) return nullptr;
      if (!items_.empty() && items_.top().deliver <= eng_->now_rel()) {
        void* item = items_.top().item;
        items_.pop();
        return item;
      }
      if (deadline >= 0 && eng_->now_rel() >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return nullptr;
      }
      SimTime wake = kNever;
      if (!items_.empty()) wake = items_.top().deliver;
      // Deadline-bound iff the deadline is strictly the earliest reason to
      // wake; on a tie the pending delivery wins the classification (the
      // (time, seq) key is the same either way, so the schedule is too).
      bool deadline_bound = false;
      if (deadline >= 0 && deadline < wake) {
        wake = deadline;
        deadline_bound = true;
      }
      self->wake_time = wake;
      self->wake_is_deadline = deadline_bound;
      self->seq = ++eng_->ready_seq_;
      waiters_.push_back(self);
      eng_->SwitchOutLocked(lk, self);
      waiters_.erase(std::find(waiters_.begin(), waiters_.end(), self));
    }
  }

  void* TryPop() override {
    std::unique_lock<std::mutex> lk(eng_->mu_);
    if (!items_.empty() && items_.top().deliver <= eng_->now_rel()) {
      void* item = items_.top().item;
      items_.pop();
      return item;
    }
    return nullptr;
  }

 private:
  struct Item {
    SimTime deliver;
    std::uint64_t seq;  // FIFO order among equal delivery times
    void* item;
    bool operator>(const Item& o) const {
      return deliver != o.deliver ? deliver > o.deliver : seq > o.seq;
    }
  };

  Engine* eng_;
  std::function<void(void*)> deleter_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> items_;
  std::vector<Proc*> waiters_;
};

Engine::Engine(EngineOptions opts) : opts_(Normalize(opts)) {
  if (opts_.subqueues) subqueues_.resize(kDefaultGroups);
  if (opts_.slab) {
    proc_slab_ = std::make_unique<base::Slab>(sizeof(Proc), /*per_chunk=*/64);
    item_slab_ = std::make_unique<base::SlabPool>();
  }
  if (opts_.fast_handoff) fibers_ = std::make_unique<FiberState>();
}

Engine::~Engine() {
  if (!run_called_ && live_total_ > 0) {
    // Processes were spawned but never driven; run them to completion so
    // their threads/fibers can be reaped.
    Run();
  }
  DestroyProcs();
}

Engine::Proc* Engine::NewProcLocked() {
  if (proc_slab_) return new (proc_slab_->Alloc()) Proc();
  return new Proc();
}

void Engine::DestroyProcs() {
  for (Proc* p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
  for (Proc* p : procs_) {
    void* stack = p->stack_base;
    const std::size_t total = p->stack_total;
    if (proc_slab_) {
      p->~Proc();
      proc_slab_->Free(p);
    } else {
      delete p;
    }
    if (stack != nullptr) munmap(stack, total);
  }
  procs_.clear();
}

SimTime Engine::Now() { return now_.load(std::memory_order_acquire); }

void Engine::Delay(SimDuration d) {
  MERMAID_CHECK(d >= 0);
  std::unique_lock<std::mutex> lk(mu_);
  Proc* self = current_;
  MERMAID_CHECK_MSG(self != nullptr && tls_proc == self,
                    "Delay called outside a simulated process");
  self->wake_time = now_rel() + d;
  self->wake_is_deadline = false;
  self->seq = ++ready_seq_;
  SwitchOutLocked(lk, self);
}

void Engine::Spawn(std::string name, std::function<void()> fn, bool daemon) {
  SpawnInternal(-1, std::move(name), std::move(fn), daemon);
}

void Engine::SpawnOn(std::uint32_t group, std::string name,
                     std::function<void()> fn, bool daemon) {
  SpawnInternal(static_cast<std::int64_t>(group), std::move(name),
                std::move(fn), daemon);
}

void Engine::SpawnInternal(std::int64_t group, std::string name,
                           std::function<void()> fn, bool daemon) {
  std::unique_lock<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(!run_done_, "Spawn after Run completed");
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Record(trace::EventKind::kProcSpawn, trace::kNoHost, now_rel(),
                    trace::kNoPage, static_cast<std::uint64_t>(procs_.size()),
                    0, daemon ? 1 : 0);
  }
  Proc* p = NewProcLocked();
  p->eng = this;
  p->name = std::move(name);
  p->daemon = daemon;
  p->wake_time = now_rel();
  p->wake_is_deadline = false;
  p->seq = ++ready_seq_;
  if (opts_.subqueues) {
    p->group = group >= 0 ? static_cast<std::uint32_t>(group)
                          : (rr_group_++ & (kDefaultGroups - 1));
    if (subqueues_.size() <= p->group) subqueues_.resize(p->group + 1);
  }
  ++live_total_;
  if (!daemon) ++live_nondaemon_;
  procs_.push_back(p);
  EnqueueLocked(p);
  if (fibers_) {
    p->fn = std::move(fn);
    CreateFiber(p);
    return;
  }
  p->thread = std::thread([this, p, fn = std::move(fn)]() {
    {
      std::unique_lock<std::mutex> lk2(mu_);
      while (!p->running) p->cv.wait(lk2);
      tls_proc = p;
    }
    fn();
    std::unique_lock<std::mutex> lk2(mu_);
    p->done = true;
    p->running = false;
    p->wake_time = kNever;
    --live_total_;
    if (!p->daemon && --live_nondaemon_ == 0) InitiateShutdownLocked();
    current_ = nullptr;
    ScheduleLocked();
  });
}

std::shared_ptr<ChanCore> Engine::MakeChan(
    std::function<void(void*)> deleter) {
  auto ch = std::make_shared<SimChan>(this, std::move(deleter));
  std::unique_lock<std::mutex> lk(mu_);
  ++chans_created_;
  if (chans_.size() >= chan_prune_at_) PruneChansLocked();
  chans_.push_back(ch);
  return ch;
}

void Engine::PruneChansLocked() {
  std::erase_if(chans_,
                [](const std::weak_ptr<SimChan>& w) { return w.expired(); });
  chan_prune_at_ = std::max<std::size_t>(64, 2 * chans_.size());
}

std::size_t Engine::live_chan_count() {
  std::unique_lock<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& w : chans_) {
    if (!w.expired()) ++n;
  }
  return n;
}

void* Engine::AllocItem(std::size_t bytes) {
  if (!item_slab_) return ::operator new(bytes);
  std::lock_guard<std::mutex> lk(slab_mu_);
  return item_slab_->Alloc(bytes);
}

void Engine::FreeItem(void* p, std::size_t bytes) {
  if (!item_slab_) {
    ::operator delete(p);
    return;
  }
  std::lock_guard<std::mutex> lk(slab_mu_);
  item_slab_->Free(p, bytes);
}

SimTime Engine::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(!run_called_, "Engine::Run called twice");
  run_called_ = true;
  if (live_total_ == 0) {
    run_done_ = true;
    return now_rel();
  }
  if (fibers_) {
    RunFiberLoop(lk);
  } else {
    ScheduleLocked();
    while (!run_done_) run_cv_.wait(lk);
  }
  return now_rel();
}

void Engine::MakeReadyLocked(Proc* p, SimTime t) {
  if (t < p->wake_time) {
    p->wake_time = t;
    p->wake_is_deadline = false;
    p->seq = ++ready_seq_;
    if (opts_.subqueues) {
      CancelTimerLocked(p);
      EnqueueLocked(p);
    }
  }
}

void Engine::EnqueueLocked(Proc* p) {
  if (!opts_.subqueues) return;
  if (p->done || p->running || p->wake_time == kNever) return;
  if (opts_.timer_wheel && p->wake_is_deadline) {
    p->timer = wheel_.Arm(p->wake_time, p->seq, p);
    return;
  }
  MinQ& q = subqueues_[p->group];
  q.push(QEntry{p->wake_time, p->seq, p});
  // Maintain the merge invariant (an entry with key <= each sub-queue's
  // true min): only a new sub-queue minimum needs advertising.
  if (q.top().seq == p->seq) {
    merge_.push(MergeEntry{p->wake_time, p->seq, p->group});
  }
}

void Engine::CancelTimerLocked(Proc* p) {
  if (p->timer != nullptr) {
    wheel_.Cancel(p->timer);
    p->timer = nullptr;
  }
}

void Engine::PruneSubLocked(MinQ& q) {
  while (!q.empty()) {
    const QEntry& e = q.top();
    if (!e.p->done && !e.p->running && e.seq == e.p->seq) return;
    q.pop();  // stale: the process was rescheduled under a newer seq
  }
}

Engine::Proc* Engine::PeekSubLocked(SimTime* t, std::uint64_t* seq) {
  for (;;) {
    if (merge_.empty()) return nullptr;
    const MergeEntry m = merge_.top();
    MinQ& q = subqueues_[m.group];
    PruneSubLocked(q);
    if (q.empty()) {
      merge_.pop();
      continue;
    }
    const QEntry& top = q.top();
    if (top.t != m.t || top.seq != m.seq) {
      // Stale advertisement; replace it with the queue's current min.
      merge_.pop();
      merge_.push(MergeEntry{top.t, top.seq, m.group});
      continue;
    }
    *t = top.t;
    *seq = top.seq;
    return top.p;
  }
}

bool Engine::PeekNextLocked(SimTime* t, std::uint64_t* seq) {
  SimTime st;
  std::uint64_t ss;
  Proc* sub = PeekSubLocked(&st, &ss);
  bool have = sub != nullptr;
  if (have) {
    *t = st;
    *seq = ss;
  }
  SimTime wt;
  std::uint64_t ws;
  if (opts_.timer_wheel && wheel_.PeekMin(now_rel(), &wt, &ws)) {
    if (!have || wt < *t || (wt == *t && ws < *seq)) {
      *t = wt;
      *seq = ws;
      have = true;
    }
  }
  return have;
}

Engine::Proc* Engine::PickNextLocked() {
  if (!opts_.subqueues) {
    // Legacy reference scheduler: linear scan, O(processes) per switch.
    Proc* best = nullptr;
    for (Proc* p : procs_) {
      if (p->done || p->running) continue;
      if (p->wake_time == kNever) continue;
      if (best == nullptr || p->wake_time < best->wake_time ||
          (p->wake_time == best->wake_time && p->seq < best->seq)) {
        best = p;
      }
    }
    return best;
  }
  SimTime st = 0;
  std::uint64_t ss = 0;
  Proc* sub = PeekSubLocked(&st, &ss);
  SimTime wt;
  std::uint64_t ws;
  if (opts_.timer_wheel && wheel_.PeekMin(now_rel(), &wt, &ws)) {
    if (sub == nullptr || wt < st || (wt == st && ws < ss)) {
      Proc* p = static_cast<Proc*>(wheel_.PopMin(now_rel()));
      p->timer = nullptr;
      return p;
    }
  }
  if (sub == nullptr) return nullptr;
  const std::uint32_t g = merge_.top().group;
  subqueues_[g].pop();
  merge_.pop();
  PruneSubLocked(subqueues_[g]);
  if (!subqueues_[g].empty()) {
    const QEntry& next = subqueues_[g].top();
    merge_.push(MergeEntry{next.t, next.seq, g});
  }
  return sub;
}

void Engine::DispatchLocked(Proc* p) {
  now_.store(std::max(now_rel(), p->wake_time), std::memory_order_release);
  current_ = p;
  p->running = true;
  ++switch_count_;
}

void Engine::ScheduleLocked() {
  MERMAID_CHECK(current_ == nullptr);
  for (;;) {
    Proc* best = PickNextLocked();
    if (best != nullptr) {
      DispatchLocked(best);
      best->cv.notify_one();
      return;
    }
    if (live_total_ == 0) {
      run_done_ = true;
      run_cv_.notify_all();
      return;
    }
    if (!shutting_down_ && live_nondaemon_ == 0) {
      InitiateShutdownLocked();
      continue;  // daemons are now schedulable
    }
    DeadlockLocked();
  }
}

void Engine::SwitchOutLocked(std::unique_lock<std::mutex>& lk, Proc* self) {
  MERMAID_CHECK(current_ == self);
  if (opts_.subqueues && self->wake_time != kNever) {
    // Fast resume: if this process's new (wake, seq) is still the global
    // minimum, the legacy scheduler would pick it right back — skip the
    // enqueue/pick round-trip (and, in thread mode, the OS handoff).
    SimTime bt;
    std::uint64_t bs;
    if (!PeekNextLocked(&bt, &bs) || self->wake_time < bt ||
        (self->wake_time == bt && self->seq < bs)) {
      now_.store(std::max(now_rel(), self->wake_time),
                 std::memory_order_release);
      ++switch_count_;  // the legacy scheduler counts this pick too
      ++fast_resume_count_;
      return;
    }
  }
  self->running = false;
  EnqueueLocked(self);
  current_ = nullptr;
  if (fibers_) {
    // The scheduler loop owns the lock discipline; a fiber must release the
    // mutex before swapping (the Run() thread re-acquires it).
    lk.unlock();
    SwitchToScheduler(self, /*final_exit=*/false);
    lk.lock();
    return;
  }
  ScheduleLocked();
  bool waited = false;
  while (!self->running) {
    waited = true;
    self->cv.wait(lk);
  }
  if (waited) ++handoff_count_;
}

void Engine::InitiateShutdownLocked() {
  shutting_down_ = true;
  // Wake every blocked process so channel receives observe shutdown.
  for (Proc* p : procs_) {
    if (p->done || p->running) continue;
    if (p->wake_time > now_rel()) {
      p->wake_time = now_rel();
      p->wake_is_deadline = false;
      p->seq = ++ready_seq_;
      if (opts_.subqueues) {
        CancelTimerLocked(p);
        EnqueueLocked(p);
      }
    }
  }
}

void Engine::DeadlockLocked() {
  std::fprintf(stderr,
               "sim::Engine deadlock at t=%lld ns: all %d live processes "
               "blocked with no pending event\n",
               static_cast<long long>(now_rel()), live_total_);
  for (Proc* p : procs_) {
    if (!p->done) {
      std::fprintf(stderr, "  blocked: %s\n", p->name.c_str());
    }
  }
  std::abort();
}

// ---------------------------------------------------------------------------
// Fiber (fast_handoff) machinery.

void Engine::FiberTrampoline(unsigned hi, unsigned lo) {
  auto* p = reinterpret_cast<Proc*>((static_cast<std::uintptr_t>(hi) << 32) |
                                    static_cast<std::uintptr_t>(lo));
  p->eng->FiberMain(p);
}

void Engine::CreateFiber(Proc* p) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  std::size_t usable = opts_.fiber_stack_bytes;
  usable = (usable + page - 1) & ~(page - 1);
  const std::size_t total = usable + page;  // + guard page at the low end
  void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  MERMAID_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
  MERMAID_CHECK(mprotect(base, page, PROT_NONE) == 0);
  p->stack_base = base;
  p->stack_total = total;
  p->stack_lo = static_cast<char*>(base) + page;
  p->stack_usable = usable;
  MERMAID_CHECK(getcontext(&p->uctx) == 0);
  p->uctx.uc_stack.ss_sp = p->stack_lo;
  p->uctx.uc_stack.ss_size = usable;
  p->uctx.uc_link = nullptr;
  // makecontext only forwards ints; split the pointer across two.
  const auto ptr = reinterpret_cast<std::uintptr_t>(p);
  makecontext(&p->uctx, reinterpret_cast<void (*)()>(&Engine::FiberTrampoline),
              2, static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
}

void Engine::RunFiberLoop(std::unique_lock<std::mutex>& lk) {
  for (;;) {
    MERMAID_CHECK(current_ == nullptr);
    Proc* best = PickNextLocked();
    if (best == nullptr) {
      if (live_total_ == 0) {
        run_done_ = true;
        return;
      }
      if (!shutting_down_ && live_nondaemon_ == 0) {
        InitiateShutdownLocked();
        continue;
      }
      DeadlockLocked();
    }
    DispatchLocked(best);
    lk.unlock();
    SwitchToFiber(best);
    lk.lock();
  }
}

void Engine::SwitchToFiber(Proc* p) {
  tls_proc = p;
  AsanStartSwitch(&fibers_->sched_fake, p->stack_lo, p->stack_usable);
  swapcontext(&fibers_->sched_ctx, &p->uctx);
  AsanFinishSwitch(fibers_->sched_fake, nullptr, nullptr);
  tls_proc = nullptr;
}

void Engine::SwitchToScheduler(Proc* p, bool final_exit) {
  // On final exit pass nullptr so ASan releases this fiber's fake stack.
  AsanStartSwitch(final_exit ? nullptr : &p->asan_fake, fibers_->sched_lo,
                  fibers_->sched_sz);
  swapcontext(&p->uctx, &fibers_->sched_ctx);
  AsanFinishSwitch(p->asan_fake, &fibers_->sched_lo, &fibers_->sched_sz);
}

void Engine::FiberMain(Proc* p) {
  // First entry: no fake stack to restore; record the scheduler thread's
  // stack bounds for the return switch.
  AsanFinishSwitch(nullptr, &fibers_->sched_lo, &fibers_->sched_sz);
  p->fn();
  p->fn = nullptr;  // release captures on the fiber, like a thread would
  {
    std::unique_lock<std::mutex> lk(mu_);
    p->done = true;
    p->running = false;
    p->wake_time = kNever;
    --live_total_;
    if (!p->daemon && --live_nondaemon_ == 0) InitiateShutdownLocked();
    current_ = nullptr;
  }
  SwitchToScheduler(p, /*final_exit=*/true);
  std::abort();  // a finished fiber is never resumed
}

// ---------------------------------------------------------------------------

std::string Engine::SchedulerReport() {
  std::unique_lock<std::mutex> lk(mu_);
  // All knobs off: stay silent so legacy reports are byte-identical to what
  // they always printed.
  if (!opts_.subqueues && !opts_.slab && !opts_.fast_handoff) return {};
  char line[320];
  std::string out;
  std::snprintf(line, sizeof(line),
                "engine: subqueues=%d timer_wheel=%d slab=%d fast_handoff=%d\n",
                opts_.subqueues ? 1 : 0, opts_.timer_wheel ? 1 : 0,
                opts_.slab ? 1 : 0, opts_.fast_handoff ? 1 : 0);
  out += line;
  std::size_t live_chans = 0;
  for (const auto& w : chans_) {
    if (!w.expired()) ++live_chans;
  }
  std::snprintf(
      line, sizeof(line),
      "engine: switches=%llu os_handoffs=%llu fast_resumes=%llu procs=%zu "
      "chans_live=%zu chans_created=%llu\n",
      static_cast<unsigned long long>(switch_count_),
      static_cast<unsigned long long>(handoff_count_),
      static_cast<unsigned long long>(fast_resume_count_), procs_.size(),
      live_chans, static_cast<unsigned long long>(chans_created_));
  out += line;
  if (opts_.timer_wheel) {
    const TimerWheel::Stats& ws = wheel_.stats();
    std::snprintf(line, sizeof(line),
                  "engine: wheel arms=%llu cancels=%llu fires=%llu "
                  "cascades=%llu pending=%zu\n",
                  static_cast<unsigned long long>(ws.arms),
                  static_cast<unsigned long long>(ws.cancels),
                  static_cast<unsigned long long>(ws.fires),
                  static_cast<unsigned long long>(ws.cascades), wheel_.size());
    out += line;
  }
  if (item_slab_) {
    base::SlabPool::Totals t;
    {
      std::lock_guard<std::mutex> slk(slab_mu_);
      t = item_slab_->totals();
    }
    const base::Slab::Stats& ps = proc_slab_->stats();
    std::snprintf(line, sizeof(line),
                  "engine: item slab allocs=%llu frees=%llu high_water=%llu "
                  "reserved=%llu fallback=%llu; proc slab allocs=%llu "
                  "reserved=%llu\n",
                  static_cast<unsigned long long>(t.allocs),
                  static_cast<unsigned long long>(t.frees),
                  static_cast<unsigned long long>(t.high_water),
                  static_cast<unsigned long long>(t.bytes_reserved),
                  static_cast<unsigned long long>(t.fallback_allocs),
                  static_cast<unsigned long long>(ps.allocs),
                  static_cast<unsigned long long>(ps.bytes_reserved));
    out += line;
  }
  return out;
}

}  // namespace mermaid::sim
