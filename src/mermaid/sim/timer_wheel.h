// Hierarchical timer wheel with exact (time, seq) ordering.
//
// Purpose-built for the engine's high-churn cancellable timers: reqrep
// retransmit deadlines, lease/TTL expiries, and reassembly sweeps arm a
// deadline, then usually cancel it when the awaited reply lands first. Arm
// and Cancel are O(1) (an intrusive doubly-linked insert/unlink into a
// slab-recycled node), so the common cancel-before-fire case costs no heap
// traffic and no deferred tombstone pops — the failure mode of a lazy
// binary heap.
//
// Unlike a classic tick-rounded wheel, every node stores its exact
// (deadline, seq) key and PeekMin/PopMin return the exact global minimum,
// so a scheduler that interleaves wheel timers with other event sources by
// (time, seq) produces *bit-identical* order to a single totally ordered
// queue. Slots only bound where a node is filed, never when it fires.
//
// Geometry: kLevels levels of 64 slots over a tick of 2^12 ns (~4.1 us).
// Level k spans tick * 64^(k+1); six levels cover ~9 simulated years, and
// anything beyond that sits in an overflow list that re-files as time
// approaches. A per-level occupancy bitmap makes the min scan O(levels),
// and a cached-min pointer makes the typical PeekMin O(1).
//
// Precondition shared with the engine: `now` passed to PeekMin/PopMin never
// exceeds the earliest armed deadline (the engine only advances virtual
// time to the minimum pending event), so cascading never has to fire
// overdue timers while re-filing.
//
// Not thread-safe; the engine calls it under its scheduler lock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mermaid/base/slab.h"
#include "mermaid/base/time.h"

namespace mermaid::sim {

class TimerWheel {
 public:
  struct Stats {
    std::uint64_t arms = 0;
    std::uint64_t cancels = 0;
    std::uint64_t fires = 0;
    std::uint64_t cascades = 0;  // node re-files during time advance
  };

  // Opaque handle, valid from Arm until the timer fires or is cancelled.
  struct Timer;

  TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel();

  // Arms a timer at absolute time `when` with tie-break `seq` (callers use
  // a globally unique sequence so ordering is total). O(1).
  Timer* Arm(SimTime when, std::uint64_t seq, void* payload);

  // O(1) unlink; the node is recycled. nullptr is a no-op so callers can
  // blindly cancel a handle they null out on fire (cancel-after-fire safe).
  void Cancel(Timer* t);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Exact earliest (when, seq) armed; false when empty. Advances the
  // internal cascade position to `now` first.
  bool PeekMin(SimTime now, SimTime* when, std::uint64_t* seq);

  // Removes the earliest timer and returns its payload. Must not be called
  // empty.
  void* PopMin(SimTime now);

  const Stats& stats() const { return st_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64: one occupancy word
  static constexpr int kLevels = 6;
  static constexpr int kTickBits = 12;  // tick = 4096 ns

  // Absolute slot index of `t` at `level` (monotonic, never wraps within a
  // SimTime range: 63 - 12 - 6*5 > 0 bits survive at the top level).
  static std::uint64_t SlotIndex(SimTime t, int level) {
    return static_cast<std::uint64_t>(t) >>
           (kTickBits + kSlotBits * level);
  }

  void AdvanceTo(SimTime now);
  void Place(Timer* n);  // files `n` by its deadline relative to cur_[]
  void Unlink(Timer* n);
  void EnsureMin(SimTime now);

  Timer* heads_[kLevels][kSlots] = {};
  std::uint64_t occupied_[kLevels] = {};  // bit s: heads_[level][s] != null
  std::uint64_t cur_[kLevels] = {};       // absolute slot index of `now`
  Timer* overflow_ = nullptr;             // beyond the top level's horizon
  Timer* cached_min_ = nullptr;           // null = recompute on next peek
  std::size_t size_ = 0;
  base::Slab node_slab_;
  Stats st_;
};

}  // namespace mermaid::sim
