// Real-time binding of the Runtime interface.
//
// Processes are plain OS threads, the clock is std::chrono::steady_clock,
// and Delay optionally compresses modeled time by `time_scale` (a scale of
// 1000 turns a modeled 5 ms compute block into a 5 us sleep). Used by
// integration tests and the quickstart example to demonstrate that the DSM
// stack runs unmodified on real concurrency.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mermaid/sim/runtime.h"

namespace mermaid::sim {

class RealTimeRuntime final : public Runtime {
 public:
  // `time_scale` divides every Delay: scale N means modeled time runs N
  // times faster than the wall clock.
  explicit RealTimeRuntime(double time_scale = 1.0);
  ~RealTimeRuntime() override;

  RealTimeRuntime(const RealTimeRuntime&) = delete;
  RealTimeRuntime& operator=(const RealTimeRuntime&) = delete;

  // Blocks until all non-daemon processes finish, then shuts channels down
  // (unwinding daemons) and joins every thread. Returns elapsed modeled time.
  SimTime Run();

  SimTime Now() override;
  void Delay(SimDuration d) override;
  void Spawn(std::string name, std::function<void()> fn,
             bool daemon = false) override;
  std::shared_ptr<ChanCore> MakeChan(
      std::function<void(void*)> deleter) override;

 private:
  class RtChan;
  friend class RtChan;

  // Maps a modeled time back to the wall-clock instant it corresponds to.
  std::chrono::steady_clock::time_point ToWall(SimTime t) const {
    return start_ + std::chrono::nanoseconds(static_cast<std::int64_t>(
                        static_cast<double>(t) / time_scale_));
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    bool shutting_down = false;
    int live_nondaemon = 0;
    std::vector<std::weak_ptr<RtChan>> chans;
    // Expired entries are swept once the vector doubles past this mark, so
    // long-lived runtimes creating transient channels stay bounded.
    std::size_t chan_prune_at = 64;
  };

  double time_scale_;
  std::chrono::steady_clock::time_point start_;
  std::shared_ptr<Shared> shared_;
  std::vector<std::thread> threads_;
  std::mutex threads_mu_;
  bool run_done_ = false;
};

}  // namespace mermaid::sim
