#include "mermaid/sim/timer_wheel.h"

#include <bit>

#include "mermaid/base/check.h"

namespace mermaid::sim {

struct TimerWheel::Timer {
  Timer* prev;
  Timer* next;
  SimTime when;
  std::uint64_t seq;
  void* payload;
  int level;  // -1 while on the overflow list
  int slot;
};

namespace {
inline bool KeyLess(SimTime t1, std::uint64_t s1, SimTime t2,
                    std::uint64_t s2) {
  return t1 != t2 ? t1 < t2 : s1 < s2;
}
}  // namespace

TimerWheel::TimerWheel() : node_slab_(sizeof(Timer)) {}

TimerWheel::~TimerWheel() = default;

TimerWheel::Timer* TimerWheel::Arm(SimTime when, std::uint64_t seq,
                                   void* payload) {
  auto* n = static_cast<Timer*>(node_slab_.Alloc());
  n->when = when;
  n->seq = seq;
  n->payload = payload;
  Place(n);
  ++st_.arms;
  ++size_;
  if (cached_min_ == nullptr) {
    if (size_ == 1) cached_min_ = n;
  } else if (KeyLess(when, seq, cached_min_->when, cached_min_->seq)) {
    cached_min_ = n;
  }
  return n;
}

void TimerWheel::Place(Timer* n) {
  for (int k = 0; k < kLevels; ++k) {
    const std::uint64_t idx = SlotIndex(n->when, k);
    if (idx < cur_[k] + kSlots) {
      const int slot = static_cast<int>(idx & (kSlots - 1));
      n->level = k;
      n->slot = slot;
      n->prev = nullptr;
      n->next = heads_[k][slot];
      if (n->next != nullptr) n->next->prev = n;
      heads_[k][slot] = n;
      occupied_[k] |= std::uint64_t{1} << slot;
      return;
    }
  }
  n->level = -1;
  n->slot = 0;
  n->prev = nullptr;
  n->next = overflow_;
  if (n->next != nullptr) n->next->prev = n;
  overflow_ = n;
}

void TimerWheel::Unlink(Timer* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else if (n->level >= 0) {
    heads_[n->level][n->slot] = n->next;
    if (n->next == nullptr) {
      occupied_[n->level] &= ~(std::uint64_t{1} << n->slot);
    }
  } else {
    overflow_ = n->next;
  }
  if (n->next != nullptr) n->next->prev = n->prev;
}

void TimerWheel::Cancel(Timer* t) {
  if (t == nullptr) return;
  Unlink(t);
  if (t == cached_min_) cached_min_ = nullptr;
  ++st_.cancels;
  --size_;
  node_slab_.Free(t);
}

void TimerWheel::AdvanceTo(SimTime now) {
  bool top_moved = false;
  for (int k = 0; k < kLevels; ++k) {
    const std::uint64_t nc = SlotIndex(now, k);
    if (nc == cur_[k]) break;  // lower level unchanged => all above too
    cur_[k] = nc;
    if (k == kLevels - 1) top_moved = true;
    if (k == 0) continue;  // level-0 slots fire directly, never cascade
    // The slot that just became current spans part of the lower level's
    // window; re-file its nodes downward. Slots passed entirely cannot be
    // occupied: their whole window is < now, and the engine never advances
    // past a pending timer.
    const int slot = static_cast<int>(nc & (kSlots - 1));
    Timer* n = heads_[k][slot];
    heads_[k][slot] = nullptr;
    occupied_[k] &= ~(std::uint64_t{1} << slot);
    while (n != nullptr) {
      Timer* next = n->next;
      Place(n);  // lands at a level < k (cur_ below is already advanced)
      ++st_.cascades;
      n = next;
    }
  }
  if (top_moved && overflow_ != nullptr) {
    Timer* n = overflow_;
    while (n != nullptr) {
      Timer* next = n->next;
      if (SlotIndex(n->when, kLevels - 1) < cur_[kLevels - 1] + kSlots) {
        Unlink(n);
        Place(n);
        ++st_.cascades;
      }
      n = next;
    }
  }
}

void TimerWheel::EnsureMin(SimTime now) {
  AdvanceTo(now);
  if (cached_min_ != nullptr || size_ == 0) return;
  Timer* best = nullptr;
  for (int k = 0; k < kLevels; ++k) {
    if (occupied_[k] == 0) continue;
    // First occupied slot in absolute order: slots at this level hold
    // indices in [cur, cur+64), so rotating the bitmap by cur's position
    // turns "first set bit" into "earliest window".
    const int start = static_cast<int>(cur_[k] & (kSlots - 1));
    const int off = std::countr_zero(std::rotr(occupied_[k], start));
    const int pos = (start + off) & (kSlots - 1);
    for (Timer* n = heads_[k][pos]; n != nullptr; n = n->next) {
      if (best == nullptr ||
          KeyLess(n->when, n->seq, best->when, best->seq)) {
        best = n;
      }
    }
  }
  for (Timer* n = overflow_; n != nullptr; n = n->next) {
    if (best == nullptr || KeyLess(n->when, n->seq, best->when, best->seq)) {
      best = n;
    }
  }
  cached_min_ = best;
}

bool TimerWheel::PeekMin(SimTime now, SimTime* when, std::uint64_t* seq) {
  if (size_ == 0) return false;
  EnsureMin(now);
  *when = cached_min_->when;
  *seq = cached_min_->seq;
  return true;
}

void* TimerWheel::PopMin(SimTime now) {
  MERMAID_CHECK(size_ != 0);
  EnsureMin(now);
  Timer* n = cached_min_;
  Unlink(n);
  cached_min_ = nullptr;
  ++st_.fires;
  --size_;
  void* payload = n->payload;
  node_slab_.Free(n);
  return payload;
}

}  // namespace mermaid::sim
