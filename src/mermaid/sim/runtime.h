// Runtime abstraction: processes, time, and channels.
//
// The entire Mermaid stack (network, DSM protocol, sync, applications) is
// written against this interface and blocks *only* by receiving on a Chan.
// Two bindings exist:
//   - sim::Engine   — deterministic discrete-event virtual time (primary;
//                     used by all benchmarks and most tests), and
//   - sim::RealTimeRuntime — plain OS threads and the wall clock, proving
//                     the protocol code is not simulation-bound.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "mermaid/base/time.h"

namespace mermaid::trace {
class Tracer;
}  // namespace mermaid::trace

namespace mermaid::sim {

// Type-erased channel core. Items are heap-allocated by the typed wrapper;
// the core owns them until popped and destroys leftovers with the deleter.
class ChanCore {
 public:
  virtual ~ChanCore() = default;

  // Enqueues `item` (ownership transferred) to become visible to receivers
  // at absolute time `deliver_time` (already >= now for the pushing side).
  virtual void Push(void* item, SimTime deliver_time) = 0;

  // Blocks the calling process until an item is deliverable or the runtime
  // is shutting down. Returns nullptr on shutdown. If `deadline` >= 0 and
  // reached first, returns nullptr with *timed_out = true.
  virtual void* Pop(SimTime deadline, bool* timed_out) = 0;

  // Non-blocking: pops a deliverable item if one exists.
  virtual void* TryPop() = 0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Current time on this runtime's clock (ns).
  virtual SimTime Now() = 0;

  // Models `d` of computation by the calling process. In virtual time this
  // advances the clock without consuming wall time.
  virtual void Delay(SimDuration d) = 0;

  // Starts a new process. Daemon processes (server loops) do not keep the
  // simulation alive: when every non-daemon process has finished, all
  // channels drain as "shutdown" and daemons unwind.
  virtual void Spawn(std::string name, std::function<void()> fn,
                     bool daemon = false) = 0;

  // Creates a channel core; `deleter` destroys unclaimed items.
  virtual std::shared_ptr<ChanCore> MakeChan(
      std::function<void(void*)> deleter) = 0;

  // Attaches a protocol tracer so the runtime can record scheduling events
  // (process spawns). Optional: the default binding ignores it. The tracer
  // must outlive every Spawn call made after attaching it.
  virtual void SetTracer(trace::Tracer* /*tracer*/) {}
};

// Typed channel. Cheap to copy; all copies share the same queue.
template <typename T>
class Chan {
 public:
  Chan() = default;
  explicit Chan(Runtime& rt)
      : rt_(&rt),
        core_(rt.MakeChan([](void* p) { delete static_cast<T*>(p); })) {}

  bool valid() const { return core_ != nullptr; }

  // Sends `v`, deliverable after `delay` of channel latency.
  void Send(T v, SimDuration delay = 0) {
    core_->Push(new T(std::move(v)), rt_->Now() + delay);
  }

  // Blocks until a message arrives; nullopt means the runtime is shutting
  // down and the receiving loop should unwind.
  std::optional<T> Recv() {
    bool timed_out = false;
    void* p = core_->Pop(/*deadline=*/-1, &timed_out);
    return Claim(p);
  }

  // As Recv, but gives up at `deadline` (absolute). nullopt + *timed_out
  // distinguishes timeout from shutdown.
  std::optional<T> RecvUntil(SimTime deadline, bool* timed_out) {
    void* p = core_->Pop(deadline, timed_out);
    return Claim(p);
  }

  std::optional<T> TryRecv() { return Claim(core_->TryPop()); }

 private:
  std::optional<T> Claim(void* p) {
    if (p == nullptr) return std::nullopt;
    std::unique_ptr<T> owned(static_cast<T*>(p));
    return std::optional<T>(std::move(*owned));
  }

  Runtime* rt_ = nullptr;
  std::shared_ptr<ChanCore> core_;
};

}  // namespace mermaid::sim
