// Runtime abstraction: processes, time, and channels.
//
// The entire Mermaid stack (network, DSM protocol, sync, applications) is
// written against this interface and blocks *only* by receiving on a Chan.
// Two bindings exist:
//   - sim::Engine   — deterministic discrete-event virtual time (primary;
//                     used by all benchmarks and most tests), and
//   - sim::RealTimeRuntime — plain OS threads and the wall clock, proving
//                     the protocol code is not simulation-bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <utility>

#include "mermaid/base/time.h"

namespace mermaid::trace {
class Tracer;
}  // namespace mermaid::trace

namespace mermaid::sim {

// Scheduler options for the virtual-time Engine binding (sim/engine.h);
// other Runtime bindings ignore them. Everything defaults off, so a
// default-constructed Engine is the legacy reference scheduler whose event
// order calibrates every table — each knob is proven bit-identical to it by
// the determinism regression suite (see DESIGN.md "Engine internals").
struct EngineOptions {
  // Per-group ready heaps merged by a (time, seq) heap, replacing the
  // O(processes) scheduler scan. Groups come from Runtime::SpawnOn (one per
  // simulated host); ungrouped processes are spread round-robin.
  bool subqueues = false;
  // Hierarchical timer wheel for deadline waits (RecvUntil): O(1) arm and
  // O(1) cancel-before-fire. Requires subqueues (implied when set).
  bool timer_wheel = false;
  // Slab allocation for process records and channel items.
  bool slab = false;
  // Fast handoff: processes run as user-level fibers driven by the Run()
  // thread instead of one OS thread each, so a scheduler switch is a
  // user-space context swap — OS handoffs per simulated event drop to ~0.
  bool fast_handoff = false;
  // Usable stack per fiber (only with fast_handoff). Each fiber maps this
  // plus a guard page; memory is committed on touch.
  std::size_t fiber_stack_bytes = 512 * 1024;

  static EngineOptions AllOn() {
    EngineOptions o;
    o.subqueues = o.timer_wheel = o.slab = o.fast_handoff = true;
    return o;
  }
  // MERMAID_ENGINE=opt|all|fast -> AllOn(); unset/legacy -> defaults.
  // Lets soak drivers (longchaos) opt in without a flag change.
  static EngineOptions FromEnv();
};

// Type-erased channel core. Items are heap-allocated by the typed wrapper;
// the core owns them until popped and destroys leftovers with the deleter.
class ChanCore {
 public:
  virtual ~ChanCore() = default;

  // Enqueues `item` (ownership transferred) to become visible to receivers
  // at absolute time `deliver_time` (already >= now for the pushing side).
  virtual void Push(void* item, SimTime deliver_time) = 0;

  // Blocks the calling process until an item is deliverable or the runtime
  // is shutting down. Returns nullptr on shutdown. If `deadline` >= 0 and
  // reached first, returns nullptr with *timed_out = true.
  virtual void* Pop(SimTime deadline, bool* timed_out) = 0;

  // Non-blocking: pops a deliverable item if one exists.
  virtual void* TryPop() = 0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Current time on this runtime's clock (ns).
  virtual SimTime Now() = 0;

  // Models `d` of computation by the calling process. In virtual time this
  // advances the clock without consuming wall time.
  virtual void Delay(SimDuration d) = 0;

  // Starts a new process. Daemon processes (server loops) do not keep the
  // simulation alive: when every non-daemon process has finished, all
  // channels drain as "shutdown" and daemons unwind.
  virtual void Spawn(std::string name, std::function<void()> fn,
                     bool daemon = false) = 0;

  // As Spawn, but tags the process with a scheduler affinity group (per-host
  // daemons and workers pass their host id). Purely a performance hint for
  // runtimes with per-group ready queues; the default forwards to Spawn and
  // scheduling semantics never depend on the group.
  virtual void SpawnOn(std::uint32_t group, std::string name,
                       std::function<void()> fn, bool daemon = false) {
    (void)group;
    Spawn(std::move(name), std::move(fn), daemon);
  }

  // Creates a channel core; `deleter` destroys unclaimed items. Channels
  // must not outlive the runtime that created them.
  virtual std::shared_ptr<ChanCore> MakeChan(
      std::function<void(void*)> deleter) = 0;

  // Allocation hooks for channel items (every Chan<T>::Send allocates one
  // record per message). The engine overrides these with a slab when its
  // slab knob is on; the defaults are plain operator new/delete.
  virtual void* AllocItem(std::size_t bytes) { return ::operator new(bytes); }
  virtual void FreeItem(void* p, std::size_t bytes) {
    (void)bytes;
    ::operator delete(p);
  }

  // Human-readable scheduler/allocator internals (switch counts, wheel and
  // slab stats). Folded into System::ReportStats; never part of
  // GatherStats, whose output must not depend on scheduler knobs.
  virtual std::string SchedulerReport() { return {}; }

  // Attaches a protocol tracer so the runtime can record scheduling events
  // (process spawns). Optional: the default binding ignores it. The tracer
  // must outlive every Spawn call made after attaching it.
  virtual void SetTracer(trace::Tracer* /*tracer*/) {}
};

// Typed channel. Cheap to copy; all copies share the same queue.
template <typename T>
class Chan {
 public:
  Chan() = default;
  explicit Chan(Runtime& rt)
      : rt_(&rt), core_(rt.MakeChan([&rt](void* p) {
          static_cast<T*>(p)->~T();
          rt.FreeItem(p, sizeof(T));
        })) {}

  bool valid() const { return core_ != nullptr; }

  // Sends `v`, deliverable after `delay` of channel latency.
  void Send(T v, SimDuration delay = 0) {
    void* slot = rt_->AllocItem(sizeof(T));
    core_->Push(new (slot) T(std::move(v)), rt_->Now() + delay);
  }

  // Blocks until a message arrives; nullopt means the runtime is shutting
  // down and the receiving loop should unwind.
  std::optional<T> Recv() {
    bool timed_out = false;
    void* p = core_->Pop(/*deadline=*/-1, &timed_out);
    return Claim(p);
  }

  // As Recv, but gives up at `deadline` (absolute). nullopt + *timed_out
  // distinguishes timeout from shutdown.
  std::optional<T> RecvUntil(SimTime deadline, bool* timed_out) {
    void* p = core_->Pop(deadline, timed_out);
    return Claim(p);
  }

  std::optional<T> TryRecv() { return Claim(core_->TryPop()); }

 private:
  std::optional<T> Claim(void* p) {
    if (p == nullptr) return std::nullopt;
    T* item = static_cast<T*>(p);
    std::optional<T> out(std::move(*item));
    item->~T();
    rt_->FreeItem(item, sizeof(T));
    return out;
  }

  Runtime* rt_ = nullptr;
  std::shared_ptr<ChanCore> core_;
};

}  // namespace mermaid::sim
