// Deterministic discrete-event virtual-time engine.
//
// Exactly one simulated process executes at a time: whenever the running
// process blocks (Delay or channel receive), the scheduler hands the baton
// to the waiting process with the smallest (wake_time, ready_seq) and
// advances the virtual clock to that time. Execution order is therefore a
// deterministic function of the program and its seeds, independent of OS
// scheduling — repeated runs produce identical event interleavings and
// identical virtual timings.
//
// Two interchangeable scheduler implementations live behind EngineOptions
// (see DESIGN.md "Engine internals"):
//   - legacy (all knobs off): one OS thread per process, a linear
//     O(processes) scan per switch. The reference implementation whose
//     event order defines correctness.
//   - scale-out (knobs on): per-group ready heaps + (time, seq) merge heap,
//     a hierarchical timer wheel for deadline waits, slab-allocated process
//     records and channel items, and fast-handoff execution where processes
//     are fibers driven by the Run() thread. Every combination reproduces
//     the legacy interleaving bit-for-bit; the knobs only change how fast
//     the same schedule is found.
//
// Lifecycle: Spawn processes (daemon = server loops), then Run(). Run
// returns when every non-daemon process has finished; at that point all
// blocked channel receives return "shutdown" (nullopt) so daemons unwind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "mermaid/base/slab.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/sim/timer_wheel.h"

namespace mermaid::sim {

class Engine final : public Runtime {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(EngineOptions opts);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Drives the simulation until all non-daemon processes finish and all
  // daemons have unwound. Returns the final virtual time. Must be called
  // exactly once, after at least one non-daemon Spawn.
  SimTime Run();

  // Runtime interface. Delay() must be called from a simulated process;
  // Now() and Spawn() may also be called from outside (before Run or, for
  // Now, after it).
  SimTime Now() override;
  void Delay(SimDuration d) override;
  void Spawn(std::string name, std::function<void()> fn,
             bool daemon = false) override;
  void SpawnOn(std::uint32_t group, std::string name,
               std::function<void()> fn, bool daemon = false) override;
  std::shared_ptr<ChanCore> MakeChan(
      std::function<void(void*)> deleter) override;
  void SetTracer(trace::Tracer* tracer) override { tracer_ = tracer; }
  void* AllocItem(std::size_t bytes) override;
  void FreeItem(void* p, std::size_t bytes) override;
  std::string SchedulerReport() override;

  const EngineOptions& options() const { return opts_; }

  // Number of scheduler handoffs so far; exposed for determinism tests.
  // Identical across all EngineOptions for the same program.
  std::uint64_t switch_count() const { return switch_count_; }
  // Of those, how many actually blocked an OS thread (legacy/thread mode)
  // and how many short-circuited because the blocking process was still the
  // global minimum. Implementation metrics, free to differ across knobs.
  std::uint64_t os_handoff_count() const { return handoff_count_; }
  std::uint64_t fast_resume_count() const { return fast_resume_count_; }

  // Channels whose user-side handles are still alive (the engine itself
  // holds only weak references; see the MakeChan retention regression).
  std::size_t live_chan_count();

 private:
  struct Proc;
  class SimChan;
  friend class SimChan;
  struct FiberState;

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  // Per-group ready heap entry; stale entries (seq no longer the process's
  // current seq) are dropped lazily on pop.
  struct QEntry {
    SimTime t;
    std::uint64_t seq;
    Proc* p;
  };
  struct QEntryGt {
    bool operator()(const QEntry& a, const QEntry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  using MinQ =
      std::priority_queue<QEntry, std::vector<QEntry>, QEntryGt>;
  struct MergeEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t group;
  };
  struct MergeGt {
    bool operator()(const MergeEntry& a, const MergeEntry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  using MergeQ =
      std::priority_queue<MergeEntry, std::vector<MergeEntry>, MergeGt>;

  void SpawnInternal(std::int64_t group, std::string name,
                     std::function<void()> fn, bool daemon);
  // Marks `p` schedulable at time `t` (only ever moves the wake earlier).
  void MakeReadyLocked(Proc* p, SimTime t);
  // Files `p` under its current (wake_time, seq) into its sub-queue or the
  // timer wheel (no-op in legacy mode, which re-scans instead).
  void EnqueueLocked(Proc* p);
  void CancelTimerLocked(Proc* p);
  void PruneSubLocked(MinQ& q);
  // Valid top of the sub-queue/merge structure without removing it.
  Proc* PeekSubLocked(SimTime* t, std::uint64_t* seq);
  bool PeekNextLocked(SimTime* t, std::uint64_t* seq);
  // Picks (and dequeues) the runnable process with the global minimum
  // (wake_time, seq); nullptr if none.
  Proc* PickNextLocked();
  void DispatchLocked(Proc* p);
  // Picks and resumes the next process; called with no process running.
  void ScheduleLocked();
  // Blocks the calling process until the scheduler resumes it.
  void SwitchOutLocked(std::unique_lock<std::mutex>& lk, Proc* self);
  void InitiateShutdownLocked();
  [[noreturn]] void DeadlockLocked();
  void PruneChansLocked();
  Proc* NewProcLocked();
  void DestroyProcs();
  // Fiber (fast_handoff) machinery: processes run as ucontext fibers driven
  // by the Run() thread.
  void CreateFiber(Proc* p);
  void RunFiberLoop(std::unique_lock<std::mutex>& lk);
  void SwitchToFiber(Proc* p);
  void SwitchToScheduler(Proc* p, bool final_exit);
  void FiberMain(Proc* p);
  static void FiberTrampoline(unsigned hi, unsigned lo);

  SimTime now_rel() const { return now_.load(std::memory_order_relaxed); }

  const EngineOptions opts_;
  std::mutex mu_;
  std::condition_variable run_cv_;
  std::vector<Proc*> procs_;
  std::vector<std::weak_ptr<SimChan>> chans_;
  std::size_t chan_prune_at_ = 64;
  std::uint64_t chans_created_ = 0;
  Proc* current_ = nullptr;
  // Written only at dispatch (under mu_); read lock-free by Now() — the
  // running process is ordered after its own dispatch, so it always sees
  // the current value.
  std::atomic<SimTime> now_{0};
  std::uint64_t ready_seq_ = 0;
  std::uint64_t push_seq_ = 0;
  std::uint64_t switch_count_ = 0;
  std::uint64_t handoff_count_ = 0;
  std::uint64_t fast_resume_count_ = 0;
  int live_nondaemon_ = 0;
  int live_total_ = 0;
  bool shutting_down_ = false;
  bool run_done_ = false;
  bool run_called_ = false;
  trace::Tracer* tracer_ = nullptr;

  // Scale-out structures (unused in legacy mode).
  std::vector<MinQ> subqueues_;
  MergeQ merge_;
  std::uint32_t rr_group_ = 0;
  TimerWheel wheel_;
  std::unique_ptr<FiberState> fibers_;
  std::unique_ptr<base::Slab> proc_slab_;
  std::mutex slab_mu_;  // item slab only: Send may run outside mu_
  std::unique_ptr<base::SlabPool> item_slab_;
};

}  // namespace mermaid::sim
