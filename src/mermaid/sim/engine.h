// Deterministic discrete-event virtual-time engine.
//
// Every simulated process runs on its own OS thread, but exactly one process
// executes at a time: whenever the running process blocks (Delay or channel
// receive), the scheduler hands the baton to the waiting process with the
// smallest (wake_time, ready_seq) and advances the virtual clock to that
// time. Execution order is therefore a deterministic function of the program
// and its seeds, independent of OS scheduling — repeated runs produce
// identical event interleavings and identical virtual timings.
//
// Lifecycle: Spawn processes (daemon = server loops), then Run(). Run
// returns when every non-daemon process has finished; at that point all
// blocked channel receives return "shutdown" (nullopt) so daemons unwind.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mermaid/sim/runtime.h"

namespace mermaid::sim {

class Engine final : public Runtime {
 public:
  Engine();
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Drives the simulation until all non-daemon processes finish and all
  // daemons have unwound. Returns the final virtual time. Must be called
  // exactly once, after at least one non-daemon Spawn.
  SimTime Run();

  // Runtime interface. Delay() must be called from a simulated process;
  // Now() and Spawn() may also be called from outside (before Run or, for
  // Now, after it).
  SimTime Now() override;
  void Delay(SimDuration d) override;
  void Spawn(std::string name, std::function<void()> fn,
             bool daemon = false) override;
  std::shared_ptr<ChanCore> MakeChan(
      std::function<void(void*)> deleter) override;
  void SetTracer(trace::Tracer* tracer) override { tracer_ = tracer; }

  // Number of scheduler handoffs so far; exposed for determinism tests.
  std::uint64_t switch_count() const { return switch_count_; }

 private:
  struct Proc;
  class SimChan;
  friend class SimChan;

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  // Marks `p` schedulable at time `t` (only ever moves the wake earlier).
  void MakeReadyLocked(Proc* p, SimTime t);
  // Picks and resumes the next process; called with no process running.
  void ScheduleLocked();
  // Blocks the calling process until the scheduler resumes it.
  void SwitchOutLocked(std::unique_lock<std::mutex>& lk, Proc* self);
  void InitiateShutdownLocked();
  [[noreturn]] void DeadlockLocked();

  std::mutex mu_;
  std::condition_variable run_cv_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<std::shared_ptr<SimChan>> chans_;
  Proc* current_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t ready_seq_ = 0;
  std::uint64_t push_seq_ = 0;
  std::uint64_t switch_count_ = 0;
  int live_nondaemon_ = 0;
  int live_total_ = 0;
  bool shutting_down_ = false;
  bool run_done_ = false;
  bool run_called_ = false;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace mermaid::sim
