// Request-response protocol with forwarding and multicast (§2.2).
//
// The paper rejected Sun/Firefly RPC (incompatible, no broadcast or
// forwarding, needless marshaling) and built a simple request-response
// protocol on datagrams. This is that protocol:
//
//   - Call       — blocking request; retransmits on timeout, exactly-once
//                  handler invocation via per-hop duplicate suppression.
//   - Forward    — a handler passes the request on (manager -> owner); the
//                  eventual reply goes *directly* to the original requester,
//                  giving Table 4's R -> M -> O -> R message pattern.
//   - MultiCall  — the multicast used for write invalidation: request to N
//                  hosts, block until every reply arrives.
//   - Notify     — one-way message (e.g. transfer confirmations).
//
// Handlers run inline in the endpoint's receive daemon and MUST NOT block
// (no Call/MultiCall); they may Delay to model processing cost, reply,
// forward, or stash the RequestContext to reply later (the DSM manager
// queues contexts per page). Clients call from ordinary processes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "mermaid/base/buffer.h"
#include "mermaid/base/rng.h"
#include "mermaid/base/stats.h"
#include "mermaid/net/fragment.h"
#include "mermaid/net/network.h"
#include "mermaid/sim/runtime.h"

namespace mermaid::net {

class Endpoint;

// An outgoing request/reply body: a small serialized protocol head plus an
// optional bulk data chain that is carried by reference all the way to the
// wire (never copied by the endpoint). Implicitly constructible from a
// plain byte vector so control-message call sites stay unchanged.
struct Body {
  std::vector<std::uint8_t> head;
  base::BufferChain data;

  Body() = default;
  Body(std::vector<std::uint8_t> h)  // NOLINT: implicit by design
      : head(std::move(h)) {}
  Body(std::span<const std::uint8_t> h)  // NOLINT: implicit by design
      : head(h.begin(), h.end()) {}
  Body(std::initializer_list<std::uint8_t> h) : head(h) {}
  Body(std::vector<std::uint8_t> h, base::BufferChain d)
      : head(std::move(h)), data(std::move(d)) {}

  std::size_t size() const { return head.size() + data.size(); }
};

// A received request, routable to its origin. Value type: handlers may keep
// it (e.g. in a per-page queue) and reply long after returning.
class RequestContext {
 public:
  HostId origin() const { return origin_; }
  std::uint8_t op() const { return op_; }
  std::span<const std::uint8_t> body() const { return body_.span(); }

  // The origin's incarnation number at the time it issued the request
  // (0 unless the endpoint carries incarnations).
  std::uint32_t origin_inc() const { return origin_inc_; }

  // Sends the reply to the original requester.
  void Reply(Body body, MsgKind kind = MsgKind::kControl) const;
  // Passes the request (with a new body) to another host; the reply duty
  // moves with it. May be called with next == the local host's id only via
  // the network loop, so DSM short-circuits local forwards itself.
  void Forward(HostId next, Body body) const;

 private:
  friend class Endpoint;
  Endpoint* ep_ = nullptr;
  HostId origin_ = 0;
  std::uint64_t req_id_ = 0;
  std::uint8_t op_ = 0;
  std::uint32_t origin_inc_ = 0;
  base::Buffer body_;
};

// Per-call overrides of an endpoint's timeout/retry configuration. A zero
// field means "use the endpoint default". Synchronization calls (a P on a
// taken semaphore blocks until the matching V) use a very long timeout; DSM
// transfers queued behind a thrashing page need one well beyond a single
// transfer time.
struct CallOpts {
  SimDuration timeout = 0;
  int max_attempts = 0;
};

// Why a Call/MultiCall came back without a full reply set. Callers must
// treat the two failure modes differently: kTimedOut means the peer is
// unreachable (retry with backoff, recover, or fail loudly); kShutdown means
// the engine is tearing down (unwind silently, never escalate).
enum class CallStatus : std::uint8_t { kOk = 0, kTimedOut = 1, kShutdown = 2 };

struct CallResult {
  CallStatus status = CallStatus::kShutdown;
  base::BufferChain body;  // valid iff status == kOk

  bool ok() const { return status == CallStatus::kOk; }
};

struct MultiCallResult {
  CallStatus status = CallStatus::kShutdown;
  // One entry per destination, in destination order. On kTimedOut the
  // entries whose indices appear in `timed_out` never replied (their bodies
  // are empty); the rest hold real replies, so a multicast caller can
  // retry just the missing targets.
  std::vector<base::BufferChain> replies;
  std::vector<std::size_t> timed_out;

  bool ok() const { return status == CallStatus::kOk; }
};

class Endpoint {
 public:
  using CallOpts = net::CallOpts;

  struct Config {
    SimDuration call_timeout = Milliseconds(400);
    int max_attempts = 6;       // first send + retransmissions
    std::size_t dedup_window = 512;  // remembered (origin, req_id) entries
    // Retransmission backoff: attempt k waits min(timeout * factor^(k-1),
    // backoff_cap), stretched by a seeded jitter of up to +/- backoff_jitter
    // so synchronized losers don't retransmit in lockstep. factor = 1
    // restores the legacy fixed re-arm.
    double backoff_factor = 2.0;
    SimDuration backoff_cap = Seconds(4);
    double backoff_jitter = 0.2;
    std::uint64_t backoff_seed = 0x6d657277616964ULL;  // per-host salt added
    // Crash-stop fencing: when true, every request carries the origin's
    // incarnation number (+4 wire bytes) and every reply the sender's
    // (+4 bytes); traffic stamped with an incarnation older than the
    // receiver's latest knowledge of that peer is dropped and counted
    // (reqrep.fenced_stale_inc). Default off so the knobs-off wire format
    // and modeled byte counts are unchanged.
    bool carry_incarnation = false;
  };

  // Attaches `self` to the network with the given architecture profile.
  Endpoint(sim::Runtime& rt, Network& net, HostId self,
           const arch::ArchProfile* profile, Config cfg);
  Endpoint(sim::Runtime& rt, Network& net, HostId self,
           const arch::ArchProfile* profile)
      : Endpoint(rt, net, self, profile, Config{}) {}

  // Registers the handler for requests and notifies with opcode `op`.
  void SetHandler(std::uint8_t op,
                  std::function<void(RequestContext)> handler);

  // Spawns the receive daemon. Call after handlers are registered.
  void Start();

  // Blocking request with a typed outcome; retransmits with exponential
  // backoff until a reply arrives or max_attempts is exhausted.
  CallResult CallWithStatus(HostId dst, std::uint8_t op, Body body,
                            MsgKind kind = MsgKind::kControl,
                            const CallOpts& opts = {});

  // Blocking multicast with a typed outcome: one request per destination,
  // waits for all replies; on timeout, reports which destinations failed and
  // keeps the partial replies.
  MultiCallResult MultiCallWithStatus(const std::vector<HostId>& dsts,
                                      std::uint8_t op, Body body,
                                      MsgKind kind = MsgKind::kControl,
                                      const CallOpts& opts = {});

  // Legacy conveniences: nullopt on any failure (timeout or shutdown
  // indistinguishably). Prefer the WithStatus variants on protocol paths
  // that must react to faults.
  std::optional<std::vector<std::uint8_t>> Call(
      HostId dst, std::uint8_t op, Body body,
      MsgKind kind = MsgKind::kControl, const CallOpts& opts = {});
  std::optional<std::vector<std::vector<std::uint8_t>>> MultiCall(
      const std::vector<HostId>& dsts, std::uint8_t op, Body body,
      MsgKind kind = MsgKind::kControl, const CallOpts& opts = {});

  // One-way message; at-most-once, no retransmission.
  void Notify(HostId dst, std::uint8_t op, Body body,
              MsgKind kind = MsgKind::kControl);

  // Crash-with-amnesia: bumps this endpoint's incarnation number, abandons
  // every outstanding Call (their zombie processes time out and observe
  // kTimedOut; counted as reqrep.fenced_zombie_calls), and drops the dedup
  // table and all partial reassemblies — none of the previous life's
  // protocol state survives. The next_req_id_ counter is deliberately NOT
  // reset so new calls can never collide with stale replies to old ids.
  void CrashReset();

  // This endpoint's current incarnation number (0 until the first crash).
  std::uint32_t incarnation() const;
  // Latest incarnation observed from `peer` (via its requests and replies);
  // 0 until any incarnation-stamped traffic from the peer arrives.
  std::uint32_t PeerIncarnation(HostId peer) const;

  HostId self() const { return self_; }
  sim::Runtime& runtime() { return rt_; }
  base::StatsRegistry& stats() { return stats_; }

  // The reassembler keeps its own registry (frag.* / net.* counters);
  // exposed so System::GatherStats can fold it into the per-run totals.
  base::StatsRegistry& frag_stats() { return reassembler_.stats(); }
  // Live partial-reassembly count, for leak regression tests.
  std::size_t reassembly_partials() const {
    return reassembler_.partial_count();
  }

  void SetTracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    fragmenter_.SetTracer(tracer);
    reassembler_.SetTracer(tracer, self_);
  }

  // Installs a message-class namer (opcode -> short name). When set, every
  // transmitted request/notify/reply is counted per class as
  // reqrep.tx_msgs.<name> / reqrep.tx_bytes.<name>, so protocols can prove
  // hop and wire-byte reductions per message kind. Call before Start.
  void SetOpNamer(const char* (*namer)(std::uint8_t)) { op_namer_ = namer; }

  // Observer for peer reincarnations: invoked (from the rx daemon, outside
  // the endpoint's locks) whenever incoming traffic reveals a peer
  // incarnation newer than previously known — i.e. the peer crash-restarted
  // with amnesia. Protocol layers use it to drop advisory state about the
  // peer's previous life (e.g. probable-owner hints). Call before Start;
  // the callback must not block.
  void SetPeerIncObserver(
      std::function<void(HostId, std::uint32_t)> observer) {
    peer_inc_observer_ = std::move(observer);
  }

 private:
  friend class RequestContext;

  enum class WireType : std::uint8_t { kRequest = 1, kReply = 2, kNotify = 3 };

  struct ReplyMsg {
    std::uint64_t req_id;
    base::BufferChain body;
  };

  // Duplicate-suppression record for one (origin, req_id).
  struct DedupEntry {
    enum class State { kPending, kReplied, kForwarded } state =
        State::kPending;
    // kReplied: cached reply for replay. kForwarded: body + next hop.
    // Bulk data in a saved body is a shared view, not a copy.
    Body saved_body;
    MsgKind saved_kind = MsgKind::kControl;
    HostId forwarded_to = 0;
  };

  void RxLoop();
  void DispatchRequest(Message msg);
  void SendRequestWire(WireType type, HostId dst, std::uint8_t op,
                       HostId origin, std::uint64_t req_id,
                       std::uint32_t origin_inc, const Body& body,
                       MsgKind kind);
  void SendReplyWire(HostId dst, std::uint8_t op, std::uint64_t req_id,
                     const Body& body, MsgKind kind);
  // Framing sizes depend on whether incarnations are carried.
  std::size_t RequestFramingBytes() const;
  std::size_t ReplyFramingBytes() const;
  // Records `inc` as peer's latest incarnation; returns true when `inc` is
  // older than what we already know (the message must be fenced). A newer
  // incarnation purges the peer's dedup entries (its new life restarts
  // req-id-independent state) and sets *reincarnated so the caller can
  // invoke peer_inc_observer_ after releasing maps_mu_. Caller must hold
  // maps_mu_.
  bool FencePeerIncLocked(HostId peer, std::uint32_t inc,
                          bool* reincarnated = nullptr);
  // Per-message-class transmit accounting (no-op name fallback "op<N>"
  // when no namer is installed). `wire_bytes` is the full payload size
  // including the request/reply framing.
  void CountTxClass(std::uint8_t op, std::size_t wire_bytes);
  DedupEntry* DedupFind(HostId origin, std::uint64_t req_id);
  DedupEntry& DedupInsert(HostId origin, std::uint64_t req_id);

  sim::Runtime& rt_;
  Network& net_;
  HostId self_;
  Config cfg_;
  Fragmenter fragmenter_;
  Reassembler reassembler_;
  sim::Chan<Packet> rx_;
  std::map<std::uint8_t, std::function<void(RequestContext)>> handlers_;
  // Guards the maps below for the real-time runtime, where client processes
  // and the rx daemon genuinely run concurrently. Never held across a
  // blocking operation (Delay/Recv) — under the virtual-time engine an OS
  // mutex held across a process switch would wedge the scheduler.
  mutable std::mutex maps_mu_;
  std::uint64_t next_req_id_ = 1;
  // Crash-stop fencing state (only used when cfg_.carry_incarnation).
  std::uint32_t incarnation_ = 0;
  std::map<HostId, std::uint32_t> peer_inc_;
  base::Rng backoff_rng_;  // jitter source; guarded by maps_mu_
  // Outstanding Calls/MultiCalls: req_id -> the caller's reply channel.
  std::map<std::uint64_t, sim::Chan<ReplyMsg>> pending_;
  // Dedup table with FIFO eviction (rx daemon only, but kept under the same
  // lock for simplicity).
  std::map<std::pair<HostId, std::uint64_t>, DedupEntry> dedup_;
  std::deque<std::pair<HostId, std::uint64_t>> dedup_order_;
  base::StatsRegistry stats_;
  trace::Tracer* tracer_ = nullptr;
  const char* (*op_namer_)(std::uint8_t) = nullptr;
  std::function<void(HostId, std::uint32_t)> peer_inc_observer_;
  bool started_ = false;
};

}  // namespace mermaid::net
