// Simulated datagram network.
//
// Models the 10 Mb/s Ethernet of the paper's testbed: unreliable,
// unordered, MTU-limited datagrams between hosts. Latency follows the
// link-cost model calibrated from Table 2 (fixed per-message + wire time per
// byte, with the per-packet fragmentation cost paid by the *sender's* CPU in
// the fragment layer). Optional seeded packet loss and latency jitter
// support failure-injection tests and the paper's thrashing variance.
//
// Beyond i.i.d. loss, a scriptable FaultPlan injects the correlated failures
// a real deployment sees: timed network partitions (drop between host
// groups, then heal), targeted per-(src, dst, kind) drop rules, message
// duplication, latency-spike reordering, and host outages (pause or
// crash+restart windows during which a host can neither send nor receive).
// Every probabilistic decision draws from the network's seeded RNG, so a
// chaos run under the virtual-time engine is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/base/buffer.h"
#include "mermaid/base/rng.h"
#include "mermaid/base/stats.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/trace/trace.h"

namespace mermaid::net {

using HostId = std::uint16_t;

// Distinguishes small protocol messages from bulk page transfers; the two
// have different fixed costs in the calibrated model (see LinkCost).
enum class MsgKind : std::uint8_t { kControl, kData };

struct Packet {
  HostId src = 0;
  HostId dst = 0;
  MsgKind kind = MsgKind::kControl;
  // Wire bytes = `bytes` followed by `payload`. Headers and small messages
  // live in `bytes`; a bulk payload tail rides along as a shared zero-copy
  // view (duplicating or re-queueing a Packet never copies the page data).
  std::vector<std::uint8_t> bytes;
  base::Buffer payload;

  std::size_t wire_size() const { return bytes.size() + payload.size(); }
};

// Open-ended time bound for fault windows.
inline constexpr SimTime kFaultForever = std::numeric_limits<SimTime>::max();

// Chaos script applied on top of the base loss/jitter model. All windows are
// [from, until) in simulation time; kFaultForever means "never heals".
struct FaultPlan {
  // Traffic between `group` and every host NOT in `group` is dropped during
  // the window (a clean two-sided partition; intra-group traffic is fine).
  struct Partition {
    std::vector<HostId> group;
    SimTime from = 0;
    SimTime until = kFaultForever;
  };

  // Targeted drop: a packet matching every specified field (nullopt = any)
  // inside the window is dropped with `probability`.
  struct DropRule {
    std::optional<HostId> src;
    std::optional<HostId> dst;
    std::optional<MsgKind> kind;
    SimTime from = 0;
    SimTime until = kFaultForever;
    double probability = 1.0;
  };

  // Host outage (pause or crash window): while down, the host neither sends
  // nor receives, and packets that would arrive during the window are lost.
  // The optional hooks fire from a chaos daemon exactly at the window edges
  // — use them to model crash/restart side effects or to assert mid-outage
  // state in tests.
  struct Outage {
    HostId host = 0;
    SimTime from = 0;
    SimTime until = kFaultForever;
    std::function<void()> on_down;     // fired at `from`
    std::function<void()> on_restart;  // fired at `until`
  };

  std::vector<Partition> partitions;
  std::vector<DropRule> drops;
  std::vector<Outage> outages;

  // Per delivered packet: probability of injecting a duplicate copy and of
  // delaying the packet by up to `reorder_delay_max` (which lets later
  // packets overtake it).
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  SimDuration reorder_delay_max = Milliseconds(5);
};

class Network {
 public:
  struct Config {
    std::uint64_t seed = 1;
    double loss_probability = 0.0;  // per-packet, applied after jitter
    double jitter = 0.0;            // latency *= 1 + U(-jitter, +jitter)
    std::uint32_t mtu = 1500;       // wire bytes per packet
  };

  Network(sim::Runtime& rt, Config cfg);

  // Registers a host and returns its receive channel. The architecture
  // profile drives per-link cost lookup.
  sim::Chan<Packet> Attach(HostId id, const arch::ArchProfile* profile);

  // Sends one packet. `extra_delay` lets the fragment layer account for
  // wire serialization of earlier fragments of the same message.
  void Send(Packet pkt, SimDuration extra_delay = 0);

  // Installs (replaces) the chaos script. May be called before or during a
  // run; a daemon is spawned to fire outage hooks if any are present.
  void SetFaultPlan(FaultPlan plan);

  // Imperative host control for tests that steer chaos by hand: a paused or
  // crashed host can neither send nor receive until resumed/restarted.
  void PauseHost(HostId id);
  void ResumeHost(HostId id);
  void CrashHost(HostId id);    // like pause; in-flight packets also die
  void RestartHost(HostId id);

  // Registers a hook fired (outside the network lock) every time `id` is
  // crashed — imperatively via CrashHost or by a FaultPlan outage that uses
  // CrashHost in its on_down. The endpoint layer uses it to purge the
  // crashed host's partial reassembly buffers at crash time instead of
  // leaving them to age out via the TTL sweeper.
  void SetCrashHook(HostId id, std::function<void()> hook);

  // True if `id` cannot exchange packets at time `t` (outage or imperative
  // pause/crash). Exposed so protocol tests can line assertions up with the
  // scripted windows.
  bool HostDown(HostId id, SimTime t) const;

  std::uint32_t mtu() const { return cfg_.mtu; }
  const arch::ArchProfile& ProfileOf(HostId id) const;

  base::StatsRegistry& stats() { return stats_; }

  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct HostEntry {
    const arch::ArchProfile* profile = nullptr;
    sim::Chan<Packet> rx;
  };

  // Drop verdict for one packet under the current plan; called with mu_
  // held (draws from rng_). `send_time`/`deliver_time` bound the windows the
  // packet must survive.
  bool FaultDropLocked(const Packet& pkt, SimTime send_time,
                       SimTime deliver_time);
  bool HostDownLocked(HostId id, SimTime t) const;

  sim::Runtime& rt_;
  Config cfg_;
  // Guards rng_, stats_, plan_ and the imperative down-sets on the real-time
  // runtime (concurrent senders); uncontended under the virtual-time engine.
  // Never held across blocking.
  mutable std::mutex mu_;
  base::Rng rng_;
  std::map<HostId, HostEntry> hosts_;
  FaultPlan plan_;
  std::set<HostId> paused_;   // imperative PauseHost
  std::set<HostId> crashed_;  // imperative CrashHost
  std::map<HostId, std::function<void()>> crash_hooks_;
  base::StatsRegistry stats_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace mermaid::net
