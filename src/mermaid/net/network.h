// Simulated datagram network.
//
// Models the 10 Mb/s Ethernet of the paper's testbed: unreliable,
// unordered, MTU-limited datagrams between hosts. Latency follows the
// link-cost model calibrated from Table 2 (fixed per-message + wire time per
// byte, with the per-packet fragmentation cost paid by the *sender's* CPU in
// the fragment layer). Optional seeded packet loss and latency jitter
// support failure-injection tests and the paper's thrashing variance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/base/stats.h"
#include "mermaid/sim/runtime.h"

namespace mermaid::net {

using HostId = std::uint16_t;

// Distinguishes small protocol messages from bulk page transfers; the two
// have different fixed costs in the calibrated model (see LinkCost).
enum class MsgKind : std::uint8_t { kControl, kData };

struct Packet {
  HostId src = 0;
  HostId dst = 0;
  MsgKind kind = MsgKind::kControl;
  std::vector<std::uint8_t> bytes;  // wire bytes (fragment header + payload)
};

class Network {
 public:
  struct Config {
    std::uint64_t seed = 1;
    double loss_probability = 0.0;  // per-packet, applied after jitter
    double jitter = 0.0;            // latency *= 1 + U(-jitter, +jitter)
    std::uint32_t mtu = 1500;       // wire bytes per packet
  };

  Network(sim::Runtime& rt, Config cfg);

  // Registers a host and returns its receive channel. The architecture
  // profile drives per-link cost lookup.
  sim::Chan<Packet> Attach(HostId id, const arch::ArchProfile* profile);

  // Sends one packet. `extra_delay` lets the fragment layer account for
  // wire serialization of earlier fragments of the same message.
  void Send(Packet pkt, SimDuration extra_delay = 0);

  std::uint32_t mtu() const { return cfg_.mtu; }
  const arch::ArchProfile& ProfileOf(HostId id) const;

  base::StatsRegistry& stats() { return stats_; }

 private:
  struct HostEntry {
    const arch::ArchProfile* profile = nullptr;
    sim::Chan<Packet> rx;
  };

  sim::Runtime& rt_;
  Config cfg_;
  // Guards rng_ and stats_ on the real-time runtime (concurrent senders);
  // uncontended under the virtual-time engine. Never held across blocking.
  std::mutex mu_;
  base::Rng rng_;
  std::map<HostId, HostEntry> hosts_;
  base::StatsRegistry stats_;
};

}  // namespace mermaid::net
