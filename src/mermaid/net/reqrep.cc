#include "mermaid/net/reqrep.h"

#include <algorithm>

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"

namespace mermaid::net {

// Request/notify wire layout within a Message payload:
//   u8 type | u64 req_id | u16 origin | u8 op | [u32 origin_inc] | body...
// Reply layout:
//   u8 type | u64 req_id | [u32 sender_inc] | body...
// The bracketed incarnation stamps exist only when
// Config::carry_incarnation is set (crash-stop recovery); the default wire
// format is byte-identical to the pre-recovery protocol.

void RequestContext::Reply(Body body, MsgKind kind) const {
  MERMAID_CHECK(ep_ != nullptr);
  {
    std::lock_guard<std::mutex> lk(ep_->maps_mu_);
    if (auto* entry = ep_->DedupFind(origin_, req_id_)) {
      entry->state = Endpoint::DedupEntry::State::kReplied;
      entry->saved_body = body;  // bulk data saved as a shared view
      entry->saved_kind = kind;
    }
    ep_->stats_.Inc("reqrep.replies_sent");
  }
  ep_->SendReplyWire(origin_, op_, req_id_, body, kind);
}

void RequestContext::Forward(HostId next, Body body) const {
  MERMAID_CHECK(ep_ != nullptr);
  {
    std::lock_guard<std::mutex> lk(ep_->maps_mu_);
    if (auto* entry = ep_->DedupFind(origin_, req_id_)) {
      entry->state = Endpoint::DedupEntry::State::kForwarded;
      entry->saved_body = body;
      entry->forwarded_to = next;
    }
    ep_->stats_.Inc("reqrep.forwards");
  }
  // Forwards keep the *origin's* incarnation stamp: the downstream handler
  // and dedup table must fence on the requester's life, not the forwarder's.
  ep_->SendRequestWire(Endpoint::WireType::kRequest, next, op_, origin_,
                       req_id_, origin_inc_, body, MsgKind::kControl);
}

Endpoint::Endpoint(sim::Runtime& rt, Network& net, HostId self,
                   const arch::ArchProfile* profile, Config cfg)
    : rt_(rt),
      net_(net),
      self_(self),
      cfg_(cfg),
      fragmenter_(rt, net, self),
      reassembler_(rt),
      rx_(net.Attach(self, profile)),
      backoff_rng_(cfg.backoff_seed + 0x9e3779b97f4a7c15ULL * (self + 1)) {}

void Endpoint::SetHandler(std::uint8_t op,
                          std::function<void(RequestContext)> handler) {
  MERMAID_CHECK(!started_);
  handlers_[op] = std::move(handler);
}

void Endpoint::Start() {
  MERMAID_CHECK(!started_);
  started_ = true;
  // Crash hygiene: when the network crashes this host, its half-reassembled
  // messages die with it immediately instead of lingering until the TTL
  // sweeper ages them out.
  net_.SetCrashHook(self_, [this] { reassembler_.PurgeAll(); });
  rt_.SpawnOn(self_, "reqrep-rx-" + std::to_string(self_),
              [this] { RxLoop(); },
              /*daemon=*/true);
  // Stale-reassembly sweeper. OnPacket purges expired partials only when a
  // packet arrives; a host that stops receiving (partitioned, or the sender
  // gave up after its tail fragments were dropped) would otherwise hold its
  // partially reassembled messages — and their page-sized buffers — forever.
  rt_.SpawnOn(
      self_, "frag-sweep-" + std::to_string(self_),
      [this] {
        sim::Chan<int> never(rt_);
        const SimDuration period =
            std::max<SimDuration>(1, reassembler_.stale_after() / 2);
        for (;;) {
          bool timed_out = false;
          never.RecvUntil(rt_.Now() + period, &timed_out);
          if (!timed_out) return;  // shutdown
          reassembler_.SweepStale();
        }
      },
      /*daemon=*/true);
}

namespace {

// Request framing: u8 type | u64 req_id | u16 origin | u8 op.
constexpr std::size_t kRequestFramingBytes = 12;
// Reply framing: u8 type | u64 req_id.
constexpr std::size_t kReplyFramingBytes = 9;
// Incarnation stamp appended to both layouts when carried.
constexpr std::size_t kIncarnationBytes = 4;

// Contiguous view of a message's protocol framing (at least `framing_bytes`
// of it). The sender serializes framing and protocol head into one chunk,
// so this is the first chunk in practice; flatten only in degenerate
// tiny-chunk cases.
base::Buffer FramingView(const base::BufferChain& payload,
                         std::size_t framing_bytes) {
  if (payload.chunk_count() == 0) return base::Buffer();
  base::Buffer head = payload.chunk(0);
  if (head.size() < framing_bytes && head.size() < payload.size()) {
    return payload.Flatten();
  }
  return head;
}

}  // namespace

std::size_t Endpoint::RequestFramingBytes() const {
  return kRequestFramingBytes +
         (cfg_.carry_incarnation ? kIncarnationBytes : 0);
}

std::size_t Endpoint::ReplyFramingBytes() const {
  return kReplyFramingBytes +
         (cfg_.carry_incarnation ? kIncarnationBytes : 0);
}

std::uint32_t Endpoint::incarnation() const {
  std::lock_guard<std::mutex> lk(maps_mu_);
  return incarnation_;
}

std::uint32_t Endpoint::PeerIncarnation(HostId peer) const {
  std::lock_guard<std::mutex> lk(maps_mu_);
  auto it = peer_inc_.find(peer);
  return it == peer_inc_.end() ? 0 : it->second;
}

bool Endpoint::FencePeerIncLocked(HostId peer, std::uint32_t inc,
                                  bool* reincarnated) {
  std::uint32_t& known = peer_inc_[peer];
  if (inc < known) {
    stats_.Inc("reqrep.fenced_stale_inc");
    return true;
  }
  if (inc > known) {
    known = inc;
    if (reincarnated != nullptr) *reincarnated = true;
    // The peer's previous life's dedup entries describe requests that its
    // new life has no memory of issuing; replaying their cached replies to
    // the reincarnated peer would resurrect pre-crash protocol state.
    std::size_t purged = 0;
    for (auto it = dedup_.begin(); it != dedup_.end();) {
      if (it->first.first == peer) {
        it = dedup_.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    if (purged > 0) {
      for (auto it = dedup_order_.begin(); it != dedup_order_.end();) {
        if (it->first == peer) {
          it = dedup_order_.erase(it);
        } else {
          ++it;
        }
      }
      stats_.Inc("reqrep.dedup_purged_reincarnation",
                 static_cast<std::int64_t>(purged));
    }
  }
  return false;
}

void Endpoint::CrashReset() {
  std::size_t zombies = 0;
  {
    std::lock_guard<std::mutex> lk(maps_mu_);
    ++incarnation_;
    zombies = pending_.size();
    // Abandon outstanding Calls: their processes survive (sim threads
    // cannot be killed) but their reply channels are forgotten, so any
    // late reply is counted as an orphan and the zombie call times out.
    pending_.clear();
    dedup_.clear();
    dedup_order_.clear();
  }
  if (zombies > 0) {
    stats_.Inc("reqrep.fenced_zombie_calls",
               static_cast<std::int64_t>(zombies));
  }
  reassembler_.PurgeAll();
}

void Endpoint::RxLoop() {
  while (auto pkt = rx_.Recv()) {
    auto msg = reassembler_.OnPacket(std::move(*pkt));
    if (!msg.has_value()) continue;
    base::Buffer head = FramingView(msg->payload, RequestFramingBytes());
    base::WireReader r(head.span());
    const auto type = static_cast<WireType>(r.U8());
    switch (type) {
      case WireType::kRequest:
      case WireType::kNotify:
        DispatchRequest(std::move(*msg));
        break;
      case WireType::kReply: {
        const std::uint64_t req_id = r.U64();
        if (!r.ok()) {
          stats_.Inc("reqrep.malformed");
          break;
        }
        sim::Chan<ReplyMsg> target;
        bool have_target = false;
        bool bumped = false;
        std::uint32_t sender_inc = 0;
        {
          std::lock_guard<std::mutex> lk(maps_mu_);
          bool dropped = false;
          if (cfg_.carry_incarnation) {
            // A reply stamped with a pre-crash incarnation of the sender
            // describes state from its previous life — fence it before it
            // can resolve a live call.
            base::WireReader rr(head.span());
            rr.U8();
            rr.U64();
            sender_inc = rr.U32();
            if (!rr.ok()) {
              stats_.Inc("reqrep.malformed");
              dropped = true;
            } else if (FencePeerIncLocked(msg->src, sender_inc, &bumped)) {
              dropped = true;
            }
          }
          if (!dropped) {
            auto it = pending_.find(req_id);
            if (it == pending_.end()) {
              stats_.Inc("reqrep.orphan_replies");  // caller gave up already
            } else {
              target = it->second;
              have_target = true;
            }
          }
        }
        if (bumped && peer_inc_observer_) {
          peer_inc_observer_(msg->src, sender_inc);
        }
        if (!have_target) break;
        ReplyMsg reply;
        reply.req_id = req_id;
        reply.body = msg->payload.Slice(ReplyFramingBytes());
        target.Send(std::move(reply));
        break;
      }
      default:
        stats_.Inc("reqrep.malformed");
        break;
    }
  }
}

void Endpoint::DispatchRequest(Message msg) {
  base::Buffer framing = FramingView(msg.payload, RequestFramingBytes());
  base::WireReader r(framing.span());
  const auto type = static_cast<WireType>(r.U8());
  const std::uint64_t req_id = r.U64();
  const HostId origin = r.U16();
  const std::uint8_t op = r.U8();
  std::uint32_t origin_inc = 0;
  if (cfg_.carry_incarnation) origin_inc = r.U32();
  if (!r.ok()) {
    stats_.Inc("reqrep.malformed");
    return;
  }
  if (cfg_.carry_incarnation) {
    bool fenced = false;
    bool bumped = false;
    {
      std::lock_guard<std::mutex> lk(maps_mu_);
      // Requests from a previous life of the origin (zombie retransmissions,
      // packets delayed across its crash) must not reach handlers: the new
      // life has no record of them and their effects would be stale.
      fenced = FencePeerIncLocked(origin, origin_inc, &bumped);
    }
    if (bumped && peer_inc_observer_) peer_inc_observer_(origin, origin_inc);
    if (fenced) return;
  }

  if (type == WireType::kRequest) {
    // Duplicate suppression. If this (origin, req_id) was seen, replay the
    // recorded action instead of re-invoking the handler: requests are
    // applied exactly once per hop even under loss and retransmission.
    DedupEntry replay;
    bool is_dup = false;
    {
      std::lock_guard<std::mutex> lk(maps_mu_);
      if (auto* entry = DedupFind(origin, req_id)) {
        is_dup = true;
        replay = *entry;
        stats_.Inc("reqrep.duplicates");
      } else {
        DedupInsert(origin, req_id);
      }
    }
    if (is_dup) {
      switch (replay.state) {
        case DedupEntry::State::kPending:
          break;  // still being handled; the reply will come
        case DedupEntry::State::kReplied:
          SendReplyWire(origin, op, req_id, replay.saved_body,
                        replay.saved_kind);
          break;
        case DedupEntry::State::kForwarded:
          // Re-forward; the downstream dedup table replays its reply.
          SendRequestWire(WireType::kRequest, replay.forwarded_to, op, origin,
                          req_id, origin_inc, replay.saved_body,
                          MsgKind::kControl);
          break;
      }
      return;
    }
  }

  auto it = handlers_.find(op);
  if (it == handlers_.end()) {
    stats_.Inc("reqrep.unhandled_ops");
    return;
  }
  RequestContext ctx;
  ctx.ep_ = this;
  ctx.origin_ = origin;
  ctx.req_id_ = req_id;
  ctx.op_ = op;
  ctx.origin_inc_ = origin_inc;
  ctx.body_ = msg.payload.Slice(RequestFramingBytes()).Flatten();
  stats_.Inc(type == WireType::kRequest ? "reqrep.requests_handled"
                                        : "reqrep.notifies_handled");
  it->second(std::move(ctx));
}

void Endpoint::SendRequestWire(WireType type, HostId dst, std::uint8_t op,
                               HostId origin, std::uint64_t req_id,
                               std::uint32_t origin_inc, const Body& body,
                               MsgKind kind) {
  base::WireWriter w;
  w.U8(static_cast<std::uint8_t>(type));
  w.U64(req_id);
  w.U16(origin);
  w.U8(op);
  if (cfg_.carry_incarnation) w.U32(origin_inc);
  w.Raw(body.head);
  Message m;
  m.src = self_;
  m.dst = dst;
  m.kind = kind;
  m.payload = std::move(w).Take();
  m.payload.Append(body.data);  // bulk data: shared views, no copy
  CountTxClass(op, m.payload.size());
  fragmenter_.Send(std::move(m));
}

void Endpoint::SendReplyWire(HostId dst, std::uint8_t op,
                             std::uint64_t req_id, const Body& body,
                             MsgKind kind) {
  base::WireWriter w;
  w.U8(static_cast<std::uint8_t>(WireType::kReply));
  w.U64(req_id);
  if (cfg_.carry_incarnation) {
    std::lock_guard<std::mutex> lk(maps_mu_);
    w.U32(incarnation_);
  }
  w.Raw(body.head);
  Message m;
  m.src = self_;
  m.dst = dst;
  m.kind = kind;
  m.payload = std::move(w).Take();
  m.payload.Append(body.data);
  CountTxClass(op, m.payload.size());
  fragmenter_.Send(std::move(m));
}

void Endpoint::CountTxClass(std::uint8_t op, std::size_t wire_bytes) {
  const std::string cls =
      op_namer_ != nullptr ? op_namer_(op) : "op" + std::to_string(op);
  stats_.Inc("reqrep.tx_msgs." + cls);
  stats_.Inc("reqrep.tx_bytes." + cls,
             static_cast<std::int64_t>(wire_bytes));
}

Endpoint::DedupEntry* Endpoint::DedupFind(HostId origin,
                                          std::uint64_t req_id) {
  auto it = dedup_.find({origin, req_id});
  return it == dedup_.end() ? nullptr : &it->second;
}

Endpoint::DedupEntry& Endpoint::DedupInsert(HostId origin,
                                            std::uint64_t req_id) {
  while (dedup_order_.size() >= cfg_.dedup_window) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
  dedup_order_.emplace_back(origin, req_id);
  return dedup_[{origin, req_id}];
}

CallResult Endpoint::CallWithStatus(HostId dst, std::uint8_t op, Body body,
                                    MsgKind kind, const CallOpts& opts) {
  auto multi = MultiCallWithStatus({dst}, op, std::move(body), kind, opts);
  CallResult out;
  out.status = multi.status;
  if (multi.status == CallStatus::kOk) out.body = std::move(multi.replies[0]);
  return out;
}

MultiCallResult Endpoint::MultiCallWithStatus(const std::vector<HostId>& dsts,
                                              std::uint8_t op, Body body,
                                              MsgKind kind,
                                              const CallOpts& opts) {
  MERMAID_CHECK(started_);
  MERMAID_CHECK(!dsts.empty());
  const SimDuration timeout =
      opts.timeout > 0 ? opts.timeout : cfg_.call_timeout;
  const int max_attempts =
      opts.max_attempts > 0 ? opts.max_attempts : cfg_.max_attempts;

  sim::Chan<ReplyMsg> reply_chan(rt_);
  struct Slot {
    std::uint64_t req_id = 0;
    int attempts = 1;
    bool done = false;
    base::BufferChain reply;
  };
  std::vector<Slot> slots(dsts.size());
  // Stamped once at call start: a call that survives its host's crash as a
  // zombie process keeps retransmitting with the old incarnation, so every
  // receiver that has heard from the new life fences it.
  std::uint32_t origin_inc = 0;
  {
    std::lock_guard<std::mutex> lk(maps_mu_);
    origin_inc = incarnation_;
    for (auto& slot : slots) {
      slot.req_id = next_req_id_++;
      pending_.emplace(slot.req_id, reply_chan);
    }
  }
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    SendRequestWire(WireType::kRequest, dsts[i], op, self_, slots[i].req_id,
                    origin_inc, body, kind);
    stats_.Inc("reqrep.requests_sent");
  }

  std::size_t remaining = dsts.size();
  // Attempt k's wait is min(timeout * factor^(k-1), cap) with +/- jitter so
  // concurrent losers of the same page don't retransmit in lockstep.
  const SimTime call_start = rt_.Now();
  double wait_ns = static_cast<double>(timeout);
  SimTime deadline = call_start + timeout;
  bool shutdown = false;
  while (remaining > 0) {
    bool timed_out = false;
    auto msg = reply_chan.RecvUntil(deadline, &timed_out);
    if (msg.has_value()) {
      for (auto& s : slots) {
        if (!s.done && s.req_id == msg->req_id) {
          s.done = true;
          s.reply = std::move(msg->body);
          --remaining;
          // Time from first send to this slot's reply — retransmitted
          // attempts fold into one sample, matching what the caller waited.
          stats_.Hist("reqrep.rtt_ms", ToMillis(rt_.Now() - call_start));
          break;
        }
      }
      continue;
    }
    if (!timed_out) {  // runtime shutdown
      shutdown = true;
      break;
    }
    if (cfg_.carry_incarnation) {
      // The endpoint reincarnated under this call (crash-with-amnesia):
      // the pending entry is gone and every receiver fences the stale
      // origin_inc, so retransmitting would spin the attempt budget dry.
      // Bail out as a timeout; the caller's retry issues a fresh call
      // stamped with the new life.
      std::lock_guard<std::mutex> lk(maps_mu_);
      if (incarnation_ != origin_inc) break;
    }
    // Deadline hit: retransmit every unanswered request that has attempts
    // left; give up on the rest.
    bool any_left = false;
    for (std::size_t i = 0; i < dsts.size(); ++i) {
      Slot& s = slots[i];
      if (s.done || s.attempts >= max_attempts) continue;
      ++s.attempts;
      any_left = true;
      stats_.Inc("reqrep.retransmits");
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Record(trace::EventKind::kRetransmit, self_, rt_.Now(),
                        trace::kNoPage, s.req_id, 0, s.attempts, dsts[i]);
      }
      SendRequestWire(WireType::kRequest, dsts[i], op, self_, s.req_id,
                      origin_inc, body, kind);
    }
    if (!any_left) break;
    wait_ns = std::min(wait_ns * cfg_.backoff_factor,
                       static_cast<double>(cfg_.backoff_cap));
    double jittered = wait_ns;
    if (cfg_.backoff_jitter > 0) {
      std::lock_guard<std::mutex> lk(maps_mu_);
      jittered *=
          1.0 + cfg_.backoff_jitter * (2.0 * backoff_rng_.NextDouble() - 1.0);
    }
    const auto wait = std::max<SimDuration>(
        1, static_cast<SimDuration>(jittered));
    if (wait > timeout) {
      stats_.Inc("reqrep.backoff_total_ms",
                 static_cast<std::int64_t>((wait - timeout) / 1'000'000));
    }
    deadline = rt_.Now() + wait;
  }

  {
    std::lock_guard<std::mutex> lk(maps_mu_);
    for (const auto& s : slots) pending_.erase(s.req_id);
  }
  MultiCallResult out;
  out.replies.resize(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].done) {
      out.replies[i] = std::move(slots[i].reply);
    } else {
      out.timed_out.push_back(i);
    }
  }
  if (shutdown) {
    out.status = CallStatus::kShutdown;
    stats_.Inc("reqrep.call_failures");
  } else if (remaining > 0) {
    out.status = CallStatus::kTimedOut;
    stats_.Inc("reqrep.call_failures");
    stats_.Inc("reqrep.call_timeouts");
    if (tracer_ != nullptr && tracer_->enabled()) {
      for (const auto& s : slots) {
        if (s.done) continue;
        tracer_->Record(trace::EventKind::kCallTimeout, self_, rt_.Now(),
                        trace::kNoPage, s.req_id, 0, s.attempts);
      }
    }
  } else {
    out.status = CallStatus::kOk;
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Endpoint::Call(
    HostId dst, std::uint8_t op, Body body, MsgKind kind,
    const CallOpts& opts) {
  auto r = CallWithStatus(dst, op, std::move(body), kind, opts);
  if (!r.ok()) return std::nullopt;
  return r.body.ToVector();
}

std::optional<std::vector<std::vector<std::uint8_t>>> Endpoint::MultiCall(
    const std::vector<HostId>& dsts, std::uint8_t op, Body body,
    MsgKind kind, const CallOpts& opts) {
  auto r = MultiCallWithStatus(dsts, op, std::move(body), kind, opts);
  if (!r.ok()) return std::nullopt;
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(r.replies.size());
  for (const auto& chain : r.replies) out.push_back(chain.ToVector());
  return out;
}

void Endpoint::Notify(HostId dst, std::uint8_t op, Body body, MsgKind kind) {
  stats_.Inc("reqrep.notifies_sent");
  std::uint32_t origin_inc = 0;
  if (cfg_.carry_incarnation) {
    std::lock_guard<std::mutex> lk(maps_mu_);
    origin_inc = incarnation_;
  }
  SendRequestWire(WireType::kNotify, dst, op, self_, 0, origin_inc, body,
                  kind);
}

}  // namespace mermaid::net
