#include "mermaid/net/network.h"

#include "mermaid/base/check.h"

namespace mermaid::net {

Network::Network(sim::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg), rng_(cfg.seed) {}

sim::Chan<Packet> Network::Attach(HostId id,
                                  const arch::ArchProfile* profile) {
  MERMAID_CHECK(profile != nullptr);
  MERMAID_CHECK_MSG(hosts_.find(id) == hosts_.end(),
                    "host attached to the network twice");
  HostEntry entry;
  entry.profile = profile;
  entry.rx = sim::Chan<Packet>(rt_);
  auto [it, inserted] = hosts_.emplace(id, std::move(entry));
  MERMAID_CHECK(inserted);
  return it->second.rx;
}

const arch::ArchProfile& Network::ProfileOf(HostId id) const {
  auto it = hosts_.find(id);
  MERMAID_CHECK_MSG(it != hosts_.end(), "unknown host id");
  return *it->second.profile;
}

void Network::Send(Packet pkt, SimDuration extra_delay) {
  auto src_it = hosts_.find(pkt.src);
  auto dst_it = hosts_.find(pkt.dst);
  MERMAID_CHECK_MSG(src_it != hosts_.end() && dst_it != hosts_.end(),
                    "send between unattached hosts");
  MERMAID_CHECK(pkt.bytes.size() <= cfg_.mtu);

  const arch::LinkCost link =
      arch::LinkCostFor(*src_it->second.profile, *dst_it->second.profile);
  const SimDuration fixed = pkt.kind == MsgKind::kControl ? link.control_fixed
                                                          : link.data_fixed;
  double latency =
      static_cast<double>(fixed) +
      link.wire_ns_per_byte * static_cast<double>(pkt.bytes.size()) +
      static_cast<double>(extra_delay);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.jitter > 0) {
      latency *= 1.0 + cfg_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    }
    stats_.Inc("net.packets_sent");
    stats_.Inc("net.bytes_sent", static_cast<std::int64_t>(pkt.bytes.size()));
    if (cfg_.loss_probability > 0 && rng_.NextBool(cfg_.loss_probability)) {
      stats_.Inc("net.packets_dropped");
      return;
    }
  }
  dst_it->second.rx.Send(std::move(pkt),
                         static_cast<SimDuration>(latency));
}

}  // namespace mermaid::net
