#include "mermaid/net/network.h"

#include <algorithm>

#include "mermaid/base/check.h"

namespace mermaid::net {

namespace {

bool InWindow(SimTime t, SimTime from, SimTime until) {
  return t >= from && t < until;
}

bool InGroup(const std::vector<HostId>& group, HostId h) {
  return std::find(group.begin(), group.end(), h) != group.end();
}

}  // namespace

Network::Network(sim::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg), rng_(cfg.seed) {}

sim::Chan<Packet> Network::Attach(HostId id,
                                  const arch::ArchProfile* profile) {
  MERMAID_CHECK(profile != nullptr);
  MERMAID_CHECK_MSG(hosts_.find(id) == hosts_.end(),
                    "host attached to the network twice");
  HostEntry entry;
  entry.profile = profile;
  entry.rx = sim::Chan<Packet>(rt_);
  auto [it, inserted] = hosts_.emplace(id, std::move(entry));
  MERMAID_CHECK(inserted);
  return it->second.rx;
}

const arch::ArchProfile& Network::ProfileOf(HostId id) const {
  auto it = hosts_.find(id);
  MERMAID_CHECK_MSG(it != hosts_.end(), "unknown host id");
  return *it->second.profile;
}

void Network::SetFaultPlan(FaultPlan plan) {
  // Collect hook firings before installing (the daemon captures them by
  // value so a later SetFaultPlan cannot race with in-flight hooks).
  struct Firing {
    SimTime at;
    std::function<void()> fn;
  };
  std::vector<Firing> firings;
  for (auto& o : plan.outages) {
    if (o.on_down) firings.push_back({o.from, o.on_down});
    if (o.on_restart && o.until != kFaultForever) {
      firings.push_back({o.until, o.on_restart});
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    plan_ = std::move(plan);
  }
  if (firings.empty()) return;
  std::sort(firings.begin(), firings.end(),
            [](const Firing& a, const Firing& b) { return a.at < b.at; });
  rt_.SpawnOn(
      0, "net-chaos",
      [this, firings = std::move(firings)] {
        sim::Chan<bool> never(rt_);
        for (const Firing& f : firings) {
          if (f.at > rt_.Now()) {
            bool timed_out = false;
            auto m = never.RecvUntil(f.at, &timed_out);
            if (!m.has_value() && !timed_out) return;  // shutdown
          }
          f.fn();
        }
      },
      /*daemon=*/true);
}

void Network::PauseHost(HostId id) {
  std::lock_guard<std::mutex> lk(mu_);
  paused_.insert(id);
  stats_.Inc("net.host_pauses");
}

void Network::ResumeHost(HostId id) {
  std::lock_guard<std::mutex> lk(mu_);
  paused_.erase(id);
}

void Network::CrashHost(HostId id) {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    crashed_.insert(id);
    stats_.Inc("net.host_crashes");
    auto it = crash_hooks_.find(id);
    if (it != crash_hooks_.end()) hook = it->second;
  }
  // Fired outside the lock: hooks reach back into endpoint state (e.g. the
  // reassembler purge) whose own locks must not nest under mu_.
  if (hook) hook();
}

void Network::SetCrashHook(HostId id, std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  crash_hooks_[id] = std::move(hook);
}

void Network::RestartHost(HostId id) {
  std::lock_guard<std::mutex> lk(mu_);
  crashed_.erase(id);
}

bool Network::HostDownLocked(HostId id, SimTime t) const {
  if (crashed_.count(id) > 0 || paused_.count(id) > 0) return true;
  for (const auto& o : plan_.outages) {
    if (o.host == id && InWindow(t, o.from, o.until)) return true;
  }
  return false;
}

bool Network::HostDown(HostId id, SimTime t) const {
  std::lock_guard<std::mutex> lk(mu_);
  return HostDownLocked(id, t);
}

bool Network::FaultDropLocked(const Packet& pkt, SimTime send_time,
                              SimTime deliver_time) {
  // A down host cannot put packets on the wire.
  if (HostDownLocked(pkt.src, send_time)) {
    stats_.Inc("net.outage_dropped");
    return true;
  }
  // Receive side: nothing reaches a host that is down when the packet is
  // sent or when it would arrive (a crash loses in-flight packets; a paused
  // host is simply unreachable for the window).
  if (HostDownLocked(pkt.dst, send_time) ||
      HostDownLocked(pkt.dst, deliver_time)) {
    stats_.Inc("net.outage_dropped");
    return true;
  }
  for (const auto& p : plan_.partitions) {
    if (!InWindow(send_time, p.from, p.until)) continue;
    if (InGroup(p.group, pkt.src) != InGroup(p.group, pkt.dst)) {
      stats_.Inc("net.partition_dropped");
      return true;
    }
  }
  for (const auto& r : plan_.drops) {
    if (!InWindow(send_time, r.from, r.until)) continue;
    if (r.src.has_value() && *r.src != pkt.src) continue;
    if (r.dst.has_value() && *r.dst != pkt.dst) continue;
    if (r.kind.has_value() && *r.kind != pkt.kind) continue;
    if (rng_.NextBool(r.probability)) {
      stats_.Inc("net.rule_dropped");
      return true;
    }
  }
  return false;
}

void Network::Send(Packet pkt, SimDuration extra_delay) {
  auto src_it = hosts_.find(pkt.src);
  auto dst_it = hosts_.find(pkt.dst);
  MERMAID_CHECK_MSG(src_it != hosts_.end() && dst_it != hosts_.end(),
                    "send between unattached hosts");
  MERMAID_CHECK(pkt.wire_size() <= cfg_.mtu);

  const arch::LinkCost link =
      arch::LinkCostFor(*src_it->second.profile, *dst_it->second.profile);
  const SimDuration fixed = pkt.kind == MsgKind::kControl ? link.control_fixed
                                                          : link.data_fixed;
  double latency =
      static_cast<double>(fixed) +
      link.wire_ns_per_byte * static_cast<double>(pkt.wire_size()) +
      static_cast<double>(extra_delay);
  bool duplicate = false;
  bool dropped = false;
  SimDuration dup_extra = 0;
  SimTime now = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.jitter > 0) {
      latency *= 1.0 + cfg_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    }
    stats_.Inc("net.packets_sent");
    stats_.Inc("net.bytes_sent", static_cast<std::int64_t>(pkt.wire_size()));
    now = rt_.Now();
    if (FaultDropLocked(pkt, now, now + static_cast<SimDuration>(latency))) {
      stats_.Inc("net.packets_dropped");
      dropped = true;
    } else if (cfg_.loss_probability > 0 &&
               rng_.NextBool(cfg_.loss_probability)) {
      stats_.Inc("net.packets_dropped");
      dropped = true;
    }
    if (!dropped) {
      if (plan_.reorder_probability > 0 &&
          rng_.NextBool(plan_.reorder_probability)) {
        // Delay this packet past its natural slot so later sends overtake
        // it.
        latency += static_cast<double>(
            rng_.NextBelow(static_cast<std::uint64_t>(
                std::max<SimDuration>(1, plan_.reorder_delay_max))));
        stats_.Inc("net.reorder_injected");
      }
      if (plan_.duplicate_probability > 0 &&
          rng_.NextBool(plan_.duplicate_probability)) {
        duplicate = true;
        dup_extra = static_cast<SimDuration>(
            rng_.NextBelow(static_cast<std::uint64_t>(
                std::max<SimDuration>(1, plan_.reorder_delay_max))));
        stats_.Inc("net.dup_injected");
      }
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Record(dropped ? trace::EventKind::kPacketDrop
                            : trace::EventKind::kPacketSend,
                    pkt.src, now, trace::kNoPage, 0, 0,
                    static_cast<std::int64_t>(pkt.wire_size()), pkt.dst);
  }
  if (dropped) return;
  if (duplicate) {
    Packet copy = pkt;
    dst_it->second.rx.Send(std::move(copy),
                           static_cast<SimDuration>(latency) + dup_extra);
  }
  dst_it->second.rx.Send(std::move(pkt),
                         static_cast<SimDuration>(latency));
}

}  // namespace mermaid::net
