// User-level message fragmentation and reassembly.
//
// The Firefly's UDP lacked fragmentation, so Mermaid implemented it at user
// level (§2.2) — DSM messages (an 8 KB Sun page plus headers) exceed the
// Ethernet MTU. Fragmenter splits a message into MTU-sized packets, charging
// the sending process the per-packet CPU cost from the calibrated link
// model; Reassembler reassembles out-of-order fragments and garbage-collects
// stale partial messages (fragments of lost-packet messages).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "mermaid/base/buffer.h"
#include "mermaid/base/stats.h"
#include "mermaid/net/network.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/trace/trace.h"

namespace mermaid::net {

// A complete (reassembled) message between host endpoints. The payload is a
// chain of shared buffer views — typically [protocol head, bulk data] on the
// send side and one slice per fragment after reassembly — so fragmentation
// and reassembly never duplicate the bulk bytes.
struct Message {
  HostId src = 0;
  HostId dst = 0;
  MsgKind kind = MsgKind::kControl;
  base::BufferChain payload;
};

// Per-host sending side. Stateless apart from the message-id counter.
class Fragmenter {
 public:
  Fragmenter(sim::Runtime& rt, Network& net, HostId self);

  // Fragments and sends `msg` (msg.src must equal the owning host). The
  // calling process is delayed by the per-packet processing cost, modeling
  // the user-level fragmentation the paper charges the sender.
  void Send(Message msg);

  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  sim::Runtime& rt_;
  Network& net_;
  HostId self_;
  trace::Tracer* tracer_ = nullptr;
  // Atomic: under the real-time runtime several processes of one host
  // (client + rx daemon) may send concurrently.
  std::atomic<std::uint64_t> next_msg_id_;
};

// Per-host receiving side. Pull-driven: the endpoint's receive loop feeds
// packets in; a completed message comes back. Partial messages older than
// `stale_after` are dropped whenever OnPacket runs AND by a periodic
// SweepStale (the endpoint runs a sweeper daemon): relying on OnPacket
// alone leaks partials on a host that stops receiving packets — e.g. the
// tail fragments were dropped by a FaultPlan and the sender gave up, or the
// host sits behind a partition (datagram semantics: a message with a lost
// fragment is simply a lost message; the request layer retransmits).
class Reassembler {
 public:
  explicit Reassembler(sim::Runtime& rt,
                       SimDuration stale_after = Seconds(2));

  // Takes the packet by value so its wire bytes can be adopted into the
  // reassembled message's buffer chain without copying.
  std::optional<Message> OnPacket(Packet pkt);

  // Drops every partial older than `stale_after`. Safe to call from a
  // process other than the receive loop (internally locked).
  void SweepStale();

  // Drops every partial regardless of age (crash-with-amnesia: a crashed
  // host's half-reassembled messages must not survive into its next life,
  // and must not sit in memory until the TTL sweeper ages them out).
  // Counted under net.reassembly_expired like TTL drops.
  void PurgeAll();

  std::size_t partial_count() const;
  SimDuration stale_after() const { return stale_after_; }

  base::StatsRegistry& stats() { return stats_; }

  void SetTracer(trace::Tracer* tracer, HostId self) {
    tracer_ = tracer;
    trace_self_ = self;
  }

 private:
  struct Partial {
    SimTime first_seen = 0;
    MsgKind kind = MsgKind::kControl;
    std::uint16_t expected = 0;
    std::uint16_t received = 0;
    std::vector<base::BufferChain> frags;
    std::vector<std::uint8_t> seen;
  };

  void DropStaleLocked(SimTime now);

  sim::Runtime& rt_;
  SimDuration stale_after_;
  // Guards partial_: the receive loop and the stale-sweeper daemon are
  // different processes (really concurrent under the real-time runtime).
  mutable std::mutex mu_;
  // Keyed by (src, msg_id): fragment ids are per-sender.
  std::map<std::pair<HostId, std::uint64_t>, Partial> partial_;
  base::StatsRegistry stats_;
  trace::Tracer* tracer_ = nullptr;
  HostId trace_self_ = 0xFFFF;
};

// Wire header layout (serialized by Fragmenter, parsed by Reassembler):
//   u64 msg_id | u16 src | u16 index | u16 count | u8 kind | payload bytes
inline constexpr std::size_t kFragHeaderBytes = 8 + 2 + 2 + 2 + 1;

}  // namespace mermaid::net
