#include "mermaid/net/fragment.h"

#include <algorithm>

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"

namespace mermaid::net {

Fragmenter::Fragmenter(sim::Runtime& rt, Network& net, HostId self)
    : rt_(rt), net_(net), self_(self), next_msg_id_(1) {}

void Fragmenter::Send(Message msg) {
  MERMAID_CHECK(msg.src == self_);
  const std::size_t max_payload = net_.mtu() - kFragHeaderBytes;
  const std::size_t count =
      std::max<std::size_t>(1, (msg.payload.size() + max_payload - 1) /
                                   max_payload);
  MERMAID_CHECK_MSG(count <= 0xFFFF, "message too large to fragment");

  const arch::LinkCost link = arch::LinkCostFor(
      net_.ProfileOf(msg.src), net_.ProfileOf(msg.dst));
  // User-level fragmentation/copy cost, paid by the sending process — the
  // term that makes Firefly-side transfers slower in Table 2. Small control
  // messages are exempt: their send-side processing is already inside the
  // calibrated fault-handling and request-processing constants (Table 1
  // "includes the request message transmission time").
  if (msg.kind == MsgKind::kData) {
    rt_.Delay(link.per_packet * static_cast<SimDuration>(count));
  }

  const std::uint64_t msg_id = next_msg_id_++;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Record(trace::EventKind::kMsgSend, self_, rt_.Now(),
                    trace::kNoPage, msg_id, 0,
                    static_cast<std::int64_t>(count), msg.dst);
  }
  // Wire serialization of earlier fragments delays later ones.
  double cum_wire_ns = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = i * max_payload;
    const std::size_t len = std::min(max_payload, msg.payload.size() - off);
    base::WireWriter w;
    w.U64(msg_id);
    w.U16(msg.src);
    w.U16(static_cast<std::uint16_t>(i));
    w.U16(static_cast<std::uint16_t>(count));
    w.U8(static_cast<std::uint8_t>(msg.kind));

    Packet pkt;
    pkt.src = msg.src;
    pkt.dst = msg.dst;
    pkt.kind = msg.kind;
    // Everything but the final chunk of this fragment's range goes behind
    // the header (small protocol heads in practice); the final chunk — the
    // bulk data in a page transfer — rides as a shared zero-copy view.
    base::BufferChain range = msg.payload.Slice(off, len);
    for (std::size_t c = 0; c + 1 < range.chunk_count(); ++c) {
      w.Raw(range.chunk(c).span());
    }
    if (range.chunk_count() > 0) {
      pkt.payload = range.chunk(range.chunk_count() - 1);
    }
    pkt.bytes = std::move(w).Take();
    const auto extra = static_cast<SimDuration>(cum_wire_ns);
    cum_wire_ns +=
        link.wire_ns_per_byte * static_cast<double>(pkt.wire_size());
    net_.Send(std::move(pkt), extra);
  }
}

Reassembler::Reassembler(sim::Runtime& rt, SimDuration stale_after)
    : rt_(rt), stale_after_(stale_after) {}

std::optional<Message> Reassembler::OnPacket(Packet pkt) {
  base::WireReader r(pkt.bytes);
  const std::uint64_t msg_id = r.U64();
  const HostId src = r.U16();
  const std::uint16_t index = r.U16();
  const std::uint16_t count = r.U16();
  const auto kind = static_cast<MsgKind>(r.U8());
  if (!r.ok() || count == 0 || index >= count || src != pkt.src) {
    stats_.Inc("frag.malformed_dropped");
    return std::nullopt;
  }
  // Adopt the packet's wire storage: the fragment payload is a zero-copy
  // view past the header, plus the packet's bulk payload tail.
  base::BufferChain frag;
  frag.Append(base::Buffer(std::move(pkt.bytes)).Slice(kFragHeaderBytes));
  frag.Append(std::move(pkt.payload));

  const SimTime now = rt_.Now();
  std::lock_guard<std::mutex> lk(mu_);
  DropStaleLocked(now);

  if (count == 1) {
    stats_.Inc("frag.messages_delivered");
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Record(trace::EventKind::kMsgDelivered, trace_self_, now,
                      trace::kNoPage, msg_id, 0,
                      static_cast<std::int64_t>(frag.size()));
    }
    Message msg;
    msg.src = pkt.src;
    msg.dst = pkt.dst;
    msg.kind = kind;
    msg.payload = std::move(frag);
    return msg;
  }

  Partial& part = partial_[{src, msg_id}];
  if (part.seen.empty()) {
    part.first_seen = now;
    part.kind = kind;
    part.expected = count;
    part.frags.resize(count);
    part.seen.assign(count, 0);
  }
  if (part.expected != count) {
    stats_.Inc("frag.malformed_dropped");
    partial_.erase({src, msg_id});
    return std::nullopt;
  }
  if (part.seen[index]) {
    stats_.Inc("frag.duplicate_fragments");
    return std::nullopt;  // duplicate fragment (retransmitted message)
  }
  part.frags[index] = std::move(frag);
  part.seen[index] = 1;
  ++part.received;
  if (part.received < part.expected) return std::nullopt;

  Message msg;
  msg.src = pkt.src;
  msg.dst = pkt.dst;
  msg.kind = part.kind;
  for (auto& f : part.frags) msg.payload.Append(std::move(f));
  partial_.erase({src, msg_id});
  stats_.Inc("frag.messages_delivered");
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Record(trace::EventKind::kMsgDelivered, trace_self_, now,
                    trace::kNoPage, msg_id, 0,
                    static_cast<std::int64_t>(msg.payload.size()));
  }
  return msg;
}

void Reassembler::SweepStale() {
  const SimTime now = rt_.Now();
  std::lock_guard<std::mutex> lk(mu_);
  DropStaleLocked(now);
}

void Reassembler::PurgeAll() {
  const SimTime now = rt_.Now();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = partial_.begin(); it != partial_.end();) {
    stats_.Inc("frag.stale_partials_dropped");
    stats_.Inc("net.reassembly_expired");
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Record(trace::EventKind::kReassemblyExpired, trace_self_, now,
                      trace::kNoPage, it->first.second, 0,
                      it->second.received);
    }
    it = partial_.erase(it);
  }
}

std::size_t Reassembler::partial_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return partial_.size();
}

void Reassembler::DropStaleLocked(SimTime now) {
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.first_seen > stale_after_) {
      // Two names for one event: the legacy counter plus the net.* alias
      // that System-level stats reports (the endpoint registry merge).
      stats_.Inc("frag.stale_partials_dropped");
      stats_.Inc("net.reassembly_expired");
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Record(trace::EventKind::kReassemblyExpired, trace_self_,
                        now, trace::kNoPage, it->first.second, 0,
                        it->second.received);
      }
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mermaid::net
