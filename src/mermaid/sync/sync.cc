#include "mermaid/sync/sync.h"

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"
#include "mermaid/dsm/types.h"

namespace mermaid::sync {

namespace {

std::vector<std::uint8_t> EncodeOp(std::uint8_t subop, SyncId id,
                                   std::int64_t arg) {
  base::WireWriter w;
  w.U8(subop);
  w.U64(id);
  w.I64(arg);
  return std::move(w).Take();
}

}  // namespace

SyncServer::SyncServer(sim::Runtime& rt) : rt_(rt) {}

void SyncServer::Attach(net::Endpoint& ep) {
  ep.SetHandler(dsm::kOpSync,
                [this](net::RequestContext ctx) { Handle(std::move(ctx)); });
}

void SyncServer::Wake(Waiter& w) {
  if (w.remote.has_value()) {
    w.remote->Reply({});
  } else {
    w.local.Send(true);
  }
}

void SyncServer::Handle(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const std::uint8_t subop = r.U8();
  const SyncId id = r.U64();
  const std::int64_t arg = r.I64();
  if (!r.ok()) return;

  Waiter self;
  self.origin = ctx.origin();
  self.remote = std::move(ctx);
  std::vector<Waiter> release;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ApplyLocked(subop, id, arg, std::move(self), &release);
  }
  for (auto& w : release) Wake(w);
}

// Contract: if the issuing party proceeds immediately, ApplyLocked pushes
// `self` onto `release` (so it is woken/replied like any other waiter) and
// returns true; if the party must wait, `self` is parked inside the state
// and the function returns false.
bool SyncServer::ApplyLocked(std::uint8_t subop, SyncId id, std::int64_t arg,
                             Waiter&& self, std::vector<Waiter>* release) {
  switch (subop) {
    case kSemInit: {
      Sem& s = sems_[id];
      s.count = arg;
      MERMAID_CHECK_MSG(s.waiters.empty(),
                        "semaphore re-initialized while threads wait on it");
      release->push_back(std::move(self));
      return true;
    }
    case kSemP: {
      Sem& s = sems_[id];
      if (s.count > 0) {
        --s.count;
        s.holders.insert(self.origin);
        release->push_back(std::move(self));
        return true;
      }
      s.waiters.push_back(std::move(self));
      return false;
    }
    case kSemV: {
      Sem& s = sems_[id];
      // A V normally releases the issuer's own hold; when used as a pure
      // signal (no prior P from this host) there is no hold to clear.
      auto hold = s.holders.find(self.origin);
      if (hold != s.holders.end()) s.holders.erase(hold);
      if (!s.waiters.empty()) {
        s.holders.insert(s.waiters.front().origin);
        release->push_back(std::move(s.waiters.front()));
        s.waiters.pop_front();
      } else {
        ++s.count;
      }
      release->push_back(std::move(self));
      return true;
    }
    case kEventSet: {
      Event& e = events_[id];
      e.set = true;
      for (auto& w : e.waiters) release->push_back(std::move(w));
      e.waiters.clear();
      release->push_back(std::move(self));
      return true;
    }
    case kEventClear: {
      events_[id].set = false;
      release->push_back(std::move(self));
      return true;
    }
    case kEventWait: {
      Event& e = events_[id];
      if (e.set) {
        release->push_back(std::move(self));
        return true;
      }
      e.waiters.push_back(std::move(self));
      return false;
    }
    case kBarrier: {
      Barrier& b = barriers_[id];
      b.waiters.push_back(std::move(self));
      if (static_cast<std::int64_t>(b.waiters.size()) >= arg) {
        for (auto& w : b.waiters) release->push_back(std::move(w));
        b.waiters.clear();
        return true;
      }
      return false;
    }
    default:
      MERMAID_CHECK_MSG(false, "unknown sync subop");
  }
  return false;
}

// Local-path implementation: run the op against the server state directly;
// if parked, block on the local grant channel.
#define MERMAID_SYNC_LOCAL(subop_, id_, arg_)                             \
  do {                                                                    \
    Waiter self;                                                          \
    self.local = sim::Chan<bool>(rt_);                                    \
    sim::Chan<bool> wait_chan = self.local;                               \
    std::vector<Waiter> release;                                          \
    bool proceed;                                                         \
    {                                                                     \
      std::lock_guard<std::mutex> lk(mu_);                                \
      proceed = ApplyLocked((subop_), (id_), (arg_), std::move(self),     \
                            &release);                                    \
    }                                                                     \
    for (auto& w : release) Wake(w);                                      \
    if (!proceed) wait_chan.Recv();                                       \
  } while (false)

void SyncServer::LocalSemInit(SyncId id, std::int64_t value) {
  MERMAID_SYNC_LOCAL(kSemInit, id, value);
}
void SyncServer::LocalP(SyncId id) { MERMAID_SYNC_LOCAL(kSemP, id, 0); }
void SyncServer::LocalV(SyncId id) { MERMAID_SYNC_LOCAL(kSemV, id, 0); }
void SyncServer::LocalEventSet(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventSet, id, 0);
}
void SyncServer::LocalEventClear(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventClear, id, 0);
}
void SyncServer::LocalEventWait(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventWait, id, 0);
}
void SyncServer::LocalBarrier(SyncId id, std::int64_t parties) {
  MERMAID_SYNC_LOCAL(kBarrier, id, parties);
}

#undef MERMAID_SYNC_LOCAL

void SyncServer::BreakHost(net::HostId h) {
  std::vector<Waiter> release;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, s] : sems_) {
      // Ghost waiters go first, so a force-released grant can never be
      // consumed by a request whose issuer no longer exists.
      const auto dropped = std::erase_if(
          s.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
      auto broken = s.holders.count(h);
      if (broken == 0) continue;
      s.holders.erase(h);
      // Each broken hold is a forced V: hand the grant to the next live
      // waiter, or return it to the count.
      while (broken-- > 0) {
        stats_.Inc("sync.broken_locks");
        if (!s.waiters.empty()) {
          s.holders.insert(s.waiters.front().origin);
          release.push_back(std::move(s.waiters.front()));
          s.waiters.pop_front();
        } else {
          ++s.count;
        }
      }
    }
    for (auto& [id, e] : events_) {
      const auto dropped = std::erase_if(
          e.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
    }
    // A dead barrier arrival is forgotten: the restarted host's thread must
    // arrive again for the barrier to complete.
    for (auto& [id, b] : barriers_) {
      const auto dropped = std::erase_if(
          b.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
    }
  }
  for (auto& w : release) Wake(w);
}

Client::Client(net::Endpoint* ep, net::HostId server_host, SyncServer* local)
    : ep_(ep), server_host_(server_host), local_(local) {}

void Client::Trace(std::uint8_t subop, SyncId id) {
  if (tracer_ == nullptr || !tracer_->enabled() || ep_ == nullptr) return;
  tracer_->Record(trace::EventKind::kSyncOp, ep_->self(),
                  ep_->runtime().Now(), trace::kNoPage, id, 0, subop,
                  server_host_);
}

void Client::Issue(std::uint8_t subop, SyncId id, std::int64_t arg) {
  MERMAID_CHECK(ep_ != nullptr);
  net::Endpoint::CallOpts opts;
  opts.timeout = Milliseconds(500);
  opts.max_attempts = 1 << 20;  // a parked P may wait arbitrarily long
  const std::uint32_t inc0 = ep_->incarnation();
  auto r = ep_->CallWithStatus(server_host_, dsm::kOpSync,
                               EncodeOp(subop, id, arg),
                               net::MsgKind::kControl, opts);
  // A call fenced by this host's own crash-with-amnesia is abandoned, not
  // an error: the issuing life is gone, and the server either applied the
  // op before the crash or broke the hold when the crash was reported.
  if (r.status == net::CallStatus::kTimedOut && ep_->incarnation() != inc0) {
    return;
  }
  // Shutdown unwinds silently; anything else losing a sync op would corrupt
  // the application's synchronization invariants, so fail loudly.
  MERMAID_CHECK_MSG(r.status != net::CallStatus::kTimedOut,
                    "sync operation timed out: sync server unreachable");
}

void Client::SemInit(SyncId id, std::int64_t value) {
  Trace(SyncServer::kSemInit, id);
  if (local_ != nullptr) return local_->LocalSemInit(id, value);
  Issue(SyncServer::kSemInit, id, value);
}
void Client::P(SyncId id) {
  Trace(SyncServer::kSemP, id);
  if (local_ != nullptr) return local_->LocalP(id);
  Issue(SyncServer::kSemP, id, 0);
}
void Client::V(SyncId id) {
  Trace(SyncServer::kSemV, id);
  if (local_ != nullptr) return local_->LocalV(id);
  Issue(SyncServer::kSemV, id, 0);
}
void Client::EventSet(SyncId id) {
  Trace(SyncServer::kEventSet, id);
  if (local_ != nullptr) return local_->LocalEventSet(id);
  Issue(SyncServer::kEventSet, id, 0);
}
void Client::EventClear(SyncId id) {
  Trace(SyncServer::kEventClear, id);
  if (local_ != nullptr) return local_->LocalEventClear(id);
  Issue(SyncServer::kEventClear, id, 0);
}
void Client::EventWait(SyncId id) {
  Trace(SyncServer::kEventWait, id);
  if (local_ != nullptr) return local_->LocalEventWait(id);
  Issue(SyncServer::kEventWait, id, 0);
}
void Client::Barrier(SyncId id, std::int64_t parties) {
  Trace(SyncServer::kBarrier, id);
  if (local_ != nullptr) return local_->LocalBarrier(id, parties);
  Issue(SyncServer::kBarrier, id, parties);
}

}  // namespace mermaid::sync
