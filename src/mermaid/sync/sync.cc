#include "mermaid/sync/sync.h"

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"
#include "mermaid/dsm/types.h"

namespace mermaid::sync {

namespace {

// (origin, release_seq) pairs remembered for release idempotence.
constexpr std::size_t kMaxSeenReleases = 8192;
// Write notices retained for late acquirers; a client whose cursor falls
// off the front gets the reset flag and conservatively invalidates.
constexpr std::size_t kNoticeLogCapacity = 8192;

}  // namespace

SyncServer::SyncServer(sim::Runtime& rt) : rt_(rt) {}

void SyncServer::Attach(net::Endpoint& ep) {
  ep.SetHandler(dsm::kOpSync,
                [this](net::RequestContext ctx) { Handle(std::move(ctx)); });
}

void SyncServer::Wake(Waiter& w) {
  if (!w.remote.has_value()) {
    w.local.Send(true);
    return;
  }
  if (!rc_ || !w.acquire) {
    w.remote->Reply({});
    return;
  }
  // Acquire reply: every notice recorded since the client's cursor — built
  // at wake time, so a P that parked through several releases returns with
  // all of them.
  std::vector<WriteNotice> notices;
  bool reset = false;
  const std::uint64_t latest = NoticesSince(w.last_seen, &notices, &reset);
  base::WireWriter wr;
  wr.U64(latest);
  wr.U8(reset ? 1 : 0);
  wr.U16(static_cast<std::uint16_t>(notices.size()));
  for (const auto& n : notices) {
    wr.U32(n.page);
    wr.U64(n.version);
    wr.U16(n.origin);
  }
  w.remote->Reply(std::move(wr).Take());
}

void SyncServer::RecordNotices(net::HostId origin, std::uint64_t release_seq,
                               const std::vector<WriteNotice>& notices) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!seen_releases_.insert({origin, release_seq}).second) {
    stats_.Inc("sync.rc_dup_releases");
    return;
  }
  seen_release_order_.emplace_back(origin, release_seq);
  while (seen_release_order_.size() > kMaxSeenReleases) {
    seen_releases_.erase(seen_release_order_.front());
    seen_release_order_.pop_front();
  }
  for (const auto& n : notices) {
    if (notice_log_.size() >= kNoticeLogCapacity) {
      notice_log_.pop_front();
      stats_.Inc("sync.rc_notice_log_truncated");
    }
    notice_log_.push_back(n);
    ++next_notice_seq_;
  }
  if (!notices.empty()) {
    stats_.Inc("sync.rc_notices_recorded",
               static_cast<std::int64_t>(notices.size()));
  }
}

std::uint64_t SyncServer::NoticesSince(std::uint64_t last_seen,
                                       std::vector<WriteNotice>* out,
                                       bool* reset) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t first = next_notice_seq_ - notice_log_.size();
  if (last_seen < first) {
    *reset = true;
    last_seen = first;
  }
  for (std::uint64_t s = last_seen; s < next_notice_seq_; ++s) {
    out->push_back(notice_log_[static_cast<std::size_t>(s - first)]);
  }
  return next_notice_seq_;
}

void SyncServer::Handle(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const std::uint8_t subop = r.U8();
  const SyncId id = r.U64();
  const std::int64_t arg = r.I64();
  if (!r.ok()) return;

  Waiter self;
  self.origin = ctx.origin();
  if (rc_) {
    // Release block (present on every RC client's request): cursor, release
    // seq, and the notices of this release. Recorded before ApplyLocked so
    // any waiter this op wakes sees them in its acquire reply.
    const std::uint64_t last_seen = r.U64();
    const std::uint64_t release_seq = r.U64();
    const std::uint16_t n = r.U16();
    std::vector<WriteNotice> notices;
    notices.reserve(n);
    for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
      WriteNotice wn;
      wn.page = r.U32();
      wn.version = r.U64();
      wn.origin = r.U16();
      notices.push_back(wn);
    }
    if (!r.ok()) return;
    self.last_seen = last_seen;
    self.acquire =
        subop == kSemP || subop == kEventWait || subop == kBarrier;
    RecordNotices(self.origin, release_seq, notices);
  }
  self.remote = std::move(ctx);
  std::vector<Waiter> release;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ApplyLocked(subop, id, arg, std::move(self), &release);
  }
  for (auto& w : release) Wake(w);
}

// Contract: if the issuing party proceeds immediately, ApplyLocked pushes
// `self` onto `release` (so it is woken/replied like any other waiter) and
// returns true; if the party must wait, `self` is parked inside the state
// and the function returns false.
bool SyncServer::ApplyLocked(std::uint8_t subop, SyncId id, std::int64_t arg,
                             Waiter&& self, std::vector<Waiter>* release) {
  switch (subop) {
    case kSemInit: {
      Sem& s = sems_[id];
      s.count = arg;
      MERMAID_CHECK_MSG(s.waiters.empty(),
                        "semaphore re-initialized while threads wait on it");
      release->push_back(std::move(self));
      return true;
    }
    case kSemP: {
      Sem& s = sems_[id];
      if (s.count > 0) {
        --s.count;
        s.holders.insert(self.origin);
        release->push_back(std::move(self));
        return true;
      }
      s.waiters.push_back(std::move(self));
      return false;
    }
    case kSemV: {
      Sem& s = sems_[id];
      // A V normally releases the issuer's own hold; when used as a pure
      // signal (no prior P from this host) there is no hold to clear.
      auto hold = s.holders.find(self.origin);
      if (hold != s.holders.end()) s.holders.erase(hold);
      if (!s.waiters.empty()) {
        s.holders.insert(s.waiters.front().origin);
        release->push_back(std::move(s.waiters.front()));
        s.waiters.pop_front();
      } else {
        ++s.count;
      }
      release->push_back(std::move(self));
      return true;
    }
    case kEventSet: {
      Event& e = events_[id];
      e.set = true;
      for (auto& w : e.waiters) release->push_back(std::move(w));
      e.waiters.clear();
      release->push_back(std::move(self));
      return true;
    }
    case kEventClear: {
      events_[id].set = false;
      release->push_back(std::move(self));
      return true;
    }
    case kEventWait: {
      Event& e = events_[id];
      if (e.set) {
        release->push_back(std::move(self));
        return true;
      }
      e.waiters.push_back(std::move(self));
      return false;
    }
    case kBarrier: {
      Barrier& b = barriers_[id];
      b.waiters.push_back(std::move(self));
      if (static_cast<std::int64_t>(b.waiters.size()) >= arg) {
        for (auto& w : b.waiters) release->push_back(std::move(w));
        b.waiters.clear();
        return true;
      }
      return false;
    }
    default:
      MERMAID_CHECK_MSG(false, "unknown sync subop");
  }
  return false;
}

// Local-path implementation: run the op against the server state directly;
// if parked, block on the local grant channel.
#define MERMAID_SYNC_LOCAL(subop_, id_, arg_)                             \
  do {                                                                    \
    Waiter self;                                                          \
    self.local = sim::Chan<bool>(rt_);                                    \
    sim::Chan<bool> wait_chan = self.local;                               \
    std::vector<Waiter> release;                                          \
    bool proceed;                                                         \
    {                                                                     \
      std::lock_guard<std::mutex> lk(mu_);                                \
      proceed = ApplyLocked((subop_), (id_), (arg_), std::move(self),     \
                            &release);                                    \
    }                                                                     \
    for (auto& w : release) Wake(w);                                      \
    if (!proceed) wait_chan.Recv();                                       \
  } while (false)

void SyncServer::LocalSemInit(SyncId id, std::int64_t value) {
  MERMAID_SYNC_LOCAL(kSemInit, id, value);
}
void SyncServer::LocalP(SyncId id) { MERMAID_SYNC_LOCAL(kSemP, id, 0); }
void SyncServer::LocalV(SyncId id) { MERMAID_SYNC_LOCAL(kSemV, id, 0); }
void SyncServer::LocalEventSet(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventSet, id, 0);
}
void SyncServer::LocalEventClear(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventClear, id, 0);
}
void SyncServer::LocalEventWait(SyncId id) {
  MERMAID_SYNC_LOCAL(kEventWait, id, 0);
}
void SyncServer::LocalBarrier(SyncId id, std::int64_t parties) {
  MERMAID_SYNC_LOCAL(kBarrier, id, parties);
}

#undef MERMAID_SYNC_LOCAL

void SyncServer::BreakHost(net::HostId h) {
  std::vector<Waiter> release;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, s] : sems_) {
      // Ghost waiters go first, so a force-released grant can never be
      // consumed by a request whose issuer no longer exists.
      const auto dropped = std::erase_if(
          s.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
      auto broken = s.holders.count(h);
      if (broken == 0) continue;
      s.holders.erase(h);
      // Each broken hold is a forced V: hand the grant to the next live
      // waiter, or return it to the count.
      while (broken-- > 0) {
        stats_.Inc("sync.broken_locks");
        if (!s.waiters.empty()) {
          s.holders.insert(s.waiters.front().origin);
          release.push_back(std::move(s.waiters.front()));
          s.waiters.pop_front();
        } else {
          ++s.count;
        }
      }
    }
    for (auto& [id, e] : events_) {
      const auto dropped = std::erase_if(
          e.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
    }
    // A dead barrier arrival is forgotten: the restarted host's thread must
    // arrive again for the barrier to complete.
    for (auto& [id, b] : barriers_) {
      const auto dropped = std::erase_if(
          b.waiters, [h](const Waiter& w) { return w.origin == h; });
      if (dropped != 0) {
        stats_.Inc("sync.dead_waiters_dropped",
                   static_cast<std::int64_t>(dropped));
      }
    }
  }
  for (auto& w : release) Wake(w);
}

Client::Client(net::Endpoint* ep, net::HostId server_host, SyncServer* local)
    : ep_(ep), server_host_(server_host), local_(local) {}

void Client::Trace(std::uint8_t subop, SyncId id) {
  if (tracer_ == nullptr || !tracer_->enabled() || ep_ == nullptr) return;
  tracer_->Record(trace::EventKind::kSyncOp, ep_->self(),
                  ep_->runtime().Now(), trace::kNoPage, id, 0, subop,
                  server_host_);
}

void Client::Op(std::uint8_t subop, SyncId id, std::int64_t arg) {
  Trace(subop, id);
  const bool rc = static_cast<bool>(rc_flush_);
  const bool acquire = subop == SyncServer::kSemP ||
                       subop == SyncServer::kEventWait ||
                       subop == SyncServer::kBarrier;
  std::vector<WriteNotice> notices;
  std::uint64_t release_seq = 0;
  if (rc) {
    // Every sync op is a release point: the host's deferred writes must be
    // visible at their homes before any party this op unblocks acquires.
    notices = rc_flush_();
    release_seq = ++release_seq_;
  }
  if (local_ != nullptr) {
    if (rc) local_->RecordNotices(ep_->self(), release_seq, notices);
    switch (subop) {
      case SyncServer::kSemInit: local_->LocalSemInit(id, arg); break;
      case SyncServer::kSemP: local_->LocalP(id); break;
      case SyncServer::kSemV: local_->LocalV(id); break;
      case SyncServer::kEventSet: local_->LocalEventSet(id); break;
      case SyncServer::kEventClear: local_->LocalEventClear(id); break;
      case SyncServer::kEventWait: local_->LocalEventWait(id); break;
      case SyncServer::kBarrier: local_->LocalBarrier(id, arg); break;
      default: MERMAID_CHECK_MSG(false, "unknown sync subop");
    }
    if (rc && acquire) {
      // Read the log only after the wait: a waiter woken by a V must see
      // the releaser's notices, which were recorded before the wake.
      std::vector<WriteNotice> pending;
      bool reset = false;
      last_seen_ = local_->NoticesSince(last_seen_, &pending, &reset);
      rc_apply_(pending, reset);
    }
    return;
  }
  Issue(subop, id, arg, rc && acquire, release_seq, notices);
}

void Client::Issue(std::uint8_t subop, SyncId id, std::int64_t arg,
                   bool acquire, std::uint64_t release_seq,
                   const std::vector<WriteNotice>& notices) {
  MERMAID_CHECK(ep_ != nullptr);
  net::Endpoint::CallOpts opts;
  opts.timeout = Milliseconds(500);
  opts.max_attempts = 1 << 20;  // a parked P may wait arbitrarily long
  base::WireWriter w;
  w.U8(subop);
  w.U64(id);
  w.I64(arg);
  if (rc_flush_) {
    MERMAID_CHECK(notices.size() <= 0xFFFF);
    w.U64(last_seen_);
    w.U64(release_seq);
    w.U16(static_cast<std::uint16_t>(notices.size()));
    for (const auto& n : notices) {
      w.U32(n.page);
      w.U64(n.version);
      w.U16(n.origin);
    }
  }
  const std::uint32_t inc0 = ep_->incarnation();
  auto r = ep_->CallWithStatus(server_host_, dsm::kOpSync,
                               std::move(w).Take(),
                               net::MsgKind::kControl, opts);
  // A call fenced by this host's own crash-with-amnesia is abandoned, not
  // an error: the issuing life is gone, and the server either applied the
  // op before the crash or broke the hold when the crash was reported.
  if (r.status == net::CallStatus::kTimedOut && ep_->incarnation() != inc0) {
    return;
  }
  // Shutdown unwinds silently; anything else losing a sync op would corrupt
  // the application's synchronization invariants, so fail loudly.
  MERMAID_CHECK_MSG(r.status != net::CallStatus::kTimedOut,
                    "sync operation timed out: sync server unreachable");
  if (r.ok() && acquire) {
    const std::vector<std::uint8_t> body = r.body.ToVector();
    base::WireReader rr(body);
    const std::uint64_t latest = rr.U64();
    const bool reset = rr.U8() != 0;
    const std::uint16_t n = rr.U16();
    std::vector<WriteNotice> pending;
    pending.reserve(n);
    for (std::uint16_t i = 0; i < n && rr.ok(); ++i) {
      WriteNotice wn;
      wn.page = rr.U32();
      wn.version = rr.U64();
      wn.origin = rr.U16();
      pending.push_back(wn);
    }
    MERMAID_CHECK_MSG(rr.ok(), "malformed sync acquire reply");
    // A deduplicated retransmit replays the original reply; the cursor only
    // ever moves forward.
    if (latest > last_seen_) last_seen_ = latest;
    rc_apply_(pending, reset);
  }
}

void Client::SemInit(SyncId id, std::int64_t value) {
  Op(SyncServer::kSemInit, id, value);
}
void Client::P(SyncId id) { Op(SyncServer::kSemP, id, 0); }
void Client::V(SyncId id) { Op(SyncServer::kSemV, id, 0); }
void Client::EventSet(SyncId id) { Op(SyncServer::kEventSet, id, 0); }
void Client::EventClear(SyncId id) { Op(SyncServer::kEventClear, id, 0); }
void Client::EventWait(SyncId id) { Op(SyncServer::kEventWait, id, 0); }
void Client::Barrier(SyncId id, std::int64_t parties) {
  Op(SyncServer::kBarrier, id, parties);
}

}  // namespace mermaid::sync
