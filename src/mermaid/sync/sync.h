// Distributed synchronization (§2.2).
//
// "In practice [synchronizing through atomic instructions on shared memory]
// would lead to repeated movement of (large) DSM pages between the hosts
// involved. We therefore implemented a separate distributed synchronization
// facility that provides for P and V operations and events more
// efficiently."
//
// One host runs the synchronization server; clients issue P/V, event and
// barrier operations through the request-response protocol. The server is
// fully event-driven: a P on a taken semaphore parks the request context
// (or, for a thread on the server's own host, a grant channel) until the
// matching V arrives, so the protocol daemon never blocks. Duplicate
// suppression in the endpoint makes retransmitted P's idempotent.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "mermaid/base/stats.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/trace/trace.h"

namespace mermaid::sync {

using SyncId = std::uint64_t;

// Lives on the server host; registers its handler on that host's endpoint
// (call Attach before the endpoint starts).
class SyncServer {
 public:
  explicit SyncServer(sim::Runtime& rt);

  // Registers the kOpSync handler on `ep` (the server host's endpoint).
  void Attach(net::Endpoint& ep);

  // Local entry points for threads on the server host (no network hop).
  void LocalSemInit(SyncId id, std::int64_t value);
  void LocalP(SyncId id);
  void LocalV(SyncId id);
  void LocalEventSet(SyncId id);
  void LocalEventClear(SyncId id);
  void LocalEventWait(SyncId id);
  void LocalBarrier(SyncId id, std::int64_t parties);

  // Crash-stop repair: host `h` died with amnesia. Every semaphore hold it
  // acquired is released (the grant passes to the next live waiter —
  // sync.broken_locks), and its parked waiters are discarded so a grant is
  // never consumed by a ghost (sync.dead_waiters_dropped). Threads on the
  // server host itself are never broken: the server host is assumed
  // non-crashing (see DESIGN.md).
  void BreakHost(net::HostId h);

  base::StatsRegistry& stats() { return stats_; }

 private:
  friend class Client;

  enum SubOp : std::uint8_t {
    kSemInit = 1,
    kSemP = 2,
    kSemV = 3,
    kEventSet = 4,
    kEventClear = 5,
    kEventWait = 6,
    kBarrier = 7,
  };

  // Origin marker for threads running on the server host itself (they reach
  // the server without a request context and are assumed non-crashing).
  static constexpr net::HostId kLocalOrigin = 0xFFFF;

  // A parked waiter: a remote request context or a local grant channel.
  struct Waiter {
    std::optional<net::RequestContext> remote;
    sim::Chan<bool> local;
    net::HostId origin = kLocalOrigin;
  };

  struct Sem {
    std::int64_t count = 0;
    std::deque<Waiter> waiters;
    // Hosts currently holding a grant (one entry per outstanding P). V from
    // a host releases one of its own holds first; BreakHost force-releases
    // every hold of the dead host.
    std::multiset<net::HostId> holders;
  };
  struct Event {
    bool set = false;
    std::vector<Waiter> waiters;
  };
  struct Barrier {
    std::vector<Waiter> waiters;
  };

  void Handle(net::RequestContext ctx);
  // Applies one op; fills `release` with waiters to wake and returns whether
  // the issuing party proceeds immediately.
  bool ApplyLocked(std::uint8_t subop, SyncId id, std::int64_t arg,
                   Waiter&& self, std::vector<Waiter>* release);
  static void Wake(Waiter& w);

  sim::Runtime& rt_;
  std::mutex mu_;
  std::map<SyncId, Sem> sems_;
  std::map<SyncId, Event> events_;
  std::map<SyncId, Barrier> barriers_;
  base::StatsRegistry stats_;
};

// Per-host client handle. For threads on the server host it short-circuits
// to direct server calls; otherwise operations are protocol Calls with a
// short retransmit timeout and effectively unlimited attempts (a parked P
// legitimately stays unanswered for a long time; duplicates are suppressed).
class Client {
 public:
  Client() = default;
  Client(net::Endpoint* ep, net::HostId server_host, SyncServer* local);

  void SemInit(SyncId id, std::int64_t value);
  void P(SyncId id);
  void V(SyncId id);
  void EventSet(SyncId id);
  void EventClear(SyncId id);
  void EventWait(SyncId id);
  // Blocks until `parties` threads (across all hosts) have arrived.
  void Barrier(SyncId id, std::int64_t parties);

  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  void Issue(std::uint8_t subop, SyncId id, std::int64_t arg);
  // Records a kSyncOp event (a0 = subop) when tracing is enabled.
  void Trace(std::uint8_t subop, SyncId id);

  net::Endpoint* ep_ = nullptr;
  net::HostId server_host_ = 0;
  SyncServer* local_ = nullptr;  // non-null when this host runs the server
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace mermaid::sync
