// Distributed synchronization (§2.2).
//
// "In practice [synchronizing through atomic instructions on shared memory]
// would lead to repeated movement of (large) DSM pages between the hosts
// involved. We therefore implemented a separate distributed synchronization
// facility that provides for P and V operations and events more
// efficiently."
//
// One host runs the synchronization server; clients issue P/V, event and
// barrier operations through the request-response protocol. The server is
// fully event-driven: a P on a taken semaphore parks the request context
// (or, for a thread on the server's own host, a grant channel) until the
// matching V arrives, so the protocol daemon never blocks. Duplicate
// suppression in the endpoint makes retransmitted P's idempotent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "mermaid/base/stats.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/trace/trace.h"

namespace mermaid::sync {

using SyncId = std::uint64_t;

// One release-consistency write notice: host `origin` flushed its deferred
// writes on `page`, committing it at `version`. Notices ride the existing
// kOpSync wire — appended to requests at release points, returned on
// acquire replies — only when SystemConfig::release_consistency is on, so
// the knobs-off sync wire format is unchanged.
struct WriteNotice {
  std::uint32_t page = 0;
  std::uint64_t version = 0;
  std::uint16_t origin = 0;
};

// Lives on the server host; registers its handler on that host's endpoint
// (call Attach before the endpoint starts).
class SyncServer {
 public:
  explicit SyncServer(sim::Runtime& rt);

  // Registers the kOpSync handler on `ep` (the server host's endpoint).
  void Attach(net::Endpoint& ep);

  // Local entry points for threads on the server host (no network hop).
  void LocalSemInit(SyncId id, std::int64_t value);
  void LocalP(SyncId id);
  void LocalV(SyncId id);
  void LocalEventSet(SyncId id);
  void LocalEventClear(SyncId id);
  void LocalEventWait(SyncId id);
  void LocalBarrier(SyncId id, std::int64_t parties);

  // Crash-stop repair: host `h` died with amnesia. Every semaphore hold it
  // acquired is released (the grant passes to the next live waiter —
  // sync.broken_locks), and its parked waiters are discarded so a grant is
  // never consumed by a ghost (sync.dead_waiters_dropped). Threads on the
  // server host itself are never broken: the server host is assumed
  // non-crashing (see DESIGN.md).
  void BreakHost(net::HostId h);

  // Release consistency: when on, every kOpSync request carries a release
  // block (last-seen notice cursor, per-client release seq, write notices)
  // and every acquiring reply (P / EventWait / Barrier) carries the notices
  // recorded since that client last looked. Must match the clients'
  // SetRcHooks state — both are wired from SystemConfig::release_consistency.
  void SetReleaseConsistency(bool on) { rc_ = on; }

  // Appends one release's notices to the global notice log. Idempotent per
  // (origin, release_seq): the endpoint's dedup suppresses same-req-id
  // retransmits, but a release re-issued as a fresh call after a timeout
  // arrives with a new req_id and must still be applied exactly once.
  void RecordNotices(net::HostId origin, std::uint64_t release_seq,
                     const std::vector<WriteNotice>& notices);
  // Copies every notice recorded after the `last_seen` cursor into *out
  // (oldest first) and returns the new cursor. Sets *reset when the bounded
  // log was truncated past last_seen — the caller missed notices and must
  // treat every non-twinned copy as potentially stale.
  std::uint64_t NoticesSince(std::uint64_t last_seen,
                             std::vector<WriteNotice>* out, bool* reset);

  base::StatsRegistry& stats() { return stats_; }

 private:
  friend class Client;

  enum SubOp : std::uint8_t {
    kSemInit = 1,
    kSemP = 2,
    kSemV = 3,
    kEventSet = 4,
    kEventClear = 5,
    kEventWait = 6,
    kBarrier = 7,
  };

  // Origin marker for threads running on the server host itself (they reach
  // the server without a request context and are assumed non-crashing).
  static constexpr net::HostId kLocalOrigin = 0xFFFF;

  // A parked waiter: a remote request context or a local grant channel.
  struct Waiter {
    std::optional<net::RequestContext> remote;
    sim::Chan<bool> local;
    net::HostId origin = kLocalOrigin;
    // Release consistency: the issuing client's notice cursor and whether
    // the op is an acquire point. The acquire reply is built at wake time,
    // so it carries every notice recorded while the waiter was parked.
    std::uint64_t last_seen = 0;
    bool acquire = false;
  };

  struct Sem {
    std::int64_t count = 0;
    std::deque<Waiter> waiters;
    // Hosts currently holding a grant (one entry per outstanding P). V from
    // a host releases one of its own holds first; BreakHost force-releases
    // every hold of the dead host.
    std::multiset<net::HostId> holders;
  };
  struct Event {
    bool set = false;
    std::vector<Waiter> waiters;
  };
  struct Barrier {
    std::vector<Waiter> waiters;
  };

  void Handle(net::RequestContext ctx);
  // Applies one op; fills `release` with waiters to wake and returns whether
  // the issuing party proceeds immediately.
  bool ApplyLocked(std::uint8_t subop, SyncId id, std::int64_t arg,
                   Waiter&& self, std::vector<Waiter>* release);
  // Wakes one waiter. A remote acquire waiter under release consistency
  // gets its notice-block reply built here (NoticesSince takes mu_; callers
  // must not hold it).
  void Wake(Waiter& w);

  sim::Runtime& rt_;
  std::mutex mu_;
  std::map<SyncId, Sem> sems_;
  std::map<SyncId, Event> events_;
  std::map<SyncId, Barrier> barriers_;
  // Release-consistency state (guarded by mu_): a bounded global notice
  // log — notice seq s lives at log index s - (next_notice_seq_ - size) —
  // plus the (origin, release_seq) pairs already applied (bounded FIFO).
  bool rc_ = false;
  std::deque<WriteNotice> notice_log_;
  std::uint64_t next_notice_seq_ = 0;
  std::set<std::pair<net::HostId, std::uint64_t>> seen_releases_;
  std::deque<std::pair<net::HostId, std::uint64_t>> seen_release_order_;
  base::StatsRegistry stats_;
};

// Per-host client handle. For threads on the server host it short-circuits
// to direct server calls; otherwise operations are protocol Calls with a
// short retransmit timeout and effectively unlimited attempts (a parked P
// legitimately stays unanswered for a long time; duplicates are suppressed).
class Client {
 public:
  Client() = default;
  Client(net::Endpoint* ep, net::HostId server_host, SyncServer* local);

  void SemInit(SyncId id, std::int64_t value);
  void P(SyncId id);
  void V(SyncId id);
  void EventSet(SyncId id);
  void EventClear(SyncId id);
  void EventWait(SyncId id);
  // Blocks until `parties` threads (across all hosts) have arrived.
  void Barrier(SyncId id, std::int64_t parties);

  void SetTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Release-consistency hooks (SystemConfig::release_consistency). `flush`
  // runs before every sync op — every sync operation is a release point —
  // flushing the host's twins to their homes and returning the write
  // notices to publish; `apply` runs after every acquiring op (P /
  // EventWait / Barrier) with the notices recorded since this client last
  // looked, plus a reset flag when the server's bounded log was truncated
  // past this client's cursor. Setting the hooks enables the release block
  // on this client's sync wire; the server must have
  // SetReleaseConsistency(true).
  using RcFlushFn = std::function<std::vector<WriteNotice>()>;
  using RcApplyFn =
      std::function<void(const std::vector<WriteNotice>&, bool reset)>;
  void SetRcHooks(RcFlushFn flush, RcApplyFn apply) {
    rc_flush_ = std::move(flush);
    rc_apply_ = std::move(apply);
  }

 private:
  // Common path for every public op: trace, release-flush, dispatch
  // (local short-circuit or protocol Call), acquire-apply.
  void Op(std::uint8_t subop, SyncId id, std::int64_t arg);
  void Issue(std::uint8_t subop, SyncId id, std::int64_t arg, bool acquire,
             std::uint64_t release_seq,
             const std::vector<WriteNotice>& notices);
  // Records a kSyncOp event (a0 = subop) when tracing is enabled.
  void Trace(std::uint8_t subop, SyncId id);

  net::Endpoint* ep_ = nullptr;
  net::HostId server_host_ = 0;
  SyncServer* local_ = nullptr;  // non-null when this host runs the server
  trace::Tracer* tracer_ = nullptr;
  RcFlushFn rc_flush_;
  RcApplyFn rc_apply_;
  // Notice cursor and release sequence. Shared by every thread on the host;
  // per-release dedup at the server is keyed (host, release_seq), which the
  // seen-set handles even when concurrent threads' releases arrive out of
  // order.
  std::uint64_t last_seen_ = 0;
  std::uint64_t release_seq_ = 0;
};

}  // namespace mermaid::sync
