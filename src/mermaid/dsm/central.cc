#include "mermaid/dsm/central.h"

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"

namespace mermaid::dsm {

CentralServer::CentralServer(sim::Runtime& rt,
                             const arch::ArchProfile* profile,
                             std::uint64_t region_bytes)
    : rt_(rt), profile_(profile), mem_(region_bytes, 0) {
  MERMAID_CHECK(profile != nullptr);
}

void CentralServer::Attach(net::Endpoint& ep) {
  ep.SetHandler(kOpCentralRead,
                [this](net::RequestContext ctx) { HandleRead(std::move(ctx)); });
  ep.SetHandler(kOpCentralWrite, [this](net::RequestContext ctx) {
    HandleWrite(std::move(ctx));
  });
}

void CentralServer::ReadBytes(GlobalAddr addr, std::span<std::uint8_t> out) {
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK(addr + out.size() <= mem_.size());
  std::copy_n(mem_.begin() + addr, out.size(), out.begin());
}

void CentralServer::WriteBytes(GlobalAddr addr,
                               std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK(addr + data.size() <= mem_.size());
  std::copy(data.begin(), data.end(), mem_.begin() + addr);
}

void CentralServer::HandleRead(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const GlobalAddr addr = r.U64();
  const std::uint32_t size = r.U32();
  if (!r.ok() || addr + size > mem_.size()) {
    stats_.Inc("central.malformed");
    return;
  }
  // Half the request-processing cost on each side of the operation.
  rt_.Delay(profile_->server_op_cost / 2);
  std::vector<std::uint8_t> out(size);
  ReadBytes(addr, out);
  stats_.Inc("central.reads");
  ctx.Reply(std::move(out));
}

void CentralServer::HandleWrite(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const GlobalAddr addr = r.U64();
  auto data = r.Rest();
  if (!r.ok() || addr + data.size() > mem_.size()) {
    stats_.Inc("central.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost / 2);
  WriteBytes(addr, std::span<const std::uint8_t>(data.data(), data.size()));
  stats_.Inc("central.writes");
  ctx.Reply({});
}

CentralClient::CentralClient(net::Endpoint* ep, net::HostId server_host,
                             const arch::ArchProfile* server_profile,
                             CentralServer* local)
    : ep_(ep),
      server_host_(server_host),
      server_profile_(server_profile),
      local_(local) {}

namespace {

// The central server is the only copy of the data: a lost operation cannot
// be recovered locally, so calls retry generously and fail loudly when the
// server stays unreachable.
net::Endpoint::CallOpts CentralCallOpts() {
  net::Endpoint::CallOpts opts;
  opts.timeout = Milliseconds(400);
  opts.max_attempts = 64;
  return opts;
}

}  // namespace

void CentralClient::ReadRaw(GlobalAddr addr, std::span<std::uint8_t> out) {
  if (local_ != nullptr) {
    local_->ReadBytes(addr, out);
    return;
  }
  base::WireWriter w;
  w.U64(addr);
  w.U32(static_cast<std::uint32_t>(out.size()));
  auto reply = ep_->CallWithStatus(server_host_, kOpCentralRead,
                                   std::move(w).Take(),
                                   net::MsgKind::kControl, CentralCallOpts());
  if (reply.status == net::CallStatus::kShutdown) return;
  MERMAID_CHECK_MSG(reply.ok(), "central-server read timed out");
  MERMAID_CHECK(reply.body.size() == out.size());
  reply.body.CopyTo(out);
}

void CentralClient::WriteRaw(GlobalAddr addr,
                             std::span<const std::uint8_t> data) {
  if (local_ != nullptr) {
    local_->WriteBytes(addr, data);
    return;
  }
  base::WireWriter w;
  w.U64(addr);
  net::Body body(std::move(w).Take(), base::Buffer::CopyOf(data));
  auto reply =
      ep_->CallWithStatus(server_host_, kOpCentralWrite, std::move(body),
                          net::MsgKind::kControl, CentralCallOpts());
  MERMAID_CHECK_MSG(reply.status != net::CallStatus::kTimedOut,
                    "central-server write timed out");
}

}  // namespace mermaid::dsm
