#include "mermaid/dsm/page_table.h"

#include "mermaid/base/check.h"

namespace mermaid::dsm {

PageTable::PageTable(PageNum num_pages, net::HostId self,
                     std::uint16_t num_hosts)
    : self_(self),
      num_hosts_(num_hosts),
      local_(num_pages),
      hints_(num_pages, kNoHint),
      hint_inc_(num_pages, 0) {
  MERMAID_CHECK(num_hosts > 0);
  // Pages managed here: ceil over the strided assignment.
  const PageNum mine =
      (num_pages + num_hosts - 1 - (self % num_hosts)) / num_hosts;
  managed_.resize(mine);
  // Initially the manager host owns every page it manages, holding the
  // zero-filled read copy.
  for (PageNum i = 0; i < mine; ++i) {
    ManagerEntry& m = managed_[i];
    m.owner = self_;
    m.copyset.insert(self_);
  }
  for (PageNum p = 0; p < num_pages; ++p) {
    if (ManagerOf(p) == self_) {
      local_[p].access = Access::kRead;
      local_[p].owned = true;
    }
  }
}

LocalPageEntry& PageTable::Local(PageNum p) {
  MERMAID_CHECK(p < local_.size());
  return local_[p];
}

const LocalPageEntry& PageTable::Local(PageNum p) const {
  MERMAID_CHECK(p < local_.size());
  return local_[p];
}

net::HostId PageTable::ManagerOf(PageNum p) const {
  return static_cast<net::HostId>(p % num_hosts_);
}

bool PageTable::ManagedHere(PageNum p) const { return ManagerOf(p) == self_; }

ManagerEntry& PageTable::Manager(PageNum p) {
  MERMAID_CHECK(ManagedHere(p));
  const PageNum idx = p / num_hosts_;
  MERMAID_CHECK(idx < managed_.size());
  return managed_[idx];
}

}  // namespace mermaid::dsm
