#include "mermaid/dsm/page_table.h"

#include "mermaid/base/check.h"

namespace mermaid::dsm {

PageTable::PageTable(PageNum num_pages)
    : local_(num_pages), hints_(num_pages, kNoHint), hint_inc_(num_pages, 0) {}

LocalPageEntry& PageTable::Local(PageNum p) {
  MERMAID_CHECK(p < local_.size());
  return local_[p];
}

const LocalPageEntry& PageTable::Local(PageNum p) const {
  MERMAID_CHECK(p < local_.size());
  return local_[p];
}

}  // namespace mermaid::dsm
