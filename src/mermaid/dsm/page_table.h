// Per-host DSM page table.
//
// Each host keeps a LocalPageEntry per DSM page (its own copy's state) plus
// the probable-owner hint array. Matching the paper: "It uses a page table
// for the shared address space to maintain data consistency". The
// manager-side state (ManagerEntry, declared here because grants reference
// the same transfer types) is held by the Directory, which also decides
// which host manages which page.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "mermaid/arch/type_registry.h"
#include "mermaid/dsm/types.h"
#include "mermaid/net/network.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/runtime.h"

namespace mermaid::dsm {

// This host's view of one DSM page.
struct LocalPageEntry {
  Access access = Access::kNone;
  bool owned = false;
  std::uint64_t version = 0;
  arch::TypeId type = arch::TypeRegistry::kChar;
  std::uint32_t alloc_bytes = 0;  // allocated extent (partial transfer)
  // Set when this host relinquished the page in a write transfer that has
  // not been confirmed: the bytes in memory are still the pre-transfer image
  // at `version`, legal to serve again if the manager revokes that grant and
  // names this host as the data source once more. Cleared by any install,
  // upgrade, or invalidation.
  bool retained = false;
};

// A transfer request waiting its turn at the manager: either a remote
// request (reply via the protocol) or a fault by a thread on the manager
// host itself (grant via a channel).
struct ManagerGrant {
  net::HostId owner = 0;
  std::uint64_t op_id = 0;
  std::uint64_t new_version = 0;
  std::vector<net::HostId> to_invalidate;
  bool requester_has_copy = false;
  arch::TypeId type = arch::TypeRegistry::kChar;
  std::uint32_t alloc_bytes = 0;
};

struct PendingTransfer {
  bool is_write = false;
  // The requester's own claim of holding a valid copy. The grant's
  // "no data needed" decision requires this AND copyset membership: after a
  // revoked write grant the copyset can retain phantom members whose copies
  // the vanished writer already invalidated.
  bool has_copy = false;
  net::HostId requester = 0;
  std::optional<net::RequestContext> remote;   // remote requester
  sim::Chan<ManagerGrant> local_grant;         // local requester
};

// Manager-side state for one managed page. The manager is the authority for
// the page's type and allocated extent (set by the allocation worker before
// any application can learn the addresses), so grants always carry current
// values even if the owner's copy predates an extent growth.
struct ManagerEntry {
  net::HostId owner = 0;
  std::set<net::HostId> copyset;  // hosts with a valid copy (incl. owner)
  bool busy = false;
  std::uint64_t version = 0;
  arch::TypeId type = arch::TypeRegistry::kChar;
  std::uint32_t alloc_bytes = 0;
  // The in-flight transfer, for confirm matching and probe recovery.
  std::uint64_t busy_op_id = 0;
  net::HostId busy_requester = 0;
  bool busy_is_write = false;
  std::uint64_t busy_new_version = 0;
  SimTime busy_since = 0;
  std::deque<PendingTransfer> pending;
  // Dynamic directory (SystemConfig::DirectoryMode::kDynamic): set while a
  // kOpMgrMigrate handshake for this page is in flight. Treated like busy by
  // every grant path — no transfer may start under a moving manager entry.
  bool migrating = false;
  // Hot-page detector (hot_page_migration): Boyer–Moore majority vote over
  // the remote writers that commit against this entry. When the candidate's
  // score reaches hot_page_threshold, management migrates to it.
  net::HostId hot_candidate = 0;
  int hot_score = 0;
  std::uint32_t hot_total = 0;  // votes since the entry last migrated/reset
};

class PageTable {
 public:
  explicit PageTable(PageNum num_pages);

  LocalPageEntry& Local(PageNum p);
  const LocalPageEntry& Local(PageNum p) const;

  // Probable-owner hint: the last host observed to own page p (learned from
  // fetch replies and invalidation traffic; see SystemConfig::probable_owner).
  // kNoHint when nothing has been learned. Hints are advisory — a stale one
  // costs one extra forwarding hop, never correctness.
  static constexpr net::HostId kNoHint = 0xFFFF;
  net::HostId HintOf(PageNum p) const {
    return p < hints_.size() ? hints_[p] : kNoHint;
  }
  // `owner_inc` is the hinted owner's incarnation at learn time (always 0
  // unless crash recovery is on): a hint learned from a previous life of the
  // owner is fenced by the requester instead of being chased.
  void SetHint(PageNum p, net::HostId owner, std::uint32_t owner_inc = 0) {
    if (p < hints_.size()) {
      hints_[p] = owner;
      hint_inc_[p] = owner_inc;
    }
  }
  std::uint32_t HintIncOf(PageNum p) const {
    return p < hint_inc_.size() ? hint_inc_[p] : 0;
  }
  // Drops every hint naming host `h` (returns how many were cleared). Called
  // when `h` is observed to have reincarnated: its new life has amnesia, so
  // chasing a hint at it would only burn a retry round per repeat fault.
  std::size_t ClearHintsForHost(net::HostId h) {
    std::size_t cleared = 0;
    for (PageNum p = 0; p < hints_.size(); ++p) {
      if (hints_[p] == h) {
        hints_[p] = kNoHint;
        hint_inc_[p] = 0;
        ++cleared;
      }
    }
    return cleared;
  }

  // Crash-with-amnesia: forgets every local copy and every probable-owner
  // hint. The matching manager-side wipe lives in Directory::WipeForCrash.
  void WipeForCrash() {
    for (auto& e : local_) e = LocalPageEntry{};
    std::fill(hints_.begin(), hints_.end(), kNoHint);
    std::fill(hint_inc_.begin(), hint_inc_.end(), 0u);
  }

  PageNum num_pages() const { return static_cast<PageNum>(local_.size()); }

 private:
  std::vector<LocalPageEntry> local_;
  std::vector<net::HostId> hints_;     // probable owner per page (kNoHint)
  std::vector<std::uint32_t> hint_inc_;  // hinted owner's incarnation
};

}  // namespace mermaid::dsm
