#include "mermaid/dsm/allocator.h"

#include <bit>

#include "mermaid/base/check.h"

namespace mermaid::dsm {

Allocator::Allocator(const arch::TypeRegistry* registry,
                     std::uint64_t region_bytes, std::uint32_t page_bytes)
    : registry_(registry),
      region_bytes_(region_bytes),
      page_bytes_(page_bytes) {
  MERMAID_CHECK(registry != nullptr);
  MERMAID_CHECK(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0);
  MERMAID_CHECK(region_bytes % page_bytes == 0);
}

std::optional<Allocator::Result> Allocator::Alloc(arch::TypeId type,
                                                  std::uint64_t count) {
  if (!registry_->IsValid(type) || count == 0) return std::nullopt;
  // Element stride is the size rounded to a power of two, so that elements
  // never straddle a page boundary (pages are powers of two). The padding is
  // the fragmentation cost §2.3 acknowledges.
  const std::uint64_t elem = registry_->SizeOf(type);
  const std::uint64_t stride = std::bit_ceil(elem);
  if (stride > page_bytes_) return std::nullopt;  // multi-page elements: no

  const std::uint64_t bytes = count * stride;
  Result result;

  TypeRun* run = nullptr;
  auto it = open_runs_.find(type);
  if (it != open_runs_.end()) {
    const std::uint64_t run_end =
        (static_cast<std::uint64_t>(it->second.first_page) +
         it->second.page_count) *
        page_bytes_;
    const std::uint64_t next_addr =
        static_cast<std::uint64_t>(it->second.first_page) * page_bytes_ +
        it->second.used_in_run;
    if (run_end - next_addr >= bytes) run = &it->second;
  }
  if (run == nullptr) {
    // Open a fresh run of whole pages for this type.
    const PageNum pages_needed = static_cast<PageNum>(
        (bytes + page_bytes_ - 1) / page_bytes_);
    const std::uint64_t start =
        static_cast<std::uint64_t>(next_free_page_) * page_bytes_;
    if (start + static_cast<std::uint64_t>(pages_needed) * page_bytes_ >
        region_bytes_) {
      return std::nullopt;  // region exhausted
    }
    TypeRun fresh;
    fresh.first_page = next_free_page_;
    fresh.page_count = pages_needed;
    fresh.used_in_run = 0;
    next_free_page_ += pages_needed;
    run = &(open_runs_[type] = fresh);
  }

  const std::uint64_t base =
      static_cast<std::uint64_t>(run->first_page) * page_bytes_;
  result.addr = base + run->used_in_run;
  run->used_in_run += bytes;

  // Record per-page type and allocated extent over the newly covered range.
  const PageNum first = static_cast<PageNum>(result.addr / page_bytes_);
  const PageNum last =
      static_cast<PageNum>((result.addr + bytes - 1) / page_bytes_);
  for (PageNum p = first; p <= last; ++p) {
    PageInfo& info = pages_[p];
    info.type = type;
    const std::uint64_t page_start =
        static_cast<std::uint64_t>(p) * page_bytes_;
    const std::uint64_t end_in_page =
        std::min<std::uint64_t>(result.addr + bytes - page_start,
                                page_bytes_);
    if (end_in_page > info.alloc_bytes) {
      info.alloc_bytes = static_cast<std::uint32_t>(end_in_page);
      result.touched_pages.push_back(p);
    }
  }
  return result;
}

arch::TypeId Allocator::TypeOfPage(PageNum p) const {
  auto it = pages_.find(p);
  return it == pages_.end() ? arch::TypeRegistry::kChar : it->second.type;
}

std::uint32_t Allocator::AllocBytesOfPage(PageNum p) const {
  auto it = pages_.find(p);
  return it == pages_.end() ? 0 : it->second.alloc_bytes;
}

}  // namespace mermaid::dsm
