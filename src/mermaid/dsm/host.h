// Per-host DSM engine: Li's MRSW write-invalidate protocol with fixed
// distributed managers, extended for heterogeneity (Mermaid, §2).
//
// Role split, mirroring the paper:
//   - Fault path (application process): detects insufficient access on a
//     typed load/store, pays the Table-1 fault-handling cost, obtains a
//     transfer grant from the page's manager (a protocol Call, or a direct
//     state operation when the faulting host manages the page), fetches the
//     page from the owner, converts it if the owner's representation
//     differs, performs write invalidation by multicast, and confirms the
//     completed transfer to the manager.
//   - Manager role (fixed: page p is managed by host p mod N): knows owner
//     and copyset, serializes transfers per page (busy + pending queue, as
//     in Li's algorithm — the entry stays locked until the requester's
//     confirmation), and never blocks: remote requests are forwarded or
//     answered inline, local requests are granted through a channel.
//   - Owner role (request handler): serves page data (only the allocated
//     extent when partial transfer is on), downgrading itself on read
//     fetches and relinquishing on write fetches.
//
// Page-size policies (§2.4): the coherence unit is the DSM page; a fault on
// a host whose VM page is larger acquires every DSM page of the enclosing
// VM page (the "smallest page size" algorithm's grouped fill), and a host
// whose VM page is smaller gains all its VM pages when the single DSM page
// arrives (the "largest page size" algorithm's grouping).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/scalar.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/base/buffer.h"
#include "mermaid/base/stats.h"
#include "mermaid/dsm/directory.h"
#include "mermaid/dsm/page_table.h"
#include "mermaid/dsm/referee.h"
#include "mermaid/dsm/types.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/sync/sync.h"

namespace mermaid::dsm {

class Host {
 public:
  Host(sim::Runtime& rt, net::Network& net, const SystemConfig& cfg,
       const arch::TypeRegistry& registry, net::HostId self,
       const arch::ArchProfile* profile, std::uint16_t num_hosts,
       std::uint32_t page_bytes, CoherenceReferee* referee);

  // Registers protocol handlers and starts the receive daemon.
  void Start();

  // --- application-facing API (call from processes on this host) ---------

  // Typed access to shared memory. Representation-faithful: the value is
  // decoded from / encoded into this host's native memory image. Faults in
  // the page (group) transparently when access is insufficient.
  template <typename T>
  T Read(GlobalAddr addr) {
    const PageNum p = PageOf(addr);
    for (;;) {
      EnsureAccess(p, Access::kRead);
      std::lock_guard<std::mutex> lk(state_mu_);
      // Access can be lost between EnsureAccess and this lock (an
      // invalidation, or a release-consistency flush demoting the page);
      // loading without it would read through a revoked mapping.
      if (ptable_.Local(p).access < Access::kRead) continue;
      if (cfg_.referee_check_access && referee_ != nullptr) {
        referee_->CheckAccess(self_, p, ptable_.Local(p).version,
                              Access::kRead);
      }
      return arch::LoadScalar<T>(*profile_, mem_.data() + addr);
    }
  }

  template <typename T>
  void Write(GlobalAddr addr, T value) {
    const PageNum p = PageOf(addr);
    for (;;) {
      EnsureAccess(p, Access::kWrite);
      std::lock_guard<std::mutex> lk(state_mu_);
      if (ptable_.Local(p).access < Access::kWrite) continue;
      if (cfg_.referee_check_access && referee_ != nullptr) {
        referee_->CheckAccess(self_, p, ptable_.Local(p).version,
                              Access::kWrite);
      }
      arch::StoreScalar<T>(*profile_, mem_.data() + addr, value);
      return;
    }
  }

  // Bulk typed access: semantically identical to element-wise Read/Write
  // loops (same faults, same page-granularity coherence, same
  // representation decoding) but amortizes the access-check cost — the
  // simulated equivalent of a tight load/store loop of native instructions.
  // Elements must not straddle DSM pages (the typed allocator guarantees
  // power-of-two strides, so they never do).
  template <typename T>
  void ReadBlock(GlobalAddr addr, std::size_t count, T* out) {
    while (count > 0) {
      const PageNum p = PageOf(addr);
      EnsureAccess(p, Access::kRead);
      const GlobalAddr page_end =
          (static_cast<GlobalAddr>(p) + 1) * page_bytes_;
      const std::size_t n =
          std::min<std::size_t>(count, (page_end - addr) / sizeof(T));
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (ptable_.Local(p).access < Access::kRead) continue;  // refault
        if (cfg_.referee_check_access && referee_ != nullptr) {
          referee_->CheckAccess(self_, p, ptable_.Local(p).version,
                                Access::kRead);
        }
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = arch::LoadScalar<T>(*profile_,
                                       mem_.data() + addr + i * sizeof(T));
        }
      }
      out += n;
      addr += n * sizeof(T);
      count -= n;
    }
  }

  template <typename T>
  void WriteBlock(GlobalAddr addr, const T* in, std::size_t count) {
    while (count > 0) {
      const PageNum p = PageOf(addr);
      EnsureAccess(p, Access::kWrite);
      const GlobalAddr page_end =
          (static_cast<GlobalAddr>(p) + 1) * page_bytes_;
      const std::size_t n =
          std::min<std::size_t>(count, (page_end - addr) / sizeof(T));
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (ptable_.Local(p).access < Access::kWrite) continue;  // refault
        if (cfg_.referee_check_access && referee_ != nullptr) {
          referee_->CheckAccess(self_, p, ptable_.Local(p).version,
                                Access::kWrite);
        }
        for (std::size_t i = 0; i < n; ++i) {
          arch::StoreScalar<T>(*profile_,
                               mem_.data() + addr + i * sizeof(T), in[i]);
        }
      }
      in += n;
      addr += n * sizeof(T);
      count -= n;
    }
  }

  // Models `units` of application work on this host's CPU.
  void Compute(double units, bool floating_point = false);

  // Pre-faults a page for the given access (the paper's applications touch
  // data in page units anyway; this is a convenience for benchmarks).
  void Touch(GlobalAddr addr, Access access) {
    EnsureAccess(PageOf(addr), access);
  }

  PageNum PageOf(GlobalAddr addr) const {
    return static_cast<PageNum>(addr / page_bytes_);
  }

  net::HostId id() const { return self_; }
  const arch::ArchProfile& profile() const { return *profile_; }
  std::uint32_t page_bytes() const { return page_bytes_; }
  base::StatsRegistry& stats() { return stats_; }
  net::Endpoint& endpoint() { return endpoint_; }
  sim::Runtime& runtime() { return rt_; }

  // Attaches the system-wide protocol tracer (and propagates it to this
  // host's endpoint / fragmentation layers).
  void SetTracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    endpoint_.SetTracer(tracer);
  }

  // Test hooks.
  LocalPageEntry LocalEntrySnapshot(PageNum p);
  // Release-consistency test hooks: live twin count / probable-owner hint.
  std::size_t RcTwinCount();
  net::HostId HintSnapshot(PageNum p);

  // --- release consistency (System wires these as the sync client's
  // --- release/acquire hooks; see SystemConfig::release_consistency) ------

  // Release point: flushes every twin (and home-dirty page) to its home and
  // returns the accumulated write notices to publish with the sync op.
  std::vector<sync::WriteNotice> RcDrainNotices();
  // Acquire point: invalidates the local read copies made stale by the
  // notices. `reset` means the server's bounded notice log was truncated
  // past this client's cursor — every non-twinned, non-home read copy is
  // dropped conservatively.
  void RcApplyNotices(const std::vector<sync::WriteNotice>& notices,
                      bool reset);

  // Used by the System's allocation worker to push authoritative type and
  // extent information to this host in its manager role. Returns the host
  // the page's management migrated to when this host no longer manages it
  // (dynamic directory) — the caller forwards the type-set there.
  std::optional<net::HostId> ApplyTypeSet(PageNum p, arch::TypeId type,
                                          std::uint32_t alloc_bytes);

  // Pure base-placement lookup (fixed modulo or consistent-hash ring); the
  // same on every host, safe without locks.
  net::HostId BaseManagerOf(PageNum p) const {
    return dir_.BaseManagerOf(p);
  }

  // Transfers granted in this host's manager role over its lifetime (plain
  // counter, not a stats key, so knobs-off registries stay bit-identical).
  // Feeds bench_directory's manager-load Gini coefficient.
  std::uint64_t ManagerGrantsTotal();

  // Quiescence accounting for chaos tests: adds this host's still-busy
  // manager entries and queued transfers to the counters.
  void CountManagerLoad(std::uint64_t* busy, std::uint64_t* pending);

 private:
  friend class System;

  struct FetchReply {
    std::uint64_t op_id = 0;
    std::uint64_t data_version = 0;
    std::uint64_t new_version = 0;
    net::HostId owner = 0;
    arch::TypeId type = 0;
    std::uint32_t alloc_bytes = 0;
    std::vector<net::HostId> to_invalidate;
    bool has_data = false;
    // Representation class the payload is encoded in (arch::RepClassByte).
    // When the owner pre-converted for the requester this is the
    // requester's class and the receiver skips the codec.
    std::uint8_t data_rep = 0;
    bool sender_converted = false;
    bool from_cache = false;  // served from the owner's conversion cache
    // The addressed host restarted with amnesia and no longer holds the
    // page: the requester must report the loss to the manager and retry.
    bool owner_lost = false;
    // Dynamic directory: the manager that granted this transfer (wire field
    // only when directory_mode == kDynamic). The requester confirms /
    // rejects / reports losses to it and learns it as the page's location.
    net::HostId mgr = 0;
    // The addressed host does not manage the page (stale learned location or
    // an exhausted forwarding chain): `owner` carries the suggested manager
    // and the requester re-routes. No grant fields are valid.
    bool mgr_redirect = false;
    base::BufferChain data;
  };

  // One protocol round's outcome: kDone re-checks access, kRetry backs off
  // and refaults, kShutdown unwinds the thread.
  enum class FaultOutcome { kDone, kRetry, kShutdown };

  // Per-VM-fault telemetry: protocol messages on the critical path and
  // blocking request round trips, summed over the fault's DSM pages. Feeds
  // the dsm.vm_fault_hops / dsm.vm_fault_rtts histograms that quantify the
  // fast paths' savings.
  struct FaultTelemetry {
    std::int64_t hops = 0;
    std::int64_t rtts = 0;
  };

  // One write-group page whose invalidation and finalization were deferred
  // (coalesced invalidation): the page is installed read-only and parked
  // here; after every page of the VM fault holds its grant, one batched
  // invalidation round runs and each page is finalized and confirmed.
  struct DeferredWrite {
    PageNum page = 0;
    FetchReply reply;
    // The manager that granted this page (confirm target after the flush).
    net::HostId manager = 0;
    // Host life at park time; a crash between park and flush fences the
    // entry (the wiped state can no longer back the grant).
    std::uint32_t life = 0;
  };

  // Outcome of CompleteTransfer: kFenced means this host crashed while the
  // transfer was in flight — the grant must NOT be confirmed (the wiped
  // state cannot back it) and the caller simply refaults. kRejected means
  // the grant arrived without data but no local copy exists to back it (the
  // manager trusted a claim that a crash or revoke made stale); the caller
  // must free the grant at the manager and refault with the truth.
  enum class TransferResult { kOk, kFenced, kRejected, kShutdown };

  // --- fault path ---------------------------------------------------------
  void EnsureAccess(PageNum p, Access needed);
  // One VM-level fault: acquires every DSM page of the enclosing VM page
  // that lacks `needed` access.
  void FaultGroup(PageNum p, Access needed);
  // One DSM-page protocol round. With `deferred` non-null (coalesced
  // invalidation), a granted write parks in `deferred` instead of
  // invalidating and finalizing.
  // The `life` parameter of the fault helpers is the host life (crash
  // count) captured when the round started; CompleteTransfer fences the
  // install when it no longer matches (the thread is a pre-crash zombie).
  void FaultOne(PageNum p, Access needed, FaultTelemetry* telem,
                std::vector<DeferredWrite>* deferred);
  FaultOutcome FaultViaLocalManager(PageNum p, bool is_write,
                                    FaultTelemetry* telem,
                                    std::vector<DeferredWrite>* deferred,
                                    std::uint32_t life);
  FaultOutcome FaultViaRemoteManager(PageNum p, bool is_write,
                                     FaultTelemetry* telem,
                                     std::vector<DeferredWrite>* deferred,
                                     std::uint32_t life);
  // Probable-owner fast path: one direct fetch round against the hinted
  // owner. Returns the outcome, or nullopt when the normal manager path
  // should run (no hint, hint timed out, or the serve was fenced).
  std::optional<FaultOutcome> FaultViaHint(PageNum p, FaultTelemetry* telem,
                                           std::uint32_t life);
  // Batched group fetch for a read VM fault spanning [first, last): one
  // kOpGroupFetch call per remote manager / distinct owner; pages the batch
  // cannot serve (busy entries, losses) fall back to FaultOne. False on
  // shutdown.
  bool FaultGroupFetch(PageNum first, PageNum last, FaultTelemetry* telem);
  // Coalesced-invalidation tail: unions the deferred pages' copyset targets,
  // runs one batched invalidation round per target, then finalizes and
  // confirms every page. False on shutdown.
  bool FlushDeferredWrites(std::vector<DeferredWrite> deferred,
                           FaultTelemetry* telem);
  // Install + invalidate + (write-)grant; shared tail of both fault
  // variants. With `deferred` non-null a write parks instead of finalizing.
  TransferResult CompleteTransfer(PageNum p, bool is_write,
                                  const FetchReply& reply,
                                  std::vector<DeferredWrite>* deferred,
                                  std::uint32_t life);
  // The locked write-finalize step (write access, version bump, referee
  // write grant). Caller must have completed the page's invalidations.
  // False when fenced by a crash (caller skips the confirm).
  bool FinalizeWrite(PageNum p, const FetchReply& reply, std::uint32_t life);
  // Reliable write invalidation: re-multicasts to unacked targets until all
  // ack (bounded rounds; aborts loudly when exhausted). False on shutdown.
  // `op_id`/`parent_ev` only feed the trace (the install event that caused
  // this invalidation round).
  bool InvalidateCopies(PageNum p, const std::vector<net::HostId>& hosts,
                        std::uint64_t op_id, std::uint64_t parent_ev);

  // --- release consistency ------------------------------------------------
  // Outcome of RcTwinPage: kOk = twin made (or home page marked dirty) and
  // write access granted locally; kNoCopy = the read copy vanished between
  // the read fault and the twin attempt (caller refaults); kCapacity = the
  // twin cap is reached (caller flushes and retries).
  enum class RcTwinResult { kOk, kNoCopy, kCapacity };
  // Write fault under release consistency: instead of a global invalidate,
  // snapshot the page into a twin (or, when this host IS the page's home,
  // mark it home-dirty — the working copy is the master, no buffer needed)
  // and take write access locally. Requires a valid read copy.
  RcTwinResult RcTwinPage(PageNum p);
  // Release: diffs every twin against the working copy, ships the dirty
  // ranges to each page's home (kOpDiffFlush), commits home-dirty pages in
  // place, demotes the pages back to read access, and appends the resulting
  // write notices to rc_pending_notices_.
  void RcFlushTwins();
  // Commits one flush at the home: bumps the manager + local version,
  // notifies the referee. Stale cached conversions are dropped when
  // `drop_cache`; HandleDiffFlush passes false and instead patches the
  // cached whole-page images with the (converted) diff ranges, so small
  // diffs neither evict nor miss the cache. Caller holds state_mu_ and has
  // verified the entry is not busy. Returns {new, prev} versions.
  std::pair<std::uint64_t, std::uint64_t> RcCommitFlushLocked(
      PageNum p, net::HostId origin, bool drop_cache = true);
  // Re-keys every cached conversion of page p from `prev_version` to
  // `new_version`, patching the flushed byte ranges (already applied to the
  // master copy in this host's representation) into each image via the pure
  // codec. Entries at other versions are dropped. Caller holds state_mu_.
  void PatchConvertCacheLocked(PageNum p, std::uint64_t prev_version,
                               std::uint64_t new_version,
                               const std::vector<std::pair<std::uint32_t,
                                                           std::uint32_t>>&
                                   ranges);
  // Home-side handler for a remote kOpDiffFlush (rx daemon; never blocks):
  // busy-rejects while a transfer is in flight (the writer backs off and
  // retries), deduplicates retransmitted flushes by (origin, flush seq),
  // converts the diff payload when the writer's representation differs,
  // and applies the ranges to the master copy.
  void HandleDiffFlush(net::RequestContext ctx);

  // --- manager role -------------------------------------------------------
  ManagerGrant BuildGrantLocked(PageNum p, net::HostId requester,
                                bool is_write, bool has_copy);
  // Processes one pending transfer (issues grant / forward / direct serve).
  void ManagerIssue(PageNum p, PendingTransfer t);
  void ManagerCommit(PageNum p, std::uint64_t op_id, net::HostId requester,
                     bool is_write);
  void ManagerDrain(PageNum p);
  // Revokes the in-flight grant (p, op_id) if it is still the busy one:
  // frees the entry with owner/copyset/version unchanged and re-drains the
  // pending queue. Used by grant rejects, lease expiry, and the local fault
  // path when its owner fetch times out.
  void ManagerRevoke(PageNum p, std::uint64_t op_id);

  // --- dynamic directory (SystemConfig::directory_mode == kDynamic) -------
  // A unit of work for the migration daemon: ship page p's management to
  // `target` (reclaim == false), or rebuild the entry for a base-managed
  // page whose adopted manager died (reclaim == true).
  struct MigrateJob {
    PageNum page = 0;
    net::HostId target = 0;
    bool reclaim = false;
  };
  // After a committed remote write by `requester`: updates the hot-page
  // vote and decides whether management should follow the writer. On true
  // the caller marks the entry migrating and queues a MigrateJob. Caller
  // holds state_mu_.
  bool ShouldMigrateLocked(ManagerEntry& m, net::HostId requester);
  // Daemon body: drains migrate_chan_.
  void MigrationDaemon();
  void RunMigration(PageNum p, net::HostId target);
  void RunReclaim(PageNum p);
  // Queues a reclaim for base-managed page p unless one is already queued.
  // Caller holds state_mu_.
  void QueueReclaimLocked(PageNum p);
  // Adoption side of the kOpMgrMigrate handshake (rx daemon).
  void HandleMgrMigrate(net::RequestContext ctx);
  // Receive-path forwarding for a manager-role notify that reached a host
  // which migrated the page away: re-notifies the forward target (notifies
  // are at-most-once already, so re-sending cannot double-apply). True when
  // forwarded. Caller holds state_mu_.
  bool ForwardNotifyLocked(PageNum p, std::uint8_t op,
                           std::span<const std::uint8_t> body);

  // --- crash-stop recovery ------------------------------------------------
  // Crash-with-amnesia: resets the endpoint (new incarnation, zombie calls
  // fenced), wipes the page table, hints, conversion cache, memory image,
  // and all fault-path bookkeeping, and marks the manager role as
  // recovering. Parked fault waiters are woken so their threads refault.
  void CrashWipe();
  // Manager-state reconstruction after a restart: queries every live host
  // for its page claims (kOpRecoveryQuery), rebuilds owner/copyset/version
  // for each managed page, demotes duplicate or stale writers, adopts
  // claimed in-flight transfers, and applies SystemConfig::lost_page_policy
  // when the sole copy of a page died. Blocking; run from a recovery daemon.
  void RunManagerRecovery();
  // Shared dead-owner repair: removes `dead_owner` from page p's manager
  // entry and promotes a surviving copy (or applies the lost-page policy).
  // No-op when the report is stale (current owner differs). `op_id` is the
  // reporter's observed in-flight grant (0 = none), cleared if still busy.
  // `drain` re-issues the pending queue after the repair; pass false when
  // the caller is itself about to issue a transfer for this page.
  void HandlePageLostLocal(PageNum p, std::uint64_t op_id,
                           net::HostId dead_owner, bool drain = true);
  // The hinted/recorded incarnation of host h: 0 with crash recovery off
  // (keeps wire images and hint state bit-identical), else the endpoint's
  // current knowledge.
  std::uint32_t IncOf(net::HostId h);

  // --- owner role ---------------------------------------------------------
  // Serves a fetch against the local copy; fills reply fields that depend
  // on the local state and attaches the data (pre-converted for the
  // requester's representation class when the conversion cache is enabled).
  // Caller provides grant info (`mgr` = the granting manager, echoed in the
  // reply under the dynamic directory). State transitions happen under
  // state_mu_; the page copy, codec work, and encode run outside it.
  net::Body EncodeServeReply(PageNum p, net::HostId requester, bool is_write,
                             bool data_needed, std::uint64_t op_id,
                             std::uint64_t data_version,
                             std::uint64_t new_version, arch::TypeId type,
                             std::uint32_t alloc_bytes,
                             const std::vector<net::HostId>& to_invalidate,
                             net::HostId mgr);

  // --- handlers (run in the endpoint's rx daemon; never block) ------------
  void HandleTransferReq(net::RequestContext ctx, bool is_write);
  void HandleOwnerFetch(net::RequestContext ctx, bool is_write);
  void HandleInvalidate(net::RequestContext ctx);
  void HandleConfirm(net::RequestContext ctx);
  void HandleConfirmProbe(net::RequestContext ctx);
  void HandleGrantReject(net::RequestContext ctx);
  void HandleGrantExtend(net::RequestContext ctx);
  // Fast-path handlers (only reachable when the matching knob is on at the
  // sender; each is safe to receive regardless).
  void HandleHintedFetch(net::RequestContext ctx);
  void HandleHintConfirm(net::RequestContext ctx);
  void HandleHintCovered(net::RequestContext ctx);
  void HandleGroupFetch(net::RequestContext ctx);
  void HandleGroupConfirm(net::RequestContext ctx);
  void HandleInvalidateBatch(net::RequestContext ctx);
  // Crash-recovery handlers.
  void HandleRecoveryQuery(net::RequestContext ctx);
  void HandleRecoveryDemote(net::RequestContext ctx);
  void HandlePageLost(net::RequestContext ctx);

  // --- group-fetch wire helpers -------------------------------------------
  // One entry of a kOpGroupFetch request (role is per entry: the same call
  // can carry manager-role misses and owner-role pre-granted fetches).
  struct GroupReqEntry {
    std::uint8_t role = kToManager;
    PageNum page = 0;
    bool has_copy = false;       // kToManager
    std::uint64_t op_id = 0;     // kToOwner grant parameters
    std::uint64_t new_version = 0;
    bool data_needed = true;
    arch::TypeId type = 0;
    std::uint32_t alloc_bytes = 0;
    net::HostId mgr = 0;         // kToOwner: granting manager (dynamic dir)
  };
  // One entry of a kOpGroupFetch reply.
  struct GroupReplyEntry {
    PageNum page = 0;
    // 0 = busy (fall back), 1 = grant, 2 = redirect, 3 = owner lost (the
    // addressed owner restarted with amnesia; redirect.op_id/redirect_owner
    // carry the grant id and dead owner for the kOpPageLost report).
    std::uint8_t status = 0;
    FetchReply fr;            // status 1
    GroupReqEntry redirect;   // status 2 (owner-role request parameters)
    net::HostId redirect_owner = 0;
  };
  // Members (not statics): the dynamic directory adds wire fields that are
  // encoded/decoded only when cfg_.directory_mode == kDynamic, keeping the
  // knobs-off wire image bit-identical.
  net::Body EncodeGroupRequest(const std::vector<GroupReqEntry>& es) const;
  std::vector<GroupReqEntry> DecodeGroupRequest(
      std::span<const std::uint8_t> body, bool* ok) const;
  // Serialized grant entries carry an encoded FetchReply head plus a slice
  // of the shared payload chain; nothing is copied on either side.
  net::Body EncodeGroupReply(std::vector<GroupReplyEntry> es,
                             std::vector<net::Body> grant_bodies) const;
  std::vector<GroupReplyEntry> DecodeGroupReply(
      const base::BufferChain& body) const;

  // --- helpers -------------------------------------------------------------
  // Charges the receiver-side modeled conversion delay and stats for an
  // incoming page; runs the real codec (in place on `data`) only when
  // `run_codec` — when the owner already converted, only the calibrated
  // delay is paid here so Table 3/4 cells are independent of where the
  // codec physically runs.
  void ConvertIncoming(PageNum p, std::span<std::uint8_t> data,
                       arch::TypeId type, const arch::ArchProfile& from,
                       bool run_codec);
  // Drops every conversion-cache entry for page p (counted as evictions).
  // Caller holds state_mu_.
  void DropConvertCacheLocked(PageNum p);
  // Applies one incoming invalidation (single or batched) from `writer` to
  // page p: drops the copy, retained image, cached conversions; learns the
  // writer as the probable owner; poisons any in-flight hinted fetch.
  // Caller holds state_mu_. Returns true when a valid copy was dropped
  // (referee notification included).
  bool ApplyInvalidateLocked(PageNum p, net::HostId writer);
  // Reliable batched invalidation: one kOpInvalidateBatch round per target
  // until every target acks all pages. False on shutdown.
  bool InvalidateBatchCall(const std::vector<PageNum>& pages,
                           std::vector<net::HostId> targets);
  void RecordCompleted(PageNum p, std::uint64_t op_id, net::HostId manager,
                       bool is_write);
  // Adds {p, op_id} to the fenced set (bounded FIFO) so a decoded-but-not-
  // installed grant is discarded instead of installed. Caller holds state_mu_.
  void FenceOpLocked(PageNum p, std::uint64_t op_id);
  net::Body EncodeFetchReply(const FetchReply& r) const;
  FetchReply DecodeFetchReply(const base::BufferChain& body) const;
  net::Endpoint::CallOpts DsmCallOpts() const;

  // Trace hook: records one protocol event on this host at the current sim
  // time; returns the event id (0 when tracing is off).
  std::uint64_t TraceEv(trace::EventKind kind, PageNum p, std::uint64_t op,
                        std::uint64_t parent = 0, std::int64_t a0 = 0,
                        std::int64_t a1 = 0) {
    if (tracer_ == nullptr || !tracer_->enabled()) return 0;
    return tracer_->Record(kind, self_, rt_.Now(), p, op, parent, a0, a1);
  }
  std::uint64_t TraceParent(const trace::CausalKey& key) const {
    if (tracer_ == nullptr || !tracer_->enabled()) return 0;
    return tracer_->Parent(key);
  }
  void TraceBind(const trace::CausalKey& key, std::uint64_t ev) {
    if (tracer_ != nullptr && ev != 0) tracer_->Bind(key, ev);
  }

  sim::Runtime& rt_;
  net::Network& net_;
  const SystemConfig& cfg_;
  const arch::TypeRegistry& registry_;
  net::HostId self_;
  const arch::ArchProfile* profile_;
  std::uint16_t num_hosts_;
  std::uint32_t page_bytes_;
  CoherenceReferee* referee_;
  net::Endpoint endpoint_;
  trace::Tracer* tracer_ = nullptr;

  // Guards everything below; never held across a blocking operation.
  std::mutex state_mu_;
  std::vector<std::uint8_t> mem_;  // representation-faithful memory image
  PageTable ptable_;
  Directory dir_;  // manager placement + this host's manager entries
  // Dynamic-directory machinery (guarded by state_mu_ except the Chan):
  //  - migrate_chan_: jobs for the migration daemon (Chan sends are
  //    non-blocking, so handlers may enqueue).
  //  - reclaiming_: base-managed pages with a reclaim queued or running.
  //  - mgr_grants_total_: lifetime grants in the manager role; plain member
  //    (not a stats key) so knobs-off stat registries stay bit-identical.
  sim::Chan<MigrateJob> migrate_chan_;
  std::set<PageNum> reclaiming_;
  std::uint64_t mgr_grants_total_ = 0;
  // Local fault coalescing: threads faulting a page another thread is
  // already fetching wait here and re-check.
  std::map<PageNum, std::vector<sim::Chan<bool>>> fault_waiters_;
  std::map<PageNum, bool> fault_inflight_;
  // Completed transfers for confirm-probe replay (bounded FIFO).
  struct CompletedOp {
    net::HostId manager = 0;
    bool is_write = false;
  };
  std::map<std::pair<PageNum, std::uint64_t>, CompletedOp> completed_;
  std::deque<std::pair<PageNum, std::uint64_t>> completed_order_;
  // Grants this host is processing right now (reply decoded, confirm not yet
  // sent): a confirm-probe for one of these answers "still working"
  // (kOpGrantExtend) instead of disowning the grant. The value lets a
  // restarted manager adopt the claimed transfer during reconstruction.
  struct InflightOp {
    bool is_write = false;
    std::uint64_t new_version = 0;
  };
  std::map<std::pair<PageNum, std::uint64_t>, InflightOp> inflight_ops_;
  // Grants this host disowned in answer to a confirm-probe. A late reply
  // carrying a fenced op must be discarded — the manager has revoked it, and
  // installing it would put two writers on the page (bounded FIFO).
  std::set<std::pair<PageNum, std::uint64_t>> fenced_;
  std::deque<std::pair<PageNum, std::uint64_t>> fenced_order_;
  std::uint64_t op_counter_ = 0;
  // Crash-recovery state (guarded by state_mu_):
  //  - life_: crash count; fault threads capture it per round and their
  //    installs are fenced when it moved (pre-crash zombies).
  //  - recovering_: set from crash until manager reconstruction finishes;
  //    manager-role requests are dropped (requesters retry) meanwhile.
  //  - op_epoch_: this host's incarnation, folded into the high bits of
  //    issued op ids so a reincarnated manager never reuses a live grant id
  //    (op_counter_ itself restarts from zero — true amnesia).
  std::uint32_t life_ = 0;
  bool recovering_ = false;
  std::uint32_t op_epoch_ = 0;
  // Owner-side conversion cache: converted outgoing page images keyed by
  // (page, version, representation class), LRU-bounded (a hit promotes the
  // key to the back of the eviction order). Version keying makes stale hits
  // impossible; entries are also dropped eagerly on invalidation and local
  // write commit. Guarded by state_mu_.
  struct ConvertCacheKey {
    PageNum page = 0;
    std::uint64_t version = 0;
    std::uint8_t rep = 0;
    auto operator<=>(const ConvertCacheKey&) const = default;
  };
  std::map<ConvertCacheKey, base::Buffer> convert_cache_;
  std::deque<ConvertCacheKey> convert_cache_order_;
  // Probable-owner bookkeeping (guarded by state_mu_):
  //  - hinted_pending_: readers this host served via the hint fast path whose
  //    copyset membership the manager may not know yet. Every write serve /
  //    upgrade appends them to its invalidation targets; an entry is removed
  //    only by the manager's kOpHintCovered notify or by this host's own
  //    write finalize (which invalidates all of them anyway).
  //  - hint_poison_: pages with a hinted fetch in flight; an invalidation
  //    arriving inside the window flips the flag and the (possibly stale)
  //    hinted reply is discarded instead of installed.
  //  - write_pending_: pages of a coalesced write group between the batch
  //    invalidation and their finalize; hint serves refuse them so no new
  //    reader can slip past the already-computed target union.
  std::map<PageNum, std::set<net::HostId>> hinted_pending_;
  std::map<PageNum, bool> hint_poison_;
  std::set<PageNum> write_pending_;
  // Release-consistency state (guarded by state_mu_):
  //  - rc_twins_: pages this host is write-buffering; `base` is the page
  //    image at twin time, diffed against the working copy at release.
  //  - rc_home_dirty_: pages managed here that this host wrote in place
  //    (the home's working copy IS the master; release commits a version
  //    bump with zero wire bytes).
  //  - rc_pending_notices_: write notices produced by flushes, awaiting the
  //    next sync op (capacity-triggered flushes have no sync op to ride).
  //  - rc_applied_: home-side flush idempotence — a release re-issued as a
  //    fresh call after a timeout must not double-apply its diffs. Keyed
  //    (page, origin, flush seq), bounded FIFO.
  struct RcTwin {
    std::vector<std::uint8_t> base;
    std::uint64_t base_version = 0;
  };
  std::map<PageNum, RcTwin> rc_twins_;
  std::set<PageNum> rc_home_dirty_;
  std::vector<sync::WriteNotice> rc_pending_notices_;
  std::uint64_t rc_flush_seq_ = 0;
  struct RcApplied {
    std::uint64_t new_version = 0;
    std::uint64_t prev_version = 0;
  };
  using RcFlushKey = std::tuple<PageNum, net::HostId, std::uint64_t>;
  std::map<RcFlushKey, RcApplied> rc_applied_;
  std::deque<RcFlushKey> rc_applied_order_;
  // Earliest-free times of this host's CPUs (application Compute calls).
  std::vector<SimTime> cpu_busy_until_;

  base::StatsRegistry stats_;
};

}  // namespace mermaid::dsm
