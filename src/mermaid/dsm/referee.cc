#include "mermaid/dsm/referee.h"

#include <cstdio>

#include "mermaid/base/check.h"

namespace mermaid::dsm {

void CoherenceReferee::SetRelaxed(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  relaxed_ = on;
}

void CoherenceReferee::OnRcTwin(net::HostId h, PageNum page) {
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(relaxed_, "twin created outside release-consistency mode");
  PageState& st = pages_[page];
  MERMAID_CHECK_MSG(st.holders.count(h) == 1,
                    "twin created on a host without a valid copy");
  st.rc_writers.insert(h);
}

void CoherenceReferee::OnRcFlush(net::HostId h, PageNum page,
                                 std::uint64_t version) {
  (void)h;
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(relaxed_, "diff flushed outside release-consistency mode");
  PageState& st = pages_[page];
  MERMAID_CHECK_MSG(version >= st.version,
                    "diff flush moved the committed version backwards");
  st.version = version;
}

void CoherenceReferee::OnRcRelease(net::HostId h, PageNum page,
                                   bool kept_copy) {
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(relaxed_, "twin released outside release-consistency mode");
  PageState& st = pages_[page];
  st.rc_writers.erase(h);
  if (!kept_copy) st.holders.erase(h);
}

void CoherenceReferee::OnInstall(net::HostId h, PageNum page,
                                 std::uint64_t version, Access access) {
  std::lock_guard<std::mutex> lk(mu_);
  PageState& st = pages_[page];
  if (st.orphaned && st.holders.empty()) {
    // The committed copy died with its holders; a recovery promotion may
    // legally re-animate an older retained image as the new lineage.
    st.version = version;
    st.orphaned = false;
  }
  MERMAID_CHECK_MSG(version >= st.version,
                    "host installed a copy older than the committed version");
  if (version > st.version) {
    st.version = version;
  }
  st.holders.insert(h);
  if (access == Access::kWrite) {
    MERMAID_CHECK_MSG(!st.writer.has_value() || *st.writer == h,
                      "two hosts hold write access to the same page");
    MERMAID_CHECK_MSG(st.holders.size() == 1,
                      "write copy installed while other copies exist");
    st.writer = h;
  }
}

void CoherenceReferee::OnWriteGrant(net::HostId h, PageNum page,
                                    std::uint64_t version) {
  std::lock_guard<std::mutex> lk(mu_);
  PageState& st = pages_[page];
  MERMAID_CHECK_MSG(!st.writer.has_value() || *st.writer == h,
                    "write granted while another host holds write access");
  MERMAID_CHECK_MSG(st.holders.count(h) == 1,
                    "write granted to a host without a copy");
  MERMAID_CHECK_MSG(st.holders.size() == 1,
                    "write granted while other hosts hold copies");
  MERMAID_CHECK_MSG(version > st.version || st.writer == h,
                    "write grant did not advance the page version");
  st.version = version;
  st.writer = h;
}

void CoherenceReferee::OnDowngrade(net::HostId h, PageNum page) {
  std::lock_guard<std::mutex> lk(mu_);
  PageState& st = pages_[page];
  if (st.writer.has_value() && *st.writer == h) st.writer.reset();
}

void CoherenceReferee::OnInvalidate(net::HostId h, PageNum page) {
  std::lock_guard<std::mutex> lk(mu_);
  PageState& st = pages_[page];
  st.holders.erase(h);
  if (st.writer.has_value() && *st.writer == h) st.writer.reset();
  st.rc_writers.erase(h);
}

void CoherenceReferee::OnHostCrash(net::HostId h) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [page, st] : pages_) {
    const bool held = st.holders.erase(h) != 0;
    if (st.writer.has_value() && *st.writer == h) st.writer.reset();
    st.rc_writers.erase(h);
    if (held && st.holders.empty()) st.orphaned = true;
  }
}

void CoherenceReferee::OnReinit(net::HostId h, PageNum page,
                                std::uint64_t version) {
  std::lock_guard<std::mutex> lk(mu_);
  PageState& st = pages_[page];
  if (!st.holders.empty()) {
    std::fprintf(stderr,
                 "referee: host %u reinitialized page %u (version %llu) "
                 "with live holders:",
                 static_cast<unsigned>(h), static_cast<unsigned>(page),
                 static_cast<unsigned long long>(st.version));
    for (net::HostId holder : st.holders) {
      std::fprintf(stderr, " %u", static_cast<unsigned>(holder));
    }
    std::fprintf(stderr, "\n");
  }
  MERMAID_CHECK_MSG(st.holders.empty(),
                    "page re-initialized while live copies exist");
  // The committed version restarts: the old history died with the sole
  // owner, and the referee must accept the fresh zero-page lineage.
  st.version = version;
  st.holders = {h};
  st.writer.reset();
  st.orphaned = false;
}

void CoherenceReferee::OnMgrMigrate(net::HostId from, net::HostId to,
                                    PageNum page) {
  std::lock_guard<std::mutex> lk(mu_);
  MERMAID_CHECK_MSG(from != to, "manager migration to the current manager");
  auto it = pages_.find(page);
  MERMAID_CHECK_MSG(it != pages_.end(),
                    "manager migration of an untracked page");
  const PageState& st = it->second;
  MERMAID_CHECK_MSG(st.holders.count(to) == 1,
                    "management migrated to a host without a valid copy");
}

void CoherenceReferee::CheckAccess(net::HostId h, PageNum page,
                                   std::uint64_t local_version,
                                   Access access) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pages_.find(page);
  MERMAID_CHECK_MSG(it != pages_.end(), "access to an untracked page");
  const PageState& st = it->second;
  MERMAID_CHECK_MSG(st.holders.count(h) == 1,
                    "access on a host without a valid copy");
  if (relaxed_) {
    // Release consistency: a copy may legally trail the committed version
    // until the next acquire pulls the write notice; writes are legal on
    // any live twin.
    MERMAID_CHECK_MSG(local_version <= st.version,
                      "access through a copy newer than the committed page");
    if (access == Access::kWrite) {
      MERMAID_CHECK_MSG(st.rc_writers.count(h) == 1,
                        "write access without a live twin");
    }
    return;
  }
  MERMAID_CHECK_MSG(local_version == st.version,
                    "access through a stale copy");
  if (access == Access::kWrite) {
    MERMAID_CHECK_MSG(st.writer.has_value() && *st.writer == h,
                      "write access without the write grant");
  }
}

}  // namespace mermaid::dsm
