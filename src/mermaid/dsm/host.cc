#include "mermaid/dsm/host.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"

namespace mermaid::dsm {

namespace {

// Converts `extent` bytes of element slots in place. Slots are the
// power-of-two stride the allocator lays elements out on; for basic types
// stride == size and non-power-of-two types simply convert at the slot
// stride — one bulk call either way.
void ConvertSlots(const arch::TypeRegistry& reg, arch::TypeId type,
                  std::span<std::uint8_t> data, std::uint32_t extent,
                  const arch::ConvertContext& ctx) {
  const std::size_t stride = std::bit_ceil(reg.SizeOf(type));
  reg.ConvertStrided(type, data.first(extent), extent / stride, stride, ctx);
}

// Capped exponential backoff between whole fault-path retry rounds (the
// per-Call retransmits already jitter, so rounds need no extra randomness).
SimDuration FaultBackoff(const SystemConfig& cfg, int round) {
  SimDuration d = std::max<SimDuration>(1, cfg.fault_retry_backoff);
  const SimDuration cap = Seconds(2);
  for (int i = 1; i < round && d < cap; ++i) d *= 2;
  return std::min(d, cap);
}

}  // namespace

Host::Host(sim::Runtime& rt, net::Network& net, const SystemConfig& cfg,
           const arch::TypeRegistry& registry, net::HostId self,
           const arch::ArchProfile* profile, std::uint16_t num_hosts,
           std::uint32_t page_bytes, CoherenceReferee* referee)
    : rt_(rt),
      net_(net),
      cfg_(cfg),
      registry_(registry),
      self_(self),
      profile_(profile),
      num_hosts_(num_hosts),
      page_bytes_(page_bytes),
      referee_(referee),
      endpoint_(rt, net, self, profile,
                [&cfg] {
                  net::Endpoint::Config c;
                  c.dedup_window = 8192;
                  c.carry_incarnation = cfg.crash_recovery;
                  return c;
                }()),
      mem_(cfg.region_bytes, 0),
      ptable_(static_cast<PageNum>(cfg.region_bytes / page_bytes)),
      dir_(cfg, self, num_hosts,
           static_cast<PageNum>(cfg.region_bytes / page_bytes)),
      migrate_chan_(rt),
      cpu_busy_until_(profile->cpu_count, 0) {
  // The base manager starts out owning every page it manages, holding the
  // zero-filled read copy (the manager entries themselves are seeded by the
  // Directory constructor).
  for (PageNum p = 0; p < ptable_.num_pages(); ++p) {
    if (dir_.BaseManagedHere(p)) {
      ptable_.Local(p).access = Access::kRead;
      ptable_.Local(p).owned = true;
      if (referee_ != nullptr) referee_->OnInstall(self_, p, 0, Access::kRead);
    }
  }
}

void Host::Start() {
  endpoint_.SetHandler(kOpReadReq, [this](net::RequestContext ctx) {
    if (!ctx.body().empty() && ctx.body()[0] == kToOwner) {
      HandleOwnerFetch(std::move(ctx), /*is_write=*/false);
    } else if (!ctx.body().empty() && ctx.body()[0] == kToHintedOwner) {
      HandleHintedFetch(std::move(ctx));
    } else {
      HandleTransferReq(std::move(ctx), /*is_write=*/false);
    }
  });
  endpoint_.SetHandler(kOpWriteReq, [this](net::RequestContext ctx) {
    if (!ctx.body().empty() && ctx.body()[0] == kToOwner) {
      HandleOwnerFetch(std::move(ctx), /*is_write=*/true);
    } else {
      HandleTransferReq(std::move(ctx), /*is_write=*/true);
    }
  });
  endpoint_.SetHandler(kOpInvalidate, [this](net::RequestContext ctx) {
    HandleInvalidate(std::move(ctx));
  });
  endpoint_.SetHandler(kOpConfirm, [this](net::RequestContext ctx) {
    HandleConfirm(std::move(ctx));
  });
  endpoint_.SetHandler(kOpConfirmProbe, [this](net::RequestContext ctx) {
    HandleConfirmProbe(std::move(ctx));
  });
  endpoint_.SetHandler(kOpGrantReject, [this](net::RequestContext ctx) {
    HandleGrantReject(std::move(ctx));
  });
  endpoint_.SetHandler(kOpGrantExtend, [this](net::RequestContext ctx) {
    HandleGrantExtend(std::move(ctx));
  });
  endpoint_.SetHandler(kOpGroupFetch, [this](net::RequestContext ctx) {
    HandleGroupFetch(std::move(ctx));
  });
  endpoint_.SetHandler(kOpGroupConfirm, [this](net::RequestContext ctx) {
    HandleGroupConfirm(std::move(ctx));
  });
  endpoint_.SetHandler(kOpInvalidateBatch, [this](net::RequestContext ctx) {
    HandleInvalidateBatch(std::move(ctx));
  });
  endpoint_.SetHandler(kOpHintConfirm, [this](net::RequestContext ctx) {
    HandleHintConfirm(std::move(ctx));
  });
  endpoint_.SetHandler(kOpHintCovered, [this](net::RequestContext ctx) {
    HandleHintCovered(std::move(ctx));
  });
  endpoint_.SetHandler(kOpRecoveryQuery, [this](net::RequestContext ctx) {
    HandleRecoveryQuery(std::move(ctx));
  });
  endpoint_.SetHandler(kOpPageLost, [this](net::RequestContext ctx) {
    HandlePageLost(std::move(ctx));
  });
  endpoint_.SetHandler(kOpRecoveryDemote, [this](net::RequestContext ctx) {
    HandleRecoveryDemote(std::move(ctx));
  });
  endpoint_.SetHandler(kOpDiffFlush, [this](net::RequestContext ctx) {
    HandleDiffFlush(std::move(ctx));
  });
  endpoint_.SetHandler(kOpMgrMigrate, [this](net::RequestContext ctx) {
    HandleMgrMigrate(std::move(ctx));
  });
  if (cfg_.crash_recovery && (cfg_.probable_owner || dir_.dynamic())) {
    // A reincarnated peer lost every copy it ever owned — and, under the
    // dynamic directory, every manager entry it ever adopted. Drop the
    // hints and learned manager locations naming it the moment its new
    // incarnation is observed, and queue a reclaim for any base-managed
    // page whose forward points at the dead life. The endpoint invokes the
    // observer outside its own locks; state_mu_ is safe here.
    endpoint_.SetPeerIncObserver([this](net::HostId h, std::uint32_t) {
      std::size_t cleared = 0;
      std::size_t forgot = 0;
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (cfg_.probable_owner) cleared = ptable_.ClearHintsForHost(h);
        if (dir_.dynamic()) {
          forgot = dir_.ForgetManagersAt(h);
          std::vector<PageNum> stale;
          dir_.ForEachForward([&](PageNum p, const Directory::Forward& f) {
            if (f.to == h) stale.push_back(p);
          });
          for (PageNum p : stale) QueueReclaimLocked(p);
        }
      }
      if (cleared > 0) {
        stats_.Inc("dsm.hints_cleared_reincarnation",
                   static_cast<std::int64_t>(cleared));
      }
      if (forgot > 0) {
        stats_.Inc("dsm.mgr_learned_cleared_reincarnation",
                   static_cast<std::int64_t>(forgot));
      }
    });
  }
  endpoint_.Start();

  if (dir_.dynamic()) {
    rt_.SpawnOn(self_, "dsm-migrate-" + std::to_string(self_),
                [this] { MigrationDaemon(); },
                /*daemon=*/true);
  }

  // Confirm-loss janitor: probes requesters of long-busy transfers and
  // lease-revokes grants whose requester has been unreachable past the
  // grant lease. Blocks on a never-written channel so engine shutdown
  // unwinds it.
  rt_.SpawnOn(
      self_, "dsm-janitor-" + std::to_string(self_),
      [this] {
        sim::Chan<bool> never(rt_);
        for (;;) {
          bool timed_out = false;
          auto m = never.RecvUntil(rt_.Now() + cfg_.janitor_period,
                                   &timed_out);
          if (!m.has_value() && !timed_out) return;  // shutdown
          struct Probe {
            PageNum page;
            std::uint64_t op_id;
            net::HostId requester;
          };
          std::vector<Probe> probes;
          std::vector<std::pair<PageNum, std::uint64_t>> expired;
          {
            std::lock_guard<std::mutex> lk(state_mu_);
            if (recovering_) continue;  // entries are being rebuilt
            const SimTime now = rt_.Now();
            dir_.ForEachManaged([&](PageNum p, ManagerEntry& m2) {
              // Local requesters recover in their own fault path (they
              // revoke their grant directly on a failed owner fetch); the
              // janitor only chases remote ones.
              if (!m2.busy || m2.busy_requester == self_) return;
              if (now - m2.busy_since > cfg_.grant_lease) {
                expired.push_back({p, m2.busy_op_id});
              } else if (now - m2.busy_since > cfg_.confirm_probe_after) {
                probes.push_back({p, m2.busy_op_id, m2.busy_requester});
              }
            });
          }
          for (const auto& [page, op_id] : expired) {
            stats_.Inc("dsm.grant_lease_expired");
            ManagerRevoke(page, op_id);
          }
          for (const Probe& pr : probes) {
            base::WireWriter w;
            w.U32(pr.page);
            w.U64(pr.op_id);
            stats_.Inc("dsm.confirm_probes");
            endpoint_.Notify(pr.requester, kOpConfirmProbe,
                             std::move(w).Take());
          }
        }
      },
      /*daemon=*/true);
}

void Host::Compute(double units, bool floating_point) {
  const SimDuration per = floating_point ? profile_->float_work_cost
                                         : profile_->int_work_cost;
  const auto work = static_cast<SimDuration>(units * static_cast<double>(per));
  // Schedule the work onto this host's CPUs: with more runnable threads than
  // processors, compute time-shares (the Firefly has ~5 usable CPUs; the Sun
  // one). Pick the earliest-free CPU and queue behind it.
  SimTime start;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto best = std::min_element(cpu_busy_until_.begin(),
                                 cpu_busy_until_.end());
    start = std::max(rt_.Now(), *best);
    *best = start + work;
  }
  // On the real-time runtime the clock advances between the slot
  // computation and this call; the remaining delay can have elapsed already.
  rt_.Delay(std::max<SimDuration>(0, start + work - rt_.Now()));
}

LocalPageEntry Host::LocalEntrySnapshot(PageNum p) {
  std::lock_guard<std::mutex> lk(state_mu_);
  return ptable_.Local(p);
}

std::optional<net::HostId> Host::ApplyTypeSet(PageNum p, arch::TypeId type,
                                              std::uint32_t alloc_bytes) {
  std::lock_guard<std::mutex> lk(state_mu_);
  ManagerEntry* m = dir_.FindManager(p);
  if (m == nullptr) {
    // The page's management migrated away (dynamic directory): tell the
    // caller where, so the authoritative type reaches the live entry. With
    // neither entry nor forward a reclaim is in flight; the rebuild restores
    // the type from survivor claims, so there is nowhere to apply it now.
    const Directory::Forward* fwd = dir_.ForwardOf(p);
    if (fwd == nullptr) return std::nullopt;
    return fwd->to;
  }
  m->type = type;
  m->alloc_bytes = std::max(m->alloc_bytes, alloc_bytes);
  LocalPageEntry& e = ptable_.Local(p);
  if (e.access != Access::kNone) {
    e.type = type;
    e.alloc_bytes = m->alloc_bytes;
  }
  return std::nullopt;
}

std::uint64_t Host::ManagerGrantsTotal() {
  std::lock_guard<std::mutex> lk(state_mu_);
  return mgr_grants_total_;
}

void Host::CountManagerLoad(std::uint64_t* busy, std::uint64_t* pending) {
  std::lock_guard<std::mutex> lk(state_mu_);
  dir_.ForEachManaged([&](PageNum, ManagerEntry& m) {
    if (m.busy || m.migrating) ++*busy;
    *pending += m.pending.size();
  });
}

net::Endpoint::CallOpts Host::DsmCallOpts() const {
  net::Endpoint::CallOpts opts;
  opts.timeout = cfg_.call_timeout;
  opts.max_attempts = cfg_.call_max_attempts;
  return opts;
}

// --------------------------------------------------------------------------
// Fault path
// --------------------------------------------------------------------------

void Host::EnsureAccess(PageNum p, Access needed) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (ptable_.Local(p).access >= needed) return;
    }
    FaultGroup(p, needed);
  }
}

void Host::FaultGroup(PageNum p, Access needed) {
  const SimTime start = rt_.Now();
  stats_.Inc("dsm.vm_faults");
  // The user-level fault handler invocation + page table processing
  // (Table 1; the request send cost is modeled by the network).
  rt_.Delay(needed == Access::kWrite ? profile_->fault_cost_write
                                     : profile_->fault_cost_read);
  stats_.Sample(needed == Access::kWrite ? "dsm.fault_handling_w_ms"
                                         : "dsm.fault_handling_r_ms",
                ToMillis(rt_.Now() - start));

  // A host whose VM page spans several DSM pages must fill the whole VM
  // page ("multiple DSM pages will be moved to fill that (large) page").
  PageNum first = p;
  PageNum count = 1;
  if (profile_->vm_page_size > page_bytes_) {
    const PageNum per_vm = profile_->vm_page_size / page_bytes_;
    first = p - (p % per_vm);
    count = per_vm;
  }
  const PageNum total = ptable_.num_pages();
  const PageNum last = std::min<PageNum>(first + count, total);
  FaultTelemetry telem;
  if (cfg_.release_consistency && needed == Access::kWrite) {
    // Release consistency (§12): a write fault never invalidates the
    // copyset. Fault the page in for reading, then twin it and write
    // locally; the deferred writes flush to the home at the next release.
    for (PageNum q = first; q < last; ++q) {
      for (;;) {
        FaultOne(q, Access::kRead, &telem, nullptr);
        const RcTwinResult tr = RcTwinPage(q);
        if (tr == RcTwinResult::kOk) break;
        if (tr == RcTwinResult::kCapacity) RcFlushTwins();
        // kNoCopy (the read copy vanished before the twin) or capacity
        // flushed: refault and try again.
      }
    }
  } else if (cfg_.group_fetch && needed == Access::kRead && last - first > 1) {
    if (!FaultGroupFetch(first, last, &telem)) return;  // shutdown
  } else if (cfg_.coalesced_invalidation && needed == Access::kWrite &&
             last - first > 1) {
    std::vector<DeferredWrite> deferred;
    for (PageNum q = first; q < last; ++q) {
      FaultOne(q, needed, &telem, &deferred);
    }
    if (!FlushDeferredWrites(std::move(deferred), &telem)) return;
  } else {
    for (PageNum q = first; q < last; ++q) {
      FaultOne(q, needed, &telem, nullptr);
    }
  }
  stats_.Sample("dsm.fault_delay_ms", ToMillis(rt_.Now() - start));
  stats_.Hist("dsm.fault_service_ms", ToMillis(rt_.Now() - start));
  stats_.Hist("dsm.vm_fault_hops", static_cast<double>(telem.hops));
  stats_.Hist("dsm.vm_fault_rtts", static_cast<double>(telem.rtts));
}

void Host::FaultOne(PageNum p, Access needed, FaultTelemetry* telem,
                    std::vector<DeferredWrite>* deferred) {
  int retries = 0;
  for (;;) {
    bool start_fetch = false;
    sim::Chan<bool> waiter;
    std::uint32_t life;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (ptable_.Local(p).access >= needed) return;
      // Captured fresh every round: a crash mid-round fences that round's
      // install, and the next iteration starts a clean post-crash fault.
      life = life_;
      if (fault_inflight_[p]) {
        waiter = sim::Chan<bool>(rt_);
        fault_waiters_[p].push_back(waiter);
      } else {
        fault_inflight_[p] = true;
        start_fetch = true;
      }
    }
    if (!start_fetch) {
      // Another thread is fetching this page; re-check when it finishes.
      if (!waiter.Recv().has_value()) return;  // shutdown
      continue;
    }

    const bool is_write = needed == Access::kWrite;
    stats_.Inc(is_write ? "dsm.write_faults" : "dsm.read_faults");
    const std::uint64_t fault_ev =
        TraceEv(trace::EventKind::kFaultStart, p, 0, 0, is_write ? 1 : 0);
    TraceBind(trace::FaultKey(self_, p), fault_ev);
    bool managed_here;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      managed_here = dir_.ManagedHere(p);
    }
    const FaultOutcome outcome =
        managed_here
            ? FaultViaLocalManager(p, is_write, telem, deferred, life)
            : FaultViaRemoteManager(p, is_write, telem, deferred, life);

    std::vector<sim::Chan<bool>> waiters;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      fault_inflight_[p] = false;
      waiters.swap(fault_waiters_[p]);
    }
    for (auto& w : waiters) w.Send(true);

    switch (outcome) {
      case FaultOutcome::kShutdown:
        return;
      case FaultOutcome::kRetry:
        ++retries;
        // No silent failure: a page that stays unreachable past the retry
        // budget is a deployment fault, not something to limp past.
        if (retries > cfg_.fault_retry_limit) {
          std::fprintf(stderr,
                       "host %u: fault on page %u (%s, managed %s) "
                       "exhausted %d retry rounds\n",
                       static_cast<unsigned>(self_), static_cast<unsigned>(p),
                       is_write ? "write" : "read",
                       dir_.BaseManagedHere(p) ? "here" : "remotely", retries);
          MERMAID_CHECK_MSG(
              false, "DSM fault path exhausted retries; page unreachable");
        }
        stats_.Inc("dsm.fault_retries");
        rt_.Delay(FaultBackoff(cfg_, retries));
        break;
      case FaultOutcome::kDone:
        TraceEv(trace::EventKind::kFaultEnd, p, 0, fault_ev,
                is_write ? 1 : 0);
        // A deferred (coalesced-invalidation) write grant leaves the page
        // read-only until FlushDeferredWrites finalizes it; re-checking
        // access here would refault forever.
        if (deferred != nullptr && is_write) return;
        retries = 0;  // loop re-checks access (it may have been invalidated)
        break;
    }
  }
}

Host::FaultOutcome Host::FaultViaLocalManager(
    PageNum p, bool is_write, FaultTelemetry* telem,
    std::vector<DeferredWrite>* deferred, std::uint32_t life) {
  ManagerGrant grant;
  bool granted_inline = false;
  sim::Chan<ManagerGrant> grant_chan;
  for (;;) {
    // Our own crash/rebuild window: wait it out instead of consuming the
    // retry budget — the outage plus the claim-gathering rebuild is not
    // bounded by fault_retry_limit rounds of backoff.
    bool wait_recovery;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      wait_recovery = recovering_;
    }
    if (!wait_recovery) break;
    rt_.Delay(Milliseconds(20));
  }
  bool ghost_owner = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (recovering_) return FaultOutcome::kRetry;  // crashed again just now
    ManagerEntry* mp = dir_.FindManager(p);
    if (mp == nullptr) {
      // The entry migrated away between the dispatch check and this lock
      // (dynamic directory). The retry re-dispatches to the remote path.
      return FaultOutcome::kRetry;
    }
    ManagerEntry& m = *mp;
    const bool has_copy = ptable_.Local(p).access != Access::kNone;
    if (cfg_.crash_recovery && !m.busy && !m.migrating && m.owner == self_ &&
        !has_copy && !ptable_.Local(p).retained) {
      // The entry names this host as owner, but the copy is gone (a crash
      // of a copyset member left us promoted over a page we never held, or
      // our own amnesia outlived the record). Granting would produce a
      // dataless upgrade with nothing to upgrade; heal the entry first.
      ghost_owner = true;
    } else if (!m.busy && !m.migrating) {
      grant = BuildGrantLocked(p, self_, is_write, has_copy);
      granted_inline = true;
    } else {
      PendingTransfer t;
      t.is_write = is_write;
      t.has_copy = has_copy;
      t.requester = self_;
      grant_chan = sim::Chan<ManagerGrant>(rt_);
      t.local_grant = grant_chan;
      m.pending.push_back(std::move(t));
    }
  }
  if (ghost_owner) {
    stats_.Inc("dsm.owner_lost_detected");
    HandlePageLostLocal(p, 0, self_, /*drain=*/false);
    return FaultOutcome::kRetry;
  }
  if (!granted_inline) {
    auto g = grant_chan.Recv();
    if (!g.has_value()) return FaultOutcome::kShutdown;
    grant = *g;
    // op_id 0 is the crash sentinel: the queued transfer died with the
    // wiped manager state. Retry from scratch (with a fresh life).
    if (grant.op_id == 0) return FaultOutcome::kRetry;
  }

  FetchReply reply;
  if (grant.owner == self_) {
    // We already own the page (write upgrade): no data movement.
    std::lock_guard<std::mutex> lk(state_mu_);
    const LocalPageEntry& e = ptable_.Local(p);
    reply.op_id = grant.op_id;
    reply.data_version = e.version;
    reply.new_version = grant.new_version;
    reply.owner = self_;
    reply.type = e.type;
    reply.alloc_bytes = e.alloc_bytes;
    reply.to_invalidate = grant.to_invalidate;
    reply.has_data = false;
    reply.data_rep = arch::RepClassByte(*profile_);
    reply.mgr = self_;
  } else {
    // Fetch from the owner directly (the R/M -> O pattern of Table 4).
    base::WireWriter w;
    w.U8(kToOwner);
    w.U32(p);
    w.U64(grant.op_id);
    w.U64(grant.new_version);
    w.U8(grant.requester_has_copy ? 0 : 1);  // data_needed
    w.U16(grant.type);
    w.U32(grant.alloc_bytes);
    w.U16(static_cast<std::uint16_t>(grant.to_invalidate.size()));
    for (net::HostId h : grant.to_invalidate) w.U16(h);
    if (dir_.dynamic()) w.U16(self_);  // granting manager, echoed in reply
    auto resp = endpoint_.CallWithStatus(grant.owner,
                                         is_write ? kOpWriteReq : kOpReadReq,
                                         std::move(w).Take(),
                                         net::MsgKind::kControl,
                                         DsmCallOpts());
    if (resp.status == net::CallStatus::kShutdown) {
      return FaultOutcome::kShutdown;
    }
    if (resp.status == net::CallStatus::kTimedOut) {
      stats_.Inc("dsm.owner_fetch_timeouts");
      if (cfg_.crash_recovery && net_.HostDown(grant.owner, rt_.Now())) {
        // The owner did not merely time out, it died — and its copy with it
        // (crash-with-amnesia). Heal the entry now: promote a surviving
        // copy or apply the lost-page policy. This also clears the busy
        // grant, so no separate revoke.
        stats_.Inc("dsm.owner_lost_detected");
        HandlePageLostLocal(p, grant.op_id, grant.owner);
        return FaultOutcome::kRetry;
      }
      // The owner is unreachable: free our own grant so the entry does not
      // stay busy (other requesters may reach the owner), then retry.
      ManagerRevoke(p, grant.op_id);
      return FaultOutcome::kRetry;
    }
    reply = DecodeFetchReply(resp.body);
    if (telem != nullptr) telem->rtts += 1;
    if (reply.owner_lost) {
      // The owner of record restarted with amnesia; repair our own manager
      // entry (promote a surviving copy or apply the lost-page policy) and
      // refault.
      HandlePageLostLocal(p, grant.op_id, grant.owner);
      return FaultOutcome::kRetry;
    }
  }

  // Hop count: an upgrade/self-serve is message-free; a remote-owner fetch
  // is request + reply (the R -> O pattern; the manager leg was local).
  const std::int64_t hops = grant.owner == self_ ? 0 : 2;
  stats_.Hist("dsm.fault_hops", static_cast<double>(hops));
  if (telem != nullptr) telem->hops += hops;

  switch (CompleteTransfer(p, is_write, reply, deferred, life)) {
    case TransferResult::kShutdown:
      return FaultOutcome::kShutdown;
    case TransferResult::kFenced:
      // We crashed mid-transfer: the wiped manager state no longer knows
      // this grant, so there is nothing to commit or revoke.
      return FaultOutcome::kRetry;
    case TransferResult::kRejected:
      // Dataless grant, no copy to back it: free our own grant and refault
      // (the retry reports has_copy honestly, so data will be served).
      ManagerRevoke(p, grant.op_id);
      return FaultOutcome::kRetry;
    case TransferResult::kOk:
      break;
  }
  if (deferred != nullptr && is_write) {
    // Parked: the entry stays busy (shielding the page) until
    // FlushDeferredWrites finalizes and commits it.
    return FaultOutcome::kDone;
  }
  ManagerCommit(p, grant.op_id, self_, is_write);
  return FaultOutcome::kDone;
}

Host::FaultOutcome Host::FaultViaRemoteManager(
    PageNum p, bool is_write, FaultTelemetry* telem,
    std::vector<DeferredWrite>* deferred, std::uint32_t life) {
  // Under release consistency ownership never migrates (owner == manager ==
  // home), so the normal path is already one round trip and a hint buys
  // nothing — while a hint serve would bypass the manager's busy
  // serialization that keeps served versions and diff flushes ordered.
  if (cfg_.probable_owner && !is_write && !cfg_.release_consistency) {
    if (auto out = FaultViaHint(p, telem, life)) return *out;
  }
  base::WireWriter w;
  w.U8(kToManager);
  w.U32(p);
  net::HostId mgr;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    w.U8(ptable_.Local(p).access != Access::kNone ? 1 : 0);  // has_copy
    mgr = dir_.ManagerTarget(p);
    if (mgr == self_) {
      // We are the base manager but the entry migrated away and the learned
      // location was forgotten: chase our own forward pointer instead.
      const Directory::Forward* fwd = dir_.ForwardOf(p);
      if (fwd == nullptr) return FaultOutcome::kRetry;  // reclaim in flight
      mgr = fwd->to;
    }
  }
  if (dir_.dynamic()) w.U8(0);  // forwarding hops ridden so far
  auto resp = endpoint_.CallWithStatus(mgr, is_write ? kOpWriteReq : kOpReadReq,
                                       std::move(w).Take(),
                                       net::MsgKind::kControl, DsmCallOpts());
  if (resp.status == net::CallStatus::kShutdown) return FaultOutcome::kShutdown;
  if (resp.status == net::CallStatus::kTimedOut) {
    // The manager (or the owner it forwarded to) is unreachable. Our reply
    // channel is closed now, so a replayed grant can never be consumed; if
    // one was issued, the manager's probe/lease machinery reclaims it.
    stats_.Inc("dsm.manager_call_timeouts");
    if (dir_.dynamic()) {
      // A learned (migrated) location that stopped answering may have died;
      // fall back to the base manager next round.
      std::lock_guard<std::mutex> lk(state_mu_);
      dir_.ForgetManager(p);
    }
    return FaultOutcome::kRetry;
  }
  FetchReply reply = DecodeFetchReply(resp.body);
  if (telem != nullptr) telem->rtts += 1;
  if (reply.mgr_redirect) {
    // The addressed host no longer manages the page (stale location or an
    // exhausted forwarding chain); re-route to its suggestion.
    stats_.Inc("dsm.mgr_redirects");
    std::lock_guard<std::mutex> lk(state_mu_);
    dir_.ForgetManager(p);
    if (reply.owner != mgr && reply.owner < num_hosts_) {
      dir_.LearnManager(p, reply.owner, IncOf(reply.owner));
    }
    return FaultOutcome::kRetry;
  }
  // Under the dynamic directory the granting manager identifies itself in
  // the reply (the request may have been forwarded along migration
  // pointers); everything manager-directed below goes there.
  if (dir_.dynamic()) mgr = reply.mgr;
  if (reply.owner_lost) {
    // The manager forwarded us to an owner that has since restarted with
    // amnesia. Report the loss so the manager repairs its entry (promotes a
    // surviving copy or applies the lost-page policy), then refault.
    stats_.Inc("dsm.owner_lost_observed");
    base::WireWriter lw;
    lw.U32(p);
    lw.U64(reply.op_id);
    lw.U16(reply.owner);
    endpoint_.CallWithStatus(mgr, kOpPageLost, std::move(lw).Take(),
                             net::MsgKind::kControl, DsmCallOpts());
    return FaultOutcome::kRetry;
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (fenced_.count({p, reply.op_id}) > 0) {
      // We disowned this grant when a confirm-probe caught us without it;
      // the manager revoked it, so this late reply must not be installed.
      stats_.Inc("dsm.fenced_replies");
      return FaultOutcome::kRetry;
    }
    if (cfg_.crash_recovery && life != life_) {
      // We crashed while this reply was in flight. The wipe already cleared
      // inflight_ops_; registering now would plant a phantom op in the fresh
      // incarnation that answers confirm-probes "still working" forever and
      // gets adopted as busy by manager rebuilds. Leave the grant to the
      // manager's probe/lease reclaim.
      stats_.Inc("dsm.fenced_replies");
      return FaultOutcome::kRetry;
    }
    if (cfg_.crash_recovery &&
        (reply.op_id >> 48) < endpoint_.PeerIncarnation(mgr)) {
      // The granting manager has reincarnated since issuing this grant: its
      // rebuilt map knows nothing of the op, so installing would create a
      // holder invisible to the reconstruction. Refault against the rebuilt
      // manager instead.
      stats_.Inc("dsm.dead_epoch_grants");
      return FaultOutcome::kRetry;
    }
    inflight_ops_[{p, reply.op_id}] = InflightOp{is_write, reply.new_version};
    if (cfg_.probable_owner) {
      const net::HostId learned = is_write ? self_ : reply.owner;
      ptable_.SetHint(p, learned, IncOf(learned));
    }
    if (dir_.dynamic()) dir_.LearnManager(p, mgr, IncOf(mgr));
  }
  // Hop count: served by the manager itself (or an upgrade) is request +
  // reply; a forward to the owner adds the third leg (R -> M -> O -> R).
  const std::int64_t hops =
      (reply.owner == mgr || reply.owner == self_) ? 2 : 3;
  stats_.Hist("dsm.fault_hops", static_cast<double>(hops));
  if (telem != nullptr) telem->hops += hops;
  switch (CompleteTransfer(p, is_write, reply, deferred, life)) {
    case TransferResult::kShutdown: {
      std::lock_guard<std::mutex> lk(state_mu_);
      inflight_ops_.erase({p, reply.op_id});
      return FaultOutcome::kShutdown;
    }
    case TransferResult::kFenced:
      // We crashed mid-transfer (inflight_ops_ wiped with the rest) or a
      // recovery demote fenced this grant; confirming would make the manager
      // record a copy we do not hold.
      return FaultOutcome::kRetry;
    case TransferResult::kRejected: {
      // Dataless grant, no copy to back it: hand the grant back so the
      // manager unbusies now instead of at lease expiry, then refault (the
      // retry reports has_copy honestly, so data will be served). A lost
      // notify costs only the lease wait; the janitor probe reclaims it.
      base::WireWriter rw;
      rw.U32(p);
      rw.U64(reply.op_id);
      rw.U8(1);  // no_copy: the disclaim is a live "nothing here" statement
      endpoint_.Notify(mgr, kOpGrantReject, std::move(rw).Take());
      return FaultOutcome::kRetry;
    }
    case TransferResult::kOk:
      break;
  }
  if (deferred != nullptr && is_write) {
    // Parked: confirm only after FlushDeferredWrites finalizes. The op stays
    // in inflight_ops_ so a confirm-probe answers "still working".
    return FaultOutcome::kDone;
  }
  RecordCompleted(p, reply.op_id, mgr, is_write);

  base::WireWriter cw;
  cw.U32(p);
  cw.U64(reply.op_id);
  cw.U16(self_);
  cw.U8(is_write ? 1 : 0);
  endpoint_.Notify(mgr, kOpConfirm, std::move(cw).Take());
  return FaultOutcome::kDone;
}

std::optional<Host::FaultOutcome> Host::FaultViaHint(PageNum p,
                                                     FaultTelemetry* telem,
                                                     std::uint32_t life) {
  net::HostId hinted;
  bool has_copy;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    hinted = ptable_.HintOf(p);
    if (hinted == PageTable::kNoHint || hinted == self_) return std::nullopt;
    if (cfg_.crash_recovery &&
        endpoint_.PeerIncarnation(hinted) > ptable_.HintIncOf(p)) {
      // The hinted owner has reincarnated since we learned the hint: its
      // amnesiac copy is gone, so chasing it wastes a round trip.
      ptable_.SetHint(p, PageTable::kNoHint);
      stats_.Inc("dsm.hint_fenced_reincarnation");
      return std::nullopt;
    }
    has_copy = ptable_.Local(p).access != Access::kNone;
    // Open the poison window: an invalidation arriving while the hinted
    // fetch is in flight flips this flag and the reply is discarded.
    hint_poison_[p] = false;
  }
  stats_.Inc("dsm.hint_fetches");
  const std::uint64_t hint_ev =
      TraceEv(trace::EventKind::kHintFetch, p, 0,
              TraceParent(trace::FaultKey(self_, p)), hinted);
  TraceBind(trace::HintKey(self_, p), hint_ev);
  base::WireWriter w;
  w.U8(kToHintedOwner);
  w.U32(p);
  w.U8(has_copy ? 1 : 0);
  auto resp = endpoint_.CallWithStatus(hinted, kOpReadReq, std::move(w).Take(),
                                       net::MsgKind::kControl, DsmCallOpts());
  bool poisoned = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (auto it = hint_poison_.find(p); it != hint_poison_.end()) {
      poisoned = it->second;
      hint_poison_.erase(it);
    }
  }
  if (resp.status == net::CallStatus::kShutdown) {
    return FaultOutcome::kShutdown;
  }
  if (telem != nullptr) telem->rtts += 1;
  if (resp.status == net::CallStatus::kTimedOut) {
    // The hinted host is unreachable: forget the hint and take the normal
    // manager path this round.
    stats_.Inc("dsm.hint_timeouts");
    std::lock_guard<std::mutex> lk(state_mu_);
    if (ptable_.HintOf(p) == hinted) ptable_.SetHint(p, PageTable::kNoHint);
    return std::nullopt;
  }
  FetchReply reply = DecodeFetchReply(resp.body);
  if (reply.mgr_redirect) {
    // The hinted host bounced us toward the page's manager (dynamic
    // directory, forwarding chain exhausted); re-route and refault.
    stats_.Inc("dsm.mgr_redirects");
    std::lock_guard<std::mutex> lk(state_mu_);
    dir_.ForgetManager(p);
    if (reply.owner < num_hosts_ && reply.owner != self_) {
      dir_.LearnManager(p, reply.owner, IncOf(reply.owner));
    }
    return FaultOutcome::kRetry;
  }
  // The manager every manager-directed message below goes to: under the
  // dynamic directory a real grant names its granting manager; a direct
  // hint serve (op_id 0) has no manager leg, so fall back to the routed
  // location.
  net::HostId mgr;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (dir_.dynamic() && reply.op_id != 0) {
      mgr = reply.mgr;
    } else {
      mgr = dir_.ManagerTarget(p);
      if (mgr == self_) {
        const Directory::Forward* fwd = dir_.ForwardOf(p);
        mgr = fwd != nullptr ? fwd->to : self_;
      }
    }
  }
  if (reply.op_id == 0) {
    // Hint hit: the hinted owner served directly (2 hops, no manager leg).
    if (poisoned) {
      // An invalidation crossed the serve in flight; the image may predate
      // the writer's commit. Discard and refault.
      stats_.Inc("dsm.hint_poisoned");
      return FaultOutcome::kRetry;
    }
    stats_.Inc("dsm.hint_hits");
    switch (CompleteTransfer(p, /*is_write=*/false, reply, nullptr, life)) {
      case TransferResult::kShutdown:
        return FaultOutcome::kShutdown;
      case TransferResult::kFenced:
      case TransferResult::kRejected:  // unreachable: direct serves carry data
        return FaultOutcome::kRetry;
      case TransferResult::kOk:
        break;
    }
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      ptable_.SetHint(p, reply.owner, IncOf(reply.owner));
    }
    // Tell the manager we hold a copy so future writers invalidate us; the
    // owner keeps us in hinted_pending_ until the manager confirms coverage.
    // (Skipping the notify is safe — the owner's hinted_pending_ keeps us an
    // invalidation target until a covering confirm lands somewhere.)
    if (mgr != self_) {
      base::WireWriter cw;
      cw.U32(p);
      cw.U64(reply.data_version);
      endpoint_.Notify(mgr, kOpHintConfirm, std::move(cw).Take());
    }
    stats_.Hist("dsm.fault_hops", 2.0);
    if (telem != nullptr) telem->hops += 2;
    return FaultOutcome::kDone;
  }
  // Stale hint: the hinted host re-forwarded through the manager and a real
  // grant came back. Handle it exactly like a manager-path reply.
  stats_.Inc("dsm.hint_stale_replies");
  if (reply.owner_lost) {
    stats_.Inc("dsm.owner_lost_observed");
    base::WireWriter lw;
    lw.U32(p);
    lw.U64(reply.op_id);
    lw.U16(reply.owner);
    endpoint_.CallWithStatus(mgr, kOpPageLost, std::move(lw).Take(),
                             net::MsgKind::kControl, DsmCallOpts());
    return FaultOutcome::kRetry;
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (fenced_.count({p, reply.op_id}) > 0) {
      stats_.Inc("dsm.fenced_replies");
      return FaultOutcome::kRetry;
    }
    if (cfg_.crash_recovery && life != life_) {
      // Crashed mid-flight: see FaultViaRemoteManager — registering would
      // leak a phantom inflight op into the fresh incarnation.
      stats_.Inc("dsm.fenced_replies");
      return FaultOutcome::kRetry;
    }
    if (cfg_.crash_recovery &&
        (reply.op_id >> 48) < endpoint_.PeerIncarnation(mgr)) {
      stats_.Inc("dsm.dead_epoch_grants");
      return FaultOutcome::kRetry;
    }
    inflight_ops_[{p, reply.op_id}] =
        InflightOp{/*is_write=*/false, reply.new_version};
    ptable_.SetHint(p, reply.owner, IncOf(reply.owner));
    if (dir_.dynamic()) dir_.LearnManager(p, mgr, IncOf(mgr));
  }
  switch (CompleteTransfer(p, /*is_write=*/false, reply, nullptr, life)) {
    case TransferResult::kShutdown: {
      std::lock_guard<std::mutex> lk(state_mu_);
      inflight_ops_.erase({p, reply.op_id});
      return FaultOutcome::kShutdown;
    }
    case TransferResult::kFenced:
      return FaultOutcome::kRetry;
    case TransferResult::kRejected: {
      base::WireWriter rw;
      rw.U32(p);
      rw.U64(reply.op_id);
      rw.U8(1);  // no_copy
      endpoint_.Notify(mgr, kOpGrantReject, std::move(rw).Take());
      return FaultOutcome::kRetry;
    }
    case TransferResult::kOk:
      break;
  }
  RecordCompleted(p, reply.op_id, mgr, /*is_write=*/false);
  base::WireWriter cw;
  cw.U32(p);
  cw.U64(reply.op_id);
  cw.U16(self_);
  cw.U8(0);
  endpoint_.Notify(mgr, kOpConfirm, std::move(cw).Take());
  // Requester -> hinted -> manager [-> owner] -> requester.
  const std::int64_t hops =
      (reply.owner == mgr || reply.owner == self_) ? 3 : 4;
  stats_.Hist("dsm.fault_hops", static_cast<double>(hops));
  if (telem != nullptr) telem->hops += hops;
  return FaultOutcome::kDone;
}

bool Host::FaultGroupFetch(PageNum first, PageNum last,
                           FaultTelemetry* telem) {
  // Claim pass: take the local fault-coalescing slot for every page this
  // batch will fetch. Pages another thread is already fetching, and
  // locally-managed pages whose entry is busy, are left to the per-page
  // fallback at the end.
  std::vector<PageNum> claimed;
  std::map<net::HostId, std::vector<GroupReqEntry>> calls;
  struct LocalGrant {
    PageNum page = 0;
    ManagerGrant grant;
    std::uint64_t data_version = 0;
  };
  std::vector<LocalGrant> local_grants;
  std::uint32_t life;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    life = life_;
    for (PageNum p = first; p < last; ++p) {
      if (ptable_.Local(p).access >= Access::kRead) continue;
      if (fault_inflight_[p]) continue;
      if (dir_.ManagedHere(p)) {
        ManagerEntry* me = dir_.FindManager(p);
        if (recovering_ || me->busy || me->migrating) continue;
        fault_inflight_[p] = true;
        claimed.push_back(p);
        const std::uint64_t fev =
            TraceEv(trace::EventKind::kFaultStart, p, 0, 0, 0);
        TraceBind(trace::FaultKey(self_, p), fev);
        stats_.Inc("dsm.read_faults");
        const bool has_copy = ptable_.Local(p).access != Access::kNone;
        ManagerGrant g = BuildGrantLocked(p, self_, /*is_write=*/false,
                                          has_copy);
        if (g.owner == self_) {
          local_grants.push_back({p, g, ptable_.Local(p).version});
        } else {
          GroupReqEntry e;
          e.role = kToOwner;
          e.page = p;
          e.op_id = g.op_id;
          e.new_version = g.new_version;
          e.data_needed = !g.requester_has_copy;
          e.type = g.type;
          e.alloc_bytes = g.alloc_bytes;
          e.mgr = self_;
          calls[g.owner].push_back(e);
        }
      } else {
        // Route through the directory; pages mid-reclaim (base placement
        // with no forward) are left to the per-page fallback, which retries
        // until the entry is rebuilt.
        net::HostId tgt = dir_.ManagerTarget(p);
        if (tgt == self_) {
          const Directory::Forward* fwd = dir_.ForwardOf(p);
          if (fwd == nullptr) continue;
          tgt = fwd->to;
        }
        fault_inflight_[p] = true;
        claimed.push_back(p);
        const std::uint64_t fev =
            TraceEv(trace::EventKind::kFaultStart, p, 0, 0, 0);
        TraceBind(trace::FaultKey(self_, p), fev);
        stats_.Inc("dsm.read_faults");
        GroupReqEntry e;
        e.role = kToManager;
        e.page = p;
        e.has_copy = ptable_.Local(p).access != Access::kNone;
        calls[tgt].push_back(e);
      }
    }
  }
  const auto release_claims = [&] {
    std::vector<sim::Chan<bool>> waiters;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      for (PageNum p : claimed) {
        fault_inflight_[p] = false;
        auto& ws = fault_waiters_[p];
        waiters.insert(waiters.end(), ws.begin(), ws.end());
        ws.clear();
      }
    }
    for (auto& w : waiters) w.Send(true);
  };

  // Pre-granted pages this host already owns (re-animation of a retained
  // copy): message-free, like the local-manager upgrade path.
  for (const LocalGrant& lg : local_grants) {
    FetchReply r;
    r.op_id = lg.grant.op_id;
    r.data_version = lg.data_version;
    r.new_version = lg.grant.new_version;
    r.owner = self_;
    r.type = lg.grant.type;
    r.alloc_bytes = lg.grant.alloc_bytes;
    r.has_data = false;
    r.data_rep = arch::RepClassByte(*profile_);
    switch (CompleteTransfer(lg.page, /*is_write=*/false, r, nullptr, life)) {
      case TransferResult::kShutdown:
        release_claims();
        return false;
      case TransferResult::kFenced:
        continue;  // the per-page fallback refaults it post-crash
      case TransferResult::kRejected:
        // Ghost self-ownership (no copy, no retained image): free the
        // grant; the per-page fallback heals the entry and refaults.
        ManagerRevoke(lg.page, lg.grant.op_id);
        continue;
      case TransferResult::kOk:
        break;
    }
    ManagerCommit(lg.page, lg.grant.op_id, self_, /*is_write=*/false);
  }

  // Call rounds: one kOpGroupFetch per destination; redirects (a remote
  // manager naming a third-party owner) regroup by owner for the next
  // round. Depth is bounded — owners never redirect — so two rounds is the
  // worst case; the loop guard is belt and braces.
  std::map<net::HostId, std::vector<std::pair<PageNum, std::uint64_t>>>
      confirms;
  const auto reject_grants = [&](const std::vector<GroupReqEntry>& entries) {
    for (const GroupReqEntry& e : entries) {
      if (e.role != kToOwner) continue;
      const net::HostId gm =
          dir_.dynamic() ? e.mgr : dir_.BaseManagerOf(e.page);
      if (gm == self_) {
        ManagerRevoke(e.page, e.op_id);
      } else {
        base::WireWriter w;
        w.U32(e.page);
        w.U64(e.op_id);
        w.U8(0);  // abandonment only: says nothing about our copy state
        endpoint_.Notify(gm, kOpGrantReject, std::move(w).Take());
      }
    }
  };
  auto current = std::move(calls);
  for (int depth = 0; depth < 3 && !current.empty(); ++depth) {
    std::map<net::HostId, std::vector<GroupReqEntry>> next;
    for (auto& [dst, entries] : current) {
      stats_.Inc("dsm.group_fetches");
      TraceEv(trace::EventKind::kGroupFetch, entries.front().page, 0,
              TraceParent(trace::FaultKey(self_, entries.front().page)),
              static_cast<std::int64_t>(entries.size()), dst);
      auto resp = endpoint_.CallWithStatus(dst, kOpGroupFetch,
                                           EncodeGroupRequest(entries),
                                           net::MsgKind::kControl,
                                           DsmCallOpts());
      if (resp.status == net::CallStatus::kShutdown) {
        release_claims();
        return false;
      }
      if (telem != nullptr) telem->rtts += 1;
      if (resp.status == net::CallStatus::kTimedOut) {
        // Free any pre-granted entries so their pages do not stay busy at
        // the managers; every page of this call falls back to FaultOne.
        stats_.Inc("dsm.group_fetch_timeouts");
        reject_grants(entries);
        continue;
      }
      auto es = DecodeGroupReply(resp.body);
      // Whole-batch hop count: one request leg (plus the manager-to-owner
      // forward when any grant came from a third host) and one reply leg.
      bool forwarded = false;
      for (const GroupReplyEntry& e : es) {
        if (e.status == 1 && e.fr.owner != dst && e.fr.owner != self_) {
          forwarded = true;
        }
      }
      const std::int64_t hops = forwarded ? 3 : 2;
      stats_.Hist("dsm.fault_hops", static_cast<double>(hops));
      if (telem != nullptr) telem->hops += hops;
      for (GroupReplyEntry& e : es) {
        if (e.status == 0) {
          stats_.Inc("dsm.group_fetch_busy");  // falls back to FaultOne
          continue;
        }
        if (e.status == 2) {
          next[e.redirect_owner].push_back(e.redirect);
          continue;
        }
        if (e.status == 3) {
          // The batched owner fetch hit an amnesiac restart: report the
          // loss to the page's manager so it repairs the entry; the page
          // itself is swept up by the per-page fallback below.
          stats_.Inc("dsm.owner_lost_observed");
          const net::HostId gm = dir_.dynamic()
                                     ? e.redirect.mgr
                                     : dir_.BaseManagerOf(e.page);
          if (gm == self_) {
            HandlePageLostLocal(e.page, e.redirect.op_id, e.redirect_owner);
          } else {
            base::WireWriter lw;
            lw.U32(e.page);
            lw.U64(e.redirect.op_id);
            lw.U16(e.redirect_owner);
            endpoint_.Notify(gm, kOpPageLost, std::move(lw).Take());
          }
          continue;
        }
        const net::HostId grant_mgr =
            dir_.dynamic() ? e.fr.mgr : dir_.BaseManagerOf(e.page);
        const bool local_mgr = grant_mgr == self_;
        if (!local_mgr) {
          std::lock_guard<std::mutex> lk(state_mu_);
          if (fenced_.count({e.page, e.fr.op_id}) > 0) {
            stats_.Inc("dsm.fenced_replies");
            continue;
          }
          if (cfg_.crash_recovery && life != life_) {
            // Crashed mid-batch: registering would leak a phantom inflight
            // op into the fresh incarnation (see FaultViaRemoteManager).
            stats_.Inc("dsm.fenced_replies");
            continue;
          }
          if (cfg_.crash_recovery &&
              (e.fr.op_id >> 48) < endpoint_.PeerIncarnation(grant_mgr)) {
            // Grant from a dead incarnation of the page's manager: the
            // rebuilt map does not know the op; installing would create a
            // holder invisible to the reconstruction.
            stats_.Inc("dsm.dead_epoch_grants");
            continue;
          }
          inflight_ops_[{e.page, e.fr.op_id}] =
              InflightOp{/*is_write=*/false, e.fr.new_version};
          if (cfg_.probable_owner) {
            ptable_.SetHint(e.page, e.fr.owner, IncOf(e.fr.owner));
          }
          if (dir_.dynamic()) {
            dir_.LearnManager(e.page, grant_mgr, IncOf(grant_mgr));
          }
        }
        switch (CompleteTransfer(e.page, /*is_write=*/false, e.fr, nullptr,
                                 life)) {
          case TransferResult::kShutdown:
            release_claims();
            return false;
          case TransferResult::kFenced:
            continue;  // swept up post-crash by the per-page fallback
          case TransferResult::kRejected: {
            // Free the stale dataless grant; the per-page fallback refaults
            // this page with an honest has_copy claim.
            if (local_mgr) {
              ManagerRevoke(e.page, e.fr.op_id);
            } else {
              base::WireWriter rw;
              rw.U32(e.page);
              rw.U64(e.fr.op_id);
              rw.U8(1);  // no_copy
              endpoint_.Notify(grant_mgr, kOpGrantReject,
                               std::move(rw).Take());
            }
            continue;
          }
          case TransferResult::kOk:
            break;
        }
        if (local_mgr) {
          ManagerCommit(e.page, e.fr.op_id, self_, /*is_write=*/false);
        } else {
          RecordCompleted(e.page, e.fr.op_id, grant_mgr, /*is_write=*/false);
          confirms[grant_mgr].push_back({e.page, e.fr.op_id});
        }
      }
    }
    current = std::move(next);
  }
  // Unconsumed redirects past the depth guard (cannot happen with a
  // well-formed peer): free their grants so the pages do not wedge.
  for (const auto& [dst, entries] : current) reject_grants(entries);

  // One batched confirm per remote manager covers every page it granted.
  for (const auto& [mgr, ops] : confirms) {
    base::WireWriter w;
    w.U16(static_cast<std::uint16_t>(ops.size()));
    for (const auto& [page, op_id] : ops) {
      w.U32(page);
      w.U64(op_id);
      w.U8(0);  // read
    }
    endpoint_.Notify(mgr, kOpGroupConfirm, std::move(w).Take());
  }
  for (PageNum p : claimed) {
    TraceEv(trace::EventKind::kFaultEnd, p, 0,
            TraceParent(trace::FaultKey(self_, p)), 0);
  }
  release_claims();
  // Per-page fallback sweeps up everything the batch could not serve (busy
  // entries, timeouts, fenced grants, pages other threads were fetching).
  for (PageNum p = first; p < last; ++p) {
    FaultOne(p, Access::kRead, telem, nullptr);
  }
  return true;
}

Host::TransferResult Host::CompleteTransfer(
    PageNum p, bool is_write, const FetchReply& reply,
    std::vector<DeferredWrite>* deferred, std::uint32_t life) {
  // Every locked section re-checks `life`: the blocking points in between
  // (conversion, install cost, invalidation rounds) are exactly where a
  // crash can interpose, and a zombie install after the wipe would put
  // state on this host that the fresh incarnation cannot account for.
  const auto fenced = [&] {
    stats_.Inc("dsm.fenced_transfers");
    return TransferResult::kFenced;
  };
  const GlobalAddr page_base = static_cast<GlobalAddr>(p) * page_bytes_;
  if (reply.has_data) {
    const std::size_t data_size = reply.data.size();
    {
      // Copy #2 of the data path: wire buffer -> requester memory. Writing
      // into mem_ before the entry is installed is safe: access is still
      // kNone and fault coalescing keeps local threads out of this page.
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
        return fenced();
      }
      MERMAID_CHECK(data_size <= page_bytes_);
      reply.data.CopyTo(
          std::span<std::uint8_t>(mem_.data() + page_base, data_size));
    }
    // Convert in place in mem_ (still uninstalled, so nothing can read it).
    // The codec runs here only when the payload arrived in a foreign
    // representation; when the owner pre-converted, just the calibrated
    // delay is charged — and a cache-hit image costs nothing at all.
    if (cfg_.convert_enabled &&
        !(reply.sender_converted && reply.from_cache)) {
      const bool foreign = reply.data_rep != arch::RepClassByte(*profile_);
      if (foreign || reply.sender_converted) {
        ConvertIncoming(
            p, std::span<std::uint8_t>(mem_.data() + page_base, data_size),
            reply.type, net_.ProfileOf(reply.owner), /*run_codec=*/foreign);
      }
    }
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
        return fenced();
      }
      LocalPageEntry& e = ptable_.Local(p);
      e.access = Access::kRead;
      e.owned = false;
      e.version = reply.data_version;
      e.type = reply.type;
      e.alloc_bytes = reply.alloc_bytes;
      e.retained = false;
      if (referee_ != nullptr) {
        referee_->OnInstall(self_, p, reply.data_version, Access::kRead);
      }
    }
    stats_.Inc("dsm.pages_in");
    stats_.Inc("dsm.bytes_in", static_cast<std::int64_t>(data_size));
  } else if (!is_write) {
    // A read grant without data means we hold a valid copy — possibly one we
    // relinquished in a transfer the manager has since revoked (the retained
    // bytes are still the current version; re-animate them).
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
      return fenced();
    }
    LocalPageEntry& e = ptable_.Local(p);
    if (e.access == Access::kNone && e.retained) {
      e.access = Access::kRead;
      e.retained = false;
      if (referee_ != nullptr) {
        referee_->OnInstall(self_, p, e.version, Access::kRead);
      }
    }
    if (e.access < Access::kRead) {
      // The grant trusted a has_copy claim that a crash or a revoked write
      // made stale: there is nothing here to re-animate. Discard the grant
      // (the caller frees it at the manager) and refault with the truth.
      MERMAID_CHECK_MSG(cfg_.crash_recovery,
                        "read grant without data to a host without a copy");
      FenceOpLocked(p, reply.op_id);
      inflight_ops_.erase({p, reply.op_id});
      stats_.Inc("dsm.stale_dataless_grants");
      return TransferResult::kRejected;
    }
  } else {
    // A write grant without data is an ownership upgrade. The copy being
    // upgraded may be one we relinquished in a transfer the manager has
    // since revoked (we are still the owner of record); the retained bytes
    // are the current version, so re-animate them like the read case.
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
      return fenced();
    }
    LocalPageEntry& e = ptable_.Local(p);
    if (e.access == Access::kNone && e.retained) {
      e.access = Access::kRead;
      e.retained = false;
      if (referee_ != nullptr) {
        referee_->OnInstall(self_, p, e.version, Access::kRead);
      }
    }
    if (e.access == Access::kNone) {
      // Same stale-claim discard as the read case: an upgrade-in-place with
      // no copy in place cannot be installed.
      MERMAID_CHECK_MSG(cfg_.crash_recovery,
                        "write upgrade granted to a host without a copy");
      FenceOpLocked(p, reply.op_id);
      inflight_ops_.erase({p, reply.op_id});
      stats_.Inc("dsm.stale_dataless_grants");
      return TransferResult::kRejected;
    }
    stats_.Inc("dsm.upgrades");
  }
  rt_.Delay(profile_->page_install_cost);
  const std::uint64_t install_ev =
      TraceEv(trace::EventKind::kInstall, p, reply.op_id,
              TraceParent(trace::OpKey(p, reply.op_id)), is_write ? 1 : 0,
              reply.has_data ? 1 : 0);
  TraceBind(trace::OpKey(p, reply.op_id), install_ev);

  if (is_write) {
    if (deferred != nullptr) {
      // Coalesced invalidation: park the grant. The page was installed
      // read-only above; FlushDeferredWrites runs the batched invalidation
      // and finalizes every page of the VM fault together.
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
          return fenced();
        }
        MERMAID_CHECK(ptable_.Local(p).access != Access::kNone);
      }
      const net::HostId manager =
          dir_.dynamic() ? reply.mgr : dir_.BaseManagerOf(p);
      deferred->push_back({p, reply, manager, life});
      stats_.Inc("dsm.deferred_writes");
      return TransferResult::kOk;
    }
    std::vector<net::HostId> to_invalidate = reply.to_invalidate;
    {
      // Readers this host served via the hint fast path may be missing from
      // the manager's copyset (their covering confirm raced this upgrade);
      // they hold copies and must be invalidated too.
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life != life_) return fenced();
      if (auto it = hinted_pending_.find(p); it != hinted_pending_.end()) {
        for (net::HostId h : it->second) {
          if (std::find(to_invalidate.begin(), to_invalidate.end(), h) ==
              to_invalidate.end()) {
            to_invalidate.push_back(h);
          }
        }
      }
    }
    if (!InvalidateCopies(p, to_invalidate, reply.op_id, install_ev)) {
      return TransferResult::kShutdown;
    }
    if (!FinalizeWrite(p, reply, life)) return fenced();
  }
  return TransferResult::kOk;
}

bool Host::FinalizeWrite(PageNum p, const FetchReply& reply,
                         std::uint32_t life) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (life != life_ || fenced_.count({p, reply.op_id}) != 0) {
    stats_.Inc("dsm.fenced_transfers");
    return false;
  }
  LocalPageEntry& e = ptable_.Local(p);
  e.access = Access::kWrite;
  e.owned = true;
  e.version = reply.new_version;
  e.type = reply.type;
  e.alloc_bytes = std::max(e.alloc_bytes, reply.alloc_bytes);
  e.retained = false;
  // The version just bumped: any converted images of the old version can
  // never be served again.
  DropConvertCacheLocked(p);
  // Every hint-served reader was just invalidated with the rest of the
  // copyset; the finalize also closes the hint-serve refusal window.
  hinted_pending_.erase(p);
  write_pending_.erase(p);
  if (referee_ != nullptr) {
    referee_->OnWriteGrant(self_, p, reply.new_version);
  }
  return true;
}

bool Host::InvalidateCopies(PageNum p,
                            const std::vector<net::HostId>& hosts,
                            std::uint64_t op_id, std::uint64_t parent_ev) {
  std::vector<net::HostId> targets;
  for (net::HostId h : hosts) {
    if (h != self_) targets.push_back(h);
  }
  if (targets.empty()) return true;
  stats_.Hist("dsm.invalidate_fanout",
              static_cast<double>(targets.size()));
  base::WireWriter w;
  w.U32(p);
  const auto body = std::move(w).Take();
  // Write access must not be granted until every copy is gone: re-multicast
  // to the targets that did not ack, round after round, and abort loudly if
  // a copy holder stays unreachable past the retry budget.
  for (int round = 0; !targets.empty(); ++round) {
    if (cfg_.crash_recovery) {
      // A down host's copies died with it (crash-with-amnesia): skip it
      // rather than burning the retry budget against silence.
      std::erase_if(targets,
                    [&](net::HostId h) { return net_.HostDown(h, rt_.Now()); });
      if (targets.empty()) break;
    }
    MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                      "invalidation multicast exhausted retries");
    if (round > 0) {
      stats_.Inc("dsm.invalidation_retries");
      rt_.Delay(FaultBackoff(cfg_, round));
    }
    stats_.Inc("dsm.invalidations_sent",
               static_cast<std::int64_t>(targets.size()));
    const std::uint64_t inv_ev =
        TraceEv(trace::EventKind::kInvalidateSend, p, op_id, parent_ev,
                static_cast<std::int64_t>(targets.size()), round);
    TraceBind(trace::InvKey(p), inv_ev);
    auto acks = endpoint_.MultiCallWithStatus(targets, kOpInvalidate, body,
                                              net::MsgKind::kControl,
                                              DsmCallOpts());
    if (acks.status == net::CallStatus::kShutdown) return false;
    if (acks.status == net::CallStatus::kOk) return true;
    std::vector<net::HostId> unacked;
    for (std::size_t i : acks.timed_out) unacked.push_back(targets[i]);
    targets = std::move(unacked);
  }
  return true;
}

bool Host::FlushDeferredWrites(std::vector<DeferredWrite> deferred,
                               FaultTelemetry* telem) {
  (void)telem;  // invalidation rounds count in neither hops nor rtts, so the
                // coalesced and per-page paths stay comparable
  if (deferred.empty()) return true;
  std::vector<PageNum> pages;
  std::set<net::HostId> union_targets;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    // Entries parked before a crash are fenced: the wiped state cannot back
    // their grants, so they are dropped without invalidating or confirming.
    std::erase_if(deferred, [&](const DeferredWrite& d) {
      if (d.life == life_) return false;
      stats_.Inc("dsm.fenced_transfers");
      return true;
    });
    for (const DeferredWrite& d : deferred) {
      pages.push_back(d.page);
      // Refuse hint serves until the finalize: the target union below is
      // fixed now, so no new reader may acquire a copy past it.
      write_pending_.insert(d.page);
      for (net::HostId h : d.reply.to_invalidate) {
        if (h != self_) union_targets.insert(h);
      }
      if (auto it = hinted_pending_.find(d.page);
          it != hinted_pending_.end()) {
        for (net::HostId h : it->second) {
          if (h != self_) union_targets.insert(h);
        }
      }
    }
  }
  // One batched invalidation round per copyset host, single aggregated ack
  // each. The union is safe: every page in it is being write-acquired, so
  // over-invalidating a host that only held some of the pages is the normal
  // write-invalidate outcome for those pages and a no-op for the rest.
  if (!InvalidateBatchCall(
          pages, {union_targets.begin(), union_targets.end()})) {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (PageNum p : pages) write_pending_.erase(p);
    return false;  // shutdown
  }
  // Every copy is gone: finalize and confirm each page. The confirms were
  // deferred with the invalidations, so every manager entry is still busy
  // and no competing transfer has touched these pages in between.
  std::map<net::HostId, std::vector<const DeferredWrite*>> remote_confirms;
  for (const DeferredWrite& d : deferred) {
    if (!FinalizeWrite(d.page, d.reply, d.life)) continue;  // crash-fenced
    if (d.manager == self_) {
      ManagerCommit(d.page, d.reply.op_id, self_, /*is_write=*/true);
    } else {
      RecordCompleted(d.page, d.reply.op_id, d.manager, /*is_write=*/true);
      remote_confirms[d.manager].push_back(&d);
    }
  }
  for (const auto& [mgr, ds] : remote_confirms) {
    base::WireWriter w;
    w.U16(static_cast<std::uint16_t>(ds.size()));
    for (const DeferredWrite* d : ds) {
      w.U32(d->page);
      w.U64(d->reply.op_id);
      w.U8(1);  // is_write
    }
    endpoint_.Notify(mgr, kOpGroupConfirm, std::move(w).Take());
  }
  return true;
}

bool Host::InvalidateBatchCall(const std::vector<PageNum>& pages,
                               std::vector<net::HostId> targets) {
  if (pages.empty() || targets.empty()) return true;
  stats_.Hist("dsm.invalidate_fanout", static_cast<double>(targets.size()));
  base::WireWriter w;
  w.U16(static_cast<std::uint16_t>(pages.size()));
  for (PageNum p : pages) w.U32(p);
  const auto body = std::move(w).Take();
  for (int round = 0; !targets.empty(); ++round) {
    if (cfg_.crash_recovery) {
      // Same as InvalidateCopies: a crashed host holds no copies.
      std::erase_if(targets,
                    [&](net::HostId h) { return net_.HostDown(h, rt_.Now()); });
      if (targets.empty()) break;
    }
    MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                      "batched invalidation exhausted retries");
    if (round > 0) {
      stats_.Inc("dsm.invalidation_retries");
      rt_.Delay(FaultBackoff(cfg_, round));
    }
    stats_.Inc("dsm.batch_invalidations_sent",
               static_cast<std::int64_t>(targets.size()));
    const std::uint64_t inv_ev =
        TraceEv(trace::EventKind::kInvalidateBatch, pages.front(), 0, 0,
                static_cast<std::int64_t>(targets.size()),
                static_cast<std::int64_t>(pages.size()));
    for (PageNum p : pages) TraceBind(trace::InvKey(p), inv_ev);
    auto acks = endpoint_.MultiCallWithStatus(targets, kOpInvalidateBatch,
                                              body, net::MsgKind::kControl,
                                              DsmCallOpts());
    if (acks.status == net::CallStatus::kShutdown) return false;
    if (acks.status == net::CallStatus::kOk) return true;
    std::vector<net::HostId> unacked;
    for (std::size_t i : acks.timed_out) unacked.push_back(targets[i]);
    targets = std::move(unacked);
  }
  return true;
}

// --------------------------------------------------------------------------
// Manager role
// --------------------------------------------------------------------------

ManagerGrant Host::BuildGrantLocked(PageNum p, net::HostId requester,
                                    bool is_write, bool has_copy) {
  ManagerEntry& m = dir_.Manager(p);
  MERMAID_CHECK(!m.busy);
  MERMAID_CHECK(!m.migrating);
  ++mgr_grants_total_;
  ManagerGrant g;
  g.owner = m.owner;
  // §2.3: "the number of necessary conversions can be kept to a minimum by
  // transferring a page from a host of the same type whenever possible" —
  // for read faults, serve from a same-representation copyset member
  // instead of a differently-represented owner (ownership is unchanged).
  if (!is_write && cfg_.prefer_same_type_source &&
      m.copyset.count(requester) == 0 &&
      !net_.ProfileOf(m.owner).SameRepresentation(
          net_.ProfileOf(requester))) {
    for (net::HostId h : m.copyset) {
      if (net_.ProfileOf(h).SameRepresentation(net_.ProfileOf(requester))) {
        g.owner = h;  // data source only; m.owner keeps ownership
        stats_.Inc("dsm.same_type_source");
        break;
      }
    }
  }
  // The incarnation epoch in the high bits keeps op ids from a previous
  // life of this manager disjoint from the fresh counter (which restarts at
  // zero with the amnesia wipe). Epoch 0 with crash recovery off, so
  // knobs-off wire images are unchanged.
  ++op_counter_;
  g.op_id = (static_cast<std::uint64_t>(op_epoch_) << 48) | op_counter_;
  g.new_version = is_write ? m.version + 1 : m.version;
  // Both must agree: after a revoked write grant the copyset can hold
  // phantom members whose copies the vanished writer already invalidated,
  // so the requester's own claim gates the "no data needed" shortcut.
  g.requester_has_copy = has_copy && m.copyset.count(requester) > 0;
  g.type = m.type;
  g.alloc_bytes = m.alloc_bytes;
  if (is_write) {
    for (net::HostId h : m.copyset) {
      if (h != requester && h != m.owner) g.to_invalidate.push_back(h);
    }
  }
  m.busy = true;
  m.busy_op_id = g.op_id;
  m.busy_requester = requester;
  m.busy_is_write = is_write;
  m.busy_new_version = g.new_version;
  m.busy_since = rt_.Now();
  const std::uint64_t grant_ev =
      TraceEv(trace::EventKind::kManagerGrant, p, g.op_id,
              TraceParent(trace::FaultKey(requester, p)), is_write ? 1 : 0,
              g.owner);
  TraceBind(trace::OpKey(p, g.op_id), grant_ev);
  return g;
}

void Host::ManagerIssue(PageNum p, PendingTransfer t) {
  if (cfg_.crash_recovery) {
    net::HostId owner;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      owner = dir_.Manager(p).owner;
    }
    // Note: `t.has_copy` is NOT trusted here. It was serialized when the
    // request was created, and a request can spend many retransmit rounds
    // in a lossy network while recoveries rebuild the very state it
    // describes — healing on a stale "no copy" claim has destroyed live
    // pages. An amnesiac owner-of-record instead receives the dataless
    // upgrade, rejects it (kOpGrantReject carries current truth), and the
    // reject handler heals the entry.
    const bool owner_down = owner != self_ && owner != t.requester &&
                            net_.HostDown(owner, rt_.Now());
    if (owner_down) {
      // The owner's copy died with it: heal the entry before granting, or
      // the requester would chase a corpse until its retry budget ran out.
      // op_id 0 = no grant to unbusy; drain=false because the transfer
      // being issued here is already in hand.
      stats_.Inc("dsm.owner_lost_detected");
      HandlePageLostLocal(p, 0, owner, /*drain=*/false);
    }
  }
  ManagerGrant grant;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    grant = BuildGrantLocked(p, t.requester, t.is_write, t.has_copy);
  }
  if (!t.remote.has_value()) {
    t.local_grant.Send(grant);
    return;
  }

  // Remote requester.
  const net::RequestContext& ctx = *t.remote;
  std::uint64_t data_version;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    data_version = dir_.Manager(p).version;
  }
  if (grant.owner == t.requester) {
    // Ownership upgrade: requester already owns the page; no data leg.
    FetchReply r;
    r.op_id = grant.op_id;
    r.data_version = data_version;
    r.new_version = grant.new_version;
    r.owner = grant.owner;
    r.mgr = self_;
    r.type = grant.type;
    r.alloc_bytes = grant.alloc_bytes;
    r.to_invalidate = grant.to_invalidate;
    r.has_data = false;
    r.data_rep = arch::RepClassByte(net_.ProfileOf(grant.owner));
    ctx.Reply(EncodeFetchReply(r));
    return;
  }
  if (grant.owner == self_) {
    // The manager host owns the page: serve directly (R -> M/O of Table 4).
    rt_.Delay(profile_->server_op_cost);
    auto reply = EncodeServeReply(p, t.requester, t.is_write,
                                  !grant.requester_has_copy, grant.op_id,
                                  data_version, grant.new_version, grant.type,
                                  grant.alloc_bytes, grant.to_invalidate,
                                  self_);
    ctx.Reply(std::move(reply), net::MsgKind::kData);
    return;
  }
  // Forward to the owner (R -> M -> O of Table 4).
  const std::uint64_t fwd_ev =
      TraceEv(trace::EventKind::kManagerForward, p, grant.op_id,
              TraceParent(trace::OpKey(p, grant.op_id)), grant.owner,
              t.requester);
  TraceBind(trace::OpKey(p, grant.op_id), fwd_ev);
  base::WireWriter w;
  w.U8(kToOwner);
  w.U32(p);
  w.U64(grant.op_id);
  w.U64(grant.new_version);
  w.U8(grant.requester_has_copy ? 0 : 1);
  w.U16(grant.type);
  w.U32(grant.alloc_bytes);
  w.U16(static_cast<std::uint16_t>(grant.to_invalidate.size()));
  for (net::HostId h : grant.to_invalidate) w.U16(h);
  if (dir_.dynamic()) w.U16(self_);  // granting manager, echoed in the reply
  ctx.Forward(grant.owner, std::move(w).Take());
}

void Host::ManagerCommit(PageNum p, std::uint64_t op_id,
                         net::HostId requester, bool is_write) {
  bool migrate = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* mp = dir_.FindManager(p);
    if (mp == nullptr || !mp->busy || mp->busy_op_id != op_id) {
      stats_.Inc("dsm.stale_confirms");
      return;  // duplicate confirm of an already-committed transfer
    }
    ManagerEntry& m = *mp;
    MERMAID_CHECK(m.busy_requester == requester);
    if (is_write) {
      m.owner = requester;
      m.copyset.clear();
      m.copyset.insert(requester);
      m.version = m.busy_new_version;
    } else {
      m.copyset.insert(requester);
    }
    m.busy = false;
    // Dynamic directory: management follows the writers. A committed remote
    // write means the new owner will likely keep writing; hand the entry to
    // it (always in pure dynamic mode, vote-gated in hot-page mode). The
    // migrating flag freezes the entry — no grant may issue between this
    // decision and the daemon's handshake — and RC is excluded: diff homes
    // are placement-static.
    if (is_write && requester != self_ && dir_.dynamic() &&
        !cfg_.release_consistency && !recovering_ && !m.migrating &&
        ShouldMigrateLocked(m, requester)) {
      m.migrating = true;
      migrate = true;
    }
  }
  TraceEv(trace::EventKind::kManagerCommit, p, op_id,
          TraceParent(trace::OpKey(p, op_id)), is_write ? 1 : 0, requester);
  if (migrate) {
    migrate_chan_.Send(MigrateJob{p, requester, /*reclaim=*/false});
    return;  // the entry is frozen; the daemon drains after the handshake
  }
  ManagerDrain(p);
}

bool Host::ShouldMigrateLocked(ManagerEntry& m, net::HostId requester) {
  if (!cfg_.hot_page_migration) return true;  // pure dynamic: every writer
  // Boyer–Moore majority vote over the page's remote-write commits: a
  // migration is only worth its handshake when one writer dominates.
  ++m.hot_total;
  if (m.hot_score == 0) {
    m.hot_candidate = requester;
    m.hot_score = 1;
  } else if (m.hot_candidate == requester) {
    ++m.hot_score;
  } else {
    --m.hot_score;
  }
  if (m.hot_candidate == requester &&
      m.hot_score >= static_cast<int>(cfg_.hot_page_threshold)) {
    m.hot_score = 0;  // restart the vote under the next manager
    m.hot_total = 0;
    return true;
  }
  return false;
}

void Host::ManagerDrain(PageNum p) {
  PendingTransfer next;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* m = dir_.FindManager(p);
    if (m == nullptr || m->busy || m->migrating || m->pending.empty()) {
      return;
    }
    next = std::move(m->pending.front());
    m->pending.pop_front();
  }
  ManagerIssue(p, std::move(next));
}

void Host::ManagerRevoke(PageNum p, std::uint64_t op_id) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* m = dir_.FindManager(p);
    if (m == nullptr || !m->busy || m->busy_op_id != op_id) {
      return;  // committed, re-granted, or migrated away
    }
    m->busy = false;  // owner/copyset/version deliberately unchanged
    stats_.Inc("dsm.grants_revoked");
  }
  TraceEv(trace::EventKind::kManagerRevoke, p, op_id,
          TraceParent(trace::OpKey(p, op_id)));
  ManagerDrain(p);
}

// --------------------------------------------------------------------------
// Owner role
// --------------------------------------------------------------------------

net::Body Host::EncodeServeReply(
    PageNum p, net::HostId requester, bool is_write, bool data_needed,
    std::uint64_t op_id, std::uint64_t data_version,
    std::uint64_t new_version, arch::TypeId type, std::uint32_t alloc_bytes,
    const std::vector<net::HostId>& to_invalidate, net::HostId mgr) {
  FetchReply r;
  r.op_id = op_id;
  r.data_version = data_version;
  r.new_version = new_version;
  r.owner = self_;
  r.mgr = mgr;
  r.type = type;
  r.alloc_bytes = alloc_bytes;
  r.to_invalidate = to_invalidate;
  r.has_data = data_needed;
  r.data_rep = arch::RepClassByte(*profile_);

  const GlobalAddr page_base = static_cast<GlobalAddr>(p) * page_bytes_;
  const arch::ArchProfile& req_prof = net_.ProfileOf(requester);
  const std::uint8_t req_rep = arch::RepClassByte(req_prof);
  // With the cache enabled the owner converts outgoing pages itself; the
  // receiver then skips the codec (and, for cache hits, the modeled delay).
  const bool want_convert = data_needed && cfg_.convert_enabled &&
                            cfg_.convert_cache &&
                            !profile_->SameRepresentation(req_prof);

  // Phase 1 (locked): validate, read the serve parameters, look up the
  // conversion cache, and apply the downgrade/relinquish state transition.
  std::uint32_t extent = 0;
  std::uint64_t version = 0;
  bool invalidated = false;
  bool downgraded = false;
  bool cache_hit = false;
  base::Buffer image;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    LocalPageEntry& e = ptable_.Local(p);
    // A retained entry (relinquished in a since-revoked transfer) is a legal
    // data source: the bytes are still the current version.
    MERMAID_CHECK_MSG(e.access != Access::kNone || e.retained,
                      "owner asked to serve a page it does not hold");
    version = e.version;
    if (data_needed) {
      extent = cfg_.partial_page_transfer ? std::min(alloc_bytes, page_bytes_)
                                          : page_bytes_;
      if (want_convert) {
        const ConvertCacheKey key{p, version, req_rep};
        auto it = convert_cache_.find(key);
        if (it != convert_cache_.end() && it->second.size() == extent) {
          image = it->second;
          cache_hit = true;
          // LRU promotion: a hit moves the key to the back of the eviction
          // order, so hot pages survive capacity pressure from one-shot
          // conversions.
          auto pos = std::find(convert_cache_order_.begin(),
                               convert_cache_order_.end(), key);
          if (pos != convert_cache_order_.end()) {
            convert_cache_order_.erase(pos);
            convert_cache_order_.push_back(key);
          }
        }
      }
    }
    if (is_write) {
      // Cover hint-served readers the manager may not know about yet: the
      // new writer must invalidate their copies too. The pending set itself
      // survives (only a covering confirm or our own write finalize clears
      // it) in case this grant is revoked and the write never happens.
      if (auto it = hinted_pending_.find(p); it != hinted_pending_.end()) {
        for (net::HostId h : it->second) {
          if (h != requester &&
              std::find(r.to_invalidate.begin(), r.to_invalidate.end(), h) ==
                  r.to_invalidate.end()) {
            r.to_invalidate.push_back(h);
          }
        }
      }
      // Relinquish: the new owner takes over. Keep the bytes servable in
      // case the manager revokes this grant and names us the source again.
      invalidated = e.access != Access::kNone;
      e.access = Access::kNone;
      e.owned = false;
      e.retained = true;
    } else if (e.access == Access::kWrite &&
               !(cfg_.release_consistency && rc_home_dirty_.count(p) != 0)) {
      // Downgrade to read-only; we stay the owner. (A home-dirty page under
      // release consistency keeps its write access: the reader legally gets
      // the mid-critical-section bytes at the committed version, and the
      // home's deferred writes commit at its own release.)
      downgraded = true;
      e.access = Access::kRead;
    }
  }
  if (referee_ != nullptr) {
    if (is_write && invalidated) {
      referee_->OnInvalidate(self_, p);
    } else if (downgraded) {
      referee_->OnDowngrade(self_, p);
    }
  }
  const std::uint64_t serve_ev =
      TraceEv(trace::EventKind::kOwnerServe, p, op_id,
              TraceParent(trace::OpKey(p, op_id)), extent,
              cache_hit ? 1 : 0);
  TraceBind(trace::OpKey(p, op_id), serve_ev);

  // Phase 2 (unlocked): copy and convert the page image. Safe outside
  // state_mu_: the manager entry stays busy until the requester confirms,
  // so no competing transfer can change these bytes underneath us.
  if (data_needed) {
    if (cache_hit) {
      r.data_rep = req_rep;
      r.sender_converted = true;
      r.from_cache = true;
      stats_.Inc("dsm.convert_cache_hits");
    } else {
      // Copy #1 of the data path: owner memory -> wire buffer.
      std::vector<std::uint8_t> img(mem_.begin() + page_base,
                                    mem_.begin() + page_base + extent);
      base::BulkCopyRecord(img.size());
      if (want_convert) {
        arch::ConvertStats cstats;
        arch::ConvertContext cctx;
        cctx.src = profile_;
        cctx.dst = &req_prof;
        cctx.stats = &cstats;
        ConvertSlots(registry_, type, img, extent, cctx);
        if (cstats.total_lossy() > 0) {
          stats_.Inc("dsm.convert_lossy", cstats.total_lossy());
        }
        r.data_rep = req_rep;
        r.sender_converted = true;
        stats_.Inc("dsm.convert_cache_misses");
      }
      image = base::Buffer(std::move(img));
      if (want_convert && !is_write) {
        // Cache the converted image for repeat readers of this version.
        std::lock_guard<std::mutex> lk(state_mu_);
        const ConvertCacheKey key{p, version, req_rep};
        if (convert_cache_.emplace(key, image).second) {
          convert_cache_order_.push_back(key);
          while (convert_cache_order_.size() > cfg_.convert_cache_capacity) {
            convert_cache_.erase(convert_cache_order_.front());
            convert_cache_order_.pop_front();
            stats_.Inc("dsm.convert_cache_evictions");
          }
        } else {
          convert_cache_[key] = image;  // refresh (extent grew)
        }
      }
    }
    r.data = base::BufferChain(image);
  }

  stats_.Inc("dsm.pages_served");
  if (data_needed) {
    stats_.Inc("dsm.bytes_out", static_cast<std::int64_t>(r.data.size()));
  }
  return EncodeFetchReply(r);
}

// --------------------------------------------------------------------------
// Handlers (rx daemon; never block)
// --------------------------------------------------------------------------

void Host::HandleTransferReq(net::RequestContext ctx, bool is_write) {
  base::WireReader r(ctx.body());
  r.U8();  // role
  const PageNum p = r.U32();
  const bool has_copy = r.U8() != 0;
  std::uint8_t hops = 0;
  if (dir_.dynamic()) hops = r.U8();
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);

  PendingTransfer t;
  t.is_write = is_write;
  t.has_copy = has_copy;
  t.requester = ctx.origin();
  bool issue_now = false;
  net::HostId fwd_to = self_;
  net::HostId redirect_to = self_;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (recovering_) {
      // Mid-reconstruction the manager map is untrustworthy. Drop the
      // request (no reply): the requester's call times out and retries,
      // landing after recovery finishes.
      stats_.Inc("dsm.recovery_dropped_reqs");
      return;
    }
    ManagerEntry* m = dir_.FindManager(p);
    if (m == nullptr) {
      // Dynamic mode only (a fixed/sharded misroute is malformed above):
      // the entry migrated away. Chase our forward pointer while the hop
      // budget lasts; past it, bounce the requester a redirect so the chain
      // cannot grow without limit.
      const Directory::Forward* fwd = dir_.ForwardOf(p);
      if (fwd != nullptr && cfg_.crash_recovery &&
          net_.HostDown(fwd->to, rt_.Now())) {
        // The manager this page migrated to died with its state: reclaim
        // the entry here (we are the forward holder) and let the requester
        // retry into the rebuilt entry.
        QueueReclaimLocked(p);
        return;
      }
      if (fwd != nullptr) {
        if (hops < cfg_.directory_forward_limit) {
          fwd_to = fwd->to;
        } else {
          redirect_to = fwd->to;
        }
      } else if (dir_.BaseManagedHere(p)) {
        // Base placement with neither entry nor forward: a reclaim is (or
        // is now) in flight. Drop; the requester retries into the rebuilt
        // entry.
        QueueReclaimLocked(p);
        return;
      } else {
        // Misrouted (stale learned manager): point the requester at the
        // base placement, which either manages the page or holds the start
        // of the live forward chain.
        redirect_to = dir_.BaseManagerOf(p);
      }
    } else {
      if (m->busy || m->migrating) {
        t.remote = std::move(ctx);
        m->pending.push_back(std::move(t));
        return;
      }
      t.remote = std::move(ctx);
      issue_now = true;
    }
  }
  if (issue_now) {
    ManagerIssue(p, std::move(t));
    return;
  }
  if (fwd_to != self_) {
    stats_.Inc("dsm.mgr_forwards");
    base::WireWriter w;
    w.U8(kToManager);
    w.U32(p);
    w.U8(has_copy ? 1 : 0);
    w.U8(static_cast<std::uint8_t>(hops + 1));
    ctx.Forward(fwd_to, std::move(w).Take());
    return;
  }
  MERMAID_CHECK(redirect_to != self_);
  stats_.Inc("dsm.mgr_redirects_sent");
  FetchReply rr;
  rr.mgr_redirect = true;
  rr.owner = redirect_to;  // suggestion, not an owner
  rr.mgr = self_;
  ctx.Reply(EncodeFetchReply(rr));
}

void Host::HandleOwnerFetch(net::RequestContext ctx, bool is_write) {
  base::WireReader r(ctx.body());
  r.U8();  // role
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  const std::uint64_t new_version = r.U64();
  const bool data_needed = r.U8() != 0;
  const arch::TypeId type = r.U16();
  const std::uint32_t alloc_bytes = r.U32();
  const std::uint16_t n_inv = r.U16();
  std::vector<net::HostId> to_invalidate(n_inv);
  for (auto& h : to_invalidate) h = r.U16();
  net::HostId mgr = 0;
  if (dir_.dynamic()) mgr = r.U16();  // granting manager, echoed back
  if (!r.ok()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  std::uint64_t data_version = 0;
  bool lost = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    const LocalPageEntry& e = ptable_.Local(p);
    if (cfg_.crash_recovery && e.access == Access::kNone && !e.retained) {
      // Amnesia: the grant names this host as owner, but the copy died with
      // a previous life. EncodeServeReply would abort on the missing copy;
      // a minimal owner_lost reply sends the requester to the manager to
      // report the loss instead.
      lost = true;
    } else {
      data_version = e.version;
    }
  }
  if (lost) {
    stats_.Inc("dsm.owner_lost_detected");
    TraceEv(trace::EventKind::kOwnerLost, p, op_id,
            TraceParent(trace::OpKey(p, op_id)), self_);
    FetchReply fr;
    fr.op_id = op_id;
    fr.owner = self_;
    fr.mgr = mgr;
    fr.owner_lost = true;
    ctx.Reply(EncodeFetchReply(fr));
    return;
  }
  auto reply = EncodeServeReply(p, ctx.origin(), is_write, data_needed, op_id,
                                data_version, new_version, type, alloc_bytes,
                                to_invalidate, mgr);
  ctx.Reply(std::move(reply),
            data_needed ? net::MsgKind::kData : net::MsgKind::kControl);
}

void Host::HandleHintedFetch(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  r.U8();  // role
  const PageNum p = r.U32();
  const bool has_copy = r.U8() != 0;
  if (!r.ok() || p >= ptable_.num_pages()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  bool servable = false;
  std::uint64_t version = 0;
  arch::TypeId type = 0;
  std::uint32_t alloc_bytes = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    LocalPageEntry& e = ptable_.Local(p);
    // Serve only from a stable owned copy: not while this host is itself
    // faulting the page, and not inside a coalesced write's finalize window
    // (the batched invalidation's target union is already fixed).
    if (e.owned && e.access != Access::kNone && !fault_inflight_[p] &&
        write_pending_.count(p) == 0) {
      servable = true;
      version = e.version;
      type = e.type;
      alloc_bytes = e.alloc_bytes;
      // Track the reader until the manager confirms it joined the copyset:
      // any write serve in between carries it as an invalidation target.
      hinted_pending_[p].insert(ctx.origin());
    }
  }
  if (servable) {
    stats_.Inc("dsm.hint_serves");
    const std::uint64_t ev =
        TraceEv(trace::EventKind::kHintServe, p, 0,
                TraceParent(trace::HintKey(ctx.origin(), p)), alloc_bytes);
    TraceBind(trace::HintKey(ctx.origin(), p), ev);
    // op_id 0 marks a hint-served (manager-less) reply; version doubles as
    // data and "new" version since nothing changes.
    auto reply = EncodeServeReply(p, ctx.origin(), /*is_write=*/false,
                                  /*data_needed=*/!has_copy, /*op_id=*/0,
                                  version, version, type, alloc_bytes, {},
                                  /*mgr=*/0);
    ctx.Reply(std::move(reply), net::MsgKind::kData);
    return;
  }
  // Stale hint: pass the request down the ownership chain — into our own
  // manager queue when we manage the page, else forwarded to the manager as
  // a normal transfer request. Either way the requester pays exactly one
  // extra hop and the reply carries a real (non-zero) op id.
  stats_.Inc("dsm.hint_stale");
  const std::uint64_t stale_ev =
      TraceEv(trace::EventKind::kHintStale, p, 0,
              TraceParent(trace::HintKey(ctx.origin(), p)),
              dir_.BaseManagerOf(p));
  // Bind under the requester's fault key so the manager's grant chains
  // through the stale-forward event.
  TraceBind(trace::FaultKey(ctx.origin(), p), stale_ev);
  PendingTransfer t;
  t.is_write = false;
  t.has_copy = has_copy;
  t.requester = ctx.origin();
  bool issue_now = false;
  net::HostId fwd_tgt = self_;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* m = dir_.FindManager(p);
    if (m != nullptr) {
      if (recovering_) {
        // Same as HandleTransferReq: no reply while rebuilding, the
        // requester times out and retries.
        stats_.Inc("dsm.recovery_dropped_reqs");
        return;
      }
      t.remote = std::move(ctx);
      if (m->busy || m->migrating) {
        m->pending.push_back(std::move(t));
        return;
      }
      issue_now = true;
    } else {
      fwd_tgt = dir_.ManagerTarget(p);
      if (fwd_tgt == self_) {
        const Directory::Forward* fwd = dir_.ForwardOf(p);
        // No forward either: a reclaim is in flight; drop so the
        // requester's call times out and retries the rebuilt entry.
        fwd_tgt = fwd != nullptr ? fwd->to : self_;
      }
    }
  }
  if (issue_now) {
    ManagerIssue(p, std::move(t));
    return;
  }
  if (fwd_tgt == self_) return;
  base::WireWriter w;
  w.U8(kToManager);
  w.U32(p);
  w.U8(has_copy ? 1 : 0);
  if (dir_.dynamic()) w.U8(0);  // forwarding-hop budget starts fresh
  ctx.Forward(fwd_tgt, std::move(w).Take());
}

void Host::HandleHintConfirm(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t version = r.U64();
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  bool covered = false;
  net::HostId owner = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* mp = dir_.FindManager(p);
    if (mp == nullptr) {
      // Dynamic: the entry migrated away. Chase the forward once; a dropped
      // confirm is safe either way (the owner's hinted_pending_ keeps the
      // reader an invalidation target).
      if (!ForwardNotifyLocked(p, kOpHintConfirm, ctx.body())) {
        stats_.Inc("dsm.hint_confirms_dropped");
      }
      return;
    }
    ManagerEntry& m = *mp;
    // Only a quiescent entry at the served version can absorb the reader: a
    // busy entry means a transfer (possibly a write) is in flight, and a
    // version mismatch means the serve predates a committed write. Either
    // way the owner keeps the reader in hinted_pending_ and every write
    // serve covers it until this confirm eventually lands. A recovering
    // manager also drops it: the entry is about to be rebuilt from claims.
    if (!recovering_ && !m.busy && !m.migrating && m.version == version) {
      m.copyset.insert(ctx.origin());
      covered = true;
      owner = m.owner;
    }
  }
  if (!covered) {
    stats_.Inc("dsm.hint_confirms_dropped");
    return;
  }
  stats_.Inc("dsm.hint_confirms");
  if (owner == self_) {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (auto it = hinted_pending_.find(p); it != hinted_pending_.end()) {
      it->second.erase(ctx.origin());
      if (it->second.empty()) hinted_pending_.erase(it);
    }
    return;
  }
  base::WireWriter w;
  w.U32(p);
  w.U16(ctx.origin());
  endpoint_.Notify(owner, kOpHintCovered, std::move(w).Take());
}

void Host::HandleHintCovered(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const net::HostId reader = r.U16();
  if (!r.ok()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  std::lock_guard<std::mutex> lk(state_mu_);
  if (auto it = hinted_pending_.find(p); it != hinted_pending_.end()) {
    it->second.erase(reader);
    if (it->second.empty()) hinted_pending_.erase(it);
  }
}

void Host::HandleGroupFetch(net::RequestContext ctx) {
  bool ok = true;
  auto entries = DecodeGroupRequest(ctx.body(), &ok);
  if (!ok || entries.empty()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  // One server operation covers the whole batch — the point of the fast
  // path (versus one per page on the per-page path).
  rt_.Delay(profile_->server_op_cost);
  struct Prep {
    ManagerGrant g;
    std::uint64_t data_version = 0;
    bool granted = false;
    bool busy = false;
    bool lost = false;  // named owner but the copy died with a past life
  };
  std::vector<Prep> preps(entries.size());
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const GroupReqEntry& req = entries[i];
      Prep& pr = preps[i];
      if (req.page >= ptable_.num_pages()) {
        pr.busy = true;
        continue;
      }
      if (req.role == kToOwner) {
        // Pre-granted fetch against our local copy.
        const LocalPageEntry& e = ptable_.Local(req.page);
        if (cfg_.crash_recovery && e.access == Access::kNone && !e.retained) {
          pr.lost = true;
          continue;
        }
        pr.data_version = e.version;
        continue;
      }
      ManagerEntry* m = dir_.FindManager(req.page);
      if (m == nullptr || recovering_ || m->busy || m->migrating) {
        // Absent entries (migrated away under the dynamic directory) fall
        // back to the per-page path, which chases the forward chain.
        pr.busy = true;
        continue;
      }
      pr.g = BuildGrantLocked(req.page, ctx.origin(), /*is_write=*/false,
                              req.has_copy);
      pr.data_version = m->version;
      pr.granted = true;
    }
  }
  std::vector<GroupReplyEntry> res(entries.size());
  std::vector<net::Body> bodies;
  bool all_redirect = true;
  bool any_redirect = false;
  net::HostId redirect_owner = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const GroupReqEntry& req = entries[i];
    Prep& pr = preps[i];
    GroupReplyEntry& e = res[i];
    e.page = req.page;
    if (pr.busy) {
      e.status = 0;  // requester falls back to the per-page path
      all_redirect = false;
      continue;
    }
    if (req.role == kToOwner) {
      if (pr.lost) {
        // Status 3: the grant named us owner but our copy died in a crash.
        // The redirect fields carry the grant id and this (dead) owner so
        // the requester can report the loss to the manager.
        e.status = 3;
        e.redirect.op_id = req.op_id;
        e.redirect.mgr = req.mgr;  // echoed so the loss report finds it
        e.redirect_owner = self_;
        all_redirect = false;
        stats_.Inc("dsm.owner_lost_detected");
        TraceEv(trace::EventKind::kOwnerLost, req.page, req.op_id,
                TraceParent(trace::OpKey(req.page, req.op_id)), self_);
        continue;
      }
      e.status = 1;
      bodies.push_back(EncodeServeReply(
          req.page, ctx.origin(), /*is_write=*/false, req.data_needed,
          req.op_id, pr.data_version, req.new_version, req.type,
          req.alloc_bytes, {}, req.mgr));
      all_redirect = false;
      continue;
    }
    if (pr.g.owner == ctx.origin()) {
      // Requester already owns the page (retained copy): no data leg.
      FetchReply fr;
      fr.op_id = pr.g.op_id;
      fr.data_version = pr.data_version;
      fr.new_version = pr.g.new_version;
      fr.owner = pr.g.owner;
      fr.mgr = self_;
      fr.type = pr.g.type;
      fr.alloc_bytes = pr.g.alloc_bytes;
      fr.has_data = false;
      fr.data_rep = arch::RepClassByte(net_.ProfileOf(pr.g.owner));
      e.status = 1;
      bodies.push_back(EncodeFetchReply(fr));
      all_redirect = false;
    } else if (pr.g.owner == self_) {
      // Manager host owns the page: serve directly (R -> M/O).
      e.status = 1;
      bodies.push_back(EncodeServeReply(
          req.page, ctx.origin(), /*is_write=*/false,
          !pr.g.requester_has_copy, pr.g.op_id, pr.data_version,
          pr.g.new_version, pr.g.type, pr.g.alloc_bytes, {}, self_));
      all_redirect = false;
    } else {
      // Third-party owner: hand the grant parameters back so the requester
      // batches a direct owner fetch — unless EVERY entry redirects to the
      // same owner, in which case the whole group is forwarded below.
      e.status = 2;
      e.redirect_owner = pr.g.owner;
      e.redirect.role = kToOwner;
      e.redirect.page = req.page;
      e.redirect.op_id = pr.g.op_id;
      e.redirect.new_version = pr.g.new_version;
      e.redirect.data_needed = !pr.g.requester_has_copy;
      e.redirect.type = pr.g.type;
      e.redirect.alloc_bytes = pr.g.alloc_bytes;
      e.redirect.mgr = self_;
      if (!any_redirect) {
        redirect_owner = pr.g.owner;
        any_redirect = true;
      } else if (redirect_owner != pr.g.owner) {
        all_redirect = false;
      }
    }
  }
  if (all_redirect && any_redirect) {
    // Every page is owned by one remote host: forward the whole group and
    // let the owner reply straight to the requester (1 RTT end to end).
    std::vector<GroupReqEntry> fwd;
    fwd.reserve(res.size());
    for (const GroupReplyEntry& e : res) fwd.push_back(e.redirect);
    stats_.Inc("dsm.group_forwards");
    TraceEv(trace::EventKind::kGroupFetch, fwd.front().page, 0,
            TraceParent(trace::OpKey(fwd.front().page, fwd.front().op_id)),
            static_cast<std::int64_t>(fwd.size()), redirect_owner);
    ctx.Forward(redirect_owner, EncodeGroupRequest(fwd));
    return;
  }
  std::int64_t served = 0;
  for (const GroupReplyEntry& e : res) {
    if (e.status == 1) ++served;
  }
  auto reply = EncodeGroupReply(std::move(res), std::move(bodies));
  stats_.Inc("dsm.group_serves");
  TraceEv(trace::EventKind::kGroupServe, entries.front().page, 0,
          TraceParent(trace::FaultKey(ctx.origin(), entries.front().page)),
          served, static_cast<std::int64_t>(reply.size()));
  ctx.Reply(std::move(reply), net::MsgKind::kData);
}

void Host::HandleGroupConfirm(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const std::uint16_t n = r.U16();
  struct Confirm {
    PageNum page = 0;
    std::uint64_t op_id = 0;
    bool is_write = false;
  };
  std::vector<Confirm> cs(n);
  for (Confirm& c : cs) {
    c.page = r.U32();
    c.op_id = r.U64();
    c.is_write = r.U8() != 0;
  }
  if (!r.ok()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  for (const Confirm& c : cs) {
    // ManagerCommit tolerates absent entries (migrated or rebuilt): a
    // misdelivered confirm lands in the stale-confirms bucket.
    if (c.page < ptable_.num_pages()) {
      ManagerCommit(c.page, c.op_id, ctx.origin(), c.is_write);
    }
  }
}

void Host::HandleInvalidate(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  if (!r.ok()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  TraceEv(trace::EventKind::kInvalidateRecv, p, 0,
          TraceParent(trace::InvKey(p)), ctx.origin());
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ApplyInvalidateLocked(p, ctx.origin());
  }
  ctx.Reply({});
}

bool Host::ApplyInvalidateLocked(PageNum p, net::HostId writer) {
  LocalPageEntry& e = ptable_.Local(p);
  bool dropped = false;
  if (e.access != Access::kNone) {
    e.access = Access::kNone;
    e.owned = false;
    dropped = true;
    stats_.Inc("dsm.invalidations_received");
    if (referee_ != nullptr) referee_->OnInvalidate(self_, p);
  }
  // Another writer is committing: any retained image is now stale, and so
  // is every cached converted image of this page.
  e.retained = false;
  DropConvertCacheLocked(p);
  if (cfg_.probable_owner) {
    // The invalidating writer is about to own this page: remember it, and
    // poison any hinted fetch whose reply is crossing this invalidation.
    ptable_.SetHint(p, writer, IncOf(writer));
    if (auto it = hint_poison_.find(p); it != hint_poison_.end()) {
      it->second = true;
    }
  }
  if (dir_.dynamic() && !cfg_.hot_page_migration && writer != self_) {
    // Pure dynamic mode migrates management to every committing writer:
    // the invalidating writer is about to both own and manage this page.
    dir_.LearnManager(p, writer, IncOf(writer));
  }
  return dropped;
}

void Host::HandleInvalidateBatch(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const std::uint16_t n = r.U16();
  std::vector<PageNum> pages(n);
  for (auto& p : pages) p = r.U32();
  if (!r.ok() || pages.empty()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  // One server operation covers the whole batch — the point of coalescing.
  rt_.Delay(profile_->server_op_cost);
  const PageNum total = ptable_.num_pages();
  for (PageNum p : pages) {
    if (p >= total) continue;
    TraceEv(trace::EventKind::kInvalidateRecv, p, 0,
            TraceParent(trace::InvKey(p)), ctx.origin());
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (PageNum p : pages) {
      if (p >= total) continue;
      ApplyInvalidateLocked(p, ctx.origin());
    }
  }
  ctx.Reply({});
}

void Host::HandleConfirm(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  const net::HostId requester = r.U16();
  const bool is_write = r.U8() != 0;
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  // Confirms target the granting manager directly (the requester learned it
  // from the grant), so the entry is normally here; ManagerCommit tolerates
  // absence after a recovery rebuild.
  ManagerCommit(p, op_id, requester, is_write);
}

void Host::HandleConfirmProbe(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  if (!r.ok()) return;
  enum class Answer { kConfirm, kExtend, kReject } answer;
  bool is_write = false;
  net::HostId manager = ctx.origin();
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (auto it = completed_.find({p, op_id}); it != completed_.end()) {
      answer = Answer::kConfirm;  // confirm was lost: replay it
      manager = it->second.manager;
      is_write = it->second.is_write;
    } else if (inflight_ops_.count({p, op_id}) > 0) {
      answer = Answer::kExtend;  // still invalidating/installing
    } else {
      // We never saw (or long evicted) this grant. Disown it — and fence the
      // op so a late-arriving reply carrying it is discarded, never
      // installed after the manager revokes.
      answer = Answer::kReject;
      FenceOpLocked(p, op_id);
    }
  }
  base::WireWriter w;
  w.U32(p);
  w.U64(op_id);
  switch (answer) {
    case Answer::kConfirm:
      w.U16(self_);
      w.U8(is_write ? 1 : 0);
      endpoint_.Notify(manager, kOpConfirm, std::move(w).Take());
      break;
    case Answer::kExtend:
      endpoint_.Notify(manager, kOpGrantExtend, std::move(w).Take());
      break;
    case Answer::kReject:
      stats_.Inc("dsm.grants_disowned");
      w.U8(0);  // unknown-op disown: says nothing about our copy state
      endpoint_.Notify(manager, kOpGrantReject, std::move(w).Take());
      break;
  }
}

void Host::HandleGrantReject(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  // Two distinct meanings share this opcode, told apart by the reason
  // byte: no_copy=1 is an install-time disclaim ("the grant is dataless
  // and I verifiably hold nothing"), no_copy=0 is mere abandonment (group
  // timeout, probe disown) that says nothing about the sender's copy.
  const bool no_copy = r.U8() != 0;
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  bool owner_disclaimed = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* mp = dir_.FindManager(p);
    if (mp == nullptr || !mp->busy || mp->busy_op_id != op_id ||
        mp->busy_requester != ctx.origin()) {
      return;  // stale reject of a committed, re-granted, or migrated entry
    }
    owner_disclaimed = no_copy && mp->owner == ctx.origin();
  }
  stats_.Inc("dsm.grant_rejects");
  if (owner_disclaimed) {
    // The owner of record itself just proved it holds no copy (it received
    // a dataless upgrade it cannot back): the copy died in a restart. Heal
    // the entry — promote a surviving holder or apply the lost-page
    // policy — rather than re-granting the same ghost upgrade forever.
    stats_.Inc("dsm.owner_lost_detected");
    HandlePageLostLocal(p, op_id, ctx.origin());
    return;
  }
  ManagerRevoke(p, op_id);
}

void Host::HandleGrantExtend(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  std::lock_guard<std::mutex> lk(state_mu_);
  ManagerEntry* m = dir_.FindManager(p);
  if (m != nullptr && m->busy && m->busy_op_id == op_id &&
      m->busy_requester == ctx.origin()) {
    m->busy_since = rt_.Now();  // requester is alive and mid-transfer
    stats_.Inc("dsm.grant_extends");
  }
}

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

// --------------------------------------------------------------------------
// Release consistency (§12 of DESIGN.md)
//
// Under SystemConfig::release_consistency a write fault never invalidates
// the copyset: the writer twins the page and defers its writes, and every
// sync operation is a release point that diffs the twins against the
// working copies and flushes only the dirty byte ranges to each page's
// home (the fixed manager — ownership never migrates under this mode, so
// home == owner == manager for every page). Acquiring sync operations
// (P / EventWait / Barrier) return the write notices published since this
// host last looked; stale local read copies are invalidated lazily there
// instead of eagerly at every store.
// --------------------------------------------------------------------------

Host::RcTwinResult Host::RcTwinPage(PageNum p) {
  std::lock_guard<std::mutex> lk(state_mu_);
  LocalPageEntry& e = ptable_.Local(p);
  if (e.access >= Access::kWrite) return RcTwinResult::kOk;  // already live
  if (e.access < Access::kRead) return RcTwinResult::kNoCopy;
  if (dir_.BaseManagedHere(p)) {
    // The home writes its master copy in place: there is nothing to diff
    // against later (release just commits a version bump), so no twin
    // buffer and zero wire bytes.
    rc_home_dirty_.insert(p);
    e.access = Access::kWrite;
    if (referee_ != nullptr) referee_->OnRcTwin(self_, p);
    const std::uint64_t ev =
        TraceEv(trace::EventKind::kTwinCreate, p, 0, 0,
                static_cast<std::int64_t>(e.version), /*home_dirty=*/1);
    TraceBind(trace::RcTwinKey(self_, p), ev);
    stats_.Inc("dsm.rc_home_dirty_marks");
    return RcTwinResult::kOk;
  }
  if (rc_twins_.size() >= cfg_.rc_max_twins) {
    stats_.Inc("dsm.rc_twin_capacity_flushes");
    return RcTwinResult::kCapacity;
  }
  const GlobalAddr base = static_cast<GlobalAddr>(p) * page_bytes_;
  std::uint32_t extent = page_bytes_;
  if (cfg_.partial_page_transfer && e.alloc_bytes != 0) {
    extent = std::min(e.alloc_bytes, page_bytes_);
  }
  RcTwin twin;
  twin.base.assign(mem_.begin() + base, mem_.begin() + base + extent);
  twin.base_version = e.version;
  base::BulkCopyRecord(twin.base.size());
  rc_twins_.emplace(p, std::move(twin));
  e.access = Access::kWrite;  // local write permission only; owned stays off
  if (referee_ != nullptr) referee_->OnRcTwin(self_, p);
  const std::uint64_t ev =
      TraceEv(trace::EventKind::kTwinCreate, p, 0, 0,
              static_cast<std::int64_t>(e.version), /*home_dirty=*/0);
  TraceBind(trace::RcTwinKey(self_, p), ev);
  stats_.Inc("dsm.rc_twins");
  return RcTwinResult::kOk;
}

void Host::RcFlushTwins() {
  if (!cfg_.release_consistency) return;
  struct PendingFlush {
    PageNum page = 0;
    std::uint64_t seq = 0;
    std::uint64_t base_version = 0;
    arch::TypeId type = arch::TypeRegistry::kChar;
    bool home_dirty = false;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    std::vector<std::uint8_t> bytes;  // concatenated slot-aligned ranges
    std::uint64_t twin_ev = 0;
  };
  std::vector<PendingFlush> flushes;
  std::uint32_t life = 0;

  // Snapshot-claim: under one lock acquisition, diff every twin, demote the
  // page back to read access, and erase the twin. A thread writing the page
  // concurrently re-faults into a fresh twin after the demote, so no store
  // is ever lost between snapshot and flush.
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    life = life_;
    for (auto& [p, twin] : rc_twins_) {
      LocalPageEntry& e = ptable_.Local(p);
      const GlobalAddr base = static_cast<GlobalAddr>(p) * page_bytes_;
      const std::uint32_t extent =
          static_cast<std::uint32_t>(twin.base.size());
      const std::uint32_t stride = static_cast<std::uint32_t>(
          std::bit_ceil(registry_.SizeOf(e.type)));
      PendingFlush f;
      f.page = p;
      f.seq = ++rc_flush_seq_;
      f.base_version = twin.base_version;
      f.type = e.type;
      // Scan at slot granularity (the allocator's power-of-two stride, the
      // same unit the conversion layer works in) and coalesce consecutive
      // dirty slots into ranges.
      std::uint32_t diff_bytes = 0;
      for (std::uint32_t off = 0; off + stride <= extent;) {
        if (std::memcmp(twin.base.data() + off, mem_.data() + base + off,
                        stride) != 0) {
          std::uint32_t run = stride;
          while (off + run + stride <= extent &&
                 std::memcmp(twin.base.data() + off + run,
                             mem_.data() + base + off + run, stride) != 0) {
            run += stride;
          }
          f.ranges.emplace_back(off, run);
          diff_bytes += run;
          off += run;
        } else {
          off += stride;
        }
      }
      // Past the crossover a range list costs more than the page: send one
      // full-extent range instead (the degenerate diff IS the SC transfer).
      if (!f.ranges.empty() &&
          static_cast<std::uint64_t>(diff_bytes) * 100 >=
              static_cast<std::uint64_t>(cfg_.rc_diff_crossover_pct) *
                  extent) {
        const std::uint32_t full = extent - extent % stride;
        f.ranges.assign(1, {0u, full});
        stats_.Inc("dsm.rc_flush_full_extent");
      }
      for (const auto& [off, len] : f.ranges) {
        f.bytes.insert(f.bytes.end(), mem_.begin() + base + off,
                       mem_.begin() + base + off + len);
      }
      f.twin_ev = TraceParent(trace::RcTwinKey(self_, p));
      e.access = Access::kRead;
      if (referee_ != nullptr) {
        referee_->OnRcRelease(self_, p, /*kept_copy=*/true);
      }
      if (f.ranges.empty()) {
        stats_.Inc("dsm.rc_clean_twins");  // nothing stored; just released
      } else {
        flushes.push_back(std::move(f));
      }
    }
    rc_twins_.clear();
    for (PageNum p : rc_home_dirty_) {
      PendingFlush f;
      f.page = p;
      f.seq = ++rc_flush_seq_;
      f.home_dirty = true;
      f.twin_ev = TraceParent(trace::RcTwinKey(self_, p));
      LocalPageEntry& e = ptable_.Local(p);
      e.access = Access::kRead;
      if (referee_ != nullptr) {
        referee_->OnRcRelease(self_, p, /*kept_copy=*/true);
      }
      flushes.push_back(std::move(f));
    }
    rc_home_dirty_.clear();
  }

  for (auto& f : flushes) {
    std::uint64_t new_version = 0;
    std::uint64_t prev_version = 0;
    bool applied = false;
    if (f.home_dirty) {
      // The master copy already holds the writes: committing is a version
      // bump — but not while a transfer serving the pre-release version is
      // in flight (its reply would install bytes labeled with a version the
      // commit just retired).
      for (int round = 0;; ++round) {
        bool busy = false;
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          if (life != life_) break;  // crashed mid-release: state is gone
          ManagerEntry& m = dir_.Manager(f.page);
          if (m.busy) {
            busy = true;
          } else {
            const auto nv = RcCommitFlushLocked(f.page, self_);
            new_version = nv.first;
            prev_version = nv.second;
            applied = true;
          }
        }
        if (!busy) break;
        MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit * 8,
                          "home-dirty release outwaited its retry budget");
        stats_.Inc("dsm.rc_flush_busy_retries");
        rt_.Delay(FaultBackoff(cfg_, std::min(round + 1, 8)));
      }
      if (applied) {
        const std::uint64_t ev =
            TraceEv(trace::EventKind::kDiffFlush, f.page, f.seq, f.twin_ev,
                    /*diff_bytes=*/0, /*ranges=*/0);
        TraceBind(trace::RcNoticeKey(f.page), ev);
        stats_.Inc("dsm.rc_flushes");
      }
    } else {
      base::WireWriter w;
      w.U32(f.page);
      w.U64(f.seq);
      w.U16(f.type);
      w.U8(arch::RepClassByte(*profile_));
      w.U16(static_cast<std::uint16_t>(f.ranges.size()));
      for (const auto& [off, len] : f.ranges) {
        w.U32(off);
        w.U32(len);
      }
      w.Raw(f.bytes);
      const net::Body body(std::move(w).Take());
      const net::HostId home = dir_.BaseManagerOf(f.page);
      for (int round = 0;; ++round) {
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          if (life != life_) break;  // crashed mid-release
        }
        auto resp = endpoint_.CallWithStatus(home, kOpDiffFlush, body,
                                             net::MsgKind::kData,
                                             DsmCallOpts());
        if (resp.status == net::CallStatus::kShutdown) return;
        if (resp.status == net::CallStatus::kOk) {
          const auto rb = resp.body.ToVector();
          base::WireReader r(rb);
          const std::uint8_t status = r.U8();
          if (status == 0) {
            new_version = r.U64();
            prev_version = r.U64();
            if (r.ok()) {
              applied = true;
              break;
            }
          }
          // Busy or recovering home: back off and re-flush (same seq; the
          // home deduplicates if the earlier attempt actually applied).
        }
        MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit * 8,
                          "diff flush exhausted its retry budget");
        stats_.Inc("dsm.rc_flush_retries");
        rt_.Delay(FaultBackoff(cfg_, std::min(round + 1, 8)));
      }
      if (applied) {
        stats_.Inc("dsm.rc_flushes");
        stats_.Inc("dsm.rc_flush_bytes",
                   static_cast<std::int64_t>(f.bytes.size()));
        stats_.Inc("dsm.rc_flush_ranges",
                   static_cast<std::int64_t>(f.ranges.size()));
        const std::uint64_t ev = TraceEv(
            trace::EventKind::kDiffFlush, f.page, f.seq, f.twin_ev,
            static_cast<std::int64_t>(f.bytes.size()),
            static_cast<std::int64_t>(f.ranges.size()));
        TraceBind(trace::RcNoticeKey(f.page), ev);
        // Keep-copy rule: when nobody flushed between our twin and our
        // flush (prev == base), the local image equals the new master and
        // the copy stays valid at the committed version. Any interleaved
        // flush means our image lacks another writer's bytes: drop it.
        std::lock_guard<std::mutex> lk(state_mu_);
        if (life == life_) {
          LocalPageEntry& e = ptable_.Local(f.page);
          if (rc_twins_.count(f.page) == 0 && e.access == Access::kRead &&
              e.version == f.base_version) {
            if (prev_version == f.base_version) {
              e.version = new_version;
              stats_.Inc("dsm.rc_copies_kept");
            } else {
              e.access = Access::kNone;
              e.owned = false;
              e.retained = false;
              DropConvertCacheLocked(f.page);
              if (referee_ != nullptr) referee_->OnInvalidate(self_, f.page);
              stats_.Inc("dsm.rc_self_invalidations");
            }
          }
        }
      }
    }
    if (applied) {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life == life_) {
        rc_pending_notices_.push_back(
            {f.page, new_version, static_cast<std::uint16_t>(self_)});
      }
    }
  }
}

std::pair<std::uint64_t, std::uint64_t> Host::RcCommitFlushLocked(
    PageNum p, net::HostId origin, bool drop_cache) {
  ManagerEntry& m = dir_.Manager(p);
  const std::uint64_t prev = m.version;
  ++m.version;
  // The home's master copy tracks the committed version, and — the
  // "write bumps the version" invariant — every cached converted image of
  // this page is unservable the instant a diff mutates it. A remote diff
  // flush knows exactly which byte ranges changed, so its caller patches
  // the cached images in place instead of dropping them (drop_cache=false).
  LocalPageEntry& e = ptable_.Local(p);
  e.version = m.version;
  if (drop_cache) DropConvertCacheLocked(p);
  if (referee_ != nullptr) referee_->OnRcFlush(origin, p, m.version);
  return {m.version, prev};
}

void Host::PatchConvertCacheLocked(
    PageNum p, std::uint64_t prev_version, std::uint64_t new_version,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges) {
  // A diff flush is a partial write: whole-page converted images cached at
  // the pre-flush version stay correct outside the flushed ranges. Re-run
  // the codec on just those ranges (slot-aligned by construction) and
  // re-key the image to the committed version, instead of throwing the
  // whole conversion away.
  std::vector<ConvertCacheKey> keys;
  for (const auto& [k, img] : convert_cache_) {
    if (k.page == p && k.version == prev_version) keys.push_back(k);
  }
  const GlobalAddr base = static_cast<GlobalAddr>(p) * page_bytes_;
  const arch::TypeId type = ptable_.Local(p).type;
  for (const ConvertCacheKey& key : keys) {
    const arch::ArchProfile* target = nullptr;
    for (net::HostId h = 0; h < num_hosts_; ++h) {
      if (arch::RepClassByte(net_.ProfileOf(h)) == key.rep) {
        target = &net_.ProfileOf(h);
        break;
      }
    }
    if (target == nullptr) continue;  // no such architecture anymore
    base::Buffer& cached = convert_cache_[key];
    const std::uint32_t extent = static_cast<std::uint32_t>(cached.size());
    // Copy-on-write: the cached buffer may back an in-flight reply chain.
    std::vector<std::uint8_t> img(cached.span().begin(), cached.span().end());
    for (const auto& [off, len] : ranges) {
      if (off >= extent) continue;
      const std::uint32_t n = std::min(len, extent - off);
      std::copy(mem_.begin() + base + off, mem_.begin() + base + off + n,
                img.begin() + off);
      if (key.rep != arch::RepClassByte(*profile_)) {
        arch::ConvertStats cstats;
        arch::ConvertContext cctx;
        cctx.src = profile_;
        cctx.dst = target;
        cctx.stats = &cstats;
        ConvertSlots(registry_, type,
                     std::span<std::uint8_t>(img.data() + off, n), n, cctx);
      }
    }
    const ConvertCacheKey new_key{p, new_version, key.rep};
    convert_cache_.erase(key);
    convert_cache_[new_key] = base::Buffer(std::move(img));
    for (auto& k : convert_cache_order_) {
      if (k == key) k = new_key;
    }
    stats_.Inc("dsm.convert_cache_patched");
  }
}

std::vector<sync::WriteNotice> Host::RcDrainNotices() {
  if (!cfg_.release_consistency) return {};
  RcFlushTwins();
  std::lock_guard<std::mutex> lk(state_mu_);
  return std::exchange(rc_pending_notices_, {});
}

void Host::RcApplyNotices(const std::vector<sync::WriteNotice>& notices,
                          bool reset) {
  if (!cfg_.release_consistency) return;
  std::lock_guard<std::mutex> lk(state_mu_);
  if (reset) {
    // The server's bounded notice log was truncated past this client's
    // cursor: unknown notices were missed, so every read copy that is
    // neither twinned nor the master here is conservatively stale.
    stats_.Inc("dsm.rc_notice_resets");
    for (PageNum p = 0; p < ptable_.num_pages(); ++p) {
      if (dir_.BaseManagedHere(p) || rc_twins_.count(p) != 0) continue;
      LocalPageEntry& e = ptable_.Local(p);
      e.retained = false;
      if (e.access == Access::kNone) continue;
      e.access = Access::kNone;
      e.owned = false;
      DropConvertCacheLocked(p);
      if (referee_ != nullptr) referee_->OnInvalidate(self_, p);
      stats_.Inc("dsm.rc_reset_invalidations");
    }
  }
  for (const sync::WriteNotice& n : notices) {
    const PageNum p = n.page;
    if (p >= ptable_.num_pages()) continue;
    if (n.origin == self_) continue;          // our own flush
    if (dir_.BaseManagedHere(p)) continue;    // the master is always fresh
    if (rc_twins_.count(p) != 0) continue;    // flushed at our next release
    LocalPageEntry& e = ptable_.Local(p);
    if (e.access == Access::kNone || e.version >= n.version) continue;
    e.access = Access::kNone;
    e.owned = false;
    e.retained = false;
    DropConvertCacheLocked(p);
    if (referee_ != nullptr) referee_->OnInvalidate(self_, p);
    TraceEv(trace::EventKind::kWriteNotice, p, 0,
            TraceParent(trace::RcNoticeKey(p)),
            static_cast<std::int64_t>(n.version), n.origin);
    stats_.Inc("dsm.rc_notices_applied");
  }
}

void Host::HandleDiffFlush(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t seq = r.U64();
  const arch::TypeId type = r.U16();
  const std::uint8_t rep = r.U8();
  const std::uint16_t n_ranges = r.U16();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges(n_ranges);
  std::size_t total = 0;
  bool sane = true;
  for (auto& [off, len] : ranges) {
    off = r.U32();
    len = r.U32();
    if (len == 0 || off + static_cast<std::uint64_t>(len) > page_bytes_) {
      sane = false;
    }
    total += len;
  }
  const std::span<const std::uint8_t> raw = r.Raw(total);
  if (!r.ok() || !sane || !cfg_.release_consistency ||
      !dir_.BaseManagedHere(p)) {
    stats_.Inc("dsm.malformed");
    return;
  }
  const net::HostId origin = ctx.origin();
  const RcFlushKey key{p, origin, seq};
  rt_.Delay(profile_->server_op_cost);

  const auto reply_ok = [&ctx](std::uint64_t nv, std::uint64_t pv) {
    base::WireWriter w;
    w.U8(0);
    w.U64(nv);
    w.U64(pv);
    ctx.Reply(std::move(w).Take());
  };
  const auto reply_busy = [&ctx] {
    base::WireWriter w;
    w.U8(1);
    ctx.Reply(std::move(w).Take());
  };

  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (recovering_) {
      // Mid-reconstruction versions are untrustworthy; drop the request so
      // the writer's call times out and retries after the rebuild.
      stats_.Inc("dsm.recovery_dropped_reqs");
      return;
    }
    // A release re-issued as a fresh call after a timeout must not apply
    // its diffs twice (the endpoint dedup only covers same-req-id
    // retransmits): answer from the applied record.
    if (const auto it = rc_applied_.find(key); it != rc_applied_.end()) {
      stats_.Inc("dsm.rc_flush_replays");
      reply_ok(it->second.new_version, it->second.prev_version);
      return;
    }
    if (dir_.Manager(p).busy) {
      // A transfer is in flight at the pre-flush version; applying now
      // would let its reply install bytes newer than their label. The
      // writer backs off and retries.
      stats_.Inc("dsm.rc_flush_busy_rejects");
      reply_busy();
      return;
    }
  }

  // Convert outside the lock (the codec models real per-element cost). The
  // payload is a concatenation of slot-aligned ranges, i.e. a contiguous
  // element array in the writer's representation.
  std::vector<std::uint8_t> payload(raw.begin(), raw.end());
  if (cfg_.convert_enabled && rep != arch::RepClassByte(*profile_)) {
    ConvertIncoming(p, payload, type, net_.ProfileOf(origin),
                    /*run_codec=*/true);
  }

  std::uint64_t new_version = 0;
  std::uint64_t prev_version = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (recovering_) {
      stats_.Inc("dsm.recovery_dropped_reqs");
      return;
    }
    if (const auto it = rc_applied_.find(key); it != rc_applied_.end()) {
      stats_.Inc("dsm.rc_flush_replays");
      reply_ok(it->second.new_version, it->second.prev_version);
      return;
    }
    if (dir_.Manager(p).busy) {  // went busy during the conversion
      stats_.Inc("dsm.rc_flush_busy_rejects");
      reply_busy();
      return;
    }
    const GlobalAddr base = static_cast<GlobalAddr>(p) * page_bytes_;
    std::size_t pos = 0;
    for (const auto& [off, len] : ranges) {
      std::copy(payload.begin() + pos, payload.begin() + pos + len,
                mem_.begin() + base + off);
      pos += len;
    }
    base::BulkCopyRecord(payload.size());
    const auto nv = RcCommitFlushLocked(p, origin, /*drop_cache=*/false);
    new_version = nv.first;
    prev_version = nv.second;
    PatchConvertCacheLocked(p, prev_version, new_version, ranges);
    while (rc_applied_order_.size() >= 8192) {
      rc_applied_.erase(rc_applied_order_.front());
      rc_applied_order_.pop_front();
    }
    rc_applied_order_.push_back(key);
    rc_applied_[key] = {new_version, prev_version};
    stats_.Inc("dsm.rc_flushes_applied");
    stats_.Inc("dsm.rc_flush_bytes_in",
               static_cast<std::int64_t>(payload.size()));
  }
  reply_ok(new_version, prev_version);
}

std::size_t Host::RcTwinCount() {
  std::lock_guard<std::mutex> lk(state_mu_);
  return rc_twins_.size() + rc_home_dirty_.size();
}

net::HostId Host::HintSnapshot(PageNum p) {
  std::lock_guard<std::mutex> lk(state_mu_);
  return ptable_.HintOf(p);
}

void Host::ConvertIncoming(PageNum p, std::span<std::uint8_t> data,
                           arch::TypeId type, const arch::ArchProfile& from,
                           bool run_codec) {
  if (run_codec) {
    arch::ConvertStats cstats;
    arch::ConvertContext ctx;
    ctx.src = &from;
    ctx.dst = profile_;
    ctx.stats = &cstats;
    ConvertSlots(registry_, type, data,
                 static_cast<std::uint32_t>(data.size()), ctx);
    if (cstats.total_lossy() > 0) {
      stats_.Inc("dsm.convert_lossy", cstats.total_lossy());
    }
  }
  // The calibrated Table-3 delay and the per-host conversion counters are
  // always charged at the receiver, independent of where the codec ran, so
  // first-fault timing and stats match the paper's receiver-converts model.
  const std::size_t stride = std::bit_ceil(registry_.SizeOf(type));
  const std::size_t elems = data.size() / stride;
  const SimDuration delay = registry_.ModeledElementCost(*profile_, type) *
                            static_cast<SimDuration>(elems);
  rt_.Delay(delay);
  stats_.Inc("dsm.conversions");
  stats_.Inc("dsm.converted_elements", static_cast<std::int64_t>(elems));
  stats_.Sample("dsm.convert_ms", ToMillis(delay));
  stats_.Hist("dsm.convert_time_ms", ToMillis(delay));
  TraceEv(trace::EventKind::kConvert, p, 0, 0,
          static_cast<std::int64_t>(elems),
          static_cast<std::int64_t>(delay));
}

void Host::DropConvertCacheLocked(PageNum p) {
  for (auto it = convert_cache_.begin(); it != convert_cache_.end();) {
    if (it->first.page == p) {
      it = convert_cache_.erase(it);
      stats_.Inc("dsm.convert_cache_evictions");
    } else {
      ++it;
    }
  }
  std::erase_if(convert_cache_order_,
                [p](const ConvertCacheKey& k) { return k.page == p; });
}

void Host::FenceOpLocked(PageNum p, std::uint64_t op_id) {
  if (fenced_.insert({p, op_id}).second) {
    while (fenced_order_.size() >= 4096) {
      fenced_.erase(fenced_order_.front());
      fenced_order_.pop_front();
    }
    fenced_order_.emplace_back(p, op_id);
  }
}

void Host::RecordCompleted(PageNum p, std::uint64_t op_id,
                           net::HostId manager, bool is_write) {
  std::lock_guard<std::mutex> lk(state_mu_);
  inflight_ops_.erase({p, op_id});
  while (completed_order_.size() >= 4096) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
  completed_order_.emplace_back(p, op_id);
  completed_[{p, op_id}] = CompletedOp{manager, is_write};
}

net::Body Host::EncodeFetchReply(const FetchReply& r) const {
  base::WireWriter w;
  w.U64(r.op_id);
  w.U64(r.data_version);
  w.U64(r.new_version);
  w.U16(r.owner);
  // Wire fields gated on the governing knob (house rule): the granting
  // manager's identity only exists on the wire under the dynamic directory,
  // so knobs-off byte images are unchanged.
  if (dir_.dynamic()) w.U16(r.mgr);
  w.U16(r.type);
  w.U32(r.alloc_bytes);
  w.U16(static_cast<std::uint16_t>(r.to_invalidate.size()));
  for (net::HostId h : r.to_invalidate) w.U16(h);
  w.U8(r.has_data ? 1 : 0);
  w.U8(r.data_rep);
  w.U8(static_cast<std::uint8_t>((r.sender_converted ? 1 : 0) |
                                 (r.from_cache ? 2 : 0) |
                                 (r.owner_lost ? 4 : 0) |
                                 (r.mgr_redirect ? 8 : 0)));
  // The page data rides as a shared buffer chain behind the metadata — the
  // endpoint and fragment layers never copy it.
  return net::Body(std::move(w).Take(), r.data);
}

Host::FetchReply Host::DecodeFetchReply(const base::BufferChain& body) const {
  // Metadata sits in the first chunk by construction (the sender serializes
  // framing + metadata into one buffer); fall back to flattening if a
  // degenerate MTU split it.
  base::Buffer meta =
      body.chunk_count() > 0 ? body.chunk(0) : base::Buffer();
  bool flattened = false;
  for (;;) {
    base::WireReader r(meta.span());
    FetchReply out;
    out.op_id = r.U64();
    out.data_version = r.U64();
    out.new_version = r.U64();
    out.owner = r.U16();
    if (dir_.dynamic()) out.mgr = r.U16();
    out.type = r.U16();
    out.alloc_bytes = r.U32();
    const std::uint16_t n = r.U16();
    out.to_invalidate.resize(n);
    for (auto& h : out.to_invalidate) h = r.U16();
    out.has_data = r.U8() != 0;
    out.data_rep = r.U8();
    const std::uint8_t flags = r.U8();
    out.sender_converted = (flags & 1) != 0;
    out.from_cache = (flags & 2) != 0;
    out.owner_lost = (flags & 4) != 0;
    out.mgr_redirect = (flags & 8) != 0;
    if (r.ok()) {
      if (out.has_data) {
        const std::size_t consumed = meta.size() - r.remaining();
        out.data = flattened ? base::BufferChain(meta).Slice(consumed)
                             : body.Slice(consumed);
      }
      return out;
    }
    MERMAID_CHECK_MSG(!flattened && meta.size() < body.size(),
                      "malformed fetch reply");
    meta = body.Flatten();
    flattened = true;
  }
}

net::Body Host::EncodeGroupRequest(
    const std::vector<GroupReqEntry>& es) const {
  base::WireWriter w;
  w.U16(static_cast<std::uint16_t>(es.size()));
  for (const GroupReqEntry& e : es) {
    w.U8(e.role);
    w.U32(e.page);
    if (e.role == kToManager) {
      w.U8(e.has_copy ? 1 : 0);
    } else {
      w.U64(e.op_id);
      w.U64(e.new_version);
      w.U8(e.data_needed ? 1 : 0);
      w.U16(e.type);
      w.U32(e.alloc_bytes);
      // Granting manager (dynamic only): the owner echoes it back so the
      // requester confirms to the host that actually holds the busy entry.
      if (dir_.dynamic()) w.U16(e.mgr);
    }
  }
  return std::move(w).Take();
}

std::vector<Host::GroupReqEntry> Host::DecodeGroupRequest(
    std::span<const std::uint8_t> body, bool* ok) const {
  base::WireReader r(body);
  const std::uint16_t n = r.U16();
  std::vector<GroupReqEntry> es;
  es.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    GroupReqEntry e;
    e.role = r.U8();
    e.page = r.U32();
    if (e.role == kToManager) {
      e.has_copy = r.U8() != 0;
    } else if (e.role == kToOwner) {
      e.op_id = r.U64();
      e.new_version = r.U64();
      e.data_needed = r.U8() != 0;
      e.type = r.U16();
      e.alloc_bytes = r.U32();
      if (dir_.dynamic()) e.mgr = r.U16();
    } else {
      *ok = false;
      return {};
    }
    es.push_back(e);
  }
  *ok = r.ok();
  return es;
}

net::Body Host::EncodeGroupReply(std::vector<GroupReplyEntry> es,
                                 std::vector<net::Body> grant_bodies) const {
  // Head: per-entry metadata with, for grants, the length of the embedded
  // FetchReply head and of its data slice. The data slices are concatenated
  // behind the head as a shared chain — like EncodeFetchReply, nothing is
  // copied between the owner's serve and the wire.
  base::WireWriter w;
  base::BufferChain data;
  std::size_t gi = 0;
  w.U16(static_cast<std::uint16_t>(es.size()));
  for (GroupReplyEntry& e : es) {
    w.U32(e.page);
    w.U8(e.status);
    if (e.status == 1) {
      net::Body& b = grant_bodies[gi++];
      w.U32(static_cast<std::uint32_t>(b.head.size()));
      w.U64(b.data.size());
      w.Raw(b.head);
      data.Append(std::move(b.data));
    } else if (e.status == 2) {
      w.U16(e.redirect_owner);
      w.U64(e.redirect.op_id);
      w.U64(e.redirect.new_version);
      w.U8(e.redirect.data_needed ? 1 : 0);
      w.U16(e.redirect.type);
      w.U32(e.redirect.alloc_bytes);
      if (dir_.dynamic()) w.U16(e.redirect.mgr);
    } else if (e.status == 3) {
      // Owner lost: just the grant id and the amnesiac owner.
      w.U64(e.redirect.op_id);
      w.U16(e.redirect_owner);
      if (dir_.dynamic()) w.U16(e.redirect.mgr);
    }
  }
  return net::Body(std::move(w).Take(), std::move(data));
}

std::vector<Host::GroupReplyEntry> Host::DecodeGroupReply(
    const base::BufferChain& body) const {
  // Same chunk(0)-first pattern as DecodeFetchReply: metadata sits in the
  // first chunk by construction; flatten only if a degenerate MTU split it.
  // Data offsets computed against the flattened bytes are equally valid on
  // the original chain (same logical byte string), so slices stay shared.
  base::Buffer meta =
      body.chunk_count() > 0 ? body.chunk(0) : base::Buffer();
  bool flattened = false;
  for (;;) {
    base::WireReader r(meta.span());
    const std::uint16_t n = r.U16();
    std::vector<GroupReplyEntry> es(n);
    std::vector<std::uint64_t> data_lens(n, 0);
    bool ok = true;
    for (std::uint16_t i = 0; i < n && ok; ++i) {
      GroupReplyEntry& e = es[i];
      e.page = r.U32();
      e.status = r.U8();
      if (e.status == 1) {
        const std::uint32_t head_len = r.U32();
        data_lens[i] = r.U64();
        auto head = r.Raw(head_len);
        if (!r.ok()) break;
        e.fr = DecodeFetchReply(base::BufferChain(
            std::vector<std::uint8_t>(head.begin(), head.end())));
      } else if (e.status == 2) {
        e.redirect_owner = r.U16();
        e.redirect.role = kToOwner;
        e.redirect.page = e.page;
        e.redirect.op_id = r.U64();
        e.redirect.new_version = r.U64();
        e.redirect.data_needed = r.U8() != 0;
        e.redirect.type = r.U16();
        e.redirect.alloc_bytes = r.U32();
        if (dir_.dynamic()) e.redirect.mgr = r.U16();
      } else if (e.status == 3) {
        e.redirect.page = e.page;
        e.redirect.op_id = r.U64();
        e.redirect_owner = r.U16();
        if (dir_.dynamic()) e.redirect.mgr = r.U16();
      } else if (e.status != 0) {
        ok = false;
      }
    }
    if (ok && r.ok()) {
      std::size_t off = meta.size() - r.remaining();
      for (std::uint16_t i = 0; i < n; ++i) {
        if (es[i].status == 1 && es[i].fr.has_data) {
          es[i].fr.data = body.Slice(off, data_lens[i]);
          off += data_lens[i];
        }
      }
      return es;
    }
    MERMAID_CHECK_MSG(!flattened && meta.size() < body.size(),
                      "malformed group fetch reply");
    meta = body.Flatten();
    flattened = true;
  }
}

// --------------------------------------------------------------------------
// Crash-stop recovery
// --------------------------------------------------------------------------

namespace {

std::uint8_t AccessByte(Access a) {
  return a == Access::kWrite ? 2 : (a == Access::kRead ? 1 : 0);
}

Access AccessFromByte(std::uint8_t b) {
  return b == 2 ? Access::kWrite : (b == 1 ? Access::kRead : Access::kNone);
}

}  // namespace

std::uint32_t Host::IncOf(net::HostId h) {
  if (!cfg_.crash_recovery) return 0;
  return h == self_ ? endpoint_.incarnation() : endpoint_.PeerIncarnation(h);
}

void Host::CrashWipe() {
  // Fence the wire first: bump this host's incarnation (stamped into every
  // subsequent message), abandon pending calls, drop reassembly partials
  // and the dedup window.
  endpoint_.CrashReset();
  std::vector<sim::Chan<bool>> waiters;
  std::vector<sim::Chan<ManagerGrant>> local_grants;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++life_;
    recovering_ = true;
    op_epoch_ = endpoint_.incarnation();
    op_counter_ = 0;
    // Local fault threads parked on a grant channel would wedge forever
    // once their queue entries are wiped: collect the channels and wake
    // them with the op_id==0 crash sentinel after the lock drops.
    dir_.ForEachManaged([&](PageNum, ManagerEntry& m) {
      for (PendingTransfer& t : m.pending) {
        if (!t.remote.has_value()) local_grants.push_back(t.local_grant);
      }
    });
    ptable_.WipeForCrash();
    dir_.WipeForCrash();
    reclaiming_.clear();
    std::fill(mem_.begin(), mem_.end(), 0);
    for (auto& [p, chans] : fault_waiters_) {
      for (auto& c : chans) waiters.push_back(std::move(c));
    }
    fault_waiters_.clear();
    fault_inflight_.clear();
    completed_.clear();
    completed_order_.clear();
    inflight_ops_.clear();
    fenced_.clear();
    fenced_order_.clear();
    convert_cache_.clear();
    convert_cache_order_.clear();
    hinted_pending_.clear();
    hint_poison_.clear();
    write_pending_.clear();
    rc_twins_.clear();
    rc_home_dirty_.clear();
    rc_pending_notices_.clear();
    rc_applied_.clear();
    rc_applied_order_.clear();
  }
  stats_.Inc("dsm.crashes");
  for (auto& c : waiters) c.Send(true);
  for (auto& c : local_grants) c.Send(ManagerGrant{});
}

void Host::HandlePageLost(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t op_id = r.U64();
  const net::HostId dead_owner = r.U16();
  if (!r.ok() || p >= ptable_.num_pages() ||
      (!dir_.dynamic() && !dir_.BaseManagedHere(p))) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (recovering_) {
      // The rebuild arbitrates from fresh claims; a concurrent report adds
      // nothing. No reply: the reporter refaults anyway.
      stats_.Inc("dsm.recovery_dropped_reqs");
      return;
    }
  }
  HandlePageLostLocal(p, op_id, dead_owner);
  ctx.Reply({});
}

void Host::HandlePageLostLocal(PageNum p, std::uint64_t op_id,
                               net::HostId dead_owner, bool drain) {
  bool promote_remote = false;
  bool reinit = false;
  net::HostId new_owner = 0;
  std::uint64_t promote_version = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    // A report carrying a grant id from a previous life of this manager is
    // a pre-crash zombie: the entry was rebuilt since. Drop it.
    if (op_id != 0 && (op_id >> 48) != op_epoch_) return;
    ManagerEntry* mp = dir_.FindManager(p);
    if (mp == nullptr) return;  // migrated away: the new manager re-detects
    ManagerEntry& m = *mp;
    if (m.owner != dead_owner) return;  // stale report: already healed
    stats_.Inc("dsm.owner_lost_reports");
    m.copyset.erase(dead_owner);
    if (m.busy && m.busy_op_id == op_id) m.busy = false;
    if (!m.copyset.empty()) {
      // Promote the lowest-id surviving copy holder. The version is
      // unchanged: every copyset member holds the committed image.
      m.owner = *m.copyset.begin();
      new_owner = m.owner;
      promote_version = m.version;
      if (new_owner == self_) {
        ptable_.Local(p).owned = true;
      } else {
        promote_remote = true;
      }
    } else {
      // The sole copy died with its owner.
      MERMAID_CHECK_MSG(cfg_.lost_page_policy == SystemConfig::LostPagePolicy::kReinitZero,
                        "page lost: the only copy died with its owner");
      stats_.Inc("dsm.recovery_pages_lost");
      m.owner = self_;
      m.copyset = {self_};
      m.version = 0;
      LocalPageEntry& e = ptable_.Local(p);
      e.access = Access::kRead;
      e.owned = true;
      e.version = 0;
      e.retained = false;
      e.type = m.type;
      e.alloc_bytes = m.alloc_bytes;
      const std::size_t base = static_cast<std::size_t>(p) * page_bytes_;
      const std::size_t end =
          std::min<std::size_t>(base + page_bytes_, mem_.size());
      std::fill(mem_.begin() + base, mem_.begin() + end, 0);
      DropConvertCacheLocked(p);
      reinit = true;
    }
  }
  if (reinit) {
    TraceEv(trace::EventKind::kRecoveryLost, p, op_id, 0, dead_owner);
    if (referee_ != nullptr) referee_->OnReinit(self_, p, 0);
  } else {
    TraceEv(trace::EventKind::kRecoveryDemote, p, op_id, 0, new_owner, 2);
    if (promote_remote) {
      // Fire-and-forget: the promotion only flips the new owner's `owned`
      // bit (its copy is already live), so a lost notify costs an extra
      // manager hop later, never correctness.
      base::WireWriter w;
      w.U16(1);
      w.U32(p);
      w.U8(2);  // mode 2: promote
      w.U64(promote_version);
      endpoint_.Notify(new_owner, kOpRecoveryDemote, std::move(w).Take());
    }
  }
  if (drain) ManagerDrain(p);
}

void Host::HandleRecoveryQuery(net::RequestContext ctx) {
  const net::HostId mgr = ctx.origin();
  rt_.Delay(profile_->server_op_cost);
  // An empty body is the full sweep (every page whose base placement is the
  // querying host). A non-empty body lists explicit pages — the targeted
  // reclaim of a migrated directory entry whose manager died — and skips the
  // base-placement filter, since the reclaiming host need not be the base.
  std::vector<PageNum> wanted;
  if (!ctx.body().empty()) {
    base::WireReader r(ctx.body());
    const std::uint16_t n = r.U16();
    for (std::uint16_t i = 0; i < n; ++i) wanted.push_back(r.U32());
    if (!r.ok()) {
      stats_.Inc("dsm.malformed");
      return;
    }
  }
  struct Claim {
    PageNum page = 0;
    std::uint64_t version = 0;
    std::uint8_t access = 0;
    std::uint8_t flags = 0;
    std::uint64_t op_id = 0;
    bool op_is_write = false;
    std::uint64_t op_new_version = 0;
    std::uint16_t type = 0;
    std::uint32_t alloc_bytes = 0;
  };
  std::vector<Claim> claims;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto emit = [&](PageNum p) {
      const LocalPageEntry& e = ptable_.Local(p);
      Claim c;
      c.page = p;
      c.version = e.version;
      c.access = AccessByte(e.access);
      if (cfg_.release_consistency && e.access == Access::kWrite) {
        // Under release consistency a write-accessible page is a local twin
        // (or home-dirty): the manager of record never granted write
        // ownership, so claim it as a read copy at its base version — the
        // rebuilt entry must not adopt a deferred-write buffer as owner.
        c.access = AccessByte(Access::kRead);
      }
      c.flags = static_cast<std::uint8_t>((e.owned ? 1 : 0) |
                                          (e.retained ? 2 : 0));
      // Dynamic directory: flag pages this host currently manages, so the
      // recovering base host installs a forward pointer instead of seizing
      // management back from a live migrated entry.
      if (dir_.dynamic() && dir_.ManagedHere(p) && !recovering_) c.flags |= 4;
      c.type = static_cast<std::uint16_t>(e.type);
      c.alloc_bytes = e.alloc_bytes;
      // The highest-id in-flight grant: a decoded-but-unconfirmed transfer
      // this host WILL install, which the manager must adopt as busy.
      for (auto it = inflight_ops_.lower_bound({p, 0});
           it != inflight_ops_.end() && it->first.first == p; ++it) {
        c.op_id = it->first.second;
        c.op_is_write = it->second.is_write;
        c.op_new_version = it->second.new_version;
      }
      // Claim only pages with something to say: a copy, a retained image,
      // an in-flight grant, a managed entry, or a version trace (evidence
      // the page once lived, so a silent total loss is detected, not
      // reinitialized).
      if (c.version == 0 && c.access == 0 && c.flags == 0 && c.op_id == 0) {
        return;
      }
      claims.push_back(c);
    };
    if (wanted.empty()) {
      for (PageNum p = 0; p < ptable_.num_pages(); ++p) {
        if (dir_.BaseManagerOf(p) != mgr) continue;
        emit(p);
      }
    } else {
      for (PageNum p : wanted) {
        if (p < ptable_.num_pages()) emit(p);
      }
    }
  }
  base::WireWriter w;
  w.U16(static_cast<std::uint16_t>(claims.size()));
  for (const Claim& c : claims) {
    w.U32(c.page);
    w.U64(c.version);
    w.U8(c.access);
    w.U8(c.flags);
    w.U64(c.op_id);
    w.U8(c.op_is_write ? 1 : 0);
    w.U64(c.op_new_version);
    if (dir_.dynamic()) {
      w.U16(c.type);
      w.U32(c.alloc_bytes);
    }
  }
  ctx.Reply(std::move(w).Take());
}

void Host::HandleRecoveryDemote(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const std::uint16_t n = r.U16();
  struct Cmd {
    PageNum p = 0;
    std::uint8_t mode = 0;  // 0 drop, 1 downgrade+disown, 2 promote
    std::uint64_t version = 0;
  };
  std::vector<Cmd> cmds(n);
  for (Cmd& c : cmds) {
    c.p = r.U32();
    c.mode = r.U8();
    c.version = r.U64();
  }
  if (!r.ok()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  // Referee events are collected under the lock and reported after it (the
  // referee takes its own mutex; keep the order state_mu_ -> referee only).
  struct Ev {
    std::uint8_t kind = 0;  // 0 invalidate, 1 downgrade, 2 install
    PageNum p = 0;
    std::uint64_t version = 0;
  };
  std::vector<Ev> evs;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    for (const Cmd& c : cmds) {
      if (c.p >= ptable_.num_pages()) continue;
      LocalPageEntry& e = ptable_.Local(c.p);
      if (c.mode == 0 || c.mode == 1) {
        // A drop/downgrade proves the rebuilt manager did NOT adopt any
        // grant we have decoded for this page (adopted claimants are never
        // demoted): fence those ops so their pending installs are discarded
        // instead of resurrecting the demoted state, and let the fault path
        // retry against the rebuilt manager.
        for (auto it = inflight_ops_.lower_bound({c.p, 0});
             it != inflight_ops_.end() && it->first.first == c.p;) {
          FenceOpLocked(it->first.first, it->first.second);
          it = inflight_ops_.erase(it);
        }
      }
      if (c.mode == 0) {
        // This copy lost the rebuild arbitration (stale version, demoted
        // duplicate, or a dangling retained image).
        if (e.access != Access::kNone) {
          evs.push_back({0, c.p, 0});
          stats_.Inc("dsm.recovery_demotions");
        }
        e.access = Access::kNone;
        e.owned = false;
        e.retained = false;
        DropConvertCacheLocked(c.p);
      } else if (c.mode == 1) {
        // Ownership moved elsewhere; the copy stays readable.
        if (e.access == Access::kWrite) {
          e.access = Access::kRead;
          evs.push_back({1, c.p, 0});
          stats_.Inc("dsm.recovery_demotions");
        }
        e.owned = false;
      } else if (c.mode == 2) {
        // This host is the rebuilt owner. A retained pre-crash image is
        // re-animated as the live copy; a write grant is conservatively
        // downgraded (the rebuild leaves no page writable, so MRSW holds
        // by construction through the heal).
        if (e.access == Access::kNone && e.retained) {
          e.access = Access::kRead;
          e.retained = false;
          evs.push_back({2, c.p, e.version});
        } else if (e.access == Access::kWrite) {
          e.access = Access::kRead;
          evs.push_back({1, c.p, 0});
        }
        if (e.access != Access::kNone) {
          e.owned = true;
          stats_.Inc("dsm.recovery_promotions");
        }
      }
      TraceEv(trace::EventKind::kRecoveryDemote, c.p, 0, 0, ctx.origin(),
              c.mode);
    }
  }
  for (const Ev& ev : evs) {
    if (referee_ == nullptr) break;
    if (ev.kind == 0) {
      referee_->OnInvalidate(self_, ev.p);
    } else if (ev.kind == 1) {
      referee_->OnDowngrade(self_, ev.p);
    } else {
      referee_->OnInstall(self_, ev.p, ev.version, Access::kRead);
    }
  }
  ctx.Reply({});
}

void Host::RunManagerRecovery() {
  const SimTime t0 = rt_.Now();
  // Crashing AGAIN mid-recovery spawns a fresh recovery for the new life;
  // this one is then a zombie and must not touch the re-wiped state (a
  // zombie reinit would double-initialize pages the new life also
  // reinitializes, and a zombie `recovering_ = false` would open the
  // request gates while the new rebuild is still collecting claims).
  // Every mutation below re-checks the life captured here.
  std::uint32_t life;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    life = life_;
  }
  TraceEv(trace::EventKind::kRecoveryStart, trace::kNoPage, 0, 0,
          endpoint_.incarnation());
  struct Claim {
    PageNum page = 0;
    std::uint64_t version = 0;
    Access access = Access::kNone;
    bool owned = false;
    bool retained = false;
    std::uint64_t op_id = 0;
    bool op_is_write = false;
    std::uint64_t op_new_version = 0;
    net::HostId host = 0;
    bool manages = false;  // dynamic: claimant holds the migrated entry
  };
  std::vector<Claim> claims;
  std::vector<net::HostId> unanswered;
  for (net::HostId h = 0; h < num_hosts_; ++h) {
    if (h != self_) unanswered.push_back(h);
  }
  for (int round = 0;; ++round) {
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life != life_) return;
    }
    // A host that is down right now restarts with amnesia: it has nothing
    // to claim, so it counts as answered-empty.
    std::erase_if(unanswered, [&](net::HostId h) {
      return net_.HostDown(h, rt_.Now());
    });
    if (unanswered.empty()) break;
    MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                      "manager recovery query exhausted retries");
    if (round > 0) rt_.Delay(FaultBackoff(cfg_, round));
    stats_.Inc("dsm.recovery_queries",
               static_cast<std::int64_t>(unanswered.size()));
    TraceEv(trace::EventKind::kRecoveryQuery, trace::kNoPage, 0, 0,
            static_cast<std::int64_t>(unanswered.size()), round);
    auto acks = endpoint_.MultiCallWithStatus(unanswered, kOpRecoveryQuery,
                                              {}, net::MsgKind::kControl,
                                              DsmCallOpts());
    if (acks.status == net::CallStatus::kShutdown) return;
    std::set<std::size_t> timed_out(acks.timed_out.begin(),
                                    acks.timed_out.end());
    std::vector<net::HostId> next;
    for (std::size_t i = 0; i < unanswered.size(); ++i) {
      if (timed_out.count(i) != 0) {
        next.push_back(unanswered[i]);
        continue;
      }
      const base::Buffer flat = acks.replies[i].Flatten();
      base::WireReader r(flat.span());
      const std::uint16_t n = r.U16();
      for (std::uint16_t k = 0; k < n && r.ok(); ++k) {
        Claim c;
        c.page = r.U32();
        c.version = r.U64();
        c.access = AccessFromByte(r.U8());
        const std::uint8_t flags = r.U8();
        c.owned = (flags & 1) != 0;
        c.retained = (flags & 2) != 0;
        c.op_id = r.U64();
        c.op_is_write = r.U8() != 0;
        c.op_new_version = r.U64();
        if (dir_.dynamic()) {
          c.manages = (flags & 4) != 0;
          r.U16();  // type: the rebuilt entry keeps its re-applied type set
          r.U32();  // alloc_bytes: likewise
        }
        c.host = unanswered[i];
        if (r.ok()) claims.push_back(c);
      }
      if (!r.ok()) stats_.Inc("dsm.malformed");
    }
    unanswered = std::move(next);
  }
  stats_.Inc("dsm.recovery_claims",
             static_cast<std::int64_t>(claims.size()));

  std::map<PageNum, std::vector<const Claim*>> by_page;
  for (const Claim& c : claims) {
    if (c.page < ptable_.num_pages() && dir_.BaseManagedHere(c.page)) {
      by_page[c.page].push_back(&c);
    }
  }
  struct Out {
    net::HostId dst = 0;
    PageNum p = 0;
    std::uint8_t mode = 0;
    std::uint64_t version = 0;
  };
  std::vector<Out> outs;
  // Pages reinitialized (referee OnReinit after the lock): quiet initial
  // restores and policy-reinitialized losses alike.
  std::vector<PageNum> reinits;
  std::vector<PageNum> rebuilt_pages;
  std::int64_t lost = 0;
  std::int64_t adopted = 0;
  std::int64_t forwarded = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_) return;
    auto rebuild = [&](PageNum p, ManagerEntry& m) {
      m.busy = false;
      m.pending.clear();  // queued requesters re-send after their timeouts
      m.copyset.clear();
      const Claim* infl = nullptr;
      bool evidence = false;
      std::vector<const Claim*> valid;
      std::uint64_t vmax = 0;
      if (auto it = by_page.find(p); it != by_page.end()) {
        for (const Claim* c : it->second) {
          if (c->version > 0 || c->op_id != 0) evidence = true;
          if (c->access != Access::kNone || c->retained) {
            valid.push_back(c);
            vmax = std::max(vmax, c->version);
          }
          if (c->op_id != 0 && (infl == nullptr || c->op_id > infl->op_id)) {
            infl = c;
          }
        }
      }
      if (valid.empty() && infl == nullptr) {
        // No copy survives anywhere. Without evidence the page was simply
        // never shared (every page starts owned by its manager): restore
        // the initial placement quietly. With evidence, the whole history
        // died in the crash: the lost-page policy applies.
        if (evidence) {
          MERMAID_CHECK_MSG(
              cfg_.lost_page_policy == SystemConfig::LostPagePolicy::kReinitZero,
              "page lost in manager crash: every copy died");
          stats_.Inc("dsm.recovery_pages_lost");
          ++lost;
        }
        m.owner = self_;
        m.copyset.insert(self_);
        m.version = 0;
        LocalPageEntry& e = ptable_.Local(p);
        e.access = Access::kRead;
        e.owned = true;
        e.version = 0;
        e.retained = false;
        e.type = m.type;
        e.alloc_bytes = m.alloc_bytes;
        const std::size_t base = static_cast<std::size_t>(p) * page_bytes_;
        const std::size_t end =
            std::min<std::size_t>(base + page_bytes_, mem_.size());
        std::fill(mem_.begin() + base, mem_.begin() + end, 0);
        reinits.push_back(p);
        return;
      }
      rebuilt_pages.push_back(p);
      // Arbitrate the surviving copies: highest version wins; among those,
      // prefer a claimed owner-writer, then a claimed owner, then any live
      // copy, then a retained image; lowest host id breaks ties.
      auto rank = [](const Claim* c) {
        if (c->owned && c->access == Access::kWrite) return 3;
        if (c->owned) return 2;
        if (c->access != Access::kNone) return 1;
        return 0;
      };
      const bool adopt = infl != nullptr && infl->op_new_version >= vmax;
      const Claim* winner = nullptr;
      for (const Claim* c : valid) {
        if (c->version < vmax) continue;
        if (winner == nullptr || rank(c) > rank(winner) ||
            (rank(c) == rank(winner) && c->host < winner->host)) {
          winner = c;
        }
      }
      if (winner != nullptr) {
        m.owner = winner->host;
        m.version = vmax;
        for (const Claim* c : valid) {
          // The adopted in-flight grant's install depends on the local state
          // its claimant reported (a read copy to upgrade, a retained image
          // to re-animate). A drop/downgrade would wipe that state out from
          // under the pending install — leave the claimant alone and let
          // the transfer's confirm settle owner and copyset.
          const bool pending_install = adopt && c->host == infl->host;
          if (c->version < vmax) {
            // Stale copy: drop it (and any retained image with it).
            if (!pending_install) outs.push_back({c->host, p, 0, vmax});
            continue;
          }
          if (c == winner) {
            m.copyset.insert(c->host);
            outs.push_back({c->host, p, 2, vmax});
            continue;
          }
          if (c->access == Access::kNone) {
            // A retained image that lost the arbitration is a dangling
            // pre-crash grant artifact: clear it.
            if (!pending_install) outs.push_back({c->host, p, 0, vmax});
            continue;
          }
          m.copyset.insert(c->host);
          if (c->owned || c->access == Access::kWrite) {
            // Duplicate owner/writer: downgrade and disown, keep the copy.
            if (!pending_install) outs.push_back({c->host, p, 1, vmax});
          }
        }
      }
      if (adopt) {
        // A host holds a decoded-but-unconfirmed grant for this page: adopt
        // it as the busy transfer so its confirm commits normally (or the
        // janitor probes it out if the claimant died meanwhile).
        if (winner == nullptr) {
          m.owner = infl->host;
          m.version = infl->op_new_version;
        }
        m.busy = true;
        m.busy_op_id = infl->op_id;
        m.busy_requester = infl->host;
        m.busy_is_write = infl->op_is_write;
        m.busy_new_version = infl->op_new_version;
        m.busy_since = rt_.Now();
        ++adopted;
        stats_.Inc("dsm.recovery_inflight_adopted");
      }
    };
    for (PageNum p : dir_.ManagedPages()) {
      ManagerEntry* mp = dir_.FindManager(p);
      if (mp == nullptr) continue;
      if (dir_.dynamic()) {
        // A survivor claiming `manages` holds the live migrated entry for
        // this base page: this host is only its rally point again. Reinstall
        // the forward pointer instead of seizing management back.
        const Claim* live_mgr = nullptr;
        if (auto it = by_page.find(p); it != by_page.end()) {
          for (const Claim* c : it->second) {
            if (c->manages &&
                (live_mgr == nullptr || c->host < live_mgr->host)) {
              live_mgr = c;
            }
          }
        }
        if (live_mgr != nullptr) {
          dir_.EraseManager(p);
          dir_.SetForward(p, live_mgr->host, IncOf(live_mgr->host));
          dir_.LearnManager(p, live_mgr->host, IncOf(live_mgr->host));
          ++forwarded;
          continue;
        }
      }
      rebuild(p, *mp);
    }
    if (forwarded > 0) stats_.Inc("dsm.recovery_forwards", forwarded);
    // Referee notification stays under the lock: a crash cannot interpose
    // between the wipe check above and the reinit becoming visible (the
    // wipe itself needs state_mu_), so the referee never records a reinit
    // from a life that has already been wiped away.
    for (PageNum p : reinits) {
      if (referee_ != nullptr) referee_->OnReinit(self_, p, 0);
    }
  }
  for (PageNum p : rebuilt_pages) {
    TraceEv(trace::EventKind::kRecoveryRebuild, p, 0, 0);
  }

  // Apply the arbitration on the claimants. Reliable delivery matters for
  // modes 0/1 (a missed demote leaves a stale owner or duplicate writer
  // behind), so each batch is a bounded-retry call, skipped only when the
  // destination itself died (amnesia voids the demote anyway).
  std::map<net::HostId, std::vector<Out>> by_dst;
  for (const Out& o : outs) by_dst[o.dst].push_back(o);
  for (const auto& [dst, cmds] : by_dst) {
    base::WireWriter w;
    w.U16(static_cast<std::uint16_t>(cmds.size()));
    for (const Out& o : cmds) {
      w.U32(o.p);
      w.U8(o.mode);
      w.U64(o.version);
    }
    const net::Body body = std::move(w).Take();
    for (int round = 0;; ++round) {
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (life != life_) return;
      }
      if (net_.HostDown(dst, rt_.Now())) break;
      MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                        "recovery demote exhausted retries");
      if (round > 0) rt_.Delay(FaultBackoff(cfg_, round));
      auto res = endpoint_.CallWithStatus(dst, kOpRecoveryDemote, body,
                                          net::MsgKind::kControl,
                                          DsmCallOpts());
      if (res.status != net::CallStatus::kTimedOut) break;
    }
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_) return;
    recovering_ = false;
  }
  stats_.Hist("dsm.recovery_ms", ToMillis(rt_.Now() - t0));
  TraceEv(trace::EventKind::kRecoveryDone, trace::kNoPage, 0, 0,
          static_cast<std::int64_t>(rebuilt_pages.size()), lost);
  (void)adopted;
}

// --------------------------------------------------------------------------
// Dynamic directory: migration daemon, handshake, and entry reclaim
// --------------------------------------------------------------------------

void Host::MigrationDaemon() {
  for (;;) {
    auto job = migrate_chan_.Recv();
    if (!job.has_value()) return;  // engine shutdown
    if (job->reclaim) {
      RunReclaim(job->page);
    } else {
      RunMigration(job->page, job->target);
    }
  }
}

void Host::RunMigration(PageNum p, net::HostId target) {
  // Snapshot the frozen entry. ManagerCommit set `migrating` under the lock
  // before queueing this job; that flag blocks every grant path, so the
  // snapshot cannot go stale while the handshake is in flight. The target is
  // the owner of record: migration triggers only on its committed write.
  std::uint64_t version = 0;
  arch::TypeId type = arch::TypeRegistry::kChar;
  std::uint32_t alloc_bytes = 0;
  std::vector<net::HostId> copyset;
  bool aborted = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* m = dir_.FindManager(p);
    if (m == nullptr || !m->migrating || m->busy) return;  // crash-wiped
    if (recovering_ ||
        (cfg_.crash_recovery && net_.HostDown(target, rt_.Now()))) {
      m->migrating = false;
      aborted = true;
    } else {
      version = m->version;
      type = m->type;
      alloc_bytes = m->alloc_bytes;
      copyset.assign(m->copyset.begin(), m->copyset.end());
    }
  }
  if (aborted) {
    stats_.Inc("dsm.mgr_migrate_aborted");
    ManagerDrain(p);
    return;
  }
  base::WireWriter w;
  w.U32(p);
  w.U64(version);
  w.U16(static_cast<std::uint16_t>(type));
  w.U32(alloc_bytes);
  w.U16(static_cast<std::uint16_t>(copyset.size()));
  for (net::HostId h : copyset) w.U16(h);
  auto resp = endpoint_.CallWithStatus(target, kOpMgrMigrate,
                                       std::move(w).Take(),
                                       net::MsgKind::kControl, DsmCallOpts());
  if (resp.status == net::CallStatus::kShutdown) return;
  bool accepted = false;
  if (resp.status == net::CallStatus::kOk) {
    const base::Buffer flat = resp.body.Flatten();
    base::WireReader r(flat.span());
    const std::uint8_t verdict = r.U8();
    accepted = r.ok() && verdict == 0;
  }
  std::deque<PendingTransfer> moved;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ManagerEntry* m = dir_.FindManager(p);
    if (m == nullptr || !m->migrating) return;  // crash-wiped mid-handshake
    m->migrating = false;
    if (accepted) {
      moved = std::move(m->pending);
      dir_.EraseManager(p);
      dir_.SetForward(p, target, IncOf(target));
      dir_.LearnManager(p, target, IncOf(target));
    }
  }
  if (!accepted) {
    // The target refused (raced state change, amnesiac restart) or never
    // answered: thaw the entry and keep serving from here.
    stats_.Inc("dsm.mgr_migrate_rejected");
    ManagerDrain(p);
    return;
  }
  stats_.Inc("dsm.mgr_migrations");
  TraceEv(trace::EventKind::kMgrMigrate, p, 0,
          TraceParent(trace::MgrMigrateKey(p)), target, 0);
  // Parked requesters chase the entry to its new manager (reply duty moves
  // with the forward); parked local faults wake on the op_id==0 sentinel and
  // re-dispatch through the remote path.
  for (PendingTransfer& t : moved) {
    if (t.remote.has_value()) {
      base::WireWriter fw;
      fw.U8(kToManager);
      fw.U32(p);
      fw.U8(t.has_copy ? 1 : 0);
      fw.U8(0);  // fresh forwarding-hop budget
      t.remote->Forward(target, std::move(fw).Take());
    } else {
      t.local_grant.Send(ManagerGrant{});
    }
  }
}

void Host::HandleMgrMigrate(net::RequestContext ctx) {
  base::WireReader r(ctx.body());
  const PageNum p = r.U32();
  const std::uint64_t version = r.U64();
  const arch::TypeId type = static_cast<arch::TypeId>(r.U16());
  const std::uint32_t alloc_bytes = r.U32();
  const std::uint16_t n = r.U16();
  std::set<net::HostId> copyset;
  for (std::uint16_t i = 0; i < n; ++i) copyset.insert(r.U16());
  if (!r.ok() || !dir_.dynamic() || p >= ptable_.num_pages()) {
    stats_.Inc("dsm.malformed");
    return;
  }
  rt_.Delay(profile_->server_op_cost);
  bool accept = false;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    const LocalPageEntry& e = ptable_.Local(p);
    // Adopt only when the local copy is exactly the committed owned page the
    // source snapshotted: an amnesiac restart or any interleaved change
    // makes this host refuse, and the source keeps the entry.
    if (!recovering_ && dir_.FindManager(p) == nullptr && e.owned &&
        e.access != Access::kNone && e.version == version) {
      ManagerEntry& m = dir_.AdoptManager(p);
      m.owner = self_;
      m.copyset = std::move(copyset);
      m.copyset.insert(self_);
      m.version = version;
      m.type = type;
      m.alloc_bytes = alloc_bytes;
      // The live entry supersedes any stale forward or learned location.
      dir_.ClearForward(p);
      dir_.ForgetManager(p);
      accept = true;
      // Referee + trace stay under the lock so no grant from the fresh
      // entry can interleave before the migration is recorded.
      const std::uint64_t ev =
          TraceEv(trace::EventKind::kMgrMigrate, p, 0,
                  TraceParent(trace::MgrMigrateKey(p)), ctx.origin(), 1);
      TraceBind(trace::MgrMigrateKey(p), ev);
      if (referee_ != nullptr) referee_->OnMgrMigrate(ctx.origin(), self_, p);
    }
  }
  stats_.Inc(accept ? "dsm.mgr_migrate_adopted" : "dsm.mgr_migrate_refused");
  base::WireWriter w;
  w.U8(accept ? 0 : 1);
  ctx.Reply(std::move(w).Take());
}

void Host::QueueReclaimLocked(PageNum p) {
  if (!reclaiming_.insert(p).second) return;  // already queued or running
  stats_.Inc("dsm.mgr_reclaims");
  migrate_chan_.Send(MigrateJob{p, 0, /*reclaim=*/true});
}

bool Host::ForwardNotifyLocked(PageNum p, std::uint8_t op,
                               std::span<const std::uint8_t> body) {
  const Directory::Forward* fwd = dir_.ForwardOf(p);
  if (fwd == nullptr) return false;
  base::WireWriter w;
  w.Raw(body);
  endpoint_.Notify(fwd->to, op, std::move(w).Take());
  stats_.Inc("dsm.mgr_notify_forwards");
  return true;
}

void Host::RunReclaim(PageNum p) {
  // The manager this page's entry migrated to died with the entry. This host
  // holds the dangling forward pointer, so it rebuilds the entry locally
  // from survivor claims — a one-page version of RunManagerRecovery.
  std::uint32_t life;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    life = life_;
    if (recovering_ || dir_.FindManager(p) != nullptr) {
      // Full recovery owns the rebuild, or a migration adopted the entry
      // here while this job sat in the queue.
      reclaiming_.erase(p);
      return;
    }
  }
  stats_.Inc("dsm.mgr_reclaims_run");
  base::WireWriter qw;
  qw.U16(1);
  qw.U32(p);
  const net::Body qbody = std::move(qw).Take();
  struct Claim {
    std::uint64_t version = 0;
    Access access = Access::kNone;
    bool owned = false;
    bool retained = false;
    std::uint64_t op_id = 0;
    bool op_is_write = false;
    std::uint64_t op_new_version = 0;
    net::HostId host = 0;
    bool manages = false;
    arch::TypeId type = arch::TypeRegistry::kChar;
    std::uint32_t alloc_bytes = 0;
  };
  std::vector<Claim> claims;
  std::vector<net::HostId> unanswered;
  for (net::HostId h = 0; h < num_hosts_; ++h) {
    if (h != self_) unanswered.push_back(h);
  }
  for (int round = 0;; ++round) {
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (life != life_) return;  // crashed meanwhile; the wipe cleaned up
    }
    std::erase_if(unanswered, [&](net::HostId h) {
      return net_.HostDown(h, rt_.Now());
    });
    if (unanswered.empty()) break;
    MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                      "manager reclaim query exhausted retries");
    if (round > 0) rt_.Delay(FaultBackoff(cfg_, round));
    auto acks = endpoint_.MultiCallWithStatus(unanswered, kOpRecoveryQuery,
                                              qbody, net::MsgKind::kControl,
                                              DsmCallOpts());
    if (acks.status == net::CallStatus::kShutdown) return;
    std::set<std::size_t> timed_out(acks.timed_out.begin(),
                                    acks.timed_out.end());
    std::vector<net::HostId> next;
    for (std::size_t i = 0; i < unanswered.size(); ++i) {
      if (timed_out.count(i) != 0) {
        next.push_back(unanswered[i]);
        continue;
      }
      const base::Buffer flat = acks.replies[i].Flatten();
      base::WireReader cr(flat.span());
      const std::uint16_t cn = cr.U16();
      for (std::uint16_t k = 0; k < cn && cr.ok(); ++k) {
        Claim c;
        const PageNum cp = cr.U32();
        c.version = cr.U64();
        c.access = AccessFromByte(cr.U8());
        const std::uint8_t flags = cr.U8();
        c.owned = (flags & 1) != 0;
        c.retained = (flags & 2) != 0;
        c.manages = (flags & 4) != 0;
        c.op_id = cr.U64();
        c.op_is_write = cr.U8() != 0;
        c.op_new_version = cr.U64();
        c.type = static_cast<arch::TypeId>(cr.U16());
        c.alloc_bytes = cr.U32();
        c.host = unanswered[i];
        if (cr.ok() && cp == p) claims.push_back(c);
      }
      if (!cr.ok()) stats_.Inc("dsm.malformed");
    }
    unanswered = std::move(next);
  }
  // A live migrated entry surfaced elsewhere (the dead manager had already
  // handed the page on before dying): repoint the forward instead of
  // seizing management.
  const Claim* live_mgr = nullptr;
  for (const Claim& c : claims) {
    if (c.manages && (live_mgr == nullptr || c.host < live_mgr->host)) {
      live_mgr = &c;
    }
  }
  if (live_mgr != nullptr) {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_) return;
    if (dir_.FindManager(p) == nullptr) {
      dir_.SetForward(p, live_mgr->host, IncOf(live_mgr->host));
      dir_.LearnManager(p, live_mgr->host, IncOf(live_mgr->host));
    }
    reclaiming_.erase(p);
    return;
  }
  struct Out {
    net::HostId dst = 0;
    std::uint8_t mode = 0;  // 0 drop, 1 downgrade+disown, 2 promote
    std::uint64_t version = 0;
  };
  std::vector<Out> outs;
  bool reinit = false;
  bool lost = false;
  // Referee events from self-demotes, reported after the lock (recovery's
  // lock-order rule: state_mu_ -> referee only).
  std::vector<std::pair<std::uint8_t, std::uint64_t>> self_evs;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (life != life_) return;
    if (recovering_ || dir_.FindManager(p) != nullptr) {
      reclaiming_.erase(p);
      return;
    }
    // This host's own copy competes like any survivor's claim.
    {
      const LocalPageEntry& e = ptable_.Local(p);
      Claim c;
      c.host = self_;
      c.version = e.version;
      c.access = (cfg_.release_consistency && e.access == Access::kWrite)
                     ? Access::kRead
                     : e.access;
      c.owned = e.owned;
      c.retained = e.retained;
      c.type = e.type;
      c.alloc_bytes = e.alloc_bytes;
      for (auto it = inflight_ops_.lower_bound({p, 0});
           it != inflight_ops_.end() && it->first.first == p; ++it) {
        c.op_id = it->first.second;
        c.op_is_write = it->second.is_write;
        c.op_new_version = it->second.new_version;
      }
      if (c.version > 0 || c.access != Access::kNone || c.owned ||
          c.retained || c.op_id != 0) {
        claims.push_back(c);
      }
    }
    ManagerEntry& m = dir_.AdoptManager(p);
    dir_.ClearForward(p);
    dir_.ForgetManager(p);
    const Claim* infl = nullptr;
    bool evidence = false;
    std::vector<const Claim*> valid;
    std::uint64_t vmax = 0;
    for (const Claim& c : claims) {
      if (c.version > 0 || c.op_id != 0) evidence = true;
      if (c.access != Access::kNone || c.retained) {
        valid.push_back(&c);
        vmax = std::max(vmax, c.version);
      }
      if (c.op_id != 0 && (infl == nullptr || c.op_id > infl->op_id)) {
        infl = &c;
      }
      m.alloc_bytes = std::max(m.alloc_bytes, c.alloc_bytes);
    }
    if (valid.empty() && infl == nullptr) {
      if (evidence) {
        MERMAID_CHECK_MSG(
            cfg_.lost_page_policy == SystemConfig::LostPagePolicy::kReinitZero,
            "page lost with its migrated manager: every copy died");
        stats_.Inc("dsm.recovery_pages_lost");
        lost = true;
      }
      m.owner = self_;
      m.copyset.insert(self_);
      m.version = 0;
      LocalPageEntry& e = ptable_.Local(p);
      e.access = Access::kRead;
      e.owned = true;
      e.version = 0;
      e.retained = false;
      e.type = m.type;
      e.alloc_bytes = m.alloc_bytes;
      const std::size_t base = static_cast<std::size_t>(p) * page_bytes_;
      const std::size_t end =
          std::min<std::size_t>(base + page_bytes_, mem_.size());
      std::fill(mem_.begin() + base, mem_.begin() + end, 0);
      reinit = true;
      if (referee_ != nullptr) referee_->OnReinit(self_, p, 0);
    } else {
      auto rank = [](const Claim* c) {
        if (c->owned && c->access == Access::kWrite) return 3;
        if (c->owned) return 2;
        if (c->access != Access::kNone) return 1;
        return 0;
      };
      const bool adopt = infl != nullptr && infl->op_new_version >= vmax;
      const Claim* winner = nullptr;
      for (const Claim* c : valid) {
        if (c->version < vmax) continue;
        if (winner == nullptr || rank(c) > rank(winner) ||
            (rank(c) == rank(winner) && c->host < winner->host)) {
          winner = c;
        }
      }
      if (winner != nullptr) {
        m.owner = winner->host;
        m.version = vmax;
        m.type = winner->type;
        for (const Claim* c : valid) {
          const bool pending_install = adopt && c->host == infl->host;
          if (c->version < vmax) {
            if (!pending_install) outs.push_back({c->host, 0, vmax});
            continue;
          }
          if (c == winner) {
            m.copyset.insert(c->host);
            outs.push_back({c->host, 2, vmax});
            continue;
          }
          if (c->access == Access::kNone) {
            if (!pending_install) outs.push_back({c->host, 0, vmax});
            continue;
          }
          m.copyset.insert(c->host);
          if (c->owned || c->access == Access::kWrite) {
            if (!pending_install) outs.push_back({c->host, 1, vmax});
          }
        }
      }
      if (adopt) {
        if (winner == nullptr) {
          m.owner = infl->host;
          m.version = infl->op_new_version;
          m.type = infl->type;
        }
        m.busy = true;
        m.busy_op_id = infl->op_id;
        m.busy_requester = infl->host;
        m.busy_is_write = infl->op_is_write;
        m.busy_new_version = infl->op_new_version;
        m.busy_since = rt_.Now();
        stats_.Inc("dsm.recovery_inflight_adopted");
      }
      // Demotes addressed to this host apply inline, mirroring
      // HandleRecoveryDemote (fencing included).
      std::erase_if(outs, [&](const Out& o) {
        if (o.dst != self_) return false;
        LocalPageEntry& e = ptable_.Local(p);
        if (o.mode == 0 || o.mode == 1) {
          for (auto it = inflight_ops_.lower_bound({p, 0});
               it != inflight_ops_.end() && it->first.first == p;) {
            FenceOpLocked(it->first.first, it->first.second);
            it = inflight_ops_.erase(it);
          }
        }
        if (o.mode == 0) {
          if (e.access != Access::kNone) {
            self_evs.push_back({0, 0});
            stats_.Inc("dsm.recovery_demotions");
          }
          e.access = Access::kNone;
          e.owned = false;
          e.retained = false;
          DropConvertCacheLocked(p);
        } else if (o.mode == 1) {
          if (e.access == Access::kWrite) {
            e.access = Access::kRead;
            self_evs.push_back({1, 0});
            stats_.Inc("dsm.recovery_demotions");
          }
          e.owned = false;
        } else {
          if (e.access == Access::kNone && e.retained) {
            e.access = Access::kRead;
            e.retained = false;
            self_evs.push_back({2, e.version});
          } else if (e.access == Access::kWrite) {
            e.access = Access::kRead;
            self_evs.push_back({1, 0});
          }
          if (e.access != Access::kNone) {
            e.owned = true;
            stats_.Inc("dsm.recovery_promotions");
          }
        }
        return true;
      });
    }
    reclaiming_.erase(p);
  }
  for (const auto& [kind, version] : self_evs) {
    if (referee_ == nullptr) break;
    if (kind == 0) {
      referee_->OnInvalidate(self_, p);
    } else if (kind == 1) {
      referee_->OnDowngrade(self_, p);
    } else {
      referee_->OnInstall(self_, p, version, Access::kRead);
    }
  }
  if (reinit) {
    TraceEv(trace::EventKind::kRecoveryLost, p, 0, 0, lost ? 1 : 0);
  } else {
    TraceEv(trace::EventKind::kRecoveryRebuild, p, 0, 0, 1 /* reclaim */);
  }
  // Apply the arbitration on remote claimants; reliable like recovery's
  // demote delivery, skipped when the destination itself died.
  std::map<net::HostId, std::vector<Out>> by_dst;
  for (const Out& o : outs) by_dst[o.dst].push_back(o);
  for (const auto& [dst, cmds] : by_dst) {
    base::WireWriter w;
    w.U16(static_cast<std::uint16_t>(cmds.size()));
    for (const Out& o : cmds) {
      w.U32(p);
      w.U8(o.mode);
      w.U64(o.version);
    }
    const net::Body body = std::move(w).Take();
    for (int round = 0;; ++round) {
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (life != life_) return;
      }
      if (net_.HostDown(dst, rt_.Now())) break;
      MERMAID_CHECK_MSG(round <= cfg_.fault_retry_limit,
                        "reclaim demote exhausted retries");
      if (round > 0) rt_.Delay(FaultBackoff(cfg_, round));
      auto res = endpoint_.CallWithStatus(dst, kOpRecoveryDemote, body,
                                          net::MsgKind::kControl,
                                          DsmCallOpts());
      if (res.status != net::CallStatus::kTimedOut) break;
    }
  }
  ManagerDrain(p);
}

}  // namespace mermaid::dsm
