// Manager-placement directory: who manages which DSM page, and this host's
// slice of manager-side state.
//
// The paper fixes page p's manager at host (p % N). That mapping is a
// per-page serialization point and a crash blast radius, so the directory
// now sits behind this class with three placements (SystemConfig::
// directory_mode):
//
//   kFixed    — the paper's p % N. Default; Tables 2–4 depend on it.
//   kSharded  — consistent-hash ring of N x directory_shards_per_host
//               virtual shards. Pure function of (num_hosts, shards), so
//               every host computes the same map with no coordination.
//   kDynamic  — sharded *base* map, but management may migrate toward the
//               last/dominant writer (Li's dynamic distributed managers).
//               The base manager is then only the page's well-known rally
//               point: old managers keep a forward pointer, requesters keep
//               a learned location, and recovery rebuilds from the base.
//
// All mutable state here is guarded by the owning Host's state_mu_, exactly
// like the PageTable it was split from.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mermaid/dsm/page_table.h"
#include "mermaid/dsm/types.h"
#include "mermaid/net/network.h"

namespace mermaid::dsm {

class Directory {
 public:
  Directory(const SystemConfig& cfg, net::HostId self, std::uint16_t num_hosts,
            PageNum num_pages);

  // --- static base placement (pure function; safe without locks) ---------
  net::HostId BaseManagerOf(PageNum p) const;
  bool BaseManagedHere(PageNum p) const { return BaseManagerOf(p) == self_; }

  // --- this host's manager entries ----------------------------------------
  // Under kFixed/kSharded an entry exists iff BaseManagedHere(p); under
  // kDynamic entries follow migration.
  bool ManagedHere(PageNum p) const { return entries_.count(p) != 0; }
  ManagerEntry& Manager(PageNum p);       // CHECKs ManagedHere(p)
  ManagerEntry* FindManager(PageNum p);   // nullptr when not managed here
  ManagerEntry& AdoptManager(PageNum p);  // create (migration target)
  void EraseManager(PageNum p);           // drop (migration source)

  // Ascending page order, matching the janitor's historical scan order.
  template <typename Fn>
  void ForEachManaged(Fn&& fn) {
    for (auto& [p, m] : entries_) fn(p, m);
  }
  std::vector<PageNum> ManagedPages() const;

  // --- requester-side routing ---------------------------------------------
  // Where to send a manager request for p: a learned (migrated) location if
  // one is known, else the base manager. Never returns a forward target —
  // forwards are served on the receive path.
  net::HostId ManagerTarget(PageNum p) const;
  void LearnManager(PageNum p, net::HostId mgr, std::uint32_t inc);
  void ForgetManager(PageNum p);
  // Drops every learned location naming h (reincarnation sweep); returns how
  // many were cleared.
  std::size_t ForgetManagersAt(net::HostId h);

  // --- forward pointers (kDynamic; source side of a finished migration) ---
  struct Forward {
    net::HostId to = 0;
    std::uint32_t inc = 0;  // to's incarnation when the migration completed
  };
  const Forward* ForwardOf(PageNum p) const;
  void SetForward(PageNum p, net::HostId to, std::uint32_t inc);
  void ClearForward(PageNum p);
  template <typename Fn>
  void ForEachForward(Fn&& fn) const {
    for (const auto& [p, f] : forwards_) fn(p, f);
  }

  // Crash-with-amnesia: entries return to *default* (unknown) state at the
  // base placement — recovery rebuilds them from survivor claims — and every
  // forward pointer and learned location is forgotten.
  void WipeForCrash();

  PageNum num_pages() const { return num_pages_; }
  bool dynamic() const {
    return mode_ == SystemConfig::DirectoryMode::kDynamic;
  }

 private:
  net::HostId RingManagerOf(PageNum p) const;

  SystemConfig::DirectoryMode mode_;
  net::HostId self_;
  std::uint16_t num_hosts_;
  PageNum num_pages_;
  // Consistent-hash ring: (hash, host), sorted by hash. Empty under kFixed.
  std::vector<std::pair<std::uint64_t, std::uint16_t>> ring_;
  std::map<PageNum, ManagerEntry> entries_;
  std::map<PageNum, Forward> forwards_;
  std::map<PageNum, std::pair<net::HostId, std::uint32_t>> learned_;
};

}  // namespace mermaid::dsm
