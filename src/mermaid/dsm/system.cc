#include "mermaid/dsm/system.h"

#include <algorithm>
#include <cstdio>

#include "mermaid/base/buffer.h"
#include "mermaid/base/check.h"
#include "mermaid/base/wire.h"

namespace mermaid::dsm {

namespace {

std::uint32_t ResolvePageBytes(const SystemConfig& cfg,
                               const std::vector<const arch::ArchProfile*>&
                                   profiles) {
  if (cfg.page_bytes_override != 0) return cfg.page_bytes_override;
  std::uint32_t smallest = profiles.front()->vm_page_size;
  std::uint32_t largest = profiles.front()->vm_page_size;
  for (const auto* p : profiles) {
    smallest = std::min(smallest, p->vm_page_size);
    largest = std::max(largest, p->vm_page_size);
  }
  return cfg.page_policy == PageSizePolicy::kLargest ? largest : smallest;
}

}  // namespace

System::System(sim::Runtime& rt, SystemConfig cfg,
               std::vector<const arch::ArchProfile*> host_profiles)
    : rt_(rt),
      cfg_(cfg),
      tracer_(std::make_unique<trace::Tracer>(cfg.trace_capacity)),
      page_bytes_(ResolvePageBytes(cfg, host_profiles)) {
  MERMAID_CHECK(!host_profiles.empty());
  MERMAID_CHECK(cfg_.region_bytes % page_bytes_ == 0);
  // Dynamic distributed managers move a page's serialization point with its
  // writers; release consistency pins each page's diff home at its base
  // placement. The combination is rejected, not silently ignored.
  MERMAID_CHECK_MSG(
      !(cfg_.release_consistency &&
        cfg_.directory_mode == SystemConfig::DirectoryMode::kDynamic),
      "directory_mode kDynamic is incompatible with release_consistency");
  // Under release consistency the legality rules change (multiple deferred
  // writers, reads through older-but-committed copies): the referee judges
  // with the relaxed rule set.
  referee_.SetRelaxed(cfg_.release_consistency);
  tracer_->Enable(cfg_.trace);
  rt_.SetTracer(tracer_.get());
  network_ = std::make_unique<net::Network>(rt, cfg_.net);
  network_->SetTracer(tracer_.get());
  const auto num_hosts = static_cast<std::uint16_t>(host_profiles.size());
  for (std::uint16_t i = 0; i < num_hosts; ++i) {
    hosts_.push_back(std::make_unique<Host>(
        rt, *network_, cfg_, registry_, i, host_profiles[i], num_hosts,
        page_bytes_, &referee_));
    hosts_.back()->SetTracer(tracer_.get());
    // Per-message-class wire accounting (reqrep.tx_msgs.<class> /
    // reqrep.tx_bytes.<class>) named with the DSM opcode table.
    hosts_.back()->endpoint().SetOpNamer(&OpName);
  }
  allocator_ = std::make_unique<Allocator>(&registry_, cfg_.region_bytes,
                                           page_bytes_);
  alloc_chan_ = sim::Chan<AllocRequest>(rt);
  sync_server_ = std::make_unique<sync::SyncServer>(rt);
  sync_server_->SetReleaseConsistency(cfg_.release_consistency);
  central_server_ = std::make_unique<CentralServer>(rt, host_profiles[0],
                                                    cfg_.region_bytes);
  for (std::uint16_t i = 0; i < num_hosts; ++i) {
    sync_clients_.emplace_back(&hosts_[i]->endpoint(), /*server_host=*/0,
                               i == 0 ? sync_server_.get() : nullptr);
    sync_clients_.back().SetTracer(tracer_.get());
    if (cfg_.release_consistency) {
      // Every sync op is a release point (flush twins, publish notices) and
      // every P/EventWait/Barrier an acquire point (pull notices, drop
      // stale copies).
      Host* h = hosts_[i].get();
      sync_clients_.back().SetRcHooks(
          [h] { return h->RcDrainNotices(); },
          [h](const std::vector<sync::WriteNotice>& ns, bool reset) {
            h->RcApplyNotices(ns, reset);
          });
    }
    central_clients_.emplace_back(&hosts_[i]->endpoint(), /*server_host=*/0,
                                  host_profiles[0],
                                  i == 0 ? central_server_.get() : nullptr);
  }
}

System::~System() = default;

void System::Start() {
  MERMAID_CHECK(!started_);
  started_ = true;

  // Extra handlers must be registered before each endpoint starts.
  sync_server_->Attach(hosts_[0]->endpoint());
  central_server_->Attach(hosts_[0]->endpoint());
  hosts_[0]->endpoint().SetHandler(
      kOpAlloc, [this](net::RequestContext ctx) {
        base::WireReader r(ctx.body());
        AllocRequest req;
        req.type = r.U16();
        req.count = r.U64();
        if (!r.ok()) return;
        req.remote = std::move(ctx);
        alloc_chan_.Send(std::move(req));
      });
  for (auto& host : hosts_) {
    host->endpoint().SetHandler(
        kOpTypeSet, [h = host.get()](net::RequestContext ctx) {
          base::WireReader r(ctx.body());
          const PageNum p = r.U32();
          const arch::TypeId type = r.U16();
          const std::uint32_t alloc_bytes = r.U32();
          if (!r.ok()) return;
          // Dynamic directory: the entry may have migrated away; chase the
          // forward pointer (reply duty moves with the request).
          auto fwd = h->ApplyTypeSet(p, type, alloc_bytes);
          if (fwd.has_value()) {
            base::WireWriter w;
            w.U32(p);
            w.U16(type);
            w.U32(alloc_bytes);
            ctx.Forward(*fwd, std::move(w).Take());
            return;
          }
          ctx.Reply({});
        });
  }
  for (auto& host : hosts_) host->Start();

  rt_.SpawnOn(0, "dsm-alloc-worker", [this] { AllocWorker(); },
              /*daemon=*/true);
}

void System::AllocWorker() {
  Host& h0 = *hosts_[0];
  while (auto req = alloc_chan_.Recv()) {
    auto result = allocator_->Alloc(req->type, req->count);
    MERMAID_CHECK_MSG(result.has_value(),
                      "shared region exhausted (or invalid allocation)");
    // Push authoritative type/extent to each touched page's manager before
    // publishing the address (so grants always carry current extents).
    for (PageNum p : result->touched_pages) {
      net::HostId mgr = h0.BaseManagerOf(p);
      const std::uint32_t alloc_bytes = allocator_->AllocBytesOfPage(p);
      if (mgr == 0) {
        auto fwd = h0.ApplyTypeSet(p, req->type, alloc_bytes);
        if (!fwd.has_value()) continue;
        mgr = *fwd;  // migrated away: push to the live entry remotely
      }
      base::WireWriter w;
      w.U32(p);
      w.U16(req->type);
      w.U32(alloc_bytes);
      auto ack = h0.endpoint().CallWithStatus(mgr, kOpTypeSet,
                                              std::move(w).Take(),
                                              net::MsgKind::kControl,
                                              h0.DsmCallOpts());
      if (ack.status == net::CallStatus::kShutdown) return;
      MERMAID_CHECK_MSG(ack.ok(), "type-set call to page manager timed out");
    }
    if (req->remote.has_value()) {
      base::WireWriter w;
      w.U64(result->addr);
      req->remote->Reply(std::move(w).Take());
    } else {
      req->local_reply.Send(result->addr);
    }
  }
}

GlobalAddr System::Alloc(net::HostId h, arch::TypeId type,
                         std::uint64_t count) {
  MERMAID_CHECK(started_);
  if (h == 0) {
    AllocRequest req;
    req.type = type;
    req.count = count;
    req.local_reply = sim::Chan<GlobalAddr>(rt_);
    auto reply_chan = req.local_reply;
    alloc_chan_.Send(std::move(req));
    auto addr = reply_chan.Recv();
    MERMAID_CHECK(addr.has_value());
    return *addr;
  }
  base::WireWriter w;
  w.U16(type);
  w.U64(count);
  auto reply = hosts_[h]->endpoint().Call(0, kOpAlloc, std::move(w).Take(),
                                          net::MsgKind::kControl,
                                          hosts_[h]->DsmCallOpts());
  MERMAID_CHECK_MSG(reply.has_value(), "allocation call failed");
  base::WireReader r(*reply);
  const GlobalAddr addr = r.U64();
  MERMAID_CHECK(r.ok());
  return addr;
}

void System::SpawnThread(net::HostId h, const std::string& name,
                         std::function<void(Host&)> fn) {
  Host* host = hosts_.at(h).get();
  rt_.SpawnOn(h, name, [host, fn = std::move(fn)] { fn(*host); });
}

Host& System::host(net::HostId h) { return *hosts_.at(h); }

sync::Client& System::sync(net::HostId h) { return sync_clients_.at(h); }

CentralClient& System::central(net::HostId h) {
  return central_clients_.at(h);
}

base::StatsRegistry& System::GatherStats() {
  merged_stats_.Clear();
  for (auto& h : hosts_) {
    merged_stats_.Merge(h->stats());
    merged_stats_.Merge(h->endpoint().stats());
    // The reassembler keeps a private registry; without this merge its
    // frag.* / net.reassembly_expired counters never reached system totals.
    merged_stats_.Merge(h->endpoint().frag_stats());
  }
  merged_stats_.Merge(network_->stats());
  merged_stats_.Merge(sync_server_->stats());
  return merged_stats_;
}

void System::ResetStats() {
  for (auto& h : hosts_) {
    h->stats().Clear();
    h->endpoint().stats().Clear();
    h->endpoint().frag_stats().Clear();
  }
  network_->stats().Clear();
  central_server_->stats().Clear();
  sync_server_->stats().Clear();
  merged_stats_.Clear();
  tracer_->Clear();
  // The bulk-copy budget counters are process-global (they audit every
  // Buffer copy, not just this system's); reset them too or a second run's
  // copy accounting starts inflated.
  base::BulkCopyReset();
}

void System::CrashHostAmnesia(net::HostId h) {
  MERMAID_CHECK(started_);
  MERMAID_CHECK_MSG(cfg_.crash_recovery,
                    "CrashHostAmnesia requires config().crash_recovery");
  // Host 0 carries the singleton services (allocator worker, sync server,
  // central server); the failure model keeps it up (see DESIGN.md).
  MERMAID_CHECK_MSG(h != 0, "host 0 (service host) is modeled as reliable");
  // Order matters: the referee must forget the copies before the wipe
  // re-seeds nothing, and the network must drop in-flight packets before
  // the endpoint reincarnates (so no old-life delivery races the reset).
  referee_.OnHostCrash(h);
  network_->CrashHost(h);
  hosts_.at(h)->CrashWipe();
  sync_server_->BreakHost(h);
}

void System::RestartHostRecover(net::HostId h) {
  network_->RestartHost(h);
  Host& host = *hosts_.at(h);
  // Replay the durable allocation metadata into the restarted manager so
  // grants carry correct type/extent information again.
  allocator_->ForEachTypedPage(
      [&](PageNum p, arch::TypeId type, std::uint32_t alloc_bytes) {
        if (host.BaseManagerOf(p) == h) host.ApplyTypeSet(p, type, alloc_bytes);
      });
  host.RunManagerRecovery();
}

void System::CrashAndRestartHost(net::HostId h, SimDuration down_for) {
  CrashHostAmnesia(h);
  // Non-daemon: the engine must not declare the run finished while the
  // restart (and the recovery rebuild) is still pending.
  rt_.SpawnOn(h, "dsm-recovery-" + std::to_string(h), [this, h, down_for] {
    rt_.Delay(down_for);
    RestartHostRecover(h);
  });
}

System::QuiescenceReport System::CheckQuiescent() {
  QuiescenceReport r;
  for (auto& h : hosts_) h->CountManagerLoad(&r.busy_entries, &r.pending_transfers);
  return r;
}

std::string System::ReportStats() {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-6s %-10s %8s %8s %9s %10s %9s %6s\n",
                "host", "arch", "rd-flt", "wr-flt", "pages-in", "KB-in",
                "served", "conv");
  out += line;
  for (auto& h : hosts_) {
    auto& s = h->stats();
    std::snprintf(
        line, sizeof(line), "%-6u %-10s %8lld %8lld %9lld %10lld %9lld %6lld\n",
        h->id(), h->profile().name.c_str(),
        static_cast<long long>(s.Count("dsm.read_faults")),
        static_cast<long long>(s.Count("dsm.write_faults")),
        static_cast<long long>(s.Count("dsm.pages_in")),
        static_cast<long long>(s.Count("dsm.bytes_in") / 1024),
        static_cast<long long>(s.Count("dsm.pages_served")),
        static_cast<long long>(s.Count("dsm.conversions")));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "network: %lld packets, %lld KB, %lld dropped\n",
                static_cast<long long>(
                    network_->stats().Count("net.packets_sent")),
                static_cast<long long>(
                    network_->stats().Count("net.bytes_sent") / 1024),
                static_cast<long long>(
                    network_->stats().Count("net.packets_dropped")));
  out += line;
  std::int64_t retransmits = 0, call_timeouts = 0, backoff_ms = 0;
  std::int64_t revoked = 0;
  for (auto& h : hosts_) {
    auto& es = h->endpoint().stats();
    retransmits += es.Count("reqrep.retransmits");
    call_timeouts += es.Count("reqrep.call_timeouts");
    backoff_ms += es.Count("reqrep.backoff_total_ms");
    revoked += h->stats().Count("dsm.grants_revoked");
  }
  std::snprintf(line, sizeof(line),
                "reqrep: %lld retransmits, %lld call timeouts, "
                "%lld ms backoff, %lld grants revoked\n",
                static_cast<long long>(retransmits),
                static_cast<long long>(call_timeouts),
                static_cast<long long>(backoff_ms),
                static_cast<long long>(revoked));
  out += line;
  std::int64_t cc_hits = 0, cc_misses = 0, cc_evictions = 0;
  for (auto& h : hosts_) {
    auto& s = h->stats();
    cc_hits += s.Count("dsm.convert_cache_hits");
    cc_misses += s.Count("dsm.convert_cache_misses");
    cc_evictions += s.Count("dsm.convert_cache_evictions");
  }
  std::snprintf(line, sizeof(line),
                "convert-cache: %lld hits, %lld misses, %lld evictions\n",
                static_cast<long long>(cc_hits),
                static_cast<long long>(cc_misses),
                static_cast<long long>(cc_evictions));
  out += line;
  std::int64_t frag_delivered = 0, frag_expired = 0;
  for (auto& h : hosts_) {
    auto& fs = h->endpoint().frag_stats();
    frag_delivered += fs.Count("frag.messages_delivered");
    frag_expired += fs.Count("net.reassembly_expired");
  }
  std::snprintf(line, sizeof(line),
                "frag: %lld messages delivered, %lld partials expired\n",
                static_cast<long long>(frag_delivered),
                static_cast<long long>(frag_expired));
  out += line;
  std::int64_t crashes = 0, fenced = 0, owner_lost = 0, pages_lost = 0;
  std::int64_t zombie_calls = 0, broken_locks = 0;
  for (auto& h : hosts_) {
    auto& s = h->stats();
    crashes += s.Count("dsm.crashes");
    fenced += s.Count("dsm.fenced_transfers");
    owner_lost += s.Count("dsm.owner_lost_reports");
    pages_lost += s.Count("dsm.recovery_pages_lost");
    zombie_calls += h->endpoint().stats().Count("reqrep.fenced_zombie_calls");
  }
  broken_locks += sync_server_->stats().Count("sync.broken_locks");
  if (crashes != 0) {
    std::snprintf(line, sizeof(line),
                  "recovery: %lld crashes, %lld owner-lost reports, "
                  "%lld pages lost, %lld fenced transfers, "
                  "%lld zombie calls, %lld broken locks\n",
                  static_cast<long long>(crashes),
                  static_cast<long long>(owner_lost),
                  static_cast<long long>(pages_lost),
                  static_cast<long long>(fenced),
                  static_cast<long long>(zombie_calls),
                  static_cast<long long>(broken_locks));
    out += line;
  }
  // Per-message-class wire traffic (request/notify/reply payload bytes,
  // counted at the sending endpoint). Classes with no traffic are omitted.
  for (std::uint8_t op = kOpAlloc; op <= kOpMax; ++op) {
    const std::string cls = OpName(op);
    std::int64_t msgs = 0, bytes = 0;
    for (auto& h : hosts_) {
      auto& es = h->endpoint().stats();
      msgs += es.Count("reqrep.tx_msgs." + cls);
      bytes += es.Count("reqrep.tx_bytes." + cls);
    }
    if (msgs == 0) continue;
    std::snprintf(line, sizeof(line), "wire %-16s %8lld msgs %12lld bytes\n",
                  cls.c_str(), static_cast<long long>(msgs),
                  static_cast<long long>(bytes));
    out += line;
  }
  // Latency histograms, merged across hosts (per-host endpoint + DSM
  // registries). Quantiles come from the log-scaled buckets.
  static constexpr const char* kHistNames[] = {
      "dsm.fault_service_ms", "reqrep.rtt_ms", "dsm.convert_time_ms",
      "dsm.invalidate_fanout", "dsm.fault_hops", "dsm.vm_fault_hops",
      "dsm.vm_fault_rtts", "dsm.recovery_ms"};
  for (const char* name : kHistNames) {
    base::Histogram merged;
    for (auto& h : hosts_) {
      merged.Merge(h->stats().HistCopy(name));
      merged.Merge(h->endpoint().stats().HistCopy(name));
    }
    if (merged.count() == 0) continue;
    std::snprintf(line, sizeof(line),
                  "hist %-22s n=%lld mean=%.2f p50=%.2f p90=%.2f "
                  "p99=%.2f max=%.2f\n",
                  name, static_cast<long long>(merged.count()), merged.mean(),
                  merged.Percentile(50), merged.Percentile(90),
                  merged.Percentile(99), merged.max());
    out += line;
  }
  if (tracer_->enabled()) {
    std::snprintf(line, sizeof(line),
                  "trace: %lld events recorded, %lld evicted (ring %zu)\n",
                  static_cast<long long>(tracer_->total_recorded()),
                  static_cast<long long>(tracer_->dropped()),
                  tracer_->capacity());
    out += line;
  }
  // Scheduler/allocator internals (switch counts, timer-wheel and slab
  // stats). Deliberately last and never part of GatherStats: the report is
  // allowed to vary with scheduler knobs, the protocol stats are not.
  out += rt_.SchedulerReport();
  return out;
}

}  // namespace mermaid::dsm
