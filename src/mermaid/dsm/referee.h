// Coherence referee: an out-of-band invariant checker.
//
// The referee sees every page-state transition of every host through direct
// in-process calls (no protocol messages) and asserts the MRSW invariants Li's
// algorithm guarantees:
//   - at most one host holds write access to a page at any instant;
//   - a host is granted write access only when no other host holds any copy;
//   - every valid copy carries the current committed version of the page.
// Tests may additionally route every typed access through CheckAccess.
//
// The referee is a verification aid, not part of the DSM system: the
// protocol never reads from it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "mermaid/dsm/types.h"
#include "mermaid/net/network.h"

namespace mermaid::dsm {

class CoherenceReferee {
 public:
  // Switches the referee to release-consistency legality rules
  // (SystemConfig::release_consistency): reads are legal through any valid
  // copy at or below the committed version (staleness is resolved lazily at
  // acquire), and writes are legal on any host holding a live twin
  // (registered via OnRcTwin) — writes between acquire and release are
  // locally visible and remotely deferred, so the sole-writer and
  // exact-version checks of the SC mode do not apply. Install, crash, and
  // reinit invariants are unchanged.
  void SetRelaxed(bool on);
  // Host `h` twinned `page` for deferred writes (h must hold a valid copy).
  void OnRcTwin(net::HostId h, PageNum page);
  // The home applied a flushed diff: the committed version advances.
  void OnRcFlush(net::HostId h, PageNum page, std::uint64_t version);
  // Host `h` released its twin on `page` (flush complete); if `kept_copy`
  // it retains a read copy, otherwise it no longer holds the page.
  void OnRcRelease(net::HostId h, PageNum page, bool kept_copy);

  // Host `h` installed (or refreshed) a copy at `version` with `access`.
  void OnInstall(net::HostId h, PageNum page, std::uint64_t version,
                 Access access);
  // Host `h` was granted write access (version becomes `version`).
  void OnWriteGrant(net::HostId h, PageNum page, std::uint64_t version);
  // Host `h` downgraded its copy to read-only.
  void OnDowngrade(net::HostId h, PageNum page);
  // Host `h` dropped its copy.
  void OnInvalidate(net::HostId h, PageNum page);
  // Host `h` crashed with amnesia: every copy (and write grant) it held
  // ceases to exist. MRSW invariants must keep holding for the survivors.
  void OnHostCrash(net::HostId h);
  // A recovering manager re-initialized a lost page to zeroes: `h` becomes
  // the sole holder at `version` (the reinit-zero lost-page policy).
  void OnReinit(net::HostId h, PageNum page, std::uint64_t version);
  // Dynamic directory: management of `page` migrated `from` -> `to`.
  // Legality: management may only move to a host holding a valid copy of the
  // page (the migration target is the page's last committed writer, which by
  // MRSW still holds the page), and never to the host that already has it.
  void OnMgrMigrate(net::HostId from, net::HostId to, PageNum page);
  // A typed access on host `h` with this access level and local version.
  void CheckAccess(net::HostId h, PageNum page, std::uint64_t local_version,
                   Access access) const;

 private:
  struct PageState {
    std::uint64_t version = 0;
    std::set<net::HostId> holders;           // hosts with a valid copy
    std::optional<net::HostId> writer;       // host with write access
    // Every holder died in a crash. The next install re-establishes the
    // lineage at whatever version the surviving (possibly retained, hence
    // older) image carries, so the version-monotonicity check is suspended
    // for exactly that install.
    bool orphaned = false;
    // Relaxed mode: hosts with a live twin (write-legal until release).
    std::set<net::HostId> rc_writers;
  };

  mutable std::mutex mu_;
  bool relaxed_ = false;
  std::map<PageNum, PageState> pages_;
};

}  // namespace mermaid::dsm
