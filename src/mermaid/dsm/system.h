// Mermaid system assembly: hosts + network + allocator + synchronization.
//
// Mirrors Figure 1 of the paper: thread management (SpawnThread), shared
// memory management (the Host engines + typed allocator), and remote
// operations (the request-response endpoints), over a simulated
// heterogeneous host base.
//
// Typical use:
//   sim::Engine eng;
//   dsm::SystemConfig cfg;
//   dsm::System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
//   arch::TypeId rec = sys.registry().RegisterRecord(...);  // before Start
//   sys.Start();
//   auto addr = ... (allocate from a spawned thread);
//   sys.SpawnThread(0, "master", [&](dsm::Host& h) { ... });
//   eng.Run();
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/dsm/allocator.h"
#include "mermaid/dsm/central.h"
#include "mermaid/dsm/host.h"
#include "mermaid/dsm/referee.h"
#include "mermaid/dsm/types.h"
#include "mermaid/net/network.h"
#include "mermaid/sim/runtime.h"
#include "mermaid/sync/sync.h"
#include "mermaid/trace/trace.h"

namespace mermaid::dsm {

class System {
 public:
  System(sim::Runtime& rt, SystemConfig cfg,
         std::vector<const arch::ArchProfile*> host_profiles);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Starts endpoints, the allocation worker, and the sync server. Register
  // user-defined record types with registry() before calling this.
  void Start();

  // Allocates `count` elements of `type` in the shared region, invoked from
  // a process on host `h` (blocking; aborts if the region is exhausted —
  // sizing the region is a configuration decision).
  GlobalAddr Alloc(net::HostId h, arch::TypeId type, std::uint64_t count);

  // Spawns an application thread on host `h` ("threads may be created on
  // remote hosts directly").
  void SpawnThread(net::HostId h, const std::string& name,
                   std::function<void(Host&)> fn);

  Host& host(net::HostId h);
  std::uint16_t num_hosts() const {
    return static_cast<std::uint16_t>(hosts_.size());
  }
  std::uint32_t page_bytes() const { return page_bytes_; }
  arch::TypeRegistry& registry() { return registry_; }
  net::Network& network() { return *network_; }
  sync::Client& sync(net::HostId h);
  // The alternative central-server shared-data backend (§2.1's "several DSM
  // packages on the same system"); its region is separate from the
  // page-based one. Server lives on host 0.
  CentralClient& central(net::HostId h);
  CentralServer& central_server() { return *central_server_; }
  CoherenceReferee& referee() { return referee_; }
  const SystemConfig& config() const { return cfg_; }

  // Merged statistics across hosts, endpoints (including their reassembly
  // registries), and the network.
  base::StatsRegistry& GatherStats();

  // Drops every per-component registry and the process-global bulk-copy
  // counters, so a second run in the same process reports run-local numbers
  // instead of cumulative ones. Call between back-to-back runs.
  void ResetStats();

  // The system-wide protocol tracer (enabled iff config().trace). Always
  // present so callers can Snapshot() unconditionally; empty when disabled.
  trace::Tracer& tracer() { return *tracer_; }

  // Crash-stop with amnesia: host `h` loses every page copy, hint, manager
  // entry, and in-flight operation; its incarnation is bumped so zombie
  // replies from its previous life are fenced. The referee forgets its
  // copies and the sync server breaks any locks it held. Requires
  // config().crash_recovery. The host stays down (messages dropped) until
  // RestartHostRecover.
  void CrashHostAmnesia(net::HostId h);
  // Brings a crashed host back: reconnects the network, replays the
  // allocator's page type/extent metadata into the restarted manager (the
  // one piece of state modeled as durable — see DESIGN.md), and runs
  // manager-state reconstruction (blocking until the rebuild finishes).
  void RestartHostRecover(net::HostId h);
  // Convenience: CrashHostAmnesia now, then a spawned process delays
  // `down_for` and runs RestartHostRecover.
  void CrashAndRestartHost(net::HostId h, SimDuration down_for);

  // Protocol quiescence snapshot: once all application threads are done and
  // confirms have drained, no manager entry should remain busy and no
  // transfer queued. Chaos tests assert both are zero.
  struct QuiescenceReport {
    std::uint64_t busy_entries = 0;
    std::uint64_t pending_transfers = 0;
  };
  QuiescenceReport CheckQuiescent();

  // Multi-line human-readable per-host breakdown (faults, transfers,
  // conversions) plus network totals.
  std::string ReportStats();

 private:
  struct AllocRequest {
    arch::TypeId type = 0;
    std::uint64_t count = 0;
    std::optional<net::RequestContext> remote;
    sim::Chan<GlobalAddr> local_reply;
  };

  void AllocWorker();

  sim::Runtime& rt_;
  SystemConfig cfg_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::uint32_t page_bytes_;
  arch::TypeRegistry registry_;
  CoherenceReferee referee_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unique_ptr<Allocator> allocator_;  // host 0's bookkeeping
  sim::Chan<AllocRequest> alloc_chan_;
  std::unique_ptr<sync::SyncServer> sync_server_;  // lives on host 0
  std::vector<sync::Client> sync_clients_;
  std::unique_ptr<CentralServer> central_server_;  // lives on host 0
  std::vector<CentralClient> central_clients_;
  base::StatsRegistry merged_stats_;
  bool started_ = false;
};

}  // namespace mermaid::dsm
