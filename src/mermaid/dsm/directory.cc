#include "mermaid/dsm/directory.h"

#include <algorithm>

#include "mermaid/base/check.h"

namespace mermaid::dsm {
namespace {

// splitmix64 finalizer: cheap, well-distributed, and a pure function — every
// host derives the identical ring from (num_hosts, shards_per_host) alone.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Decorrelate page keys from virtual-node keys.
std::uint64_t PageKey(PageNum p) {
  return Mix64(0xd1b54a32d192ed03ull ^ static_cast<std::uint64_t>(p));
}

}  // namespace

Directory::Directory(const SystemConfig& cfg, net::HostId self,
                     std::uint16_t num_hosts, PageNum num_pages)
    : mode_(cfg.directory_mode),
      self_(self),
      num_hosts_(num_hosts),
      num_pages_(num_pages) {
  MERMAID_CHECK(num_hosts > 0);
  if (mode_ != SystemConfig::DirectoryMode::kFixed) {
    const std::uint32_t shards = std::max<std::uint32_t>(
        1, cfg.directory_shards_per_host);
    ring_.reserve(static_cast<std::size_t>(num_hosts) * shards);
    for (std::uint16_t h = 0; h < num_hosts; ++h) {
      for (std::uint32_t v = 0; v < shards; ++v) {
        const std::uint64_t key =
            Mix64((static_cast<std::uint64_t>(h) << 32) | v);
        ring_.emplace_back(key, h);
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }
  // Initially the base manager owns every page it manages, holding the
  // zero-filled read copy (the matching LocalPageEntry seeding lives in the
  // Host constructor).
  for (PageNum p = 0; p < num_pages; ++p) {
    if (BaseManagerOf(p) == self_) {
      ManagerEntry& m = entries_[p];
      m.owner = self_;
      m.copyset.insert(self_);
    }
  }
}

net::HostId Directory::BaseManagerOf(PageNum p) const {
  if (mode_ == SystemConfig::DirectoryMode::kFixed) {
    return static_cast<net::HostId>(p % num_hosts_);
  }
  return RingManagerOf(p);
}

net::HostId Directory::RingManagerOf(PageNum p) const {
  const std::uint64_t key = PageKey(p);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), key,
      [](std::uint64_t k, const std::pair<std::uint64_t, std::uint16_t>& n) {
        return k < n.first;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return static_cast<net::HostId>(it->second);
}

ManagerEntry& Directory::Manager(PageNum p) {
  auto it = entries_.find(p);
  MERMAID_CHECK(it != entries_.end());
  return it->second;
}

ManagerEntry* Directory::FindManager(PageNum p) {
  auto it = entries_.find(p);
  return it == entries_.end() ? nullptr : &it->second;
}

ManagerEntry& Directory::AdoptManager(PageNum p) {
  MERMAID_CHECK(entries_.count(p) == 0);
  return entries_[p];
}

void Directory::EraseManager(PageNum p) { entries_.erase(p); }

std::vector<PageNum> Directory::ManagedPages() const {
  std::vector<PageNum> out;
  out.reserve(entries_.size());
  for (const auto& [p, m] : entries_) out.push_back(p);
  return out;
}

net::HostId Directory::ManagerTarget(PageNum p) const {
  auto it = learned_.find(p);
  if (it != learned_.end()) return it->second.first;
  return BaseManagerOf(p);
}

void Directory::LearnManager(PageNum p, net::HostId mgr, std::uint32_t inc) {
  if (mgr == self_ || BaseManagerOf(p) == mgr) {
    learned_.erase(p);  // the base placement needs no note
    return;
  }
  learned_[p] = {mgr, inc};
}

void Directory::ForgetManager(PageNum p) { learned_.erase(p); }

std::size_t Directory::ForgetManagersAt(net::HostId h) {
  std::size_t cleared = 0;
  for (auto it = learned_.begin(); it != learned_.end();) {
    if (it->second.first == h) {
      it = learned_.erase(it);
      ++cleared;
    } else {
      ++it;
    }
  }
  return cleared;
}

const Directory::Forward* Directory::ForwardOf(PageNum p) const {
  auto it = forwards_.find(p);
  return it == forwards_.end() ? nullptr : &it->second;
}

void Directory::SetForward(PageNum p, net::HostId to, std::uint32_t inc) {
  forwards_[p] = Forward{to, inc};
}

void Directory::ClearForward(PageNum p) { forwards_.erase(p); }

void Directory::WipeForCrash() {
  entries_.clear();
  for (PageNum p = 0; p < num_pages_; ++p) {
    if (BaseManagerOf(p) == self_) entries_[p];  // default (unknown) entry
  }
  forwards_.clear();
  learned_.clear();
}

}  // namespace mermaid::dsm
