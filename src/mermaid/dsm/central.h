// Central-server shared data: the second DSM algorithm.
//
// §2.1: "several DSM packages can be provided to the applications on the
// same system. Our analysis of the performance of applications using
// different shared data algorithms revealed that the correct choice of
// algorithm was often dictated by the memory access behavior of the
// application [16]." This is the classic central-server algorithm from
// Stumm & Zhou's survey: all shared data lives on one server host and every
// read or write is a request-response operation — no replication, no
// migration, no page faults, and no thrashing, but every access pays a
// network round trip.
//
// Heterogeneity: data is stored in the *server's* representation; clients
// encode/decode scalars with the server's architecture profile on each
// access, so no page-level conversion step exists at all.
//
// bench_algo_crossover sweeps access locality to show where each algorithm
// wins (page-based under locality; central-server under fine-grained
// scattered sharing).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/scalar.h"
#include "mermaid/base/check.h"
#include "mermaid/base/stats.h"
#include "mermaid/dsm/types.h"
#include "mermaid/net/reqrep.h"

namespace mermaid::dsm {

// Past kOpMax: the central backend shares each host's endpoint with the DSM
// opcode table and must never collide with it.
inline constexpr std::uint8_t kOpCentralRead = kOpMax + 1;
inline constexpr std::uint8_t kOpCentralWrite = kOpMax + 2;

// Server side; lives on one host, attaches to that host's endpoint before
// it starts. Thread-safe for the real-time runtime.
class CentralServer {
 public:
  CentralServer(sim::Runtime& rt, const arch::ArchProfile* profile,
                std::uint64_t region_bytes);

  void Attach(net::Endpoint& ep);

  const arch::ArchProfile& profile() const { return *profile_; }
  base::StatsRegistry& stats() { return stats_; }

  // Direct access for threads on the server host (no network hop).
  void ReadBytes(GlobalAddr addr, std::span<std::uint8_t> out);
  void WriteBytes(GlobalAddr addr, std::span<const std::uint8_t> data);

 private:
  void HandleRead(net::RequestContext ctx);
  void HandleWrite(net::RequestContext ctx);

  sim::Runtime& rt_;
  const arch::ArchProfile* profile_;
  std::mutex mu_;
  std::vector<std::uint8_t> mem_;  // in the server's representation
  base::StatsRegistry stats_;
};

// Client handle bound to one host's endpoint. Typed accessors mirror
// dsm::Host's so workloads can be written against either backend.
class CentralClient {
 public:
  CentralClient() = default;
  // `local` non-null when this host runs the server.
  CentralClient(net::Endpoint* ep, net::HostId server_host,
                const arch::ArchProfile* server_profile,
                CentralServer* local);

  template <typename T>
  T Read(GlobalAddr addr) {
    std::uint8_t buf[sizeof(T)];
    ReadRaw(addr, std::span<std::uint8_t>(buf, sizeof(T)));
    return arch::LoadScalar<T>(*server_profile_, buf);
  }

  template <typename T>
  void Write(GlobalAddr addr, T value) {
    std::uint8_t buf[sizeof(T)];
    arch::StoreScalar<T>(*server_profile_, buf, value);
    WriteRaw(addr, std::span<const std::uint8_t>(buf, sizeof(T)));
  }

 private:
  void ReadRaw(GlobalAddr addr, std::span<std::uint8_t> out);
  void WriteRaw(GlobalAddr addr, std::span<const std::uint8_t> data);

  net::Endpoint* ep_ = nullptr;
  net::HostId server_host_ = 0;
  const arch::ArchProfile* server_profile_ = nullptr;
  CentralServer* local_ = nullptr;
};

}  // namespace mermaid::dsm
