// Typed shared-memory allocator bookkeeping (§2.3).
//
// "A special memory allocating subroutine similar to malloc ... assigns the
// allocated memory to pages in such a way that a page contains data of only
// one type." This class is the pure bookkeeping: it lives on the
// coordinator host (host 0) and is driven by the allocation worker process;
// distribution of type tags to page managers happens in the host layer.
//
// Placement policy: each type bump-allocates within its current page run and
// starts a fresh page when an allocation does not fit — so a page only ever
// holds one type, and per-page allocated extents are tracked for the
// partial-transfer optimization. Allocations larger than a page span whole
// consecutive pages. Elements never straddle a page boundary unless the
// element itself is larger than a page (in which case conversion happens
// run-wise on the owning host — rejected here to keep the paper's
// one-to-one page mapping guarantee).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mermaid/arch/type_registry.h"
#include "mermaid/dsm/types.h"

namespace mermaid::dsm {

class Allocator {
 public:
  Allocator(const arch::TypeRegistry* registry, std::uint64_t region_bytes,
            std::uint32_t page_bytes);

  struct Result {
    GlobalAddr addr = 0;
    // Pages whose (type, alloc_bytes) changed and must be re-registered
    // with their managers.
    std::vector<PageNum> touched_pages;
  };

  // Allocates `count` elements of `type`; nullopt when the region is full
  // or the element size exceeds the page size.
  std::optional<Result> Alloc(arch::TypeId type, std::uint64_t count);

  arch::TypeId TypeOfPage(PageNum p) const;
  std::uint32_t AllocBytesOfPage(PageNum p) const;
  std::uint64_t bytes_used() const { return next_free_page_ * page_bytes_; }

  // Crash-recovery metadata replay: invokes fn(page, type, alloc_bytes) for
  // every page the allocator has assigned a type. Allocation bookkeeping is
  // modeled as durable (see DESIGN.md, "Failure model").
  template <typename Fn>
  void ForEachTypedPage(Fn&& fn) const {
    for (const auto& [p, info] : pages_) fn(p, info.type, info.alloc_bytes);
  }

 private:
  struct PageInfo {
    arch::TypeId type = 0;
    std::uint32_t alloc_bytes = 0;
  };

  struct TypeRun {
    PageNum first_page = 0;
    PageNum page_count = 0;
    std::uint64_t used_in_run = 0;  // bytes bump-allocated in the run
  };

  const arch::TypeRegistry* registry_;
  std::uint64_t region_bytes_;
  std::uint32_t page_bytes_;
  PageNum next_free_page_ = 0;
  std::map<arch::TypeId, TypeRun> open_runs_;
  std::map<PageNum, PageInfo> pages_;
};

}  // namespace mermaid::dsm
