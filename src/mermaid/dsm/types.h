// Shared DSM types, configuration, and protocol opcodes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mermaid/base/time.h"
#include "mermaid/net/network.h"
#include "mermaid/net/reqrep.h"

namespace mermaid::dsm {

// Byte offset into the shared region. All hosts map the region at the same
// base (the paper's implementation choice), so a GlobalAddr is directly a
// "pointer" value; the pointer-relocation machinery still exists for hosts
// that would map it elsewhere.
using GlobalAddr = std::uint64_t;

// Index of a DSM page (GlobalAddr / dsm_page_size).
using PageNum = std::uint32_t;

enum class Access : std::uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

// §2.4: the two extreme page-size algorithms.
enum class PageSizePolicy : std::uint8_t {
  kLargest,   // DSM page = max VM page size over all hosts
  kSmallest,  // DSM page = min VM page size over all hosts
};

struct SystemConfig {
  std::uint64_t region_bytes = 8u << 20;
  PageSizePolicy page_policy = PageSizePolicy::kLargest;
  // Nonzero forces the DSM page size instead of deriving it from the host
  // set's VM page sizes (e.g. an 8 KB DSM page on an all-Firefly cluster,
  // as in the paper's Table 4 whose testbed always included a Sun).
  std::uint32_t page_bytes_override = 0;
  net::Network::Config net;

  // Request-response tuning for DSM traffic. Lossless runs never time out;
  // loss-injection tests shrink the timeout and raise attempts.
  SimDuration call_timeout = Seconds(10);
  int call_max_attempts = 30;

  // Confirm-loss recovery: each manager periodically probes the requester of
  // any transfer that has been awaiting confirmation for too long.
  SimDuration janitor_period = Milliseconds(500);
  SimDuration confirm_probe_after = Seconds(1);

  // Grant-lease recovery: a busy manager entry whose requester is
  // unreachable (no confirm, no probe answer) is revoked after this long and
  // its pending queue re-drained. Safety requires the lease to exceed both
  // the longest single fault-path Call (timeout schedule x attempts — after
  // that the requester's reply channel is closed, so a replayed grant can
  // never be consumed) and the longest network partition a live requester
  // may sit behind mid-transfer.
  SimDuration grant_lease = Seconds(30);

  // Fault-path retry policy: a manager/owner Call that exhausts its
  // transport retries is retried this many whole rounds (with exponential
  // backoff, capped) before the host aborts loudly.
  int fault_retry_limit = 8;
  SimDuration fault_retry_backoff = Milliseconds(50);

  // Ablation switches (all default to the paper's system).
  bool convert_enabled = true;          // heterogeneous data conversion
  bool partial_page_transfer = true;    // move only the allocated extent
  bool prefer_same_type_source = false; // serve read faults from a same-arch
                                        // copyset member when possible
  // Owner-side conversion cache: converted outgoing page images are kept
  // keyed by (page, version, representation class) and reused for repeat
  // read faults on unmodified pages, skipping both the codec work and the
  // modeled conversion delay. Invalidation is by construction: a write
  // bumps the version, so stale images can never be served.
  bool convert_cache = true;
  std::size_t convert_cache_capacity = 64;  // cached images per host (LRU)
  // Check every typed access against the coherence referee (tests).
  bool referee_check_access = false;

  // --- protocol fast paths (all default OFF so the paper-faithful message
  // pattern — and Table 2/3/4 calibration — is bit-identical unless opted
  // in; see DESIGN.md "Protocol fast paths") ------------------------------
  //
  // Probable-owner hints: requesters cache the last known owner per page
  // (learned from fetch replies and invalidation traffic) and send read
  // fetches directly to it, turning the common 3-hop fault into 2 hops. A
  // stale hint is forwarded through the manager exactly once; in-flight
  // hinted replies that cross an invalidation are fenced and discarded.
  bool probable_owner = false;
  // Batched group fetch: under the smallest-page-size algorithm a VM fault
  // spanning N DSM pages issues one group-fetch request per remote manager
  // (and per distinct owner) instead of N per-page round trips; replies
  // carry a multi-page BufferChain. Read faults only.
  bool group_fetch = false;
  // Coalesced invalidation: a write VM fault spanning N DSM pages defers
  // each page's invalidation and sends one batched invalidation message per
  // copyset host (single aggregated ack) before any page becomes writable.
  bool coalesced_invalidation = false;

  // Structured protocol tracing (trace::Tracer). Off by default: with trace
  // false every hook reduces to a flag test, modeled times are identical,
  // and no memory is spent beyond the (empty) ring. The capacity knob
  // bounds the ring buffer; oldest events are evicted first.
  bool trace = false;
  std::size_t trace_capacity = 1 << 16;

  // --- crash-stop recovery (default OFF: knobs-off wire format and Table
  // 2/3/4 calibration are bit-identical; see DESIGN.md "Failure model") ---
  //
  // When on: every reqrep request/reply carries the sender's incarnation
  // number (+4 wire bytes each way) so zombie traffic from a previous life
  // is fenced; System::CrashAndRestartHost wipes the crashed host's page
  // table, hints, conversion cache, and manager maps (crash-with-amnesia)
  // and the restarted manager rebuilds owner/copyset state from live hosts'
  // claims via kOpRecoveryQuery.
  bool crash_recovery = false;
  // What a recovering manager does when no live host holds a copy of one of
  // its pages (the sole copy died with the crash): kFatal aborts loudly —
  // data loss must never be silent — while kReinitZero re-initializes the
  // page to zeroes at version 0 and counts it under dsm.recovery_pages_lost.
  enum class LostPagePolicy : std::uint8_t { kFatal = 0, kReinitZero = 1 };
  LostPagePolicy lost_page_policy = LostPagePolicy::kFatal;

  // --- release consistency (default OFF: the paper's sequentially-
  // consistent write-invalidate protocol, Tables 2–4 bit-identical; see
  // DESIGN.md "Release consistency") --------------------------------------
  //
  // When on, write faults no longer invalidate the copyset: the faulting
  // host makes a local *twin* of the page and keeps writing. Every sync
  // operation is a release point — the host diffs each twin against its
  // working copy, ships the byte ranges to the page's home (its fixed
  // manager, which under RC is always the owner) as one kOpDiffFlush, and
  // publishes a write notice piggybacked on the kOpSync request. Acquiring
  // sync operations (P / EventWait / Barrier) return the notices recorded
  // since the client last looked, and the acquirer lazily invalidates its
  // stale read copies. Writes between acquire and release are locally
  // visible and remotely deferred.
  bool release_consistency = false;
  // Twins held concurrently per host; a write fault past the cap flushes
  // every existing twin first (an early release of the dirty data only —
  // no sync notice is published until the next sync op).
  std::size_t rc_max_twins = 128;
  // When a twin's dirty bytes reach this percentage of the transferred
  // extent, the flush sends one whole-extent range instead of per-run
  // diffs (the range-header overhead would exceed the savings).
  int rc_diff_crossover_pct = 50;

  // --- directory scale-out (default kFixed: the paper's p % N manager
  // mapping, Tables 2–4 bit-identical; see DESIGN.md "Directory
  // scale-out") -----------------------------------------------------------
  //
  // kFixed:   page p is managed by host p mod N (the paper's scheme).
  // kSharded: pages are placed on a consistent-hash ring of
  //           N x directory_shards_per_host virtual manager shards, so
  //           stride-aliased page sets no longer melt one host and a crash
  //           loses only that host's shards.
  // kDynamic: sharded base map plus Li-style dynamic distributed managers —
  //           management migrates toward the last (or dominant) writer via
  //           a kOpMgrMigrate handshake; old managers keep a forward pointer
  //           and requesters learn migrated locations from grant replies.
  //           Incompatible with release_consistency (RC homes are fixed).
  enum class DirectoryMode : std::uint8_t {
    kFixed = 0,
    kSharded = 1,
    kDynamic = 2,
  };
  DirectoryMode directory_mode = DirectoryMode::kFixed;
  // Virtual shards per host on the consistent-hash ring (kSharded/kDynamic).
  std::uint32_t directory_shards_per_host = 8;
  // kDynamic only: with hot_page_migration off, management follows every
  // remote writer (pure Li dynamic managers). With it on, a per-entry
  // Boyer–Moore majority vote over committing writers must reach
  // hot_page_threshold before the page's management migrates — only
  // genuinely contended pages with a dominant writer move.
  bool hot_page_migration = false;
  int hot_page_threshold = 16;
  // Bound on the manager-forwarding chain a single request may ride
  // (kDynamic): past it the forwarder answers with a redirect instead, and
  // the requester re-routes from its learned location.
  int directory_forward_limit = 8;

  // --- scheduler (default OFF: legacy engine, whose event order defines
  // every table) ---
  //
  // System never reads this itself; drivers that own the Engine construct
  // it from here (`sim::Engine eng(cfg.engine);`) so one config struct
  // carries the whole experiment, scheduler included. Any combination is
  // proven bit-identical to legacy by the determinism regression suite.
  sim::EngineOptions engine;
};

// Protocol opcodes (one Endpoint per host, shared with the sync module).
inline constexpr std::uint8_t kOpAlloc = 1;       // any -> host 0
inline constexpr std::uint8_t kOpTypeSet = 2;     // host 0 -> page manager
inline constexpr std::uint8_t kOpReadReq = 3;     // requester -> manager -> owner
inline constexpr std::uint8_t kOpWriteReq = 4;    // requester -> manager -> owner
inline constexpr std::uint8_t kOpInvalidate = 5;  // writer -> copyset member
inline constexpr std::uint8_t kOpConfirm = 6;     // requester -> manager (notify)
inline constexpr std::uint8_t kOpConfirmProbe = 7;  // manager -> requester
// Probe answers when the requester cannot confirm: kOpGrantReject disowns a
// grant the requester never completed (the manager revokes it and re-drains
// the queue); kOpGrantExtend refreshes the lease of a transfer still being
// processed. Both are notifies.
inline constexpr std::uint8_t kOpGrantReject = 8;   // requester -> manager
inline constexpr std::uint8_t kOpGrantExtend = 9;   // requester -> manager
inline constexpr std::uint8_t kOpSync = 10;       // sync client -> sync server
// Fast-path opcodes (only ever sent when the matching SystemConfig knob is
// on, so the paper-faithful wire traffic never contains them).
inline constexpr std::uint8_t kOpGroupFetch = 11;   // requester -> manager/owner
inline constexpr std::uint8_t kOpGroupConfirm = 12; // requester -> manager (notify)
inline constexpr std::uint8_t kOpInvalidateBatch = 13;  // writer -> copyset member
inline constexpr std::uint8_t kOpHintConfirm = 14;  // requester -> manager (notify)
inline constexpr std::uint8_t kOpHintCovered = 15;  // manager -> owner (notify)
// Crash-stop recovery opcodes (only sent when SystemConfig::crash_recovery
// is on). kOpRecoveryQuery: a restarted manager asks every live host what
// it holds of the manager's pages; the reply carries per-page claims.
// kOpPageLost: a requester that discovered an amnesiac/reincarnated owner
// tells the page's manager so it can re-elect an owner from the copyset.
// kOpRecoveryDemote: a recovering manager tells a host to drop or downgrade
// a copy that lost the version/ownership conflict resolution (notify).
inline constexpr std::uint8_t kOpRecoveryQuery = 16;  // manager -> all hosts
inline constexpr std::uint8_t kOpPageLost = 17;       // requester -> manager
inline constexpr std::uint8_t kOpRecoveryDemote = 18; // manager -> holder (notify)
// Release-consistency diff flush (only sent when
// SystemConfig::release_consistency is on): a releasing writer ships its
// twin-vs-page byte-range diffs to the page's home for application to the
// master copy.
inline constexpr std::uint8_t kOpDiffFlush = 19;      // writer -> home
// Dynamic-directory manager migration (only sent when
// SystemConfig::directory_mode is kDynamic): the current manager offers a
// page's management to the last/dominant writer, which adopts it or rejects.
inline constexpr std::uint8_t kOpMgrMigrate = 20;     // manager -> new manager
// Highest opcode, for per-class stats iteration.
inline constexpr std::uint8_t kOpMax = kOpMgrMigrate;

// Role byte inside kOpReadReq/kOpWriteReq/kOpGroupFetch bodies: the same
// opcode serves the requester->manager leg, the forwarded manager->owner
// leg, and (for reads with probable-owner hints on) the direct
// requester->hinted-owner leg.
inline constexpr std::uint8_t kToManager = 0;
inline constexpr std::uint8_t kToOwner = 1;
inline constexpr std::uint8_t kToHintedOwner = 2;

// Human-readable message-class name for an opcode (per-class wire counters
// in the endpoint and ReportStats).
inline const char* OpName(std::uint8_t op) {
  switch (op) {
    case kOpAlloc: return "alloc";
    case kOpTypeSet: return "type_set";
    case kOpReadReq: return "read_req";
    case kOpWriteReq: return "write_req";
    case kOpInvalidate: return "invalidate";
    case kOpConfirm: return "confirm";
    case kOpConfirmProbe: return "confirm_probe";
    case kOpGrantReject: return "grant_reject";
    case kOpGrantExtend: return "grant_extend";
    case kOpSync: return "sync";
    case kOpGroupFetch: return "group_fetch";
    case kOpGroupConfirm: return "group_confirm";
    case kOpInvalidateBatch: return "invalidate_batch";
    case kOpHintConfirm: return "hint_confirm";
    case kOpHintCovered: return "hint_covered";
    case kOpRecoveryQuery: return "recovery_query";
    case kOpPageLost: return "page_lost";
    case kOpRecoveryDemote: return "recovery_demote";
    case kOpDiffFlush: return "diff_flush";
    case kOpMgrMigrate: return "mgr_migrate";
    default: return "other";
  }
}

}  // namespace mermaid::dsm
