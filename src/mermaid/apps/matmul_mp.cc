#include "mermaid/apps/matmul_mp.h"

#include <algorithm>

#include "mermaid/base/check.h"
#include "mermaid/base/rng.h"
#include "mermaid/base/wire.h"

namespace mermaid::apps {

namespace {

// Opcodes above the DSM/central range.
constexpr std::uint8_t kOpMpLoadB = 30;  // master -> host: full B matrix
constexpr std::uint8_t kOpMpWork = 31;   // master -> host: rows of A

constexpr sync::SyncId kMpDone = 3001;

net::CallOpts MpCallOpts() {
  net::CallOpts opts;
  opts.timeout = Seconds(30);  // a B-matrix transfer takes hundreds of ms
  opts.max_attempts = 10;
  return opts;
}

// RPC marshaling: ints as big-endian u32 ("network order"), the standard
// cost DSM avoids for page payloads.
void MarshalInts(base::WireWriter& w, const std::int32_t* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    w.U32(static_cast<std::uint32_t>(v[i]));
  }
}

std::vector<std::int32_t> UnmarshalInts(base::WireReader& r, std::size_t n) {
  std::vector<std::int32_t> out(n);
  for (auto& v : out) v = static_cast<std::int32_t>(r.U32());
  return out;
}

}  // namespace

MpMatMul::MpMatMul(dsm::System& sys) : sys_(sys) {
  per_host_.resize(sys.num_hosts());
  for (std::uint16_t h = 0; h < sys.num_hosts(); ++h) {
    per_host_[h] = std::make_unique<HostState>();
    per_host_[h]->jobs = sim::Chan<Job>(sys.host(h).runtime());
    HostState* state = per_host_[h].get();
    dsm::Host* host = &sys.host(h);

    host->endpoint().SetHandler(kOpMpLoadB, [state, host](
                                                net::RequestContext ctx) {
      base::WireReader r(ctx.body());
      const std::uint32_t n = r.U32();
      auto b = UnmarshalInts(r, static_cast<std::size_t>(n) * n);
      if (!r.ok()) return;
      // Unmarshaling cost: same per-element rate as a DSM page conversion.
      host->runtime().Delay(
          host->profile().convert.per_int_ns > 0
              ? static_cast<SimDuration>(host->profile().convert.per_int_ns *
                                         static_cast<double>(b.size()))
              : 0);
      {
        std::lock_guard<std::mutex> lk(state->mu);
        state->b = std::move(b);
      }
      ctx.Reply({});
    });
    host->endpoint().SetHandler(kOpMpWork, [state](net::RequestContext ctx) {
      base::WireReader r(ctx.body());
      Job job;
      job.n = static_cast<int>(r.U32());
      job.i0 = static_cast<int>(r.U32());
      job.i1 = static_cast<int>(r.U32());
      job.a_rows = UnmarshalInts(
          r, static_cast<std::size_t>(job.i1 - job.i0) * job.n);
      if (!r.ok()) return;
      job.ctx = std::move(ctx);
      state->jobs.Send(std::move(job));
    });

    // Per-host compute workers: enough to use the multiprocessor's CPUs.
    for (int w = 0; w < host->profile().cpu_count; ++w) {
      host->runtime().SpawnOn(
          h, "mp-worker-" + std::to_string(h) + "-" + std::to_string(w),
          [state, host] {
            for (;;) {
              auto job = state->jobs.Recv();
              if (!job.has_value()) return;  // shutdown
              const int n = job->n;
              host->runtime().Delay(static_cast<SimDuration>(
                  host->profile().convert.per_int_ns *
                  static_cast<double>(job->a_rows.size())));
              std::vector<std::int32_t> c(
                  static_cast<std::size_t>(job->i1 - job->i0) * n, 0);
              std::vector<std::int32_t> b_local;
              {
                std::lock_guard<std::mutex> lk(state->mu);
                b_local = state->b;  // private copy, plain local memory
              }
              for (int i = job->i0; i < job->i1; ++i) {
                const std::int32_t* arow =
                    job->a_rows.data() +
                    static_cast<std::size_t>(i - job->i0) * n;
                std::int32_t* crow =
                    c.data() + static_cast<std::size_t>(i - job->i0) * n;
                for (int k = 0; k < n; ++k) {
                  const std::int32_t aik = arow[k];
                  const std::int32_t* brow =
                      b_local.data() + static_cast<std::size_t>(k) * n;
                  for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
                }
                host->Compute(static_cast<double>(n) * n);
              }
              base::WireWriter w2;
              w2.U32(static_cast<std::uint32_t>(job->i0));
              w2.U32(static_cast<std::uint32_t>(job->i1));
              MarshalInts(w2, c.data(), c.size());
              job->ctx->Reply(std::move(w2).Take(), net::MsgKind::kData);
            }
          },
          /*daemon=*/true);
    }
  }
}

void MpMatMul::Setup(const MpMatMulConfig& cfg, MpMatMulResult* out) {
  MERMAID_CHECK(!cfg.worker_hosts.empty());
  sys_.SpawnThread(cfg.master_host, "mp-master", [this, cfg, out](
                                                     dsm::Host& h) {
    const int n = cfg.n;
    base::Rng rng(cfg.seed);
    std::vector<std::int32_t> a(static_cast<std::size_t>(n) * n);
    std::vector<std::int32_t> b(static_cast<std::size_t>(n) * n);
    for (auto& v : a) v = static_cast<std::int32_t>(rng.NextRange(-9, 9));
    for (auto& v : b) v = static_cast<std::int32_t>(rng.NextRange(-9, 9));

    const SimTime start = h.runtime().Now();

    // Data-exchange phase: ship B to every worker host, serialized through
    // the master's protocol stack.
    std::vector<net::HostId> hosts_used(cfg.worker_hosts.begin(),
                                        cfg.worker_hosts.end());
    std::sort(hosts_used.begin(), hosts_used.end());
    hosts_used.erase(std::unique(hosts_used.begin(), hosts_used.end()),
                     hosts_used.end());
    for (net::HostId wh : hosts_used) {
      base::WireWriter w;
      w.U32(static_cast<std::uint32_t>(n));
      MarshalInts(w, b.data(), b.size());
      auto ack = h.endpoint().Call(wh, kOpMpLoadB, std::move(w).Take(),
                                   net::MsgKind::kData, MpCallOpts());
      MERMAID_CHECK_MSG(ack.has_value(), "B distribution failed");
    }

    // Work phase: one sender per thread so replies collect concurrently.
    sys_.sync(h.id()).SemInit(kMpDone, 0);
    std::vector<std::int32_t>* c =
        new std::vector<std::int32_t>(static_cast<std::size_t>(n) * n, 0);
    const int per = (n + cfg.num_threads - 1) / cfg.num_threads;
    for (int t = 0; t < cfg.num_threads; ++t) {
      const int i0 = t * per;
      const int i1 = std::min(n, (t + 1) * per);
      if (i0 >= i1) {
        sys_.sync(h.id()).V(kMpDone);
        continue;
      }
      const net::HostId wh = cfg.worker_hosts[t % cfg.worker_hosts.size()];
      sys_.SpawnThread(
          cfg.master_host, "mp-send-" + std::to_string(t),
          [this, &a, c, n, i0, i1, wh](dsm::Host& hh) {
            base::WireWriter w;
            w.U32(static_cast<std::uint32_t>(n));
            w.U32(static_cast<std::uint32_t>(i0));
            w.U32(static_cast<std::uint32_t>(i1));
            MarshalInts(w, a.data() + static_cast<std::size_t>(i0) * n,
                        static_cast<std::size_t>(i1 - i0) * n);
            auto reply = hh.endpoint().Call(wh, kOpMpWork,
                                            std::move(w).Take(),
                                            net::MsgKind::kData,
                                            MpCallOpts());
            MERMAID_CHECK_MSG(reply.has_value(), "work RPC failed");
            base::WireReader r(*reply);
            const int ri0 = static_cast<int>(r.U32());
            const int ri1 = static_cast<int>(r.U32());
            auto rows = UnmarshalInts(
                r, static_cast<std::size_t>(ri1 - ri0) * n);
            hh.runtime().Delay(static_cast<SimDuration>(
                hh.profile().convert.per_int_ns *
                static_cast<double>(rows.size())));
            std::copy(rows.begin(), rows.end(),
                      c->begin() + static_cast<std::size_t>(ri0) * n);
            sys_.sync(hh.id()).V(kMpDone);
          });
    }
    for (int t = 0; t < cfg.num_threads; ++t) sys_.sync(h.id()).P(kMpDone);
    out->elapsed = h.runtime().Now() - start;

    if (cfg.verify) {
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        for (int j = 0; j < n; ++j) {
          std::int32_t acc = 0;
          for (int k = 0; k < n; ++k) {
            acc += a[static_cast<std::size_t>(i) * n + k] *
                   b[static_cast<std::size_t>(k) * n + j];
          }
          if ((*c)[static_cast<std::size_t>(i) * n + j] != acc) {
            ok = false;
            break;
          }
        }
      }
      out->correct = ok;
    } else {
      out->correct = true;
    }
    out->done = true;
    delete c;
  });
}

}  // namespace mermaid::apps
