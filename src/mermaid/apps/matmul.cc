#include "mermaid/apps/matmul.h"

#include <vector>

#include "mermaid/base/check.h"
#include "mermaid/base/rng.h"

namespace mermaid::apps {

namespace {

using Reg = arch::TypeRegistry;

struct Shared {
  dsm::GlobalAddr a = 0, b = 0, c = 0;
};

constexpr sync::SyncId kDoneSem = 1001;

void Worker(dsm::System& sys, dsm::Host& h, const MatMulConfig& cfg,
            const Shared& sh, int tid) {
  const int n = cfg.n;
  const int t = cfg.num_threads;
  std::vector<int> rows;
  if (cfg.round_robin_rows) {
    for (int i = tid; i < n; i += t) rows.push_back(i);
  } else {
    const int per = (n + t - 1) / t;
    for (int i = tid * per; i < std::min(n, (tid + 1) * per); ++i) {
      rows.push_back(i);
    }
  }
  auto row_addr = [n](dsm::GlobalAddr base, int i) {
    return base + 4ull * static_cast<std::uint64_t>(i) * n;
  };
  std::vector<std::int32_t> arow(n), brow(n), crow(n);
  for (int i : rows) {
    h.ReadBlock<std::int32_t>(row_addr(sh.a, i), n, arow.data());
    std::fill(crow.begin(), crow.end(), 0);
    for (int k = 0; k < n; ++k) {
      h.ReadBlock<std::int32_t>(row_addr(sh.b, k), n, brow.data());
      const std::int32_t aik = arow[k];
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
    if (cfg.element_writes) {
      // Element-at-a-time result production: n multiply-accumulates of
      // modeled work, then the store — the order the original loops did it.
      for (int j = 0; j < n; ++j) {
        h.Compute(n);
        h.Write<std::int32_t>(row_addr(sh.c, i) + 4ull * j, crow[j]);
      }
    } else {
      h.WriteBlock<std::int32_t>(row_addr(sh.c, i), crow.data(), n);
      // One modeled work unit per multiply-accumulate: n*n per result row.
      h.Compute(static_cast<double>(n) * n);
    }
  }
  sys.sync(h.id()).V(kDoneSem);
}

}  // namespace

void SetupMatMul(dsm::System& sys, const MatMulConfig& cfg,
                 MatMulResult* out) {
  MERMAID_CHECK(!cfg.worker_hosts.empty());
  MERMAID_CHECK(cfg.num_threads >= 1);
  sys.SpawnThread(cfg.master_host, "mm-master", [&sys, cfg, out](
                                                    dsm::Host& h) {
    const int n = cfg.n;
    auto* sh = new Shared;  // lives until the master finishes
    sh->a = sys.Alloc(h.id(), Reg::kInt, static_cast<std::uint64_t>(n) * n);
    sh->b = sys.Alloc(h.id(), Reg::kInt, static_cast<std::uint64_t>(n) * n);
    sh->c = sys.Alloc(h.id(), Reg::kInt, static_cast<std::uint64_t>(n) * n);

    // Fill the argument matrices (the master host becomes their owner, so
    // slaves demand-page them over, as in the paper's runs).
    base::Rng rng(cfg.seed);
    std::vector<std::int32_t> av(static_cast<std::size_t>(n) * n);
    std::vector<std::int32_t> bv(static_cast<std::size_t>(n) * n);
    for (auto& v : av) v = static_cast<std::int32_t>(rng.NextRange(-9, 9));
    for (auto& v : bv) v = static_cast<std::int32_t>(rng.NextRange(-9, 9));
    h.WriteBlock<std::int32_t>(sh->a, av.data(), av.size());
    h.WriteBlock<std::int32_t>(sh->b, bv.data(), bv.size());

    sys.sync(h.id()).SemInit(kDoneSem, 0);
    const SimTime start = h.runtime().Now();
    for (int t = 0; t < cfg.num_threads; ++t) {
      const net::HostId wh =
          cfg.worker_hosts[t % cfg.worker_hosts.size()];
      sys.SpawnThread(wh, "mm-worker-" + std::to_string(t),
                      [&sys, cfg, sh, t](dsm::Host& hh) {
                        Worker(sys, hh, cfg, *sh, t);
                      });
    }
    for (int t = 0; t < cfg.num_threads; ++t) sys.sync(h.id()).P(kDoneSem);
    out->elapsed = h.runtime().Now() - start;

    if (cfg.verify) {
      // Reference product (plain local arithmetic), then compare through
      // DSM reads — the result pages migrate back to the master, as the
      // paper notes ("pieces of the result matrix are transferred
      // (implicitly) to the master thread").
      bool ok = true;
      std::vector<std::int32_t> crow(n);
      for (int i = 0; i < n && ok; ++i) {
        h.ReadBlock<std::int32_t>(
            sh->c + 4ull * static_cast<std::uint64_t>(i) * n, n, crow.data());
        for (int j = 0; j < n; ++j) {
          std::int32_t acc = 0;
          for (int k = 0; k < n; ++k) {
            acc += av[static_cast<std::size_t>(i) * n + k] *
                   bv[static_cast<std::size_t>(k) * n + j];
          }
          if (crow[j] != acc) {
            ok = false;
            break;
          }
        }
      }
      out->correct = ok;
    } else {
      out->correct = true;
    }
    out->done = true;
    delete sh;
  });
}

}  // namespace mermaid::apps
