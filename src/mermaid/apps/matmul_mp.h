// Message-passing matrix multiplication: the baseline the paper's
// introduction compares DSM against.
//
// §1: DSM implementations "have demonstrated that DSM can be competitive to
// message passing in terms of performance… In fact, for some existing
// applications, we have found that DSM can result in superior performance"
// because demand paging eliminates the explicit data-exchange phase and
// spreads communication over the computation. This module is the explicit
// message-passing version of MM: the master marshals and ships B to every
// worker host, ships each thread its block of A rows, workers compute on
// private memory, and the result rows are shipped back — the classic
// exchange/compute/collect structure with the exchange serialized at the
// master's network interface.
//
// bench_mp_vs_dsm runs both versions on identical host sets.
#pragma once

#include <cstdint>
#include <vector>

#include "mermaid/dsm/system.h"

namespace mermaid::apps {

struct MpMatMulConfig {
  int n = 256;
  int num_threads = 1;
  net::HostId master_host = 0;
  std::vector<net::HostId> worker_hosts;
  std::uint64_t seed = 1990;
  bool verify = true;
};

struct MpMatMulResult {
  bool done = false;
  bool correct = false;
  SimDuration elapsed = 0;  // includes the data-exchange phase
};

// Registers the worker-side handlers; construct before System::Start().
class MpMatMul {
 public:
  explicit MpMatMul(dsm::System& sys);

  // Spawns the master thread; *out is complete before the run returns.
  void Setup(const MpMatMulConfig& cfg, MpMatMulResult* out);

 private:
  struct Job {
    std::optional<net::RequestContext> ctx;
    int n = 0;
    int i0 = 0, i1 = 0;
    std::vector<std::int32_t> a_rows;
  };
  struct HostState {
    sim::Chan<Job> jobs;
    std::vector<std::int32_t> b;  // host-local copy of B
    std::mutex mu;
  };

  dsm::System& sys_;
  std::vector<std::unique_ptr<HostState>> per_host_;
};

}  // namespace mermaid::apps
