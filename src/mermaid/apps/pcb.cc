#include "mermaid/apps/pcb.h"

#include <algorithm>
#include <bit>

#include "mermaid/base/check.h"
#include "mermaid/base/rng.h"

namespace mermaid::apps {

namespace {

using Reg = arch::TypeRegistry;

inline bool IsConductor(std::uint8_t v) { return v != kEmpty; }

// Images are stored column-major (index = col * height + row) so that the
// master's column stripes are contiguous in memory and stripe borders share
// only a page or two — the same locality the paper's striping relies on.
inline std::size_t Idx(int height, int r, int c) {
  return static_cast<std::size_t>(c) * height + r;
}

// Per-pixel rule evaluation against any random-access pixel source.
// `Pix(r, c)` must return kEmpty outside the board.
template <typename PixFn>
bool CheckPixel(PixFn&& pix, int height, int width, int r, int c,
                PcbStats* stats) {
  const std::uint8_t v = pix(r, c);
  bool bad = false;
  if (IsConductor(v)) {
    // Rule 1: minimum conductor width. Thickness of the ribbon through this
    // pixel = min(horizontal run, vertical run), runs capped at kMinWidth.
    int h_run = 1, v_run = 1;
    for (int d = 1; d < kMinWidth && IsConductor(pix(r, c - d)); ++d) ++h_run;
    for (int d = 1; d < kMinWidth && IsConductor(pix(r, c + d)); ++d) ++h_run;
    for (int d = 1; d < kMinWidth && IsConductor(pix(r - d, c)); ++d) ++v_run;
    for (int d = 1; d < kMinWidth && IsConductor(pix(r + d, c)); ++d) ++v_run;
    if (std::min(h_run, v_run) < kMinWidth) {
      ++stats->narrow;
      bad = true;
    }
    // Rule 3: pads must have a drill hole nearby.
    if (v == kPad) {
      bool hole = false;
      for (int dr = -kHoleRadius; dr <= kHoleRadius && !hole; ++dr) {
        for (int dc = -kHoleRadius; dc <= kHoleRadius; ++dc) {
          if (pix(r + dr, c + dc) == kHole) {
            hole = true;
            break;
          }
        }
      }
      if (!hole) {
        ++stats->missing_hole;
        bad = true;
      }
    }
  } else {
    // Rule 2: minimum spacing — an empty pixel squeezed between conductors.
    if ((IsConductor(pix(r, c - 1)) && IsConductor(pix(r, c + 1))) ||
        (IsConductor(pix(r - 1, c)) && IsConductor(pix(r + 1, c)))) {
      ++stats->spacing;
      bad = true;
    }
  }
  (void)height;
  (void)width;
  return bad;
}

constexpr sync::SyncId kPcbDoneSem = 2001;

struct Shared {
  dsm::GlobalAddr board = 0;
  dsm::GlobalAddr overlay = 0;
  dsm::GlobalAddr stats = 0;  // PcbStats record per thread
  std::size_t stats_stride = 0;
};

}  // namespace

std::vector<std::uint8_t> GenerateBoard(int height, int width,
                                        std::uint64_t seed) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(height) * width,
                                kEmpty);
  base::Rng rng(seed);
  auto hline = [&](int r, int c0, int c1, int w, std::uint8_t val) {
    for (int rr = r; rr < std::min(r + w, height); ++rr) {
      for (int cc = std::max(0, c0); cc < std::min(c1, width); ++cc) {
        img[Idx(height, rr, cc)] = val;
      }
    }
  };
  auto vline = [&](int c, int r0, int r1, int w, std::uint8_t val) {
    for (int cc = c; cc < std::min(c + w, width); ++cc) {
      for (int rr = std::max(0, r0); rr < std::min(r1, height); ++rr) {
        img[Idx(height, rr, cc)] = val;
      }
    }
  };

  // Feature density grows along the board: section s of 16 carries s-scaled
  // feature counts, giving the unbalanced stripes of §3.2.
  const int sections = 16;
  const int sec_w = width / sections;
  for (int s = 0; s < sections; ++s) {
    const int c0 = s * sec_w;
    const int traces = 1 + (3 * s) / 4;
    for (int t = 0; t < traces; ++t) {
      const int r = static_cast<int>(rng.NextBelow(height - 8));
      // Width 2 is a deliberate narrow-conductor violation (~1 in 6).
      const int w = rng.NextBool(0.17) ? 2 : 3 + static_cast<int>(
                                                     rng.NextBelow(3));
      hline(r, c0 + 2, c0 + sec_w - 2, w, kCopper);
      // Occasionally draw a parallel trace one pixel away: spacing flaw.
      if (rng.NextBool(0.2)) {
        hline(r + w + 1, c0 + 4, c0 + sec_w / 2, 3, kCopper);
      }
    }
    const int pads = 1 + s / 2;
    for (int t = 0; t < pads; ++t) {
      const int r = 4 + static_cast<int>(rng.NextBelow(height - 20));
      const int c = c0 + 4 + static_cast<int>(
                                 rng.NextBelow(std::max(1, sec_w - 20)));
      // 10x10 pad; ~1 in 5 lacks its hole (a flaw).
      for (int rr = r; rr < r + 10; ++rr) {
        for (int cc = c; cc < c + 10; ++cc) {
          if (rr < height && cc < width) img[Idx(height, rr, cc)] = kPad;
        }
      }
      if (!rng.NextBool(0.2)) {
        for (int rr = r + 4; rr < r + 6; ++rr) {
          for (int cc = c + 4; cc < c + 6; ++cc) {
            if (rr < height && cc < width) img[Idx(height, rr, cc)] = kHole;
          }
        }
      }
    }
    // Vertical connectors between sections.
    if (s + 1 < sections && rng.NextBool(0.7)) {
      const int c = c0 + sec_w - 3;
      vline(c, 10, height - 10, 3 + static_cast<int>(rng.NextBelow(2)), kCopper);
    }
  }
  return img;
}

PcbStats CheckBoardReference(const std::vector<std::uint8_t>& board,
                             int height, int width,
                             std::vector<std::uint8_t>* overlay) {
  overlay->assign(board.size(), 0);
  PcbStats stats;
  auto pix = [&](int r, int c) -> std::uint8_t {
    if (r < 0 || r >= height || c < 0 || c >= width) return kEmpty;
    return board[Idx(height, r, c)];
  };
  for (int c = 0; c < width; ++c) {
    for (int r = 0; r < height; ++r) {
      if (CheckPixel(pix, height, width, r, c, &stats)) {
        (*overlay)[Idx(height, r, c)] = 1;
      }
    }
  }
  return stats;
}

arch::TypeId RegisterPcbTypes(arch::TypeRegistry& registry) {
  return registry.RegisterRecord("pcb_stats", {{Reg::kInt, 3}});
}

void SetupPcb(dsm::System& sys, arch::TypeId stats_type, const PcbConfig& cfg,
              PcbResult* out) {
  MERMAID_CHECK(!cfg.worker_hosts.empty());
  sys.SpawnThread(cfg.master_host, "pcb-master", [&sys, stats_type, cfg,
                                                  out](dsm::Host& h) {
    const int height = cfg.height;
    const int width = cfg.width;
    const auto npix = static_cast<std::uint64_t>(height) * width;
    auto board_img = GenerateBoard(height, width, cfg.seed);

    auto* sh = new Shared;
    sh->board = sys.Alloc(h.id(), Reg::kChar, npix);
    sh->overlay = sys.Alloc(h.id(), Reg::kChar, npix);
    sh->stats = sys.Alloc(h.id(), stats_type, cfg.num_threads);
    sh->stats_stride = std::bit_ceil(sys.registry().SizeOf(stats_type));

    // "Two digital images ... are taken by a camera, digitized, and then
    // stored as large matrices": the master loads the image into DSM.
    h.WriteBlock<std::uint8_t>(sh->board, board_img.data(), npix);
    for (int t = 0; t < cfg.num_threads; ++t) {
      const dsm::GlobalAddr rec = sh->stats + t * sh->stats_stride;
      h.Write<std::int32_t>(rec + 0, 0);
      h.Write<std::int32_t>(rec + 4, 0);
      h.Write<std::int32_t>(rec + 8, 0);
    }

    sys.sync(h.id()).SemInit(kPcbDoneSem, 0);
    const SimTime start = h.runtime().Now();
    const int per = (width + cfg.num_threads - 1) / cfg.num_threads;
    for (int t = 0; t < cfg.num_threads; ++t) {
      const int c0 = t * per;
      const int c1 = std::min(width, (t + 1) * per);
      const net::HostId wh = cfg.worker_hosts[t % cfg.worker_hosts.size()];
      sys.SpawnThread(
          wh, "pcb-worker-" + std::to_string(t),
          [&sys, cfg, sh, t, c0, c1, height, width](dsm::Host& hh) {
            PcbStats local;
            // Fault the stripe plus its overlap margins in (read-shared
            // replication), then check against the local copy — after the
            // first touch the pages are local anyway; this keeps identical
            // DSM traffic with far fewer simulated instructions.
            const int m0 = std::max(0, c0 - cfg.overlap);
            const int m1 = std::min(width, c1 + cfg.overlap);
            std::vector<std::uint8_t> stripe(
                static_cast<std::size_t>(m1 - m0) * height);
            hh.ReadBlock<std::uint8_t>(sh->board + Idx(height, 0, m0),
                                       stripe.size(), stripe.data());
            auto pix = [&](int r, int c) -> std::uint8_t {
              if (r < 0 || r >= height || c < m0 || c >= m1) return kEmpty;
              return stripe[Idx(height, r, c - m0)];
            };
            std::vector<std::uint8_t> ocol(height);
            for (int c = c0; c < c1; ++c) {
              int copper = 0;
              bool any = false;
              std::fill(ocol.begin(), ocol.end(), 0);
              for (int r = 0; r < height; ++r) {
                if (IsConductor(pix(r, c))) ++copper;
                if (CheckPixel(pix, height, width, r, c, &local)) {
                  ocol[r] = 1;
                  any = true;
                }
              }
              if (any) {
                hh.WriteBlock<std::uint8_t>(sh->overlay + Idx(height, 0, c),
                                            ocol.data(), height);
              }
              // Modeled rule-checking cost: a base scan per pixel plus
              // feature work on conductors (calibrated so the sequential
              // 2 cm x 16 cm check takes minutes on a Sun3/60, as reported).
              hh.Compute(height * 200.0 + copper * 700.0);
            }
            const dsm::GlobalAddr rec = sh->stats + t * sh->stats_stride;
            hh.Write<std::int32_t>(rec + 0, local.narrow);
            hh.Write<std::int32_t>(rec + 4, local.spacing);
            hh.Write<std::int32_t>(rec + 8, local.missing_hole);
            sys.sync(hh.id()).V(kPcbDoneSem);
          });
    }
    for (int t = 0; t < cfg.num_threads; ++t) sys.sync(h.id()).P(kPcbDoneSem);
    out->elapsed = h.runtime().Now() - start;

    // Aggregate the per-thread statistics records (their pages migrate back
    // to the master, converting between representations if heterogeneous).
    PcbStats total;
    for (int t = 0; t < cfg.num_threads; ++t) {
      const dsm::GlobalAddr rec = sh->stats + t * sh->stats_stride;
      total.narrow += h.Read<std::int32_t>(rec + 0);
      total.spacing += h.Read<std::int32_t>(rec + 4);
      total.missing_hole += h.Read<std::int32_t>(rec + 8);
    }
    out->stats = total;

    if (cfg.verify) {
      std::vector<std::uint8_t> ref_overlay;
      PcbStats ref = CheckBoardReference(board_img, height, width,
                                         &ref_overlay);
      bool ok = ref.narrow == total.narrow && ref.spacing == total.spacing &&
                ref.missing_hole == total.missing_hole;
      if (ok) {
        std::vector<std::uint8_t> got(npix);
        h.ReadBlock<std::uint8_t>(sh->overlay, npix, got.data());
        ok = got == ref_overlay;
      }
      out->correct = ok;
    } else {
      out->correct = true;
    }
    out->done = true;
    delete sh;
  });
}

}  // namespace mermaid::apps
