// Parallel matrix multiplication on Mermaid DSM (§3.2, §3.3).
//
// The computation of the rows of the result matrix C = A * B is performed by
// slave threads; A and B are read-shared (replicated on demand), C is
// write-shared. The master creates and coordinates the slaves but performs
// no multiplication itself. Two work divisions:
//   MM1 — each thread gets a contiguous block of rows (good locality);
//   MM2 — rows are dealt round-robin (deliberate page contention; with the
//         large page-size algorithm this is the paper's thrashing workload).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mermaid/dsm/system.h"

namespace mermaid::apps {

struct MatMulConfig {
  int n = 256;       // square matrix dimension (paper: 256)
  int num_threads = 1;
  net::HostId master_host = 0;
  std::vector<net::HostId> worker_hosts;  // threads dealt round-robin
  bool round_robin_rows = false;          // false = MM1, true = MM2
  // Write each result element as it is computed (the original programs'
  // access pattern) instead of flushing the row in one block. Equivalent
  // when rows are not write-shared; required to reproduce §3.3's thrashing,
  // where concurrent element writes to one 8 KB page ping-pong it.
  bool element_writes = false;
  std::uint64_t seed = 1990;
  bool verify = true;
};

struct MatMulResult {
  bool done = false;
  bool correct = false;
  SimDuration elapsed = 0;  // parallel phase only (spawn .. all joined)
};

// Spawns the master thread on cfg.master_host; results are written to *out
// before the engine run completes. Call before Engine::Run().
void SetupMatMul(dsm::System& sys, const MatMulConfig& cfg, MatMulResult* out);

}  // namespace mermaid::apps
