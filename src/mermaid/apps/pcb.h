// Printed-circuit-board inspection on Mermaid DSM (§3.2).
//
// The paper's PCB application checks digitized board images for design-rule
// violations: conductor widths, wire holes, and spacing. The camera and real
// boards are substituted by a seeded synthetic board generator that draws
// traces and pads and injects violations of three rules:
//   1. minimum conductor width (traces thinner than kMinWidth),
//   2. minimum spacing (distinct conductors closer than kMinGap),
//   3. pad hole presence (pads without a drill hole nearby).
// The checker is a real image-processing pass over the board; violations are
// highlighted in an overlay image ("high-lighted in red in a third image")
// and counted in per-thread statistics records — a user-defined DSM record
// type exercising compound conversion.
//
// Work division follows the paper: the master (on a workstation host)
// divides the board into column stripes with small overlaps "so that
// features on the borders are checked properly" and creates checker threads
// on the compute-server hosts. Feature density grows along the board, so
// stripes are unbalanced — the paper's first scalability limitation.
#pragma once

#include <cstdint>
#include <vector>

#include "mermaid/dsm/system.h"

namespace mermaid::apps {

// Pixel values in the board image (stored as DSM char data — image bytes
// need no representation conversion, exactly as in Figure 2's example).
inline constexpr std::uint8_t kEmpty = 0;
inline constexpr std::uint8_t kCopper = 1;
inline constexpr std::uint8_t kPad = 2;
inline constexpr std::uint8_t kHole = 3;

inline constexpr int kMinWidth = 3;  // pixels
inline constexpr int kMinGap = 2;    // pixels
inline constexpr int kHoleRadius = 6;

struct PcbConfig {
  int height = 200;   // 2 cm at 10 px/mm
  int width = 1600;   // 16 cm
  int num_threads = 1;
  net::HostId master_host = 0;
  std::vector<net::HostId> worker_hosts;
  int overlap = 8;    // stripe overlap margin (pixels)
  std::uint64_t seed = 42;
  bool verify = true;
};

struct PcbStats {
  std::int32_t narrow = 0;
  std::int32_t spacing = 0;
  std::int32_t missing_hole = 0;
};

struct PcbResult {
  bool done = false;
  bool correct = false;
  SimDuration elapsed = 0;
  PcbStats stats;
};

// Generates the synthetic board image (plain memory; the master copies it
// into DSM, standing in for the camera + digitizer).
std::vector<std::uint8_t> GenerateBoard(int height, int width,
                                        std::uint64_t seed);

// Reference sequential checker over a plain image; fills overlay (same size,
// 0/1) and returns rule-violation counts.
PcbStats CheckBoardReference(const std::vector<std::uint8_t>& board,
                             int height, int width,
                             std::vector<std::uint8_t>* overlay);

// Spawns the master; *out is complete before the engine run returns. The
// PcbStats record type is registered on sys.registry() — call before Start()
// ... handled internally via RegisterPcbTypes.
arch::TypeId RegisterPcbTypes(arch::TypeRegistry& registry);
void SetupPcb(dsm::System& sys, arch::TypeId stats_type,
              const PcbConfig& cfg, PcbResult* out);

}  // namespace mermaid::apps
