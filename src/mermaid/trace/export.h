// Exporters for traced event streams.
//
// WriteChromeTrace emits the Chrome/Perfetto trace-event JSON format
// (chrome://tracing, https://ui.perfetto.dev): one instant event per traced
// protocol step, plus a duration ("X") slice for every FaultStart/FaultEnd
// pair so fault service time is visible as a bar. Timestamps are simulation
// microseconds; pid/tid are the host id, so each host gets its own track.
//
// PageTimeline groups the same events by page into a per-page protocol-state
// timeline (who faulted, who granted, who served, who got invalidated, in
// sim-time order) — the page-centric view the Chrome timeline cannot give.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mermaid/trace/trace.h"

namespace mermaid::trace {

// Chrome trace JSON for the event stream; returns it as a string.
std::string ChromeTraceJson(const std::vector<Event>& events);

// Per-page timeline JSON: {"pages": {"<page>": [{t_ms, host, event, ...}]}}.
// Events with no page (packet-level, sync, spawns) are omitted.
std::string PageTimelineJson(const std::vector<Event>& events);

// In-memory form of the per-page timeline, for tests and tools.
std::map<std::uint32_t, std::vector<Event>> PageTimeline(
    const std::vector<Event>& events);

// Write helpers; return false (and leave a partial file) on I/O error.
bool WriteChromeTrace(const std::vector<Event>& events,
                      const std::string& path);
bool WritePageTimeline(const std::vector<Event>& events,
                       const std::string& path);

}  // namespace mermaid::trace
