#include "mermaid/trace/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

namespace mermaid::trace {
namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

double TsMicros(SimTime at) { return static_cast<double>(at) / 1000.0; }

void AppendEventArgs(std::string& out, const Event& ev) {
  AppendF(out,
          "\"args\":{\"id\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"page\":%s",
          ev.id, ev.parent,
          ev.page == kNoPage ? "null" : std::to_string(ev.page).c_str());
  AppendF(out, ",\"op\":%" PRIu64 ",\"a0\":%lld,\"a1\":%lld}", ev.op,
          static_cast<long long>(ev.a0), static_cast<long long>(ev.a1));
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Event>& events) {
  // Pair FaultEnd events back to their FaultStart (the end's parent is the
  // start's id) so faults render as duration slices.
  std::unordered_map<std::uint64_t, const Event*> by_id;
  by_id.reserve(events.size());
  for (const Event& ev : events) by_id.emplace(ev.id, &ev);

  std::string out;
  out.reserve(events.size() * 160 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : events) {
    if (ev.kind == EventKind::kFaultEnd) {
      auto it = by_id.find(ev.parent);
      if (it != by_id.end() &&
          it->second->kind == EventKind::kFaultStart) {
        const Event& start = *it->second;
        if (!first) out += ',';
        first = false;
        AppendF(out,
                "{\"name\":\"Fault p%u\",\"cat\":\"dsm\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u,",
                start.page, TsMicros(start.at),
                TsMicros(ev.at) - TsMicros(start.at), start.host, start.host);
        AppendEventArgs(out, ev);
        out += '}';
        continue;  // the paired slice replaces the instant for FaultEnd
      }
    }
    if (!first) out += ',';
    first = false;
    AppendF(out,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
            "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,",
            KindName(ev.kind),
            ev.page == kNoPage ? "net" : "dsm", TsMicros(ev.at), ev.host,
            ev.host);
    AppendEventArgs(out, ev);
    out += '}';
  }
  out += "]}";
  return out;
}

std::map<std::uint32_t, std::vector<Event>> PageTimeline(
    const std::vector<Event>& events) {
  std::map<std::uint32_t, std::vector<Event>> pages;
  for (const Event& ev : events) {
    if (ev.page == kNoPage) continue;
    pages[ev.page].push_back(ev);
  }
  return pages;
}

std::string PageTimelineJson(const std::vector<Event>& events) {
  std::string out = "{\"pages\":{";
  bool first_page = true;
  for (const auto& [page, evs] : PageTimeline(events)) {
    if (!first_page) out += ',';
    first_page = false;
    AppendF(out, "\"%u\":[", page);
    bool first_ev = true;
    for (const Event& ev : evs) {
      if (!first_ev) out += ',';
      first_ev = false;
      AppendF(out,
              "{\"t_ms\":%.6f,\"host\":%u,\"event\":\"%s\",\"op\":%" PRIu64
              ",\"id\":%" PRIu64 ",\"parent\":%" PRIu64 "}",
              static_cast<double>(ev.at) / 1e6, ev.host, KindName(ev.kind),
              ev.op, ev.id, ev.parent);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

namespace {

bool WriteFile(const std::string& content, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool WriteChromeTrace(const std::vector<Event>& events,
                      const std::string& path) {
  return WriteFile(ChromeTraceJson(events), path);
}

bool WritePageTimeline(const std::vector<Event>& events,
                       const std::string& path) {
  return WriteFile(PageTimelineJson(events), path);
}

}  // namespace mermaid::trace
