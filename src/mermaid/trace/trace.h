// Structured, causally-linked protocol event tracing.
//
// Mermaid's behaviour is dominated by protocol interleavings — fault ->
// manager grant -> forward -> owner serve -> install -> invalidate — that
// aggregate counters cannot localize. The Tracer records one fixed-size
// event per protocol step into a bounded ring buffer; each event carries
// the simulation time, the host it happened on, the page and operation ids,
// and the id of its *causal parent* event, so a complete fault-to-grant
// chain can be reconstructed after the run (see trace/export.h for the
// Chrome/Perfetto exporter and the per-page timeline).
//
// Causality across hosts: the simulation shares one address space, so a
// cross-host edge does not need to ride the wire. The producer of an event
// binds it under a causal key — (page, op_id) for a DSM transfer, the
// requester (host, page) pair for a fault awaiting its grant, the page for
// an in-flight invalidation round — and the consumer on the next protocol
// leg looks the key up to obtain its parent id. Keys are bound and read at
// the exact protocol points where the real system would carry a correlation
// id, so the reconstructed chains match the protocol's message pattern.
//
// Overhead: recording is gated on an atomic `enabled` flag; when tracing is
// off (the default) every hook is a pointer test plus a relaxed load, no
// lock, no allocation, and no simulated delay — modeled times are bit-for-bit
// identical with tracing on or off, because the Tracer never touches the
// runtime. When on, events go into a preallocated ring guarded by a leaf
// mutex; the capacity knob (SystemConfig::trace_capacity) bounds memory and
// the oldest events are evicted first.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "mermaid/base/time.h"

namespace mermaid::trace {

inline constexpr std::uint32_t kNoPage = 0xFFFFFFFFu;
inline constexpr std::uint16_t kNoHost = 0xFFFFu;

enum class EventKind : std::uint8_t {
  kProcSpawn = 0,        // a0 = daemon flag
  kFaultStart,           // a0 = write fault flag
  kFaultEnd,             // parent = matching kFaultStart
  kManagerGrant,         // a0 = write flag, a1 = owner host
  kManagerForward,       // a0 = owner forwarded to, a1 = requesting host
  kManagerCommit,        // a0 = write flag
  kManagerRevoke,
  kOwnerServe,           // a0 = extent bytes, a1 = conversion-cache hit flag
  kInstall,              // a0 = write flag, a1 = data-carried flag
  kInvalidateSend,       // a0 = fan-out (targets this round), a1 = round
  kInvalidateRecv,       // a0 = invalidating writer's host
  kConvert,              // a0 = elements converted, a1 = modeled delay ns
  kPacketSend,           // a0 = wire bytes, a1 = destination host
  kPacketDrop,           // a0 = wire bytes, a1 = destination host
  kMsgSend,              // op = msg id, a0 = fragment count, a1 = dst host
  kMsgDelivered,         // op = msg id, a0 = payload bytes
  kReassemblyExpired,    // op = msg id, a0 = fragments received
  kRetransmit,           // op = req id, a0 = attempt number
  kCallTimeout,          // op = req id
  kSyncOp,               // op = sync id, a0 = sub-operation
  // Protocol fast paths (SystemConfig::probable_owner / group_fetch /
  // coalesced_invalidation; see DESIGN.md "Protocol fast paths").
  kHintFetch,            // a0 = hinted owner host
  kHintServe,            // a0 = extent bytes, a1 = conversion-cache hit flag
  kHintStale,            // a0 = manager the request was re-forwarded to
  kGroupFetch,           // a0 = page count, a1 = manager host
  kGroupServe,           // a0 = pages served with data, a1 = payload bytes
  kInvalidateBatch,      // a0 = fan-out (targets this round), a1 = page count
  // Crash-stop recovery (SystemConfig::crash_recovery; see DESIGN.md
  // "Failure model"). The whole recovery of one host forms a causal chain
  // rooted at its kRecoveryStart, linked through RecoveryKey.
  kRecoveryStart,        // a0 = new incarnation number
  kRecoveryQuery,        // a0 = live hosts queried, a1 = hosts that answered
  kRecoveryRebuild,      // page rebuilt; a0 = owner, a1 = version
  kRecoveryLost,         // page lost;   a0 = policy (0 fatal, 1 reinit-zero)
  kRecoveryDone,         // a0 = pages rebuilt, a1 = pages lost
  kRecoveryDemote,       // a0 = demoted host, a1 = kept owner
  kOwnerLost,            // requester saw an amnesiac owner; a0 = owner host
  // Release consistency (SystemConfig::release_consistency; see DESIGN.md
  // "Release consistency"). A full write-aggregation chain is
  // kTwinCreate -> kDiffFlush -> kWriteNotice, linked through RcTwinKey
  // (writer-local) and RcNoticeKey (cross-host).
  kTwinCreate,           // a0 = twin base version, a1 = home-dirty flag
  kDiffFlush,            // op = flush seq; a0 = diff bytes, a1 = range count
  kWriteNotice,          // a0 = noticed version, a1 = originating writer
  // Dynamic directory (SystemConfig::directory_mode == kDynamic): one event
  // on each side of a completed kOpMgrMigrate handshake, linked through
  // MgrMigrateKey (the adopting side binds, the source links back).
  kMgrMigrate,           // a0 = peer host, a1 = side (0 source, 1 target)
};

const char* KindName(EventKind k);

// One traced protocol step. Fixed-size POD so the ring buffer never
// allocates per event.
struct Event {
  std::uint64_t id = 0;      // 1-based, monotonic across the whole run
  std::uint64_t parent = 0;  // causal parent event id; 0 = chain root
  SimTime at = 0;            // simulation time (ns)
  std::uint16_t host = kNoHost;
  EventKind kind = EventKind::kProcSpawn;
  std::uint32_t page = kNoPage;
  std::uint64_t op = 0;      // DSM op id / message id / request id / sync id
  std::int64_t a0 = 0;       // kind-specific detail (see EventKind)
  std::int64_t a1 = 0;
};

// Causal-key namespace tags (first pair element's high bits).
using CausalKey = std::pair<std::uint64_t, std::uint64_t>;

// A DSM transfer leg, keyed by the manager-assigned (page, op_id).
inline CausalKey OpKey(std::uint32_t page, std::uint64_t op) {
  return {(1ull << 32) | page, op};
}
// A fault awaiting its grant, keyed by (requesting host, page).
inline CausalKey FaultKey(std::uint16_t host, std::uint32_t page) {
  return {(2ull << 32) | page, host};
}
// The in-flight invalidation round for a page.
inline CausalKey InvKey(std::uint32_t page) {
  return {(3ull << 32) | page, 0};
}
// A hinted (probable-owner) transfer, keyed by (requesting host, page): the
// hinted leg has no manager-assigned op id, so the requester binds its
// kHintFetch here and the hinted owner's serve (or stale re-forward) links
// back through it.
inline CausalKey HintKey(std::uint16_t host, std::uint32_t page) {
  return {(4ull << 32) | page, host};
}
// One host's in-flight crash recovery: kRecoveryStart binds here and every
// query/rebuild/lost/done event of that recovery links back through it.
inline CausalKey RecoveryKey(std::uint16_t host) {
  return {(5ull << 32), host};
}
// A live twin on one host (release consistency): kTwinCreate binds here and
// the twin's kDiffFlush at release links back through it.
inline CausalKey RcTwinKey(std::uint16_t host, std::uint32_t page) {
  return {(6ull << 32) | page, host};
}
// The latest flushed diff for a page: the releasing writer binds its
// kDiffFlush here and every acquirer's kWriteNotice links back through it.
inline CausalKey RcNoticeKey(std::uint32_t page) {
  return {(7ull << 32) | page, 0};
}
// The latest completed manager migration for a page: the adopting manager
// binds its kMgrMigrate here; the source's event (and any later migration of
// the same page) links back through it, chaining a page's managers.
inline CausalKey MgrMigrateKey(std::uint32_t page) {
  return {(8ull << 32) | page, 0};
}

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records one event and returns its id, or 0 when disabled. Callers pass
  // the simulation time explicitly so the Tracer never has to reach into a
  // runtime (it must stay a leaf: Record is called under protocol locks).
  std::uint64_t Record(EventKind kind, std::uint16_t host, SimTime at,
                       std::uint32_t page = kNoPage, std::uint64_t op = 0,
                       std::uint64_t parent = 0, std::int64_t a0 = 0,
                       std::int64_t a1 = 0);

  // Publishes `event` as the latest event under `key`; the next protocol leg
  // (possibly on another host) reads it back with Parent. Bindings are kept
  // in a bounded FIFO map — a stale binding simply roots a new chain.
  void Bind(const CausalKey& key, std::uint64_t event);
  std::uint64_t Parent(const CausalKey& key) const;

  // Ring contents, oldest first. Events evicted by the ring are gone; see
  // dropped() for how many.
  std::vector<Event> Snapshot() const;

  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::deque<Event> ring_;
  std::map<CausalKey, std::uint64_t> bindings_;
  std::deque<CausalKey> binding_order_;
};

}  // namespace mermaid::trace
