#include "mermaid/trace/trace.h"

namespace mermaid::trace {
namespace {

// Bindings outlive their protocol exchange only briefly; a small FIFO bound
// keeps the map from growing with run length.
constexpr std::size_t kMaxBindings = 8192;

}  // namespace

const char* KindName(EventKind k) {
  switch (k) {
    case EventKind::kProcSpawn: return "ProcSpawn";
    case EventKind::kFaultStart: return "FaultStart";
    case EventKind::kFaultEnd: return "FaultEnd";
    case EventKind::kManagerGrant: return "ManagerGrant";
    case EventKind::kManagerForward: return "ManagerForward";
    case EventKind::kManagerCommit: return "ManagerCommit";
    case EventKind::kManagerRevoke: return "ManagerRevoke";
    case EventKind::kOwnerServe: return "OwnerServe";
    case EventKind::kInstall: return "Install";
    case EventKind::kInvalidateSend: return "InvalidateSend";
    case EventKind::kInvalidateRecv: return "InvalidateRecv";
    case EventKind::kConvert: return "Convert";
    case EventKind::kPacketSend: return "PacketSend";
    case EventKind::kPacketDrop: return "PacketDrop";
    case EventKind::kMsgSend: return "MsgSend";
    case EventKind::kMsgDelivered: return "MsgDelivered";
    case EventKind::kReassemblyExpired: return "ReassemblyExpired";
    case EventKind::kRetransmit: return "Retransmit";
    case EventKind::kCallTimeout: return "CallTimeout";
    case EventKind::kSyncOp: return "SyncOp";
    case EventKind::kHintFetch: return "HintFetch";
    case EventKind::kHintServe: return "HintServe";
    case EventKind::kHintStale: return "HintStale";
    case EventKind::kGroupFetch: return "GroupFetch";
    case EventKind::kGroupServe: return "GroupServe";
    case EventKind::kInvalidateBatch: return "InvalidateBatch";
    case EventKind::kRecoveryStart: return "RecoveryStart";
    case EventKind::kRecoveryQuery: return "RecoveryQuery";
    case EventKind::kRecoveryRebuild: return "RecoveryRebuild";
    case EventKind::kRecoveryLost: return "RecoveryLost";
    case EventKind::kRecoveryDone: return "RecoveryDone";
    case EventKind::kRecoveryDemote: return "RecoveryDemote";
    case EventKind::kOwnerLost: return "OwnerLost";
    case EventKind::kTwinCreate: return "TwinCreate";
    case EventKind::kDiffFlush: return "DiffFlush";
    case EventKind::kWriteNotice: return "WriteNotice";
    case EventKind::kMgrMigrate: return "MgrMigrate";
  }
  return "Unknown";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::uint64_t Tracer::Record(EventKind kind, std::uint16_t host, SimTime at,
                             std::uint32_t page, std::uint64_t op,
                             std::uint64_t parent, std::int64_t a0,
                             std::int64_t a1) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  Event ev;
  ev.id = next_id_++;
  ev.parent = parent;
  ev.at = at;
  ev.host = host;
  ev.kind = kind;
  ev.page = page;
  ev.op = op;
  ev.a0 = a0;
  ev.a1 = a1;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(ev);
  return ev.id;
}

void Tracer::Bind(const CausalKey& key, std::uint64_t event) {
  if (!enabled() || event == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = bindings_.insert_or_assign(key, event);
  (void)it;
  if (inserted) {
    binding_order_.push_back(key);
    while (binding_order_.size() > kMaxBindings) {
      bindings_.erase(binding_order_.front());
      binding_order_.pop_front();
    }
  }
}

std::uint64_t Tracer::Parent(const CausalKey& key) const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = bindings_.find(key);
  return it == bindings_.end() ? 0 : it->second;
}

std::vector<Event> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_id_ - 1;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  bindings_.clear();
  binding_order_.clear();
  dropped_ = 0;
  next_id_ = 1;  // run-local ids: a cleared tracer starts a fresh run
}

}  // namespace mermaid::trace
