// Bounds-checked wire format reader/writer.
//
// All protocol headers in the net and dsm modules are serialized through
// these classes in network (big-endian) byte order. Page payloads are
// appended as raw byte spans; their interpretation is the job of the arch
// conversion layer, mirroring the paper's observation that "data marshaling
// and unmarshaling are not needed" for page contents.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mermaid::base {

class WireWriter {
 public:
  WireWriter() = default;

  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  // Length-prefixed byte blob (u32 length).
  void Bytes(std::span<const std::uint8_t> data);
  // Raw bytes, no length prefix; reader must know the size.
  void Raw(std::span<const std::uint8_t> data);
  void Str(const std::string& s);

  std::vector<std::uint8_t> Take() && { return std::move(buf_); }
  std::span<const std::uint8_t> View() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reader over a borrowed byte span. Reads past the end set the error flag
// and return zero values; callers check ok() once after parsing a message
// rather than after every field (malformed datagrams are dropped, matching
// a datagram protocol's tolerance for garbage).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  std::vector<std::uint8_t> Bytes();
  // Returns a view of `n` raw bytes (no copy), or an empty span on underrun.
  std::span<const std::uint8_t> Raw(std::size_t n);
  std::string Str();

  // All remaining unread bytes.
  std::span<const std::uint8_t> Rest();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mermaid::base
