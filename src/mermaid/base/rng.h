// Deterministic pseudo-random number generation.
//
// Everything random in the system — network jitter, loss injection, workload
// generation, property-test inputs — flows from this splitmix64-seeded
// xoshiro256** generator so that a (seed) pair reproduces a run exactly.
// std::mt19937 is avoided because its distributions are not specified
// bit-exactly across standard library implementations.
#pragma once

#include <cstdint>

namespace mermaid::base {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t NextU64();

  // Uniform over [0, bound) via rejection sampling; bound must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  std::int64_t NextRange(std::int64_t lo, std::int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Splits off an independently-seeded child generator; used to give each
  // simulated host its own stream without cross-coupling.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace mermaid::base
