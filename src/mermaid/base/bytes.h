// Byte-order primitives.
//
// The DSM memory images are representation-faithful: a big-endian host's
// image stores big-endian bytes. These helpers load/store fixed-width
// integers in an explicit byte order regardless of the build machine's
// native order, and perform the byte swapping the Mermaid conversion
// routines are built from.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace mermaid::base {

enum class ByteOrder : std::uint8_t { kLittle, kBig };

constexpr ByteOrder NativeOrder() {
  return std::endian::native == std::endian::little ? ByteOrder::kLittle
                                                    : ByteOrder::kBig;
}

constexpr std::uint16_t ByteSwap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

constexpr std::uint32_t ByteSwap32(std::uint32_t v) {
  return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
}

constexpr std::uint64_t ByteSwap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(ByteSwap32(static_cast<std::uint32_t>(v)))
          << 32) |
         ByteSwap32(static_cast<std::uint32_t>(v >> 32));
}

template <typename T>
constexpr T ByteSwap(T v) {
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                sizeof(T) == 8);
  if constexpr (sizeof(T) == 1) {
    return v;
  } else if constexpr (sizeof(T) == 2) {
    auto u = std::bit_cast<std::uint16_t>(v);
    return std::bit_cast<T>(ByteSwap16(u));
  } else if constexpr (sizeof(T) == 4) {
    auto u = std::bit_cast<std::uint32_t>(v);
    return std::bit_cast<T>(ByteSwap32(u));
  } else {
    auto u = std::bit_cast<std::uint64_t>(v);
    return std::bit_cast<T>(ByteSwap64(u));
  }
}

// Loads a T stored at `p` in byte order `order`.
template <typename T>
T LoadAs(const void* p, ByteOrder order) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  if (order != NativeOrder()) v = ByteSwap(v);
  return v;
}

// Stores `v` at `p` in byte order `order`.
template <typename T>
void StoreAs(void* p, T v, ByteOrder order) {
  if (order != NativeOrder()) v = ByteSwap(v);
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace mermaid::base
