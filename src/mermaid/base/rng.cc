#include "mermaid/base/rng.h"

#include "mermaid/base/check.h"

namespace mermaid::base {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::NextU64() {
  // xoshiro256**
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  MERMAID_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextRange(std::int64_t lo, std::int64_t hi) {
  MERMAID_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace mermaid::base
