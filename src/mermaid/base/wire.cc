#include "mermaid/base/wire.h"

#include <cstring>

#include "mermaid/base/buffer.h"
#include "mermaid/base/bytes.h"

namespace mermaid::base {

namespace {

template <typename T>
void Append(std::vector<std::uint8_t>& buf, T v) {
  std::uint8_t tmp[sizeof(T)];
  StoreAs(tmp, v, ByteOrder::kBig);
  buf.insert(buf.end(), tmp, tmp + sizeof(T));
}

}  // namespace

void WireWriter::U8(std::uint8_t v) { buf_.push_back(v); }
void WireWriter::U16(std::uint16_t v) { Append(buf_, v); }
void WireWriter::U32(std::uint32_t v) { Append(buf_, v); }
void WireWriter::U64(std::uint64_t v) { Append(buf_, v); }
void WireWriter::I64(std::int64_t v) {
  Append(buf_, static_cast<std::uint64_t>(v));
}

void WireWriter::Bytes(std::span<const std::uint8_t> data) {
  U32(static_cast<std::uint32_t>(data.size()));
  Raw(data);
}

void WireWriter::Raw(std::span<const std::uint8_t> data) {
  BulkCopyRecord(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::Need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t WireReader::U16() {
  if (!Need(2)) return 0;
  auto v = LoadAs<std::uint16_t>(data_.data() + pos_, ByteOrder::kBig);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  auto v = LoadAs<std::uint32_t>(data_.data() + pos_, ByteOrder::kBig);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  auto v = LoadAs<std::uint64_t>(data_.data() + pos_, ByteOrder::kBig);
  pos_ += 8;
  return v;
}

std::int64_t WireReader::I64() { return static_cast<std::int64_t>(U64()); }

std::vector<std::uint8_t> WireReader::Bytes() {
  std::uint32_t n = U32();
  auto view = Raw(n);
  return std::vector<std::uint8_t>(view.begin(), view.end());
}

std::span<const std::uint8_t> WireReader::Raw(std::size_t n) {
  if (!Need(n)) return {};
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::string WireReader::Str() {
  std::uint32_t n = U32();
  auto view = Raw(n);
  return std::string(view.begin(), view.end());
}

std::span<const std::uint8_t> WireReader::Rest() {
  auto view = data_.subspan(pos_);
  pos_ = data_.size();
  return view;
}

}  // namespace mermaid::base
