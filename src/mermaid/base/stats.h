// Event counters and value distributions.
//
// The DSM engine, network, and conversion layers record what happened
// (faults, transfers, bytes, conversions) into a StatsRegistry; the
// benchmark harnesses read these to report the paper's tables and to detect
// thrashing (page-transfer explosions).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mermaid::base {

// Min/max/mean/count accumulator for a stream of samples.
class Distribution {
 public:
  void Add(double v);
  // Combines another distribution into this one; count/sum/min/max stay exact.
  void Merge(const Distribution& other);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Named counters and distributions. Mutations are internally locked so
// concurrent processes under the real-time runtime can share a registry;
// under the virtual-time engine the lock is never contended.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void Inc(const std::string& name, std::int64_t delta = 1);
  void Sample(const std::string& name, double value);

  std::int64_t Count(const std::string& name) const;
  // Returns a snapshot (the live distribution can change concurrently).
  Distribution DistCopy(const std::string& name) const;

  // Snapshots of the full maps, for reporting.
  std::map<std::string, std::int64_t> Counters() const;
  std::map<std::string, Distribution> Dists() const;

  void Clear();
  // Adds every counter and sample of `other` into this registry.
  void Merge(const StatsRegistry& other);

  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Distribution> dists_;
};

}  // namespace mermaid::base
