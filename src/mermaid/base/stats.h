// Event counters and value distributions.
//
// The DSM engine, network, and conversion layers record what happened
// (faults, transfers, bytes, conversions) into a StatsRegistry; the
// benchmark harnesses read these to report the paper's tables and to detect
// thrashing (page-transfer explosions).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mermaid::base {

// Min/max/mean/count accumulator for a stream of samples.
class Distribution {
 public:
  void Add(double v);
  // Combines another distribution into this one; count/sum/min/max stay exact.
  void Merge(const Distribution& other);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Latency histogram with half-octave (x sqrt(2)) log-scaled buckets.
// Bucket 0 holds values <= 0; bucket b (1..63) covers
// [2^((b-22)/2), 2^((b-21)/2)), so 1.0 lands in bucket 22 and the range
// spans roughly 7e-4 .. 2e6 in whatever unit the caller samples (ms for
// the protocol latencies, a raw count for fan-outs). Percentiles are
// estimated by the bucket's geometric midpoint, clamped to observed
// min/max — half-octave resolution keeps the estimate within ~20%.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Add(double v);
  void Merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // p in [0, 100]; returns 0 when empty.
  double Percentile(double p) const;
  const std::array<std::int64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  static int BucketOf(double v);
  static double BucketLow(int b);
  static double BucketHigh(int b);

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Named counters and distributions. Mutations are internally locked so
// concurrent processes under the real-time runtime can share a registry;
// under the virtual-time engine the lock is never contended.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void Inc(const std::string& name, std::int64_t delta = 1);
  void Sample(const std::string& name, double value);
  void Hist(const std::string& name, double value);

  std::int64_t Count(const std::string& name) const;
  // Returns a snapshot (the live distribution can change concurrently).
  Distribution DistCopy(const std::string& name) const;
  Histogram HistCopy(const std::string& name) const;

  // Snapshots of the full maps, for reporting. Always name-sorted (the
  // internal storage is hashed for hot-path speed; sorting happens only
  // here), so report text and merge order are independent of hash layout.
  std::map<std::string, std::int64_t> Counters() const;
  std::map<std::string, Distribution> Dists() const;
  std::map<std::string, Histogram> Hists() const;

  // Drops all counters, samples, and histograms and starts a new epoch.
  // Repeated runs in one process must call this (via System::ResetStats)
  // between runs, or the second run reports cumulative numbers.
  void Clear();
  std::uint64_t epoch() const;

  // Non-destructive epoch: snapshots current counter totals as a baseline
  // so CountSinceEpoch reports run-local deltas without losing history.
  void BeginEpoch();
  std::int64_t CountSinceEpoch(const std::string& name) const;
  std::map<std::string, std::int64_t> CountersSinceEpoch() const;

  // Adds every counter, sample, and histogram of `other` into this one.
  void Merge(const StatsRegistry& other);

  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  // Hashed, not ordered: Inc/Sample/Hist are on the per-message hot path
  // (several lookups per simulated packet). Every external view sorts.
  std::unordered_map<std::string, std::int64_t> counters_;
  std::unordered_map<std::string, std::int64_t> epoch_base_;
  std::unordered_map<std::string, Distribution> dists_;
  std::unordered_map<std::string, Histogram> hists_;
};

}  // namespace mermaid::base
