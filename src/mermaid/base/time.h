// Simulation time types.
//
// All protocol and cost-model code expresses time as SimTime / SimDuration,
// signed 64-bit nanosecond counts. The virtual-time engine and the real-time
// binding both speak these types, so the DSM stack is agnostic to which
// clock is driving it.
#pragma once

#include <cstdint>

namespace mermaid {

// A duration in nanoseconds. Plain integer type-alias: durations are
// pervasive in the cost model and arithmetic on them should read like
// arithmetic.
using SimDuration = std::int64_t;

// An absolute point on the (virtual or real) timeline, ns since epoch 0.
using SimTime = std::int64_t;

constexpr SimDuration Nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration Microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration Milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration Seconds(std::int64_t s) { return s * 1'000'000'000; }

// Fractional constructors used by the calibration tables.
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}
constexpr SimDuration MicrosecondsF(double us) {
  return static_cast<SimDuration>(us * 1e3);
}

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

}  // namespace mermaid
