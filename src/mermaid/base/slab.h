// Slab allocation for the simulator hot path.
//
// A Slab hands out fixed-size blocks from chunked arenas through an
// intrusive free list: Alloc/Free are a pointer pop/push, freed blocks are
// recycled without touching the system allocator, and the chunks themselves
// are only released when the Slab dies. SlabPool layers power-of-two size
// classes on top for variably sized records (channel items) and falls back
// to operator new above the largest class.
//
// Neither type is thread-safe; callers that can race (the engine's channel
// item path) wrap a Slab in their own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mermaid::base {

class Slab {
 public:
  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t live = 0;        // allocs - frees
    std::uint64_t high_water = 0;  // max simultaneous live blocks
    std::uint64_t chunks = 0;
    std::uint64_t bytes_reserved = 0;  // total arena bytes held

    void Accumulate(const Stats& o) {
      allocs += o.allocs;
      frees += o.frees;
      live += o.live;
      high_water += o.high_water;
      chunks += o.chunks;
      bytes_reserved += o.bytes_reserved;
    }
  };

  explicit Slab(std::size_t block_bytes, std::size_t blocks_per_chunk = 256);

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  void* Alloc();
  void Free(void* p);

  std::size_t block_bytes() const { return block_; }
  const Stats& stats() const { return st_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  void Refill();

  std::size_t block_;
  std::size_t per_chunk_;
  FreeNode* free_ = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  Stats st_;
};

class SlabPool {
 public:
  SlabPool() = default;

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Blocks above kMaxBlock bypass the pool (counted as fallback allocs).
  static constexpr std::size_t kMinBlock = 16;
  static constexpr std::size_t kMaxBlock = 4096;

  void* Alloc(std::size_t bytes);
  void Free(void* p, std::size_t bytes);

  // Sum over all size classes; `allocs` includes fallbacks.
  struct Totals : Slab::Stats {
    std::uint64_t fallback_allocs = 0;
  };
  Totals totals() const;

 private:
  static int ClassOf(std::size_t bytes);

  std::vector<std::unique_ptr<Slab>> classes_;
  std::uint64_t fallback_allocs_ = 0;
  std::uint64_t fallback_frees_ = 0;
};

}  // namespace mermaid::base
