#include "mermaid/base/slab.h"

#include <bit>

#include "mermaid/base/check.h"

namespace mermaid::base {

namespace {
// Every block must hold a FreeNode and keep 16-byte alignment so slabbed
// objects (which may contain long doubles or vector registers saved by
// ucontext) are as aligned as operator new would make them.
constexpr std::size_t kBlockAlign = 16;

std::size_t RoundBlock(std::size_t bytes) {
  if (bytes < sizeof(void*)) bytes = sizeof(void*);
  return (bytes + kBlockAlign - 1) & ~(kBlockAlign - 1);
}
}  // namespace

Slab::Slab(std::size_t block_bytes, std::size_t blocks_per_chunk)
    : block_(RoundBlock(block_bytes)), per_chunk_(blocks_per_chunk) {
  MERMAID_CHECK(per_chunk_ > 0);
}

void Slab::Refill() {
  auto chunk = std::make_unique<std::byte[]>(block_ * per_chunk_);
  std::byte* base = chunk.get();
  // operator new[] aligns to max_align_t and block_ is a multiple of 16, so
  // every block in the chunk is 16-byte aligned.
  for (std::size_t i = per_chunk_; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * block_);
    node->next = free_;
    free_ = node;
  }
  chunks_.push_back(std::move(chunk));
  ++st_.chunks;
  st_.bytes_reserved += block_ * per_chunk_;
}

void* Slab::Alloc() {
  if (free_ == nullptr) Refill();
  FreeNode* node = free_;
  free_ = node->next;
  ++st_.allocs;
  if (++st_.live > st_.high_water) st_.high_water = st_.live;
  return node;
}

void Slab::Free(void* p) {
  MERMAID_CHECK(p != nullptr);
  auto* node = static_cast<FreeNode*>(p);
  node->next = free_;
  free_ = node;
  ++st_.frees;
  --st_.live;
}

int SlabPool::ClassOf(std::size_t bytes) {
  if (bytes > kMaxBlock) return -1;
  if (bytes < kMinBlock) bytes = kMinBlock;
  const auto width = std::bit_width(bytes - 1);  // ceil(log2(bytes))
  return static_cast<int>(width) - 4;            // class 0 == 16 bytes
}

void* SlabPool::Alloc(std::size_t bytes) {
  const int cls = ClassOf(bytes);
  if (cls < 0) {
    ++fallback_allocs_;
    return ::operator new(bytes);
  }
  if (classes_.size() <= static_cast<std::size_t>(cls)) {
    classes_.resize(static_cast<std::size_t>(cls) + 1);
  }
  auto& slab = classes_[static_cast<std::size_t>(cls)];
  if (!slab) {
    slab = std::make_unique<Slab>(std::size_t{1} << (cls + 4));
  }
  return slab->Alloc();
}

void SlabPool::Free(void* p, std::size_t bytes) {
  const int cls = ClassOf(bytes);
  if (cls < 0) {
    ++fallback_frees_;
    ::operator delete(p);
    return;
  }
  classes_[static_cast<std::size_t>(cls)]->Free(p);
}

SlabPool::Totals SlabPool::totals() const {
  Totals t;
  for (const auto& slab : classes_) {
    if (slab) t.Accumulate(slab->stats());
  }
  t.fallback_allocs = fallback_allocs_;
  t.allocs += fallback_allocs_;
  t.frees += fallback_frees_;
  t.live += fallback_allocs_ - fallback_frees_;
  return t;
}

}  // namespace mermaid::base
