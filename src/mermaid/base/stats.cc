#include "mermaid/base/stats.h"

#include <sstream>

namespace mermaid::base {

void Distribution::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

void Distribution::Merge(const Distribution& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void StatsRegistry::Inc(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += delta;
}

void StatsRegistry::Sample(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  dists_[name].Add(value);
}

std::int64_t StatsRegistry::Count(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Distribution StatsRegistry::DistCopy(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = dists_.find(name);
  return it == dists_.end() ? Distribution{} : it->second;
}

std::map<std::string, std::int64_t> StatsRegistry::Counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::map<std::string, Distribution> StatsRegistry::Dists() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dists_;
}

void StatsRegistry::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  dists_.clear();
}

void StatsRegistry::Merge(const StatsRegistry& other) {
  auto counters = other.Counters();
  auto dists = other.Dists();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, d] : dists) dists_[name].Merge(d);
}

std::string StatsRegistry::ToString() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const auto& [name, v] : counters_) os << name << ": " << v << "\n";
  for (const auto& [name, d] : dists_) {
    os << name << ": count=" << d.count() << " mean=" << d.mean()
       << " min=" << d.min() << " max=" << d.max() << "\n";
  }
  return os.str();
}

}  // namespace mermaid::base
