#include "mermaid/base/stats.h"

#include <cmath>
#include <sstream>

namespace mermaid::base {

void Distribution::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

void Distribution::Merge(const Distribution& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

int Histogram::BucketOf(double v) {
  if (v <= 0.0 || !std::isfinite(v)) return 0;
  // Two buckets per octave: floor(2*log2(v)) shifted so 1.0 -> bucket 22.
  const int idx = 22 + static_cast<int>(std::floor(2.0 * std::log2(v)));
  if (idx < 1) return 1;
  if (idx >= kBuckets) return kBuckets - 1;
  return idx;
}

double Histogram::BucketLow(int b) {
  if (b <= 0) return 0.0;
  return std::exp2((b - 22) / 2.0);
}

double Histogram::BucketHigh(int b) {
  if (b <= 0) return 0.0;
  return std::exp2((b - 21) / 2.0);
}

void Histogram::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[static_cast<std::size_t>(BucketOf(v))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) > rank) {
      if (b == 0) return min_ < 0.0 ? min_ : 0.0;
      // Geometric midpoint of the bucket, clamped to observed extremes.
      double est = std::sqrt(BucketLow(b) * BucketHigh(b));
      if (est < min_) est = min_;
      if (est > max_) est = max_;
      return est;
    }
  }
  return max_;
}

void StatsRegistry::Inc(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += delta;
}

void StatsRegistry::Sample(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  dists_[name].Add(value);
}

void StatsRegistry::Hist(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  hists_[name].Add(value);
}

std::int64_t StatsRegistry::Count(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Distribution StatsRegistry::DistCopy(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = dists_.find(name);
  return it == dists_.end() ? Distribution{} : it->second;
}

std::map<std::string, std::int64_t> StatsRegistry::Counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, Distribution> StatsRegistry::Dists() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {dists_.begin(), dists_.end()};
}

Histogram StatsRegistry::HistCopy(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = hists_.find(name);
  return it == hists_.end() ? Histogram{} : it->second;
}

std::map<std::string, Histogram> StatsRegistry::Hists() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {hists_.begin(), hists_.end()};
}

void StatsRegistry::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  dists_.clear();
  hists_.clear();
  epoch_base_.clear();
  ++epoch_;
}

std::uint64_t StatsRegistry::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

void StatsRegistry::BeginEpoch() {
  std::lock_guard<std::mutex> lk(mu_);
  epoch_base_ = counters_;
  ++epoch_;
}

std::int64_t StatsRegistry::CountSinceEpoch(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  const std::int64_t total = it == counters_.end() ? 0 : it->second;
  auto base = epoch_base_.find(name);
  return total - (base == epoch_base_.end() ? 0 : base->second);
}

std::map<std::string, std::int64_t> StatsRegistry::CountersSinceEpoch()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, std::int64_t> out(counters_.begin(), counters_.end());
  for (const auto& [name, base] : epoch_base_) {
    auto it = out.find(name);
    if (it != out.end()) {
      it->second -= base;
      if (it->second == 0) out.erase(it);
    }
  }
  return out;
}

void StatsRegistry::Merge(const StatsRegistry& other) {
  auto counters = other.Counters();
  auto dists = other.Dists();
  auto hists = other.Hists();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, d] : dists) dists_[name].Merge(d);
  for (const auto& [name, h] : hists) hists_[name].Merge(h);
}

std::string StatsRegistry::ToString() const {
  // Via the sorted snapshots: output order must not depend on hash layout.
  const auto counters = Counters();
  const auto dists = Dists();
  const auto hists = Hists();
  std::ostringstream os;
  for (const auto& [name, v] : counters) os << name << ": " << v << "\n";
  for (const auto& [name, d] : dists) {
    os << name << ": count=" << d.count() << " mean=" << d.mean()
       << " min=" << d.min() << " max=" << d.max() << "\n";
  }
  for (const auto& [name, h] : hists) {
    os << name << ": count=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.Percentile(50) << " p90=" << h.Percentile(90)
       << " p99=" << h.Percentile(99) << " max=" << h.max() << "\n";
  }
  return os.str();
}

}  // namespace mermaid::base
