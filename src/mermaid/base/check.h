// Lightweight always-on invariant checking.
//
// MERMAID_CHECK is used for internal invariants of the DSM engine (e.g. the
// single-writer invariant). Violations indicate a protocol bug, never a user
// error, so they abort with a diagnostic rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mermaid::base {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "MERMAID_CHECK failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace mermaid::base

#define MERMAID_CHECK(expr)                                  \
  do {                                                       \
    if (!(expr)) {                                           \
      ::mermaid::base::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                        \
  } while (false)

#define MERMAID_CHECK_MSG(expr, msg)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "note: %s\n", (msg));                            \
      ::mermaid::base::CheckFailed(#expr, __FILE__, __LINE__);              \
    }                                                                       \
  } while (false)
