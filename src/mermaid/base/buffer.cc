#include "mermaid/base/buffer.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace mermaid::base {

namespace {

std::atomic<std::uint64_t> g_bulk_copies{0};
std::atomic<std::uint64_t> g_bulk_bytes{0};

}  // namespace

void BulkCopyRecord(std::size_t bytes) {
  if (bytes < kBulkCopyThreshold) return;
  g_bulk_copies.fetch_add(1, std::memory_order_relaxed);
  g_bulk_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t BulkCopyCount() {
  return g_bulk_copies.load(std::memory_order_relaxed);
}

std::uint64_t BulkCopyBytes() {
  return g_bulk_bytes.load(std::memory_order_relaxed);
}

void BulkCopyReset() {
  g_bulk_copies.store(0, std::memory_order_relaxed);
  g_bulk_bytes.store(0, std::memory_order_relaxed);
}

Buffer Buffer::CopyOf(std::span<const std::uint8_t> data) {
  BulkCopyRecord(data.size());
  return Buffer(std::vector<std::uint8_t>(data.begin(), data.end()));
}

Buffer Buffer::Slice(std::size_t off, std::size_t len) const {
  Buffer out;
  if (off >= len_) return out;
  out.storage_ = storage_;
  out.off_ = off_ + off;
  out.len_ = std::min(len, len_ - off);
  return out;
}

void BufferChain::Append(Buffer b) {
  if (b.empty()) return;
  size_ += b.size();
  chunks_.push_back(std::move(b));
}

void BufferChain::Append(BufferChain other) {
  for (auto& c : other.chunks_) Append(std::move(c));
}

std::uint8_t BufferChain::operator[](std::size_t i) const {
  for (const auto& c : chunks_) {
    if (i < c.size()) return c[i];
    i -= c.size();
  }
  return 0;
}

BufferChain BufferChain::Slice(std::size_t off, std::size_t len) const {
  BufferChain out;
  if (off >= size_) return out;
  len = std::min(len, size_ - off);
  for (const auto& c : chunks_) {
    if (len == 0) break;
    if (off >= c.size()) {
      off -= c.size();
      continue;
    }
    const std::size_t take = std::min(len, c.size() - off);
    out.Append(c.Slice(off, take));
    off = 0;
    len -= take;
  }
  return out;
}

std::size_t BufferChain::CopyTo(std::span<std::uint8_t> out) const {
  std::size_t pos = 0;
  for (const auto& c : chunks_) {
    std::memcpy(out.data() + pos, c.data(), c.size());
    pos += c.size();
  }
  BulkCopyRecord(pos);
  return pos;
}

std::vector<std::uint8_t> BufferChain::ToVector() const {
  std::vector<std::uint8_t> out(size_);
  std::size_t pos = 0;
  for (const auto& c : chunks_) {
    std::memcpy(out.data() + pos, c.data(), c.size());
    pos += c.size();
  }
  BulkCopyRecord(pos);
  return out;
}

Buffer BufferChain::Flatten() const {
  if (chunks_.size() == 1) return chunks_[0];
  return Buffer(ToVector());
}

bool operator==(const BufferChain& a, const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) return false;
  std::size_t pos = 0;
  for (const auto& c : a.chunks_) {
    if (std::memcmp(c.data(), b.data() + pos, c.size()) != 0) return false;
    pos += c.size();
  }
  return true;
}

}  // namespace mermaid::base
