// Immutable, ref-counted byte buffers for the zero-copy data path.
//
// A Buffer is a (shared storage, offset, length) view: slicing and copying
// Buffer values shares the underlying bytes, so a page payload produced once
// by the owner can travel through reqrep framing, fragmentation, the network,
// and reassembly without being duplicated. A BufferChain is an ordered list
// of Buffer chunks — the natural result of prepending small protocol headers
// to a large payload, or of reassembling a message from fragments — and is
// consumed either by scatter-copying into destination memory (CopyTo) or by
// flattening when contiguity is genuinely required.
//
// Bulk-copy accounting: every routine here that physically duplicates bytes
// (and WireWriter::Raw) reports copies of kBulkCopyThreshold bytes or more
// to a global counter. Tests use BulkCopyReset()/BulkCopyCount() to assert
// how many times a page payload is copied end-to-end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mermaid::base {

// Copies of at least this many bytes count toward the bulk-copy counters.
// Protocol headers (tens of bytes) stay below it; page payloads are far
// above it.
inline constexpr std::size_t kBulkCopyThreshold = 256;

// Records one physical copy of `bytes` bytes (no-op below the threshold).
void BulkCopyRecord(std::size_t bytes);
// Number of bulk copies since the last reset.
std::uint64_t BulkCopyCount();
// Total bytes moved by bulk copies since the last reset.
std::uint64_t BulkCopyBytes();
void BulkCopyReset();

// An immutable view of shared byte storage. Copying a Buffer or taking a
// Slice is O(1) and never duplicates the bytes.
class Buffer {
 public:
  Buffer() = default;

  // Takes ownership of the vector's storage without copying.
  Buffer(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : storage_(std::make_shared<const std::vector<std::uint8_t>>(
            std::move(bytes))),
        off_(0),
        len_(storage_->size()) {}

  // Physically copies `data` into fresh shared storage (counted).
  static Buffer CopyOf(std::span<const std::uint8_t> data);

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const std::uint8_t* data() const {
    return storage_ ? storage_->data() + off_ : nullptr;
  }
  std::span<const std::uint8_t> span() const { return {data(), len_}; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  // Sub-view sharing the same storage. Clamped to the buffer's bounds.
  Buffer Slice(std::size_t off,
               std::size_t len = static_cast<std::size_t>(-1)) const;

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> storage_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

// An ordered sequence of Buffer chunks treated as one logical byte string.
class BufferChain {
 public:
  BufferChain() = default;
  BufferChain(Buffer b) {  // NOLINT: implicit by design
    Append(std::move(b));
  }
  BufferChain(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : BufferChain(Buffer(std::move(bytes))) {}

  void Append(Buffer b);
  void Append(BufferChain other);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t chunk_count() const { return chunks_.size(); }
  const Buffer& chunk(std::size_t i) const { return chunks_[i]; }

  // Byte at logical offset `i` (walks the chunk list; for tests/small data).
  std::uint8_t operator[](std::size_t i) const;

  // Logical sub-range [off, off+len) as a chain of shared slices (no copy).
  BufferChain Slice(std::size_t off,
                    std::size_t len = static_cast<std::size_t>(-1)) const;

  // Scatter-copies the whole chain into `out` (counted). `out.size()` must
  // be >= size(); returns the number of bytes written.
  std::size_t CopyTo(std::span<std::uint8_t> out) const;

  // Contiguous copies (counted, except the single-chunk Flatten fast path).
  std::vector<std::uint8_t> ToVector() const;
  // Returns the single chunk unchanged when the chain is already contiguous;
  // otherwise concatenates into one freshly allocated Buffer (counted).
  Buffer Flatten() const;

  friend bool operator==(const BufferChain& a,
                         const std::vector<std::uint8_t>& b);
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const BufferChain& b) {
    return b == a;
  }

 private:
  std::vector<Buffer> chunks_;
  std::size_t size_ = 0;
};

}  // namespace mermaid::base
