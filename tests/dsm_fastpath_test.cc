// Correctness tests for the opt-in protocol fast paths: probable-owner
// hints, batched group fetch, and coalesced invalidation. Every test runs
// with the coherence referee checking typed accesses, so a fast path that
// served stale data or skipped an invalidation fails loudly, not silently.
#include <cstdint>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

const arch::ArchProfile& Sun() { return arch::Sun3Profile(); }
const arch::ArchProfile& Ffly() { return arch::FireflyProfile(); }

SystemConfig FastPathConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.referee_check_access = true;
  cfg.probable_owner = true;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  return cfg;
}

void ExpectQuiescent(System& sys) {
  const auto q = sys.CheckQuiescent();
  EXPECT_EQ(q.busy_entries, 0u);
  EXPECT_EQ(q.pending_transfers, 0u);
}

// Confirms are fire-and-forget notifies; one still in flight when the last
// app thread exits is dropped at engine shutdown and leaves a manager entry
// busy. Each test ends with this two-leg sync ring after its final fault so
// the engine outlives every notify. The host that faulted last calls
// Drain(...), one peer calls DrainPeer(...).
constexpr std::uint32_t kDrainA = 97, kDrainB = 98;
void Drain(System& sys, std::uint16_t h) {
  sys.sync(h).EventSet(kDrainA);
  sys.sync(h).EventWait(kDrainB);
}
void DrainPeer(System& sys, std::uint16_t h) {
  sys.sync(h).EventWait(kDrainA);
  sys.sync(h).EventSet(kDrainB);
}

// A repeat read fault on a page whose owner has not moved goes straight to
// the hinted owner: 2 hops instead of the 3-hop requester->manager->owner
// chain. Page 1 is managed by host 1, so host 0's faults take the
// remote-manager path where hints apply.
TEST(DsmFastPath, HintHitServesRepeatReadFaultInTwoHops) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.group_fetch = false;
  cfg.coalesced_invalidation = false;
  System sys(eng, cfg, {&Sun(), &Sun(), &Sun()});
  sys.Start();
  const GlobalAddr a = sys.page_bytes();  // page 1, managed by host 1
  sys.SpawnThread(2, "writer", [&](Host& h) {
    sys.Alloc(2, Reg::kInt, 3 * sys.page_bytes() / 4);
    h.Write<std::int32_t>(a, 100);  // host 2 becomes owner of page 1
    sys.sync(2).EventSet(1);
    sys.sync(2).EventWait(2);
    h.Write<std::int32_t>(a, 200);  // invalidates host 0's copy
    sys.sync(2).EventSet(3);
    DrainPeer(sys, 2);
  });
  sys.SpawnThread(0, "reader", [&](Host& h) {
    sys.sync(0).EventWait(1);
    // First fault: manager path (3 hops), learns hint = host 2.
    EXPECT_EQ(h.Read<std::int32_t>(a), 100);
    sys.sync(0).EventSet(2);
    sys.sync(0).EventWait(3);
    // Repeat fault: hinted fetch straight to host 2 (2 hops).
    EXPECT_EQ(h.Read<std::int32_t>(a), 200);
    Drain(sys, 0);
  });
  eng.Run();
  EXPECT_EQ(sys.host(0).stats().Count("dsm.hint_fetches"), 1);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.hint_hits"), 1);
  EXPECT_EQ(sys.host(2).stats().Count("dsm.hint_serves"), 1);
  const auto hops = sys.host(0).stats().HistCopy("dsm.vm_fault_hops");
  EXPECT_EQ(hops.count(), 2);
  EXPECT_EQ(hops.min(), 2.0);  // the hinted fault
  EXPECT_EQ(hops.max(), 3.0);  // the initial forwarded fault
  ExpectQuiescent(sys);
}

// Ownership moves without the hint holder hearing about it (it held no copy
// when the new writer invalidated). The stale hint costs one redirect
// through the manager — never wrong data.
TEST(DsmFastPath, StaleHintFallsBackThroughManager) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.group_fetch = false;
  cfg.coalesced_invalidation = false;
  System sys(eng, cfg, {&Sun(), &Sun(), &Sun()});
  sys.Start();
  const GlobalAddr a = sys.page_bytes();  // page 1, managed by host 1
  sys.SpawnThread(2, "first-owner", [&](Host& h) {
    sys.Alloc(2, Reg::kInt, 3 * sys.page_bytes() / 4);
    h.Write<std::int32_t>(a, 11);
    sys.sync(2).EventSet(1);
    sys.sync(2).EventWait(2);
    // Invalidate host 0's copy; host 0's hint stays "host 2".
    h.Write<std::int32_t>(a, 22);
    sys.sync(2).EventSet(3);
    DrainPeer(sys, 2);
  });
  sys.SpawnThread(1, "second-owner", [&](Host& h) {
    sys.sync(1).EventWait(3);
    // Takes ownership from host 2. Host 0 holds no copy, so it gets no
    // invalidation and keeps the now-stale hint.
    h.Write<std::int32_t>(a, 33);
    sys.sync(1).EventSet(4);
  });
  sys.SpawnThread(0, "reader", [&](Host& h) {
    sys.sync(0).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(a), 11);  // learns hint = host 2
    sys.sync(0).EventSet(2);
    sys.sync(0).EventWait(4);
    // Hinted fetch to host 2 finds it no longer owns; falls back through
    // the manager and still returns the current value.
    EXPECT_EQ(h.Read<std::int32_t>(a), 33);
    Drain(sys, 0);
  });
  eng.Run();
  EXPECT_GE(sys.host(0).stats().Count("dsm.hint_stale_replies"), 1);
  EXPECT_GE(sys.host(2).stats().Count("dsm.hint_stale"), 1);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.hint_hits"), 0);
  ExpectQuiescent(sys);
}

// After a hint-served read the manager may not yet have the reader in the
// copyset (the confirm is an async notify). A subsequent write must still
// invalidate that reader — via the copyset or the owner's hinted-pending
// set — so the next read observes the new value.
TEST(DsmFastPath, HintedReaderIsInvalidatedByLaterWrite) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.group_fetch = false;
  cfg.coalesced_invalidation = false;
  System sys(eng, cfg, {&Sun(), &Sun(), &Sun()});
  sys.Start();
  const GlobalAddr a = sys.page_bytes();  // page 1, managed by host 1
  sys.SpawnThread(2, "writer", [&](Host& h) {
    sys.Alloc(2, Reg::kInt, 3 * sys.page_bytes() / 4);
    for (int round = 0; round < 4; ++round) {
      h.Write<std::int32_t>(a, 1000 + round);
      sys.sync(2).EventSet(2 * round + 1);
      sys.sync(2).EventWait(2 * round + 2);
    }
    DrainPeer(sys, 2);
  });
  sys.SpawnThread(0, "reader", [&](Host& h) {
    for (int round = 0; round < 4; ++round) {
      sys.sync(0).EventWait(2 * round + 1);
      // Rounds after the first are served off the hint; every round must
      // see the freshly written value.
      EXPECT_EQ(h.Read<std::int32_t>(a), 1000 + round);
      sys.sync(0).EventSet(2 * round + 2);
    }
    Drain(sys, 0);
  });
  eng.Run();
  EXPECT_GE(sys.host(0).stats().Count("dsm.hint_hits"), 2);
  EXPECT_GE(sys.host(2).stats().Count("dsm.hint_serves"), 2);
  ExpectQuiescent(sys);
}

// Under the smallest-page-size algorithm a Sun (8 KB VM page) fault spans
// eight 1 KB DSM pages. With group fetch on, the whole span is satisfied in
// one round trip to the single remote host, not eight.
TEST(DsmFastPath, GroupFetchSatisfiesSunFaultInOneRoundTrip) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.probable_owner = false;
  cfg.coalesced_invalidation = false;
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&Sun(), &Ffly()});
  sys.Start();
  constexpr int kInts = 2048;  // 8 KB: one Sun VM fault, eight DSM pages
  sys.SpawnThread(1, "ffly-writer", [&](Host& h) {
    GlobalAddr a = sys.Alloc(1, Reg::kInt, kInts);
    for (int i = 0; i < kInts; ++i) {
      h.Write<std::int32_t>(a + 4 * i, 7 * i - 9);
    }
    sys.sync(1).EventSet(1);
    DrainPeer(sys, 1);
  });
  sys.SpawnThread(0, "sun-reader", [&](Host& h) {
    sys.sync(0).EventWait(1);
    for (int i = 0; i < kInts; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), 7 * i - 9) << i;
    }
    Drain(sys, 0);
  });
  eng.Run();
  // The reader took exactly one VM fault, served by one group-fetch call.
  EXPECT_EQ(sys.host(0).stats().Count("dsm.vm_faults"), 1);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.group_fetches"), 1);
  EXPECT_GE(sys.host(1).stats().Count("dsm.group_serves"), 1);
  const auto rtts = sys.host(0).stats().HistCopy("dsm.vm_fault_rtts");
  EXPECT_EQ(rtts.count(), 1);
  EXPECT_EQ(rtts.max(), 1.0);
  // Conversion still ran: the Firefly owner re-encoded for the Sun reader.
  EXPECT_GT(sys.host(1).stats().Count("dsm.conversions"), 0);
  ExpectQuiescent(sys);
}

// When every page a manager is asked about is owned by the same third host,
// the manager forwards the whole group there and the owner replies directly
// to the requester — one extra hop for the batch, not per page.
TEST(DsmFastPath, GroupFetchForwardsWholeGroupToCommonOwner) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.probable_owner = false;
  cfg.coalesced_invalidation = false;
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&Sun(), &Ffly(), &Ffly()});
  sys.Start();
  constexpr int kInts = 2048;
  sys.SpawnThread(2, "owner", [&](Host& h) {
    GlobalAddr a = sys.Alloc(2, Reg::kInt, kInts);
    for (int i = 0; i < kInts; ++i) {
      h.Write<std::int32_t>(a + 4 * i, 5 * i + 3);
    }
    sys.sync(2).EventSet(1);
    DrainPeer(sys, 2);
  });
  sys.SpawnThread(0, "reader", [&](Host& h) {
    sys.sync(0).EventWait(1);
    for (int i = 0; i < kInts; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), 5 * i + 3) << i;
    }
    Drain(sys, 0);
  });
  eng.Run();
  // Host 1 manages pages 1, 4, 7 — all owned by host 2, so its one group
  // call is forwarded wholesale; host 2 serves both its own call and the
  // forwarded one.
  EXPECT_EQ(sys.host(0).stats().Count("dsm.vm_faults"), 1);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.group_fetches"), 2);
  EXPECT_EQ(sys.host(1).stats().Count("dsm.group_forwards"), 1);
  EXPECT_EQ(sys.host(2).stats().Count("dsm.group_serves"), 2);
  ExpectQuiescent(sys);
}

// A write fault spanning eight DSM pages whose copies sit on one host sends
// a single batched invalidation message instead of eight, and no page
// becomes writable before every ack is in (the referee would catch a stale
// read on host 2 otherwise).
TEST(DsmFastPath, CoalescedInvalidationBatchesPerHost) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.probable_owner = false;
  cfg.group_fetch = false;
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&Sun(), &Ffly(), &Ffly()});
  sys.Start();
  constexpr int kInts = 2048;
  sys.SpawnThread(1, "first-writer", [&](Host& h) {
    GlobalAddr a = sys.Alloc(1, Reg::kInt, kInts);
    for (int i = 0; i < kInts; ++i) h.Write<std::int32_t>(a + 4 * i, i);
    sys.sync(1).EventSet(1);
    sys.sync(1).EventWait(3);
    for (int i = 0; i < kInts; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), -i) << i;
    }
    Drain(sys, 1);
  });
  sys.SpawnThread(2, "reader", [&](Host& h) {
    sys.sync(2).EventWait(1);
    for (int i = 0; i < kInts; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), i) << i;
    }
    sys.sync(2).EventSet(2);
  });
  sys.SpawnThread(0, "sun-writer", [&](Host& h) {
    sys.sync(0).EventWait(2);
    // One Sun VM write fault covering all eight pages; host 2's copies are
    // invalidated with one batched message.
    for (int i = 0; i < kInts; ++i) h.Write<std::int32_t>(4 * i, -i);
    sys.sync(0).EventSet(3);
    DrainPeer(sys, 0);
  });
  eng.Run();
  EXPECT_EQ(sys.host(0).stats().Count("dsm.deferred_writes"), 8);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.batch_invalidations_sent"), 1);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.invalidations_sent"), 0);
  EXPECT_EQ(sys.host(2).stats().Count("dsm.invalidations_received"), 8);
  ExpectQuiescent(sys);
}

// All three fast paths on at once, heterogeneous hosts, several ownership
// migrations: values stay coherent and the system drains clean.
TEST(DsmFastPath, AllFastPathsComposeUnderMigration) {
  sim::Engine eng;
  SystemConfig cfg = FastPathConfig();
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&Sun(), &Ffly(), &Ffly()});
  sys.Start();
  constexpr int kInts = 2048;
  // Round r uses events 10r+1..10r+5; the chain is strictly sequential:
  // sun writes, both Fireflies read, ffly-b writes, sun and ffly-a read.
  // When sun starts round r+1, ffly-a still holds read copies of ffly-b's
  // pages, so sun's deferred writes batch an invalidation to it.
  sys.SpawnThread(0, "sun", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, kInts);
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < kInts; ++i) {
        h.Write<std::int32_t>(a + 4 * i, round * 10000 + i);
      }
      sys.sync(0).EventSet(10 * round + 1);
      sys.sync(0).EventWait(10 * round + 3);
      for (int i = 0; i < kInts; ++i) {
        EXPECT_EQ(h.Read<std::int32_t>(a + 4 * i), -(round * 10000 + i));
      }
      sys.sync(0).EventSet(10 * round + 4);
      sys.sync(0).EventWait(10 * round + 5);
    }
    Drain(sys, 0);
  });
  sys.SpawnThread(1, "ffly-a", [&](Host& h) {
    for (int round = 0; round < 3; ++round) {
      sys.sync(1).EventWait(10 * round + 1);
      for (int i = 0; i < kInts; ++i) {
        EXPECT_EQ(h.Read<std::int32_t>(4 * i), round * 10000 + i);
      }
      sys.sync(1).EventSet(10 * round + 2);
      sys.sync(1).EventWait(10 * round + 4);
      for (int i = 0; i < kInts; ++i) {
        EXPECT_EQ(h.Read<std::int32_t>(4 * i), -(round * 10000 + i));
      }
      sys.sync(1).EventSet(10 * round + 5);
    }
    DrainPeer(sys, 1);
  });
  sys.SpawnThread(2, "ffly-b", [&](Host& h) {
    for (int round = 0; round < 3; ++round) {
      sys.sync(2).EventWait(10 * round + 2);
      for (int i = 0; i < kInts; ++i) {
        EXPECT_EQ(h.Read<std::int32_t>(4 * i), round * 10000 + i);
      }
      for (int i = 0; i < kInts; ++i) {
        h.Write<std::int32_t>(4 * i, -(round * 10000 + i));
      }
      sys.sync(2).EventSet(10 * round + 3);
    }
  });
  eng.Run();
  ExpectQuiescent(sys);
  // Each fast path actually engaged in this workload.
  std::int64_t group = 0, batch = 0;
  for (std::uint16_t i = 0; i < sys.num_hosts(); ++i) {
    group += sys.host(i).stats().Count("dsm.group_fetches");
    batch += sys.host(i).stats().Count("dsm.batch_invalidations_sent");
  }
  EXPECT_GT(group, 0);
  EXPECT_GT(batch, 0);
}

}  // namespace
}  // namespace mermaid::dsm
