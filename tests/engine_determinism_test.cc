// System-level determinism regression for the scale-out scheduler.
//
// Runs the full DSM stack (faults, retransmits under loss, crash-stop
// recovery, sync server) under the legacy engine and under every-knob-on,
// and requires the *entire* merged stats registry — every counter, every
// distribution, every histogram, serialized — to be bit-identical, along
// with the final virtual time. This is the strongest cheap oracle we have:
// any divergence in event order anywhere in the stack perturbs retransmit
// counts, RTT samples, or fault hops and shows up here.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

SystemConfig ChaosConfig(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.crash_recovery = true;
  cfg.lost_page_policy = SystemConfig::LostPagePolicy::kReinitZero;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.net.seed = seed;
  cfg.net.loss_probability = 0.25;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 60;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  return cfg;
}

struct Fingerprint {
  std::string stats;
  SimTime end = 0;
};

// Writer/reader churn across all hosts with a mid-run crash+recovery: the
// workload leans on every timer the wheel hosts (retransmit deadlines,
// janitor sweeps, recovery delays) and on cross-host invalidation traffic.
Fingerprint RunChaos(const sim::EngineOptions& opts, std::uint64_t seed) {
  sim::Engine eng(opts);
  System sys(eng, ChaosConfig(seed),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  constexpr int kCells = 8;
  sys.SpawnThread(0, "master", [&](Host& h) {
    const GlobalAddr arena = sys.Alloc(0, Reg::kLong, kCells * 128);
    for (int c = 0; c < kCells; ++c) {
      h.Write<std::int64_t>(arena + 1024ull * c, 0);
    }
    sys.sync(0).SemInit(1, 0);
    for (int w = 1; w <= 2; ++w) {
      sys.SpawnThread(static_cast<net::HostId>(w), "w" + std::to_string(w),
                      [&, arena, w](Host& hh) {
                        for (int round = 0; round < 30; ++round) {
                          const int c = (round * 3 + w) % kCells;
                          const GlobalAddr a = arena + 1024ull * c;
                          const auto v = hh.Read<std::int64_t>(a);
                          hh.Write<std::int64_t>(a, v + 1);
                          hh.Compute(50.0 * ((round + w) % 7));
                        }
                        sys.sync(static_cast<net::HostId>(w)).V(1);
                      });
    }
    h.runtime().Delay(Milliseconds(40));
    sys.CrashAndRestartHost(2, Milliseconds(60));
    sys.sync(0).P(1);
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(2));  // let retries, probes, janitor settle
  });
  Fingerprint fp;
  fp.end = eng.Run();
  fp.stats = sys.GatherStats().ToString();
  return fp;
}

TEST(EngineDeterminism, AllKnobsReproduceLegacyStatsBitForBit) {
  const Fingerprint legacy = RunChaos(sim::EngineOptions{}, 31);
  const Fingerprint opt = RunChaos(sim::EngineOptions::AllOn(), 31);
  EXPECT_EQ(legacy.end, opt.end);
  EXPECT_EQ(legacy.stats, opt.stats);
  ASSERT_FALSE(legacy.stats.empty());
}

TEST(EngineDeterminism, OptimizedEngineIsRunToRunDeterministic) {
  const Fingerprint a = RunChaos(sim::EngineOptions::AllOn(), 77);
  const Fingerprint b = RunChaos(sim::EngineOptions::AllOn(), 77);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.stats, b.stats);
}

}  // namespace
}  // namespace mermaid::dsm
