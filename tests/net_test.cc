#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/net/fragment.h"
#include "mermaid/net/network.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/engine.h"

namespace mermaid::net {
namespace {

std::vector<std::uint8_t> Blob(std::size_t n, std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.NextU64());
  return v;
}

TEST(Network, DeliversPacketWithModeledLatency) {
  sim::Engine eng;
  Network net(eng, {});
  auto rx0 = net.Attach(0, &arch::Sun3Profile());
  net.Attach(1, &arch::Sun3Profile());

  eng.Spawn("sender", [&] {
    Packet p;
    p.src = 1;
    p.dst = 0;
    p.kind = MsgKind::kControl;
    p.bytes = Blob(100, 1);
    net.Send(std::move(p));
  });
  SimTime arrival = -1;
  eng.Spawn("receiver", [&] {
    auto p = rx0.Recv();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->src, 1);
    EXPECT_EQ(p->bytes.size(), 100u);
    arrival = eng.Now();
  });
  eng.Run();
  // control_fixed (2.1 ms) + 100 B * 0.8 us/B = 2.18 ms.
  EXPECT_NEAR(ToMillis(arrival), 2.18, 0.01);
}

TEST(Network, LossDropsPackets) {
  sim::Engine eng;
  Network::Config cfg;
  cfg.loss_probability = 0.5;
  cfg.seed = 7;
  Network net(eng, cfg);
  auto rx0 = net.Attach(0, &arch::Sun3Profile());
  net.Attach(1, &arch::Sun3Profile());
  int received = 0;
  eng.Spawn("sender", [&] {
    for (int i = 0; i < 200; ++i) {
      Packet p;
      p.src = 1;
      p.dst = 0;
      p.bytes = {1, 2, 3};
      net.Send(std::move(p));
    }
    eng.Delay(Seconds(1));
  });
  eng.Spawn(
      "receiver",
      [&] {
        while (rx0.Recv()) ++received;
      },
      /*daemon=*/true);
  eng.Run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(received + net.stats().Count("net.packets_dropped"), 200);
}

// Runs a message of `size` bytes through Fragmenter -> Network ->
// Reassembler and returns (payload intact, arrival time ms).
struct FragResult {
  bool ok = false;
  double ms = 0;
  std::int64_t packets = 0;
};

FragResult RunFragmentTransfer(std::size_t size, const arch::ArchProfile& a,
                               const arch::ArchProfile& b) {
  sim::Engine eng;
  Network net(eng, {});
  Fragmenter frag_unused(eng, net, 99);  // exercise multi-instance safety
  auto rx1 = net.Attach(1, &b);
  net.Attach(0, &a);
  net.Attach(99, &a);

  auto payload = Blob(size, size);
  FragResult result;
  eng.Spawn("sender", [&] {
    Fragmenter frag(eng, net, 0);
    Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = MsgKind::kData;
    m.payload = payload;
    frag.Send(std::move(m));
  });
  eng.Spawn("receiver", [&] {
    Reassembler re(eng);
    while (auto pkt = rx1.Recv()) {
      if (auto msg = re.OnPacket(*pkt)) {
        result.ok = msg->payload == payload && msg->kind == MsgKind::kData;
        result.ms = ToMillis(eng.Now());
        return;
      }
    }
  });
  eng.Run();
  result.packets = net.stats().Count("net.packets_sent");
  return result;
}

TEST(Fragmentation, SinglePacketMessage) {
  auto r = RunFragmentTransfer(256, arch::Sun3Profile(), arch::Sun3Profile());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.packets, 1);
}

TEST(Fragmentation, MultiPacketReassembly) {
  auto r = RunFragmentTransfer(8192, arch::Sun3Profile(), arch::Sun3Profile());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.packets, 6);  // 8192 / 1485-byte payloads
}

// Table 2 shape: the end-to-end 8 KB / 1 KB transfer model should land near
// the paper's measurements for all four host-pair directions.
struct PairCase {
  const char* name;
  const arch::ArchProfile& src;
  const arch::ArchProfile& dst;
  double paper_8k;
  double paper_1k;
};

class TransferCost : public ::testing::TestWithParam<int> {};

TEST_P(TransferCost, MatchesTable2Within15Percent) {
  const PairCase cases[] = {
      {"Sun->Sun", arch::Sun3Profile(), arch::Sun3Profile(), 18.0, 5.1},
      {"Sun->Ffly", arch::Sun3Profile(), arch::FireflyProfile(), 27.0, 7.6},
      {"Ffly->Sun", arch::FireflyProfile(), arch::Sun3Profile(), 25.0, 7.3},
      {"Ffly->Ffly", arch::FireflyProfile(), arch::FireflyProfile(), 33.0,
       6.7},
  };
  const PairCase& c = cases[GetParam()];
  auto r8 = RunFragmentTransfer(8192, c.src, c.dst);
  auto r1 = RunFragmentTransfer(1024, c.src, c.dst);
  EXPECT_TRUE(r8.ok);
  EXPECT_TRUE(r1.ok);
  EXPECT_NEAR(r8.ms, c.paper_8k, c.paper_8k * 0.15) << c.name;
  EXPECT_NEAR(r1.ms, c.paper_1k, c.paper_1k * 0.15) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Pairs, TransferCost, ::testing::Range(0, 4));

TEST(ReqRep, BasicCallAndReply) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  Endpoint b(eng, net, 1, &arch::FireflyProfile());
  b.SetHandler(1, [&](RequestContext ctx) {
    EXPECT_EQ(ctx.origin(), 0);
    std::vector<std::uint8_t> reply(ctx.body().begin(), ctx.body().end());
    reply.push_back(0xAA);
    ctx.Reply(std::move(reply));
  });
  a.Start();
  b.Start();
  eng.Spawn("client", [&] {
    auto r = a.Call(1, 1, {1, 2, 3});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, (std::vector<std::uint8_t>{1, 2, 3, 0xAA}));
  });
  eng.Run();
}

TEST(ReqRep, ForwardDeliversReplyToOrigin) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  Endpoint b(eng, net, 1, &arch::Sun3Profile());
  Endpoint c(eng, net, 2, &arch::FireflyProfile());
  // b acts as a manager: forwards op 5 to host 2.
  b.SetHandler(5, [&](RequestContext ctx) {
    ctx.Forward(2, ctx.body());
  });
  c.SetHandler(5, [&](RequestContext ctx) {
    EXPECT_EQ(ctx.origin(), 0);  // origin survives the forward
    ctx.Reply({9, 9});
  });
  a.Start();
  b.Start();
  c.Start();
  eng.Spawn("client", [&] {
    auto r = a.Call(1, 5, {4});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, (std::vector<std::uint8_t>{9, 9}));
  });
  eng.Run();
  EXPECT_EQ(b.stats().Count("reqrep.forwards"), 1);
  // The reply must have gone straight from c to a, not through b.
  EXPECT_EQ(c.stats().Count("reqrep.replies_sent"), 1);
  EXPECT_EQ(b.stats().Count("reqrep.replies_sent"), 0);
}

TEST(ReqRep, MultiCallCollectsAllReplies) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  std::vector<std::unique_ptr<Endpoint>> servers;
  for (HostId id = 1; id <= 4; ++id) {
    auto ep = std::make_unique<Endpoint>(eng, net, id,
                                         &arch::FireflyProfile());
    ep->SetHandler(7, [id](RequestContext ctx) {
      ctx.Reply({static_cast<std::uint8_t>(id)});
    });
    ep->Start();
    servers.push_back(std::move(ep));
  }
  a.Start();
  eng.Spawn("client", [&] {
    auto rs = a.MultiCall({1, 2, 3, 4}, 7, {});
    ASSERT_TRUE(rs.has_value());
    ASSERT_EQ(rs->size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ((*rs)[i], std::vector<std::uint8_t>{
                              static_cast<std::uint8_t>(i + 1)});
    }
  });
  eng.Run();
}

TEST(ReqRep, NotifyIsOneWayAndNotDeduped) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  Endpoint b(eng, net, 1, &arch::Sun3Profile());
  int notified = 0;
  b.SetHandler(9, [&](RequestContext) { ++notified; });
  a.Start();
  b.Start();
  eng.Spawn("client", [&] {
    a.Notify(1, 9, {1});
    a.Notify(1, 9, {2});
    a.Notify(1, 9, {3});
    eng.Delay(Milliseconds(50));
  });
  eng.Run();
  EXPECT_EQ(notified, 3);
}

// Failure injection: with 20% packet loss, retransmission must deliver all
// calls and duplicate suppression must keep handler invocations exactly-once.
class ReqRepLoss : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReqRepLoss, RetransmissionSurvivesLoss) {
  sim::Engine eng;
  Network::Config cfg;
  cfg.loss_probability = 0.2;
  cfg.seed = GetParam();
  Network net(eng, cfg);
  Endpoint::Config epcfg;
  epcfg.call_timeout = Milliseconds(80);
  epcfg.max_attempts = 30;
  Endpoint a(eng, net, 0, &arch::Sun3Profile(), epcfg);
  Endpoint b(eng, net, 1, &arch::FireflyProfile(), epcfg);
  int handled = 0;
  b.SetHandler(3, [&](RequestContext ctx) {
    ++handled;
    std::vector<std::uint8_t> echo(ctx.body().begin(), ctx.body().end());
    ctx.Reply(std::move(echo), MsgKind::kData);
  });
  a.Start();
  b.Start();
  constexpr int kCalls = 25;
  int succeeded = 0;
  eng.Spawn("client", [&] {
    for (int i = 0; i < kCalls; ++i) {
      auto body = Blob(3000, i);  // multi-fragment: loss hits harder
      auto r = a.Call(1, 3, body);
      if (r.has_value()) {
        EXPECT_EQ(*r, body);
        ++succeeded;
      }
    }
  });
  eng.Run();
  EXPECT_EQ(succeeded, kCalls);
  // Exactly-once handler invocation despite retransmissions.
  EXPECT_EQ(handled, kCalls);
  EXPECT_GT(a.stats().Count("reqrep.retransmits"), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReqRepLoss,
                         ::testing::Values(3, 17, 99, 1990));

// Injected duplication and reordering on top of loss: all calls must still
// succeed and the handler must run exactly once per call.
TEST(ReqRep, DuplicationAndReorderingStayExactlyOnce) {
  sim::Engine eng;
  Network::Config cfg;
  cfg.loss_probability = 0.1;
  cfg.seed = 42;
  Network net(eng, cfg);
  FaultPlan plan;
  plan.duplicate_probability = 0.3;
  plan.reorder_probability = 0.3;
  net.SetFaultPlan(plan);
  Endpoint::Config epcfg;
  epcfg.call_timeout = Milliseconds(80);
  epcfg.max_attempts = 30;
  Endpoint a(eng, net, 0, &arch::Sun3Profile(), epcfg);
  Endpoint b(eng, net, 1, &arch::FireflyProfile(), epcfg);
  int handled = 0;
  b.SetHandler(3, [&](RequestContext ctx) {
    ++handled;
    std::vector<std::uint8_t> echo(ctx.body().begin(), ctx.body().end());
    ctx.Reply(std::move(echo));
  });
  a.Start();
  b.Start();
  constexpr int kCalls = 25;
  int succeeded = 0;
  eng.Spawn("client", [&] {
    for (int i = 0; i < kCalls; ++i) {
      std::vector<std::uint8_t> body{static_cast<std::uint8_t>(i)};
      auto r = a.Call(1, 3, body);
      if (r.has_value() && *r == body) ++succeeded;
    }
  });
  eng.Run();
  EXPECT_EQ(succeeded, kCalls);
  EXPECT_EQ(handled, kCalls);
  EXPECT_GT(net.stats().Count("net.dup_injected"), 0);
  EXPECT_GT(net.stats().Count("net.reorder_injected"), 0);
}

// Typed call outcomes: a reachable peer yields kOk with the reply body; a
// crashed peer exhausts its attempts and yields kTimedOut (with the timeout
// counted and backoff applied), never a silent empty success.
TEST(ReqRep, CallStatusDistinguishesTimeoutFromSuccess) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  Endpoint b(eng, net, 1, &arch::FireflyProfile());
  Endpoint c(eng, net, 2, &arch::FireflyProfile());
  b.SetHandler(4, [](RequestContext ctx) { ctx.Reply({7}); });
  c.SetHandler(4, [](RequestContext ctx) { ctx.Reply({8}); });
  a.Start();
  b.Start();
  c.Start();
  net.CrashHost(2);
  eng.Spawn("client", [&] {
    CallOpts opts;
    opts.timeout = Milliseconds(50);
    opts.max_attempts = 3;
    auto ok = a.CallWithStatus(1, 4, {}, MsgKind::kControl, opts);
    EXPECT_EQ(ok.status, CallStatus::kOk);
    EXPECT_EQ(ok.body, std::vector<std::uint8_t>{7});
    auto dead = a.CallWithStatus(2, 4, {}, MsgKind::kControl, opts);
    EXPECT_EQ(dead.status, CallStatus::kTimedOut);
    EXPECT_TRUE(dead.body.empty());
  });
  eng.Run();
  EXPECT_GE(a.stats().Count("reqrep.call_timeouts"), 1);
  EXPECT_GT(a.stats().Count("reqrep.backoff_total_ms"), 0);
}

// Partial multicast outcomes: the caller learns exactly which destinations
// timed out and keeps the replies that did arrive, so it can retry just the
// missing targets (the invalidation-multicast pattern).
TEST(ReqRep, MultiCallReportsPartialTimeouts) {
  sim::Engine eng;
  Network net(eng, {});
  Endpoint a(eng, net, 0, &arch::Sun3Profile());
  Endpoint b(eng, net, 1, &arch::FireflyProfile());
  Endpoint c(eng, net, 2, &arch::FireflyProfile());
  b.SetHandler(4, [](RequestContext ctx) { ctx.Reply({7}); });
  c.SetHandler(4, [](RequestContext ctx) { ctx.Reply({8}); });
  a.Start();
  b.Start();
  c.Start();
  net.CrashHost(2);
  eng.Spawn("client", [&] {
    CallOpts opts;
    opts.timeout = Milliseconds(50);
    opts.max_attempts = 3;
    auto rs = a.MultiCallWithStatus({1, 2}, 4, {}, MsgKind::kControl, opts);
    EXPECT_EQ(rs.status, CallStatus::kTimedOut);
    ASSERT_EQ(rs.replies.size(), 2u);
    EXPECT_EQ(rs.replies[0], std::vector<std::uint8_t>{7});
    EXPECT_TRUE(rs.replies[1].empty());
    ASSERT_EQ(rs.timed_out.size(), 1u);
    EXPECT_EQ(rs.timed_out[0], 1u);
    // After a restart the same targets all answer.
    net.RestartHost(2);
    auto rs2 = a.MultiCallWithStatus({1, 2}, 4, {}, MsgKind::kControl, opts);
    EXPECT_EQ(rs2.status, CallStatus::kOk);
  });
  eng.Run();
}

// Forwarded requests under loss: the origin retransmits, the manager
// re-forwards from its dedup record, the owner replays its reply.
TEST(ReqRep, ForwardingSurvivesLoss) {
  sim::Engine eng;
  Network::Config cfg;
  cfg.loss_probability = 0.25;
  cfg.seed = 12345;
  Network net(eng, cfg);
  Endpoint::Config epcfg;
  epcfg.call_timeout = Milliseconds(60);
  epcfg.max_attempts = 40;
  Endpoint a(eng, net, 0, &arch::Sun3Profile(), epcfg);
  Endpoint b(eng, net, 1, &arch::Sun3Profile(), epcfg);
  Endpoint c(eng, net, 2, &arch::FireflyProfile(), epcfg);
  int owner_handled = 0;
  b.SetHandler(5, [&](RequestContext ctx) { ctx.Forward(2, ctx.body()); });
  c.SetHandler(5, [&](RequestContext ctx) {
    ++owner_handled;
    ctx.Reply({42});
  });
  a.Start();
  b.Start();
  c.Start();
  int ok = 0;
  eng.Spawn("client", [&] {
    for (int i = 0; i < 20; ++i) {
      auto r = a.Call(1, 5, {static_cast<std::uint8_t>(i)});
      if (r.has_value() && (*r) == std::vector<std::uint8_t>{42}) ++ok;
    }
  });
  eng.Run();
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(owner_handled, 20);  // exactly-once at the final server
}

}  // namespace
}  // namespace mermaid::net
