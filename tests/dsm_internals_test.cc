// Unit tests of DSM internals: page-table role assignment, the coherence
// referee's violation detection, and host-level protocol robustness against
// malformed traffic.
#include <gtest/gtest.h>

#include "mermaid/dsm/directory.h"
#include "mermaid/dsm/page_table.h"
#include "mermaid/dsm/referee.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

TEST(Directory, FixedDistributedManagerAssignment) {
  SystemConfig cfg;  // directory_mode defaults to kFixed: the paper's p % N
  Directory dir(cfg, /*self=*/1, /*num_hosts=*/3, /*num_pages=*/10);
  for (PageNum p = 0; p < 10; ++p) {
    EXPECT_EQ(dir.BaseManagerOf(p), p % 3);
    EXPECT_EQ(dir.BaseManagedHere(p), p % 3 == 1);
    EXPECT_EQ(dir.ManagedHere(p), p % 3 == 1);
  }
  // Local copies start unknown; the Host constructor seeds the manager's
  // initial read copies, not the bare table.
  PageTable pt(/*num_pages=*/10);
  EXPECT_EQ(pt.Local(1).access, Access::kNone);
  EXPECT_FALSE(pt.Local(1).owned);

  ManagerEntry& m = dir.Manager(4);
  EXPECT_EQ(m.owner, 1);
  EXPECT_EQ(m.copyset.size(), 1u);
  EXPECT_TRUE(m.copyset.count(1));
  EXPECT_FALSE(m.busy);
}

TEST(Directory, ForEachManagedVisitsExactlyOwnPages) {
  SystemConfig cfg;
  Directory dir(cfg, /*self=*/2, /*num_hosts=*/4, /*num_pages=*/11);
  std::vector<PageNum> visited;
  dir.ForEachManaged([&](PageNum p, ManagerEntry&) { visited.push_back(p); });
  EXPECT_EQ(visited, (std::vector<PageNum>{2, 6, 10}));
}

TEST(Referee, AcceptsLegalSequence) {
  CoherenceReferee ref;
  ref.OnInstall(0, 5, 0, Access::kRead);   // initial owner copy
  ref.OnInstall(1, 5, 0, Access::kRead);   // replication
  ref.CheckAccess(1, 5, 0, Access::kRead);
  ref.OnInvalidate(0, 5);
  ref.OnWriteGrant(1, 5, 1);               // sole holder upgrades
  ref.CheckAccess(1, 5, 1, Access::kWrite);
  ref.OnDowngrade(1, 5);
  ref.OnInstall(0, 5, 1, Access::kRead);   // re-replicate at new version
  ref.CheckAccess(0, 5, 1, Access::kRead);
}

using RefereeDeath = CoherenceReferee;

TEST(Referee, DetectsTwoWriters) {
  ASSERT_DEATH(
      {
        CoherenceReferee ref;
        ref.OnInstall(0, 1, 0, Access::kRead);
        ref.OnWriteGrant(0, 1, 1);
        ref.OnInstall(1, 1, 1, Access::kRead);
        ref.OnWriteGrant(1, 1, 2);  // host 0 never dropped its write grant
      },
      "write granted while another host holds write access");
}

TEST(Referee, DetectsStaleAccess) {
  ASSERT_DEATH(
      {
        CoherenceReferee ref;
        ref.OnInstall(0, 1, 0, Access::kRead);
        ref.OnInstall(1, 1, 0, Access::kRead);
        ref.OnInvalidate(1, 1);
        ref.OnWriteGrant(0, 1, 1);
        ref.CheckAccess(1, 1, 0, Access::kRead);  // dropped copy
      },
      "access on a host without a valid copy");
}

TEST(Referee, DetectsWriteWithoutGrant) {
  ASSERT_DEATH(
      {
        CoherenceReferee ref;
        ref.OnInstall(0, 1, 0, Access::kRead);
        ref.OnInstall(1, 1, 0, Access::kRead);
        ref.CheckAccess(0, 1, 0, Access::kWrite);
      },
      "write access without the write grant");
}

// Robustness: spray malformed and misaddressed packets at a live system's
// hosts; the protocol must drop them (counting them) and keep working.
TEST(Robustness, GarbagePacketsAreDroppedNotFatal) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();

  // A rogue "host" 99 on the same network.
  auto rogue_rx = sys.network().Attach(99, &arch::Sun3Profile());
  (void)rogue_rx;

  sys.SpawnThread(0, "rogue-and-app", [&](Host& h) {
    base::Rng rng(13);
    for (int i = 0; i < 200; ++i) {
      net::Packet pkt;
      pkt.src = 99;
      pkt.dst = static_cast<net::HostId>(rng.NextBelow(2));
      pkt.kind = net::MsgKind::kControl;
      pkt.bytes.resize(rng.NextBelow(64) + 1);
      for (auto& b : pkt.bytes) b = static_cast<std::uint8_t>(rng.NextU64());
      sys.network().Send(std::move(pkt));
    }
    eng.Delay(Seconds(1));
    // The system still works after the garbage storm.
    GlobalAddr a = sys.Alloc(0, arch::TypeRegistry::kInt, 16);
    h.Write<std::int32_t>(a, 777);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "reader", [&](Host& h) {
    sys.sync(1).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(0), 777);
  });
  eng.Run();
}

// Region-boundary behavior: a fault group near the end of the region stops
// at the last page instead of running past it.
TEST(Robustness, FaultGroupClampsAtRegionEnd) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 16 * 1024;  // two 8 KB pages
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&arch::FireflyProfile(), &arch::Sun3Profile()});
  ASSERT_EQ(sys.page_bytes(), 1024u);
  sys.Start();
  sys.SpawnThread(0, "writer", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, arch::TypeRegistry::kInt, 4096);  // 16 KB
    h.Write<std::int32_t>(a + 16 * 1024 - 4, 5);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "sun", [&](Host& h) {
    sys.sync(1).EventWait(1);
    // The Sun's 8 KB VM page covers DSM pages 8..15; the last access sits
    // at the very end of the region, and the group must not run past it.
    EXPECT_EQ(h.Read<std::int32_t>(16 * 1024 - 4), 5);
    // Of the eight subpages, the Sun already holds read copies of the ones
    // it manages and still owns (9, 11, 13); 15 was stolen by the writer.
    EXPECT_EQ(sys.host(1).stats().Count("dsm.read_faults"), 5);
  });
  eng.Run();
}

}  // namespace
}  // namespace mermaid::dsm
