// Sender-side conversion cache: correctness across representation classes,
// version-keyed invalidation, and the end-to-end bulk-copy budget of the
// zero-copy data path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mermaid/base/buffer.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

constexpr int kDoubles = 256;  // 2 KB: one partial-page transfer

SystemConfig CacheConfig(bool cache_on) {
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.convert_cache = cache_on;
  return cfg;
}

// Runs the scenario on {Sun, Firefly, Firefly}: the Sun writes a block of
// doubles, then each Firefly reads it in turn (strictly ordered). Returns
// the values each reader observed.
struct ScenarioResult {
  std::vector<double> r1, r2, r1_after_write;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::uint64_t copies_first_read = 0;
  std::uint64_t copies_second_read = 0;
};

ScenarioResult RunScenario(bool cache_on) {
  sim::Engine eng;
  System sys(eng, CacheConfig(cache_on),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  ScenarioResult out;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kDouble, kDoubles);
    for (int i = 0; i < kDoubles; ++i) {
      h.Write<double>(a + 8 * i, 1.5 * i);  // exact in IEEE and VAX D
    }
    sys.sync(0).SemInit(1, 0);

    sys.SpawnThread(1, "reader1", [&, a](Host& hh) {
      base::BulkCopyReset();
      out.r1.resize(kDoubles);
      hh.ReadBlock<double>(a, kDoubles, out.r1.data());
      out.copies_first_read = base::BulkCopyCount();
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);

    sys.SpawnThread(2, "reader2", [&, a](Host& hh) {
      base::BulkCopyReset();
      out.r2.resize(kDoubles);
      hh.ReadBlock<double>(a, kDoubles, out.r2.data());
      out.copies_second_read = base::BulkCopyCount();
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);

    // Version bump: any cached image of this page is now stale.
    h.Write<double>(a, -42.0);
    sys.SpawnThread(1, "reader1b", [&, a](Host& hh) {
      out.r1_after_write.resize(kDoubles);
      hh.ReadBlock<double>(a, kDoubles, out.r1_after_write.data());
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
  });
  eng.Run();
  out.cache_hits = sys.host(0).stats().Count("dsm.convert_cache_hits");
  out.cache_misses = sys.host(0).stats().Count("dsm.convert_cache_misses");
  return out;
}

TEST(ConvertCache, CrossRepValuesIdenticalCacheOnVsOff) {
  ScenarioResult on = RunScenario(true);
  ScenarioResult off = RunScenario(false);
  ASSERT_EQ(on.r1.size(), static_cast<std::size_t>(kDoubles));
  for (int i = 0; i < kDoubles; ++i) {
    EXPECT_EQ(on.r1[i], 1.5 * i) << "reader1 value " << i;
    EXPECT_EQ(on.r1[i], off.r1[i]) << "cache changed reader1 value " << i;
    EXPECT_EQ(on.r2[i], off.r2[i]) << "cache changed reader2 value " << i;
  }
  EXPECT_EQ(on.r1_after_write[0], -42.0);
  EXPECT_EQ(off.r1_after_write[0], -42.0);
  for (int i = 1; i < kDoubles; ++i) {
    EXPECT_EQ(on.r1_after_write[i], off.r1_after_write[i]);
  }
}

TEST(ConvertCache, RepeatReadFaultHitsAndWriteInvalidates) {
  ScenarioResult on = RunScenario(true);
  // First Firefly read: miss (converts + populates). Second Firefly read of
  // the unmodified page: hit. Read after the write: the version changed, so
  // the stale image cannot be served — another miss.
  EXPECT_GE(on.cache_hits, 1);
  EXPECT_GE(on.cache_misses, 2);

  ScenarioResult off = RunScenario(false);
  EXPECT_EQ(off.cache_hits, 0);
  EXPECT_EQ(off.cache_misses, 0);
}

TEST(ConvertCache, PagePayloadCopiedAtMostTwice) {
  ScenarioResult on = RunScenario(true);
  // Miss path: owner memory -> wire image (1), wire -> requester memory (2).
  EXPECT_GE(on.copies_first_read, 1u);
  EXPECT_LE(on.copies_first_read, 2u);
  // Cache hit: the owner serves the shared cached image; only the
  // requester-side install copy remains.
  EXPECT_EQ(on.copies_second_read, 1u);

  ScenarioResult off = RunScenario(false);
  EXPECT_LE(off.copies_first_read, 2u);
  EXPECT_LE(off.copies_second_read, 2u);
}

// Eviction order is LRU, not FIFO: a cache hit promotes the entry, so the
// oldest-inserted image survives capacity pressure as long as it keeps
// getting hits. Three pages through a capacity-2 cache: A and B fill it,
// a hit on A promotes it, C evicts B (the least recently used), and a
// final reader still hits A. Under FIFO the insertion of C would have
// evicted A instead and the final read would miss.
TEST(ConvertCache, LruPromotionKeepsHotEntryUnderCapacityPressure) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.convert_cache = true;
  cfg.convert_cache_capacity = 2;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile(), &arch::FireflyProfile()});
  sys.Start();
  const int per_page = static_cast<int>(sys.page_bytes() / 8);
  sys.SpawnThread(0, "sun-owner", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kDouble, 3 * per_page);
    const GlobalAddr b = a + sys.page_bytes(), c = a + 2 * sys.page_bytes();
    for (int i = 0; i < per_page; ++i) {
      h.Write<double>(a + 8 * i, 0.5 * i);
      h.Write<double>(b + 8 * i, 1.5 * i);
      h.Write<double>(c + 8 * i, 2.5 * i);
    }
    sys.sync(0).SemInit(1, 0);

    sys.SpawnThread(1, "reader1", [&, a, b](Host& hh) {
      EXPECT_EQ(hh.Read<double>(a), 0.0);      // miss: caches A
      EXPECT_EQ(hh.Read<double>(b + 8), 1.5);  // miss: caches B
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);

    sys.SpawnThread(2, "reader2", [&, a, c](Host& hh) {
      EXPECT_EQ(hh.Read<double>(a + 8), 0.5);  // hit: promotes A over B
      EXPECT_EQ(hh.Read<double>(c + 8), 2.5);  // miss: evicts B (LRU)
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);

    sys.SpawnThread(3, "reader3", [&, a](Host& hh) {
      EXPECT_EQ(hh.Read<double>(a + 16), 1.0);  // still a hit under LRU
      sys.sync(3).V(1);
    });
    sys.sync(0).P(1);
  });
  eng.Run();
  EXPECT_EQ(sys.host(0).stats().Count("dsm.convert_cache_misses"), 3);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.convert_cache_hits"), 2);
  EXPECT_EQ(sys.host(0).stats().Count("dsm.convert_cache_evictions"), 1);
}

}  // namespace
}  // namespace mermaid::dsm
