// Integration tests of the full DSM stack on the virtual-time engine:
// coherence, heterogeneity, page-size policies, and failure injection.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

const arch::ArchProfile& Sun() { return arch::Sun3Profile(); }
const arch::ArchProfile& Ffly() { return arch::FireflyProfile(); }

SystemConfig TestConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.referee_check_access = true;
  return cfg;
}

TEST(DsmSystem, WriteOnOneHostVisibleOnAnother) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Sun()});
  sys.Start();
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 100);
    for (int i = 0; i < 100; ++i) h.Write<std::int32_t>(a + 4 * i, i * 3);
    sys.sync(0).EventSet(1);
    sys.sync(0).EventWait(2);
  });
  sys.SpawnThread(1, "reader", [&](Host& h) {
    sys.sync(1).EventWait(1);
    GlobalAddr a = 0;  // first allocation starts at 0
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(a + 4 * i), i * 3);
    }
    sys.sync(1).EventSet(2);
  });
  eng.Run();
}

TEST(DsmSystem, HeterogeneousIntConversion) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Ffly()});
  sys.Start();
  sys.SpawnThread(0, "sun", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 64);
    for (int i = 0; i < 64; ++i) {
      h.Write<std::int32_t>(a + 4 * i, 0x01020304 * (i + 1));
    }
    sys.sync(0).EventSet(1);
    sys.sync(0).EventWait(2);
    // Read back values the Firefly wrote: conversion must run both ways.
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(a + 4 * i), -7 * i);
    }
  });
  sys.SpawnThread(1, "ffly", [&](Host& h) {
    sys.sync(1).EventWait(1);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), 0x01020304 * (i + 1));
    }
    for (int i = 0; i < 64; ++i) h.Write<std::int32_t>(4 * i, -7 * i);
    sys.sync(1).EventSet(2);
  });
  eng.Run();
  EXPECT_GT(sys.host(1).stats().Count("dsm.conversions"), 0);
}

TEST(DsmSystem, HeterogeneousFloatAndDoubleConversion) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Ffly()});
  sys.Start();
  sys.SpawnThread(0, "sun", [&](Host& h) {
    GlobalAddr f = sys.Alloc(0, Reg::kFloat, 32);
    GlobalAddr d = sys.Alloc(0, Reg::kDouble, 32);
    for (int i = 0; i < 32; ++i) {
      h.Write<float>(f + 4 * i, 1.5f * i - 8.25f);
      h.Write<double>(d + 8 * i, 3.0e10 / (i + 1));
    }
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "ffly", [&](Host& h) {
    sys.sync(1).EventWait(1);
    // Addresses: floats at 0, doubles on the next fresh page run.
    GlobalAddr f = 0;
    GlobalAddr d = sys.page_bytes();  // 32 floats < 1 page, doubles start new
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(h.Read<float>(f + 4 * i), 1.5f * i - 8.25f) << i;
      EXPECT_EQ(h.Read<double>(d + 8 * i), 3.0e10 / (i + 1)) << i;
    }
  });
  eng.Run();
}

TEST(DsmSystem, UserDefinedRecordConversion) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Ffly(), &Sun()});
  arch::TypeId rec = sys.registry().RegisterRecord(
      "pcbstat", {{Reg::kInt, 3}, {Reg::kFloat, 3}, {Reg::kShort, 4}});
  const std::size_t sz = sys.registry().SizeOf(rec);
  ASSERT_EQ(sz, 32u);
  sys.Start();
  sys.SpawnThread(0, "ffly", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, rec, 16);
    for (int i = 0; i < 16; ++i) {
      GlobalAddr base = a + i * sz;
      for (int k = 0; k < 3; ++k)
        h.Write<std::int32_t>(base + 4 * k, i * 100 + k);
      for (int k = 0; k < 3; ++k)
        h.Write<float>(base + 12 + 4 * k, -0.5f * i + k);
      for (int k = 0; k < 4; ++k)
        h.Write<std::int16_t>(base + 24 + 2 * k,
                              static_cast<std::int16_t>(i - k));
    }
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "sun", [&](Host& h) {
    sys.sync(1).EventWait(1);
    for (int i = 0; i < 16; ++i) {
      GlobalAddr base = i * sz;
      for (int k = 0; k < 3; ++k)
        EXPECT_EQ(h.Read<std::int32_t>(base + 4 * k), i * 100 + k);
      for (int k = 0; k < 3; ++k)
        EXPECT_EQ(h.Read<float>(base + 12 + 4 * k), -0.5f * i + k);
      for (int k = 0; k < 4; ++k)
        EXPECT_EQ(h.Read<std::int16_t>(base + 24 + 2 * k),
                  static_cast<std::int16_t>(i - k));
    }
  });
  eng.Run();
}

TEST(DsmSystem, WriteUpgradeAvoidsDataTransfer) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Sun()});
  sys.Start();
  sys.SpawnThread(0, "t", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 8);
    // Page 0 is managed (and initially owned) by host 0... allocate enough
    // to land on a page NOT owned here: page 1 is managed by host 1.
    GlobalAddr b = sys.Alloc(0, Reg::kChar, 2 * sys.page_bytes());
    (void)a;
    GlobalAddr far = b + sys.page_bytes();  // page 2? ensure remote manager
    PageNum p = h.PageOf(far);
    if (p % sys.num_hosts() == 0) far = b;  // pick the page host 1 manages
    h.Read<std::int8_t>(far);               // read fault: replicate
    auto before = sys.host(0).stats().Count("dsm.pages_in");
    h.Write<std::int8_t>(far, 5);           // write fault: upgrade
    auto after = sys.host(0).stats().Count("dsm.pages_in");
    EXPECT_EQ(before, after);  // no data moved for the upgrade
    EXPECT_EQ(sys.host(0).stats().Count("dsm.upgrades"), 1);
  });
  eng.Run();
}

TEST(DsmSystem, ThreeHostsForwardingScenario) {
  // Requester, manager, and owner all distinct (R -> M -> O of Table 4).
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Ffly(), &Sun()});
  sys.Start();
  sys.SpawnThread(0, "master", [&](Host& h) {
    // Page 1 is managed by host 1. Make host 2 its owner by writing there.
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 3 * sys.page_bytes() / 4);
    (void)a;
    (void)h;
    GlobalAddr target = sys.page_bytes();  // page 1
    sys.sync(0).SemInit(7, 0);
    sys.SpawnThread(2, "owner", [&, target](Host& h2) {
      h2.Write<std::int32_t>(target, 4242);
      sys.sync(2).V(7);
    });
    sys.sync(0).P(7);
    // Now host 0 reads it: request forwards 0 -> 1 -> 2, data flows 2 -> 0.
    EXPECT_EQ(h.Read<std::int32_t>(target), 4242);
  });
  eng.Run();
  EXPECT_GE(sys.host(1).endpoint().stats().Count("reqrep.forwards"), 1);
}

// Mutual exclusion + coherence end-to-end: hosts increment a shared counter
// under a distributed semaphore; the final value must be exact.
class DsmCounter : public ::testing::TestWithParam<int> {};

TEST_P(DsmCounter, SemaphoreProtectedIncrementsAreExact) {
  const int num_hosts = GetParam();
  sim::Engine eng;
  std::vector<const arch::ArchProfile*> profiles;
  for (int i = 0; i < num_hosts; ++i) {
    profiles.push_back(i % 2 == 0 ? &Sun() : &Ffly());
  }
  System sys(eng, TestConfig(), profiles);
  sys.Start();
  constexpr int kIncrementsPerHost = 25;
  constexpr sync::SyncId kMutex = 1, kDone = 2;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(kMutex, 1);
    sys.sync(0).SemInit(kDone, 0);
    for (int i = 0; i < num_hosts; ++i) {
      sys.SpawnThread(i, "inc" + std::to_string(i), [&, i](Host& hh) {
        for (int k = 0; k < kIncrementsPerHost; ++k) {
          sys.sync(i).P(kMutex);
          auto v = hh.Read<std::int64_t>(0);
          hh.Compute(10);  // widen the race window
          hh.Write<std::int64_t>(0, v + 1);
          sys.sync(i).V(kMutex);
        }
        sys.sync(i).V(kDone);
      });
    }
    for (int i = 0; i < num_hosts; ++i) sys.sync(0).P(kDone);
    EXPECT_EQ(h.Read<std::int64_t>(0),
              static_cast<std::int64_t>(num_hosts) * kIncrementsPerHost);
  });
  eng.Run();
}

INSTANTIATE_TEST_SUITE_P(Hosts, DsmCounter, ::testing::Values(2, 3, 5));

TEST(DsmSystem, PartialPageTransferMovesOnlyAllocatedExtent) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Sun()});
  sys.Start();
  sys.SpawnThread(0, "t0", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 10);  // 40 bytes on an 8 KB page
    h.Write<std::int32_t>(a, 77);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "t1", [&](Host& h) {
    sys.sync(1).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(0), 77);
  });
  eng.Run();
  const auto bytes_in = sys.host(1).stats().Count("dsm.bytes_in");
  EXPECT_GT(bytes_in, 0);
  EXPECT_LE(bytes_in, 64);  // 40 allocated bytes, not 8192
}

TEST(DsmSystem, FullPageTransferWhenOptimizationDisabled) {
  sim::Engine eng;
  SystemConfig cfg = TestConfig();
  cfg.partial_page_transfer = false;
  System sys(eng, cfg, {&Sun(), &Sun()});
  sys.Start();
  sys.SpawnThread(0, "t0", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 10);
    h.Write<std::int32_t>(a, 77);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "t1", [&](Host& h) {
    sys.sync(1).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(0), 77);
  });
  eng.Run();
  EXPECT_GE(sys.host(1).stats().Count("dsm.bytes_in"), 8192);
}

// §2.4: under the smallest-page-size policy a Sun (8 KB VM pages) fills its
// whole VM page with eight 1 KB DSM pages on one fault.
TEST(DsmSystem, SmallestPolicyGroupFillsLargeVmPage) {
  sim::Engine eng;
  SystemConfig cfg = TestConfig();
  cfg.page_policy = PageSizePolicy::kSmallest;
  System sys(eng, cfg, {&Ffly(), &Sun()});
  ASSERT_EQ(sys.page_bytes(), 1024u);
  sys.Start();
  sys.SpawnThread(0, "ffly", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 4096);  // 16 KB = 16 DSM pages
    for (int i = 0; i < 4096; ++i) h.Write<std::int32_t>(a + 4 * i, i);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "sun", [&](Host& h) {
    sys.sync(1).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(0), 0);  // one access...
    // ...but the whole 8 KB VM page (eight DSM pages) was filled:
    EXPECT_EQ(sys.host(1).stats().Count("dsm.vm_faults"), 1);
    EXPECT_EQ(sys.host(1).stats().Count("dsm.read_faults"), 8);
    for (int i = 0; i < 2048; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), i);
    }
    EXPECT_EQ(sys.host(1).stats().Count("dsm.vm_faults"), 1);  // all hits
  });
  eng.Run();
}

// Largest policy: a Firefly (1 KB VM pages) faults once per 8 KB DSM page
// and then hits on all eight VM pages within it.
TEST(DsmSystem, LargestPolicyGroupsSmallVmPages) {
  sim::Engine eng;
  System sys(eng, TestConfig(), {&Sun(), &Ffly()});
  ASSERT_EQ(sys.page_bytes(), 8192u);
  sys.Start();
  sys.SpawnThread(0, "sun", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 2048);  // exactly one 8 KB page
    for (int i = 0; i < 2048; ++i) h.Write<std::int32_t>(a + 4 * i, i + 9);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "ffly", [&](Host& h) {
    sys.sync(1).EventWait(1);
    for (int i = 0; i < 2048; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4 * i), i + 9);
    }
    EXPECT_EQ(sys.host(1).stats().Count("dsm.read_faults"), 1);
    EXPECT_EQ(sys.host(1).stats().Count("dsm.pages_in"), 1);
  });
  eng.Run();
}

// Failure injection: heavy packet loss; retransmission, duplicate
// suppression, and confirm probing must preserve exact coherence.
class DsmLoss : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsmLoss, CounterExactUnderPacketLoss) {
  sim::Engine eng;
  SystemConfig cfg = TestConfig();
  cfg.net.loss_probability = 0.15;
  cfg.net.seed = GetParam();
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 200;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  System sys(eng, cfg, {&Sun(), &Ffly(), &Sun()});
  sys.Start();
  constexpr int kPerHost = 8;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 1);
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 3; ++i) {
      sys.SpawnThread(i, "w" + std::to_string(i), [&, i](Host& hh) {
        for (int k = 0; k < kPerHost; ++k) {
          sys.sync(i).P(1);
          hh.Write<std::int64_t>(0, hh.Read<std::int64_t>(0) + 1);
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < 3; ++i) sys.sync(0).P(2);
    EXPECT_EQ(h.Read<std::int64_t>(0), 3 * kPerHost);
  });
  eng.Run();
  EXPECT_GT(sys.network().stats().Count("net.packets_dropped"), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsmLoss, ::testing::Values(5, 77, 2024));

}  // namespace
}  // namespace mermaid::dsm
