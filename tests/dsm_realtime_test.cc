// The identical DSM stack on the real-time runtime: plain OS threads, the
// wall clock (scaled), genuinely concurrent handlers and clients. Shows the
// protocol code is not simulation-bound and exercises the locking that the
// single-stepping virtual-time engine never contends.
#include <atomic>

#include <gtest/gtest.h>

#include "mermaid/apps/matmul.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/realtime.h"

namespace mermaid::dsm {
namespace {

SystemConfig RtConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 512 * 1024;
  // Modeled milliseconds become real microseconds.
  return cfg;
}

TEST(DsmRealTime, CrossHostVisibilityAndConversion) {
  sim::RealTimeRuntime rt(/*time_scale=*/2000.0);
  System sys(rt, RtConfig(), {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  std::atomic<bool> ok{true};
  sys.SpawnThread(0, "sun", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, arch::TypeRegistry::kDouble, 64);
    for (int i = 0; i < 64; ++i) h.Write<double>(a + 8 * i, 0.5 * i - 3.0);
    sys.sync(0).EventSet(1);
    sys.sync(0).EventWait(2);
    for (int i = 0; i < 64; ++i) {
      if (h.Read<double>(a + 8 * i) != (0.5 * i - 3.0) * 2.0) ok = false;
    }
  });
  sys.SpawnThread(1, "ffly", [&](Host& h) {
    sys.sync(1).EventWait(1);
    for (int i = 0; i < 64; ++i) {
      double v = h.Read<double>(8ull * i);
      if (v != 0.5 * i - 3.0) ok = false;
      h.Write<double>(8ull * i, v * 2.0);
    }
    sys.sync(1).EventSet(2);
  });
  rt.Run();
  EXPECT_TRUE(ok.load());
}

TEST(DsmRealTime, SemaphoreCounterIsExactUnderRealConcurrency) {
  sim::RealTimeRuntime rt(2000.0);
  System sys(rt, RtConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  constexpr int kPerHost = 10;
  std::atomic<long long> final_value{-1};
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, arch::TypeRegistry::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 1);
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 3; ++i) {
      sys.SpawnThread(i, "inc" + std::to_string(i), [&, i](Host& hh) {
        for (int k = 0; k < kPerHost; ++k) {
          sys.sync(i).P(1);
          hh.Write<std::int64_t>(0, hh.Read<std::int64_t>(0) + 1);
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < 3; ++i) sys.sync(0).P(2);
    final_value = h.Read<std::int64_t>(0);
  });
  rt.Run();
  EXPECT_EQ(final_value.load(), 3 * kPerHost);
}

TEST(DsmRealTime, SmallMatrixMultiply) {
  sim::RealTimeRuntime rt(2000.0);
  System sys(rt, RtConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  apps::MatMulConfig mm;
  mm.n = 32;
  mm.num_threads = 4;
  mm.worker_hosts = {1, 2};
  apps::MatMulResult result;
  SetupMatMul(sys, mm, &result);
  rt.Run();
  EXPECT_TRUE(result.done);
  EXPECT_TRUE(result.correct);
}

TEST(DsmRealTime, CentralServerBackend) {
  sim::RealTimeRuntime rt(2000.0);
  System sys(rt, RtConfig(), {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  std::atomic<int> mismatches{0};
  sys.SpawnThread(1, "client", [&](Host& h) {
    CentralClient& cc = sys.central(h.id());
    for (int i = 0; i < 50; ++i) cc.Write<std::int32_t>(4ull * i, 7 * i);
    for (int i = 0; i < 50; ++i) {
      if (cc.Read<std::int32_t>(4ull * i) != 7 * i) ++mismatches;
    }
    (void)h;
  });
  rt.Run();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace mermaid::dsm
