#include <gtest/gtest.h>

#include "mermaid/dsm/central.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

SystemConfig SmallConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  return cfg;
}

TEST(CentralServer, ReadsAndWritesAcrossHosts) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(1, "ffly", [&](dsm::Host& h) {
    CentralClient& cc = sys.central(h.id());
    for (int i = 0; i < 32; ++i) cc.Write<std::int32_t>(4ull * i, i * i);
    cc.Write<double>(1024, 2.75);
    sys.sync(1).EventSet(1);
  });
  sys.SpawnThread(0, "sun", [&](dsm::Host& h) {
    sys.sync(0).EventWait(1);
    CentralClient& cc = sys.central(h.id());
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(cc.Read<std::int32_t>(4ull * i), i * i);
    }
    EXPECT_EQ(cc.Read<double>(1024), 2.75);
    (void)h;
  });
  eng.Run();
  EXPECT_EQ(sys.central_server().stats().Count("central.writes"), 33);
  // Host 0 runs the server: its reads are local, not RPCs.
  EXPECT_EQ(sys.central_server().stats().Count("central.reads"), 0);
}

TEST(CentralServer, HeterogeneousValuesSurviveServerRepresentation) {
  // Server on a big-endian IEEE Sun; clients on VAX-float Fireflies. Data
  // lives in the server's representation; clients convert per access.
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(1, "writer", [&](dsm::Host& h) {
    CentralClient& cc = sys.central(h.id());
    cc.Write<float>(0, -12.5f);
    cc.Write<std::int64_t>(8, 0x1122334455667788);
    cc.Write<std::int16_t>(16, -999);
    sys.sync(1).EventSet(1);
  });
  sys.SpawnThread(2, "reader", [&](dsm::Host& h) {
    sys.sync(2).EventWait(1);
    CentralClient& cc = sys.central(h.id());
    EXPECT_EQ(cc.Read<float>(0), -12.5f);
    EXPECT_EQ(cc.Read<std::int64_t>(8), 0x1122334455667788);
    EXPECT_EQ(cc.Read<std::int16_t>(16), -999);
    (void)h;
  });
  eng.Run();
}

TEST(CentralServer, EveryRemoteAccessPaysARoundTrip) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  SimTime elapsed = 0;
  sys.SpawnThread(1, "client", [&](dsm::Host& h) {
    CentralClient& cc = sys.central(h.id());
    const SimTime t0 = h.runtime().Now();
    for (int i = 0; i < 10; ++i) cc.Read<std::int32_t>(0);
    elapsed = h.runtime().Now() - t0;
  });
  eng.Run();
  // 10 round trips of a few ms each: no caching means no fast path.
  EXPECT_GT(elapsed, Milliseconds(30));
  EXPECT_EQ(sys.central_server().stats().Count("central.reads"), 10);
}

TEST(CentralServer, ConcurrentWritersInterleaveSafely) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile(), &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(0, "master", [&](dsm::Host&) {
    sys.sync(0).SemInit(1, 0);
    for (int i = 1; i <= 3; ++i) {
      sys.SpawnThread(i, "w" + std::to_string(i), [&, i](dsm::Host& h) {
        CentralClient& cc = sys.central(h.id());
        for (int k = 0; k < 20; ++k) {
          cc.Write<std::int32_t>(4ull * (i * 100 + k), i * 1000 + k);
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 1; i <= 3; ++i) sys.sync(0).P(1);
    CentralClient& cc = sys.central(0);
    for (int i = 1; i <= 3; ++i) {
      for (int k = 0; k < 20; ++k) {
        EXPECT_EQ(cc.Read<std::int32_t>(4ull * (i * 100 + k)), i * 1000 + k);
      }
    }
  });
  eng.Run();
}

}  // namespace
}  // namespace mermaid::dsm
