// Release consistency (SystemConfig::release_consistency): litmus suite,
// trace replay of the twin -> diff -> notice chain, and the three cross-knob
// regressions that rode along with the RC work.
//
// Semantics under test: every sync operation is a release point (the
// issuing host flushes its write twins as diffs to each page's home) and
// P / EventWait / Barrier are acquire points (the waker's reply carries
// write notices; the acquirer self-invalidates stale copies). Properly
// synchronized programs must therefore see exact sequentially-consistent
// results, while unsynchronized races may legally observe outcomes that
// strict write-invalidate forbids — the litmus tests assert exactly that
// split. The coherence referee runs in relaxed mode and still checks every
// access, so a pass means the implementation honored the RC contract, not
// just that values happened to look right.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/page_table.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"
#include "mermaid/trace/trace.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

SystemConfig RcConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.referee_check_access = true;
  cfg.release_consistency = true;
  return cfg;
}

void ExpectQuiescent(System& sys) {
  const auto q = sys.CheckQuiescent();
  EXPECT_EQ(q.busy_entries, 0u) << "manager entries still busy at quiescence";
  EXPECT_EQ(q.pending_transfers, 0u) << "transfers still queued at quiescence";
}

// Message passing, properly synchronized: the writer's V is a release (its
// twins flush before the wire op), the reader's P is an acquire (the reply
// carries the write notices). The reader must then see BOTH writes — under
// RC the synchronized outcome is exact, not merely "not inverted".
TEST(RcLitmus, SynchronizedMessagePassingSeesAllWrites) {
  for (int offset = 0; offset <= 30; offset += 10) {
    sim::Engine eng;
    SystemConfig cfg = RcConfig();
    cfg.net.seed = 8100 + static_cast<std::uint64_t>(offset);
    System sys(eng, cfg,
               {&arch::Sun3Profile(), &arch::FireflyProfile(),
                &arch::FireflyProfile()});
    sys.Start();
    int r1 = -1, r2 = -1;
    sys.SpawnThread(0, "master", [&](Host& h) {
      GlobalAddr x = sys.Alloc(0, Reg::kInt, 1);
      GlobalAddr y = sys.Alloc(0, Reg::kLong, 1);
      h.Write<std::int32_t>(x, 0);
      h.Write<std::int64_t>(y, 0);
      sys.sync(0).SemInit(1, 0);
      sys.sync(0).SemInit(2, 0);
      sys.SpawnThread(1, "writer", [&, x, y](Host& hh) {
        hh.Compute(100.0 * offset);
        hh.Write<std::int32_t>(x, 1);
        hh.Write<std::int64_t>(y, 1);
        sys.sync(1).V(1);  // release: flush twins, publish notices
      });
      sys.SpawnThread(2, "reader", [&, x, y](Host& hh) {
        sys.sync(2).P(1);  // acquire: apply the writer's notices
        r1 = static_cast<int>(hh.Read<std::int64_t>(y));
        r2 = hh.Read<std::int32_t>(x);
        sys.sync(2).V(2);
      });
      sys.sync(0).P(2);
    });
    eng.Run();
    EXPECT_EQ(r1, 1) << "acquire missed the writer's y at offset " << offset;
    EXPECT_EQ(r2, 1) << "acquire missed the writer's x at offset " << offset;
    ExpectQuiescent(sys);
  }
}

// Store buffering, unsynchronized: each host writes one variable and reads
// the other with no release/acquire pair between them. Under RC the writes
// sit in local twins until the final V, so r1 == 0 && r2 == 0 — forbidden
// under sequential consistency — is a legal outcome here. The test asserts
// only the RC contract: values stay in domain, the referee (in relaxed
// mode) stays clean, and after both workers release and the master
// acquires, the master sees both writes exactly.
TEST(RcLitmus, UnsynchronizedStoreBufferingWeakOutcomesAreLegal) {
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.page_bytes_override = 1024;
  cfg.net.seed = 8200;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  std::int64_t r1 = -1, r2 = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr base = sys.Alloc(0, Reg::kLong, 256);  // pages 0, 1
    const GlobalAddr x = base;                        // page 0, home host 0
    const GlobalAddr y = base + 1024;                 // page 1, home host 1
    h.Write<std::int64_t>(x, 0);
    h.Write<std::int64_t>(y, 0);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "sb-a", [&, x, y](Host& hh) {
      hh.Write<std::int64_t>(x, 1);
      r1 = hh.Read<std::int64_t>(y);  // racy: 0 or 1, both legal under RC
      sys.sync(1).V(1);
    });
    sys.SpawnThread(2, "sb-b", [&, x, y](Host& hh) {
      hh.Write<std::int64_t>(y, 1);
      r2 = hh.Read<std::int64_t>(x);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    sys.sync(0).P(1);
    // Acquired after both releases: the master must see both stores.
    EXPECT_EQ(h.Read<std::int64_t>(x), 1);
    EXPECT_EQ(h.Read<std::int64_t>(y), 1);
    h.runtime().Delay(Seconds(2));  // confirm drain before quiescence
  });
  eng.Run();
  EXPECT_TRUE(r1 == 0 || r1 == 1) << "out-of-domain value " << r1;
  EXPECT_TRUE(r2 == 0 || r2 == 1) << "out-of-domain value " << r2;
  ExpectQuiescent(sys);
}

// Lock-protected counter: the canonical "RC equals SC for data-race-free
// programs" litmus. Three hosts (one of them the counter page's home, so
// the home-dirty in-place path runs alongside the twin/diff path) increment
// under a semaphore mutex; every P acquires the previous holder's release,
// so the total must be exact.
TEST(RcLitmus, LockProtectedCounterIsExact) {
  constexpr int kWorkers = 3;
  constexpr int kIters = 8;
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.net.seed = 8300;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  std::int64_t final_value = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 1);  // mutex
    sys.sync(0).SemInit(2, 0);  // done
    for (int i = 0; i < kWorkers; ++i) {
      sys.SpawnThread(i, "inc" + std::to_string(i), [&, a, i](Host& hh) {
        for (int k = 0; k < kIters; ++k) {
          sys.sync(i).P(1);
          const std::int64_t v = hh.Read<std::int64_t>(a);
          hh.Write<std::int64_t>(a, v + 1);
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < kWorkers; ++i) sys.sync(0).P(2);
    final_value = h.Read<std::int64_t>(a);
  });
  eng.Run();
  EXPECT_EQ(final_value, kWorkers * kIters);
  auto& st = sys.GatherStats();
  // Both write-aggregation paths genuinely ran: remote writers twinned and
  // flushed diffs, the home host marked its in-place writes, and acquirers
  // applied the resulting notices.
  EXPECT_GT(st.Count("dsm.rc_twins"), 0);
  EXPECT_GT(st.Count("dsm.rc_flushes"), 0);
  EXPECT_GT(st.Count("dsm.rc_flushes_applied"), 0);
  EXPECT_GT(st.Count("dsm.rc_home_dirty_marks"), 0);
  EXPECT_GT(st.Count("dsm.rc_notices_applied"), 0);
  EXPECT_GT(st.Count("sync.rc_notices_recorded"), 0);
  ExpectQuiescent(sys);
}

// Trace replay of one full write-aggregation chain: the writer's twin
// (kTwinCreate) parents its diff flush (kDiffFlush), and the acquirer's
// self-invalidation (kWriteNotice) links cross-host back to that flush
// through RcNoticeKey — the reconstructed chain matches the protocol.
TEST(RcTrace, TwinDiffNoticeChainReplays) {
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.page_bytes_override = 8192;
  cfg.trace = true;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::Sun3Profile(),
              &arch::Sun3Profile()});
  sys.Start();
  const PageNum target = 1;  // home = host 1
  const GlobalAddr page_b = 8192;
  std::int32_t reread = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 4096);  // pages 0, 1
    sys.sync(0).SemInit(1, 0);
    EXPECT_EQ(h.Read<std::int32_t>(a + target * page_b), 0);  // read copy
    sys.SpawnThread(2, "writer", [&, a](Host& hh) {
      hh.Write<std::int32_t>(a + target * page_b, 7);  // twin, not invalidate
      sys.sync(2).V(1);  // release: diff flush to home host 1
    });
    sys.sync(0).P(1);  // acquire: the notice invalidates the read copy
    reread = h.Read<std::int32_t>(a + target * page_b);
    h.runtime().Delay(Seconds(2));  // confirm drain before quiescence
  });
  eng.Run();
  EXPECT_EQ(reread, 7);

  const std::vector<trace::Event> evs = sys.tracer().Snapshot();
  std::map<std::uint64_t, const trace::Event*> by_id;
  for (const trace::Event& ev : evs) by_id[ev.id] = &ev;
  const trace::Event* twin = nullptr;
  const trace::Event* flush = nullptr;
  const trace::Event* notice = nullptr;
  for (const trace::Event& ev : evs) {
    if (ev.page != target) continue;
    if (ev.kind == trace::EventKind::kTwinCreate && ev.host == 2) twin = &ev;
    if (ev.kind == trace::EventKind::kDiffFlush && ev.host == 2) flush = &ev;
    if (ev.kind == trace::EventKind::kWriteNotice && ev.host == 0)
      notice = &ev;
  }
  ASSERT_NE(twin, nullptr) << "writer never twinned the page";
  ASSERT_NE(flush, nullptr) << "release never flushed the twin";
  ASSERT_NE(notice, nullptr) << "acquire never applied the write notice";
  EXPECT_EQ(twin->a1, 0) << "host 2 is not the home: a real twin, not "
                            "home-dirty";
  EXPECT_EQ(flush->parent, twin->id) << "diff flush must chain off its twin";
  EXPECT_GT(flush->a0, 0) << "the flush carried diff bytes";
  EXPECT_GT(flush->a1, 0) << "the flush carried at least one range";
  EXPECT_EQ(notice->parent, flush->id)
      << "the acquirer's notice must link cross-host to the flush";
  EXPECT_EQ(notice->a1, 2) << "notice names the originating writer";
  EXPECT_LE(twin->at, flush->at);
  EXPECT_LE(flush->at, notice->at);
  ExpectQuiescent(sys);
}

// Regression (stale probable-owner hints across reincarnation): host 0
// learns hint "page 1 lives on host 2", then host 2 crashes and restarts
// with amnesia. Observing the new incarnation — here via the restarted
// host's recovery query — must clear every hint naming host 2, so later
// faults go through the manager instead of chasing a ghost owner.
TEST(RcRegression, ReincarnationClearsStaleHints) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.crash_recovery = true;
  cfg.probable_owner = true;
  // The other fast paths ride along: the hint-clearing fix must compose.
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.net.seed = 8400;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 30;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  net::HostId hint_before = PageTable::kNoHint;
  net::HostId hint_after_recovery = 2;
  std::int64_t converged = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr base = sys.Alloc(0, Reg::kLong, 384);  // pages 0..2
    const GlobalAddr a = base + 1024;                 // page 1: manager host 1
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(2, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    // Learn the hint: the read forwards through manager 1 to owner 2.
    EXPECT_EQ(h.Read<std::int64_t>(a), 42);
    hint_before = h.HintSnapshot(1);
    // Host 2 dies with amnesia and restarts; its recovery query carries the
    // new incarnation, which every live host must treat as a hint poison.
    sys.CrashAndRestartHost(2, Seconds(2));
    h.runtime().Delay(Seconds(5));  // recovery + probe drain
    // The restarted host's recovery query carried its new incarnation, so
    // the stale hint must be gone BEFORE any fresh fault re-learns one.
    hint_after_recovery = h.HintSnapshot(1);
    h.Write<std::int64_t>(a, 43);
    converged = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_EQ(hint_before, 2) << "test setup: host 0 should have learned the "
                               "owner hint before the crash";
  EXPECT_EQ(converged, 43);
  EXPECT_EQ(hint_after_recovery, PageTable::kNoHint)
      << "stale hint naming the reincarnated host survived";
  EXPECT_GE(sys.GatherStats().Count("dsm.hints_cleared_reincarnation"), 1);
  ExpectQuiescent(sys);
}

// Regression (convert cache vs. diff writes): a diff flush mutates the home
// copy without a fault-path write, so it must still advance the version and
// drop the owner-side conversion cache — otherwise the very next read fault
// from a foreign-representation host is served a stale cached image. The
// readers here are Fireflies and the home is a Sun-3, so every serve
// converts and the cache genuinely holds an entry when the diff lands.
TEST(RcRegression, DiffApplyInvalidatesConvertCache) {
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.page_bytes_override = 1024;
  // Every protocol knob on: RC + the fast paths (hints are internally
  // disabled under RC, the rest compose) + crash recovery's incarnation
  // headers. The diff/cache invariant must hold in the full configuration.
  cfg.probable_owner = true;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.crash_recovery = true;
  cfg.net.seed = 8500;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int32_t updated = -1, untouched = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 64);  // page 0, home host 0
    for (int i = 0; i < 64; ++i) {
      h.Write<std::int32_t>(a + 4u * i, i);  // home-dirty in-place writes
    }
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    // Prime the conversion cache: a Firefly read makes the Sun-3 home
    // convert and cache the outgoing image at the current version.
    sys.SpawnThread(1, "primer", [&, a](Host& hh) {
      EXPECT_EQ(hh.Read<std::int32_t>(a + 4u * 5), 5);
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    // A second Firefly writes element 5 through a twin and releases: the
    // diff flush converts at the home, bumps the version, and must drop
    // the cached image.
    sys.SpawnThread(2, "writer", [&, a](Host& hh) {
      hh.Write<std::int32_t>(a + 4u * 5, 777);
      sys.sync(2).V(2);  // release
    });
    // Acquire after the writer's release, then immediately re-fault the
    // page from the home: the serve must carry the post-diff bytes, not
    // the pre-diff cached conversion.
    sys.SpawnThread(1, "rereader", [&, a](Host& hh) {
      sys.sync(1).P(2);
      updated = hh.Read<std::int32_t>(a + 4u * 5);
      untouched = hh.Read<std::int32_t>(a + 4u * 4);
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
  });
  eng.Run();
  EXPECT_EQ(updated, 777) << "read fault after a diff flush was served a "
                             "stale conversion-cache image";
  EXPECT_EQ(untouched, 4) << "the diff clobbered bytes outside its ranges";
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("dsm.conversions"), 0);
  EXPECT_GT(st.Count("dsm.rc_flushes_applied"), 0);
  ExpectQuiescent(sys);
}

// Regression (release under loss): a retransmitted release — both the V
// carrying the notice block and the diff-flush call itself — must not
// double-apply diffs or double-record notices. Under 30% loss the flush
// replies get dropped, the writer re-issues as fresh calls, and the
// (page, origin, seq)-keyed dedup at the home must keep the counter exact.
TEST(RcChaos, LockCounterExactUnderHeavyLoss) {
  constexpr int kWorkers = 2;
  constexpr int kIters = 10;
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.net.seed = 8600;
  cfg.net.loss_probability = 0.30;
  cfg.call_timeout = Milliseconds(150);
  // Few attempts per call: under 30% loss, whole calls exhaust and get
  // re-issued with fresh request ids, which is exactly the case the
  // (page, origin, seq)-keyed flush dedup exists for — endpoint-level
  // duplicate suppression cannot catch it.
  cfg.call_max_attempts = 4;
  cfg.fault_retry_limit = 40;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  std::int64_t final_value = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 1);  // mutex
    sys.sync(0).SemInit(2, 0);  // done
    for (int i = 1; i <= kWorkers; ++i) {
      sys.SpawnThread(i, "inc" + std::to_string(i), [&, a, i](Host& hh) {
        for (int k = 0; k < kIters; ++k) {
          sys.sync(i).P(1);
          const std::int64_t v = hh.Read<std::int64_t>(a);
          hh.Write<std::int64_t>(a, v + 1);
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < kWorkers; ++i) sys.sync(0).P(2);
    final_value = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(5));  // confirm/probe drain before quiescence
  });
  eng.Run();
  EXPECT_EQ(final_value, kWorkers * kIters)
      << "a lost-and-replayed release double-applied a diff";
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("net.packets_dropped"), 0);
  EXPECT_GT(st.Count("dsm.rc_flushes_applied"), 0);
  // The dedup machinery genuinely ran: at least one flush call exhausted
  // its attempts after the home applied it, was re-issued with a fresh
  // request id, and was answered from the (page, origin, seq) replay map
  // instead of being applied twice. Seeded, so this is deterministic.
  EXPECT_GE(st.Count("dsm.rc_flush_replays"), 1);
  ExpectQuiescent(sys);
}

// Engine-knob matrix with release consistency on: the RC protocol must be
// oblivious to which scheduler implementation runs it. One RC workload
// (mixed twin/home-dirty counter) re-run under all 15 non-default
// EngineOptions combinations must end at the same virtual time with the
// same counter and identical protocol stats as the legacy scheduler.
struct RcComboResult {
  SimTime end_time = 0;
  std::int64_t final_value = -1;
  std::map<std::string, std::int64_t> stats;
};

RcComboResult RunRcCounter(const sim::EngineOptions& opts) {
  sim::Engine eng(opts);
  SystemConfig cfg = RcConfig();
  cfg.net.seed = 8700;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  RcComboResult res;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 1);
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 3; ++i) {
      sys.SpawnThread(i, "inc" + std::to_string(i), [&, a, i](Host& hh) {
        for (int k = 0; k < 6; ++k) {
          sys.sync(i).P(1);
          const std::int64_t v = hh.Read<std::int64_t>(a);
          hh.Write<std::int64_t>(a, v + 1);
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < 3; ++i) sys.sync(0).P(2);
    res.final_value = h.Read<std::int64_t>(a);
  });
  eng.Run();
  res.end_time = eng.Now();
  auto& st = sys.GatherStats();
  for (const char* key :
       {"dsm.rc_twins", "dsm.rc_flushes", "dsm.rc_flushes_applied",
        "dsm.rc_flush_bytes", "dsm.rc_home_dirty_marks",
        "dsm.rc_notices_applied", "dsm.rc_copies_kept",
        "dsm.rc_self_invalidations", "dsm.read_faults", "dsm.pages_in",
        "sync.rc_notices_recorded", "net.packets_sent", "net.bytes_sent"}) {
    res.stats[key] = st.Count(key);
  }
  return res;
}

std::string KnobName(const sim::EngineOptions& o) {
  std::string s;
  s += o.subqueues ? "subq," : "";
  s += o.timer_wheel ? "wheel," : "";
  s += o.slab ? "slab," : "";
  s += o.fast_handoff ? "handoff," : "";
  return s.empty() ? "legacy" : s;
}

TEST(RcEngineKnobs, AllEngineCombosAgreeOnRcProtocolStats) {
  const RcComboResult ref = RunRcCounter(sim::EngineOptions{});
  EXPECT_EQ(ref.final_value, 18);
  EXPECT_GT(ref.stats.at("dsm.rc_flushes"), 0);
  for (int bits = 1; bits < 16; ++bits) {
    sim::EngineOptions o;
    o.subqueues = (bits & 1) != 0;
    o.timer_wheel = (bits & 2) != 0;
    o.slab = (bits & 4) != 0;
    o.fast_handoff = (bits & 8) != 0;
    const RcComboResult got = RunRcCounter(o);
    EXPECT_EQ(got.end_time, ref.end_time) << KnobName(o);
    EXPECT_EQ(got.final_value, ref.final_value) << KnobName(o);
    for (const auto& [key, value] : ref.stats) {
      EXPECT_EQ(got.stats.at(key), value) << KnobName(o) << " " << key;
    }
  }
}

// A diff flush names exactly the byte ranges it changed, so the home must
// *patch* its cached converted images in place (re-keying them to the new
// version) instead of evicting them: the unflushed bytes of a whole-page
// conversion are still correct. The post-flush read must both hit the cache
// and return the correctly converted new value.
TEST(RcConvertCache, DiffFlushPatchesCachedImageInsteadOfEvicting) {
  sim::Engine eng;
  SystemConfig cfg = RcConfig();
  cfg.net.seed = 8400;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t changed = -1, untouched = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 4);  // page 0: home = host 0
    h.Write<std::int64_t>(a, 1);
    h.Write<std::int64_t>(a + 8, 2);
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    sys.sync(0).SemInit(3, 0);
    // Reader (VAX-class) faults first: the Sun home converts the page and
    // caches the converted image.
    sys.SpawnThread(1, "reader", [&, a](Host& hh) {
      EXPECT_EQ(hh.Read<std::int64_t>(a), 1);
      sys.sync(1).V(1);
      sys.sync(1).P(2);  // acquire: pull the writer's notice
      changed = hh.Read<std::int64_t>(a + 8);
      untouched = hh.Read<std::int64_t>(a);
      sys.sync(1).V(3);
    });
    // Writer twins the page and releases: the diff flush carries only the
    // changed range, and the home patches its cached image.
    sys.SpawnThread(2, "writer", [&, a](Host& hh) {
      sys.sync(2).P(1);
      hh.Write<std::int64_t>(a + 8, 99);
      sys.sync(2).V(2);  // release: flush the twin to the home
    });
    sys.sync(0).P(3);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  EXPECT_EQ(changed, 99) << "patched range must carry the flushed bytes";
  EXPECT_EQ(untouched, 1) << "bytes outside the diff must survive the patch";
  auto& st = sys.GatherStats();
  EXPECT_GE(st.Count("dsm.rc_flushes"), 1);
  EXPECT_GE(st.Count("dsm.convert_cache_patched"), 1)
      << "the flush must patch the cached image, not drop it";
  ExpectQuiescent(sys);
}

}  // namespace
}  // namespace mermaid::dsm
