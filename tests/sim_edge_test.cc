// Edge cases of the virtual-time engine and channel semantics.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/sim/engine.h"

namespace mermaid::sim {
namespace {

TEST(SimEdge, ZeroDelayKeepsRunningAtSameTime) {
  Engine eng;
  std::vector<int> order;
  eng.Spawn("a", [&] {
    order.push_back(1);
    eng.Delay(0);
    order.push_back(2);
    EXPECT_EQ(eng.Now(), 0);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEdge, DaemonSpawnsDaemon) {
  Engine eng;
  Chan<int> ch(eng);
  int got = 0;
  eng.Spawn(
      "outer",
      [&] {
        eng.Spawn(
            "inner",
            [&] {
              while (auto v = ch.Recv()) got += *v;
            },
            /*daemon=*/true);
        while (ch.Recv()) {
        }
      },
      /*daemon=*/true);
  eng.Spawn("app", [&] {
    ch.Send(5);
    eng.Delay(Milliseconds(1));
  });
  eng.Run();
  // One of the two daemons received it; either way the engine unwound.
  EXPECT_LE(got, 5);
}

TEST(SimEdge, ManyChannelsManyWaiters) {
  Engine eng;
  constexpr int kN = 30;
  std::vector<Chan<int>> chans;
  for (int i = 0; i < kN; ++i) chans.emplace_back(eng);
  int sum = 0;
  for (int i = 0; i < kN; ++i) {
    eng.Spawn("recv" + std::to_string(i), [&, i] {
      auto v = chans[i].Recv();
      if (v) sum += *v;
    });
  }
  eng.Spawn("send", [&] {
    for (int i = kN - 1; i >= 0; --i) {
      chans[i].Send(i, Microseconds(10 * (i + 1)));
    }
  });
  eng.Run();
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(SimEdge, CompetingReceiversEachGetOneMessage) {
  Engine eng;
  Chan<int> ch(eng);
  int received = 0;
  for (int i = 0; i < 4; ++i) {
    eng.Spawn("r" + std::to_string(i), [&] {
      auto v = ch.Recv();
      if (v.has_value()) ++received;
    });
  }
  eng.Spawn("s", [&] {
    for (int i = 0; i < 4; ++i) ch.Send(i, Microseconds(i));
  });
  eng.Run();
  EXPECT_EQ(received, 4);
}

TEST(SimEdge, TimeoutZeroBehavesLikeTry) {
  Engine eng;
  Chan<int> ch(eng);
  eng.Spawn("p", [&] {
    bool timed_out = false;
    auto v = ch.RecvUntil(eng.Now(), &timed_out);
    EXPECT_FALSE(v.has_value());
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(eng.Now(), 0);
  });
  eng.Run();
}

TEST(SimEdge, NestedSpawnDepth) {
  Engine eng;
  int depth_reached = 0;
  std::function<void(int)> spawn_chain = [&](int depth) {
    depth_reached = std::max(depth_reached, depth);
    if (depth < 20) {
      eng.Spawn("d" + std::to_string(depth), [&, depth] {
        eng.Delay(Microseconds(1));
        spawn_chain(depth + 1);
      });
    }
  };
  eng.Spawn("root", [&] { spawn_chain(0); });
  eng.Run();
  EXPECT_EQ(depth_reached, 20);
}

TEST(SimEdge, RunWithNoProcessesCompletesImmediately) {
  Engine eng;
  EXPECT_EQ(eng.Run(), 0);
}

TEST(SimEdge, SwitchCountIsDeterministic) {
  auto run = [] {
    Engine eng;
    Chan<int> ch(eng);
    for (int i = 0; i < 8; ++i) {
      eng.Spawn("p" + std::to_string(i), [&, i] {
        for (int k = 0; k < 10; ++k) {
          eng.Delay(Microseconds(i * 3 + k));
          ch.Send(1, Microseconds(2));
        }
      });
    }
    eng.Spawn("sink", [&] {
      for (int k = 0; k < 80; ++k) {
        if (!ch.Recv()) break;
      }
    });
    eng.Run();
    return eng.switch_count();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mermaid::sim
