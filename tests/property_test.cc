// Property-based sweeps over the protocol's key invariants.
//
// DsmRandomOps: hosts hammer a small shared int array with unsynchronized
// random reads and writes while the coherence referee checks every access
// against the MRSW invariants. Writes carry globally unique increasing
// stamps; per-(host, cell) read monotonicity must hold (the page-grant
// total order forbids time-travel), and after a final barrier all hosts
// must agree exactly.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/dsm/system.h"
#include "mermaid/net/fragment.h"
#include "mermaid/sim/engine.h"

namespace mermaid {
namespace {

using Reg = arch::TypeRegistry;

struct RandomOpsCase {
  std::uint64_t seed;
  int num_hosts;
  dsm::PageSizePolicy policy;
  double loss;
};

class DsmRandomOps : public ::testing::TestWithParam<int> {};

TEST_P(DsmRandomOps, CoherenceHoldsUnderRandomTraffic) {
  static const RandomOpsCase cases[] = {
      {101, 2, dsm::PageSizePolicy::kLargest, 0.0},
      {202, 3, dsm::PageSizePolicy::kLargest, 0.0},
      {303, 4, dsm::PageSizePolicy::kSmallest, 0.0},
      {404, 5, dsm::PageSizePolicy::kLargest, 0.0},
      {505, 3, dsm::PageSizePolicy::kSmallest, 0.0},
      {606, 3, dsm::PageSizePolicy::kLargest, 0.10},
      {707, 2, dsm::PageSizePolicy::kSmallest, 0.10},
  };
  const RandomOpsCase& c = cases[GetParam()];

  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.referee_check_access = true;
  cfg.net.loss_probability = c.loss;
  cfg.net.seed = c.seed;
  if (c.loss > 0) {
    cfg.call_timeout = Milliseconds(150);
    cfg.call_max_attempts = 300;
    cfg.janitor_period = Milliseconds(100);
    cfg.confirm_probe_after = Milliseconds(300);
  }
  std::vector<const arch::ArchProfile*> profiles;
  for (int i = 0; i < c.num_hosts; ++i) {
    profiles.push_back(i % 2 == 0 ? &arch::Sun3Profile()
                                  : &arch::FireflyProfile());
  }
  dsm::System sys(eng, cfg, profiles);
  sys.Start();

  static constexpr int kCells = 64;  // spread over pages under either policy
  const int ops = c.loss > 0 ? 30 : 120;
  std::atomic<std::int64_t> stamp_counter{1};
  // last stamp observed per (host, cell): the monotonicity witness.
  std::vector<std::vector<std::int64_t>> seen(
      c.num_hosts, std::vector<std::int64_t>(kCells, 0));
  std::atomic<bool> monotone{true};

  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(0, Reg::kLong, kCells * 17);
    (void)a;  // 17-fold spacing puts consecutive cells on distinct pages
    h.Write<std::int64_t>(0, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < c.num_hosts; ++i) {
      sys.SpawnThread(i, "rnd" + std::to_string(i), [&, i](dsm::Host& hh) {
        base::Rng rng(c.seed * 977 + i);
        for (int k = 0; k < ops; ++k) {
          const int cell = static_cast<int>(rng.NextBelow(kCells));
          const dsm::GlobalAddr addr = 8ull * 17 * cell;
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, stamp_counter.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(addr);
            if (v < seen[i][cell]) monotone = false;
            seen[i][cell] = std::max(seen[i][cell], v);
          }
          hh.Compute(rng.NextBelow(300));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 0; i < c.num_hosts; ++i) sys.sync(0).P(1);

    // Convergence: all hosts must read identical final values. The vector
    // is shared by value so it outlives this (master) thread.
    auto final_values = std::make_shared<std::vector<std::int64_t>>(kCells);
    for (int cell = 0; cell < kCells; ++cell) {
      (*final_values)[cell] = h.Read<std::int64_t>(8ull * 17 * cell);
    }
    for (int i = 1; i < c.num_hosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i),
                      [&sys, i, final_values](dsm::Host& hh) {
                        for (int cell = 0; cell < kCells; ++cell) {
                          EXPECT_EQ(hh.Read<std::int64_t>(8ull * 17 * cell),
                                    (*final_values)[cell])
                              << "host " << i << " cell " << cell;
                        }
                        sys.sync(i).V(1);
                      });
    }
    for (int i = 1; i < c.num_hosts; ++i) sys.sync(0).P(1);
  });
  eng.Run();
  EXPECT_TRUE(monotone.load()) << "a host observed a stale stamp";
}

INSTANTIATE_TEST_SUITE_P(Cases, DsmRandomOps, ::testing::Range(0, 7));

// Fragmentation sweep: random message sizes through random MTUs, with and
// without duplication-inducing retransmission patterns.
class FragSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FragSweep, RandomSizesReassembleExactly) {
  base::Rng rng(GetParam());
  for (std::uint32_t mtu : {128u, 512u, 1500u, 4096u}) {
    sim::Engine eng;
    net::Network::Config ncfg;
    ncfg.mtu = mtu;
    net::Network net(eng, ncfg);
    auto rx = net.Attach(1, &arch::Sun3Profile());
    net.Attach(0, &arch::FireflyProfile());

    constexpr int kMsgs = 20;
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::uint8_t> p(rng.NextBelow(5 * mtu) + 4);
      for (auto& b : p) b = static_cast<std::uint8_t>(rng.NextU64());
      p[0] = static_cast<std::uint8_t>(i);  // index stamp: delivery may
      p[1] = 0;                             // legally reorder across sizes
      payloads.push_back(std::move(p));
    }

    int delivered = 0;
    bool all_match = true;
    eng.Spawn("sender", [&] {
      net::Fragmenter frag(eng, net, 0);
      for (const auto& p : payloads) {
        net::Message m;
        m.src = 0;
        m.dst = 1;
        m.kind = net::MsgKind::kData;
        m.payload = p;
        frag.Send(std::move(m));
        eng.Delay(Microseconds(100));
      }
    });
    eng.Spawn("receiver", [&] {
      net::Reassembler re(eng);
      while (delivered < kMsgs) {
        auto pkt = rx.Recv();
        if (!pkt.has_value()) return;
        if (auto msg = re.OnPacket(*pkt)) {
          const std::size_t idx = msg->payload.empty() ? 0 : msg->payload[0];
          all_match &=
              idx < payloads.size() && msg->payload == payloads[idx];
          ++delivered;
        }
      }
    });
    eng.Run();
    EXPECT_EQ(delivered, kMsgs) << "mtu " << mtu;
    EXPECT_TRUE(all_match) << "mtu " << mtu;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mermaid
