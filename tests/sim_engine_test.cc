#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/base/time.h"
#include "mermaid/sim/engine.h"
#include "mermaid/sim/realtime.h"
#include "mermaid/sim/runtime.h"

namespace mermaid::sim {
namespace {

TEST(SimEngine, DelayAdvancesVirtualTime) {
  Engine eng;
  SimTime observed = -1;
  eng.Spawn("p", [&] {
    eng.Delay(Milliseconds(5));
    observed = eng.Now();
  });
  SimTime end = eng.Run();
  EXPECT_EQ(observed, Milliseconds(5));
  EXPECT_EQ(end, Milliseconds(5));
}

TEST(SimEngine, ParallelDelaysOverlapInVirtualTime) {
  Engine eng;
  for (int i = 0; i < 10; ++i) {
    eng.Spawn("p" + std::to_string(i), [&] { eng.Delay(Milliseconds(100)); });
  }
  // Ten processes each "compute" 100 ms concurrently: virtual end time is
  // 100 ms, not 1 s.
  EXPECT_EQ(eng.Run(), Milliseconds(100));
}

TEST(SimEngine, ChannelTransfersMessageWithLatency) {
  Engine eng;
  Chan<int> ch(eng);
  SimTime recv_time = -1;
  int value = 0;
  eng.Spawn("sender", [&] {
    eng.Delay(Milliseconds(1));
    ch.Send(42, /*delay=*/Milliseconds(3));
  });
  eng.Spawn("receiver", [&] {
    auto v = ch.Recv();
    ASSERT_TRUE(v.has_value());
    value = *v;
    recv_time = eng.Now();
  });
  eng.Run();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(recv_time, Milliseconds(4));
}

TEST(SimEngine, MessagesArriveInDeliveryTimeOrder) {
  Engine eng;
  Chan<int> ch(eng);
  std::vector<int> order;
  eng.Spawn("sender", [&] {
    ch.Send(3, Milliseconds(30));
    ch.Send(1, Milliseconds(10));
    ch.Send(2, Milliseconds(20));
  });
  eng.Spawn("receiver", [&] {
    for (int i = 0; i < 3; ++i) {
      auto v = ch.Recv();
      ASSERT_TRUE(v.has_value());
      order.push_back(*v);
    }
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, FifoAmongEqualDeliveryTimes) {
  Engine eng;
  Chan<int> ch(eng);
  std::vector<int> order;
  eng.Spawn("sender", [&] {
    for (int i = 0; i < 5; ++i) ch.Send(i, Milliseconds(1));
  });
  eng.Spawn("receiver", [&] {
    for (int i = 0; i < 5; ++i) order.push_back(*ch.Recv());
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, RecvTimeoutFiresAtDeadline) {
  Engine eng;
  Chan<int> ch(eng);
  bool timed_out = false;
  SimTime when = -1;
  eng.Spawn("receiver", [&] {
    auto v = ch.RecvUntil(Milliseconds(7), &timed_out);
    EXPECT_FALSE(v.has_value());
    when = eng.Now();
  });
  eng.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(when, Milliseconds(7));
}

TEST(SimEngine, MessageBeatsTimeout) {
  Engine eng;
  Chan<int> ch(eng);
  bool timed_out = true;
  eng.Spawn("sender", [&] { ch.Send(5, Milliseconds(2)); });
  eng.Spawn("receiver", [&] {
    auto v = ch.RecvUntil(Milliseconds(10), &timed_out);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
    EXPECT_EQ(eng.Now(), Milliseconds(2));
  });
  eng.Run();
  EXPECT_FALSE(timed_out);
}

TEST(SimEngine, DaemonUnwindsOnShutdown) {
  Engine eng;
  Chan<int> ch(eng);
  int served = 0;
  bool daemon_exited = false;
  eng.Spawn(
      "server",
      [&] {
        while (auto m = ch.Recv()) ++served;
        daemon_exited = true;
      },
      /*daemon=*/true);
  eng.Spawn("client", [&] {
    ch.Send(1);
    ch.Send(2);
    eng.Delay(Milliseconds(1));
  });
  eng.Run();
  EXPECT_EQ(served, 2);
  EXPECT_TRUE(daemon_exited);
}

TEST(SimEngine, SpawnFromWithinProcess) {
  Engine eng;
  std::vector<int> order;
  eng.Spawn("parent", [&] {
    order.push_back(1);
    eng.Spawn("child", [&] { order.push_back(3); });
    order.push_back(2);
    eng.Delay(Milliseconds(1));
    order.push_back(4);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimEngine, TryRecvDoesNotBlock) {
  Engine eng;
  Chan<int> ch(eng);
  eng.Spawn("p", [&] {
    EXPECT_FALSE(ch.TryRecv().has_value());
    ch.Send(9, Milliseconds(1));
    EXPECT_FALSE(ch.TryRecv().has_value());  // not yet deliverable
    eng.Delay(Milliseconds(1));
    auto v = ch.TryRecv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
  });
  eng.Run();
}

// Runs a mixed workload twice and requires identical event interleavings.
TEST(SimEngine, DeterministicInterleaving) {
  auto run_once = [](std::vector<std::string>& trace) -> std::uint64_t {
    Engine eng;
    Chan<std::string> ch(eng);
    for (int i = 0; i < 4; ++i) {
      eng.Spawn("w" + std::to_string(i), [&, i] {
        for (int k = 0; k < 5; ++k) {
          eng.Delay(Microseconds(100 * (i + 1)));
          ch.Send("w" + std::to_string(i) + "/" + std::to_string(k),
                  Microseconds(50));
        }
      });
    }
    eng.Spawn("collector", [&] {
      for (int n = 0; n < 20; ++n) {
        auto m = ch.Recv();
        if (!m) break;
        trace.push_back(*m);
      }
    });
    eng.Run();
    return eng.switch_count();
  };
  std::vector<std::string> t1, t2;
  auto s1 = run_once(t1);
  auto s2 = run_once(t2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(t1.size(), 20u);
}

TEST(SimEngine, ManyProcessesStress) {
  Engine eng;
  Chan<int> ch(eng);
  constexpr int kProcs = 50;
  constexpr int kMsgs = 40;
  long long sum = 0;
  for (int i = 0; i < kProcs; ++i) {
    eng.Spawn("p" + std::to_string(i), [&, i] {
      for (int k = 0; k < kMsgs; ++k) {
        eng.Delay(Microseconds(1 + (i * 7 + k) % 13));
        ch.Send(1);
      }
    });
  }
  eng.Spawn("sink", [&] {
    for (int n = 0; n < kProcs * kMsgs; ++n) {
      auto v = ch.Recv();
      if (!v) break;
      sum += *v;
    }
  });
  eng.Run();
  EXPECT_EQ(sum, kProcs * kMsgs);
}

// --- scale-out scheduler parity ------------------------------------------
//
// The legacy scan is the reference; every knob combination must reproduce
// its interleaving, final time, and switch count exactly. The workload is
// built to stress each optimized structure: SpawnOn groups (sub-queues),
// request/reply with deadlines that sometimes fire and sometimes get beaten
// (timer-wheel arm/cancel churn), bursts of sends (slab item traffic), and
// tight ping-pong (fast-resume and fiber handoff).

std::string KnobName(const EngineOptions& o) {
  std::string s;
  if (o.subqueues) s += "subqueues,";
  if (o.timer_wheel) s += "wheel,";
  if (o.slab) s += "slab,";
  if (o.fast_handoff) s += "fibers,";
  return s.empty() ? "legacy" : s;
}

struct ParityResult {
  std::vector<std::string> trace;
  SimTime end = 0;
  std::uint64_t switches = 0;
};

ParityResult RunChurnWorkload(const EngineOptions& opts) {
  ParityResult r;
  Engine eng(opts);
  constexpr int kWorkers = 6;
  constexpr int kRounds = 25;
  Chan<int> req(eng);
  std::vector<Chan<int>> replies;
  replies.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) replies.emplace_back(eng);
  // Server answers fast or slow; slow replies lose to the caller deadline,
  // so the armed timer actually fires (wheel pop), while fast ones cancel
  // it (wheel unlink).
  eng.SpawnOn(
      0, "server",
      [&] {
        for (;;) {
          auto m = req.Recv();
          if (!m) return;
          const int who = *m % kWorkers;
          const int k = *m / kWorkers;
          eng.Delay(Microseconds(k % 5 == 0 ? 300 : 20));
          replies[static_cast<std::size_t>(who)].Send(k, Microseconds(10));
        }
      },
      /*daemon=*/true);
  for (int i = 0; i < kWorkers; ++i) {
    eng.SpawnOn(static_cast<std::uint32_t>(1 + i % 3),
                "w" + std::to_string(i), [&, i] {
                  for (int k = 0; k < kRounds; ++k) {
                    eng.Delay(Microseconds(13 * (i + 1) + k));
                    req.Send(k * kWorkers + i);
                    bool timed_out = false;
                    auto v = replies[static_cast<std::size_t>(i)].RecvUntil(
                        eng.Now() + Microseconds(150), &timed_out);
                    r.trace.push_back(std::to_string(i) + "/" +
                                      std::to_string(k) + "@" +
                                      std::to_string(eng.Now()) +
                                      (v ? ":ok" : ":to"));
                    if (timed_out) {
                      // Drain the late reply so the next round's reply
                      // isn't misattributed.
                      replies[static_cast<std::size_t>(i)].Recv();
                    }
                  }
                });
  }
  // Ungrouped spawn exercising the round-robin path and plain delays.
  eng.Spawn("ticker", [&] {
    for (int k = 0; k < 40; ++k) {
      eng.Delay(Microseconds(90));
      r.trace.push_back("tick@" + std::to_string(eng.Now()));
    }
  });
  r.end = eng.Run();
  r.switches = eng.switch_count();
  return r;
}

TEST(SimEngineParity, EveryKnobComboMatchesLegacyBitForBit) {
  const ParityResult ref = RunChurnWorkload(EngineOptions{});
  ASSERT_GT(ref.trace.size(), 100u);
  for (int bits = 1; bits < 16; ++bits) {
    EngineOptions o;
    o.subqueues = (bits & 1) != 0;
    o.timer_wheel = (bits & 2) != 0;
    o.slab = (bits & 4) != 0;
    o.fast_handoff = (bits & 8) != 0;
    const ParityResult got = RunChurnWorkload(o);
    EXPECT_EQ(got.trace, ref.trace) << KnobName(o);
    EXPECT_EQ(got.end, ref.end) << KnobName(o);
    EXPECT_EQ(got.switches, ref.switches) << KnobName(o);
  }
}

TEST(SimEngineParity, FastResumeEngagesWithoutChangingSwitchCount) {
  auto ping_pong = [](EngineOptions o) {
    Engine eng(o);
    Chan<int> a(eng), b(eng);
    eng.Spawn("ping", [&] {
      for (int i = 0; i < 200; ++i) {
        a.Send(i, Microseconds(1));
        b.Recv();
      }
    });
    eng.Spawn("pong", [&] {
      for (int i = 0; i < 200; ++i) {
        a.Recv();
        b.Send(i, Microseconds(1));
      }
    });
    eng.Run();
    return std::pair<std::uint64_t, std::uint64_t>(eng.switch_count(),
                                                   eng.fast_resume_count());
  };
  const auto legacy = ping_pong(EngineOptions{});
  const auto opt = ping_pong(EngineOptions::AllOn());
  EXPECT_EQ(legacy.first, opt.first);
  EXPECT_EQ(legacy.second, 0u);
  EXPECT_GT(opt.second, 0u);  // the hot path actually engages
}

// Regression for the MakeChan retention leak: the engine used to keep a
// shared_ptr to every channel ever created, so transient channels (one per
// RPC in reqrep) accumulated for the whole run. It now holds weak refs and
// prunes; after a churn soak the live count must return to baseline.
TEST(SimEngine, TransientChannelsDoNotAccumulate) {
  Engine eng;
  Chan<int> keep(eng);  // the one deliberately long-lived channel
  eng.Spawn("churn", [&] {
    for (int i = 0; i < 5000; ++i) {
      Chan<int> tmp(eng);
      tmp.Send(i);
      EXPECT_EQ(*tmp.Recv(), i);
    }
  });
  eng.Run();
  EXPECT_EQ(eng.live_chan_count(), 1u);
}

TEST(RealTimeRuntime, ChannelAndDelayWork) {
  RealTimeRuntime rt(/*time_scale=*/1000.0);
  Chan<int> ch(rt);
  int got = 0;
  rt.Spawn("sender", [&] {
    rt.Delay(Milliseconds(50));  // 50 us wall time at scale 1000
    ch.Send(7);
  });
  rt.Spawn("receiver", [&] {
    auto v = ch.Recv();
    if (v) got = *v;
  });
  rt.Run();
  EXPECT_EQ(got, 7);
}

TEST(RealTimeRuntime, DaemonShutdownOnRun) {
  RealTimeRuntime rt(1000.0);
  Chan<int> ch(rt);
  Chan<int> ack(rt);
  std::atomic<int> served{0};
  std::atomic<bool> exited{false};
  rt.Spawn(
      "server",
      [&] {
        while (auto m = ch.Recv()) {
          served.fetch_add(*m);
          ack.Send(1);
        }
        exited = true;
      },
      /*daemon=*/true);
  rt.Spawn("client", [&] {
    ch.Send(3);
    ch.Send(4);
    // Wait for both to be served: shutdown may otherwise legally race the
    // daemon and discard queued messages.
    ack.Recv();
    ack.Recv();
  });
  rt.Run();
  EXPECT_TRUE(exited.load());
  EXPECT_EQ(served.load(), 7);
}

TEST(RealTimeRuntime, RecvTimeout) {
  RealTimeRuntime rt(1000.0);
  Chan<int> ch(rt);
  bool timed_out = false;
  rt.Spawn("receiver", [&] {
    auto v = ch.RecvUntil(rt.Now() + Milliseconds(30), &timed_out);
    EXPECT_FALSE(v.has_value());
  });
  rt.Run();
  EXPECT_TRUE(timed_out);
}

}  // namespace
}  // namespace mermaid::sim
