// Focused tests of protocol paths only exercised by benches elsewhere:
// same-type source preference, allocation-extent growth, dedup eviction,
// and reassembler garbage collection.
#include <gtest/gtest.h>

#include "mermaid/dsm/system.h"
#include "mermaid/base/wire.h"
#include "mermaid/net/fragment.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

TEST(SameTypeSource, ReadServedFromMatchingReplica) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  cfg.prefer_same_type_source = true;
  cfg.referee_check_access = true;
  // Host 0: Sun owner. Hosts 1, 2: Fireflies.
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(0, "owner", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 256);
    for (int i = 0; i < 256; ++i) h.Write<std::int32_t>(a + 4 * i, i + 1);
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).EventSet(2);
    sys.sync(0).P(1);
    sys.sync(0).P(1);
  });
  sys.SpawnThread(1, "ffly-first", [&](Host& h) {
    sys.sync(1).EventWait(2);
    // First Firefly reader: must fetch from the Sun and convert.
    for (int i = 0; i < 256; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4ull * i), i + 1);
    }
    sys.sync(1).EventSet(3);
    sys.sync(1).V(1);
  });
  sys.SpawnThread(2, "ffly-second", [&](Host& h) {
    sys.sync(2).EventWait(3);
    // Second Firefly reader: served from the first Firefly's replica, so
    // no conversion happens on this host.
    for (int i = 0; i < 256; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4ull * i), i + 1);
    }
    EXPECT_EQ(sys.host(2).stats().Count("dsm.conversions"), 0);
    sys.sync(2).V(1);
  });
  eng.Run();
  EXPECT_GE(sys.host(1).stats().Count("dsm.conversions"), 1);
  // Some manager granted a same-type source.
  std::int64_t grants = 0;
  for (int i = 0; i < 3; ++i) {
    grants += sys.host(i).stats().Count("dsm.same_type_source");
  }
  EXPECT_GE(grants, 1);
}

TEST(AllocExtent, GrowingAPageExtentIsVisibleThroughTransfers) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(0, "writer", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kInt, 8);
    for (int i = 0; i < 8; ++i) h.Write<std::int32_t>(a + 4 * i, 10 + i);
    sys.sync(0).EventSet(1);
    sys.sync(0).EventWait(2);
    // Extend the same page's allocation and fill the new elements.
    GlobalAddr b = sys.Alloc(0, Reg::kInt, 8);
    EXPECT_EQ(b, a + 32);  // same page, bumped
    // The page is currently owned by host 1; these writes fault it back.
    for (int i = 0; i < 8; ++i) h.Write<std::int32_t>(b + 4 * i, 20 + i);
    sys.sync(0).EventSet(3);
  });
  sys.SpawnThread(1, "reader", [&](Host& h) {
    sys.sync(1).EventWait(1);
    // Take the page (write) so the writer's extension must transfer back.
    h.Write<std::int32_t>(0, 10);
    sys.sync(1).EventSet(2);
    sys.sync(1).EventWait(3);
    for (int i = 1; i < 8; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(4ull * i), 10 + i);
    }
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(h.Read<std::int32_t>(32 + 4ull * i), 20 + i);
    }
  });
  eng.Run();
}

TEST(Reassembler, StalePartialsAreCollected) {
  sim::Engine eng;
  net::Network net(eng, {});
  auto rx = net.Attach(1, &arch::Sun3Profile());
  net.Attach(0, &arch::Sun3Profile());
  eng.Spawn("t", [&] {
    net::Reassembler re(eng, /*stale_after=*/Milliseconds(100));
    // Hand-build fragment 0 of a 3-fragment message.
    base::WireWriter w;
    w.U64(/*msg_id=*/5);
    w.U16(/*src=*/0);
    w.U16(/*index=*/0);
    w.U16(/*count=*/3);
    w.U8(0);
    std::vector<std::uint8_t> payload(100, 7);
    w.Raw(payload);
    net::Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.bytes = std::move(w).Take();
    EXPECT_FALSE(re.OnPacket(pkt).has_value());
    eng.Delay(Milliseconds(200));
    // Any later packet triggers collection of the stale partial.
    base::WireWriter w2;
    w2.U64(6);
    w2.U16(0);
    w2.U16(0);
    w2.U16(1);
    w2.U8(0);
    net::Packet pkt2;
    pkt2.src = 0;
    pkt2.dst = 1;
    pkt2.bytes = std::move(w2).Take();
    EXPECT_TRUE(re.OnPacket(pkt2).has_value());
    EXPECT_EQ(re.stats().Count("frag.stale_partials_dropped"), 1);
  });
  eng.Run();
  (void)rx;
}

TEST(Dedup, WindowEvictionForgetsOldRequests) {
  sim::Engine eng;
  net::Network net(eng, {});
  net::Endpoint::Config epcfg;
  epcfg.dedup_window = 4;  // tiny window
  net::Endpoint a(eng, net, 0, &arch::Sun3Profile(), epcfg);
  net::Endpoint b(eng, net, 1, &arch::Sun3Profile(), epcfg);
  int handled = 0;
  b.SetHandler(1, [&](net::RequestContext ctx) {
    ++handled;
    ctx.Reply({});
  });
  a.Start();
  b.Start();
  eng.Spawn("client", [&] {
    for (int i = 0; i < 10; ++i) {
      auto r = a.Call(1, 1, {static_cast<std::uint8_t>(i)});
      EXPECT_TRUE(r.has_value());
    }
  });
  eng.Run();
  EXPECT_EQ(handled, 10);  // eviction never breaks fresh requests
}

}  // namespace
}  // namespace mermaid::dsm
