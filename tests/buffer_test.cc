// Buffer/BufferChain semantics, the bulk-copy accounting used to prove the
// zero-copy data path, and the strided bulk-convert entry point.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/base/buffer.h"
#include "mermaid/base/wire.h"

namespace mermaid::base {
namespace {

std::vector<std::uint8_t> Iota(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), static_cast<std::uint8_t>(0));
  return v;
}

TEST(Buffer, AdoptsVectorWithoutCopying) {
  BulkCopyReset();
  std::vector<std::uint8_t> v = Iota(1024);
  const std::uint8_t* raw = v.data();
  Buffer b(std::move(v));
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_EQ(b.data(), raw);  // storage was adopted, not duplicated
  EXPECT_EQ(BulkCopyCount(), 0u);
}

TEST(Buffer, SliceSharesStorageAndClamps) {
  Buffer b(Iota(100));
  Buffer mid = b.Slice(10, 20);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data(), b.data() + 10);
  EXPECT_EQ(mid[0], 10);
  // Clamped: length runs off the end, offset past the end is empty.
  EXPECT_EQ(b.Slice(90, 50).size(), 10u);
  EXPECT_TRUE(b.Slice(200).empty());
  // A slice of a slice composes offsets.
  EXPECT_EQ(mid.Slice(5, 5)[0], 15);
}

TEST(Buffer, CopyOfIsCountedAboveThreshold) {
  BulkCopyReset();
  std::vector<std::uint8_t> small(kBulkCopyThreshold - 1, 7);
  std::vector<std::uint8_t> big(kBulkCopyThreshold, 7);
  Buffer s = Buffer::CopyOf(small);
  EXPECT_EQ(BulkCopyCount(), 0u);  // below threshold: not counted
  Buffer b = Buffer::CopyOf(big);
  EXPECT_EQ(BulkCopyCount(), 1u);
  EXPECT_EQ(BulkCopyBytes(), kBulkCopyThreshold);
  EXPECT_EQ(s.size(), small.size());
  EXPECT_EQ(b.size(), big.size());
}

TEST(BufferChain, AppendSkipsEmptyAndIndexesAcrossChunks) {
  BufferChain c;
  c.Append(Buffer());  // empty chunks are dropped
  c.Append(Buffer(Iota(3)));
  c.Append(Buffer());
  c.Append(Buffer(std::vector<std::uint8_t>{10, 11}));
  EXPECT_EQ(c.chunk_count(), 2u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[2], 2);
  EXPECT_EQ(c[3], 10);
  EXPECT_EQ(c[4], 11);
  EXPECT_EQ(c, (std::vector<std::uint8_t>{0, 1, 2, 10, 11}));
}

TEST(BufferChain, SliceIsZeroCopyAcrossChunkBoundaries) {
  BulkCopyReset();
  BufferChain c;
  c.Append(Buffer(Iota(1000)));
  c.Append(Buffer(Iota(1000)));
  BufferChain mid = c.Slice(500, 1000);  // spans both chunks
  EXPECT_EQ(mid.size(), 1000u);
  EXPECT_EQ(mid[0], Iota(1000)[500]);
  EXPECT_EQ(mid[499], Iota(1000)[999]);
  EXPECT_EQ(mid[500], 0);
  EXPECT_EQ(BulkCopyCount(), 0u);  // pure views
}

TEST(BufferChain, CopyToAndToVectorAreCounted) {
  BufferChain c;
  c.Append(Buffer(Iota(512)));
  c.Append(Buffer(Iota(512)));
  BulkCopyReset();
  std::vector<std::uint8_t> out(1024);
  EXPECT_EQ(c.CopyTo(out), 1024u);
  EXPECT_EQ(BulkCopyCount(), 1u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[512], 0);
  std::vector<std::uint8_t> v = c.ToVector();
  EXPECT_EQ(BulkCopyCount(), 2u);
  EXPECT_EQ(v, out);
}

TEST(BufferChain, FlattenSingleChunkIsFree) {
  Buffer b(Iota(2048));
  BufferChain c(b);
  BulkCopyReset();
  Buffer f = c.Flatten();
  EXPECT_EQ(f.data(), b.data());  // same storage, no copy
  EXPECT_EQ(BulkCopyCount(), 0u);

  c.Append(Buffer(Iota(512)));
  Buffer g = c.Flatten();
  EXPECT_EQ(g.size(), 2560u);
  EXPECT_EQ(BulkCopyCount(), 1u);
}

TEST(WireWriter, RawIsCountedAboveThreshold) {
  BulkCopyReset();
  WireWriter w;
  std::vector<std::uint8_t> big = Iota(1024);
  w.Raw(big);
  EXPECT_EQ(BulkCopyCount(), 1u);
  w.U32(7);
  EXPECT_EQ(BulkCopyCount(), 1u);  // small writes are free
}

TEST(ConvertStrided, MatchesConvertBufferAtNaturalStride) {
  arch::TypeRegistry reg;
  arch::ConvertContext ctx;
  ctx.src = &arch::Sun3Profile();      // big-endian
  ctx.dst = &arch::FireflyProfile();   // little-endian
  std::vector<std::uint8_t> a = Iota(64);
  std::vector<std::uint8_t> b = a;
  reg.ConvertBuffer(arch::TypeRegistry::kInt, a, 16, ctx);
  reg.ConvertStrided(arch::TypeRegistry::kInt, b, 16, 4, ctx);
  EXPECT_EQ(a, b);
}

TEST(ConvertStrided, LeavesGapBytesUntouched) {
  arch::TypeRegistry reg;
  arch::ConvertContext ctx;
  ctx.src = &arch::Sun3Profile();
  ctx.dst = &arch::FireflyProfile();
  // Slot layout: 2-byte shorts in 8-byte slots; gaps hold a sentinel.
  std::vector<std::uint8_t> data(8 * 10, 0xEE);
  for (int i = 0; i < 10; ++i) {
    data[8 * i] = 0x12;
    data[8 * i + 1] = 0x34;
  }
  reg.ConvertStrided(arch::TypeRegistry::kShort, data, 10, 8, ctx);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(data[8 * i], 0x34);      // swapped
    EXPECT_EQ(data[8 * i + 1], 0x12);
    for (int g = 2; g < 8; ++g) EXPECT_EQ(data[8 * i + g], 0xEE);
  }
}

}  // namespace
}  // namespace mermaid::base
