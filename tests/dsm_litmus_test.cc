// Sequential-consistency litmus tests.
//
// Li's write-invalidate MRSW protocol with blocking writes provides
// sequential consistency: writes block until all other copies are
// invalidated, so the classic weak-memory outcomes must be impossible.
// Each litmus runs many times across different virtual-time offsets to
// sample distinct interleavings (the engine is deterministic per offset).
#include <gtest/gtest.h>

#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

SystemConfig LitmusConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  cfg.referee_check_access = true;
  return cfg;
}

// Message passing: W: x=1; y=1.   R: r1=y; r2=x.
// Forbidden outcome: r1==1 && r2==0.
TEST(Litmus, MessagePassing) {
  for (int offset = 0; offset <= 60; offset += 6) {
    sim::Engine eng;
    System sys(eng, LitmusConfig(),
               {&arch::Sun3Profile(), &arch::FireflyProfile(),
                &arch::FireflyProfile()});
    sys.Start();
    int r1 = -1, r2 = -1;
    sys.SpawnThread(0, "master", [&](Host& h) {
      GlobalAddr x = sys.Alloc(0, Reg::kInt, 1);
      // Put y on a different page (different type run).
      GlobalAddr y = sys.Alloc(0, Reg::kLong, 1);
      h.Write<std::int32_t>(x, 0);
      h.Write<std::int64_t>(y, 0);
      sys.sync(0).SemInit(1, 0);
      sys.SpawnThread(1, "writer", [&, x, y](Host& hh) {
        hh.Compute(100.0 * offset);
        hh.Write<std::int32_t>(x, 1);
        hh.Write<std::int64_t>(y, 1);
        sys.sync(1).V(1);
      });
      sys.SpawnThread(2, "reader", [&, x, y](Host& hh) {
        hh.Compute(3000.0);  // land mid-write on some offsets
        r1 = static_cast<int>(hh.Read<std::int64_t>(y));
        r2 = hh.Read<std::int32_t>(x);
        sys.sync(2).V(1);
      });
      sys.sync(0).P(1);
      sys.sync(0).P(1);
    });
    eng.Run();
    EXPECT_FALSE(r1 == 1 && r2 == 0)
        << "SC violation at offset " << offset;
  }
}

// Store buffering: A: x=1; r1=y.   B: y=1; r2=x.
// Forbidden under SC: r1==0 && r2==0.
TEST(Litmus, StoreBuffering) {
  for (int offset = 0; offset <= 40; offset += 4) {
    sim::Engine eng;
    System sys(eng, LitmusConfig(),
               {&arch::Sun3Profile(), &arch::FireflyProfile(),
                &arch::FireflyProfile()});
    sys.Start();
    int r1 = -1, r2 = -1;
    sys.SpawnThread(0, "master", [&](Host& h) {
      GlobalAddr x = sys.Alloc(0, Reg::kInt, 1);
      GlobalAddr y = sys.Alloc(0, Reg::kLong, 1);
      h.Write<std::int32_t>(x, 0);
      h.Write<std::int64_t>(y, 0);
      sys.sync(0).SemInit(1, 0);
      sys.SpawnThread(1, "a", [&, x, y](Host& hh) {
        hh.Compute(50.0 * offset);
        hh.Write<std::int32_t>(x, 1);
        r1 = static_cast<int>(hh.Read<std::int64_t>(y));
        sys.sync(1).V(1);
      });
      sys.SpawnThread(2, "b", [&, x, y](Host& hh) {
        hh.Compute(2000.0);
        hh.Write<std::int64_t>(y, 1);
        r2 = hh.Read<std::int32_t>(x);
        sys.sync(2).V(1);
      });
      sys.sync(0).P(1);
      sys.sync(0).P(1);
    });
    eng.Run();
    EXPECT_FALSE(r1 == 0 && r2 == 0)
        << "SC violation at offset " << offset;
  }
}

// Coherence (same location): two writers to one cell; both then read it
// and must agree with each other on one of the two values.
TEST(Litmus, CoherenceSingleLocation) {
  for (int offset = 0; offset <= 40; offset += 8) {
    sim::Engine eng;
    System sys(eng, LitmusConfig(),
               {&arch::Sun3Profile(), &arch::FireflyProfile(),
                &arch::FireflyProfile()});
    sys.Start();
    int r1 = -1, r2 = -1;
    sys.SpawnThread(0, "master", [&](Host& h) {
      GlobalAddr x = sys.Alloc(0, Reg::kInt, 1);
      h.Write<std::int32_t>(x, 0);
      sys.sync(0).SemInit(1, 0);
      sys.SpawnThread(1, "a", [&, x](Host& hh) {
        hh.Compute(50.0 * offset);
        hh.Write<std::int32_t>(x, 1);
        sys.sync(1).V(1);
      });
      sys.SpawnThread(2, "b", [&, x](Host& hh) {
        hh.Compute(1000.0);
        hh.Write<std::int32_t>(x, 2);
        sys.sync(2).V(1);
      });
      sys.sync(0).P(1);
      sys.sync(0).P(1);
      r1 = h.Read<std::int32_t>(x);
      sys.SpawnThread(1, "check", [&, x](Host& hh) {
        r2 = hh.Read<std::int32_t>(x);
        sys.sync(1).V(1);
      });
      sys.sync(0).P(1);
    });
    eng.Run();
    EXPECT_TRUE(r1 == 1 || r1 == 2);
    EXPECT_EQ(r1, r2) << "hosts disagree on the final value";
  }
}

}  // namespace
}  // namespace mermaid::dsm
