#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "mermaid/arch/vaxfloat.h"
#include "mermaid/base/rng.h"

namespace mermaid::arch {
namespace {

float RoundTripF(float v, VaxConvertResult* enc = nullptr,
                 VaxConvertResult* dec = nullptr) {
  std::uint8_t img[4];
  auto r1 = IeeeToVaxF(v, img);
  float out = 0;
  auto r2 = VaxFToIeee(img, &out);
  if (enc != nullptr) *enc = r1;
  if (dec != nullptr) *dec = r2;
  return out;
}

double RoundTripD(double v, VaxConvertResult* enc = nullptr,
                  VaxConvertResult* dec = nullptr) {
  std::uint8_t img[8];
  auto r1 = IeeeToVaxD(v, img);
  double out = 0;
  auto r2 = VaxDToIeee(img, &out);
  if (enc != nullptr) *enc = r1;
  if (dec != nullptr) *dec = r2;
  return out;
}

TEST(VaxF, SimpleValuesRoundTripExactly) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -0.5f, 2.0f, 3.1415927f,
                  -123456.78f, 1e-20f, 1e20f, 65536.0f, 1.0f / 3.0f}) {
    VaxConvertResult enc;
    EXPECT_EQ(RoundTripF(v, &enc), v) << v;
    EXPECT_EQ(enc, VaxConvertResult::kExact) << v;
  }
}

TEST(VaxF, KnownBitPattern) {
  // 1.0 in VAX-F: s=0, e=129 (since 1.0 = 0.1b * 2^1 biased by 128),
  // f=0 -> word0 = 129 << 7 = 0x4080, word1 = 0.
  std::uint8_t img[4];
  EXPECT_EQ(IeeeToVaxF(1.0f, img), VaxConvertResult::kExact);
  EXPECT_EQ(img[0], 0x80);
  EXPECT_EQ(img[1], 0x40);
  EXPECT_EQ(img[2], 0x00);
  EXPECT_EQ(img[3], 0x00);
}

TEST(VaxF, NegativeSignBit) {
  std::uint8_t img[4];
  IeeeToVaxF(-1.0f, img);
  EXPECT_EQ(img[1] & 0x80, 0x80);  // sign lives in bit 15 of word0
  float out = 0;
  VaxFToIeee(img, &out);
  EXPECT_EQ(out, -1.0f);
}

TEST(VaxF, InfinityAndNanClampToMax) {
  VaxConvertResult enc;
  float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(RoundTripF(inf, &enc), VaxFMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kClampedSpecial);

  EXPECT_EQ(RoundTripF(-inf, &enc), -VaxFMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kClampedSpecial);

  float nan = std::numeric_limits<float>::quiet_NaN();
  float out = RoundTripF(nan, &enc);
  EXPECT_EQ(enc, VaxConvertResult::kClampedSpecial);
  EXPECT_FALSE(std::isnan(out));  // NaN has no VAX image
}

TEST(VaxF, OverflowClampsUnderflowFlushes) {
  VaxConvertResult enc;
  // Just above the VAX-F max magnitude.
  float big = std::numeric_limits<float>::max();
  EXPECT_EQ(RoundTripF(big, &enc), VaxFMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kClampedOverflow);

  // IEEE denormal flushes to zero.
  float denorm = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(RoundTripF(denorm, &enc), 0.0f);
  EXPECT_EQ(enc, VaxConvertResult::kUnderflowedToZero);
}

TEST(VaxF, MaxIsRepresentable) {
  VaxConvertResult enc;
  EXPECT_EQ(RoundTripF(VaxFMaxAsIeee(), &enc), VaxFMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kExact);
}

TEST(VaxF, SmallVaxExponentsDecodeToIeeeDenormals) {
  // VAX e=1 -> value 1.f * 2^-128, below the smallest IEEE normal 2^-126.
  std::uint8_t img[4] = {0x80, 0x00, 0x00, 0x00};  // w0 = e=1<<7, f=0
  float out = 0;
  EXPECT_EQ(VaxFToIeee(img, &out), VaxConvertResult::kExact);
  EXPECT_EQ(out, std::ldexp(1.0f, -128));
}

TEST(VaxF, ReservedOperandDecodesToNan) {
  // s=1, e=0: VAX reserved operand.
  std::uint8_t img[4] = {0x00, 0x80, 0x00, 0x00};
  float out = 0;
  EXPECT_EQ(VaxFToIeee(img, &out), VaxConvertResult::kReservedOperand);
  EXPECT_TRUE(std::isnan(out));
}

TEST(VaxF, DirtyZeroDecodesToZero) {
  // s=0, e=0 with nonzero fraction is still zero on a VAX.
  std::uint8_t img[4] = {0x55, 0x00, 0x34, 0x12};
  float out = 1.0f;
  EXPECT_EQ(VaxFToIeee(img, &out), VaxConvertResult::kExact);
  EXPECT_EQ(out, 0.0f);
}

TEST(VaxD, SimpleValuesRoundTripExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.5, 3.141592653589793, -2.718281828459045,
                   1e-30, 1e30, 12345678.9012345}) {
    VaxConvertResult enc;
    EXPECT_EQ(RoundTripD(v, &enc), v) << v;
    EXPECT_EQ(enc, VaxConvertResult::kExact) << v;
  }
}

TEST(VaxD, KnownBitPattern) {
  std::uint8_t img[8];
  EXPECT_EQ(IeeeToVaxD(1.0, img), VaxConvertResult::kExact);
  EXPECT_EQ(img[0], 0x80);
  EXPECT_EQ(img[1], 0x40);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(img[i], 0x00) << i;
}

TEST(VaxD, RangeOverflowAndUnderflow) {
  VaxConvertResult enc;
  // IEEE double range (~1e308) vastly exceeds VAX-D (~1.7e38): clamp.
  EXPECT_EQ(RoundTripD(1e100, &enc), VaxDMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kClampedOverflow);
  EXPECT_EQ(RoundTripD(-1e100, &enc), -VaxDMaxAsIeee());

  // Below ~2.9e-39 (2^-128): flush to zero.
  EXPECT_EQ(RoundTripD(1e-100, &enc), 0.0);
  EXPECT_EQ(enc, VaxConvertResult::kUnderflowedToZero);
}

TEST(VaxD, SpecialsClamp) {
  VaxConvertResult enc;
  EXPECT_EQ(RoundTripD(std::numeric_limits<double>::infinity(), &enc),
            VaxDMaxAsIeee());
  EXPECT_EQ(enc, VaxConvertResult::kClampedSpecial);
  RoundTripD(std::numeric_limits<double>::quiet_NaN(), &enc);
  EXPECT_EQ(enc, VaxConvertResult::kClampedSpecial);
}

TEST(VaxD, ReservedOperandDecodesToNan) {
  std::uint8_t img[8] = {0x00, 0x80, 0, 0, 0, 0, 0, 0};
  double out = 0;
  EXPECT_EQ(VaxDToIeee(img, &out), VaxConvertResult::kReservedOperand);
  EXPECT_TRUE(std::isnan(out));
}

// The paper: "floating point numbers can lose precision when they are
// converted". VAX-D carries 55 fraction bits; decoding rounds to IEEE's 52.
TEST(VaxD, ExcessPrecisionRoundsNotTruncates) {
  // Build a VAX-D value with nonzero low fraction bits: 1 + 2^-55.
  std::uint8_t img[8];
  IeeeToVaxD(1.0, img);
  img[6] |= 0x01;  // fraction bit <0> (2^-55): img[6] is the low byte of w3
  double out = 0;
  EXPECT_EQ(VaxDToIeee(img, &out), VaxConvertResult::kExact);
  // 1 + 2^-55 rounds down to exactly 1.0 under round-to-nearest.
  EXPECT_EQ(out, 1.0);

  // 1 + 2^-53 + 2^-55 should round up to 1 + 2^-52.
  IeeeToVaxD(1.0, img);
  // f bits: bit 2 is 2^-53 relative, bit 0 is 2^-55.
  img[6] |= 0x05;
  EXPECT_EQ(VaxDToIeee(img, &out), VaxConvertResult::kExact);
  EXPECT_EQ(out, 1.0 + std::ldexp(1.0, -52));
}

// Property sweep: random finite floats in VAX range round-trip exactly.
class VaxRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VaxRoundTrip, RandomFloatsInRange) {
  base::Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    auto bits = static_cast<std::uint32_t>(rng.NextU64());
    float v = std::bit_cast<float>(bits);
    if (!std::isfinite(v)) continue;
    VaxConvertResult enc;
    float back = RoundTripF(v, &enc);
    if (enc == VaxConvertResult::kExact) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(back),
                std::bit_cast<std::uint32_t>(v))
          << v;
    } else {
      float mag = std::fabs(v);
      EXPECT_TRUE(mag > VaxFMaxAsIeee() || mag < std::ldexp(1.0f, -126))
          << v << " lossy without being out of range";
    }
  }
}

TEST_P(VaxRoundTrip, RandomDoublesInRange) {
  base::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 20000; ++i) {
    double v = std::bit_cast<double>(rng.NextU64());
    if (!std::isfinite(v)) continue;
    VaxConvertResult enc;
    double back = RoundTripD(v, &enc);
    if (enc == VaxConvertResult::kExact) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
                std::bit_cast<std::uint64_t>(v))
          << v;
    } else {
      double mag = std::fabs(v);
      EXPECT_TRUE(mag > VaxDMaxAsIeee() || mag < std::ldexp(1.0, -128))
          << v << " lossy without being out of range";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VaxRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 1990));

}  // namespace
}  // namespace mermaid::arch
