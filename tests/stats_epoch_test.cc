// Histogram buckets/percentiles, registry epoch semantics, and the
// cross-run accounting regression: counters (including the process-global
// bulk-copy audit) used to accumulate across repeated System runs in one
// process, so the second run reported cumulative numbers.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/base/buffer.h"
#include "mermaid/base/stats.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid {
namespace {

TEST(Histogram, EmptyAndSingleValue) {
  base::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);

  h.Add(1.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1.0);
  // Estimate is clamped to observed min/max, so a single value is exact.
  EXPECT_EQ(h.Percentile(0), 1.0);
  EXPECT_EQ(h.Percentile(50), 1.0);
  EXPECT_EQ(h.Percentile(100), 1.0);
}

TEST(Histogram, BucketsBracketTheirValues) {
  EXPECT_EQ(base::Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(base::Histogram::BucketOf(-3.5), 0);
  EXPECT_EQ(base::Histogram::BucketOf(1.0), 22);
  EXPECT_DOUBLE_EQ(base::Histogram::BucketLow(22), 1.0);
  for (double v : {0.005, 0.7, 1.0, 3.0, 42.0, 5000.0}) {
    const int b = base::Histogram::BucketOf(v);
    ASSERT_GE(b, 1);
    ASSERT_LT(b, base::Histogram::kBuckets);
    EXPECT_GE(v, base::Histogram::BucketLow(b)) << v;
    EXPECT_LT(v, base::Histogram::BucketHigh(b)) << v;
  }
}

TEST(Histogram, PercentilesAreMonotoneAndHalfOctaveAccurate) {
  base::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100);
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  const double p99 = h.Percentile(99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Half-octave buckets keep the estimate within ~sqrt(2) of the truth.
  EXPECT_GT(p50, 50 / 1.5);
  EXPECT_LT(p50, 50 * 1.5);
  EXPECT_GT(p90, 90 / 1.5);
  EXPECT_LT(p90, 90 * 1.5);
}

TEST(Histogram, MergeCombinesExactCountSumMinMax) {
  base::Histogram a, b;
  for (int i = 0; i < 10; ++i) a.Add(2.0);
  for (int i = 0; i < 5; ++i) b.Add(8.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 15);
  EXPECT_DOUBLE_EQ(a.sum(), 10 * 2.0 + 5 * 8.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_EQ(a.buckets()[base::Histogram::BucketOf(2.0)], 10);
  EXPECT_EQ(a.buckets()[base::Histogram::BucketOf(8.0)], 5);
}

TEST(StatsRegistry, EpochBaselineReportsRunLocalDeltas) {
  base::StatsRegistry r;
  r.Inc("a", 5);
  r.BeginEpoch();
  r.Inc("a", 3);
  r.Inc("b", 2);
  EXPECT_EQ(r.Count("a"), 8) << "totals keep history";
  EXPECT_EQ(r.CountSinceEpoch("a"), 3) << "epoch view is run-local";
  EXPECT_EQ(r.CountSinceEpoch("b"), 2);
  const auto since = r.CountersSinceEpoch();
  EXPECT_EQ(since.size(), 2u);
  EXPECT_EQ(since.at("a"), 3);
  EXPECT_EQ(since.at("b"), 2);

  const std::uint64_t before = r.epoch();
  r.Clear();
  EXPECT_EQ(r.epoch(), before + 1);
  EXPECT_EQ(r.Count("a"), 0);
  EXPECT_TRUE(r.Counters().empty());
}

struct RunResult {
  std::map<std::string, std::int64_t> counters;
  std::int64_t bulk_copies = 0;
  std::string report;
};

// One deterministic heterogeneous run: host 1 (Firefly) writes two pages,
// host 0 (Sun) reads them back (with conversion). Identical every time the
// process runs it — any difference between two runs is leaked global state.
RunResult RunOnce() {
  base::BulkCopyReset();  // run-local copy accounting
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.page_bytes_override = 8192;
  std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile(),
                                              &arch::FireflyProfile()};
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  const dsm::GlobalAddr page_b = 8192;
  sys.SpawnThread(1, "writer", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(h.id(), arch::TypeRegistry::kInt, 4096);
    std::vector<std::int32_t> fill(2048, 7);
    h.WriteBlock<std::int32_t>(a, fill.data(), fill.size());
    h.WriteBlock<std::int32_t>(a + page_b, fill.data(), fill.size());
    sys.sync(1).V(1);
  });
  sys.SpawnThread(0, "reader", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).P(1);
    h.Touch(0, dsm::Access::kRead);
    h.Touch(page_b, dsm::Access::kRead);
  });
  eng.Run();
  RunResult r;
  r.counters = sys.GatherStats().Counters();
  r.bulk_copies = base::BulkCopyCount();
  r.report = sys.ReportStats();
  return r;
}

TEST(StatsEpoch, SecondSystemRunReportsRunLocalNumbers) {
  const RunResult r1 = RunOnce();
  const RunResult r2 = RunOnce();
  ASSERT_FALSE(r1.counters.empty());
  EXPECT_GT(r1.counters.at("dsm.read_faults"), 0);
  // The regression: before reset/epoch semantics, run 2's counters (and the
  // process-global bulk-copy audit) included run 1's numbers.
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_GT(r1.bulk_copies, 0);
  EXPECT_EQ(r1.bulk_copies, r2.bulk_copies);
}

TEST(StatsEpoch, FaultLatencyHistogramsSurfaceInReport) {
  const RunResult r = RunOnce();
  EXPECT_NE(r.report.find("hist dsm.fault_service_ms"), std::string::npos)
      << r.report;
  EXPECT_NE(r.report.find("hist reqrep.rtt_ms"), std::string::npos);
  EXPECT_NE(r.report.find("hist dsm.convert_time_ms"), std::string::npos);
}

TEST(StatsEpoch, ResetStatsClearsEverythingIncludingBulkCopyAudit) {
  base::BulkCopyReset();
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.page_bytes_override = 8192;
  std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile(),
                                              &arch::Sun3Profile()};
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  sys.SpawnThread(1, "writer", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(h.id(), arch::TypeRegistry::kInt, 2048);
    std::vector<std::int32_t> fill(2048, 1);
    h.WriteBlock<std::int32_t>(a, fill.data(), fill.size());
  });
  sys.SpawnThread(0, "reader", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 0);  // exercise the sync path too
    h.Touch(0, dsm::Access::kRead);
  });
  eng.Run();
  ASSERT_FALSE(sys.GatherStats().Counters().empty());

  sys.ResetStats();
  EXPECT_TRUE(sys.GatherStats().Counters().empty());
  EXPECT_EQ(base::BulkCopyCount(), 0);
  EXPECT_EQ(sys.tracer().total_recorded(), 0u);
}

}  // namespace
}  // namespace mermaid
