#include <gtest/gtest.h>

#include "mermaid/arch/type_registry.h"
#include "mermaid/dsm/allocator.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

TEST(Allocator, OneTypePerPage) {
  Reg reg;
  Allocator alloc(&reg, 64 * 1024, 8192);
  auto ints = alloc.Alloc(Reg::kInt, 10);
  auto doubles = alloc.Alloc(Reg::kDouble, 10);
  ASSERT_TRUE(ints.has_value());
  ASSERT_TRUE(doubles.has_value());
  // Different types never share a page.
  EXPECT_NE(ints->addr / 8192, doubles->addr / 8192);
  EXPECT_EQ(alloc.TypeOfPage(static_cast<PageNum>(ints->addr / 8192)),
            Reg::kInt);
  EXPECT_EQ(alloc.TypeOfPage(static_cast<PageNum>(doubles->addr / 8192)),
            Reg::kDouble);
}

TEST(Allocator, SameTypeSharesPage) {
  Reg reg;
  Allocator alloc(&reg, 64 * 1024, 8192);
  auto a = alloc.Alloc(Reg::kInt, 10);
  auto b = alloc.Alloc(Reg::kInt, 10);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(b->addr, a->addr + 40);
  EXPECT_EQ(a->addr / 8192, b->addr / 8192);
  // Extent covers both allocations.
  EXPECT_EQ(alloc.AllocBytesOfPage(static_cast<PageNum>(a->addr / 8192)),
            80u);
}

TEST(Allocator, LargeAllocationSpansWholePages) {
  Reg reg;
  Allocator alloc(&reg, 256 * 1024, 8192);
  auto a = alloc.Alloc(Reg::kInt, 5000);  // 20000 bytes -> 3 pages
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->addr % 8192, 0u);
  EXPECT_EQ(a->touched_pages.size(), 3u);
  EXPECT_EQ(alloc.AllocBytesOfPage(a->touched_pages[0]), 8192u);
  EXPECT_EQ(alloc.AllocBytesOfPage(a->touched_pages[1]), 8192u);
  EXPECT_EQ(alloc.AllocBytesOfPage(a->touched_pages[2]), 20000u - 2 * 8192u);
}

TEST(Allocator, NonPowerOfTwoRecordGetsPaddedStride) {
  Reg reg;
  // 3 shorts = 6 bytes -> stride 8.
  arch::TypeId rec = reg.RegisterRecord("odd", {{Reg::kShort, 3}});
  Allocator alloc(&reg, 64 * 1024, 8192);
  auto a = alloc.Alloc(rec, 2);
  auto b = alloc.Alloc(rec, 1);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(b->addr - a->addr, 16u);  // two 8-byte strides
}

TEST(Allocator, RegionExhaustion) {
  Reg reg;
  Allocator alloc(&reg, 16 * 1024, 8192);
  EXPECT_TRUE(alloc.Alloc(Reg::kInt, 2048).has_value());   // page 0
  EXPECT_TRUE(alloc.Alloc(Reg::kChar, 8192).has_value());  // page 1
  EXPECT_FALSE(alloc.Alloc(Reg::kInt, 1).has_value());     // full
}

TEST(Allocator, RejectsBogusRequests) {
  Reg reg;
  Allocator alloc(&reg, 64 * 1024, 8192);
  EXPECT_FALSE(alloc.Alloc(Reg::kInt, 0).has_value());
  EXPECT_FALSE(alloc.Alloc(static_cast<arch::TypeId>(999), 1).has_value());
  arch::TypeId big = reg.RegisterRecord("big", {{Reg::kDouble, 2000}});
  EXPECT_FALSE(alloc.Alloc(big, 1).has_value());  // element > page
}

TEST(Allocator, ManyRandomAllocationsKeepInvariants) {
  Reg reg;
  arch::TypeId rec =
      reg.RegisterRecord("r", {{Reg::kInt, 3}, {Reg::kFloat, 3},
                               {Reg::kShort, 4}});
  Allocator alloc(&reg, 1u << 20, 1024);
  const arch::TypeId types[] = {Reg::kChar, Reg::kShort, Reg::kInt,
                                Reg::kDouble, rec};
  std::map<PageNum, arch::TypeId> page_types;
  for (int i = 0; i < 200; ++i) {
    arch::TypeId t = types[i % 5];
    auto r = alloc.Alloc(t, 1 + (i * 7) % 50);
    ASSERT_TRUE(r.has_value());
    for (PageNum p : r->touched_pages) {
      auto [it, inserted] = page_types.emplace(p, t);
      EXPECT_EQ(it->second, t) << "page " << p << " holds two types";
      EXPECT_LE(alloc.AllocBytesOfPage(p), 1024u);
    }
  }
}

}  // namespace
}  // namespace mermaid::dsm
