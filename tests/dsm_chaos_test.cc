// Chaos tests: the full protocol stack under scripted failure injection.
//
// Each scenario drives the system through a correlated failure (sustained
// heavy loss, a network partition that heals, a paused host, a grant whose
// requester goes dark) and asserts three things: every workload terminates,
// the coherence referee stays clean, and at quiescence no manager entry is
// still busy and no transfer is still queued. The network RNG is seeded, so
// every run samples the same interleaving — a passing chaos test is a
// regression test, not a coin flip.
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

// Loss-hardened configuration shared by the chaos scenarios: short call
// timeout with many attempts, a fast janitor, and early confirm probes so
// the recovery machinery actually runs inside the test window.
SystemConfig ChaosConfig(std::uint64_t seed, double loss) {
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.referee_check_access = true;
  cfg.net.seed = seed;
  cfg.net.loss_probability = loss;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 300;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  return cfg;
}

void ExpectQuiescent(System& sys) {
  const auto q = sys.CheckQuiescent();
  EXPECT_EQ(q.busy_entries, 0u) << "manager entries still busy at quiescence";
  EXPECT_EQ(q.pending_transfers, 0u) << "transfers still queued at quiescence";
}

// Message-passing litmus under sustained 30% loss: retransmission and
// confirm recovery must preserve sequential consistency, not just liveness.
TEST(Chaos, LitmusMessagePassingUnderHeavyLoss) {
  for (int offset = 0; offset <= 30; offset += 10) {
    sim::Engine eng;
    System sys(eng, ChaosConfig(9000 + offset, 0.30),
               {&arch::Sun3Profile(), &arch::FireflyProfile(),
                &arch::FireflyProfile()});
    sys.Start();
    int r1 = -1, r2 = -1;
    sys.SpawnThread(0, "master", [&](Host& h) {
      GlobalAddr x = sys.Alloc(0, Reg::kInt, 1);
      GlobalAddr y = sys.Alloc(0, Reg::kLong, 1);
      h.Write<std::int32_t>(x, 0);
      h.Write<std::int64_t>(y, 0);
      sys.sync(0).SemInit(1, 0);
      sys.SpawnThread(1, "writer", [&, x, y](Host& hh) {
        hh.Compute(100.0 * offset);
        hh.Write<std::int32_t>(x, 1);
        hh.Write<std::int64_t>(y, 1);
        sys.sync(1).V(1);
      });
      sys.SpawnThread(2, "reader", [&, x, y](Host& hh) {
        hh.Compute(3000.0);
        r1 = static_cast<int>(hh.Read<std::int64_t>(y));
        r2 = hh.Read<std::int32_t>(x);
        sys.sync(2).V(1);
      });
      sys.sync(0).P(1);
      sys.sync(0).P(1);
      h.runtime().Delay(Seconds(5));  // let lost confirms replay via probes
    });
    eng.Run();
    EXPECT_FALSE(r1 == 1 && r2 == 0) << "SC violation at offset " << offset;
    ExpectQuiescent(sys);
  }
}

// Random-ops stress under 30% loss with duplication and reordering injected
// on top: unsynchronized reads/writes with per-(host, cell) stamp
// monotonicity and final convergence, referee checking every access.
class ChaosStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosStress, RandomOpsSurviveLossDupAndReorder) {
  const std::uint64_t seed = GetParam();
  sim::Engine eng;
  SystemConfig cfg = ChaosConfig(seed, 0.30);
  constexpr int kHosts = 3;
  std::vector<const arch::ArchProfile*> profiles;
  for (int i = 0; i < kHosts; ++i) {
    profiles.push_back(i % 2 == 0 ? &arch::Sun3Profile()
                                  : &arch::FireflyProfile());
  }
  System sys(eng, cfg, profiles);
  net::FaultPlan plan;
  plan.duplicate_probability = 0.10;
  plan.reorder_probability = 0.10;
  sys.network().SetFaultPlan(plan);
  sys.Start();

  static constexpr int kCells = 16;
  static constexpr int kOps = 20;
  std::atomic<std::int64_t> stamp_counter{1};
  std::vector<std::vector<std::int64_t>> seen(
      kHosts, std::vector<std::int64_t>(kCells, 0));
  std::atomic<bool> monotone{true};

  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kCells * 17);
    h.Write<std::int64_t>(0, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i, "rnd" + std::to_string(i), [&, i](Host& hh) {
        base::Rng rng(seed * 977 + i);
        for (int k = 0; k < kOps; ++k) {
          const int cell = static_cast<int>(rng.NextBelow(kCells));
          const GlobalAddr addr = 8ull * 17 * cell;
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, stamp_counter.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(addr);
            if (v < seen[i][cell]) monotone = false;
            seen[i][cell] = std::max(seen[i][cell], v);
          }
          hh.Compute(rng.NextBelow(300));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);

    auto final_values = std::make_shared<std::vector<std::int64_t>>(kCells);
    for (int cell = 0; cell < kCells; ++cell) {
      (*final_values)[cell] = h.Read<std::int64_t>(8ull * 17 * cell);
    }
    for (int i = 1; i < kHosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i),
                      [&sys, i, final_values](Host& hh) {
                        for (int cell = 0; cell < kCells; ++cell) {
                          EXPECT_EQ(hh.Read<std::int64_t>(8ull * 17 * cell),
                                    (*final_values)[cell])
                              << "host " << i << " cell " << cell;
                        }
                        sys.sync(i).V(1);
                      });
    }
    for (int i = 1; i < kHosts; ++i) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // confirm/probe drain before quiescence
  });
  eng.Run();
  EXPECT_TRUE(monotone.load()) << "a host observed a stale stamp";
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("net.packets_dropped"), 0);
  EXPECT_GT(st.Count("net.dup_injected"), 0);
  ExpectQuiescent(sys);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosStress, ::testing::Values(1111, 2222));

// A host that owns hot data is partitioned away; writers stall against the
// unreachable owner, the manager's probe machinery revokes the stuck grant,
// and once the partition heals everything completes and reconverges. Also
// exercises the fenced-reply path: the pre-heal grant is disowned, so the
// late owner reply must be discarded and the fault retried.
TEST(Chaos, PartitionHealsAndProtocolRecovers) {
  sim::Engine eng;
  SystemConfig cfg = ChaosConfig(4242, 0.0);
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::Sun3Profile()});
  net::FaultPlan plan;
  net::FaultPlan::Partition part;
  part.group = {2};
  part.from = Seconds(1);
  part.until = Seconds(5);
  plan.partitions.push_back(part);
  sys.network().SetFaultPlan(plan);
  sys.Start();

  std::atomic<bool> writer_done{false};
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    // Host 2 takes ownership of the page before the partition hits.
    sys.SpawnThread(2, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    // Host 1 write-faults into the partition window; the owner fetch cannot
    // complete until the heal at 5s.
    sys.SpawnThread(1, "writer", [&, a](Host& hh) {
      hh.runtime().Delay(Seconds(2));
      hh.Write<std::int64_t>(a, 77);
      writer_done = true;
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    EXPECT_EQ(h.Read<std::int64_t>(a), 77);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_TRUE(writer_done.load());
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("net.partition_dropped"), 0);
  ExpectQuiescent(sys);
}

// A paused host neither sends nor receives; a write against a page it owns
// blocks for the whole outage and completes right after the resume.
TEST(Chaos, PausedHostResumesAndWritersCatchUp) {
  sim::Engine eng;
  SystemConfig cfg = ChaosConfig(31337, 0.0);
  System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
  std::atomic<bool> went_down{false};
  std::atomic<bool> came_back{false};
  net::FaultPlan plan;
  net::FaultPlan::Outage outage;
  outage.host = 1;
  outage.from = Seconds(1);
  outage.until = Seconds(4);
  outage.on_down = [&] { went_down = true; };
  outage.on_restart = [&] { came_back = true; };
  plan.outages.push_back(outage);
  sys.network().SetFaultPlan(plan);
  sys.Start();

  SimTime write_completed_at = 0;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 5);  // host 1 becomes owner pre-outage
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(2));  // mid-outage
    EXPECT_TRUE(sys.network().HostDown(1, h.runtime().Now()));
    h.Write<std::int64_t>(a, 6);  // owner fetch stalls until the resume
    write_completed_at = h.runtime().Now();
    EXPECT_EQ(h.Read<std::int64_t>(a), 6);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_TRUE(went_down.load());
  EXPECT_TRUE(came_back.load());
  EXPECT_GE(write_completed_at, Seconds(4));
  EXPECT_GT(sys.GatherStats().Count("net.outage_dropped"), 0);
  ExpectQuiescent(sys);
}

// Grant-lease recovery, directed: every manager->requester packet is dropped
// for 20s, so the requester can neither receive its grant nor answer confirm
// probes. The lease must expire, the revoked entry must be re-grantable (the
// manager's own retained copy is re-animated for its write), and after the
// drop rule lifts the starved requester must still complete.
TEST(Chaos, GrantLeaseExpiryUnsticksBusyEntry) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.referee_check_access = true;
  cfg.net.seed = 77;
  cfg.call_timeout = Milliseconds(100);
  cfg.call_max_attempts = 6;  // one Call lasts well under the lease
  cfg.janitor_period = Milliseconds(200);
  cfg.confirm_probe_after = Milliseconds(500);
  cfg.grant_lease = Seconds(10);
  cfg.fault_retry_limit = 20;  // the requester burns rounds while starved
  System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
  net::FaultPlan plan;
  net::FaultPlan::DropRule rule;
  rule.src = 0;
  rule.dst = 1;
  rule.until = Seconds(20);
  plan.drops.push_back(rule);
  sys.network().SetFaultPlan(plan);
  sys.Start();

  std::atomic<bool> starved_writer_done{false};
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "starved", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 1);  // grant issued, reply dropped for 20s
      starved_writer_done = true;
      sys.sync(1).V(1);
    });
    // Mid-starvation (after the lease expired) the manager's own write must
    // go through instead of deadlocking behind the dead grant.
    h.runtime().Delay(Seconds(12));
    h.Write<std::int64_t>(a, 2);
    sys.sync(0).P(1);
    // Convergence after the rule lifts.
    auto final_value = std::make_shared<std::int64_t>(h.Read<std::int64_t>(a));
    sys.SpawnThread(1, "check", [&sys, a, final_value](Host& hh) {
      EXPECT_EQ(hh.Read<std::int64_t>(a), *final_value);
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_TRUE(starved_writer_done.load());
  auto& st = sys.GatherStats();
  EXPECT_GE(st.Count("dsm.grant_lease_expired"), 1);
  EXPECT_GE(st.Count("dsm.grants_revoked"), 1);
  EXPECT_GT(st.Count("net.rule_dropped"), 0);
  ExpectQuiescent(sys);
}

// sync::Client P/V under 35% loss: the semaphore stays a correct mutex —
// duplicate-suppressed exactly-once server ops, no lost wakeups.
TEST(Chaos, SyncMutexHoldsUnderHeavyLoss) {
  sim::Engine eng;
  System sys(eng, ChaosConfig(555, 0.35),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  std::atomic<int> in_cs{0};
  std::atomic<bool> exclusive{true};
  std::atomic<int> entries{0};
  sys.SpawnThread(0, "master", [&](Host&) {
    sys.sync(0).SemInit(3, 1);  // mutex
    sys.sync(0).SemInit(4, 0);  // done
    for (int i = 1; i <= 2; ++i) {
      sys.SpawnThread(i, "worker" + std::to_string(i), [&, i](Host& hh) {
        for (int k = 0; k < 10; ++k) {
          sys.sync(i).P(3);
          if (in_cs.fetch_add(1) != 0) exclusive = false;
          ++entries;
          hh.Compute(200);
          in_cs.fetch_sub(1);
          sys.sync(i).V(3);
        }
        sys.sync(i).V(4);
      });
    }
    sys.sync(0).P(4);
    sys.sync(0).P(4);
  });
  eng.Run();
  EXPECT_TRUE(exclusive.load()) << "two threads inside the critical section";
  EXPECT_EQ(entries.load(), 20);
}

// CentralClient read/write under 35% loss: every write lands exactly once
// and reads return the last written value.
TEST(Chaos, CentralServerReadWriteUnderHeavyLoss) {
  sim::Engine eng;
  System sys(eng, ChaosConfig(808, 0.35),
             {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(0, "master", [&](Host&) {
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "remote", [&](Host& hh) {
      CentralClient& cc = sys.central(hh.id());
      for (int i = 0; i < 16; ++i) {
        cc.Write<std::int64_t>(8ull * i, 1000 + i);
      }
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(cc.Read<std::int64_t>(8ull * i), 1000 + i);
      }
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
  });
  eng.Run();
  EXPECT_EQ(sys.central_server().stats().Count("central.writes"), 16);
}


// All three protocol fast paths under sustained 30% loss: hinted fetches,
// batched group fetches (smallest-page policy makes every Sun VM fault a
// multi-page group), and coalesced invalidations must keep per-cell stamp
// monotonicity and converge, with nothing stuck at quiescence. Seeded, so
// a pass is a regression test, not a coin flip.
TEST(Chaos, FastPathsSurviveHeavyLoss) {
  const std::uint64_t seed = 7777;
  sim::Engine eng;
  SystemConfig cfg = ChaosConfig(seed, 0.30);
  cfg.probable_owner = true;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.page_policy = PageSizePolicy::kSmallest;
  constexpr int kHosts = 3;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  static constexpr int kCells = 16;
  static constexpr int kOps = 20;
  std::atomic<std::int64_t> stamp_counter{1};
  std::vector<std::vector<std::int64_t>> seen(
      kHosts, std::vector<std::int64_t>(kCells, 0));
  std::atomic<bool> monotone{true};

  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kCells * 17);
    h.Write<std::int64_t>(0, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i, "rnd" + std::to_string(i), [&, i](Host& hh) {
        base::Rng rng(seed * 977 + i);
        for (int k = 0; k < kOps; ++k) {
          const int cell = static_cast<int>(rng.NextBelow(kCells));
          const GlobalAddr addr = 8ull * 17 * cell;
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, stamp_counter.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(addr);
            if (v < seen[i][cell]) monotone = false;
            seen[i][cell] = std::max(seen[i][cell], v);
          }
          hh.Compute(rng.NextBelow(300));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);

    auto final_values = std::make_shared<std::vector<std::int64_t>>(kCells);
    for (int cell = 0; cell < kCells; ++cell) {
      (*final_values)[cell] = h.Read<std::int64_t>(8ull * 17 * cell);
    }
    for (int i = 1; i < kHosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i),
                      [&sys, i, final_values](Host& hh) {
                        for (int cell = 0; cell < kCells; ++cell) {
                          EXPECT_EQ(hh.Read<std::int64_t>(8ull * 17 * cell),
                                    (*final_values)[cell])
                              << "host " << i << " cell " << cell;
                        }
                        sys.sync(i).V(1);
                      });
    }
    for (int i = 1; i < kHosts; ++i) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // confirm/probe drain before quiescence
  });
  eng.Run();
  EXPECT_TRUE(monotone.load()) << "a host observed a stale stamp";
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("net.packets_dropped"), 0);
  // The fast paths genuinely ran: the Sun host's multi-page VM faults used
  // group fetch, and at least one fast-path mechanism fired elsewhere too.
  EXPECT_GT(st.Count("dsm.group_fetches"), 0);
  EXPECT_GT(st.Count("dsm.hint_fetches") + st.Count("dsm.group_serves") +
                st.Count("dsm.batch_invalidations_sent"),
            0);
  ExpectQuiescent(sys);
}

// Partition-heal with the fast paths on: host 1 learns a probable-owner
// hint for host 2's page, host 2 is partitioned away, and host 1's hinted
// refetch must not wedge the protocol — whether the hinted call outlasts
// the outage or times out and falls back, the read completes after the
// heal, the follow-up write takes ownership, and everything reconverges.
TEST(Chaos, FastPathsSurvivePartitionHeal) {
  sim::Engine eng;
  SystemConfig cfg = ChaosConfig(4243, 0.0);
  cfg.probable_owner = true;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::Sun3Profile()});
  net::FaultPlan plan;
  net::FaultPlan::Partition part;
  part.group = {2};
  part.from = Seconds(1);
  part.until = Seconds(5);
  plan.partitions.push_back(part);
  sys.network().SetFaultPlan(plan);
  sys.Start();

  std::atomic<bool> reader_done{false}, writer_done{false};
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    // Host 2 takes ownership before the partition hits.
    sys.SpawnThread(2, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    // Host 1 reads pre-partition: learns hint = host 2.
    sys.SpawnThread(1, "hint-learner", [&, a](Host& hh) {
      EXPECT_EQ(hh.Read<std::int64_t>(a), 42);
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    // Host 2 rewrites, invalidating host 1's copy (the hint stays host 2),
    // still before the partition at 1s.
    sys.SpawnThread(2, "owner2", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 43);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    sys.SpawnThread(1, "reader-writer", [&, a](Host& hh) {
      // Refault inside the partition window: the hinted fetch targets the
      // unreachable host 2, so it either rides retries through the heal or
      // times out and falls back through the manager — both must complete.
      hh.runtime().Delay(Seconds(2));
      EXPECT_EQ(hh.Read<std::int64_t>(a), 43);
      reader_done = true;
      hh.Write<std::int64_t>(a, 77);
      writer_done = true;
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    EXPECT_EQ(h.Read<std::int64_t>(a), 77);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_TRUE(reader_done.load());
  EXPECT_TRUE(writer_done.load());
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("net.partition_dropped"), 0);
  EXPECT_GT(st.Count("dsm.hint_fetches") + st.Count("dsm.hint_confirms"), 0);
  ExpectQuiescent(sys);
}

}  // namespace
}  // namespace mermaid::dsm
