#include <gtest/gtest.h>

#include "mermaid/apps/matmul_mp.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::apps {
namespace {

class MpMatMulCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(MpMatMulCorrectness, MatchesReference) {
  const int threads = GetParam();
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  dsm::System sys(eng, cfg,
                  {&arch::Sun3Profile(), &arch::FireflyProfile(),
                   &arch::FireflyProfile()});
  MpMatMul mp(sys);
  sys.Start();
  MpMatMulConfig mpc;
  mpc.n = 48;
  mpc.num_threads = threads;
  mpc.worker_hosts = {1, 2};
  MpMatMulResult result;
  mp.Setup(mpc, &result);
  eng.Run();
  EXPECT_TRUE(result.done);
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.elapsed, 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, MpMatMulCorrectness,
                         ::testing::Values(1, 2, 3, 5, 7));

TEST(MpMatMul, MoreThreadsThanRowsStillWorks) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  dsm::System sys(eng, cfg,
                  {&arch::Sun3Profile(), &arch::FireflyProfile()});
  MpMatMul mp(sys);
  sys.Start();
  MpMatMulConfig mpc;
  mpc.n = 4;
  mpc.num_threads = 9;
  mpc.worker_hosts = {1};
  MpMatMulResult result;
  mp.Setup(mpc, &result);
  eng.Run();
  EXPECT_TRUE(result.done);
  EXPECT_TRUE(result.correct);
}

}  // namespace
}  // namespace mermaid::apps
