#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/base/bytes.h"
#include "mermaid/base/rng.h"
#include "mermaid/base/stats.h"
#include "mermaid/base/wire.h"

namespace mermaid::base {
namespace {

TEST(Bytes, SwapRoundTrip) {
  EXPECT_EQ(ByteSwap16(0x1234), 0x3412);
  EXPECT_EQ(ByteSwap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(ByteSwap64(0x0102030405060708ull), 0x0807060504030201ull);
  EXPECT_EQ(ByteSwap(ByteSwap(std::int32_t{-12345})), -12345);
}

TEST(Bytes, ExplicitOrderLoadStore) {
  std::uint8_t buf[4];
  StoreAs<std::uint32_t>(buf, 0x11223344u, ByteOrder::kBig);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[3], 0x44);
  EXPECT_EQ(LoadAs<std::uint32_t>(buf, ByteOrder::kBig), 0x11223344u);
  EXPECT_EQ(LoadAs<std::uint32_t>(buf, ByteOrder::kLittle), 0x44332211u);

  StoreAs<std::uint16_t>(buf, 0xBEEF, ByteOrder::kLittle);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
}

TEST(Wire, RoundTripAllFieldTypes) {
  WireWriter w;
  w.U8(7);
  w.U16(65535);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  w.Bytes(blob);
  w.Str("mermaid");

  auto buf = std::move(w).Take();
  WireReader r(buf);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U16(), 65535);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.Bytes(), blob);
  EXPECT_EQ(r.Str(), "mermaid");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, UnderrunSetsErrorAndReturnsZero) {
  std::vector<std::uint8_t> buf = {0x01, 0x02};
  WireReader r(buf);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // stays failed
}

TEST(Wire, BogusLengthPrefixFailsCleanly) {
  WireWriter w;
  w.U32(1u << 30);  // claims a 1 GB blob
  auto buf = std::move(w).Take();
  WireReader r(buf);
  auto blob = r.Bytes();
  EXPECT_TRUE(blob.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, RawAndRest) {
  WireWriter w;
  w.U8(1);
  std::vector<std::uint8_t> tail = {9, 8, 7};
  w.Raw(tail);
  auto buf = std::move(w).Take();
  WireReader r(buf);
  EXPECT_EQ(r.U8(), 1);
  auto rest = r.Rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 9);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
    auto v = r.NextRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    auto d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_FALSE(r.NextBool(0.0));
  EXPECT_TRUE(r.NextBool(1.0));
}

TEST(Rng, SplitStreamsAreIndependentlyDeterministic) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.Split();
  Rng child2 = parent2.Split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.NextU64(), child2.NextU64());
}

TEST(Rng, RoughUniformity) {
  Rng r(99);
  int buckets[8] = {};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++buckets[r.NextBelow(8)];
  for (int b : buckets) {
    EXPECT_GT(b, kN / 8 - kN / 40);
    EXPECT_LT(b, kN / 8 + kN / 40);
  }
}

TEST(Stats, CountersAndDistributions) {
  StatsRegistry s;
  s.Inc("faults");
  s.Inc("faults", 4);
  EXPECT_EQ(s.Count("faults"), 5);
  EXPECT_EQ(s.Count("missing"), 0);

  s.Sample("delay_ms", 2.0);
  s.Sample("delay_ms", 6.0);
  Distribution d = s.DistCopy("delay_ms");
  EXPECT_EQ(d.count(), 2);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.min(), 2.0);
  EXPECT_DOUBLE_EQ(d.max(), 6.0);
  EXPECT_EQ(s.DistCopy("missing").count(), 0);
}

TEST(Stats, MergeIsExact) {
  StatsRegistry a, b;
  a.Inc("x", 2);
  b.Inc("x", 3);
  b.Inc("y", 1);
  a.Sample("d", 1.0);
  b.Sample("d", 9.0);
  b.Sample("d", 5.0);
  a.Merge(b);
  EXPECT_EQ(a.Count("x"), 5);
  EXPECT_EQ(a.Count("y"), 1);
  Distribution d = a.DistCopy("d");
  EXPECT_EQ(d.count(), 3);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

}  // namespace
}  // namespace mermaid::base
