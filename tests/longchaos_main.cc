// Long-horizon chaos soak for the nightly CI job.
//
// Runs a multi-host random read/write workload under sustained 30% packet
// loss while a controller process periodically crash-restarts a random
// non-service host (crash-with-amnesia + manager-state reconstruction).
// The coherence referee checks every access throughout; a violation aborts
// the process, which is the failure signal the nightly matrix reports
// together with the seed. A Chrome-format protocol trace is rewritten to
// trace.json after every crash cycle, so the artifact of a failing run
// shows the window that led up to the abort.
//
// Not a ctest: duration and seeds are driven by the workflow.
//
//   usage: mermaid_longchaos [seed] [sim-seconds]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"
#include "mermaid/trace/export.h"

namespace mermaid {
namespace {

constexpr int kHosts = 4;
constexpr int kCells = 16;  // one 1 KB page per cell -> every host manages some

dsm::SystemConfig SoakConfig(std::uint64_t seed) {
  dsm::SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.crash_recovery = true;
  // Sole-owner copies legitimately die in this workload; reinit-to-zero
  // keeps the soak running and counts the losses instead of aborting.
  cfg.lost_page_policy = dsm::SystemConfig::LostPagePolicy::kReinitZero;
  // probable_owner stays OFF: a hint-served reader invisible to the manager
  // can survive a reinit and trip the referee (documented in DESIGN.md,
  // "Failure model").
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.net.seed = seed;
  cfg.net.loss_probability = 0.30;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 60;  // rides out downtime + 30% loss
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  cfg.trace = true;
  return cfg;
}

void DumpTrace(dsm::System& sys) {
  if (!sys.tracer().enabled()) return;
  if (!trace::WriteChromeTrace(sys.tracer().Snapshot(), "trace.json")) {
    std::fprintf(stderr, "cannot write trace.json\n");
  }
}

// A referee/protocol abort fires between the per-cycle dumps; snapshot the
// trace from the SIGABRT handler so the uploaded artifact covers the events
// that led to the check failure, not just the last completed cycle.
dsm::System* g_sys = nullptr;
void DumpTraceOnAbort(int) {
  std::signal(SIGABRT, SIG_DFL);  // a second abort must not recurse
  if (g_sys != nullptr) DumpTrace(*g_sys);
}

}  // namespace

int Run(std::uint64_t seed, double sim_seconds) {
  // MERMAID_ENGINE=opt turns on the scale-out scheduler; protocol behavior
  // (and the soak's invariant checks) are bit-identical either way.
  sim::Engine eng(sim::EngineOptions::FromEnv());
  dsm::System sys(eng, SoakConfig(seed),
                  {&arch::Sun3Profile(), &arch::FireflyProfile(),
                   &arch::FireflyProfile(), &arch::Sun3Profile()});
  g_sys = &sys;
  std::signal(SIGABRT, DumpTraceOnAbort);
  sys.Start();

  std::atomic<bool> stop{false};
  std::atomic<int> crashes{0};
  std::atomic<bool> converged{true};

  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    const dsm::GlobalAddr arena =
        sys.Alloc(0, arch::TypeRegistry::kLong, kCells * 128);
    for (int c = 0; c < kCells; ++c) {
      h.Write<std::int64_t>(arena + 1024ull * c, 0);
    }
    sys.sync(0).SemInit(1, 0);  // workers done
    sys.sync(0).SemInit(2, 0);  // checkers done

    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i, "worker" + std::to_string(i),
                      [&, i, arena](dsm::Host& hh) {
        base::Rng rng(seed * 977 + i);
        while (!stop.load()) {
          const dsm::GlobalAddr addr = arena + 1024ull * rng.NextBelow(kCells);
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, static_cast<std::int64_t>(
                                             rng.NextBelow(1 << 20)));
          } else {
            (void)hh.Read<std::int64_t>(addr);
          }
          hh.Compute(static_cast<double>(rng.NextBelow(400)));
        }
        sys.sync(i).V(1);
      });
    }

    // Crash controller: one strike per cycle, with enough slack after the
    // restart for the rebuild to finish before the next victim is picked.
    {
      base::Rng rng(seed * 31 + 7);
      const SimTime deadline =
          h.runtime().Now() +
          static_cast<SimDuration>(sim_seconds * 1e9);
      while (h.runtime().Now() < deadline) {
        h.runtime().Delay(Seconds(1) +
                          static_cast<SimDuration>(
                              rng.NextBelow(2'000'000'000ull)));
        if (h.runtime().Now() >= deadline) break;
        const auto victim =
            static_cast<net::HostId>(1 + rng.NextBelow(kHosts - 1));
        const SimDuration down =
            Milliseconds(300) +
            static_cast<SimDuration>(rng.NextBelow(1'200'000'000ull));
        sys.CrashAndRestartHost(victim, down);
        crashes.fetch_add(1);
        h.runtime().Delay(down + Seconds(3));  // restart + rebuild margin
        DumpTrace(sys);
      }
    }
    stop = true;
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // heal margin before the final audit

    // Convergence audit: every host must agree on every cell.
    auto finals = std::make_shared<std::vector<std::int64_t>>(kCells);
    for (int c = 0; c < kCells; ++c) {
      (*finals)[c] = h.Read<std::int64_t>(arena + 1024ull * c);
    }
    for (int i = 1; i < kHosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i), [&, i, arena, finals](
                                                          dsm::Host& hh) {
        for (int c = 0; c < kCells; ++c) {
          if (hh.Read<std::int64_t>(arena + 1024ull * c) != (*finals)[c]) {
            converged = false;
            std::fprintf(stderr, "divergence: host %d cell %d\n", i, c);
          }
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 1; i < kHosts; ++i) sys.sync(0).P(2);
    h.runtime().Delay(Seconds(10));  // confirm/probe drain before quiescence
  });
  eng.Run();

  DumpTrace(sys);
  auto& st = sys.GatherStats();
  const auto q = sys.CheckQuiescent();
  std::printf(
      "longchaos seed=%llu sim=%.0fs: %d crashes, %lld pages lost, "
      "%lld owner-lost reports, %lld fenced calls, %lld broken locks, "
      "%lld dropped packets\n",
      static_cast<unsigned long long>(seed), sim_seconds, crashes.load(),
      static_cast<long long>(st.Count("dsm.recovery_pages_lost")),
      static_cast<long long>(st.Count("dsm.owner_lost_reports")),
      static_cast<long long>(st.Count("reqrep.fenced_zombie_calls")),
      static_cast<long long>(st.Count("sync.broken_locks")),
      static_cast<long long>(st.Count("net.packets_dropped")));
  std::fputs(sys.ReportStats().c_str(), stdout);

  int rc = 0;
  if (!converged.load()) {
    std::fprintf(stderr, "FAIL: hosts diverged after the soak\n");
    rc = 1;
  }
  if (q.busy_entries != 0 || q.pending_transfers != 0) {
    std::fprintf(stderr,
                 "FAIL: not quiescent (%llu busy, %llu pending)\n",
                 static_cast<unsigned long long>(q.busy_entries),
                 static_cast<unsigned long long>(q.pending_transfers));
    rc = 1;
  }
  if (crashes.load() == 0) {
    std::fprintf(stderr, "FAIL: soak ran without a single crash cycle\n");
    rc = 1;
  }
  return rc;
}

}  // namespace mermaid

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  double sim_seconds = 120;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) sim_seconds = std::strtod(argv[2], nullptr);
  return mermaid::Run(seed, sim_seconds);
}
