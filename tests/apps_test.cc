// Application-level integration: parallel results must equal sequential
// references across heterogeneous host mixes and page-size policies.
#include <gtest/gtest.h>

#include "mermaid/apps/matmul.h"
#include "mermaid/apps/pcb.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::apps {
namespace {

const arch::ArchProfile& Sun() { return arch::Sun3Profile(); }
const arch::ArchProfile& Ffly() { return arch::FireflyProfile(); }

dsm::SystemConfig AppConfig(dsm::PageSizePolicy policy =
                                dsm::PageSizePolicy::kLargest) {
  dsm::SystemConfig cfg;
  cfg.region_bytes = 4u << 20;
  cfg.page_policy = policy;
  return cfg;
}

struct MmCase {
  const char* name;
  int n;
  int threads;
  bool round_robin;
  dsm::PageSizePolicy policy;
  bool hetero;  // master Sun + Firefly workers vs all-Firefly
};

class MatMulCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(MatMulCorrectness, MatchesReference) {
  static const MmCase cases[] = {
      {"seq-1thread", 64, 1, false, dsm::PageSizePolicy::kLargest, false},
      {"mm1-4threads-hetero", 64, 4, false, dsm::PageSizePolicy::kLargest,
       true},
      {"mm1-small-pages", 64, 4, false, dsm::PageSizePolicy::kSmallest, true},
      {"mm2-round-robin", 64, 4, true, dsm::PageSizePolicy::kSmallest, true},
      {"mm2-large-contention", 48, 6, true, dsm::PageSizePolicy::kLargest,
       true},
      {"mm1-7threads-3fireflies", 64, 7, false,
       dsm::PageSizePolicy::kLargest, true},
  };
  const MmCase& c = cases[GetParam()];
  sim::Engine eng;
  std::vector<const arch::ArchProfile*> profiles;
  profiles.push_back(c.hetero ? &Sun() : &Ffly());
  for (int i = 0; i < 3; ++i) profiles.push_back(&Ffly());
  dsm::System sys(eng, AppConfig(c.policy), profiles);
  sys.Start();

  MatMulConfig cfg;
  cfg.n = c.n;
  cfg.num_threads = c.threads;
  cfg.master_host = 0;
  cfg.worker_hosts = {1, 2, 3};
  cfg.round_robin_rows = c.round_robin;
  MatMulResult result;
  SetupMatMul(sys, cfg, &result);
  eng.Run();

  EXPECT_TRUE(result.done) << c.name;
  EXPECT_TRUE(result.correct) << c.name;
  EXPECT_GT(result.elapsed, 0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Cases, MatMulCorrectness, ::testing::Range(0, 6));

TEST(MatMul, MoreThreadsRunFaster) {
  // n = 128 keeps thread row-blocks page-aligned for 1/4/8 threads (16 rows
  // of 512 B per 8 KB page), as the paper's 256x256 runs were; misaligned
  // sizes false-share result pages and slow down, which MM2 tests cover.
  auto run = [](int threads) {
    sim::Engine eng;
    dsm::System sys(eng, AppConfig(),
                    {&Sun(), &Ffly(), &Ffly(), &Ffly(), &Ffly()});
    sys.Start();
    MatMulConfig cfg;
    cfg.n = 128;
    cfg.num_threads = threads;
    cfg.worker_hosts = {1, 2, 3, 4};
    cfg.verify = false;
    MatMulResult result;
    SetupMatMul(sys, cfg, &result);
    eng.Run();
    return result.elapsed;
  };
  const SimDuration t1 = run(1);
  const SimDuration t4 = run(4);
  const SimDuration t8 = run(8);
  EXPECT_LT(t4, t1 / 2);  // decent speedup by 4 threads
  EXPECT_LT(t8, t4);      // still improving at 8
}

TEST(MatMul, PhysicalSharedMemoryBeatsDistributed) {
  // Fig. 3's comparison: n threads on one multiprocessor Firefly vs the
  // same threads spread over n Fireflies (one each).
  auto run = [](bool spread) {
    sim::Engine eng;
    dsm::System sys(eng, AppConfig(),
                    {&Ffly(), &Ffly(), &Ffly(), &Ffly(), &Ffly()});
    sys.Start();
    MatMulConfig cfg;
    cfg.n = 96;
    cfg.num_threads = 4;
    cfg.master_host = 0;
    cfg.worker_hosts = spread ? std::vector<net::HostId>{1, 2, 3, 4}
                              : std::vector<net::HostId>{1};
    cfg.verify = false;
    MatMulResult result;
    SetupMatMul(sys, cfg, &result);
    eng.Run();
    return result.elapsed;
  };
  const SimDuration physical = run(false);
  const SimDuration distributed = run(true);
  EXPECT_LT(physical, distributed);          // DSM pays page transfers
  EXPECT_LT(distributed, physical * 3 / 2);  // ...but not catastrophically
}

TEST(Pcb, GeneratorIsDeterministicAndHasAllFlawKinds) {
  auto b1 = GenerateBoard(100, 400, 7);
  auto b2 = GenerateBoard(100, 400, 7);
  EXPECT_EQ(b1, b2);
  auto b3 = GenerateBoard(100, 400, 8);
  EXPECT_NE(b1, b3);

  std::vector<std::uint8_t> overlay;
  PcbStats stats = CheckBoardReference(b1, 100, 400, &overlay);
  EXPECT_GT(stats.narrow, 0);
  EXPECT_GT(stats.spacing, 0);
  EXPECT_GT(stats.missing_hole, 0);
}

class PcbCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(PcbCorrectness, ParallelEqualsSequential) {
  const int threads = GetParam();
  sim::Engine eng;
  dsm::System sys(eng, AppConfig(),
                  {&Sun(), &Ffly(), &Ffly(), &Ffly()});
  arch::TypeId stats_type = RegisterPcbTypes(sys.registry());
  sys.Start();
  PcbConfig cfg;
  cfg.height = 100;
  cfg.width = 400;  // small board for the test
  cfg.num_threads = threads;
  cfg.worker_hosts = {1, 2, 3};
  PcbResult result;
  SetupPcb(sys, stats_type, cfg, &result);
  eng.Run();
  EXPECT_TRUE(result.done);
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.stats.narrow + result.stats.spacing +
                result.stats.missing_hole,
            0);
}

INSTANTIATE_TEST_SUITE_P(Threads, PcbCorrectness,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mermaid::apps
