// Crash-stop recovery: amnesia restarts, incarnation fencing, and
// manager-state reconstruction under scripted crashes.
//
// Each scenario kills a host mid-protocol (manager mid-transfer, the owner
// of a dirty page, a requester mid-fault, a semaphore holder), restarts it
// with empty state, and asserts the survivors converge: workloads
// terminate, the coherence referee stays clean through the crash and the
// rebuild, and at quiescence no manager entry is busy and no transfer is
// queued. The network RNG is seeded, so a passing run is a regression
// test, not a coin flip.
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

// Crash-hardened configuration: fixed 1 KB pages (so page->manager mapping
// is known to the tests), recovery on, short call timeout with enough
// attempts to ride out a 2-3 s downtime, and a fast janitor so orphaned
// grants are probed away inside the test window.
SystemConfig RecoveryConfig(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.region_bytes = 256 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.crash_recovery = true;
  cfg.net.seed = seed;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 30;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  return cfg;
}

void ExpectQuiescent(System& sys) {
  const auto q = sys.CheckQuiescent();
  EXPECT_EQ(q.busy_entries, 0u) << "manager entries still busy at quiescence";
  EXPECT_EQ(q.pending_transfers, 0u) << "transfers still queued at quiescence";
}

// The manager of a page dies while a read fault against that page is in
// flight. The requester's call rides retransmits through the downtime, the
// restarted manager rebuilds owner/copyset from the live hosts' claims
// (the writer still owns the page at its post-write version), and the
// fault then completes with the written value.
TEST(Recovery, ManagerCrashMidTransferRebuildsState) {
  sim::Engine eng;
  System sys(eng, RecoveryConfig(61001),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr base = sys.Alloc(0, Reg::kLong, 384);  // pages 0..2
    const GlobalAddr a = base + 1024;                 // page 1: manager = host 1
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(2, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    // Reader faults against page 1 while its manager is being killed.
    sys.SpawnThread(0, "reader", [&, a](Host& hh) {
      seen = hh.Read<std::int64_t>(a);
      sys.sync(0).V(1);
    });
    h.runtime().Delay(Milliseconds(2));
    sys.CrashAndRestartHost(1, Seconds(2));
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));  // confirm/probe drain before quiescence
  });
  eng.Run();
  EXPECT_EQ(seen, 42);
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("dsm.recovery_queries"), 1);
  EXPECT_GE(st.Count("dsm.recovery_claims"), 1);
  EXPECT_EQ(st.Count("dsm.recovery_pages_lost"), 0);
  ExpectQuiescent(sys);
}

// The sole owner of a dirty page dies: every copy of the data is gone.
// Under the kReinitZero policy the manager re-initializes the page to
// zeroes (counted, never silent) and a later read observes 0, not garbage
// or a wedged protocol.
TEST(Recovery, DirtyOwnerCrashReinitializesLostPage) {
  sim::Engine eng;
  SystemConfig cfg = RecoveryConfig(61002);
  cfg.lost_page_policy = SystemConfig::LostPagePolicy::kReinitZero;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);  // page 0: manager = host 0
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "dirty-owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 7);  // sole copy of the data
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    sys.CrashAndRestartHost(1, Seconds(3));
    sys.SpawnThread(2, "reader", [&, a](Host& hh) {
      hh.runtime().Delay(Milliseconds(500));  // fault while host 1 is down
      seen = hh.Read<std::int64_t>(a);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));
  });
  eng.Run();
  EXPECT_EQ(seen, 0) << "a lost page must re-read as zeroes, not garbage";
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("dsm.recovery_pages_lost"), 1);
  EXPECT_GE(st.Count("dsm.owner_lost_detected") +
                st.Count("dsm.owner_lost_reports"),
            1);
  ExpectQuiescent(sys);
}

// Crash mid-group-fetch with survivors: host 1 owns a 12-page array, the
// Sun host's large VM pages have group-fetched read copies of all of it,
// and host 2 is reading when host 1 dies. Every page has a surviving copy,
// so recovery must promote host 0 (live-manager heals for pages it does
// not manage, rebuild promotion for host 1's own pages) and no data may be
// lost or reinitialized.
TEST(Recovery, GroupFetchCrashPromotesSurvivingCopies) {
  constexpr int kPages = 12;
  sim::Engine eng;
  SystemConfig cfg = RecoveryConfig(61003);
  cfg.group_fetch = true;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::vector<std::int64_t> host2_seen(kPages, -1);
  std::vector<std::int64_t> host0_seen(kPages, -1);
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr base = sys.Alloc(0, Reg::kLong, kPages * 128);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "writer", [&, base](Host& hh) {
      for (int p = 0; p < kPages; ++p) {
        hh.Write<std::int64_t>(base + 1024ull * p, 100 + p);
      }
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    // The Sun host's 8 KB VM faults sweep up the 1 KB DSM pages in groups,
    // leaving host 0 with read copies of the whole array.
    for (int p = 0; p < kPages; ++p) {
      host0_seen[p] = h.Read<std::int64_t>(base + 1024ull * p);
    }
    sys.SpawnThread(2, "reader", [&, base](Host& hh) {
      for (int p = 0; p < kPages; ++p) {
        host2_seen[p] = hh.Read<std::int64_t>(base + 1024ull * p);
      }
      sys.sync(2).V(1);
    });
    h.runtime().Delay(Milliseconds(5));
    sys.CrashAndRestartHost(1, Seconds(2));
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));
  });
  eng.Run();
  for (int p = 0; p < kPages; ++p) {
    EXPECT_EQ(host0_seen[p], 100 + p) << "pre-crash read, page " << p;
    EXPECT_EQ(host2_seen[p], 100 + p)
        << "surviving copy lost across the crash, page " << p;
  }
  auto& st = sys.GatherStats();
  EXPECT_GT(st.Count("dsm.group_fetches"), 0);
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("dsm.recovery_promotions"), 1);
  EXPECT_EQ(st.Count("dsm.recovery_pages_lost"), 0);
  ExpectQuiescent(sys);
}

// The same host crashes twice, with writes landing between the crashes.
// Each restart must rebuild from the then-current claims; the second
// incarnation's state must not resurrect anything from the first life.
TEST(Recovery, DoubleCrashConverges) {
  sim::Engine eng;
  System sys(eng, RecoveryConfig(61004),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr base = sys.Alloc(0, Reg::kLong, 384);
    const GlobalAddr a = base + 1024;  // page 1: manager = host 1
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(2, "writer1", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 1);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    sys.CrashAndRestartHost(1, Seconds(1));
    h.runtime().Delay(Seconds(3));  // restart + rebuild complete
    sys.SpawnThread(2, "writer2", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 2);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    sys.CrashAndRestartHost(1, Seconds(1));
    h.runtime().Delay(Seconds(3));
    seen = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(5));
  });
  eng.Run();
  EXPECT_EQ(seen, 2);
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 2);
  EXPECT_GE(st.Count("dsm.recovery_queries"), 2);
  EXPECT_EQ(st.Count("dsm.recovery_pages_lost"), 0);
  ExpectQuiescent(sys);
}

// A requester dies in the middle of its own write fault (the owner's data
// reply is firewalled so the fault is provably in flight). Its woken fault
// waiter and abandoned call must be fenced against the new incarnation,
// the manager's orphaned grant must be probed away, and the refaulting
// thread must complete the write after the restart.
TEST(Recovery, RequesterCrashMidFaultFencesZombieOps) {
  sim::Engine eng;
  System sys(eng, RecoveryConfig(61005),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  net::FaultPlan plan;
  net::FaultPlan::DropRule rule;  // owner host 2 -> requester host 1
  rule.src = 2;
  rule.dst = 1;
  rule.until = Seconds(1);
  plan.drops.push_back(rule);
  sys.network().SetFaultPlan(plan);
  sys.Start();

  std::atomic<bool> writer_done{false};
  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 1);  // page 0: manager = host 0
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(2, "owner", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    sys.SpawnThread(1, "doomed-writer", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 77);  // stalls against the drop rule
      writer_done = true;
      sys.sync(1).V(1);
    });
    h.runtime().Delay(Milliseconds(500));  // fault provably in flight
    sys.CrashAndRestartHost(1, Seconds(2));
    sys.sync(0).P(1);
    seen = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(5));
  });
  eng.Run();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(seen, 77);
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("reqrep.fenced_zombie_calls") +
                st.Count("dsm.fenced_transfers"),
            1)
      << "the pre-crash in-flight op must be fenced, not silently reused";
  EXPECT_EQ(st.Count("dsm.recovery_pages_lost"), 0);
  ExpectQuiescent(sys);
}

// A semaphore holder crashes inside its critical section. The sync server
// must break the dead incarnation's hold and hand the grant to the parked
// live waiter instead of leaving the mutex wedged forever.
TEST(Recovery, SemaphoreHolderCrashBreaksLock) {
  sim::Engine eng;
  System sys(eng, RecoveryConfig(61006),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::atomic<bool> waiter_got_lock{false};
  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.sync(0).SemInit(3, 1);  // mutex
    sys.sync(0).SemInit(4, 0);  // step signal
    sys.SpawnThread(1, "holder", [&](Host&) {
      sys.sync(1).P(3);  // takes the mutex and never releases it
      sys.sync(1).V(4);
    });
    sys.sync(0).P(4);  // holder confirmed inside
    sys.SpawnThread(2, "waiter", [&](Host&) {
      sys.sync(2).P(3);  // parks behind the doomed holder
      waiter_got_lock = true;
      sys.sync(2).V(3);
      sys.sync(2).V(4);
    });
    h.runtime().Delay(Milliseconds(500));  // waiter provably parked
    sys.CrashAndRestartHost(1, Seconds(1));
    sys.sync(0).P(4);  // only reachable if the broken lock was handed over
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_TRUE(waiter_got_lock.load());
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("sync.broken_locks"), 1);
  ExpectQuiescent(sys);
}

}  // namespace
}  // namespace mermaid::dsm
