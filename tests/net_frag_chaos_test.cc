// Fragment-reassembly leak regression. Partial reassemblies whose tail
// fragments were lost used to be purged only from inside OnPacket — a host
// that stops receiving packets (sender gave up, partition) kept them
// forever. The endpoint's sweeper daemon now expires them on a sim-time TTL;
// these tests pin the bounded-table property under sustained 30% loss and
// the post-idle drain to zero.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/net/fragment.h"
#include "mermaid/net/network.h"
#include "mermaid/net/reqrep.h"
#include "mermaid/sim/engine.h"

namespace mermaid::net {
namespace {

TEST(FragSweepStale, ExpiresAbandonedPartialWithoutFurtherPackets) {
  sim::Engine eng;
  Network net(eng, {});
  auto rx1 = net.Attach(1, &arch::Sun3Profile());
  net.Attach(0, &arch::Sun3Profile());

  Reassembler re(eng, Milliseconds(100));
  bool fed = false;
  eng.Spawn(
      "receiver",
      [&] {
        // Feed only the first fragment, then drop the rest — the tail
        // fragments are "lost", so OnPacket never runs again for this
        // message.
        while (auto pkt = rx1.Recv()) {
          if (!fed) {
            fed = true;
            EXPECT_FALSE(re.OnPacket(*pkt).has_value());
          }
        }
      },
      /*daemon=*/true);

  std::size_t live = 0, after_sweep = 0;
  eng.Spawn("main", [&] {
    Fragmenter frag(eng, net, 0);
    Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = MsgKind::kData;
    m.payload = std::vector<std::uint8_t>(4096, 0xAB);  // several fragments
    frag.Send(std::move(m));
    eng.Delay(Milliseconds(50));  // everything arrived (and was dropped)
    live = re.partial_count();
    eng.Delay(Milliseconds(200));  // well past the 100 ms TTL
    re.SweepStale();
    after_sweep = re.partial_count();
  });
  eng.Run();

  EXPECT_TRUE(fed);
  EXPECT_EQ(live, 1u) << "partial must survive while fresh";
  EXPECT_EQ(after_sweep, 0u) << "sweep alone must expire it";
  EXPECT_EQ(re.stats().Count("net.reassembly_expired"), 1);
  EXPECT_EQ(re.stats().Count("frag.stale_partials_dropped"), 1);
}

// Crash-with-amnesia purge: a crashed host's half-reassembled messages must
// be dropped immediately at crash time, not leak until the TTL sweeper ages
// them out (or worse, complete in the next incarnation from stale bytes).
TEST(FragPurgeAll, DropsEveryPartialImmediatelyRegardlessOfAge) {
  sim::Engine eng;
  Network net(eng, {});
  auto rx1 = net.Attach(1, &arch::Sun3Profile());
  net.Attach(0, &arch::Sun3Profile());

  Reassembler re(eng, Seconds(2));
  bool fed = false;
  eng.Spawn(
      "receiver",
      [&] {
        while (auto pkt = rx1.Recv()) {
          if (!fed) {
            fed = true;
            EXPECT_FALSE(re.OnPacket(*pkt).has_value());
          }
        }
      },
      /*daemon=*/true);

  std::size_t live = 0, after_purge = 0;
  eng.Spawn("main", [&] {
    Fragmenter frag(eng, net, 0);
    Message m;
    m.src = 0;
    m.dst = 1;
    m.kind = MsgKind::kData;
    m.payload = std::vector<std::uint8_t>(4096, 0xAB);  // several fragments
    frag.Send(std::move(m));
    eng.Delay(Milliseconds(50));
    live = re.partial_count();
    re.PurgeAll();  // crash: the partial is nowhere near its 2 s TTL
    after_purge = re.partial_count();
  });
  eng.Run();

  EXPECT_TRUE(fed);
  EXPECT_EQ(live, 1u) << "partial must be live before the crash";
  EXPECT_EQ(after_purge, 0u) << "crash purge must not wait for the TTL";
  EXPECT_EQ(re.stats().Count("net.reassembly_expired"), 1);
}

TEST(FragChaos, ReassemblyTableStaysBoundedUnder30PercentLoss) {
  sim::Engine eng;
  Network::Config ncfg;
  ncfg.loss_probability = 0.30;
  ncfg.seed = 20260805;
  Network net(eng, ncfg);

  Endpoint::Config ecfg;
  ecfg.call_timeout = Milliseconds(100);
  ecfg.max_attempts = 2;  // give up quickly: orphaned partials galore
  Endpoint client(eng, net, 0, &arch::Sun3Profile(), ecfg);
  Endpoint server(eng, net, 1, &arch::Sun3Profile(), ecfg);
  constexpr std::uint8_t kOp = 42;
  std::int64_t served = 0;
  server.SetHandler(kOp, [&](RequestContext ctx) {
    ++served;
    ctx.Reply({});
  });
  client.Start();
  server.Start();

  std::size_t max_partials = 0;
  std::int64_t calls = 0;
  std::size_t server_after_idle = 0, client_after_idle = 0;
  eng.Spawn("chaos-client", [&] {
    const std::vector<std::uint8_t> payload(8192, 0x5A);  // ~6 fragments
    while (eng.Now() < Seconds(1000)) {
      (void)client.CallWithStatus(1, kOp, payload, MsgKind::kData);
      ++calls;
      max_partials = std::max(max_partials, server.reassembly_partials());
    }
    // After the traffic stops, the sweeper alone must drain the table —
    // exactly the case OnPacket-only purging missed.
    eng.Delay(Seconds(10));
    server_after_idle = server.reassembly_partials();
    client_after_idle = client.reassembly_partials();
  });
  eng.Run();

  ASSERT_GT(calls, 1000) << "chaos workload must actually run";
  EXPECT_GT(served, 0);
  // The leak this regression pins: without the TTL sweep the table grows
  // with every partially-arrived (re)transmission — thousands of entries
  // over 1000 simulated seconds. With it, only ~TTL's worth can be live.
  EXPECT_GT(max_partials, 0u) << "loss must actually orphan partials";
  EXPECT_LT(max_partials, 256u) << "reassembly table grew without bound";
  EXPECT_GT(server.frag_stats().Count("net.reassembly_expired"), 0);
  EXPECT_EQ(server_after_idle, 0u);
  EXPECT_EQ(client_after_idle, 0u);
}

}  // namespace
}  // namespace mermaid::net
