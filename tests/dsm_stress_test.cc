// Stress scenarios: correctness under thrashing, block accessors crossing
// pages, and heavy synchronization fan-out.
#include <gtest/gtest.h>

#include "mermaid/apps/matmul.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

// Even while pages ping-pong pathologically (MM2 + large pages + element
// writes), every value must still be exactly right.
TEST(DsmStress, ThrashingRunComputesCorrectResult) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 2u << 20;
  cfg.referee_check_access = true;
  cfg.net.jitter = 0.1;
  cfg.net.seed = 9;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile(), &arch::FireflyProfile()});
  sys.Start();
  apps::MatMulConfig mm;
  mm.n = 64;
  mm.num_threads = 8;
  mm.worker_hosts = {1, 2, 3};
  mm.round_robin_rows = true;
  mm.element_writes = true;
  apps::MatMulResult result;
  SetupMatMul(sys, mm, &result);
  eng.Run();
  EXPECT_TRUE(result.done);
  EXPECT_TRUE(result.correct);
  // And it really did thrash relative to the data size: the three matrices
  // fit in ~6 pages, yet several times that many page transfers occurred.
  EXPECT_GT(sys.GatherStats().Count("dsm.pages_in"), 30);
}

TEST(DsmStress, BlockAccessorsSpanManyPagesAndConvert) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.referee_check_access = true;
  System sys(eng, cfg, {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  constexpr int kN = 6000;  // ~47 KB of doubles: 6 pages
  sys.SpawnThread(0, "writer", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kDouble, kN);
    std::vector<double> vals(kN);
    for (int i = 0; i < kN; ++i) vals[i] = 1e-3 * i - 2.5;
    h.WriteBlock<double>(a, vals.data(), kN);
    sys.sync(0).EventSet(1);
  });
  sys.SpawnThread(1, "reader", [&](Host& h) {
    sys.sync(1).EventWait(1);
    std::vector<double> got(kN);
    h.ReadBlock<double>(0, kN, got.data());
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(got[i], 1e-3 * i - 2.5) << i;
    }
    // Partial reads at odd offsets within and across page boundaries.
    std::vector<double> mid(100);
    h.ReadBlock<double>(8ull * 1020, 100, mid.data());
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(mid[i], 1e-3 * (1020 + i) - 2.5);
    }
  });
  eng.Run();
  EXPECT_GE(sys.host(1).stats().Count("dsm.pages_in"), 6);
}

TEST(DsmStress, ManySemaphoresAndBarriersConcurrently) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  constexpr int kRounds = 6;
  constexpr int kThreads = 9;  // 3 per host
  std::vector<int> round_counts(kRounds, 0);
  std::mutex mu;
  sys.SpawnThread(0, "master", [&](Host&) {
    sys.sync(0).SemInit(1, 0);
    for (int t = 0; t < kThreads; ++t) {
      sys.SpawnThread(t % 3, "t" + std::to_string(t), [&, t](Host& h) {
        for (int r = 0; r < kRounds; ++r) {
          h.Compute(100.0 * ((t * 7 + r) % 5 + 1));
          sys.sync(h.id()).Barrier(100 + r, kThreads);
          {
            std::lock_guard<std::mutex> lk(mu);
            ++round_counts[r];
            // Barrier semantics: nobody reaches round r+1 before all of
            // round r arrived.
            if (r > 0) {
              EXPECT_EQ(round_counts[r - 1], kThreads);
            }
          }
        }
        sys.sync(h.id()).V(1);
      });
    }
    for (int t = 0; t < kThreads; ++t) sys.sync(0).P(1);
  });
  eng.Run();
  for (int r = 0; r < kRounds; ++r) EXPECT_EQ(round_counts[r], kThreads);
}

// The same page bouncing between three architectures many times: repeated
// conversion chains (IEEE -> VAX -> IEEE -> ...) must stay exact for values
// representable in both formats.
TEST(DsmStress, RepeatedConversionChainStaysExact) {
  sim::Engine eng;
  SystemConfig cfg;
  cfg.region_bytes = 128 * 1024;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::Sun3Profile()});
  sys.Start();
  constexpr int kHops = 12;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kFloat, 64);
    for (int i = 0; i < 64; ++i) h.Write<float>(a + 4 * i, 0.03125f * i);
    sys.sync(0).SemInit(1, 0);
    net::HostId ring[] = {1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0};
    // Per-hop semaphores enforce the exact ring order, so the page really
    // alternates Sun -> Ffly -> Sun -> ... representations.
    for (int hop = 0; hop < kHops; ++hop) {
      sys.sync(0).SemInit(100 + hop, 0);
    }
    for (int hop = 0; hop < kHops; ++hop) {
      sys.SpawnThread(ring[hop], "hop" + std::to_string(hop),
                      [&, hop](Host& hh) {
                        sys.sync(hh.id()).P(100 + hop);
                        for (int i = 0; i < 64; ++i) {
                          float v = hh.Read<float>(4ull * i);
                          hh.Write<float>(4ull * i, v + 1.0f);
                        }
                        if (hop + 1 < kHops) {
                          sys.sync(hh.id()).V(100 + hop + 1);
                        } else {
                          sys.sync(hh.id()).V(1);
                        }
                      });
    }
    sys.sync(0).V(100);  // start the chain
    sys.sync(0).P(1);    // wait for the last hop
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(h.Read<float>(4ull * i), 0.03125f * i + kHops) << i;
    }
  });
  eng.Run();
  EXPECT_GE(sys.GatherStats().Count("dsm.conversions"), 8);
}

}  // namespace
}  // namespace mermaid::dsm
