#include <cstdint>

#include <gtest/gtest.h>

#include "mermaid/arch/describe.h"
#include "mermaid/arch/scalar.h"

namespace mermaid::arch {
namespace {

using Reg = TypeRegistry;

struct Sample {
  std::int32_t id;
  float xy[2];
  std::int16_t flags[2];
};
using SampleDesc =
    Record<FieldOf<std::int32_t>, FieldOf<float, 2>, FieldOf<std::int16_t, 2>>;

TEST(Describe, GeneratedDescriptorMatchesHandWritten) {
  Reg reg;
  TypeId generated = RegisterMirrored<Sample, SampleDesc>(reg, "sample");
  TypeId manual = reg.RegisterRecord(
      "sample_manual",
      {{Reg::kInt, 1}, {Reg::kFloat, 2}, {Reg::kShort, 2}});
  EXPECT_EQ(reg.SizeOf(generated), reg.SizeOf(manual));
  EXPECT_EQ(reg.SizeOf(generated), sizeof(Sample));

  // Conversion through the generated descriptor round-trips.
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::uint8_t buf[sizeof(Sample)];
  StoreScalar<std::int32_t>(sun, buf + 0, 42);
  StoreScalar<float>(sun, buf + 4, 1.25f);
  StoreScalar<float>(sun, buf + 8, -2.5f);
  StoreScalar<std::int16_t>(sun, buf + 12, 7);
  StoreScalar<std::int16_t>(sun, buf + 14, -8);
  ConvertContext ctx;
  ctx.src = &sun;
  ctx.dst = &ffly;
  reg.ConvertBuffer(generated, buf, 1, ctx);
  EXPECT_EQ(LoadScalar<std::int32_t>(ffly, buf + 0), 42);
  EXPECT_EQ(LoadScalar<float>(ffly, buf + 4), 1.25f);
  EXPECT_EQ(LoadScalar<float>(ffly, buf + 8), -2.5f);
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf + 12), 7);
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf + 14), -8);
}

struct Inner {
  std::int16_t a;
  std::int16_t b;
};
struct Outer {
  Inner pair[2];
  double weight;
  std::uint64_t link;  // DSM pointer
};
using InnerDesc = Record<FieldOf<std::int16_t>, FieldOf<std::int16_t>>;
using OuterDesc =
    Record<FieldOfRecord<InnerDesc, 2>, FieldOf<double>, DsmPtrField<1>>;

TEST(Describe, NestedRecordsAndPointers) {
  Reg reg;
  TypeId outer = RegisterMirrored<Outer, OuterDesc>(reg, "outer");
  EXPECT_EQ(reg.SizeOf(outer), sizeof(Outer));

  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::uint8_t buf[sizeof(Outer)];
  StoreScalar<std::int16_t>(sun, buf + 0, 1);
  StoreScalar<std::int16_t>(sun, buf + 2, 2);
  StoreScalar<std::int16_t>(sun, buf + 4, 3);
  StoreScalar<std::int16_t>(sun, buf + 6, 4);
  StoreScalar<double>(sun, buf + 8, 0.125);
  StoreScalar<std::uint64_t>(sun, buf + 16, 0x8000);
  ConvertContext ctx;
  ctx.src = &sun;
  ctx.dst = &ffly;
  ctx.pointer_delta = 0x1000;
  reg.ConvertBuffer(outer, buf, 1, ctx);
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf + 0), 1);
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf + 6), 4);
  EXPECT_EQ(LoadScalar<double>(ffly, buf + 8), 0.125);
  EXPECT_EQ(LoadScalar<std::uint64_t>(ffly, buf + 16), 0x9000u);
}

TEST(Describe, CompileTimeSizes) {
  static_assert(SampleDesc::kByteSize == 16);
  static_assert(InnerDesc::kByteSize == 4);
  static_assert(OuterDesc::kByteSize == 24);
  static_assert(FieldOf<double, 3>::kByteSize == 24);
  static_assert(DsmPtrField<2>::kByteSize == 16);
  SUCCEED();
}

}  // namespace
}  // namespace mermaid::arch
