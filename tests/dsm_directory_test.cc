// Directory scale-out: sharded and dynamic distributed managers.
//
// Covers the three placements behind dsm::Directory (fixed, consistent-hash
// sharded, Li-style dynamic with migration), the kOpMgrMigrate handshake
// under concurrent faults, hot-page majority voting, and the recovery
// interplay: forward pointers surviving a crash of the base manager, and
// reclaim of entries whose adopted manager died. The chaos scenario turns
// every knob on at once under 30% loss with a crash of the shard-heaviest
// host, and runs twice to prove the whole stack is still deterministic.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/base/rng.h"
#include "mermaid/dsm/directory.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::dsm {
namespace {

using Reg = arch::TypeRegistry;

void ExpectQuiescent(System& sys) {
  const auto q = sys.CheckQuiescent();
  EXPECT_EQ(q.busy_entries, 0u) << "manager entries still busy at quiescence";
  EXPECT_EQ(q.pending_transfers, 0u) << "transfers still queued at quiescence";
}

SystemConfig DirConfig(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.region_bytes = 64 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.net.seed = seed;
  return cfg;
}

// Every host must derive the identical shard map from (num_hosts, shards)
// alone — the ring is the coordination-free replacement for p % N.
TEST(DirScale, ShardMapIsDeterministicAcrossHosts) {
  SystemConfig cfg;
  cfg.directory_mode = SystemConfig::DirectoryMode::kSharded;
  constexpr std::uint16_t kHosts = 64;
  constexpr PageNum kPages = 4096;
  Directory d0(cfg, /*self=*/0, kHosts, kPages);
  Directory d63(cfg, /*self=*/63, kHosts, kPages);
  for (PageNum p = 0; p < kPages; ++p) {
    ASSERT_EQ(d0.BaseManagerOf(p), d63.BaseManagerOf(p)) << "page " << p;
  }
}

// The motivating pathology: pages touched at stride N/4 alias onto
// gcd-many managers under p % N (4 hosts carry everything), while the
// hashed ring spreads the same page set across most of the fleet.
TEST(DirScale, ShardedRingBreaksStrideAliasing) {
  SystemConfig cfg;
  constexpr std::uint16_t kHosts = 64;
  constexpr PageNum kPages = 64 * 256;
  constexpr PageNum kStride = kHosts / 4;  // 16
  Directory fixed(cfg, 0, kHosts, kPages);
  cfg.directory_mode = SystemConfig::DirectoryMode::kSharded;
  Directory sharded(cfg, 0, kHosts, kPages);

  std::set<net::HostId> fixed_mgrs, sharded_mgrs;
  for (PageNum p = 0; p < kPages; p += kStride) {
    fixed_mgrs.insert(fixed.BaseManagerOf(p));
    sharded_mgrs.insert(sharded.BaseManagerOf(p));
  }
  EXPECT_EQ(fixed_mgrs.size(), 4u) << "p % N must alias stride-N/4 pages";
  EXPECT_GE(sharded_mgrs.size(), 32u)
      << "the ring must spread the strided set across the fleet";

  // Whole-region balance: no host's shard load may dwarf the mean.
  std::vector<std::uint32_t> load(kHosts, 0);
  for (PageNum p = 0; p < kPages; ++p) ++load[sharded.BaseManagerOf(p)];
  const std::uint32_t mean = kPages / kHosts;
  for (std::uint16_t h = 0; h < kHosts; ++h) {
    EXPECT_LE(load[h], 6 * mean) << "host " << h << " melts under its shards";
  }
}

// Sharded end-to-end: the full protocol runs against ring placement —
// values converge, the referee stays clean, nothing is left busy.
TEST(DirScale, ShardedEndToEndConverges) {
  sim::Engine eng;
  SystemConfig cfg = DirConfig(71001);
  cfg.directory_mode = SystemConfig::DirectoryMode::kSharded;
  constexpr int kHosts = 4;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile(), &arch::FireflyProfile()});
  sys.Start();

  static constexpr int kCells = 16;
  std::atomic<std::int64_t> stamp{1};
  std::atomic<bool> monotone{true};
  std::vector<std::vector<std::int64_t>> seen(
      kHosts, std::vector<std::int64_t>(kCells, 0));
  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kCells * 17);
    h.Write<std::int64_t>(0, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i, "rnd" + std::to_string(i), [&, i](Host& hh) {
        base::Rng rng(71001 * 977 + i);
        for (int k = 0; k < 24; ++k) {
          const int cell = static_cast<int>(rng.NextBelow(kCells));
          const GlobalAddr addr = 8ull * 17 * cell;
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, stamp.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(addr);
            if (v < seen[i][cell]) monotone = false;
            seen[i][cell] = std::max(seen[i][cell], v);
          }
          hh.Compute(rng.NextBelow(300));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);
    auto final_values = std::make_shared<std::vector<std::int64_t>>(kCells);
    for (int cell = 0; cell < kCells; ++cell) {
      (*final_values)[cell] = h.Read<std::int64_t>(8ull * 17 * cell);
    }
    for (int i = 1; i < kHosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i),
                      [&sys, i, final_values](Host& hh) {
                        for (int cell = 0; cell < kCells; ++cell) {
                          EXPECT_EQ(hh.Read<std::int64_t>(8ull * 17 * cell),
                                    (*final_values)[cell])
                              << "host " << i << " cell " << cell;
                        }
                        sys.sync(i).V(1);
                      });
    }
    for (int i = 1; i < kHosts; ++i) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  EXPECT_TRUE(monotone.load());
  // Sharded placement migrates nothing — the dynamic machinery must be cold.
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.mgr_migrations"), 0);
  ExpectQuiescent(sys);
}

// Pure Li dynamic managers (hot-page voting off): every remote writer's
// commit pulls the page's management to it, so a chain of writers leaves a
// forward chain behind and reads still resolve through it.
TEST(DirScale, DynamicMigratesManagementToWriter) {
  sim::Engine eng;
  SystemConfig cfg = DirConfig(71002);
  cfg.directory_mode = SystemConfig::DirectoryMode::kDynamic;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 16);
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(1, "writer1", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 10);
      sys.sync(1).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Milliseconds(200));  // let the async migration land
    sys.SpawnThread(2, "writer2", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 20);
      sys.sync(2).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Milliseconds(200));
    seen = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  EXPECT_EQ(seen, 20);
  auto& st = sys.GatherStats();
  // At least one of the two remote writes committed against a manager that
  // was not the writer itself, so management moved at least once.
  EXPECT_GE(st.Count("dsm.mgr_migrations"), 1);
  EXPECT_EQ(st.Count("dsm.mgr_migrations"), st.Count("dsm.mgr_migrate_adopted"));
  ExpectQuiescent(sys);
}

// Hot-page detector: only a *dominant* writer (Boyer–Moore vote reaching the
// threshold) pulls management; a page ping-ponged once doesn't move.
TEST(DirScale, HotPageVoteMigratesToDominantWriter) {
  sim::Engine eng;
  SystemConfig cfg = DirConfig(71003);
  cfg.directory_mode = SystemConfig::DirectoryMode::kDynamic;
  cfg.hot_page_migration = true;
  cfg.hot_page_threshold = 4;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 16);
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    sys.sync(0).SemInit(3, 0);
    // Host 1 writes the page 6 times; host 2's interleaved reads downgrade
    // it each round so every write is a fresh manager commit (a vote).
    sys.SpawnThread(1, "hot-writer", [&, a](Host& hh) {
      for (int k = 1; k <= 6; ++k) {
        hh.Write<std::int64_t>(a, k);
        sys.sync(1).V(1);
        sys.sync(1).P(2);
      }
      sys.sync(1).V(3);
    });
    sys.SpawnThread(2, "reader", [&, a](Host& hh) {
      for (int k = 1; k <= 6; ++k) {
        sys.sync(2).P(1);
        EXPECT_EQ(hh.Read<std::int64_t>(a), k);
        sys.sync(2).V(2);
      }
    });
    sys.sync(0).P(3);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  auto& st = sys.GatherStats();
  EXPECT_GE(st.Count("dsm.mgr_migrations"), 1)
      << "six dominant-writer commits must trip a threshold-4 vote";
  ExpectQuiescent(sys);
}

// Migration racing live faults: three unsynchronized writers hammer the
// same page while its management keeps moving. Parked requests must be
// re-dispatched to the new manager (never dropped, never double-granted):
// per-host stamp monotonicity plus final convergence proves it.
TEST(DirScale, MigrateMidFaultCompletes) {
  sim::Engine eng;
  SystemConfig cfg = DirConfig(71004);
  cfg.directory_mode = SystemConfig::DirectoryMode::kDynamic;
  constexpr int kHosts = 3;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::atomic<std::int64_t> stamp{1};
  std::atomic<bool> monotone{true};
  std::vector<std::int64_t> seen(kHosts, 0);
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 16);
    h.Write<std::int64_t>(a, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < kHosts; ++i) {
      sys.SpawnThread(i, "hammer" + std::to_string(i), [&, i, a](Host& hh) {
        base::Rng rng(71004 * 977 + i);
        for (int k = 0; k < 30; ++k) {
          if (rng.NextBool(0.5)) {
            hh.Write<std::int64_t>(a, stamp.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(a);
            if (v < seen[i]) monotone = false;
            seen[i] = std::max(seen[i], v);
          }
          hh.Compute(rng.NextBelow(120));
        }
        sys.sync(i).V(1);
      });
    }
    for (int i = 0; i < kHosts; ++i) sys.sync(0).P(1);
    auto final_value = std::make_shared<std::int64_t>(h.Read<std::int64_t>(a));
    for (int i = 1; i < kHosts; ++i) {
      sys.SpawnThread(i, "check" + std::to_string(i),
                      [&sys, a, final_value, i](Host& hh) {
                        EXPECT_EQ(hh.Read<std::int64_t>(a), *final_value)
                            << "host " << i;
                        sys.sync(i).V(1);
                      });
    }
    for (int i = 1; i < kHosts; ++i) sys.sync(0).P(1);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  EXPECT_TRUE(monotone.load()) << "a host observed a stale stamp";
  auto& st = sys.GatherStats();
  EXPECT_GE(st.Count("dsm.mgr_migrations"), 1);
  ExpectQuiescent(sys);
}

// Find a page in [0, pages) whose base manager is 1 or 2 under `cfg`
// (host 0 runs the sync server and must not be crashed).
PageNum PickPageManagedBy(const SystemConfig& cfg, std::uint16_t num_hosts,
                          PageNum pages, net::HostId want) {
  Directory replica(cfg, /*self=*/0, num_hosts, pages);
  for (PageNum p = 0; p < pages; ++p) {
    if (replica.BaseManagerOf(p) == want) return p;
  }
  ADD_FAILURE() << "no page managed by host " << want;
  return 0;
}

SystemConfig DirRecoveryConfig(std::uint64_t seed) {
  SystemConfig cfg = DirConfig(seed);
  cfg.directory_mode = SystemConfig::DirectoryMode::kDynamic;
  cfg.crash_recovery = true;
  cfg.lost_page_policy = SystemConfig::LostPagePolicy::kReinitZero;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 30;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  return cfg;
}

// The *base* manager of a migrated page crashes. Its restart rebuilds from
// survivor claims; the live adopted manager's claim must re-establish a
// forward pointer (dsm.recovery_forwards) instead of a competing entry,
// and reads through the base keep resolving.
TEST(DirRecovery, ForwardSurvivesCrashOfBaseManager) {
  SystemConfig cfg = DirRecoveryConfig(72001);
  constexpr PageNum kPages = 64;
  const PageNum p = PickPageManagedBy(cfg, 3, kPages, /*want=*/1);
  const net::HostId base_mgr = 1, writer = 2;

  sim::Engine eng;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t seen = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kPages * 128);  // whole region
    const GlobalAddr a = 1024ull * p;
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(writer, "writer", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 42);  // pulls management base_mgr -> writer
      sys.sync(writer).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Milliseconds(300));  // migration handshake completes
    sys.CrashAndRestartHost(base_mgr, Seconds(1));
    h.runtime().Delay(Seconds(3));  // restart + rebuild
    seen = h.Read<std::int64_t>(a);
    h.runtime().Delay(Seconds(3));
  });
  eng.Run();
  EXPECT_EQ(seen, 42);
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("dsm.mgr_migrations"), 1);
  EXPECT_GE(st.Count("dsm.recovery_forwards"), 1)
      << "the rebuilt base must forward to the live adopted manager";
  ExpectQuiescent(sys);
}

// The *adopted* manager of a migrated page crashes. The base (holding a
// now-dangling forward pointer) must reclaim the entry via a targeted
// recovery query and promote the surviving read copy — the reader sees the
// pre-crash value, not zeroes.
TEST(DirRecovery, ReclaimAfterAdoptedManagerDeath) {
  SystemConfig cfg = DirRecoveryConfig(72002);
  constexpr PageNum kPages = 64;
  const PageNum p = PickPageManagedBy(cfg, 3, kPages, /*want=*/1);
  const net::HostId base_mgr = 1, writer = 2;
  (void)base_mgr;

  sim::Engine eng;
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();

  std::int64_t pre = -1, post = -1;
  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kPages * 128);
    const GlobalAddr a = 1024ull * p;
    sys.sync(0).SemInit(1, 0);
    sys.SpawnThread(writer, "doomed-writer", [&, a](Host& hh) {
      hh.Write<std::int64_t>(a, 7);  // management migrates to the writer
      sys.sync(writer).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Milliseconds(300));
    pre = h.Read<std::int64_t>(a);  // host 0 keeps a surviving read copy
    sys.CrashAndRestartHost(writer, Seconds(2));
    h.runtime().Delay(Milliseconds(200));
    // Fault while the adopted manager is down: the base sees its forward
    // point at a dead host and reclaims the entry from survivor claims.
    sys.SpawnThread(0, "reader", [&, a](Host& hh) {
      post = hh.Read<std::int64_t>(a);
      sys.sync(0).V(1);
    });
    sys.sync(0).P(1);
    h.runtime().Delay(Seconds(5));
  });
  eng.Run();
  EXPECT_EQ(pre, 7);
  EXPECT_EQ(post, 7) << "the surviving copy must be promoted, not reinitialized";
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.crashes"), 1);
  EXPECT_GE(st.Count("dsm.mgr_reclaims_run"), 1);
  ExpectQuiescent(sys);
}

// ---------------------------------------------------------------------------
// Chaos with every knob on: dynamic directory + hot-page voting + probable
// owner + group fetch + coalesced invalidation + crash recovery, 30% loss,
// zipf-skewed access, and a crash of the shard-heaviest host mid-run. The
// scenario runs twice and must produce byte-identical results and stats —
// the whole stack stays deterministic under chaos.

struct ChaosOutcome {
  std::vector<std::int64_t> finals;
  std::int64_t migrations = 0;
  std::int64_t crashes = 0;
  std::int64_t dropped = 0;
  bool monotone = true;
};

ChaosOutcome RunDirChaos(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.region_bytes = 64 * 1024;
  cfg.page_bytes_override = 1024;
  cfg.referee_check_access = true;
  cfg.net.seed = seed;
  cfg.net.loss_probability = 0.30;
  cfg.call_timeout = Milliseconds(150);
  cfg.call_max_attempts = 300;
  cfg.janitor_period = Milliseconds(100);
  cfg.confirm_probe_after = Milliseconds(300);
  cfg.directory_mode = SystemConfig::DirectoryMode::kDynamic;
  cfg.hot_page_migration = true;
  cfg.hot_page_threshold = 4;
  cfg.probable_owner = true;
  cfg.group_fetch = true;
  cfg.coalesced_invalidation = true;
  cfg.crash_recovery = true;
  cfg.lost_page_policy = SystemConfig::LostPagePolicy::kReinitZero;

  constexpr int kHosts = 8;
  constexpr int kCells = 24;
  constexpr int kOps = 16;
  constexpr PageNum kPages = 64;

  // The crash victim is the shard-heaviest host (most base-managed pages)
  // among hosts 1..N-1 — host 0 carries the sync server.
  Directory replica(cfg, 0, kHosts, kPages);
  std::vector<std::uint32_t> load(kHosts, 0);
  for (PageNum p = 0; p < kPages; ++p) ++load[replica.BaseManagerOf(p)];
  net::HostId victim = 1;
  for (net::HostId h = 2; h < kHosts; ++h) {
    if (load[h] > load[victim]) victim = h;
  }

  sim::Engine eng;
  std::vector<const arch::ArchProfile*> profiles;
  for (int i = 0; i < kHosts; ++i) {
    profiles.push_back(i % 2 == 0 ? &arch::Sun3Profile()
                                  : &arch::FireflyProfile());
  }
  System sys(eng, cfg, profiles);
  sys.Start();

  ChaosOutcome out;
  out.finals.resize(kCells, -1);
  std::atomic<std::int64_t> stamp{1};
  std::atomic<bool> monotone{true};
  std::vector<std::vector<std::int64_t>> seen(
      kHosts, std::vector<std::int64_t>(kCells, 0));

  sys.SpawnThread(0, "master", [&](Host& h) {
    sys.Alloc(0, Reg::kLong, kCells * 17);
    h.Write<std::int64_t>(0, 0);
    sys.sync(0).SemInit(1, 0);
    for (int i = 0; i < kHosts; ++i) {
      if (i == victim) continue;  // its threads would die with the crash
      sys.SpawnThread(i, "zipf" + std::to_string(i), [&, i](Host& hh) {
        base::Rng rng(seed * 977 + i);
        for (int k = 0; k < kOps; ++k) {
          // Zipf-ish skew: u^2 biases hard toward cell 0 — the hot pages
          // concentrate on a few managers, which is the scenario the
          // dynamic directory exists for.
          const double u = rng.NextBelow(1000) / 1000.0;
          const int cell = static_cast<int>(kCells * u * u * 0.999);
          const GlobalAddr addr = 8ull * 17 * cell;
          if (rng.NextBool(0.4)) {
            hh.Write<std::int64_t>(addr, stamp.fetch_add(1));
          } else {
            const std::int64_t v = hh.Read<std::int64_t>(addr);
            if (v < seen[i][cell]) monotone = false;
            seen[i][cell] = std::max(seen[i][cell], v);
          }
          hh.Compute(rng.NextBelow(300));
        }
        sys.sync(i).V(1);
      });
    }
    h.runtime().Delay(Milliseconds(50));  // crash lands mid-workload
    sys.CrashAndRestartHost(victim, Seconds(2));
    for (int i = 0; i < kHosts; ++i) {
      if (i != victim) sys.sync(0).P(1);
    }
    h.runtime().Delay(Seconds(4));  // restart + recovery drain
    for (int cell = 0; cell < kCells; ++cell) {
      out.finals[cell] = h.Read<std::int64_t>(8ull * 17 * cell);
    }
    h.runtime().Delay(Seconds(5));  // confirm/probe drain before quiescence
  });
  eng.Run();
  out.monotone = monotone.load();
  auto& st = sys.GatherStats();
  out.migrations = st.Count("dsm.mgr_migrations");
  out.crashes = st.Count("dsm.crashes");
  out.dropped = st.Count("net.packets_dropped");
  EXPECT_EQ(out.crashes, 1);
  EXPECT_GT(out.dropped, 0);
  ExpectQuiescent(sys);
  return out;
}

TEST(DirChaos, AllKnobsZipfSkewSurvivesHotShardCrash) {
  const ChaosOutcome a = RunDirChaos(73001);
  EXPECT_TRUE(a.monotone) << "a host observed a stale stamp";
  const ChaosOutcome b = RunDirChaos(73001);
  EXPECT_EQ(a.finals, b.finals) << "chaos run is not deterministic";
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.dropped, b.dropped);
}

// Knobs-off guard: with directory_mode at its default none of the scale-out
// machinery may leave a trace — no migrations, no forwards, no reclaims, no
// extra wire classes. (Bit-identity of Tables 2–4 rides on this.)
TEST(DirScale, KnobsOffLeaveNoTrace) {
  sim::Engine eng;
  SystemConfig cfg = DirConfig(71005);  // directory_mode = kFixed
  System sys(eng, cfg,
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  sys.SpawnThread(0, "master", [&](Host& h) {
    GlobalAddr a = sys.Alloc(0, Reg::kLong, 32);
    sys.sync(0).SemInit(1, 0);
    for (int i = 1; i <= 2; ++i) {
      sys.SpawnThread(i, "w" + std::to_string(i), [&, a, i](Host& hh) {
        for (int k = 0; k < 8; ++k) {
          hh.Write<std::int64_t>(a + 8 * k, i * 100 + k);
        }
        sys.sync(i).V(1);
      });
      sys.sync(0).P(1);
    }
    EXPECT_EQ(h.Read<std::int64_t>(a), 200);
    h.runtime().Delay(Seconds(2));
  });
  eng.Run();
  auto& st = sys.GatherStats();
  EXPECT_EQ(st.Count("dsm.mgr_migrations"), 0);
  EXPECT_EQ(st.Count("dsm.mgr_forwards"), 0);
  EXPECT_EQ(st.Count("dsm.mgr_reclaims"), 0);
  EXPECT_EQ(st.Count("dsm.mgr_redirects_sent"), 0);
  std::int64_t migrate_msgs = 0;
  for (std::uint16_t h = 0; h < sys.num_hosts(); ++h) {
    migrate_msgs +=
        sys.host(h).endpoint().stats().Count("reqrep.tx_msgs.mgr_migrate");
  }
  EXPECT_EQ(migrate_msgs, 0) << "kOpMgrMigrate must never appear knobs-off";
  ExpectQuiescent(sys);
}

}  // namespace
}  // namespace mermaid::dsm
