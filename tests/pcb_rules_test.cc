// Unit tests of the PCB design-rule checker on hand-built miniature boards,
// independent of the generator and of DSM.
#include <gtest/gtest.h>

#include "mermaid/apps/pcb.h"

namespace mermaid::apps {
namespace {

// Builds a column-major image from row-major ASCII art:
// '.'=empty '#'=copper 'O'=pad '@'=hole.
std::vector<std::uint8_t> Board(const std::vector<std::string>& rows) {
  const int height = static_cast<int>(rows.size());
  const int width = static_cast<int>(rows[0].size());
  std::vector<std::uint8_t> img(static_cast<std::size_t>(height) * width,
                                kEmpty);
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      std::uint8_t v = kEmpty;
      switch (rows[r][c]) {
        case '#': v = kCopper; break;
        case 'O': v = kPad; break;
        case '@': v = kHole; break;
        default: v = kEmpty;
      }
      img[static_cast<std::size_t>(c) * height + r] = v;
    }
  }
  return img;
}

PcbStats Check(const std::vector<std::string>& rows,
               std::vector<std::uint8_t>* overlay = nullptr) {
  const int height = static_cast<int>(rows.size());
  const int width = static_cast<int>(rows[0].size());
  std::vector<std::uint8_t> ov;
  auto img = Board(rows);
  return CheckBoardReference(img, height, width,
                             overlay != nullptr ? overlay : &ov);
}

TEST(PcbRules, WideTraceIsClean) {
  auto stats = Check({
      "..........",
      ".########.",
      ".########.",
      ".########.",
      "..........",
  });
  EXPECT_EQ(stats.narrow, 0);
  EXPECT_EQ(stats.spacing, 0);
  EXPECT_EQ(stats.missing_hole, 0);
}

TEST(PcbRules, TwoPixelTraceIsNarrow) {
  auto stats = Check({
      "..........",
      ".########.",
      ".########.",
      "..........",
  });
  EXPECT_EQ(stats.narrow, 16);  // every trace pixel is in a 2-wide ribbon
  EXPECT_EQ(stats.spacing, 0);
}

TEST(PcbRules, OnePixelGapIsSpacingViolation) {
  auto stats = Check({
      "..........",
      ".########.",
      ".########.",
      ".########.",
      "..........",
      ".########.",
      ".########.",
      ".########.",
      "..........",
  });
  // The single empty row between the two traces: 8 squeezed pixels.
  EXPECT_EQ(stats.spacing, 8);
  EXPECT_EQ(stats.narrow, 0);
}

TEST(PcbRules, PadWithHoleIsClean) {
  std::vector<std::string> rows(12, std::string(12, '.'));
  for (int r = 1; r <= 10; ++r) {
    for (int c = 1; c <= 10; ++c) rows[r][c] = 'O';
  }
  rows[5][5] = rows[5][6] = rows[6][5] = rows[6][6] = '@';
  auto stats = Check(rows);
  EXPECT_EQ(stats.missing_hole, 0);
  EXPECT_EQ(stats.narrow, 0);
}

TEST(PcbRules, PadWithoutHoleFlagsEveryPadPixel) {
  std::vector<std::string> rows(12, std::string(12, '.'));
  for (int r = 1; r <= 10; ++r) {
    for (int c = 1; c <= 10; ++c) rows[r][c] = 'O';
  }
  std::vector<std::uint8_t> overlay;
  auto stats = Check(rows, &overlay);
  EXPECT_EQ(stats.missing_hole, 100);
  // Overlay marks exactly the pad pixels.
  int marked = 0;
  for (auto v : overlay) marked += v;
  EXPECT_EQ(marked, 100);
}

TEST(PcbRules, BoardEdgesAreNotViolations) {
  // A 3x4 blob flush against the border: the outside counts as empty but
  // creates neither spacing nor width violations.
  auto stats = Check({
      "###.......",
      "###.......",
      "###.......",
      "###.......",
  });
  EXPECT_EQ(stats.spacing, 0);
  EXPECT_EQ(stats.narrow, 0);
}

TEST(PcbRules, HoleCountsAsConductorForWidth) {
  // A pad whose hole pixels sit inside must not create narrow-width
  // violations around the hole.
  std::vector<std::string> rows(12, std::string(12, '.'));
  for (int r = 1; r <= 10; ++r) {
    for (int c = 1; c <= 10; ++c) rows[r][c] = 'O';
  }
  rows[5][5] = rows[5][6] = rows[6][5] = rows[6][6] = '@';
  auto stats = Check(rows);
  EXPECT_EQ(stats.narrow, 0);
}

}  // namespace
}  // namespace mermaid::apps
