// Trace layer: ring-buffer semantics, causal bindings, exporter output, and
// a protocol litmus — replay a traced read fault through the R -> M -> O
// forwarding path and a write-invalidate round, and check the reconstructed
// causal chain matches the protocol's message pattern.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"
#include "mermaid/trace/export.h"
#include "mermaid/trace/trace.h"

namespace mermaid::trace {
namespace {

TEST(Tracer, AssignsMonotonicIdsAndKeepsOrder) {
  Tracer t(16);
  t.Enable(true);
  const std::uint64_t a = t.Record(EventKind::kFaultStart, 0, 100, 7);
  const std::uint64_t b = t.Record(EventKind::kFaultEnd, 0, 200, 7, 0, a);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const auto evs = t.Snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].id, a);
  EXPECT_EQ(evs[0].kind, EventKind::kFaultStart);
  EXPECT_EQ(evs[0].at, 100);
  EXPECT_EQ(evs[0].page, 7u);
  EXPECT_EQ(evs[1].parent, a);
  EXPECT_EQ(t.total_recorded(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingEvictsOldestWhenFull) {
  Tracer t(4);
  t.Enable(true);
  for (int i = 0; i < 6; ++i) {
    t.Record(EventKind::kPacketSend, 0, i);
  }
  const auto evs = t.Snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Events 1 and 2 were evicted; 3..6 remain, oldest first.
  EXPECT_EQ(evs.front().id, 3u);
  EXPECT_EQ(evs.back().id, 6u);
  EXPECT_EQ(t.total_recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(Tracer, DisabledRecordingIsANoOp) {
  Tracer t(16);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.Record(EventKind::kFaultStart, 0, 1, 1), 0u);
  EXPECT_TRUE(t.Snapshot().empty());
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Tracer, BindPublishesParentAndRebindMovesChainForward) {
  Tracer t(16);
  t.Enable(true);
  EXPECT_EQ(t.Parent(OpKey(3, 9)), 0u);  // unknown key roots a new chain
  t.Bind(OpKey(3, 9), 41);
  EXPECT_EQ(t.Parent(OpKey(3, 9)), 41u);
  t.Bind(OpKey(3, 9), 42);  // next protocol leg rebinds
  EXPECT_EQ(t.Parent(OpKey(3, 9)), 42u);
  // Key namespaces don't collide: same page, different tag.
  t.Bind(InvKey(3), 7);
  EXPECT_EQ(t.Parent(OpKey(3, 9)), 42u);
  EXPECT_EQ(t.Parent(InvKey(3)), 7u);
}

TEST(Tracer, ClearDropsEventsAndBindings) {
  Tracer t(16);
  t.Enable(true);
  t.Record(EventKind::kInstall, 1, 5, 2);
  t.Bind(OpKey(2, 1), 1);
  t.Clear();
  EXPECT_TRUE(t.Snapshot().empty());
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.Parent(OpKey(2, 1)), 0u);
  EXPECT_TRUE(t.enabled());  // Clear keeps the enable state
}

// Minimal structural JSON check: braces/brackets balance outside strings,
// escapes honored. Enough to catch any malformed exporter output.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

struct LitmusRun {
  std::vector<Event> events;
  SimTime end_time = 0;
  std::uint64_t recorded = 0;
};

// Three same-type hosts; page 1 is managed by host 1. Host 2 takes write
// ownership, host 0 read-faults (R -> M -> O with a forward), then host 2
// re-writes, invalidating host 0's copy.
LitmusRun RunLitmus(bool trace_on) {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.page_bytes_override = 8192;
  cfg.trace = trace_on;
  std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile(),
                                              &arch::Sun3Profile(),
                                              &arch::Sun3Profile()};
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  const dsm::PageNum target = 1;
  const dsm::GlobalAddr page_b = 8192;

  sys.SpawnThread(2, "owner", [&](dsm::Host& h) {
    dsm::GlobalAddr a = sys.Alloc(h.id(), arch::TypeRegistry::kInt, 4096);
    std::vector<std::int32_t> fill(2048, 3);
    h.WriteBlock<std::int32_t>(a + target * page_b, fill.data(), fill.size());
    sys.sync(h.id()).V(1);
    sys.sync(h.id()).P(2);
    // Second write: host 0 holds a read copy now, so this upgrade must
    // invalidate it.
    h.WriteBlock<std::int32_t>(a + target * page_b, fill.data(), fill.size());
  });
  sys.SpawnThread(0, "reader", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    sys.sync(0).P(1);
    h.Touch(target * page_b, dsm::Access::kRead);
    sys.sync(0).V(2);
  });
  eng.Run();
  return LitmusRun{sys.tracer().Snapshot(), eng.Now(),
                   sys.tracer().total_recorded()};
}

const Event* FindLast(const std::vector<Event>& evs, EventKind kind,
                      std::uint16_t host, std::uint32_t page) {
  const Event* found = nullptr;
  for (const Event& ev : evs) {
    if (ev.kind == kind && ev.host == host && ev.page == page) found = &ev;
  }
  return found;
}

TEST(TraceLitmus, ReconstructsFaultForwardServeGrantChain) {
  const LitmusRun run = RunLitmus(/*trace_on=*/true);
  ASSERT_FALSE(run.events.empty());
  std::map<std::uint64_t, const Event*> by_id;
  for (const Event& ev : run.events) by_id[ev.id] = &ev;

  // Host 0's read fault installed page 1; walk its causal chain backwards.
  const Event* install = FindLast(run.events, EventKind::kInstall, 0, 1);
  ASSERT_NE(install, nullptr);
  EXPECT_EQ(install->a0, 0) << "read install, not write";

  ASSERT_NE(install->parent, 0u);
  const Event* serve = by_id.at(install->parent);
  EXPECT_EQ(serve->kind, EventKind::kOwnerServe);
  EXPECT_EQ(serve->host, 2) << "host 2 owned the page";
  EXPECT_EQ(serve->op, install->op);

  ASSERT_NE(serve->parent, 0u);
  const Event* forward = by_id.at(serve->parent);
  EXPECT_EQ(forward->kind, EventKind::kManagerForward);
  EXPECT_EQ(forward->host, 1) << "host 1 manages page 1";
  EXPECT_EQ(forward->a0, 2) << "forwarded to the owner, host 2";

  ASSERT_NE(forward->parent, 0u);
  const Event* grant = by_id.at(forward->parent);
  EXPECT_EQ(grant->kind, EventKind::kManagerGrant);
  EXPECT_EQ(grant->host, 1);
  EXPECT_EQ(grant->op, install->op) << "one op id spans the whole transfer";

  ASSERT_NE(grant->parent, 0u);
  const Event* fault = by_id.at(grant->parent);
  EXPECT_EQ(fault->kind, EventKind::kFaultStart);
  EXPECT_EQ(fault->host, 0);
  EXPECT_EQ(fault->page, 1u);

  // Sim-time must be monotone along the chain.
  EXPECT_LE(fault->at, grant->at);
  EXPECT_LE(grant->at, forward->at);
  EXPECT_LE(forward->at, serve->at);
  EXPECT_LE(serve->at, install->at);

  // The fault also closed: its kFaultEnd points back at the start event.
  const Event* fault_end = FindLast(run.events, EventKind::kFaultEnd, 0, 1);
  ASSERT_NE(fault_end, nullptr);
  EXPECT_EQ(fault_end->parent, fault->id);

  // And the manager committed the same op after the install.
  const Event* commit = FindLast(run.events, EventKind::kManagerCommit, 1, 1);
  ASSERT_NE(commit, nullptr);
  EXPECT_GE(commit->at, install->at);
}

TEST(TraceLitmus, WriteInvalidateRoundLinksSendToReceive) {
  const LitmusRun run = RunLitmus(/*trace_on=*/true);
  std::map<std::uint64_t, const Event*> by_id;
  for (const Event& ev : run.events) by_id[ev.id] = &ev;

  // Host 2's second write invalidated host 0's read copy.
  const Event* recv = FindLast(run.events, EventKind::kInvalidateRecv, 0, 1);
  ASSERT_NE(recv, nullptr);
  ASSERT_NE(recv->parent, 0u);
  const Event* send = by_id.at(recv->parent);
  EXPECT_EQ(send->kind, EventKind::kInvalidateSend);
  EXPECT_EQ(send->host, 2) << "the upgrading writer multicasts";
  EXPECT_EQ(send->page, 1u);
  EXPECT_EQ(send->a0, 1) << "fan-out of one: only host 0 held a copy";
  EXPECT_LE(send->at, recv->at);

  // The invalidation hangs off the writer's install of the same op.
  ASSERT_NE(send->parent, 0u);
  const Event* install = by_id.at(send->parent);
  EXPECT_EQ(install->kind, EventKind::kInstall);
  EXPECT_EQ(install->host, 2);
  EXPECT_EQ(install->a0, 1) << "write install";
}

TEST(TraceLitmus, TracingDoesNotPerturbModeledTime) {
  const LitmusRun off = RunLitmus(/*trace_on=*/false);
  const LitmusRun on = RunLitmus(/*trace_on=*/true);
  EXPECT_EQ(off.recorded, 0u);
  EXPECT_TRUE(off.events.empty());
  EXPECT_GT(on.recorded, 0u);
  EXPECT_EQ(off.end_time, on.end_time)
      << "virtual end time must be bit-identical with tracing on or off";
}


// Probable-owner litmus: one run that exercises both hinted outcomes.
// Page 1 (managed by host 1) is owned by host 2; host 0 read-faults three
// times: via the manager (learning the hint), via a hint HIT (2-hop serve),
// and — after host 1 steals ownership — via a STALE hint that host 2
// re-forwards through the manager.
LitmusRun RunHintLitmus() {
  sim::Engine eng;
  dsm::SystemConfig cfg;
  cfg.region_bytes = 1u << 20;
  cfg.page_bytes_override = 8192;
  cfg.trace = true;
  cfg.probable_owner = true;
  std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile(),
                                              &arch::Sun3Profile(),
                                              &arch::Sun3Profile()};
  dsm::System sys(eng, cfg, hosts);
  sys.Start();
  const dsm::GlobalAddr a = 8192;  // page 1, managed by host 1

  // Invalidations retarget the victim's hint at the new writer, so to leave
  // host 0 with a genuinely stale hint it must hold NO copy when ownership
  // moves: host 2 re-takes the page (invalidating host 0) before host 1
  // usurps ownership — that last transfer never touches host 0.
  sys.SpawnThread(2, "first-owner", [&](dsm::Host& h) {
    sys.Alloc(2, arch::TypeRegistry::kInt, 6144);  // pages 0..2
    h.Write<std::int32_t>(a, 1);
    sys.sync(2).EventSet(1);
    sys.sync(2).EventWait(2);
    h.Write<std::int32_t>(a, 2);  // invalidates host 0; host 2 still owner
    sys.sync(2).EventSet(3);
    sys.sync(2).EventWait(4);
    h.Write<std::int32_t>(a, 3);  // host 0 drops its copy, hint stays = 2
    sys.sync(2).EventSet(5);
  });
  sys.SpawnThread(1, "usurper", [&](dsm::Host& h) {
    sys.sync(1).EventWait(5);
    h.Write<std::int32_t>(a, 4);  // ownership moves: host 0's hint is stale
    sys.sync(1).EventSet(6);
    sys.sync(1).EventWait(7);  // outlive host 0's final confirm
    sys.sync(1).EventSet(8);
  });
  sys.SpawnThread(0, "reader", [&](dsm::Host& h) {
    sys.sync(0).EventWait(1);
    EXPECT_EQ(h.Read<std::int32_t>(a), 1);  // manager path, learns hint
    sys.sync(0).EventSet(2);
    sys.sync(0).EventWait(3);
    EXPECT_EQ(h.Read<std::int32_t>(a), 2);  // hint hit
    sys.sync(0).EventSet(4);
    sys.sync(0).EventWait(6);
    EXPECT_EQ(h.Read<std::int32_t>(a), 4);  // stale hint falls back
    sys.sync(0).EventSet(7);
    sys.sync(0).EventWait(8);
  });
  eng.Run();
  return LitmusRun{sys.tracer().Snapshot(), eng.Now(),
                   sys.tracer().total_recorded()};
}

TEST(TraceLitmus, HintHitChainsFaultFetchServeInstall) {
  const LitmusRun run = RunHintLitmus();
  ASSERT_FALSE(run.events.empty());
  std::map<std::uint64_t, const Event*> by_id;
  for (const Event& ev : run.events) by_id[ev.id] = &ev;

  // The hint-hit transfer is the only one with op id 0: find its install.
  const Event* install = nullptr;
  for (const Event& ev : run.events) {
    if (ev.kind == EventKind::kInstall && ev.host == 0 && ev.page == 1 &&
        ev.op == 0) {
      install = &ev;
    }
  }
  ASSERT_NE(install, nullptr) << "no manager-less (op 0) install";

  // install <- owner serve on the hinted host, no manager leg in between.
  ASSERT_NE(install->parent, 0u);
  const Event* serve = by_id.at(install->parent);
  EXPECT_EQ(serve->kind, EventKind::kOwnerServe);
  EXPECT_EQ(serve->host, 2);
  EXPECT_EQ(serve->op, 0u);

  // The owner also marked the serve as hinted and chained it to the fetch.
  const Event* hint_serve = FindLast(run.events, EventKind::kHintServe, 2, 1);
  ASSERT_NE(hint_serve, nullptr);
  ASSERT_NE(hint_serve->parent, 0u);
  const Event* fetch = by_id.at(hint_serve->parent);
  EXPECT_EQ(fetch->kind, EventKind::kHintFetch);
  EXPECT_EQ(fetch->host, 0);
  EXPECT_EQ(fetch->a0, 2) << "fetch went straight to the hinted owner";

  // fetch <- the fault that triggered it, and that fault closed.
  ASSERT_NE(fetch->parent, 0u);
  const Event* fault = by_id.at(fetch->parent);
  EXPECT_EQ(fault->kind, EventKind::kFaultStart);
  EXPECT_EQ(fault->host, 0);
  EXPECT_EQ(fault->page, 1u);

  EXPECT_LE(fault->at, fetch->at);
  EXPECT_LE(fetch->at, hint_serve->at);
  EXPECT_LE(hint_serve->at, install->at);

  // No manager event participates between fetch and install: every grant on
  // the manager happened outside [fetch, install] sim-time for op 0.
  for (const Event& ev : run.events) {
    if (ev.kind == EventKind::kManagerGrant && ev.page == 1) {
      EXPECT_TRUE(ev.at <= fetch->at || ev.at >= install->at)
          << "manager grant inside a hint-hit window";
    }
  }
}

TEST(TraceLitmus, StaleHintReforwardsThroughManagerGrant) {
  const LitmusRun run = RunHintLitmus();
  std::map<std::uint64_t, const Event*> by_id;
  for (const Event& ev : run.events) by_id[ev.id] = &ev;

  // Host 2 detected the stale hint and re-forwarded to the manager.
  const Event* stale = FindLast(run.events, EventKind::kHintStale, 2, 1);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->a0, 1) << "re-forwarded to the manager, host 1";
  ASSERT_NE(stale->parent, 0u);
  const Event* fetch = by_id.at(stale->parent);
  EXPECT_EQ(fetch->kind, EventKind::kHintFetch);
  EXPECT_EQ(fetch->host, 0);

  // The manager's grant for the fallback chains through the stale event,
  // so the extra hop is visible in the causal record.
  const Event* grant = FindLast(run.events, EventKind::kManagerGrant, 1, 1);
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->parent, stale->id);
  EXPECT_NE(grant->op, 0u);

  // The fallback transfer completes as a normal manager-path install.
  const Event* install = nullptr;
  for (const Event& ev : run.events) {
    if (ev.kind == EventKind::kInstall && ev.host == 0 && ev.page == 1 &&
        ev.op == grant->op) {
      install = &ev;
    }
  }
  ASSERT_NE(install, nullptr);
  EXPECT_LE(fetch->at, stale->at);
  EXPECT_LE(stale->at, grant->at);
  EXPECT_LE(grant->at, install->at);
}


TEST(TraceExport, ChromeTraceIsStructurallyValidJson) {
  const LitmusRun run = RunLitmus(/*trace_on=*/true);
  const std::string json = ChromeTraceJson(run.events);
  EXPECT_TRUE(JsonBalanced(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Fault start/end pairs render as duration slices.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Fault p1\""), std::string::npos);
  // Instants carry the causal parent in args.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
}

TEST(TraceExport, PageTimelineGroupsEventsByPageInTimeOrder) {
  const LitmusRun run = RunLitmus(/*trace_on=*/true);
  const std::string json = PageTimelineJson(run.events);
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"pages\":{"), std::string::npos);

  const auto pages = PageTimeline(run.events);
  ASSERT_TRUE(pages.count(1));
  SimTime prev = 0;
  for (const Event& ev : pages.at(1)) {
    EXPECT_EQ(ev.page, 1u);
    EXPECT_GE(ev.at, prev);
    prev = ev.at;
  }
  // Packet-level events carry no page and must not appear in any timeline.
  for (const auto& [page, evs] : pages) {
    for (const Event& ev : evs) {
      EXPECT_NE(ev.kind, EventKind::kPacketSend);
      EXPECT_NE(ev.page, kNoPage);
    }
  }
}

}  // namespace
}  // namespace mermaid::trace
