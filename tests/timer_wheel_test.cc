// Timer-wheel edge cases: exact (time, seq) order across levels and the
// overflow list, O(1) cancel including cancel-of-min and the engine's
// cancel-after-fire pattern, re-arm after fire, and dense same-tick bursts.
#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/base/time.h"
#include "mermaid/sim/timer_wheel.h"

namespace mermaid::sim {
namespace {

using Key = std::pair<SimTime, std::uint64_t>;

// Drains the wheel the way the engine does: advance now only to each
// successive minimum, never past a pending deadline.
std::vector<Key> Drain(TimerWheel& w) {
  std::vector<Key> popped;
  SimTime now = 0;
  while (!w.empty()) {
    SimTime t;
    std::uint64_t s;
    EXPECT_TRUE(w.PeekMin(now, &t, &s));
    popped.emplace_back(t, s);
    now = t;
    w.PopMin(now);
  }
  return popped;
}

TEST(TimerWheel, PopsInExactOrderAcrossLevels) {
  TimerWheel w;
  std::vector<Key> keys;
  std::uint64_t seq = 0;
  // Deadlines straddling every level boundary, including sub-tick spacing
  // (several distinct times inside one 4096 ns slot) and one beyond the
  // top level's horizon (overflow list).
  const SimTime bases[] = {0,
                           1,
                           5,
                           4095,
                           4096,
                           4097,
                           SimTime{1} << 18,
                           (SimTime{1} << 18) + 3,
                           SimTime{1} << 24,
                           SimTime{1} << 30,
                           SimTime{1} << 36,
                           SimTime{1} << 42,
                           SimTime{1} << 47,
                           SimTime{1} << 55};
  for (SimTime b : bases) {
    for (SimTime off : {SimTime{0}, SimTime{7}, SimTime{130}}) {
      ++seq;
      w.Arm(b + off, seq, nullptr);
      keys.emplace_back(b + off, seq);
    }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(Drain(w), keys);
  EXPECT_EQ(w.stats().fires, keys.size());
}

TEST(TimerWheel, SameTickBurstPreservesSeqOrder) {
  TimerWheel w;
  // 200 timers at the *same* nanosecond: only seq breaks the tie, and the
  // slot's intrusive list is unordered, so this exercises the exact-min
  // scan rather than slot ordering.
  std::vector<Key> keys;
  for (std::uint64_t s = 1; s <= 200; ++s) {
    w.Arm(Milliseconds(3), 1000 - s, nullptr);  // descending seq on purpose
    keys.emplace_back(Milliseconds(3), 1000 - s);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(Drain(w), keys);
}

TEST(TimerWheel, CancelIsExactIncludingMin) {
  TimerWheel w;
  std::vector<TimerWheel::Timer*> handles;
  std::vector<Key> keys;
  for (std::uint64_t s = 1; s <= 64; ++s) {
    const SimTime t = static_cast<SimTime>(s) * 3000;
    handles.push_back(w.Arm(t, s, nullptr));
    keys.emplace_back(t, s);
  }
  // Cancel the current minimum, a middle element, and the last.
  for (std::size_t idx : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
    w.Cancel(handles[idx]);
    keys.erase(std::find(keys.begin(), keys.end(),
                         Key{static_cast<SimTime>(idx + 1) * 3000, idx + 1}));
  }
  EXPECT_EQ(w.stats().cancels, 3u);
  EXPECT_EQ(Drain(w), keys);
}

TEST(TimerWheel, CancelAfterFireIsANoOpViaNullHandle) {
  TimerWheel w;
  TimerWheel::Timer* h = w.Arm(100, 1, nullptr);
  SimTime t;
  std::uint64_t s;
  ASSERT_TRUE(w.PeekMin(0, &t, &s));
  EXPECT_EQ(w.PopMin(t), nullptr);
  // The engine nulls its handle when the timer fires; the later blind
  // cancel must be safe. (Cancelling a *fired* non-null handle is UB by
  // contract — the node was recycled — which is exactly why the protocol
  // is "null on fire, Cancel(nullptr) is a no-op".)
  h = nullptr;
  w.Cancel(h);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.stats().cancels, 0u);
}

TEST(TimerWheel, RearmAfterFireAndAfterCancel) {
  TimerWheel w;
  // Fire, re-arm later, fire again — the recycled node must behave like a
  // fresh one (retransmit-loop pattern).
  std::uint64_t seq = 0;
  void* payload = &w;
  w.Arm(1000, ++seq, payload);
  EXPECT_EQ(w.PopMin(1000), payload);
  TimerWheel::Timer* h = w.Arm(2000, ++seq, payload);
  w.Cancel(h);
  w.Arm(1500, ++seq, payload);  // earlier than the cancelled one
  SimTime t;
  std::uint64_t s;
  ASSERT_TRUE(w.PeekMin(1000, &t, &s));
  EXPECT_EQ(t, 1500);
  EXPECT_EQ(s, seq);
  EXPECT_EQ(w.PopMin(1500), payload);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RandomizedArmCancelAgainstSortedReference) {
  std::mt19937_64 rng(42);
  TimerWheel w;
  std::vector<std::pair<Key, TimerWheel::Timer*>> live;
  std::vector<Key> expect;
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int round = 0; round < 2000; ++round) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55 || live.empty()) {
      const SimTime t = now + 1 + static_cast<SimTime>(
                                      rng() % (SimTime{1} << (8 + rng() % 40)));
      ++seq;
      live.emplace_back(Key{t, seq}, w.Arm(t, seq, nullptr));
    } else if (op < 80) {
      const std::size_t i = rng() % live.size();
      w.Cancel(live[i].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      // Fire the global min and check it matches the reference set.
      auto best = std::min_element(
          live.begin(), live.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      SimTime t;
      std::uint64_t s;
      ASSERT_TRUE(w.PeekMin(now, &t, &s));
      ASSERT_EQ((Key{t, s}), best->first);
      now = t;
      w.PopMin(now);
      live.erase(best);
    }
    ASSERT_EQ(w.size(), live.size());
  }
  for (const auto& [k, h] : live) expect.push_back(k);
  std::sort(expect.begin(), expect.end());
  // Remaining timers drain in exact order from wherever now ended up.
  std::vector<Key> rest;
  while (!w.empty()) {
    SimTime t;
    std::uint64_t s;
    ASSERT_TRUE(w.PeekMin(now, &t, &s));
    rest.emplace_back(t, s);
    now = std::max(now, t);
    w.PopMin(now);
  }
  EXPECT_EQ(rest, expect);
}

}  // namespace
}  // namespace mermaid::sim
