#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/arch/scalar.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/base/rng.h"

namespace mermaid::arch {
namespace {

using Reg = TypeRegistry;

ConvertContext Ctx(const ArchProfile& src, const ArchProfile& dst,
                   ConvertStats* stats = nullptr,
                   std::int64_t pointer_delta = 0) {
  ConvertContext c;
  c.src = &src;
  c.dst = &dst;
  c.stats = stats;
  c.pointer_delta = pointer_delta;
  return c;
}

TEST(Profiles, ShippedProfilesMatchThePaper) {
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  EXPECT_EQ(sun.byte_order, base::ByteOrder::kBig);
  EXPECT_EQ(sun.float_format, FloatFormat::kIeee754);
  EXPECT_EQ(sun.vm_page_size, 8192u);
  EXPECT_EQ(ffly.byte_order, base::ByteOrder::kLittle);
  EXPECT_EQ(ffly.float_format, FloatFormat::kVax);
  EXPECT_EQ(ffly.vm_page_size, 1024u);
  EXPECT_FALSE(sun.SameRepresentation(ffly));
  EXPECT_TRUE(sun.SameRepresentation(sun));
}

TEST(ScalarAccess, IntegersFollowHostByteOrder) {
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::uint8_t buf[4];
  StoreScalar<std::int32_t>(sun, buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x11);  // big-endian image
  EXPECT_EQ(LoadScalar<std::int32_t>(sun, buf), 0x11223344);

  StoreScalar<std::int32_t>(ffly, buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x44);  // little-endian image
  EXPECT_EQ(LoadScalar<std::int32_t>(ffly, buf), 0x11223344);
}

TEST(ScalarAccess, FloatsUseHostFormat) {
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::uint8_t sun_img[8], ffly_img[8];
  StoreScalar<double>(sun, sun_img, 2.5);
  StoreScalar<double>(ffly, ffly_img, 2.5);
  // The two images must genuinely differ (VAX-D vs big-endian IEEE)...
  EXPECT_NE(std::memcmp(sun_img, ffly_img, 8), 0);
  // ...yet both decode to the same value on their own host.
  EXPECT_EQ(LoadScalar<double>(sun, sun_img), 2.5);
  EXPECT_EQ(LoadScalar<double>(ffly, ffly_img), 2.5);
}

TEST(Convert, IntPageSunToFirefly) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  constexpr int kN = 256;
  std::vector<std::uint8_t> page(kN * 4);
  for (int i = 0; i < kN; ++i) {
    StoreScalar<std::int32_t>(sun, page.data() + i * 4, i * 1000 - 7);
  }
  reg.ConvertBuffer(Reg::kInt, page, kN, Ctx(sun, ffly));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<std::int32_t>(ffly, page.data() + i * 4),
              i * 1000 - 7);
  }
}

TEST(Convert, CharPageIsUntouched) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::vector<std::uint8_t> page = {'M', 'e', 'r', 'm', 'a', 'i', 'd', 0};
  auto before = page;
  reg.ConvertBuffer(Reg::kChar, page, page.size(), Ctx(sun, ffly));
  EXPECT_EQ(page, before);
}

TEST(Convert, FloatAndDoubleCrossFormat) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  constexpr int kN = 64;
  std::vector<std::uint8_t> fpage(kN * 4), dpage(kN * 8);
  for (int i = 0; i < kN; ++i) {
    StoreScalar<float>(sun, fpage.data() + i * 4, 0.25f * i - 3.5f);
    StoreScalar<double>(sun, dpage.data() + i * 8, 1e10 / (i + 1));
  }
  reg.ConvertBuffer(Reg::kFloat, fpage, kN, Ctx(sun, ffly));
  reg.ConvertBuffer(Reg::kDouble, dpage, kN, Ctx(sun, ffly));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<float>(ffly, fpage.data() + i * 4), 0.25f * i - 3.5f);
    EXPECT_EQ(LoadScalar<double>(ffly, dpage.data() + i * 8), 1e10 / (i + 1));
  }
  // And back again.
  reg.ConvertBuffer(Reg::kFloat, fpage, kN, Ctx(ffly, sun));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<float>(sun, fpage.data() + i * 4), 0.25f * i - 3.5f);
  }
}

TEST(Convert, LossyEventsAreCounted) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::vector<std::uint8_t> page(4 * 4);
  StoreScalar<float>(sun, page.data() + 0, 1.0f);
  StoreScalar<float>(sun, page.data() + 4,
                     std::numeric_limits<float>::infinity());
  StoreScalar<float>(sun, page.data() + 8,
                     std::numeric_limits<float>::quiet_NaN());
  StoreScalar<float>(sun, page.data() + 12,
                     std::numeric_limits<float>::denorm_min());
  ConvertStats stats;
  reg.ConvertBuffer(Reg::kFloat, page, 4, Ctx(sun, ffly, &stats));
  EXPECT_EQ(stats.clamped_special, 2);
  EXPECT_EQ(stats.underflowed_to_zero, 1);
  EXPECT_EQ(stats.total_lossy(), 3);
}

TEST(Convert, PointerRelocation) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::vector<std::uint8_t> page(2 * 8);
  StoreScalar<std::uint64_t>(sun, page.data(), 0x1000);
  StoreScalar<std::uint64_t>(sun, page.data() + 8, 0x2000);
  // DSM base differs by +0x500 on the destination host type.
  reg.ConvertBuffer(Reg::kPointer, page, 2, Ctx(sun, ffly, nullptr, 0x500));
  EXPECT_EQ(LoadScalar<std::uint64_t>(ffly, page.data()), 0x1500u);
  EXPECT_EQ(LoadScalar<std::uint64_t>(ffly, page.data() + 8), 0x2500u);
  // Converting back with the negated delta restores the original.
  reg.ConvertBuffer(Reg::kPointer, page, 2, Ctx(ffly, sun, nullptr, -0x500));
  EXPECT_EQ(LoadScalar<std::uint64_t>(sun, page.data()), 0x1000u);
}

// The paper's measured user-defined record: 3 ints, 3 floats, 4 shorts.
TEST(Convert, UserDefinedRecord) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  TypeId rec = reg.RegisterRecord(
      "paper_record",
      {{Reg::kInt, 3}, {Reg::kFloat, 3}, {Reg::kShort, 4}});
  EXPECT_EQ(reg.SizeOf(rec), 3 * 4 + 3 * 4 + 4 * 2);

  constexpr int kN = 16;
  const std::size_t sz = reg.SizeOf(rec);
  std::vector<std::uint8_t> page(kN * sz);
  for (int i = 0; i < kN; ++i) {
    std::uint8_t* p = page.data() + i * sz;
    for (int k = 0; k < 3; ++k)
      StoreScalar<std::int32_t>(sun, p + 4 * k, i * 10 + k);
    for (int k = 0; k < 3; ++k)
      StoreScalar<float>(sun, p + 12 + 4 * k, i + 0.5f * k);
    for (int k = 0; k < 4; ++k)
      StoreScalar<std::int16_t>(sun, p + 24 + 2 * k,
                                static_cast<std::int16_t>(-i * k));
  }
  reg.ConvertBuffer(rec, page, kN, Ctx(sun, ffly));
  for (int i = 0; i < kN; ++i) {
    const std::uint8_t* p = page.data() + i * sz;
    for (int k = 0; k < 3; ++k)
      EXPECT_EQ(LoadScalar<std::int32_t>(ffly, p + 4 * k), i * 10 + k);
    for (int k = 0; k < 3; ++k)
      EXPECT_EQ(LoadScalar<float>(ffly, p + 12 + 4 * k), i + 0.5f * k);
    for (int k = 0; k < 4; ++k)
      EXPECT_EQ(LoadScalar<std::int16_t>(ffly, p + 24 + 2 * k),
                static_cast<std::int16_t>(-i * k));
  }
}

TEST(Convert, NestedRecords) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  TypeId inner = reg.RegisterRecord("inner", {{Reg::kShort, 1}, {Reg::kInt, 1}});
  TypeId outer =
      reg.RegisterRecord("outer", {{inner, 2}, {Reg::kDouble, 1}});
  EXPECT_EQ(reg.SizeOf(outer), 2 * 6 + 8);

  std::vector<std::uint8_t> buf(reg.SizeOf(outer));
  StoreScalar<std::int16_t>(sun, buf.data() + 0, -5);
  StoreScalar<std::int32_t>(sun, buf.data() + 2, 100000);
  StoreScalar<std::int16_t>(sun, buf.data() + 6, 77);
  StoreScalar<std::int32_t>(sun, buf.data() + 8, -42);
  StoreScalar<double>(sun, buf.data() + 12, 6.25);
  reg.ConvertBuffer(outer, buf, 1, Ctx(sun, ffly));
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf.data() + 0), -5);
  EXPECT_EQ(LoadScalar<std::int32_t>(ffly, buf.data() + 2), 100000);
  EXPECT_EQ(LoadScalar<std::int16_t>(ffly, buf.data() + 6), 77);
  EXPECT_EQ(LoadScalar<std::int32_t>(ffly, buf.data() + 8), -42);
  EXPECT_EQ(LoadScalar<double>(ffly, buf.data() + 12), 6.25);
}

TEST(Convert, CustomConverterIsInvokedPerElement) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  int calls = 0;
  TypeId custom = reg.RegisterCustom(
      "xor_blob", 4,
      [&calls](std::span<std::uint8_t> bytes, const ConvertContext&) {
        ++calls;
        for (auto& b : bytes) b ^= 0xFF;
      });
  std::vector<std::uint8_t> buf = {1, 2, 3, 4, 5, 6, 7, 8};
  reg.ConvertBuffer(custom, buf, 2, Ctx(sun, ffly));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(buf[0], 0xFE);
  EXPECT_EQ(buf[7], 0xF7);
}

TEST(Convert, SameRepresentationIsIdentity) {
  Reg reg;
  const ArchProfile& ffly = FireflyProfile();
  base::Rng rng(9);
  std::vector<std::uint8_t> buf(512);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.NextU64());
  auto before = buf;
  reg.ConvertBuffer(Reg::kDouble, buf, buf.size() / 8, Ctx(ffly, ffly));
  EXPECT_EQ(buf, before);  // VAX->VAX double pages move unchanged
}

TEST(Convert, ModeledCostsFollowTable3) {
  Reg reg;
  const ArchProfile& ffly = FireflyProfile();
  // Table 3, 8 KB page on a Firefly: int 10.9 ms, short 11.0, float 21.6,
  // double 28.9. Elements per 8 KB: 2048 / 4096 / 2048 / 1024.
  auto page_ms = [&](TypeId t, int elems) {
    return ToMillis(reg.ModeledElementCost(ffly, t) * elems);
  };
  EXPECT_NEAR(page_ms(Reg::kInt, 2048), 10.9, 0.2);
  EXPECT_NEAR(page_ms(Reg::kShort, 4096), 11.0, 0.2);
  EXPECT_NEAR(page_ms(Reg::kFloat, 2048), 21.6, 0.3);
  EXPECT_NEAR(page_ms(Reg::kDouble, 1024), 28.9, 0.3);
}

// Property sweep: random values of every basic type survive a round trip
// through the other representation (when in range).
class ConvertRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvertRoundTrip, AllBasicTypes) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  base::Rng rng(GetParam());
  constexpr int kN = 200;

  // 64-bit longs.
  std::vector<std::uint8_t> longs(kN * 8);
  std::vector<std::int64_t> lvals(kN);
  for (int i = 0; i < kN; ++i) {
    lvals[i] = static_cast<std::int64_t>(rng.NextU64());
    StoreScalar<std::int64_t>(ffly, longs.data() + i * 8, lvals[i]);
  }
  reg.ConvertBuffer(Reg::kLong, longs, kN, Ctx(ffly, sun));
  reg.ConvertBuffer(Reg::kLong, longs, kN, Ctx(sun, ffly));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<std::int64_t>(ffly, longs.data() + i * 8), lvals[i]);
  }

  // Doubles within VAX-D range: magnitudes in [2^-120, 2^120].
  std::vector<std::uint8_t> dbl(kN * 8);
  std::vector<double> dvals(kN);
  for (int i = 0; i < kN; ++i) {
    double mag = std::ldexp(1.0 + rng.NextDouble(),
                            static_cast<int>(rng.NextRange(-120, 120)));
    dvals[i] = rng.NextBool(0.5) ? mag : -mag;
    StoreScalar<double>(sun, dbl.data() + i * 8, dvals[i]);
  }
  reg.ConvertBuffer(Reg::kDouble, dbl, kN, Ctx(sun, ffly));
  reg.ConvertBuffer(Reg::kDouble, dbl, kN, Ctx(ffly, sun));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<double>(sun, dbl.data() + i * 8), dvals[i]);
  }
}


// --- ConvertStrided edge cases -------------------------------------------
//
// The strided entry point is the page-layout bulk path: elements sit in
// fixed-size slots with padding between them. These pin down the contract:
// gap bytes are never touched, stride == element size degenerates to
// ConvertBuffer, count == 0 is a no-op, the span bound covers the tail
// element without its trailing gap, and stride < element size is rejected.

TEST(ConvertStrided, GapBytesBetweenElementsAreUntouched) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  constexpr int kN = 16;
  constexpr std::size_t kStride = 12;  // 4-byte int + 8 bytes of padding
  std::vector<std::uint8_t> page(kN * kStride, 0xAB);
  for (int i = 0; i < kN; ++i) {
    StoreScalar<std::int32_t>(sun, page.data() + i * kStride, 77 - i);
  }
  reg.ConvertStrided(Reg::kInt, page, kN, kStride, Ctx(sun, ffly));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(LoadScalar<std::int32_t>(ffly, page.data() + i * kStride),
              77 - i);
    for (std::size_t g = 4; g < kStride; ++g) {
      ASSERT_EQ(page[i * kStride + g], 0xAB)
          << "gap byte clobbered at element " << i << " offset " << g;
    }
  }
}

TEST(ConvertStrided, ZeroGapStrideMatchesConvertBuffer) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  constexpr int kN = 64;
  std::vector<std::uint8_t> strided(kN * 8);
  for (int i = 0; i < kN; ++i) {
    StoreScalar<double>(sun, strided.data() + i * 8, 0.25 * i - 3.0);
  }
  std::vector<std::uint8_t> dense = strided;
  reg.ConvertStrided(Reg::kDouble, strided, kN, 8, Ctx(sun, ffly));
  reg.ConvertBuffer(Reg::kDouble, dense, kN, Ctx(sun, ffly));
  EXPECT_EQ(strided, dense);
}

TEST(ConvertStrided, ZeroCountIsANoOpEvenOnAnEmptySpan) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  std::vector<std::uint8_t> empty;
  reg.ConvertStrided(Reg::kInt, empty, 0, 16, Ctx(sun, ffly));

  std::vector<std::uint8_t> page(32, 0xCD);
  reg.ConvertStrided(Reg::kDouble, page, 0, 16, Ctx(sun, ffly));
  EXPECT_EQ(page, std::vector<std::uint8_t>(32, 0xCD));
}

TEST(ConvertStrided, SpanBoundCoversTailElementWithoutItsGap) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  constexpr int kN = 5;
  constexpr std::size_t kStride = 16;
  // Exact fit: the last element needs only its 4 bytes, not a full slot.
  std::vector<std::uint8_t> page((kN - 1) * kStride + 4);
  for (int i = 0; i < kN; ++i) {
    StoreScalar<std::int32_t>(sun, page.data() + i * kStride, i + 1);
  }
  reg.ConvertStrided(Reg::kInt, page, kN, kStride, Ctx(sun, ffly));
  EXPECT_EQ(LoadScalar<std::int32_t>(ffly, page.data() + (kN - 1) * kStride),
            kN);

  // One byte short of the tail element must be rejected.
  ASSERT_DEATH(
      {
        std::vector<std::uint8_t> tight((kN - 1) * kStride + 3);
        reg.ConvertStrided(Reg::kInt, tight, kN, kStride, Ctx(sun, ffly));
      },
      "data.size");
}

TEST(ConvertStrided, StrideSmallerThanElementSizeIsRejected) {
  Reg reg;
  const ArchProfile& sun = Sun3Profile();
  const ArchProfile& ffly = FireflyProfile();
  ASSERT_DEATH(
      {
        std::vector<std::uint8_t> page(64);
        reg.ConvertStrided(Reg::kDouble, page, 4, 4, Ctx(sun, ffly));
      },
      "stride >= info.size");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvertRoundTrip,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mermaid::arch
