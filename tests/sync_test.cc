#include <vector>

#include <gtest/gtest.h>

#include "mermaid/arch/arch.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

namespace mermaid::sync {
namespace {

using dsm::System;
using dsm::SystemConfig;

SystemConfig SmallConfig() {
  SystemConfig cfg;
  cfg.region_bytes = 64 * 1024;
  return cfg;
}

TEST(Sync, SemaphoreMutualExclusion) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  int in_section = 0;
  int max_in_section = 0;
  int entries = 0;
  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    sys.sync(0).SemInit(1, 1);
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 3; ++i) {
      sys.SpawnThread(i, "t" + std::to_string(i), [&, i](dsm::Host& hh) {
        for (int k = 0; k < 10; ++k) {
          sys.sync(i).P(1);
          ++in_section;
          max_in_section = std::max(max_in_section, in_section);
          hh.Compute(100);  // hold the lock across virtual time
          --in_section;
          ++entries;
          sys.sync(i).V(1);
        }
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < 3; ++i) sys.sync(0).P(2);
    (void)h;
  });
  eng.Run();
  EXPECT_EQ(entries, 30);
  EXPECT_EQ(max_in_section, 1);
}

TEST(Sync, SemaphoreAsResourcePool) {
  sim::Engine eng;
  System sys(eng, SmallConfig(), {&arch::Sun3Profile(), &arch::Sun3Profile()});
  sys.Start();
  int concurrent = 0, peak = 0;
  sys.SpawnThread(0, "master", [&](dsm::Host&) {
    sys.sync(0).SemInit(1, 2);  // two slots
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 6; ++i) {
      sys.SpawnThread(i % 2, "t" + std::to_string(i), [&, i](dsm::Host& hh) {
        sys.sync(i % 2).P(1);
        ++concurrent;
        peak = std::max(peak, concurrent);
        hh.Compute(1000);
        --concurrent;
        sys.sync(i % 2).V(1);
        sys.sync(i % 2).V(2);
      });
    }
    for (int i = 0; i < 6; ++i) sys.sync(0).P(2);
  });
  eng.Run();
  EXPECT_LE(peak, 2);
  EXPECT_GE(peak, 2);  // both slots do get used
}

TEST(Sync, EventsBroadcastToAllWaiters) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  int released = 0;
  sys.SpawnThread(0, "master", [&](dsm::Host& h) {
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 4; ++i) {
      sys.SpawnThread(i % 2, "w" + std::to_string(i), [&, i](dsm::Host&) {
        sys.sync(i % 2).EventWait(9);
        ++released;
        sys.sync(i % 2).V(2);
      });
    }
    h.Compute(10000);
    EXPECT_EQ(released, 0);  // nobody through before the event fires
    sys.sync(0).EventSet(9);
    for (int i = 0; i < 4; ++i) sys.sync(0).P(2);
    EXPECT_EQ(released, 4);
    // A wait on an already-set event passes immediately.
    sys.sync(0).EventWait(9);
    sys.sync(0).EventClear(9);
  });
  eng.Run();
}

TEST(Sync, BarrierReleasesExactlyTogether) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile(),
              &arch::FireflyProfile()});
  sys.Start();
  std::vector<SimTime> release_times;
  sys.SpawnThread(0, "master", [&](dsm::Host&) {
    sys.sync(0).SemInit(2, 0);
    for (int i = 0; i < 3; ++i) {
      sys.SpawnThread(i, "b" + std::to_string(i), [&, i](dsm::Host& hh) {
        hh.Compute(1000.0 * (i + 1));  // arrive at different times
        sys.sync(i).Barrier(5, 3);
        release_times.push_back(hh.runtime().Now());
        sys.sync(i).V(2);
      });
    }
    for (int i = 0; i < 3; ++i) sys.sync(0).P(2);
  });
  eng.Run();
  ASSERT_EQ(release_times.size(), 3u);
  // All released after the last arrival (its compute = 3000 units).
  for (SimTime t : release_times) {
    EXPECT_GE(t, release_times.front());
  }
  const SimTime spread = *std::max_element(release_times.begin(),
                                           release_times.end()) -
                         *std::min_element(release_times.begin(),
                                           release_times.end());
  // Releases differ only by message latency, well under 10 ms.
  EXPECT_LT(spread, Milliseconds(10));
}

TEST(Sync, ManyPVCyclesAcrossHosts) {
  sim::Engine eng;
  System sys(eng, SmallConfig(),
             {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();
  int pings = 0;
  sys.SpawnThread(0, "ping", [&](dsm::Host&) {
    sys.sync(0).SemInit(1, 0);
    sys.sync(0).SemInit(2, 0);
    sys.SpawnThread(1, "pong", [&](dsm::Host&) {
      for (int i = 0; i < 20; ++i) {
        sys.sync(1).P(1);
        sys.sync(1).V(2);
      }
    });
    for (int i = 0; i < 20; ++i) {
      sys.sync(0).V(1);
      sys.sync(0).P(2);
      ++pings;
    }
  });
  eng.Run();
  EXPECT_EQ(pings, 20);
}

}  // namespace
}  // namespace mermaid::sync
